(* Engine self-profiler tests: exclusive-time attribution of the
   Obs.Prof probe stack, the deterministic span sampler, and — the
   property everything else rests on — behavioral inertness: profiling
   and sampling never change what a pinned-seed run computes. *)

module P = Obs.Prof
module S = Obs.Span

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Prof unit tests ------------------------------------------------- *)

let test_null_is_disabled () =
  check "null disabled" false (P.enabled P.null);
  (* Probes on a disabled instance are no-ops, not errors. *)
  P.enter P.null P.Rpc;
  P.leave P.null P.Rpc;
  P.probe P.null P.Durable ignore;
  let r = P.report P.null in
  check "no rows" true (r.P.rows = []);
  check "no anomalies" true (r.P.truncated = 0 && r.P.unbalanced = 0)

let spin () =
  (* Burn a little time and allocation so probed intervals are
     non-trivial. *)
  let acc = ref [] in
  for i = 0 to 5_000 do
    acc := i :: !acc;
    if i land 1023 = 0 then acc := []
  done;
  ignore (Sys.opaque_identity !acc)

let test_exclusive_attribution () =
  let p = P.create ~enabled:true () in
  P.probe p P.Rpc (fun () ->
      spin ();
      (* The nested interval must charge to Durable, not Rpc. *)
      P.probe p P.Durable spin;
      spin ());
  let r = P.report p in
  let row c =
    List.find_opt (fun (row : P.row) -> row.P.label = P.name c) r.P.rows
  in
  check "rpc row present" true (row P.Rpc <> None);
  check "durable row present" true (row P.Durable <> None);
  (match row P.Rpc with
  | Some row -> check_int "rpc counted once" 1 row.P.probes
  | None -> ());
  check "balanced" true (r.P.truncated = 0 && r.P.unbalanced = 0);
  (* Exclusive attribution: shares sum to 1 (within float noise). *)
  let tsum =
    List.fold_left (fun a (row : P.row) -> a +. row.P.time_share) 0.0 r.P.rows
  and wsum =
    List.fold_left (fun a (row : P.row) -> a +. row.P.alloc_share) 0.0 r.P.rows
  in
  if r.P.total_seconds > 0.0 then
    check "time shares sum to 1" true (abs_float (tsum -. 1.0) < 1e-6);
  if r.P.total_minor_words > 0.0 then
    check "alloc shares sum to 1" true (abs_float (wsum -. 1.0) < 1e-6)

let test_unbalanced_leave_counted () =
  let p = P.create ~enabled:true () in
  P.enter p P.Rpc;
  P.leave p P.Durable;  (* category mismatch *)
  P.leave p P.Rpc;  (* underflow: the stack is already empty *)
  let r = P.report p in
  check "unbalanced counted" true (r.P.unbalanced >= 2);
  P.clear p;
  let r = P.report p in
  check "clear resets rows" true (r.P.rows = []);
  check_int "clear resets anomalies" 0 r.P.unbalanced

let test_probe_exception_safe () =
  let p = P.create ~enabled:true () in
  (match P.probe p P.Rpc (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected the exception to propagate");
  (* The probe closed on the way out: further use stays balanced. *)
  P.probe p P.Durable spin;
  let r = P.report p in
  check "balanced after raise" true (r.P.unbalanced = 0 && r.P.truncated = 0)

let test_render_has_total_row () =
  let p = P.create ~enabled:true () in
  P.probe p P.Rpc spin;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  check "text render has total" true (contains (P.render p) "total");
  check "markdown render has total" true
    (contains (P.render_markdown p) "**total**");
  check "markdown names the category" true
    (contains (P.render_markdown p) "sim.rpc")

(* --- Deterministic span sampling ------------------------------------- *)

let keep_pattern ~seed ~keep_1_in ~roots =
  let sp = S.create () in
  S.set_sampler sp ~seed ~keep_1_in;
  List.init roots (fun i ->
      S.start sp ~time:(float_of_int i) ~node:0 "root" <> S.sampled_out)

let test_sampler_extremes () =
  check "k=1 keeps every root" true
    (List.for_all Fun.id (keep_pattern ~seed:5 ~keep_1_in:1 ~roots:50));
  check "k=0 drops every root" true
    (List.for_all not (keep_pattern ~seed:5 ~keep_1_in:0 ~roots:50));
  check "negative k rejected" true
    (match
       let sp = S.create () in
       S.set_sampler sp ~seed:1 ~keep_1_in:(-1)
     with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_sampler_deterministic_and_seeded () =
  let a = keep_pattern ~seed:7 ~keep_1_in:4 ~roots:200 in
  let b = keep_pattern ~seed:7 ~keep_1_in:4 ~roots:200 in
  check "same seed, same decisions" true (a = b);
  let kept = List.length (List.filter Fun.id a) in
  (* 1-in-4 over 200 roots: the splitmix finalizer should land in a
     loose band around 50, and must keep at least one and not all. *)
  check "rate in band" true (kept > 20 && kept < 90);
  let c = keep_pattern ~seed:8 ~keep_1_in:4 ~roots:200 in
  check "different seed, different decisions" true (a <> c)

let test_descendants_follow_root () =
  let sp = S.create () in
  S.set_sampler sp ~seed:3 ~keep_1_in:2;
  let sampled_child_checked = ref false and kept_child_checked = ref false in
  for i = 0 to 49 do
    let root = S.start sp ~time:(float_of_int i) ~node:0 "root" in
    let child = S.start sp ~time:(float_of_int i) ~node:1 ~parent:root "c" in
    if root = S.sampled_out then begin
      sampled_child_checked := true;
      check "child of a sampled-out root is sampled out" true
        (child = S.sampled_out);
      (* Finishing a sampled-out id is a no-op, not an error. *)
      S.finish sp ~time:(float_of_int i +. 1.0) child;
      S.finish sp ~time:(float_of_int i +. 1.0) root
    end
    else begin
      kept_child_checked := true;
      check "child of a kept root is kept" true (child <> S.sampled_out);
      S.finish sp ~time:(float_of_int i +. 1.0) child;
      S.finish sp ~time:(float_of_int i +. 1.0) root
    end
  done;
  check "both branches exercised" true
    (!sampled_child_checked && !kept_child_checked);
  check_int "roots seen" 50 (S.roots_seen sp);
  check_int "kept spans = 2 per kept root" (2 * S.roots_kept sp) (S.count sp);
  check "open-span accounting clean" true (S.open_count sp = 0);
  (* Sampling must not weaken error detection for real ids. *)
  check "unknown id still raises" true
    (match S.finish sp ~time:99.0 12345 with
    | exception Invalid_argument _ -> true
    | () -> false)

(* --- Behavioral inertness on a pinned chaos run ---------------------- *)

let chaos_fingerprint ~seed ~profile ?span_keep_1_in () =
  let obs =
    Obs.create ~trace_capacity:(1 lsl 16) ~profile ?span_keep_1_in
      ~span_sample_seed:seed ()
  in
  let system = Core.Registry.build_exn "htriang(10)" in
  let scenario =
    Protocols.Chaos.scenario_of_label ~n:10 ~horizon:60.0 "loss+burst"
  in
  let report = Protocols.Chaos.run_mutex ~seed ~obs ~system scenario in
  (report, obs)

let profiling_is_inert =
  QCheck.Test.make ~name:"profiling on/off: bit-identical chaos run" ~count:6
    QCheck.(int_range 1 1000)
    (fun seed ->
      let off, _ = chaos_fingerprint ~seed ~profile:false () in
      let on, obs = chaos_fingerprint ~seed ~profile:true () in
      (* The profiler must have actually run... *)
      (P.report (Obs.prof obs)).P.rows <> []
      (* ...and the simulated results must be exactly those of the
         unprofiled run (the chaos report is plain data: entries,
         violations, retransmissions, latencies...). *)
      && off = on)

let sampling_is_inert =
  QCheck.Test.make ~name:"span sampling 1-in-k vs full: bit-identical run"
    ~count:6
    QCheck.(pair (int_range 1 1000) (int_range 2 8))
    (fun (seed, k) ->
      let full, full_obs = chaos_fingerprint ~seed ~profile:false () in
      let sampled, obs =
        chaos_fingerprint ~seed ~profile:false ~span_keep_1_in:k ()
      in
      let sp = Obs.spans obs in
      full = sampled
      (* Same population of root spans was offered... *)
      && S.roots_seen sp = List.length (S.roots (Obs.spans full_obs))
      (* ...and the sampler genuinely thinned the recording. *)
      && S.roots_kept sp < S.roots_seen sp
      && S.count sp < S.count (Obs.spans full_obs))

let test_no_sink_allocates_less () =
  (* The zero-allocation guards must make a sink-less run strictly
     cheaper than a fully-observed one of the same seed. *)
  let words ~sinks =
    let obs =
      if sinks then Obs.create ~trace_capacity:(1 lsl 16) ()
      else begin
        let obs = Obs.create ~trace_capacity:0 ~span_keep_1_in:0 () in
        Obs.Metrics.set_enabled (Obs.metrics obs) false;
        obs
      end
    in
    let system = Core.Registry.build_exn "htriang(10)" in
    let scenario =
      Protocols.Chaos.scenario_of_label ~n:10 ~horizon:60.0 "loss+burst"
    in
    let w0 = Gc.minor_words () in
    ignore (Protocols.Chaos.run_mutex ~seed:11 ~obs ~system scenario);
    Gc.minor_words () -. w0
  in
  let with_sinks = words ~sinks:true and without = words ~sinks:false in
  check "no-sink run allocates less" true (without < with_sinks)

let () =
  Alcotest.run "prof"
    [
      ( "prof",
        [
          Alcotest.test_case "null instance" `Quick test_null_is_disabled;
          Alcotest.test_case "exclusive attribution" `Quick
            test_exclusive_attribution;
          Alcotest.test_case "unbalanced probes" `Quick
            test_unbalanced_leave_counted;
          Alcotest.test_case "exception safety" `Quick
            test_probe_exception_safe;
          Alcotest.test_case "render" `Quick test_render_has_total_row;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "extremes" `Quick test_sampler_extremes;
          Alcotest.test_case "deterministic" `Quick
            test_sampler_deterministic_and_seeded;
          Alcotest.test_case "descendants follow root" `Quick
            test_descendants_follow_root;
        ] );
      ( "inertness",
        [
          QCheck_alcotest.to_alcotest profiling_is_inert;
          QCheck_alcotest.to_alcotest sampling_is_inert;
          Alcotest.test_case "no-sink allocates less" `Quick
            test_no_sink_allocates_less;
        ] );
    ]
