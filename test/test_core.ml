(* Tests for the paper's constructions: hierarchical grid, hierarchical
   T-grid and hierarchical triangle — including exact regressions
   against the paper's published Table 1 / Table 2 values. *)

module Bitset = Quorum.Bitset
module System = Quorum.System
module Coterie = Quorum.Coterie
module Rng = Quorum.Rng
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_paper = Alcotest.(check (float 5e-7))

(* --- Hgrid structure --------------------------------------------- *)

let test_hgrid_preferred_2x2 () =
  let g = Hgrid.preferred_2x2 ~rows:4 ~cols:4 in
  check_int "4x4 peels to 16" 16 g.Hgrid.n;
  check_float "matches auto on 4x4"
    (Hgrid.failure_probability (Hgrid.auto_2x2 ~rows:4 ~cols:4 ()) Read_write
       ~p:0.1)
    (Hgrid.failure_probability g Read_write ~p:0.1)

let test_hgrid_of_dims () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  check_int "n" 16 g.Hgrid.n;
  check_int "rows" 4 g.Hgrid.global_rows;
  check_int "cols" 4 g.Hgrid.global_cols

let test_hgrid_full_universe () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let all _ = true in
  check "row cover on full" true (Hgrid.row_cover_ok all g.Hgrid.shape);
  check "full line on full" true (Hgrid.full_line_ok all g.Hgrid.shape);
  let none _ = false in
  check "no cover when empty" false (Hgrid.row_cover_ok none g.Hgrid.shape)

let test_hgrid_flat_semantics () =
  let g = Hgrid.flat ~rows:3 ~cols:3 in
  (* Row cover = one element per global row. *)
  let mem i = List.mem i [ 0; 4; 8 ] in
  check "diagonal covers" true (Hgrid.row_cover_ok mem g.Hgrid.shape);
  check "diagonal is no line" false (Hgrid.full_line_ok mem g.Hgrid.shape);
  let row1 i = i >= 3 && i < 6 in
  check "middle row is a line" true (Hgrid.full_line_ok row1 g.Hgrid.shape);
  check "middle row is no cover" false (Hgrid.row_cover_ok row1 g.Hgrid.shape)

let test_hgrid_quorum_counts () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  (* full lines: 2 top rows x (2 local rows per cell)^2 = 8;
     covers: per top row choose cell (2) with 4 local covers = 8 -> 64. *)
  check_int "full lines" 8 (List.length (Hgrid.full_line_quorums g.Hgrid.shape));
  check_int "row covers" 64
    (List.length (Hgrid.row_cover_quorums g.Hgrid.shape))

let test_hgrid_read_write_intersect () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let reads = List.map (Bitset.of_list 16) (Hgrid.row_cover_quorums g.Hgrid.shape) in
  let writes =
    List.map (Bitset.of_list 16) (Hgrid.full_line_quorums g.Hgrid.shape)
  in
  List.iter
    (fun r ->
      List.iter
        (fun w -> check "read x write intersect" true (Bitset.intersects r w))
        writes)
    reads

let test_hgrid_systems_coteries () =
  List.iter
    (fun g ->
      (* The read-write system is a self-intersecting coterie; the read
         and write families are antichains that intersect each other
         (checked in test_hgrid_read_write_intersect). *)
      let rw = Hgrid.rw_system g in
      let quorums = System.quorums_exn rw in
      check (rw.System.name ^ " intersects") true
        (Coterie.all_intersect quorums);
      check (rw.System.name ^ " antichain") true (Coterie.is_antichain quorums);
      List.iter
        (fun sys ->
          check
            (sys.System.name ^ " antichain")
            true
            (Coterie.is_antichain (System.quorums_exn sys)))
        [ Hgrid.read_system g; Hgrid.write_system g ])
    [ Hgrid.of_dims [ (2, 2); (2, 2) ]; Hgrid.auto_2x2 ~rows:3 ~cols:3 () ]

let test_hgrid_closed_form_vs_enum () =
  List.iter
    (fun g ->
      List.iter
        (fun mode ->
          let sys =
            match mode with
            | Hgrid.Read -> Hgrid.read_system g
            | Hgrid.Write -> Hgrid.write_system g
            | Hgrid.Read_write -> Hgrid.rw_system g
          in
          List.iter
            (fun p ->
              check_float "hgrid closed = enum"
                (Analysis.Failure.exact sys ~p)
                (Hgrid.failure_probability g mode ~p))
            [ 0.1; 0.35; 0.5 ])
        [ Hgrid.Read; Hgrid.Write; Hgrid.Read_write ])
    [
      Hgrid.of_dims [ (2, 2); (2, 2) ];
      Hgrid.auto_2x2 ~rows:3 ~cols:3 ();
      Hgrid.auto_2x2 ~rows:5 ~cols:4 ();
      Hgrid.of_blocks ~row_parts:[ 2; 1 ] ~col_parts:[ 1; 2 ];
    ]

(* Table 1, h-grid columns: exact to the paper's six decimals. *)
let test_paper_table1_hgrid () =
  let cases =
    [
      (3, 3, [ (0.1, 0.016893); (0.2, 0.109235); (0.3, 0.286224); (0.5, 0.716797) ]);
      (4, 4, [ (0.1, 0.005799); (0.2, 0.069318); (0.3, 0.243795); (0.5, 0.746628) ]);
      (5, 5, [ (0.1, 0.001753); (0.2, 0.039439); (0.3, 0.191581); (0.5, 0.751019) ]);
      (6, 4, [ (0.1, 0.001949); (0.2, 0.034161); (0.3, 0.167172); (0.5, 0.725377) ]);
    ]
  in
  List.iter
    (fun (rows, cols, cells) ->
      let g = Hgrid.auto_2x2 ~rows ~cols () in
      List.iter
        (fun (p, expected) ->
          check_paper
            (Printf.sprintf "h-grid %dx%d p=%.1f" rows cols p)
            expected
            (Hgrid.failure_probability g Read_write ~p))
        cells)
    cases

(* --- Htgrid -------------------------------------------------------- *)

let test_htgrid_quorums_are_coterie () =
  List.iter
    (fun g ->
      let quorums = Htgrid.quorums g in
      check "nonempty" true (quorums <> []);
      check "intersecting" true (Coterie.all_intersect quorums);
      check "antichain" true (Coterie.is_antichain quorums))
    [
      Hgrid.of_dims [ (2, 2); (2, 2) ];
      Hgrid.auto_2x2 ~rows:3 ~cols:3 ();
      Hgrid.flat ~rows:3 ~cols:4;
    ]

(* Lemma 4.1 seen structurally: every T-grid quorum still intersects
   every full row-cover (read quorum compatibility, end of 4.2). *)
let test_htgrid_intersects_read_quorums () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let reads =
    List.map (Bitset.of_list 16) (Hgrid.row_cover_quorums g.Hgrid.shape)
  in
  List.iter
    (fun q ->
      List.iter
        (fun r -> check "tgrid x read" true (Bitset.intersects q r))
        reads)
    (Htgrid.quorums g)

(* T-grid quorums are never larger than the matching h-grid RW quorums
   and include strictly smaller ones (sqrt n vs 2 sqrt n - 1). *)
let test_htgrid_size_range () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let stats = Analysis.Metrics.of_quorums (Htgrid.quorums g) in
  check_int "min = sqrt n" 4 stats.min_size;
  check_int "max = 2 sqrt n - 1" 7 stats.max_size

(* T-grid availability dominates h-grid availability. *)
let test_htgrid_dominates_hgrid () =
  let g = Hgrid.auto_2x2 ~rows:4 ~cols:4 () in
  let h = Hgrid.rw_system g and t = Htgrid.system g in
  let rng = Rng.create 31 in
  for _ = 1 to 300 do
    let live = Bitset.random_subset rng ~n:16 ~p:0.6 in
    if h.System.avail live then
      check "tgrid avail whenever hgrid is" true (t.System.avail live)
  done

(* Table 1, h-T-grid columns. *)
let test_paper_table1_htgrid () =
  let cases =
    [
      (3, 3, [ (0.1, 0.015213); (0.2, 0.098585); (0.3, 0.259783); (0.5, 0.667969) ]);
      (4, 4, [ (0.1, 0.005361); (0.2, 0.063866); (0.3, 0.225066); (0.5, 0.706604) ]);
      (6, 4, [ (0.1, 0.000611); (0.2, 0.016690); (0.3, 0.104402); (0.5, 0.598435) ]);
    ]
  in
  List.iter
    (fun (rows, cols, cells) ->
      let g = Hgrid.auto_2x2 ~rows ~cols () in
      let poly = Analysis.Failure.exact_poly (Htgrid.system g) in
      List.iter
        (fun (p, expected) ->
          check_paper
            (Printf.sprintf "h-T-grid %dx%d p=%.1f" rows cols p)
            expected
            (Quorum.Failure_poly.eval poly ~p))
        cells)
    cases

(* Section 4.3: flat 4x4 optimal row strategy gives average quorum size
   5.85 and load 36.5%. *)
let test_paper_sect43_strategy () =
  let g = Hgrid.flat ~rows:4 ~cols:4 in
  let s = Htgrid.flat_row_strategy g in
  let loads = Quorum.Strategy.element_loads s in
  Alcotest.(check (float 1e-3)) "load 36.5%" 0.3657
    (Quorum.Strategy.system_load s);
  (* the strategy equalizes loads *)
  Array.iter
    (fun l ->
      Alcotest.(check (float 1e-9)) "uniform load"
        (Quorum.Strategy.system_load s) l)
    loads;
  Alcotest.(check (float 5e-2)) "avg size 5.8" 5.85
    (Quorum.Strategy.average_quorum_size s)

let test_htgrid_select_valid () =
  let g = Hgrid.auto_2x2 ~rows:4 ~cols:4 () in
  let sys = Htgrid.system g in
  let quorums = Htgrid.quorums g in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let live = Bitset.random_subset rng ~n:16 ~p:0.85 in
    match sys.System.select rng ~live with
    | None -> check "select none implies unavail" false (sys.System.avail live)
    | Some q ->
        check "within live" true (Bitset.subset q live);
        check "contains a minimal quorum" true
          (List.exists (fun m -> Bitset.subset m q) quorums)
  done

let test_htgrid_lower_line_variant () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let rng = Rng.create 77 in
  let quorums = Htgrid.quorums g in
  let live = Bitset.universe 16 in
  for _ = 1 to 200 do
    match Htgrid.select_lower_line ~epsilon:0.15 g rng ~live with
    | None -> Alcotest.fail "lower-line select failed on full universe"
    | Some q ->
        check "valid quorum" true
          (List.exists (fun m -> Bitset.subset m q) quorums)
  done

(* --- Htriang -------------------------------------------------------- *)

let test_htriang_decomposition () =
  let t = Htriang.standard ~rows:5 () in
  check_int "n" 15 t.Htriang.n;
  (match t.Htriang.root with
  | Htriang.Split { grid; _ } ->
      check_int "grid rows" 3 (Array.length grid);
      check_int "grid cols" 2 (Array.length grid.(0))
  | Htriang.Elem _ -> Alcotest.fail "expected split")

let test_htriang_quorums_coterie () =
  List.iter
    (fun rows ->
      let t = Htriang.standard ~rows () in
      let quorums = Htriang.quorums t in
      check "intersecting" true (Coterie.all_intersect quorums);
      check "antichain" true (Coterie.is_antichain quorums);
      List.iter
        (fun q ->
          check_int
            (Printf.sprintf "d=%d: all quorums size d" rows)
            rows (Bitset.cardinal q))
        quorums)
    [ 1; 2; 3; 4; 5; 6; 7 ]

let test_htriang_quorum_counts () =
  let count rows =
    List.length (Htriang.quorums (Htriang.standard ~rows ()))
  in
  check_int "Q(2)" 3 (count 2);
  check_int "Q(3)" 10 (count 3);
  check_int "Q(5)" 84 (count 5)

let test_htriang_avail_matches_quorums () =
  let t = Htriang.standard ~rows:4 () in
  let quorums = Htriang.quorums t in
  let scratch = Bitset.create 10 in
  for mask = 0 to (1 lsl 10) - 1 do
    Bitset.blit_mask scratch mask;
    let expected = List.exists (fun q -> Bitset.subset q scratch) quorums in
    let got = Htriang.avail t (fun i -> mask land (1 lsl i) <> 0) in
    if expected <> got then Alcotest.failf "avail mismatch at %d" mask
  done

let test_htriang_closed_form_vs_enum () =
  List.iter
    (fun rows ->
      let t = Htriang.standard ~rows () in
      let sys = Htriang.system t in
      List.iter
        (fun p ->
          check_float "htriang closed = enum"
            (Analysis.Failure.exact sys ~p)
            (Htriang.failure_probability t ~p))
        [ 0.1; 0.3; 0.5 ])
    [ 2; 3; 4; 5 ]

(* Table 2 / 3 h-triang cells. *)
let test_paper_htriang_values () =
  let t5 = Htriang.standard ~rows:5 () in
  List.iter
    (fun (p, expected) ->
      check_paper
        (Printf.sprintf "h-triang(15) p=%.1f" p)
        expected
        (Htriang.failure_probability t5 ~p))
    [ (0.1, 0.000677); (0.2, 0.016577); (0.3, 0.090712); (0.5, 0.5) ]

(* Section 5 strategy: uniform load 2/(d+1). *)
let test_htriang_strategy_load () =
  List.iter
    (fun rows ->
      let t = Htriang.standard ~rows () in
      let expected = 2.0 /. float_of_int (rows + 1) in
      check_float "k = 2/(d+1)" expected (Htriang.system_load t);
      Array.iter
        (fun l -> check_float "uniform loads" expected l)
        (Htriang.strategy_loads t))
    [ 2; 3; 5; 7; 13 ]

let test_htriang_weights_example () =
  (* d = 5 worked example: w1 = 1/6, w2 = 1/3, w3 = 1/2, k = 1/3. *)
  let w =
    Htriang.split_weights ~c1:3 ~c2:6 ~c3:6 ~q1:2 ~q2:3 ~q3l:2 ~q3r:3
  in
  check_float "w1" (1.0 /. 6.0) w.Htriang.w1;
  check_float "w2" (1.0 /. 3.0) w.Htriang.w2;
  check_float "w3" 0.5 w.Htriang.w3;
  check_float "k" (1.0 /. 3.0) w.Htriang.k

let test_htriang_select_valid () =
  let t = Htriang.standard ~rows:5 () in
  let sys = Htriang.system t in
  let quorums = Htriang.quorums t in
  let rng = Rng.create 12 in
  for _ = 1 to 300 do
    let live = Bitset.random_subset rng ~n:15 ~p:0.8 in
    match Htriang.select t rng ~live with
    | None -> check "none implies unavail" false (sys.System.avail live)
    | Some q ->
        check "subset of live" true (Bitset.subset q live);
        check "is a quorum" true
          (List.exists (fun m -> Bitset.subset m q) quorums)
  done

(* Growth rules: each one adds processes and improves availability at
   moderate p. *)
let test_htriang_growth () =
  let t = Htriang.standard ~rows:3 () in
  let checks label grown =
    match grown with
    | None -> Alcotest.fail (label ^ ": no growth site")
    | Some t' ->
        check (label ^ ": grew") true (t'.Htriang.n > t.Htriang.n);
        let quorums = Htriang.quorums t' in
        check (label ^ ": still a coterie") true
          (Coterie.all_intersect quorums && Coterie.is_antichain quorums);
        List.iter
          (fun p ->
            check (label ^ ": availability improved") true
              (Htriang.failure_probability t' ~p
              <= Htriang.failure_probability t ~p +. 1e-12))
          [ 0.05; 0.1; 0.2 ]
  in
  checks "unit triangle" (Htriang.grow_unit_triangle t);
  checks "unit grid" (Htriang.grow_unit_grid t);
  checks "square grid" (Htriang.grow_square_grid t)

let test_htriang_growth_chain () =
  (* Repeated growth keeps the coterie sound. *)
  let rec grow_n t n =
    if n = 0 then t
    else
      match Htriang.grow_unit_triangle t with
      | Some t' -> grow_n t' (n - 1)
      | None -> t
  in
  let t = grow_n (Htriang.standard ~rows:4 ()) 3 in
  let quorums = Htriang.quorums t in
  check "chain coterie" true (Coterie.all_intersect quorums);
  check_int "grew by 6" 16 t.Htriang.n

(* qcheck: an arbitrary interleaving of the paper's growth rules and
   their shrink inverses, started from any standard triangle, keeps
   the quorum set a coterie (pairwise-intersecting antichain) at every
   intermediate step — the invariant the online resize controller
   (Protocols.Membership) relies on when it applies one rule per epoch
   switch.  Rules that do not apply (no growth/shrink site) are
   skipped, exactly as the controller skips them. *)
let htriang_rules_keep_coterie =
  QCheck.Test.make ~count:50
    ~name:"random grow/shrink sequences preserve the coterie"
    QCheck.(
      pair (int_range 2 4) (list_of_size Gen.(int_range 1 8) (int_range 0 5)))
    (fun (rows, ops) ->
      let apply t op =
        let rule =
          match op with
          | 0 -> Htriang.grow_unit_triangle
          | 1 -> Htriang.grow_unit_grid
          | 2 -> Htriang.grow_square_grid
          | 3 -> Htriang.shrink_unit_triangle
          | 4 -> Htriang.shrink_unit_grid
          | _ -> Htriang.shrink_square_grid
        in
        match rule t with None -> t | Some t' -> t'
      in
      let sound t =
        let qs = Htriang.quorums t in
        Coterie.all_intersect qs && Coterie.is_antichain qs
      in
      let rec go t = function
        | [] -> true
        | op :: rest ->
            let t' = apply t op in
            sound t' && go t' rest
      in
      go (Htriang.standard ~rows ()) ops)

(* --- Registry ------------------------------------------------------- *)

let test_registry_builds () =
  (* Every catalogue example must build, and must build its own family. *)
  List.iter
    (fun (e : Registry.entry) ->
      (match Registry.build e.example with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "registry %s: %s" e.example msg);
      match Registry.parse_spec e.example with
      | Ok (name, _) ->
          Alcotest.(check string) (e.family ^ " example family") e.family name
      | Error msg -> Alcotest.failf "registry %s: %s" e.example msg)
    Registry.catalogue;
  check "find htriang" true (Registry.find "htriang" <> None);
  check "find unknown" true (Registry.find "nonsense" = None)

let test_registry_rejects () =
  check "unknown" true (Result.is_error (Registry.build "nonsense(3)"));
  check "bad triangle" true (Result.is_error (Registry.build "htriang(16)"));
  check "bad tree" true (Result.is_error (Registry.build "tree(10)"))

let test_registry_lineups () =
  check_int "15 lineup" 7 (List.length (Registry.paper_lineup_15 ()));
  check_int "28 lineup" 7 (List.length (Registry.paper_lineup_28 ()))

(* --- Rendering ------------------------------------------------------ *)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let test_renders () =
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let s = Hgrid.render g in
  check "render mentions last id" true (contains_substring s "15");
  let t = Htriang.standard ~rows:5 () in
  let r = Htriang.render t in
  check "triangle render has grid marks" true (contains_substring r "[");
  check "triangle render has t2 marks" true (contains_substring r "(")

let () =
  Alcotest.run "core"
    [
      ( "hgrid",
        [
          Alcotest.test_case "of_dims" `Quick test_hgrid_of_dims;
          Alcotest.test_case "preferred_2x2" `Quick test_hgrid_preferred_2x2;
          Alcotest.test_case "full universe" `Quick test_hgrid_full_universe;
          Alcotest.test_case "flat semantics" `Quick test_hgrid_flat_semantics;
          Alcotest.test_case "quorum counts" `Quick test_hgrid_quorum_counts;
          Alcotest.test_case "read x write" `Quick
            test_hgrid_read_write_intersect;
          Alcotest.test_case "coteries" `Quick test_hgrid_systems_coteries;
          Alcotest.test_case "closed form" `Slow test_hgrid_closed_form_vs_enum;
          Alcotest.test_case "paper table 1 (h-grid)" `Quick
            test_paper_table1_hgrid;
        ] );
      ( "htgrid",
        [
          Alcotest.test_case "coterie" `Quick test_htgrid_quorums_are_coterie;
          Alcotest.test_case "x read quorums" `Quick
            test_htgrid_intersects_read_quorums;
          Alcotest.test_case "size range" `Quick test_htgrid_size_range;
          Alcotest.test_case "dominates h-grid" `Quick
            test_htgrid_dominates_hgrid;
          Alcotest.test_case "paper table 1 (h-T-grid)" `Slow
            test_paper_table1_htgrid;
          Alcotest.test_case "section 4.3 strategy" `Quick
            test_paper_sect43_strategy;
          Alcotest.test_case "select" `Quick test_htgrid_select_valid;
          Alcotest.test_case "lower-line variant" `Quick
            test_htgrid_lower_line_variant;
        ] );
      ( "htriang",
        [
          Alcotest.test_case "decomposition" `Quick test_htriang_decomposition;
          Alcotest.test_case "coterie, size d" `Quick
            test_htriang_quorums_coterie;
          Alcotest.test_case "quorum counts" `Quick test_htriang_quorum_counts;
          Alcotest.test_case "avail = quorums" `Quick
            test_htriang_avail_matches_quorums;
          Alcotest.test_case "closed = enum" `Quick
            test_htriang_closed_form_vs_enum;
          Alcotest.test_case "paper values" `Quick test_paper_htriang_values;
          Alcotest.test_case "strategy load" `Quick test_htriang_strategy_load;
          Alcotest.test_case "weights example" `Quick
            test_htriang_weights_example;
          Alcotest.test_case "select" `Quick test_htriang_select_valid;
          Alcotest.test_case "growth" `Quick test_htriang_growth;
          Alcotest.test_case "growth chain" `Quick test_htriang_growth_chain;
          QCheck_alcotest.to_alcotest htriang_rules_keep_coterie;
        ] );
      ( "registry",
        [
          Alcotest.test_case "builds" `Quick test_registry_builds;
          Alcotest.test_case "rejects" `Quick test_registry_rejects;
          Alcotest.test_case "lineups" `Quick test_registry_lineups;
        ] );
      ("render", [ Alcotest.test_case "renders" `Quick test_renders ]);
    ]
