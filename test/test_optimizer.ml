(* Workload optimizer suite: the unified Analysis.Workload record, the
   programmatic Registry instantiation catalogue, the thresh family,
   the mixed read/write load LP, Pareto frontier soundness and
   completeness (qcheck against brute force), and bit-identical pooled
   sweeps for jobs 1, 2 and 4. *)

module W = Analysis.Workload
module O = Analysis.Optimizer
module Registry = Core.Registry
module System = Quorum.System
module Bitset = Quorum.Bitset
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.fail ("unexpected error: " ^ msg)

let is_error = function Error _ -> true | Ok _ -> false

(* --- Workload ------------------------------------------------------- *)

let test_workload_validation () =
  check "fr out of range" true (is_error (W.make ~read_fraction:1.5 ()));
  check "negative fr" true (is_error (W.make ~read_fraction:(-0.1) ()));
  check "negative resilience" true
    (is_error (W.make ~resilience:(-1) ~read_fraction:0.5 ()));
  check "bad iid p" true
    (is_error (W.make ~failures:(W.Iid 1.5) ~read_fraction:0.5 ()));
  check "bad per-process p" true
    (is_error
       (W.make ~failures:(W.Per_process [| 0.1; 2.0 |]) ~read_fraction:0.5 ()));
  let w = ok_exn (W.make ~read_fraction:0.9 ()) in
  checkf "default is iid 0.1"
    (match w.W.failures with W.Iid p -> p | _ -> nan)
    0.1;
  check_int "default f" 1 w.W.resilience;
  (* n-dependent checks *)
  check "ok at n" true (not (is_error (W.validate w ~n:5)));
  check "f >= n rejected" true
    (is_error
       (W.validate (ok_exn (W.make ~resilience:5 ~read_fraction:0.5 ())) ~n:5));
  let hetero2 =
    ok_exn (W.make ~failures:(W.Per_process [| 0.1; 0.2 |]) ~read_fraction:0.5 ())
  in
  check "vector length must match n" true (is_error (W.validate hetero2 ~n:3));
  let topo = W.Topology (Sim.Topology.ring ~n:4 ~radius:1.0) in
  check "topology too small" true
    (is_error
       (W.validate (ok_exn (W.make ~latency:topo ~read_fraction:0.5 ())) ~n:5))

let test_workload_hetero_and_p_of () =
  let fm = ok_exn (W.hetero ~n:4 ~base:0.1 [ (2, 0.4) ]) in
  let w = ok_exn (W.make ~failures:fm ~read_fraction:0.5 ()) in
  let p_of = ok_exn (W.p_of w ~n:4) in
  checkf "override applies" 0.4 (p_of 2);
  checkf "base elsewhere" 0.1 (p_of 0);
  check "id out of range" true (is_error (W.hetero ~n:4 ~base:0.1 [ (4, 0.2) ]));
  check "bad override p" true (is_error (W.hetero ~n:4 ~base:0.1 [ (0, 7.0) ]))

(* --- Registry instantiations ---------------------------------------- *)

let families_at n =
  List.map (fun ((e : Registry.entry), _) -> e.Registry.family)
    (Registry.instantiations ~n)

let test_instantiations_build_at_exact_n () =
  List.iter
    (fun n ->
      List.iter
        (fun ((_ : Registry.entry), specs) ->
          List.iter
            (fun spec ->
              let s = ok_exn (Registry.build spec) in
              check_int (spec ^ " has exact n") n s.System.n)
            specs)
        (Registry.instantiations ~n))
    [ 15; 13; 12 ]

let test_instantiations_membership () =
  let at15 = families_at 15 in
  List.iter
    (fun f -> check (f ^ " at 15") true (List.mem f at15))
    [ "majority"; "htriang"; "hqs"; "triangle"; "y"; "wall"; "diamond";
      "grid-read"; "hgrid"; "tree" ];
  check "fpp not at 15" false (List.mem "fpp" at15);
  let at13 = families_at 13 in
  check "fpp at 13" true (List.mem "fpp" at13);
  check "no hqs at 13 (prime)" false (List.mem "hqs" at13);
  check "no htriang at 13" false (List.mem "htriang" at13);
  let at12 = families_at 12 in
  check "paths at 12 (2d(d+1))" true (List.mem "paths" at12);
  check "grids at 12" true (List.mem "grid-rw" at12)

(* --- Thresh family --------------------------------------------------- *)

let test_thresh_structure () =
  let s = Systems.Thresh.system ~n:5 ~r:3 () in
  let quorums = ok_exn (System.quorums s) in
  check_int "C(5,3) quorums" 10 (List.length quorums);
  check "2r > n quorums pairwise intersect" true
    (Quorum.Coterie.all_intersect quorums);
  (* read/write halves intersect by counting: r + w = n + 1 *)
  let reads = ok_exn (System.quorums (Systems.Thresh.system ~n:5 ~r:2 ())) in
  let writes = ok_exn (System.quorums (Systems.Thresh.system ~n:5 ~r:4 ())) in
  check "r-of-n intersects (n+1-r)-of-n" true
    (List.for_all
       (fun rq -> List.for_all (fun wq -> Bitset.intersects rq wq) writes)
       reads);
  (* selection picks an r-subset of the live set *)
  let rng = Rng.create 3 in
  let live = Bitset.of_list 5 [ 0; 2; 3; 4 ] in
  for _ = 1 to 20 do
    match s.System.select rng ~live with
    | None -> Alcotest.fail "select failed with 4 live of r=3"
    | Some q ->
        check_int "quorum size r" 3 (Bitset.cardinal q);
        check "within live" true (Bitset.subset q live)
  done;
  check "unavailable below r" true
    (s.System.select rng ~live:(Bitset.of_list 5 [ 0; 1 ]) = None);
  (* registry spelling *)
  let s' = ok_exn (Registry.build "thresh(5-3)") in
  check_int "registry thresh n" 5 s'.System.n;
  (* enumeration refuses beyond the cap, as an Error not an exception *)
  check "cap refusal is an Error" true
    (is_error (System.quorums (Systems.Thresh.system ~n:40 ~r:20 ())))

let test_thresh_hetero_dp_matches_enumeration () =
  let p_of i = [| 0.05; 0.3; 0.1; 0.2; 0.15; 0.25 |].(i) in
  List.iter
    (fun r ->
      let s = Systems.Thresh.system ~n:6 ~r () in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "dp = enumeration at r=%d" r)
        (Analysis.Failure.exact_hetero s ~p_of)
        (Systems.Thresh.failure_probability_hetero ~n:6 ~r ~p_of))
    [ 1; 2; 3; 4; 5; 6 ]

(* --- Load: mixed LP vs plain LP and the closed form ------------------ *)

let test_mixed_lp_equals_plain_lp_when_symmetric () =
  List.iter
    (fun spec ->
      let s = ok_exn (Registry.build spec) in
      let quorums = ok_exn (System.quorums s) in
      let plain = (Analysis.Load.optimal_of_quorums ~n:s.System.n quorums).load in
      List.iter
        (fun fr ->
          let mixed, _, _ =
            ok_exn
              (O.mixed_load ~read_fraction:fr ~n:s.System.n ~reads:quorums
                 ~writes:quorums)
          in
          Alcotest.(check (float 1e-7))
            (Printf.sprintf "%s mixed = plain at fr=%.2f" spec fr)
            plain mixed)
        [ 0.0; 0.3; 0.5; 0.9; 1.0 ])
    [ "majority(15)"; "htriang(15)" ]

let test_thresh_analytic_equals_mixed_lp () =
  let n = 5 and r = 2 in
  let reads = ok_exn (System.quorums (Systems.Thresh.system ~n ~r ())) in
  let writes =
    ok_exn (System.quorums (Systems.Thresh.system ~n ~r:(n + 1 - r) ()))
  in
  List.iter
    (fun fr ->
      let mixed, _, _ =
        ok_exn (O.mixed_load ~read_fraction:fr ~n ~reads ~writes)
      in
      Alcotest.(check (float 1e-7))
        (Printf.sprintf "closed form = LP at fr=%.2f" fr)
        (O.threshold_pair_load ~n ~read_fraction:fr ~r)
        mixed)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

(* --- evaluate -------------------------------------------------------- *)

let test_evaluate_majority () =
  let w = ok_exn (W.make ~read_fraction:0.9 ()) in
  let cand =
    { O.label = "majority(15)"; read_spec = "majority(15)";
      write_spec = "majority(15)" }
  in
  let pt, witness = ok_exn (O.evaluate ~workload:w cand) in
  check "resilient at f=1" true (witness = None);
  Alcotest.(check (float 1e-7)) "load 8/15" (8.0 /. 15.0) pt.O.load;
  Alcotest.(check (float 1e-7)) "size 8" 8.0 pt.O.size;
  checkf "no topology, no rtt" 0.0 pt.O.rtt;
  let s = ok_exn (Registry.build "majority(15)") in
  let f = Analysis.Failure.exact s ~p:0.1 in
  Alcotest.(check (float 1e-9)) "availability from exact F" (1.0 -. f)
    pt.O.availability;
  (* singleton misses f = 1 with a concrete witness *)
  let sing =
    { O.label = "singleton(15)"; read_spec = "singleton(15)";
      write_spec = "singleton(15)" }
  in
  match ok_exn (O.evaluate ~workload:w sing) with
  | _, Some wit -> check "witness names a crash set" true (String.length wit > 0)
  | _, None -> Alcotest.fail "singleton cannot be 1-resilient"

(* --- Pareto: qcheck soundness + brute-force completeness ------------- *)

let frontier_sound_and_complete =
  QCheck.Test.make ~count:8
    ~name:"sweep frontier is Pareto-sound and complete (n=10)"
    QCheck.(float_range 0.0 1.0)
    (fun fr ->
      let w =
        match W.make ~read_fraction:fr () with
        | Ok w -> w
        | Error _ -> QCheck.assume_fail ()
      in
      let r = match O.sweep ~workload:w ~n:10 () with
        | Ok r -> r
        | Error m -> QCheck.Test.fail_report m
      in
      let evaluated = r.O.frontier @ List.map fst r.O.dominated in
      let dominates a b = O.pareto [ a; b ] = ([ a ], [ (b, a) ]) in
      (* sound: no evaluated point dominates a frontier point *)
      List.for_all
        (fun p -> not (List.exists (fun q -> dominates q p) evaluated))
        r.O.frontier
      (* complete: every dominated point has a frontier dominator *)
      && List.for_all
           (fun (p, _) -> List.exists (fun q -> dominates q p) r.O.frontier)
           r.O.dominated)

let test_frontier_matches_brute_force_fixture () =
  let specs =
    [ "majority(15)"; "htriang(15)"; "tree(15)"; "hqs(5-3)"; "cwlog(15)" ]
  in
  let cands =
    List.map (fun s -> { O.label = s; read_spec = s; write_spec = s }) specs
  in
  let w = ok_exn (W.make ~read_fraction:0.8 ()) in
  let r = ok_exn (O.sweep ~candidates:cands ~workload:w ~n:15 ()) in
  (* brute force: evaluate each candidate independently, then O(k^2)
     pairwise dominance over the pooled points *)
  let points =
    List.map (fun c -> fst (ok_exn (O.evaluate ~workload:w c))) cands
  in
  let dominates a b = O.pareto [ a; b ] = ([ a ], [ (b, a) ]) in
  let brute =
    List.filter
      (fun p -> not (List.exists (fun q -> dominates q p) points))
      points
    |> List.map (fun (p : O.point) -> p.O.label)
    |> List.sort compare
  in
  let swept =
    List.map (fun (p : O.point) -> p.O.label) r.O.frontier |> List.sort compare
  in
  Alcotest.(check (list string)) "frontier = brute force" brute swept;
  check_int "everything classified"
    (List.length specs)
    (List.length r.O.frontier + List.length r.O.dominated
    + List.length r.O.unresilient + List.length r.O.errors)

(* --- Determinism: pooled sweep bit-identical for jobs 1/2/4 ---------- *)

let test_sweep_jobs_deterministic () =
  let w =
    ok_exn
      (W.make
         ~latency:(W.Topology (Sim.Topology.ring ~n:15 ~radius:1.0))
         ~read_fraction:0.9 ())
  in
  let run pool = ok_exn (O.sweep ?pool ~workload:w ~n:15 ()) in
  let reference = run None in
  List.iter
    (fun jobs ->
      Exec.Pool.with_pool ~name:"test" ~jobs (fun pool ->
          let r = run (Some pool) in
          check
            (Printf.sprintf "report identical at jobs=%d" jobs)
            true
            (r = reference);
          Alcotest.(check string)
            (Printf.sprintf "render identical at jobs=%d" jobs)
            (O.render reference) (O.render r)))
    [ 1; 2; 4 ]

(* --- Protocols: the workload shim ------------------------------------ *)

let test_chaos_workload_equals_read_fraction () =
  let system = Registry.build_exn "majority(9)" in
  let scenario = List.hd (Protocols.Chaos.standard ~n:9 ~horizon:120.0) in
  let via_fraction =
    Protocols.Chaos.run_store ~seed:23 ~read_fraction:0.7 ~read_system:system
      ~write_system:system ~name:"majority(9)" scenario
  in
  let via_workload =
    Protocols.Chaos.run_store ~seed:23
      ~workload:(ok_exn (W.make ~read_fraction:0.7 ()))
      ~read_system:system ~write_system:system ~name:"majority(9)" scenario
  in
  check "identical store report" true (via_fraction = via_workload)

let test_read_write_mix_w_validates () =
  let system = Registry.build_exn "majority(5)" in
  ignore system;
  let engine =
    Sim.Engine.create ~seed:1 ~nodes:5
      {
        Sim.Engine.on_message = (fun _ ~node:_ ~src:_ (_ : unit) -> ());
        on_timer = (fun _ ~node:_ ~tag:_ -> ());
        on_crash = (fun _ ~node:_ -> ());
        on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
      }
  in
  let w = ok_exn (W.make ~read_fraction:0.5 ()) in
  check "keys must be positive" true
    (is_error
       (Protocols.Workload.read_write_mix_w engine ~rng:(Rng.create 2)
          ~rate:1.0 ~horizon:10.0 ~workload:w ~keys:0
          ~read:(fun ~client:_ ~key:_ -> ())
          ~write:(fun ~client:_ ~key:_ ~value:_ -> ())));
  let bad = ok_exn (W.make ~failures:(W.Per_process [| 0.1 |]) ~read_fraction:0.5 ()) in
  check "workload validated against engine size" true
    (is_error
       (Protocols.Workload.read_write_mix_w engine ~rng:(Rng.create 2)
          ~rate:1.0 ~horizon:10.0 ~workload:bad ~keys:2
          ~read:(fun ~client:_ ~key:_ -> ())
          ~write:(fun ~client:_ ~key:_ ~value:_ -> ())));
  let issued =
    ok_exn
      (Protocols.Workload.read_write_mix_w engine ~rng:(Rng.create 2)
         ~rate:1.0 ~horizon:10.0 ~workload:w ~keys:2
         ~read:(fun ~client:_ ~key:_ -> ())
         ~write:(fun ~client:_ ~key:_ ~value:_ -> ()))
  in
  check "schedules some operations" true (issued >= 0)

let () =
  Alcotest.run "optimizer"
    [
      ( "workload",
        [
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "hetero and p_of" `Quick
            test_workload_hetero_and_p_of;
        ] );
      ( "registry",
        [
          Alcotest.test_case "instantiations build at exact n" `Quick
            test_instantiations_build_at_exact_n;
          Alcotest.test_case "instantiation membership" `Quick
            test_instantiations_membership;
        ] );
      ( "thresh",
        [
          Alcotest.test_case "structure" `Quick test_thresh_structure;
          Alcotest.test_case "hetero dp = enumeration" `Quick
            test_thresh_hetero_dp_matches_enumeration;
        ] );
      ( "load",
        [
          Alcotest.test_case "mixed LP = plain LP (symmetric)" `Quick
            test_mixed_lp_equals_plain_lp_when_symmetric;
          Alcotest.test_case "thresh closed form = mixed LP" `Quick
            test_thresh_analytic_equals_mixed_lp;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "evaluate majority(15)" `Quick
            test_evaluate_majority;
          QCheck_alcotest.to_alcotest frontier_sound_and_complete;
          Alcotest.test_case "frontier = brute force on fixture" `Quick
            test_frontier_matches_brute_force_fixture;
          Alcotest.test_case "jobs 1/2/4 bit-identical" `Quick
            test_sweep_jobs_deterministic;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "chaos ?workload = ?read_fraction" `Quick
            test_chaos_workload_equals_read_fraction;
          Alcotest.test_case "read_write_mix_w validates" `Quick
            test_read_write_mix_w_validates;
        ] );
    ]
