(* Tests for the extension layers: coterie composition (join),
   non-domination, and heterogeneous crash probabilities. *)

module Bitset = Quorum.Bitset
module System = Quorum.System
module Coterie = Quorum.Coterie
module Compose = Quorum.Compose
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let maj3 = List.map (Bitset.of_list 3) [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]

(* --- Non-domination -------------------------------------------------- *)

let nd_of_system (s : System.t) =
  Coterie.is_non_dominated ~n:s.System.n (System.avail_mask_exn s)

let test_nd_classics () =
  check "majority(7) ND" true (nd_of_system (Systems.Majority.make 7));
  check "tie-broken majority(8) ND" true (nd_of_system (Systems.Majority.make 8));
  check "plain majority(8) dominated" false
    (nd_of_system (Systems.Majority.make_plain 8));
  check "singleton ND" true (nd_of_system (Systems.Singleton.make 4));
  check "y(10) ND (no-draw theorem)" true
    (nd_of_system (Systems.Y_system.system ~rows:4 ()));
  check "htriang(10) ND" true
    (nd_of_system (Core.Htriang.system (Core.Htriang.standard ~rows:4 ())));
  check "cwlog(8) ND" true (nd_of_system (Systems.Cwlog.system ~n:8 ()));
  (* flat T-grid with a wide top row is dominated (the wall needs width
     1 on top for non-domination). *)
  check "flat t-grid 3x3 dominated" false
    (nd_of_system (Systems.Grid.t_grid ~rows:3 ~cols:3 ()))

(* ND is equivalent to F(1/2) = 1/2 for monotone systems; spot-check
   both directions. *)
let test_nd_vs_half () =
  List.iter
    (fun spec ->
      let s = Core.Registry.build_exn spec in
      let nd = nd_of_system s in
      let fp_half = Analysis.Failure.exact s ~p:0.5 in
      check
        (spec ^ ": ND iff F(1/2)=1/2")
        nd
        (abs_float (fp_half -. 0.5) < 1e-12))
    [
      "majority(9)"; "majority-plain(8)"; "hqs(3-3)"; "cwlog(10)";
      "triangle(10)"; "htriang(15)"; "y(15)"; "grid-rw(3x3)"; "tgrid(3x3)";
      "htgrid(3x3)";
    ]

(* --- Composition ------------------------------------------------------ *)

let test_join_basic () =
  let n, joined = Compose.join ~at:0 ~n1:3 maj3 ~n2:3 maj3 in
  check_int "universe 3-1+3" 5 n;
  check "joined intersects" true (Coterie.all_intersect joined);
  let minimal = Coterie.minimize joined in
  check "joined antichain after minimize" true (Coterie.is_antichain minimal)

let test_join_preserves_nd () =
  let n, joined = Compose.join ~at:1 ~n1:3 maj3 ~n2:3 maj3 in
  let joined = Coterie.minimize joined in
  let sys = System.of_quorums ~name:"join" ~n joined in
  check "join of NDs is ND" true (nd_of_system sys)

let test_join_with_singleton_is_identity () =
  (* Joining the singleton coterie {x} into position x leaves the outer
     system isomorphic (the inner lone element substitutes for x). *)
  let singleton = [ Bitset.of_list 1 [ 0 ] ] in
  let n, joined = Compose.join ~at:2 ~n1:3 maj3 ~n2:1 singleton in
  check_int "same size" 3 n;
  check_int "same quorum count" 3 (List.length joined);
  check "still a coterie" true (Coterie.is_coterie (Coterie.minimize joined))

let test_compose_equals_hqs () =
  (* majority-of-majorities = HQS(3x3): the composed coterie equals the
     recursive construction's quorum set. *)
  let n, composed = Compose.compose_uniform ~n1:3 maj3 ~n2:3 maj3 in
  check_int "nine leaves" 9 n;
  let hqs = System.quorums_exn (Systems.Hqs.system ~branching:[ 3; 3 ] ()) in
  let sort qs = List.sort Bitset.compare qs in
  let equal_sets a b =
    List.length a = List.length b && List.for_all2 Bitset.equal a b
  in
  check "compose = HQS(3x3)" true
    (equal_sets (sort (Coterie.minimize composed)) (sort hqs))

let test_compose_mixed () =
  (* Replace only element 0 of a majority-of-3 by a 4-process tie-broken
     majority; others stay singletons. *)
  let inner e =
    if e = 0 then
      (4, System.quorums_exn (Systems.Majority.make 4))
    else (1, [ Bitset.of_list 1 [ 0 ] ])
  in
  let n, composed = Compose.compose ~n1:3 maj3 inner in
  check_int "4+1+1" 6 n;
  check "mixed compose intersects" true
    (Coterie.all_intersect (Coterie.minimize composed))

let compose_nd_random =
  QCheck.Test.make ~name:"join of ND majorities stays ND" ~count:20
    QCheck.(pair (int_bound 2) (int_bound 2))
    (fun (at, _) ->
      let n, joined = Compose.join ~at ~n1:3 maj3 ~n2:3 maj3 in
      let sys = System.of_quorums ~name:"j" ~n (Coterie.minimize joined) in
      nd_of_system sys)

(* --- Heterogeneous failure probabilities ----------------------------- *)

let uniform_matches spec =
  let s = Core.Registry.build_exn spec in
  List.iter
    (fun p ->
      check_float
        (spec ^ ": hetero = homo at uniform p")
        (Analysis.Failure.exact s ~p)
        (Analysis.Failure.exact_hetero s ~p_of:(fun _ -> p)))
    [ 0.1; 0.35 ]

let test_hetero_uniform_consistency () =
  List.iter uniform_matches
    [ "majority(9)"; "htriang(10)"; "cwlog(10)"; "grid-rw(3x3)"; "y(10)" ]

(* Closed-form hetero recursions vs generic enumeration, on random
   probability vectors. *)
let random_ps n seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> 0.05 +. (0.5 *. Rng.float rng))

let test_hetero_closed_forms () =
  (* wall *)
  let widths = [| 1; 2; 3; 2 |] in
  let wall = Systems.Wall.system widths in
  let ps = random_ps wall.System.n 1 in
  check_float "wall hetero closed = enum"
    (Analysis.Failure.exact_hetero wall ~p_of:(fun i -> ps.(i)))
    (Systems.Wall.failure_probability_hetero ~widths ~p_of:(fun i -> ps.(i)));
  (* grid *)
  let ps = random_ps 12 2 in
  List.iter
    (fun mode ->
      let g = Systems.Grid.system ~rows:3 ~cols:4 mode in
      check_float "grid hetero closed = enum"
        (Analysis.Failure.exact_hetero g ~p_of:(fun i -> ps.(i)))
        (Systems.Grid.failure_probability_hetero ~rows:3 ~cols:4 mode
           ~p_of:(fun i -> ps.(i))))
    [ Systems.Grid.Read; Systems.Grid.Write; Systems.Grid.Read_write ];
  (* hqs *)
  let ps = random_ps 9 3 in
  check_float "hqs hetero closed = enum"
    (Analysis.Failure.exact_hetero
       (Systems.Hqs.system ~branching:[ 3; 3 ] ())
       ~p_of:(fun i -> ps.(i)))
    (Systems.Hqs.failure_probability_hetero ~branching:[ 3; 3 ]
       ~p_of:(fun i -> ps.(i)));
  (* tree *)
  let ps = random_ps 7 4 in
  check_float "tree hetero closed = enum"
    (Analysis.Failure.exact_hetero
       (Systems.Tree_quorum.system ~height:3 ())
       ~p_of:(fun i -> ps.(i)))
    (Systems.Tree_quorum.failure_probability_hetero ~height:3
       ~p_of:(fun i -> ps.(i)));
  (* voting *)
  let votes = [| 2; 1; 1; 1; 3 |] in
  let ps = random_ps 5 5 in
  check_float "voting hetero closed = enum"
    (Analysis.Failure.exact_hetero
       (Systems.Weighted_voting.system ~votes ())
       ~p_of:(fun i -> ps.(i)))
    (Systems.Weighted_voting.failure_probability_hetero ~votes
       ~p_of:(fun i -> ps.(i)));
  (* hgrid (hierarchical, non-uniform blocks) *)
  let g = Core.Hgrid.auto_2x2 ~rows:3 ~cols:3 () in
  let ps = random_ps 9 6 in
  List.iter
    (fun mode ->
      let sys =
        match mode with
        | Core.Hgrid.Read -> Core.Hgrid.read_system g
        | Core.Hgrid.Write -> Core.Hgrid.write_system g
        | Core.Hgrid.Read_write -> Core.Hgrid.rw_system g
      in
      check_float "hgrid hetero closed = enum"
        (Analysis.Failure.exact_hetero sys ~p_of:(fun i -> ps.(i)))
        (Core.Hgrid.failure_probability_hetero g mode ~p_of:(fun i -> ps.(i))))
    [ Core.Hgrid.Read; Core.Hgrid.Write; Core.Hgrid.Read_write ];
  (* htriang *)
  let t = Core.Htriang.standard ~rows:5 () in
  let ps = random_ps 15 7 in
  check_float "htriang hetero closed = enum"
    (Analysis.Failure.exact_hetero (Core.Htriang.system t)
       ~p_of:(fun i -> ps.(i)))
    (Core.Htriang.failure_probability_hetero t ~p_of:(fun i -> ps.(i)))

let hetero_qcheck =
  QCheck.Test.make ~name:"htriang hetero closed = enum (random ps)" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let t = Core.Htriang.standard ~rows:4 () in
      let ps = random_ps 10 seed in
      let closed =
        Core.Htriang.failure_probability_hetero t ~p_of:(fun i -> ps.(i))
      in
      let enum =
        Analysis.Failure.exact_hetero (Core.Htriang.system t)
          ~p_of:(fun i -> ps.(i))
      in
      abs_float (closed -. enum) < 1e-9)

let test_hetero_monte_carlo () =
  let s = Core.Registry.build_exn "htriang(15)" in
  let ps = random_ps 15 11 in
  let exact = Analysis.Failure.exact_hetero s ~p_of:(fun i -> ps.(i)) in
  let est =
    Analysis.Failure.monte_carlo_hetero ~trials:120_000 (Rng.create 12) s
      ~p_of:(fun i -> ps.(i))
  in
  check "hetero MC brackets exact" true
    (abs_float (est.mean -. exact) <= est.half_width +. 0.004)

(* Placement sensitivity: the h-triang cares where the flaky processes
   sit — bad nodes in the top rows hurt more than in the bottom row. *)
let test_hetero_placement () =
  let t = Core.Htriang.standard ~rows:5 () in
  let flaky placement i = if List.mem i placement then 0.4 else 0.05 in
  let top = Core.Htriang.failure_probability_hetero t ~p_of:(flaky [ 0; 1; 2 ]) in
  let bottom =
    Core.Htriang.failure_probability_hetero t ~p_of:(flaky [ 10; 12; 14 ])
  in
  check "top placement worse than bottom" true (top > bottom)

(* --- Critical thresholds --------------------------------------------- *)

let test_bisect () =
  let p_star =
    Analysis.Threshold.bisect ~supercritical:(fun p -> p < 0.37) ~low:0.01
      ~high:0.5 ()
  in
  Alcotest.(check (float 1e-6)) "bisect locates boundary" 0.37 p_star;
  Alcotest.(check (float 1e-9)) "low not supercritical -> low" 0.01
    (Analysis.Threshold.bisect ~supercritical:(fun _ -> false) ~low:0.01
       ~high:0.5 ())

let test_threshold_hqs_half () =
  (* The 3-ary majority level map a -> 3a^2(1-a) + a^3 has its unstable
     fixed point at 1/2: HQS's threshold is optimal. *)
  let family level ~p =
    Systems.Hqs.failure_probability
      ~branching:(List.init level (fun _ -> 3))
      ~p
  in
  let p_star = Analysis.Threshold.critical_p ~family ~levels:(6, 12) () in
  check "HQS threshold ~ 1/2" true (p_star > 0.49 && p_star <= 0.5)

let test_threshold_hgrid_below_half () =
  (* Kumar & Cheung: the h-grid's p* is strictly below 1/2. *)
  let family level ~p =
    Core.Hgrid.failure_probability
      (Core.Hgrid.of_dims (List.init level (fun _ -> (2, 2))))
      Core.Hgrid.Read_write ~p
  in
  let p_star = Analysis.Threshold.critical_p ~family ~levels:(5, 10) () in
  check "h-grid p* in (0.3, 0.45)" true (p_star > 0.3 && p_star < 0.45)

let test_improves_underflow () =
  (* Both sizes underflow to 0: counts as supercritical. *)
  let family level ~p = p ** float_of_int (100 * level) in
  check "underflow improves" true
    (Analysis.Threshold.improves ~family ~levels:(5, 10) 0.1)

(* --- Topology / placement -------------------------------------------- *)

let test_topology_geometry () =
  let line = Sim.Topology.line ~n:4 ~spacing:2.0 in
  Alcotest.(check (float 1e-9)) "line distance" 6.0
    (Sim.Topology.distance line 0 3);
  let ring = Sim.Topology.ring ~n:4 ~radius:1.0 in
  Alcotest.(check (float 1e-9)) "ring diameter" 2.0
    (Sim.Topology.distance ring 0 2);
  Alcotest.(check (float 1e-9)) "symmetry"
    (Sim.Topology.distance ring 1 3)
    (Sim.Topology.distance ring 3 1)

let test_topology_rtt () =
  let line = Sim.Topology.line ~n:5 ~spacing:1.0 in
  let q = Bitset.of_list 5 [ 1; 4 ] in
  Alcotest.(check (float 1e-9)) "rtt = 2 x farthest" 8.0
    (Sim.Topology.rtt line ~from:0 q)

let test_placement_best_beats_strategy () =
  let rng = Rng.create 7 in
  let topology =
    Sim.Topology.clusters rng ~sizes:[ 5; 5; 5 ] ~spread:1.0 ~separation:8.0
  in
  List.iter
    (fun spec ->
      let s = Core.Registry.build_exn spec in
      let best = Analysis.Placement.mean_best_rtt s topology in
      let strat =
        Analysis.Placement.mean_strategy_rtt ~trials:600 (Rng.create 8) s
          topology
      in
      check (spec ^ ": best <= strategy") true (best <= strat +. 1e-9))
    [ "majority(15)"; "htriang(15)"; "cwlog(14)" ]

let test_latency_select_valid () =
  let s = Core.Registry.build_exn "htriang(15)" in
  let topology = Sim.Topology.ring ~n:15 ~radius:5.0 in
  let rng = Rng.create 9 in
  let quorums = System.quorums_exn s in
  for _ = 1 to 50 do
    let live = Bitset.random_subset rng ~n:15 ~p:0.8 in
    match Analysis.Placement.latency_select s topology ~from:0 rng ~live with
    | None -> check "none implies unavail" false (s.System.avail live)
    | Some q ->
        check "within live" true (Bitset.subset q live);
        check "a real quorum" true
          (List.exists (fun m -> Bitset.equal m q) quorums)
  done

let test_geo_network_delay () =
  let line = Sim.Topology.line ~n:3 ~spacing:5.0 in
  let net = Sim.Topology.network ~base_latency:1.0 ~jitter:0.0 line in
  let rng = Rng.create 10 in
  (match Sim.Network.delay net rng ~src:0 ~dst:2 with
  | Some d -> Alcotest.(check (float 1e-9)) "base + distance" 11.0 d
  | None -> Alcotest.fail "dropped");
  match Sim.Network.delay net rng ~src:1 ~dst:1 with
  | Some d -> Alcotest.(check (float 1e-9)) "self" 1.0 d
  | None -> Alcotest.fail "dropped"

let () =
  Alcotest.run "extensions"
    [
      ( "non-domination",
        [
          Alcotest.test_case "classics" `Quick test_nd_classics;
          Alcotest.test_case "ND iff F(1/2)=1/2" `Quick test_nd_vs_half;
        ] );
      ( "composition",
        [
          Alcotest.test_case "join basic" `Quick test_join_basic;
          Alcotest.test_case "join preserves ND" `Quick test_join_preserves_nd;
          Alcotest.test_case "join singleton identity" `Quick
            test_join_with_singleton_is_identity;
          Alcotest.test_case "compose = HQS" `Quick test_compose_equals_hqs;
          Alcotest.test_case "mixed compose" `Quick test_compose_mixed;
          QCheck_alcotest.to_alcotest compose_nd_random;
        ] );
      ( "thresholds",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "HQS = 1/2" `Quick test_threshold_hqs_half;
          Alcotest.test_case "h-grid < 1/2" `Quick
            test_threshold_hgrid_below_half;
          Alcotest.test_case "underflow" `Quick test_improves_underflow;
        ] );
      ( "placement",
        [
          Alcotest.test_case "geometry" `Quick test_topology_geometry;
          Alcotest.test_case "rtt" `Quick test_topology_rtt;
          Alcotest.test_case "best beats strategy" `Quick
            test_placement_best_beats_strategy;
          Alcotest.test_case "latency select" `Quick test_latency_select_valid;
          Alcotest.test_case "geo network" `Quick test_geo_network_delay;
        ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "uniform consistency" `Quick
            test_hetero_uniform_consistency;
          Alcotest.test_case "closed forms" `Quick test_hetero_closed_forms;
          QCheck_alcotest.to_alcotest hetero_qcheck;
          Alcotest.test_case "monte carlo" `Quick test_hetero_monte_carlo;
          Alcotest.test_case "placement sensitivity" `Quick
            test_hetero_placement;
        ] );
    ]
