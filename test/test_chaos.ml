(* Chaos-smoke suite: the reliable transport (Rpc), the heartbeat
   failure detector, and both protocols under seeded loss, partitions
   and churn.  Small n and short horizons keep it inside the normal
   `dune runtest` budget; the full-scale sweep lives in `bench chaos`. *)

module Engine = Sim.Engine
module Network = Sim.Network
module Rpc = Sim.Rpc
module Fd = Sim.Failure_detector
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Rpc: at-most-once, eventual delivery, dead letters ------------- *)

(* A minimal Rpc-only node: payloads are ints, deliveries are logged. *)
type rpc_wire = Env of int Rpc.msg

let make_rpc_world ?(loss = 0.0) ?(seed = 3) ?(max_attempts = 6) ~nodes () =
  let delivered = ref [] in
  let rpc = Rpc.create ~max_attempts ~wrap:(fun m -> Env m) () in
  let handlers : rpc_wire Engine.handlers =
    {
      on_message =
        (fun _ ~node ~src (Env m) ->
          Rpc.on_message rpc ~node ~src m ~deliver:(fun ~src payload ->
              delivered := (src, node, payload) :: !delivered));
      on_timer =
        (fun _ ~node ~tag ->
          if not (Rpc.on_timer rpc ~node ~tag) then
            Alcotest.fail "unexpected non-rpc timer");
      on_crash = (fun _ ~node -> Rpc.on_crash rpc ~node);
      on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
    }
  in
  let network = Network.create ~loss () in
  let engine = Engine.create ~seed ~nodes ~network handlers in
  Rpc.bind rpc engine;
  (rpc, engine, network, delivered)

let test_rpc_delivery_under_loss () =
  (* 30% iid loss (both directions): with 10 attempts every payload
     still arrives, exactly once, and no sender gives up. *)
  let rpc, engine, _net, delivered =
    make_rpc_world ~loss:0.3 ~max_attempts:10 ~nodes:4 ()
  in
  for i = 0 to 49 do
    Engine.schedule engine
      ~time:(float_of_int i *. 0.5)
      (fun () -> Rpc.send rpc ~src:(i mod 4) ~dst:((i + 1) mod 4) i)
  done;
  Engine.run engine;
  check_int "all delivered" 50 (List.length !delivered);
  let payloads = List.sort compare (List.map (fun (_, _, p) -> p) !delivered) in
  check "exactly once each" true (payloads = List.init 50 (fun i -> i));
  check_int "no dead letters" 0 (Rpc.dead_letters rpc);
  check "loss caused retransmissions" true (Rpc.retransmissions rpc > 0)

let test_rpc_no_duplicate_side_effects () =
  (* Force duplicates: drop only one direction so acks die and the
     sender keeps retransmitting an already-delivered payload. *)
  let rpc, engine, network, delivered = make_rpc_world ~nodes:2 () in
  (* acks from 1 back to 0 all die for a while *)
  Network.set_link_loss network ~src:1 ~dst:0 1.0;
  Rpc.send rpc ~src:0 ~dst:1 99;
  Engine.schedule engine ~time:9.0 (fun () ->
      Network.set_link_loss network ~src:1 ~dst:0 0.0);
  Engine.run engine;
  check_int "delivered exactly once" 1 (List.length !delivered);
  check "duplicates were suppressed" true (Rpc.duplicates_suppressed rpc > 0);
  check_int "eventually acked, no dead letter" 0 (Rpc.dead_letters rpc)

let test_rpc_dead_letter_on_partition () =
  (* A permanent cut: the sender must give up after max_attempts and
     hand the payload to the dead-letter handler. *)
  let rpc, engine, network, delivered =
    make_rpc_world ~nodes:2 ~max_attempts:4 ()
  in
  let dead = ref [] in
  Rpc.set_dead_letter_handler rpc (fun ~src ~dst payload ->
      dead := (src, dst, payload) :: !dead);
  ignore (Network.partition network ~group_a:[ 0 ]);
  Rpc.send rpc ~src:0 ~dst:1 7;
  Engine.run engine;
  check_int "nothing delivered" 0 (List.length !delivered);
  check_int "one dead letter" 1 (List.length !dead);
  check "handler got the payload" true (!dead = [ (0, 1, 7) ]);
  check_int "counter agrees" 1 (Rpc.dead_letters rpc);
  check_int "no inflight state leaked" 0 (Rpc.inflight_count rpc)

(* --- Failure detector: completeness and eventual accuracy ----------- *)

type fd_wire = Beat

let make_fd_world ?(seed = 5) ~nodes () =
  let fd = Fd.create ~period:1.0 ~timeout:4.0 ~nodes ~beat:Beat () in
  let handlers : fd_wire Engine.handlers =
    {
      on_message = (fun _ ~node ~src Beat -> Fd.heard fd ~node ~from:src);
      on_timer =
        (fun _ ~node ~tag ->
          (* non-fd tags are the tests' keep-alive timers *)
          ignore (Fd.on_timer fd ~node ~tag));
      on_crash = (fun _ ~node:_ -> ());
      on_recover = (fun _ ~node ~amnesia:_ -> Fd.on_recover fd ~node);
    }
  in
  let engine = Engine.create ~seed ~nodes handlers in
  Fd.bind fd engine;
  Fd.start fd;
  (fd, engine)

let test_fd_completeness_and_accuracy () =
  let fd, engine = make_fd_world ~nodes:5 () in
  (* node 3 crashes at t=10 and recovers at t=30 *)
  Engine.crash_at engine ~time:10.0 ~node:3;
  Engine.recover_at engine ~time:30.0 ~node:3;
  let at time f = Engine.schedule engine ~time f in
  at 9.0 (fun () ->
      check "trusted while alive" false (Fd.suspects fd ~node:0 3));
  (* completeness: suspected within timeout + period + latency *)
  at 17.0 (fun () ->
      check "crashed node suspected" true (Fd.suspects fd ~node:0 3);
      check_int "only node 3 suspected" 1 (Fd.suspected_count fd ~node:0);
      check "view excludes it" false (Quorum.Bitset.mem (Fd.view fd ~node:0) 3));
  (* eventual accuracy: trusted again within a period + latency *)
  at 34.0 (fun () ->
      check "recovered node trusted again" false (Fd.suspects fd ~node:0 3);
      check_int "nobody suspected" 0 (Fd.suspected_count fd ~node:0));
  (* a foreground timer keeps the run alive to t=35 *)
  Engine.set_timer engine ~node:0 ~delay:35.0 ~tag:0;
  Engine.run engine

let test_fd_partition_suspicion_heals () =
  let fd, engine = make_fd_world ~nodes:6 () in
  let network = Engine.network engine in
  let cut = ref None in
  let at time f = Engine.schedule engine ~time f in
  at 5.0 (fun () -> cut := Some (Network.partition network ~group_a:[ 0; 1 ]));
  at 15.0 (fun () ->
      (* both sides suspect each other... *)
      check "minority suspects far side" true (Fd.suspects fd ~node:0 4);
      check "majority suspects minority" true (Fd.suspects fd ~node:4 0);
      (* ...but nobody suspects their own side *)
      check "own side trusted" false (Fd.suspects fd ~node:0 1);
      match !cut with Some c -> Network.heal network c | None -> ());
  at 22.0 (fun () ->
      check "suspicion clears after heal" false (Fd.suspects fd ~node:0 4);
      check "reverse clears too" false (Fd.suspects fd ~node:4 0));
  Engine.set_timer engine ~node:0 ~delay:23.0 ~tag:0;
  Engine.run engine

(* --- Protocols under chaos scenarios -------------------------------- *)

let smoke_horizon = 120.0

let test_mutex_safe_under_every_scenario () =
  (* The acceptance bar: across loss, bursts, partition, churn and gray
     failures, zero safety violations — and under plain loss the
     protocol still serves every request. *)
  let system = Core.Registry.build_exn "htriang(10)" in
  List.iter
    (fun scenario ->
      let r =
        Protocols.Chaos.run_mutex ~seed:11 ~rate:0.3 ~system scenario
      in
      check_int (scenario.Protocols.Chaos.label ^ ": no violations") 0
        r.Protocols.Chaos.violations;
      check (scenario.Protocols.Chaos.label ^ ": made progress") true
        (r.Protocols.Chaos.entries > 0);
      check (scenario.Protocols.Chaos.label ^ ": within budget") false
        r.Protocols.Chaos.budget_hit)
    (Protocols.Chaos.standard ~n:10 ~horizon:smoke_horizon)

let test_mutex_full_service_under_loss () =
  let system = Core.Registry.build_exn "htriang(10)" in
  let scenario =
    Protocols.Chaos.
      {
        label = "loss .05";
        horizon = smoke_horizon;
        plan = { calm with loss = 0.05 };
      }
  in
  let r = Protocols.Chaos.run_mutex ~seed:13 ~rate:0.3 ~system scenario in
  check_int "all served" r.Protocols.Chaos.issued r.Protocols.Chaos.entries;
  check_int "no violations" 0 r.Protocols.Chaos.violations

let test_store_consistent_under_every_scenario () =
  let read_system = Core.Registry.build_exn "hgrid-read(3x3)" in
  let write_system = Core.Registry.build_exn "hgrid-write(3x3)" in
  List.iter
    (fun scenario ->
      let r =
        Protocols.Chaos.run_store ~seed:17 ~rate:1.0 ~read_system ~write_system
          ~name:"hgrid-r/w(3x3)" scenario
      in
      check_int (scenario.Protocols.Chaos.label ^ ": no stale reads") 0
        r.Protocols.Chaos.stale_reads;
      check (scenario.Protocols.Chaos.label ^ ": reads complete") true
        (r.Protocols.Chaos.reads_ok > 0);
      check (scenario.Protocols.Chaos.label ^ ": writes complete") true
        (r.Protocols.Chaos.writes_ok > 0);
      check (scenario.Protocols.Chaos.label ^ ": within budget") false
        r.Protocols.Chaos.budget_hit)
    (Protocols.Chaos.standard ~n:9 ~horizon:smoke_horizon)

let test_store_loss_and_partition_acceptance () =
  (* The ISSUE acceptance scenario: 5% loss plus a transient partition;
     every completed read consistent, most ops complete. *)
  let system = Core.Registry.build_exn "majority(9)" in
  let scenario =
    Protocols.Chaos.
      {
        label = "acceptance";
        horizon = smoke_horizon;
        plan =
          {
            calm with
            loss = 0.05;
            partitions = [ (30.0, 25.0, [ 0; 1 ]) ];
          };
      }
  in
  let r =
    Protocols.Chaos.run_store ~seed:19 ~rate:1.5 ~read_system:system
      ~write_system:system ~name:"majority(9)" scenario
  in
  check_int "no stale reads" 0 r.Protocols.Chaos.stale_reads;
  let ok = r.Protocols.Chaos.reads_ok + r.Protocols.Chaos.writes_ok in
  check "most ops complete" true (ok * 10 >= r.Protocols.Chaos.issued * 8)

let test_mutex_loss_and_partition_acceptance () =
  let system = Core.Registry.build_exn "majority(9)" in
  let scenario =
    Protocols.Chaos.
      {
        label = "acceptance";
        horizon = smoke_horizon;
        plan =
          {
            calm with
            loss = 0.05;
            partitions = [ (30.0, 25.0, [ 0; 1 ]) ];
          };
      }
  in
  let r = Protocols.Chaos.run_mutex ~seed:23 ~rate:0.3 ~system scenario in
  check_int "no violations" 0 r.Protocols.Chaos.violations;
  check "most requests served" true
    (r.Protocols.Chaos.entries * 10 >= r.Protocols.Chaos.issued * 7)

let test_chaos_runs_are_reproducible () =
  let system = Core.Registry.build_exn "htriang(10)" in
  let scenario =
    List.nth (Protocols.Chaos.standard ~n:10 ~horizon:smoke_horizon) 1
  in
  let a = Protocols.Chaos.run_mutex ~seed:29 ~system scenario in
  let b = Protocols.Chaos.run_mutex ~seed:29 ~system scenario in
  check "same seed, same report" true (a = b);
  let c = Protocols.Chaos.run_mutex ~seed:31 ~system scenario in
  check "different seed, different run" true (a <> c)

(* qcheck: rpc at-most-once delivery holds for arbitrary loss rates,
   seeds and message counts. *)
let rpc_at_most_once =
  QCheck.Test.make ~count:30 ~name:"rpc delivers at most once"
    QCheck.(triple (int_range 0 10_000) (float_range 0.0 0.5) (int_range 1 40))
    (fun (seed, loss, msgs) ->
      let rpc, engine, _net, delivered =
        make_rpc_world ~loss ~seed ~nodes:3 ()
      in
      for i = 0 to msgs - 1 do
        Engine.schedule engine
          ~time:(float_of_int i *. 0.3)
          (fun () -> Rpc.send rpc ~src:(i mod 3) ~dst:((i + 1) mod 3) i)
      done;
      Engine.run engine;
      let payloads =
        List.sort compare (List.map (fun (_, _, p) -> p) !delivered)
      in
      let distinct = List.sort_uniq compare payloads in
      let n_delivered = List.length payloads in
      (* at-most-once always; and every message was either delivered
         or dead-lettered (a dead letter may ALSO have been delivered:
         the data got through but its acks died, so >=, not =) *)
      List.length distinct = n_delivered
      && n_delivered <= msgs
      && n_delivered + Rpc.dead_letters rpc >= msgs)

let () =
  Alcotest.run "chaos"
    [
      ( "rpc",
        [
          Alcotest.test_case "delivery under loss" `Quick
            test_rpc_delivery_under_loss;
          Alcotest.test_case "no duplicate side-effects" `Quick
            test_rpc_no_duplicate_side_effects;
          Alcotest.test_case "dead letters" `Quick
            test_rpc_dead_letter_on_partition;
          QCheck_alcotest.to_alcotest rpc_at_most_once;
        ] );
      ( "failure detector",
        [
          Alcotest.test_case "completeness + accuracy" `Quick
            test_fd_completeness_and_accuracy;
          Alcotest.test_case "partition suspicion" `Quick
            test_fd_partition_suspicion_heals;
        ] );
      ( "chaos smoke",
        [
          Alcotest.test_case "mutex: all scenarios safe" `Quick
            test_mutex_safe_under_every_scenario;
          Alcotest.test_case "mutex: full service at 5% loss" `Quick
            test_mutex_full_service_under_loss;
          Alcotest.test_case "store: all scenarios consistent" `Quick
            test_store_consistent_under_every_scenario;
          Alcotest.test_case "store: loss+partition acceptance" `Quick
            test_store_loss_and_partition_acceptance;
          Alcotest.test_case "mutex: loss+partition acceptance" `Quick
            test_mutex_loss_and_partition_acceptance;
          Alcotest.test_case "reproducible" `Quick
            test_chaos_runs_are_reproducible;
        ] );
    ]
