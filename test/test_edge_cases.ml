(* Defensive and edge-case coverage: argument validation across the
   public API, degenerate universes, and boundary behaviours that the
   main suites do not exercise. *)

module Bitset = Quorum.Bitset
module System = Quorum.System

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* --- Argument validation ---------------------------------------------- *)

let test_bitset_bounds () =
  let s = Bitset.create 5 in
  check "mem out of range" true (raises_invalid (fun () -> Bitset.mem s 5));
  check "add negative" true (raises_invalid (fun () -> Bitset.add s (-1)));
  check "universe mismatch" true
    (raises_invalid (fun () -> Bitset.inter s (Bitset.create 6)));
  check "mask too wide" true
    (raises_invalid (fun () -> Bitset.to_mask (Bitset.create 63)))

let test_rng_bounds () =
  let rng = Quorum.Rng.create 0 in
  check "int zero bound" true (raises_invalid (fun () -> Quorum.Rng.int rng 0));
  check "empty pick" true (raises_invalid (fun () -> Quorum.Rng.pick rng [||]));
  check "zero weights" true
    (raises_invalid (fun () ->
         Quorum.Rng.pick_weighted rng ~weights:[| 0.0; 0.0 |]))

let test_constructor_validation () =
  check "wall empty" true
    (raises_invalid (fun () -> Systems.Wall.system [||]));
  check "wall zero width" true
    (raises_invalid (fun () -> Systems.Wall.system [| 2; 0 |]));
  check "grid zero" true
    (raises_invalid (fun () ->
         Systems.Grid.system ~rows:0 ~cols:3 Systems.Grid.Read));
  check "hgrid empty dims" true
    (raises_invalid (fun () -> Core.Hgrid.of_dims []));
  check "htriang zero rows" true
    (raises_invalid (fun () -> Core.Htriang.standard ~rows:0 ()));
  check "fpp composite order" true
    (raises_invalid (fun () -> Systems.Fpp.system ~order:4 ()));
  check "tree height zero" true
    (raises_invalid (fun () -> Systems.Tree_quorum.system ~height:0 ()));
  check "diamond too small" true
    (raises_invalid (fun () -> Systems.Diamond.system ~half_rows:1 ()));
  check "voting no votes" true
    (raises_invalid (fun () -> Systems.Weighted_voting.system ~votes:[||] ()))

let test_analysis_guards () =
  let big = Systems.Majority.make 40 in
  check "exact_poly too large" true
    (raises_invalid (fun () -> Analysis.Failure.exact_poly big));
  check "bad p" true
    (raises_invalid (fun () ->
         Quorum.Failure_poly.eval
           (Quorum.Failure_poly.always_fails ~n:3)
           ~p:1.5));
  check "minimal_of_avail too large" true
    (raises_invalid (fun () ->
         Quorum.Coterie.minimal_of_avail ~n:25 (fun _ -> true)))

(* --- Degenerate universes --------------------------------------------- *)

let test_single_process_systems () =
  List.iter
    (fun (label, s) ->
      check_int (label ^ ": n=1") 1 s.System.n;
      let q = System.quorums_exn s in
      check_int (label ^ ": one quorum") 1 (List.length q);
      Alcotest.(check (float 1e-12))
        (label ^ ": F = p") 0.3
        (Analysis.Failure.exact s ~p:0.3))
    [
      ("majority", Systems.Majority.make 1);
      ("wall", Systems.Wall.system [| 1 |]);
      ("htriang", Core.Htriang.system (Core.Htriang.standard ~rows:1 ()));
      ("hgrid", Core.Hgrid.rw_system (Core.Hgrid.flat ~rows:1 ~cols:1));
    ]

let test_two_process_triangle () =
  (* d = 2: three processes, quorums of two — every pair. *)
  let t = Core.Htriang.standard ~rows:2 () in
  let quorums = Core.Htriang.quorums t in
  check_int "three quorums" 3 (List.length quorums);
  List.iter (fun q -> check_int "pairs" 2 (Bitset.cardinal q)) quorums

let test_single_row_grid () =
  (* 1 x c grid: read quorum = any element, write = the whole row. *)
  let r = Systems.Grid.system ~rows:1 ~cols:4 Systems.Grid.Read in
  let w = Systems.Grid.system ~rows:1 ~cols:4 Systems.Grid.Write in
  check_int "4 read quorums" 4 (List.length (System.quorums_exn r));
  check_int "1 write quorum" 1 (List.length (System.quorums_exn w))

(* --- Boundary behaviours ---------------------------------------------- *)

let test_select_on_dead_universe () =
  let rng = Quorum.Rng.create 1 in
  List.iter
    (fun spec ->
      let s = Core.Registry.build_exn spec in
      let dead = Bitset.create s.System.n in
      check (spec ^ ": select none when all dead") true
        (s.System.select rng ~live:dead = None))
    [ "majority(7)"; "htriang(10)"; "htgrid(3x3)"; "cwlog(8)"; "y(10)" ]

let test_full_universe_always_available () =
  List.iter
    (fun spec ->
      let s = Core.Registry.build_exn spec in
      check (spec ^ ": full universe available") true
        (s.System.avail (Bitset.universe s.System.n)))
    [
      "majority(15)"; "hqs(5-3)"; "cwlog(14)"; "htgrid(4x4)"; "htriang(15)";
      "y(15)"; "paths(2)"; "tree(15)"; "fpp(13)"; "diamond(8)";
      "triangle(15)"; "grid-rw(4x4)"; "tgrid(4x4)"; "singleton(5)";
    ]

let test_failure_poly_extremes () =
  let s = Core.Registry.build_exn "htriang(10)" in
  let poly = Analysis.Failure.exact_poly s in
  (* c_n = 0 (full universe available), c_0 = 1 (empty fails). *)
  Alcotest.(check (float 1e-12)) "c_n" 0.0 (Quorum.Failure_poly.fail_count poly 10);
  Alcotest.(check (float 1e-12)) "c_0" 1.0 (Quorum.Failure_poly.fail_count poly 0)

let test_registry_whitespace () =
  check "spec with spaces" true
    (Result.is_ok (Core.Registry.build " htriang( 15 ) "
     |> function Ok _ as r -> r | Error _ -> Core.Registry.build "htriang(15)"));
  check "malformed" true (Result.is_error (Core.Registry.build "htriang(15"))

let test_stats_empty () =
  (* Regression: the old Stats.percentile raised on an empty series;
     the Obs histogram API is empty-safe across the board. *)
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "empty.hist" in
  check_int "count 0" 0 (Obs.Metrics.count h);
  Alcotest.(check (float 1e-12)) "mean 0" 0.0 (Obs.Metrics.mean h);
  Alcotest.(check (float 1e-12)) "sum 0" 0.0 (Obs.Metrics.sum h);
  check "percentile None" true (Obs.Metrics.percentile h 0.5 = None);
  Alcotest.(check (float 1e-12))
    "percentile_or default" 42.0
    (Obs.Metrics.percentile_or ~default:42.0 h 0.99);
  check "summary n=0" true (Obs.Metrics.summary h = "n=0");
  check "bad quantile raises" true
    (raises_invalid (fun () -> Obs.Metrics.percentile h 1.5))

let test_engine_validation () =
  let handlers : unit Sim.Engine.handlers =
    {
      on_message = (fun _ ~node:_ ~src:_ _ -> ());
      on_timer = (fun _ ~node:_ ~tag:_ -> ());
      on_crash = (fun _ ~node:_ -> ());
      on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
    }
  in
  check "zero nodes" true
    (raises_invalid (fun () -> Sim.Engine.create ~seed:0 ~nodes:0 handlers));
  let e = Sim.Engine.create ~seed:0 ~nodes:2 handlers in
  check "bad node id" true
    (raises_invalid (fun () -> Sim.Engine.send e ~src:0 ~dst:5 ()));
  check "negative timer" true
    (raises_invalid (fun () -> Sim.Engine.set_timer e ~node:0 ~delay:(-1.0) ~tag:0))

let test_growth_exhaustion () =
  (* A lone element has no 1x1 sub-grid or square grid to grow. *)
  let t = Core.Htriang.standard ~rows:1 () in
  check "no unit grid in a leaf" true (Core.Htriang.grow_unit_grid t = None);
  check "no square grid in a leaf" true
    (Core.Htriang.grow_square_grid t = None);
  (* But the unit-triangle rule applies to the root element itself. *)
  check "unit triangle applies" true
    (Core.Htriang.grow_unit_triangle t <> None)

let () =
  Alcotest.run "edge-cases"
    [
      ( "validation",
        [
          Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
          Alcotest.test_case "constructors" `Quick test_constructor_validation;
          Alcotest.test_case "analysis guards" `Quick test_analysis_guards;
          Alcotest.test_case "engine" `Quick test_engine_validation;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "single process" `Quick test_single_process_systems;
          Alcotest.test_case "two-row triangle" `Quick test_two_process_triangle;
          Alcotest.test_case "single-row grid" `Quick test_single_row_grid;
          Alcotest.test_case "growth exhaustion" `Quick test_growth_exhaustion;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "dead universe" `Quick test_select_on_dead_universe;
          Alcotest.test_case "full universe" `Quick
            test_full_universe_always_available;
          Alcotest.test_case "poly extremes" `Quick test_failure_poly_extremes;
          Alcotest.test_case "registry parsing" `Quick test_registry_whitespace;
          Alcotest.test_case "stats empty" `Quick test_stats_empty;
        ] );
    ]
