(* Observability layer tests: the typed metrics registry (counters,
   gauges, exact-sample histograms with labels), the trace ring and its
   causality check, the serialization sinks, and the end-to-end wiring
   through the engine and a chaos run. *)

module M = Obs.Metrics
module T = Obs.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* --- Histogram percentiles vs a sorted-list oracle ------------------- *)

let oracle_percentile samples q =
  (* Nearest-rank on the sorted sample list. *)
  let sorted = List.sort compare samples in
  let len = List.length sorted in
  let idx = min (len - 1) (max 0 (int_of_float (ceil (q *. float len)) - 1)) in
  List.nth sorted idx

let percentile_matches_oracle =
  QCheck.Test.make ~name:"histogram percentile = nearest-rank oracle"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (float_bound_inclusive 1000.0))
        (float_bound_inclusive 1.0))
    (fun (samples, q) ->
      QCheck.assume (samples <> []);
      let m = M.create () in
      let h = M.histogram m "oracle.hist" in
      List.iter (fun v -> M.observe h v) samples;
      match M.percentile h q with
      | None -> false
      | Some p -> p = oracle_percentile samples q)

let test_percentile_interleaved_reads () =
  (* Reads between writes must not corrupt later percentiles (the
     sorted cache is invalidated by each observe). *)
  let m = M.create () in
  let h = M.histogram m "interleave.hist" in
  M.observe h 5.0;
  check_float "p50 after one" 5.0 (M.percentile_or ~default:nan h 0.5);
  M.observe h 1.0;
  M.observe h 9.0;
  check_float "median of 1,5,9" 5.0 (M.percentile_or ~default:nan h 0.5);
  check_float "p0 is min" 1.0 (M.percentile_or ~default:nan h 0.0);
  check_float "p100 is max" 9.0 (M.percentile_or ~default:nan h 1.0);
  check_int "count" 3 (M.count h);
  check_float "sum" 15.0 (M.sum h);
  check_float "mean" 5.0 (M.mean h)

(* --- Labels ---------------------------------------------------------- *)

let test_labeled_counter_isolation () =
  let m = M.create () in
  let c = M.counter m "test.ops" in
  M.incr c ~labels:[ ("node", "1") ];
  M.incr c ~labels:[ ("node", "2") ] ~by:5;
  M.incr c;
  check_int "cell node=1" 1 (M.counter_value c ~labels:[ ("node", "1") ]);
  check_int "cell node=2" 5 (M.counter_value c ~labels:[ ("node", "2") ]);
  check_int "unlabeled cell" 1 (M.counter_value c);
  check_int "unwritten cell reads 0" 0
    (M.counter_value c ~labels:[ ("node", "99") ])

let test_label_order_canonicalized () =
  let m = M.create () in
  let c = M.counter m "test.multi" in
  M.incr c ~labels:[ ("a", "1"); ("b", "2") ];
  M.incr c ~labels:[ ("b", "2"); ("a", "1") ];
  check_int "both orders hit one cell" 2
    (M.counter_value c ~labels:[ ("b", "2"); ("a", "1") ]);
  let h = M.histogram m "test.lat" in
  M.observe h ~labels:[ ("op", "read"); ("node", "3") ] 1.0;
  check_int "histogram cell shared across orders" 1
    (M.count h ~labels:[ ("node", "3"); ("op", "read") ])

let test_registration_idempotent_and_kind_clash () =
  let m = M.create () in
  let c1 = M.counter m "dual.name" in
  let c2 = M.counter m "dual.name" in
  M.incr c1;
  M.incr c2;
  check_int "same family" 2 (M.counter_value c1);
  check "kind clash raises" true
    (raises_invalid (fun () -> ignore (M.histogram m "dual.name")));
  check "gauge clash raises" true
    (raises_invalid (fun () -> ignore (M.gauge m "dual.name")))

let test_gauge_last_wins () =
  let m = M.create () in
  let g = M.gauge m "test.level" in
  M.set g 3.0;
  M.set g 7.0;
  check_float "last write wins" 7.0 (M.gauge_value g);
  check_float "unwritten gauge is 0" 0.0
    (M.gauge_value g ~labels:[ ("node", "0") ])

let test_snapshot_deterministic () =
  let build () =
    let m = M.create () in
    let c = M.counter m "z.last" in
    M.incr c ~labels:[ ("node", "2") ];
    M.incr c ~labels:[ ("node", "10") ];
    ignore (M.gauge m "a.first");
    let h = M.histogram m "m.mid" in
    M.observe h 1.5;
    m
  in
  let s1 = M.snapshot (build ()) and s2 = M.snapshot (build ()) in
  check "snapshots identical" true (s1 = s2);
  let names = List.map (fun (s : M.sample) -> s.M.name) s1 in
  check "sorted by name" true (names = List.sort compare names);
  (* Snapshot emits cells only, so the never-written gauge family is
     absent there — but render still lists it as "(no data)". *)
  check "empty family has no cells" false
    (List.exists (fun (s : M.sample) -> s.M.name = "a.first") s1);
  let rendered = M.render (build ()) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "render lists the empty family" true (contains rendered "a.first");
  check "render marks it (no data)" true (contains rendered "(no data)")

(* --- Trace ring ------------------------------------------------------ *)

let test_trace_ring_eviction () =
  let t = T.create ~capacity:4 () in
  for i = 0 to 9 do
    T.record t ~time:(float i) ~node:i T.Note
  done;
  check_int "recorded counts everything" 10 (T.recorded t);
  check_int "length capped at capacity" 4 (T.length t);
  check_int "dropped = overflow" 6 (T.dropped t);
  let nodes = List.map (fun (e : T.event) -> e.T.node) (T.to_list t) in
  check "keeps the newest, oldest-first" true (nodes = [ 6; 7; 8; 9 ]);
  let seqs = List.map (fun (e : T.event) -> e.T.seq) (T.to_list t) in
  check "seq monotone" true (seqs = List.sort compare seqs);
  T.clear t;
  check_int "clear empties" 0 (T.length t)

let test_trace_capacity_zero_disables () =
  let t = T.create ~capacity:0 () in
  T.record t ~time:1.0 ~node:0 T.Send;
  check_int "nothing recorded" 0 (T.recorded t);
  check_int "nothing held" 0 (T.length t)

let test_causality_detects_orphan () =
  let t = T.create ~capacity:64 () in
  T.record t ~time:0.0 ~node:0 ~peer:1 ~msg_id:1 T.Send;
  T.record t ~time:1.0 ~node:1 ~peer:0 ~msg_id:1 T.Deliver;
  check "matched deliver passes" true (T.causality_violations t = []);
  (* A deliver whose send was never recorded is an orphan. *)
  T.record t ~time:2.0 ~node:1 ~peer:0 ~msg_id:7 T.Deliver;
  let bad = T.causality_violations t in
  check_int "one orphan" 1 (List.length bad);
  check_int "orphan id" 7 (List.hd bad).T.msg_id

(* --- Engine integration ---------------------------------------------- *)

type msg = Ping | Pong

let probe_handlers : msg Sim.Engine.handlers =
  {
    on_message =
      (fun engine ~node ~src m ->
        match m with
        | Ping -> Sim.Engine.send engine ~src:node ~dst:src Pong
        | Pong -> ());
    on_timer = (fun _ ~node:_ ~tag:_ -> ());
    on_crash = (fun _ ~node:_ -> ());
    on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
  }

let test_engine_traces_message_lifecycle () =
  let obs = Obs.create () in
  let e = Sim.Engine.create ~seed:3 ~nodes:3 ~obs probe_handlers in
  Sim.Engine.send e ~src:0 ~dst:1 Ping;
  Sim.Engine.run e;
  let tr = Obs.trace obs in
  let count k =
    List.length
      (List.filter (fun (ev : T.event) -> ev.T.kind = k) (T.to_list tr))
  in
  check_int "two sends traced" 2 (count T.Send);
  check_int "two delivers traced" 2 (count T.Deliver);
  check "causality clean" true (T.causality_violations tr = []);
  let m = Obs.metrics obs in
  let sent = M.counter m "sim.messages_sent" in
  check_int "metric mirrors accessor" (Sim.Engine.messages_sent e)
    (M.counter_value sent)

let test_engine_deterministic_with_obs () =
  (* Observability must not perturb the RNG streams: a run with a trace
     attached is bit-identical to one without. *)
  let run obs =
    let e = Sim.Engine.create ~seed:17 ~nodes:4 ?obs probe_handlers in
    Sim.Engine.send e ~src:0 ~dst:1 Ping;
    Sim.Engine.send e ~src:2 ~dst:3 Ping;
    Sim.Engine.run e;
    (Sim.Engine.now e, Sim.Engine.messages_delivered e)
  in
  check "identical outcomes" true
    (run None = run (Some (Obs.create ~trace_capacity:0 ())))

(* --- Sinks ----------------------------------------------------------- *)

let slurp path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_temp f =
  let path = Filename.temp_file "test_obs" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_sink_metrics_jsonl () =
  let m = M.create () in
  let c = M.counter m "sink.hits" in
  M.incr c ~labels:[ ("node", "1") ] ~by:3;
  let h = M.histogram m "sink.lat" in
  M.observe h 0.5;
  M.observe h 1.5;
  with_temp (fun path ->
      Obs.Sink.with_file path (fun oc -> Obs.Sink.metrics_jsonl oc m);
      let out = slurp path in
      let lines = String.split_on_char '\n' (String.trim out) in
      check_int "one line per cell" 2 (List.length lines);
      List.iter
        (fun l ->
          check "line is a json object" true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines)

let test_sink_trace_csv_header () =
  let t = T.create ~capacity:8 () in
  T.record t ~time:0.25 ~node:0 ~peer:1 ~msg_id:4 ~label:"x,\"y\"" T.Send;
  with_temp (fun path ->
      Obs.Sink.with_file path (fun oc -> Obs.Sink.trace_csv oc t);
      let out = slurp path in
      let lines = String.split_on_char '\n' (String.trim out) in
      check_int "header + one row" 2 (List.length lines);
      check_str "header" "seq,time,kind,node,peer,msg_id,span,label"
        (List.hd lines);
      (* The comma-and-quote label must round-trip quoted. *)
      check "label quoted" true
        (String.length (List.nth lines 1) > 0
        && String.contains (List.nth lines 1) '"'))

(* Prometheus text exposition (format 0.0.4). *)

let prom_string m =
  with_temp (fun path ->
      Obs.Sink.with_file path (fun oc -> Obs.Sink.metrics_prometheus oc m);
      slurp path)

let test_prom_empty_registry () =
  (* No families registered: the exposition is the empty document, not
     a stray header. *)
  check_str "empty registry" "" (prom_string (M.create ()))

let test_prom_label_escaping () =
  let m = M.create () in
  let c = M.counter m "prom.esc" ~help:"escape \"check\"" in
  M.incr c ~labels:[ ("path", "a\\b\"c\nd") ] ~by:2;
  let out = prom_string m in
  check "dots in the name map to underscores" true
    (contains out "prom_esc_total");
  check "backslash, quote and newline escaped in the label value" true
    (contains out "path=\"a\\\\b\\\"c\\nd\"");
  check "help text escaped" true
    (contains out "# HELP prom_esc_total escape \\\"check\\\"");
  check "counter typed" true (contains out "# TYPE prom_esc_total counter");
  check "cell value" true (contains out "} 2")

let test_prom_histogram_summary () =
  (* Exact-sample histograms are exposed as summaries: pre-computed
     quantile series plus _sum and _count. *)
  let m = M.create () in
  let h = M.histogram m "prom.lat" ~help:"latency" in
  M.observe h ~labels:[ ("op", "read") ] 1.0;
  M.observe h ~labels:[ ("op", "read") ] 3.0;
  let out = prom_string m in
  check "summary typed" true (contains out "# TYPE prom_lat summary");
  check "single HELP/TYPE block" true
    (not (contains out "# TYPE prom_lat_sum"));
  check "p50 series" true
    (contains out "prom_lat{op=\"read\",quantile=\"0.5\"} 1");
  check "p90 series" true
    (contains out "prom_lat{op=\"read\",quantile=\"0.9\"} 3");
  check "p99 series" true
    (contains out "prom_lat{op=\"read\",quantile=\"0.99\"} 3");
  check "sum series" true (contains out "prom_lat_sum{op=\"read\"} 4");
  check "count series" true (contains out "prom_lat_count{op=\"read\"} 2")

(* --- End to end: a chaos run ----------------------------------------- *)

let test_chaos_run_causality_and_metrics () =
  let obs = Obs.create ~trace_capacity:(1 lsl 17) () in
  let system = Core.Registry.build_exn "htriang(10)" in
  let scenario =
    Protocols.Chaos.scenario_of_label ~n:10 ~horizon:120.0 "loss+burst"
  in
  let report = Protocols.Chaos.run_mutex ~seed:7 ~obs ~system scenario in
  check_int "safe under chaos" 0 report.Protocols.Chaos.violations;
  check "some entries" true (report.Protocols.Chaos.entries > 0);
  let tr = Obs.trace obs in
  check "trace not empty" true (T.length tr > 0);
  check_int "no eviction at this capacity" 0 (T.dropped tr);
  check "every deliver has a prior send" true (T.causality_violations tr = []);
  let m = Obs.metrics obs in
  let sends = M.counter m "rpc.sends" in
  check "rpc sends metered" true (M.counter_value sends > 0);
  let entries = M.counter m "mutex.entries" in
  check_int "entries metric mirrors report" report.Protocols.Chaos.entries
    (M.counter_value entries);
  let lat = M.histogram m "mutex.acquire_latency" in
  check_int "latency sample per entry" report.Protocols.Chaos.entries
    (M.count lat);
  (* Lossy network: retransmissions must both happen and be metered. *)
  let retr = M.counter m "rpc.retransmits" in
  let total_retr =
    List.fold_left
      (fun acc (s : M.sample) ->
        match s.M.value with
        | M.Counter v when s.M.name = "rpc.retransmits" -> acc + v
        | _ -> acc)
      0 (M.snapshot m)
  in
  ignore retr;
  check_int "per-node retransmit cells sum to report"
    report.Protocols.Chaos.retransmissions total_retr

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          QCheck_alcotest.to_alcotest percentile_matches_oracle;
          Alcotest.test_case "interleaved reads" `Quick
            test_percentile_interleaved_reads;
          Alcotest.test_case "labeled counters" `Quick
            test_labeled_counter_isolation;
          Alcotest.test_case "label canonicalization" `Quick
            test_label_order_canonicalized;
          Alcotest.test_case "registration" `Quick
            test_registration_idempotent_and_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge_last_wins;
          Alcotest.test_case "snapshot" `Quick test_snapshot_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "capacity zero" `Quick
            test_trace_capacity_zero_disables;
          Alcotest.test_case "orphan deliver" `Quick
            test_causality_detects_orphan;
        ] );
      ( "engine",
        [
          Alcotest.test_case "message lifecycle" `Quick
            test_engine_traces_message_lifecycle;
          Alcotest.test_case "determinism" `Quick
            test_engine_deterministic_with_obs;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "metrics jsonl" `Quick test_sink_metrics_jsonl;
          Alcotest.test_case "trace csv" `Quick test_sink_trace_csv_header;
          Alcotest.test_case "prometheus empty registry" `Quick
            test_prom_empty_registry;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prom_label_escaping;
          Alcotest.test_case "prometheus histogram summary" `Quick
            test_prom_histogram_summary;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "chaos causality" `Quick
            test_chaos_run_causality_and_metrics;
        ] );
    ]
