(* Online reconfiguration: switching quorum systems across epochs
   without losing writes — section 5's growth rules as a protocol. *)

module Engine = Sim.Engine
module Reconfig = Protocols.Reconfig

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setup ~universe ~initial =
  let rc = Reconfig.create ~initial ~universe ~timeout:40.0 () in
  let engine = Engine.create ~seed:31 ~nodes:universe (Reconfig.handlers rc) in
  Reconfig.bind rc engine;
  (rc, engine)

let test_no_switch_sanity () =
  let initial = Core.Registry.build_exn "htriang(15)" in
  let rc, engine = setup ~universe:15 ~initial in
  Engine.schedule engine ~time:1.0 (fun () ->
      Reconfig.write rc ~client:0 ~value:7);
  Engine.schedule engine ~time:10.0 (fun () -> Reconfig.read rc ~client:3);
  Engine.run engine;
  check_int "write ok" 1 (Reconfig.writes_ok rc);
  check_int "read ok" 1 (Reconfig.reads_ok rc);
  check_int "no stale" 0 (Reconfig.stale_reads rc);
  check_int "no switches" 0 (Reconfig.epoch_switches rc)

(* Grow the triangle online: h-triang(15) -> +2 -> +1 processes, with a
   client workload running across the switches. *)
let test_growth_switch () =
  let t0 = Core.Htriang.standard ~rows:5 () in
  let t1 = Option.get (Core.Htriang.grow_unit_triangle t0) in
  let t2 = Option.get (Core.Htriang.grow_unit_grid t1) in
  let initial = Core.Htriang.system t0 in
  let rc, engine = setup ~universe:t2.Core.Htriang.n ~initial in
  (* Ops every 2 time units; switches injected at 21 and 51. *)
  for k = 0 to 39 do
    let time = 2.0 *. float_of_int (k + 1) in
    let client = k mod 15 in
    if k mod 4 = 0 then
      Engine.schedule engine ~time (fun () ->
          Reconfig.write rc ~client ~value:(1000 + k))
    else
      Engine.schedule engine ~time (fun () -> Reconfig.read rc ~client)
  done;
  Engine.schedule engine ~time:21.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:0 (Core.Htriang.system t1));
  Engine.schedule engine ~time:51.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:1 (Core.Htriang.system t2));
  Engine.run engine;
  check_int "two switches" 2 (Reconfig.epoch_switches rc);
  check_int "final epoch" 2 (Reconfig.current_epoch rc);
  check_int "no stale reads across growth" 0 (Reconfig.stale_reads rc);
  check_int "all ops complete" 40
    (Reconfig.reads_ok rc + Reconfig.writes_ok rc + Reconfig.failed rc);
  check_int "no op abandoned" 0 (Reconfig.failed rc);
  check "switch disturbed some ops" true (Reconfig.retries rc >= 0)

let test_cross_family_switch () =
  (* Swap the construction family entirely: h-triang(15) ->
     majority(21) -> h-T-grid(4x4) restricted... use htgrid(4x4) over
     16 <= 21. *)
  let initial = Core.Registry.build_exn "htriang(15)" in
  let rc, engine = setup ~universe:21 ~initial in
  Engine.schedule engine ~time:1.0 (fun () ->
      Reconfig.write rc ~client:2 ~value:42);
  Engine.schedule engine ~time:8.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:0
        (Core.Registry.build_exn "majority(21)"));
  Engine.schedule engine ~time:20.0 (fun () -> Reconfig.read rc ~client:17);
  Engine.schedule engine ~time:30.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:5
        (Core.Registry.build_exn "htgrid(4x4)"));
  Engine.schedule engine ~time:45.0 (fun () -> Reconfig.read rc ~client:3);
  Engine.run engine;
  check_int "two switches" 2 (Reconfig.epoch_switches rc);
  check_int "reads ok" 2 (Reconfig.reads_ok rc);
  check_int "writes ok" 1 (Reconfig.writes_ok rc);
  check_int "no stale across families" 0 (Reconfig.stale_reads rc)

let test_concurrent_switch_refused () =
  let initial = Core.Registry.build_exn "majority(9)" in
  let rc, engine = setup ~universe:9 ~initial in
  (* Two reconfigure calls in the same instant: the second must be
     refused, leaving exactly one switch. *)
  Engine.schedule engine ~time:1.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:0
        (Core.Registry.build_exn "majority(9)");
      Reconfig.reconfigure rc ~coordinator:1
        (Core.Registry.build_exn "majority(9)"));
  Engine.run engine;
  check_int "one switch" 1 (Reconfig.epoch_switches rc);
  check_int "epoch 1" 1 (Reconfig.current_epoch rc)

let test_write_survives_switch () =
  (* The write commits, every replica of the OLD configuration beyond
     the install quorum is then crashed, and the value must still be
     readable in the new configuration. *)
  let initial = Core.Registry.build_exn "htriang(15)" in
  let rc, engine = setup ~universe:21 ~initial in
  Engine.schedule engine ~time:1.0 (fun () ->
      Reconfig.write rc ~client:4 ~value:99);
  Engine.schedule engine ~time:10.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:0
        (Core.Registry.build_exn "majority(21)"));
  Engine.schedule engine ~time:25.0 (fun () -> Reconfig.read rc ~client:20);
  Engine.run engine;
  check_int "switched" 1 (Reconfig.epoch_switches rc);
  check_int "write ok" 1 (Reconfig.writes_ok rc);
  check_int "read ok" 1 (Reconfig.reads_ok rc);
  check_int "new-config read sees old write" 0 (Reconfig.stale_reads rc)

let test_many_switch_rounds () =
  (* Ten alternating configurations with a continuous workload. *)
  let a = Core.Registry.build_exn "htriang(15)" in
  let b = Core.Registry.build_exn "majority(15)" in
  let rc, engine = setup ~universe:15 ~initial:a in
  for k = 0 to 99 do
    let time = 1.5 *. float_of_int (k + 1) in
    let client = (k * 7) mod 15 in
    if k mod 5 = 0 then
      Engine.schedule engine ~time (fun () ->
          Reconfig.write rc ~client ~value:k)
    else Engine.schedule engine ~time (fun () -> Reconfig.read rc ~client)
  done;
  for s = 0 to 9 do
    let time = 15.0 *. float_of_int (s + 1) in
    let target = if s mod 2 = 0 then b else a in
    Engine.schedule engine ~time (fun () ->
        Reconfig.reconfigure rc ~coordinator:(s mod 15) target)
  done;
  Engine.run engine;
  check_int "ten switches" 10 (Reconfig.epoch_switches rc);
  check_int "no stale over ten rounds" 0 (Reconfig.stale_reads rc);
  check_int "nothing abandoned" 0 (Reconfig.failed rc);
  check_int "all ops complete" 100
    (Reconfig.reads_ok rc + Reconfig.writes_ok rc)

let test_coordinator_crash_mid_switch () =
  (* The coordinator dies with its seal round in flight: the switch is
     torn down, sealed replicas self-heal through their unseal tick,
     and a fresh coordinator completes the resize afterwards — with
     the pre-crash write still visible in the new configuration. *)
  let initial = Core.Registry.build_exn "htriang(15)" in
  let rc = Reconfig.create ~switch_retry:3.0 ~initial ~universe:21 ~timeout:40.0 () in
  let engine = Engine.create ~seed:31 ~nodes:21 (Reconfig.handlers rc) in
  Reconfig.bind rc engine;
  Engine.schedule engine ~time:1.0 (fun () ->
      Reconfig.write rc ~client:4 ~value:99);
  Engine.schedule engine ~time:10.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:0
        (Core.Registry.build_exn "majority(21)"));
  (* Seal requests are on the wire; their acks will reach a corpse. *)
  Engine.crash_at engine ~time:10.8 ~node:0;
  Engine.schedule engine ~time:25.0 (fun () -> Reconfig.read rc ~client:5);
  Engine.schedule engine ~time:30.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:1
        (Core.Registry.build_exn "majority(21)"));
  Engine.schedule engine ~time:45.0 (fun () -> Reconfig.read rc ~client:20);
  Engine.run engine;
  check_int "only the retry switch commits" 1 (Reconfig.epoch_switches rc);
  check_int "epoch advanced once" 1 (Reconfig.current_epoch rc);
  check "crashed switch counted refused" true
    (Reconfig.refused_switches rc >= 1);
  check_int "write ok" 1 (Reconfig.writes_ok rc);
  check_int "both reads ok" 2 (Reconfig.reads_ok rc);
  check_int "no op failed" 0 (Reconfig.failed rc);
  check_int "no stale read across the crash" 0 (Reconfig.stale_reads rc)

let test_timed_switch () =
  (* Timed-quorum mode: the switch drains leases instead of sealing a
     structural quorum — writes committed during the drain must still
     be visible after the install. *)
  let initial = Core.Registry.build_exn "htriang(15)" in
  let rc =
    Reconfig.create ~lease:4.0 ~switch_retry:3.0 ~initial ~universe:21
      ~timeout:40.0 ()
  in
  let engine = Engine.create ~seed:31 ~nodes:21 (Reconfig.handlers rc) in
  Reconfig.bind rc engine;
  Engine.schedule engine ~time:1.0 (fun () ->
      Reconfig.write rc ~client:4 ~value:7);
  Engine.schedule engine ~time:10.0 (fun () ->
      Reconfig.reconfigure rc ~coordinator:0
        (Core.Registry.build_exn "majority(21)"));
  (* Landed inside the drain window: old-epoch members keep serving
     until their individual leases expire. *)
  Engine.schedule engine ~time:11.0 (fun () ->
      Reconfig.write rc ~client:6 ~value:8);
  Engine.schedule engine ~time:35.0 (fun () -> Reconfig.read rc ~client:20);
  Engine.run engine;
  check_int "timed switch commits" 1 (Reconfig.epoch_switches rc);
  check_int "both writes ok" 2 (Reconfig.writes_ok rc);
  check_int "read ok" 1 (Reconfig.reads_ok rc);
  check_int "drain-window write visible after install" 0
    (Reconfig.stale_reads rc)

let () =
  Alcotest.run "reconfig"
    [
      ( "reconfiguration",
        [
          Alcotest.test_case "sanity" `Quick test_no_switch_sanity;
          Alcotest.test_case "growth switch" `Quick test_growth_switch;
          Alcotest.test_case "cross family" `Quick test_cross_family_switch;
          Alcotest.test_case "concurrent refused" `Quick
            test_concurrent_switch_refused;
          Alcotest.test_case "write survives" `Quick test_write_survives_switch;
          Alcotest.test_case "many rounds" `Quick test_many_switch_rounds;
          Alcotest.test_case "coordinator crash mid-switch" `Quick
            test_coordinator_crash_mid_switch;
          Alcotest.test_case "timed switch" `Quick test_timed_switch;
        ] );
    ]
