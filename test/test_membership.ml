(* Dynamic membership: the replace/grow/shrink controller driving
   epoch switches over a placed h-triang (section 5's rules online). *)

module Bitset = Quorum.Bitset
module Engine = Sim.Engine
module Membership = Protocols.Membership
module Reconfig = Protocols.Reconfig
module Htriang = Core.Htriang
module C = Protocols.Chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setup ?margin ~rows ~universe () =
  let ms = Membership.create ?margin ~rows ~universe ~timeout:30.0 () in
  let engine =
    Engine.create ~seed:5 ~nodes:universe (Membership.handlers ms)
  in
  Membership.bind ms engine;
  (ms, engine)

let test_initial_placement () =
  let ms, _engine = setup ~rows:3 ~universe:12 () in
  check_int "triangle n" 6 (Membership.current_triangle ms).Htriang.n;
  Alcotest.(check (array int))
    "identity placement" [| 0; 1; 2; 3; 4; 5 |] (Membership.members ms);
  let sys = Membership.current_system ms in
  check_int "system over the universe" 12 sys.Quorum.System.n

let test_remap_availability () =
  (* The remapped system's availability must follow the *placed*
     processes, not the identity prefix. *)
  let ms, engine = setup ~rows:3 ~universe:12 () in
  let sys = Membership.current_system ms in
  let all_live = Engine.live_set engine in
  check "full universe available" true (sys.Quorum.System.avail all_live);
  let only_spares = Bitset.of_list 12 [ 6; 7; 8; 9; 10; 11 ] in
  check "spares alone give no quorum" false
    (sys.Quorum.System.avail only_spares)

let test_single_death_tolerated () =
  (* Lazy repair: one dead member is absorbed by the triangle's quorum
     diversity — no switch is spent on it.  (margin 6 keeps the
     controller from growing into the spares instead.) *)
  let ms, engine = setup ~margin:6 ~rows:3 ~universe:12 () in
  Engine.crash_at engine ~time:1.0 ~node:2;
  Engine.schedule engine ~time:2.0 (fun () -> Membership.tick ms engine);
  Engine.schedule engine ~time:10.0 (fun () -> Membership.tick ms engine);
  Engine.run engine;
  check_int "no proposal for a single death" 0 (Membership.proposals ms);
  check "register still available" true
    ((Membership.current_system ms).Quorum.System.avail
       (Engine.live_set engine))

let test_replace_dead_members () =
  (* Two dead members reach the repair debt: one replacement switch
     re-places both slots onto live spares. *)
  let ms, engine = setup ~margin:6 ~rows:3 ~universe:12 () in
  Engine.crash_at engine ~time:1.0 ~node:1;
  Engine.crash_at engine ~time:1.0 ~node:4;
  Engine.schedule engine ~time:2.0 (fun () -> Membership.tick ms engine);
  Engine.schedule engine ~time:12.0 (fun () -> Membership.tick ms engine);
  Engine.run engine;
  check_int "one replacement" 1 (Membership.replacements ms);
  check_int "epoch advanced" 1
    (Reconfig.current_epoch (Membership.reconfig ms));
  let members = Membership.members ms in
  check "dead nodes evicted" true
    (Array.for_all (fun p -> p <> 1 && p <> 4) members);
  check_int "triangle size unchanged" 6 (Array.length members)

let test_grow_when_headroom () =
  (* Plenty of live spares: the controller applies one growth rule per
     adopted switch. *)
  let ms, engine = setup ~rows:2 ~universe:12 () in
  Engine.schedule engine ~time:1.0 (fun () -> Membership.tick ms engine);
  Engine.schedule engine ~time:10.0 (fun () -> Membership.tick ms engine);
  Engine.run engine;
  check "grew at least once" true (Membership.grows ms >= 1);
  check "triangle larger" true ((Membership.current_triangle ms).Htriang.n > 3)

let test_shrink_when_starved () =
  (* The live population cannot fill the triangle plus one spare: the
     controller steps the structure down instead of limping. *)
  let ms, engine = setup ~rows:3 ~universe:12 () in
  for node = 6 to 11 do
    Engine.crash_at engine ~time:1.0 ~node
  done;
  Engine.crash_at engine ~time:1.0 ~node:0;
  Engine.crash_at engine ~time:1.0 ~node:1;
  (* 4 live <= 6 members: shrink, adopt, then possibly shrink again. *)
  Engine.schedule engine ~time:2.0 (fun () -> Membership.tick ms engine);
  Engine.schedule engine ~time:12.0 (fun () -> Membership.tick ms engine);
  Engine.run engine;
  check "shrank" true (Membership.shrinks ms >= 1);
  check "triangle fits the survivors" true
    ((Membership.current_triangle ms).Htriang.n < 6)

let test_churn_smoke () =
  (* Pinned-seed availability-under-churn smoke (the CI gate): heavy
     sustained churn, timed-quorum mode — availability must beat the
     static baseline's collapse regime and safety must hold. *)
  let scen =
    {
      C.label = "churn-smoke";
      horizon = 150.0;
      plan =
        { C.calm with loss = 0.02; churn_sustained = Some (0.18, 130.0) };
    }
  in
  let r =
    C.run_churn ~seed:45 ~rate:2.0 ~op_timeout:30.0 ~rows:5 ~period:8.0
      ~lease:3.0 ~mode:C.Timed ~universe:30 scen
  in
  check_int "no stale reads" 0 r.C.stale_reads;
  check "no budget hit" true (not r.C.budget_hit);
  check "switched at least once" true (r.C.epoch_switches >= 1);
  check "availability under churn" true (r.C.availability > 0.7)

let () =
  Alcotest.run "membership"
    [
      ( "controller",
        [
          Alcotest.test_case "initial placement" `Quick test_initial_placement;
          Alcotest.test_case "remap availability" `Quick
            test_remap_availability;
          Alcotest.test_case "single death tolerated" `Quick
            test_single_death_tolerated;
          Alcotest.test_case "replace dead members" `Quick
            test_replace_dead_members;
          Alcotest.test_case "grow" `Quick test_grow_when_headroom;
          Alcotest.test_case "shrink" `Quick test_shrink_when_starved;
        ] );
      ("churn", [ Alcotest.test_case "smoke" `Slow test_churn_smoke ]);
    ]
