(* Byzantine quorum layer: masking/dissemination property checks, the
   threshold and boost constructions, and end-to-end safety of the
   Byzantine replicated register (the adaptation the paper's related
   work anticipates). *)

module Bitset = Quorum.Bitset
module System = Quorum.System
module Masking = Byzantine.Masking
module Engine = Sim.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Property checks ----------------------------------------------- *)

let test_intersection_levels () =
  (* Plain majority(9): quorums of 5 intersect in >= 1. *)
  let maj = System.quorums_exn (Systems.Majority.make 9) in
  check_int "majority(9) intersection" 1
    (Masking.min_pairwise_intersection maj);
  check "majority(9) is 0-masking" true (Masking.is_masking ~f:0 maj);
  check "majority(9) not 1-dissemination" false
    (Masking.is_dissemination ~f:1 maj);
  check_int "tolerable f" 0 (Masking.tolerable_f maj)

let test_fpp_dissemination () =
  (* Projective-plane lines meet in exactly one point: 0-dissemination
     only. *)
  let fano = System.quorums_exn (Systems.Fpp.system ~order:2 ()) in
  check_int "fano intersection" 1 (Masking.min_pairwise_intersection fano)

let test_majority_masking_properties () =
  List.iter
    (fun (n, f) ->
      let s = Masking.majority_masking ~n ~f in
      let quorums = System.quorums_exn s in
      check
        (Printf.sprintf "masking(%d,%d) property" n f)
        true
        (Masking.is_masking ~f quorums);
      check
        (Printf.sprintf "masking(%d,%d) crash availability" n f)
        true
        (Masking.crash_available ~f s);
      check
        (Printf.sprintf "masking(%d,%d) intersects" n f)
        true
        (Quorum.Coterie.all_intersect quorums))
    [ (5, 1); (9, 1); (13, 2) ]

let test_majority_masking_bounds () =
  check "needs 4f+1" true
    (try
       ignore (Masking.majority_masking ~n:4 ~f:1);
       false
     with Invalid_argument _ -> true)

(* --- Boost ---------------------------------------------------------- *)

let test_boost_htriang () =
  (* Three replicated copies of h-triang(10): quorums are one base
     quorum per copy, so any two boosted quorums share at least 3
     processes — f = 1 masking over 30 processes. *)
  let base = Core.Htriang.system (Core.Htriang.standard ~rows:4 ()) in
  let boosted = Masking.boost ~k:3 base in
  check_int "boosted universe" 30 boosted.System.n;
  check "boosted universe available" true
    (boosted.System.avail (Bitset.universe 30));
  let rng = Quorum.Rng.create 3 in
  let samples = ref [] in
  for _ = 1 to 40 do
    match boosted.System.select rng ~live:(Bitset.universe 30) with
    | Some q -> samples := q :: !samples
    | None -> Alcotest.fail "boosted select failed on full universe"
  done;
  (* Any two sampled boosted quorums share >= 3 processes. *)
  check "boosted pairwise intersection >= 3" true
    (Masking.min_pairwise_intersection !samples >= 3);
  (* Each sample is one size-4 quorum per copy. *)
  List.iter
    (fun q -> check_int "boosted size" 12 (Bitset.cardinal q))
    !samples;
  (* Killing one entire copy's quorums kills the boosted system. *)
  let live = Bitset.universe 30 in
  List.iter (fun e -> Bitset.remove live e) [ 6; 7; 8; 9 ];
  check "bottom row of copy 0 gone -> unavailable" false
    (boosted.System.avail live)

let test_boost_enumerated_masking () =
  (* Small enough to enumerate the boosted coterie and verify the
     masking property exactly. *)
  let base = Systems.Majority.make 3 in
  let boosted = Masking.boost ~k:3 base in
  let quorums = System.quorums_exn boosted in
  check_int "27 boosted quorums" 27 (List.length quorums);
  check "3-wise intersection" true (Masking.is_masking ~f:1 quorums);
  check "boosted coterie" true (Quorum.Coterie.all_intersect quorums)

let test_boost_monotone () =
  let base = Core.Htriang.system (Core.Htriang.standard ~rows:5 ()) in
  let b1 = Masking.boost ~k:1 base in
  let rng = Quorum.Rng.create 9 in
  for _ = 1 to 100 do
    let live = Bitset.random_subset rng ~n:15 ~p:0.7 in
    (* k=1 boost is the base system. *)
    if base.System.avail live <> b1.System.avail live then
      Alcotest.fail "k=1 boost differs from base"
  done

(* --- Byzantine register ---------------------------------------------- *)

let run_store ~system ~f ~byzantine ~ops =
  let store = Protocols.Byz_store.create ~system ~f ~byzantine ~timeout:60.0 in
  let engine =
    Engine.create ~seed:17 ~nodes:system.System.n
      (Protocols.Byz_store.handlers store)
  in
  Protocols.Byz_store.bind store engine;
  let correct_clients =
    List.filter
      (fun i -> not (List.mem i byzantine))
      (List.init system.System.n (fun i -> i))
  in
  let client k = List.nth correct_clients (k mod List.length correct_clients) in
  List.iteri
    (fun k op ->
      let time = 5.0 *. float_of_int (k + 1) in
      match op with
      | `Write value ->
          Engine.schedule engine ~time (fun () ->
              Protocols.Byz_store.write store ~client:(client k) ~value)
      | `Read ->
          Engine.schedule engine ~time (fun () ->
              Protocols.Byz_store.read store ~client:(client k)))
    ops;
  Engine.run engine;
  store

let workload =
  [ `Write 11; `Read; `Write 22; `Read; `Read; `Write 33; `Read; `Read ]

(* A read-heavy tail makes the adversarial coincidences (weak
   intersections, double-Byzantine quorums) deterministic. *)
let adversarial_workload =
  workload @ List.init 40 (fun _ -> `Read)

let test_byz_store_masking_safe () =
  (* f = 1 Byzantine replica over a 1-masking system: reads are never
     fabricated nor stale. *)
  let system = Masking.majority_masking ~n:9 ~f:1 in
  let store = run_store ~system ~f:1 ~byzantine:[ 4 ] ~ops:workload in
  check_int "writes done" 3 (Protocols.Byz_store.writes_ok store);
  check_int "reads done" 5 (Protocols.Byz_store.reads_ok store);
  check_int "no fabricated reads" 0
    (Protocols.Byz_store.fabricated_reads store);
  check_int "no stale reads" 0 (Protocols.Byz_store.stale_reads store);
  check_int "no inconclusive reads" 0
    (Protocols.Byz_store.inconclusive_reads store)

let test_byz_store_boosted_htriang () =
  (* The paper's h-triang, boosted to k = 3 = 2f+1: same guarantees,
     hierarchical structure retained. *)
  let base = Core.Htriang.system (Core.Htriang.standard ~rows:4 ()) in
  let system = Masking.boost ~k:3 base in
  let store = run_store ~system ~f:1 ~byzantine:[ 7 ] ~ops:workload in
  check_int "boosted: writes done" 3 (Protocols.Byz_store.writes_ok store);
  check_int "boosted: no fabricated" 0
    (Protocols.Byz_store.fabricated_reads store);
  check_int "boosted: no stale" 0 (Protocols.Byz_store.stale_reads store)

let test_byz_store_weak_system_unsafe () =
  (* Plain majority(9) has single-process intersections: with one
     Byzantine replica the vouching threshold protects against
     fabrication, but genuine writes can be missed (stale or
     inconclusive reads appear). *)
  let system = Systems.Majority.make 9 in
  let store = run_store ~system ~f:1 ~byzantine:[ 0 ] ~ops:adversarial_workload in
  check_int "weak: still no fabricated reads" 0
    (Protocols.Byz_store.fabricated_reads store);
  check "weak: loses updates" true
    (Protocols.Byz_store.stale_reads store
     + Protocols.Byz_store.inconclusive_reads store
    > 0)

let test_byz_store_over_budget () =
  (* Two Byzantine replicas against an f = 1 system: fabrication becomes
     possible (two matching bogus replies reach the voucher
     threshold). *)
  let system = Masking.majority_masking ~n:9 ~f:1 in
  let store =
    run_store ~system ~f:1 ~byzantine:[ 2; 6 ] ~ops:adversarial_workload
  in
  check "over budget: fabricated reads appear" true
    (Protocols.Byz_store.fabricated_reads store > 0)

let () =
  Alcotest.run "byzantine"
    [
      ( "properties",
        [
          Alcotest.test_case "intersection levels" `Quick
            test_intersection_levels;
          Alcotest.test_case "fpp dissemination" `Quick test_fpp_dissemination;
          Alcotest.test_case "majority masking" `Quick
            test_majority_masking_properties;
          Alcotest.test_case "bounds" `Quick test_majority_masking_bounds;
        ] );
      ( "boost",
        [
          Alcotest.test_case "boost h-triang" `Quick test_boost_htriang;
          Alcotest.test_case "boost enumerated" `Quick
            test_boost_enumerated_masking;
          Alcotest.test_case "k=1 is base" `Quick test_boost_monotone;
        ] );
      ( "register",
        [
          Alcotest.test_case "masking safe" `Quick test_byz_store_masking_safe;
          Alcotest.test_case "boosted h-triang" `Quick
            test_byz_store_boosted_htriang;
          Alcotest.test_case "weak system loses updates" `Quick
            test_byz_store_weak_system_unsafe;
          Alcotest.test_case "over budget" `Quick test_byz_store_over_budget;
        ] );
    ]
