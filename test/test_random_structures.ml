(* Property-based testing over randomly generated structures: random
   walls, random hierarchical grid shapes, and randomly grown
   triangles.  Every instance must satisfy the quorum-system invariants
   (intersection, antichain, availability = quorum containment,
   closed-form failure probability = exact enumeration). *)

module Bitset = Quorum.Bitset
module System = Quorum.System
module Coterie = Quorum.Coterie

(* --- Generators ------------------------------------------------------ *)

let wall_gen =
  QCheck.Gen.(
    list_size (int_range 1 5) (int_range 1 4) >|= fun widths ->
    Array.of_list widths)

let wall_arb =
  QCheck.make ~print:(fun w ->
      String.concat "-" (Array.to_list (Array.map string_of_int w)))
    wall_gen

let block_parts_gen =
  QCheck.Gen.(list_size (int_range 1 3) (int_range 1 2))

let blocks_arb =
  QCheck.make
    ~print:(fun (rp, cp) ->
      Printf.sprintf "r%s c%s"
        (String.concat "" (List.map string_of_int rp))
        (String.concat "" (List.map string_of_int cp)))
    QCheck.Gen.(pair block_parts_gen block_parts_gen)

(* A triangle grown by a random sequence of growth rules. *)
let grown_triangle_gen =
  QCheck.Gen.(
    pair (int_range 2 5) (list_size (int_range 0 3) (int_range 0 2))
    >|= fun (rows, steps) ->
    List.fold_left
      (fun t step ->
        let grow =
          match step with
          | 0 -> Core.Htriang.grow_unit_triangle
          | 1 -> Core.Htriang.grow_unit_grid
          | _ -> Core.Htriang.grow_square_grid
        in
        match grow t with Some t' -> t' | None -> t)
      (Core.Htriang.standard ~rows ())
      steps)

let grown_triangle_arb =
  QCheck.make
    ~print:(fun t -> Printf.sprintf "triangle n=%d" t.Core.Htriang.n)
    grown_triangle_gen

(* --- Shared checks ---------------------------------------------------- *)

let coterie_ok (s : System.t) =
  let quorums = System.quorums_exn s in
  quorums <> []
  && Coterie.all_intersect quorums
  && Coterie.is_antichain quorums

let avail_matches_quorums (s : System.t) =
  if s.n > 13 then true
  else begin
    let quorums = System.quorums_exn s in
    let avail = System.avail_mask_exn s in
    let scratch = Bitset.create s.n in
    let rec scan mask =
      mask > (1 lsl s.n) - 1
      ||
      (Bitset.blit_mask scratch mask;
       let expected = List.exists (fun q -> Bitset.subset q scratch) quorums in
       expected = avail mask && scan (mask + 1))
    in
    scan 0
  end

let closed_form_matches (s : System.t) closed =
  s.n > 18
  || List.for_all
       (fun p -> abs_float (Analysis.Failure.exact s ~p -. closed ~p) < 1e-9)
       [ 0.15; 0.5; 0.8 ]

(* --- Properties ------------------------------------------------------- *)

let wall_properties =
  QCheck.Test.make ~name:"random walls are sound quorum systems" ~count:40
    wall_arb
    (fun widths ->
      let s = Systems.Wall.system widths in
      coterie_ok s
      && avail_matches_quorums s
      && closed_form_matches s (fun ~p ->
             Systems.Wall.failure_probability ~widths ~p))

let blocks_properties =
  QCheck.Test.make
    ~name:"random block hierarchies: h-grid and h-T-grid are sound"
    ~count:25 blocks_arb
    (fun (row_parts, col_parts) ->
      let g = Core.Hgrid.of_blocks ~row_parts ~col_parts in
      let rw = Core.Hgrid.rw_system g in
      let tg = Core.Htgrid.system g in
      coterie_ok rw && coterie_ok tg
      && avail_matches_quorums rw
      && avail_matches_quorums tg
      && closed_form_matches rw (fun ~p ->
             Core.Hgrid.failure_probability g Core.Hgrid.Read_write ~p)
      (* The T-grid refinement never hurts availability (checked by
         exact enumeration, so only on enumerable universes). *)
      && (g.Core.Hgrid.n > 18
         || List.for_all
              (fun p ->
                Analysis.Failure.exact tg ~p
                <= Analysis.Failure.exact rw ~p +. 1e-12)
              [ 0.2; 0.5 ]))

let grown_triangle_properties =
  QCheck.Test.make ~name:"randomly grown triangles stay sound" ~count:25
    grown_triangle_arb
    (fun t ->
      let s = Core.Htriang.system t in
      coterie_ok s
      && avail_matches_quorums s
      && closed_form_matches s (fun ~p -> Core.Htriang.failure_probability t ~p)
      (* Strategy loads remain a probability distribution summing to the
         expected quorum size. *)
      &&
      let loads = Core.Htriang.strategy_loads t in
      Array.for_all (fun l -> l >= -1e-9 && l <= 1.0 +. 1e-9) loads)

let auto_2x2_properties =
  QCheck.Test.make ~name:"auto_2x2 hierarchies sound for all dims" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (rows, cols) ->
      let g = Core.Hgrid.auto_2x2 ~rows ~cols () in
      let rw = Core.Hgrid.rw_system g in
      coterie_ok rw
      && closed_form_matches rw (fun ~p ->
             Core.Hgrid.failure_probability g Core.Hgrid.Read_write ~p))

let hetero_random_walls =
  QCheck.Test.make ~name:"wall hetero closed form on random instances"
    ~count:40
    QCheck.(pair wall_arb (int_bound 1000))
    (fun (widths, seed) ->
      let s = Systems.Wall.system widths in
      QCheck.assume (s.System.n <= 18);
      let rng = Quorum.Rng.create seed in
      let ps =
        Array.init s.System.n (fun _ -> 0.1 +. (0.6 *. Quorum.Rng.float rng))
      in
      let closed =
        Systems.Wall.failure_probability_hetero ~widths ~p_of:(fun i ->
            ps.(i))
      in
      let exact =
        Analysis.Failure.exact_hetero s ~p_of:(fun i -> ps.(i))
      in
      abs_float (closed -. exact) < 1e-9)

let select_random_structures =
  QCheck.Test.make ~name:"selection valid on random walls under crashes"
    ~count:60
    QCheck.(pair wall_arb (int_bound 1000))
    (fun (widths, seed) ->
      let s = Systems.Wall.system widths in
      let rng = Quorum.Rng.create seed in
      let live = Bitset.random_subset rng ~n:s.System.n ~p:0.7 in
      match s.System.select rng ~live with
      | None -> not (s.System.avail live)
      | Some q -> Bitset.subset q live && s.System.avail q)

let () =
  Alcotest.run "random-structures"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest wall_properties;
          QCheck_alcotest.to_alcotest blocks_properties;
          QCheck_alcotest.to_alcotest grown_triangle_properties;
          QCheck_alcotest.to_alcotest auto_2x2_properties;
          QCheck_alcotest.to_alcotest hetero_random_walls;
          QCheck_alcotest.to_alcotest select_random_structures;
        ] );
    ]
