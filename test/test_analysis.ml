(* Tests for the analysis layer: exact enumeration, Monte Carlo
   estimation, the load LP and quorum-size metrics. *)

module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Failure ------------------------------------------------------ *)

let test_exact_singleton () =
  let s = Systems.Singleton.make 3 in
  let poly = Analysis.Failure.exact_poly s in
  List.iter
    (fun p ->
      check_float "singleton F=p" p (Quorum.Failure_poly.eval poly ~p))
    [ 0.0; 0.2; 0.5; 1.0 ]

let test_exact_majority_binomial () =
  (* Majority over 5 fails iff at least 3 die. *)
  let s = Systems.Majority.make 5 in
  let expected p =
    let q = 1.0 -. p in
    (10.0 *. (p ** 3.0) *. (q ** 2.0))
    +. (5.0 *. (p ** 4.0) *. q)
    +. (p ** 5.0)
  in
  List.iter
    (fun p ->
      check_float "binomial tail" (expected p) (Analysis.Failure.exact s ~p))
    [ 0.1; 0.3; 0.5 ]

let test_poly_counts_valid () =
  List.iter
    (fun spec ->
      let s = Core.Registry.build_exn spec in
      let poly = Analysis.Failure.exact_poly s in
      check (spec ^ " counts within binomial bounds") true
        (Quorum.Failure_poly.complement_is_valid poly))
    [ "majority(9)"; "htriang(10)"; "cwlog(8)"; "grid-rw(3x3)"; "y(10)" ]

let test_monte_carlo_close_to_exact () =
  let rng = Rng.create 2024 in
  List.iter
    (fun spec ->
      let s = Core.Registry.build_exn spec in
      List.iter
        (fun p ->
          let exact = Analysis.Failure.exact s ~p in
          let est = Analysis.Failure.monte_carlo ~trials:60_000 rng s ~p in
          check
            (Printf.sprintf "%s MC covers exact at p=%.1f" spec p)
            true
            (abs_float (est.mean -. exact) <= est.half_width +. 0.004))
        [ 0.2; 0.5 ])
    [ "majority(15)"; "htriang(15)"; "htgrid(4x4)"; "cwlog(14)" ]

let test_dispatch_uses_exact_for_small () =
  let s = Core.Registry.build_exn "htriang(15)" in
  check_float "dispatch exact" (Analysis.Failure.exact s ~p:0.3)
    (Analysis.Failure.failure_probability s ~p:0.3)

(* --- Load ---------------------------------------------------------- *)

let test_load_majority () =
  (* Majority over n odd: load = quorum/n by symmetry. *)
  let s = Systems.Majority.make 5 in
  let r = Analysis.Load.optimal s in
  check_float "majority(5) load 3/5" 0.6 r.load

let test_load_singleton () =
  let s = Systems.Singleton.make 4 in
  let r = Analysis.Load.optimal s in
  check_float "singleton load 1" 1.0 r.load

let test_load_fpp () =
  (* FPP order 2 (Fano plane): optimal load is (q+1)/n = 3/7. *)
  let s = Systems.Fpp.system ~order:2 () in
  let r = Analysis.Load.optimal s in
  check_float "fano load 3/7" (3.0 /. 7.0) r.load

let test_load_htriang () =
  (* h-triang: LP load equals the strategy's uniform 2/(d+1). *)
  List.iter
    (fun rows ->
      let t = Core.Htriang.standard ~rows () in
      let r = Analysis.Load.optimal (Core.Htriang.system t) in
      Alcotest.(check (float 1e-6))
        "LP = analytic"
        (2.0 /. float_of_int (rows + 1))
        r.load)
    [ 3; 4; 5 ]

let test_load_strategy_consistency () =
  (* The LP's witnessing strategy induces exactly the LP load. *)
  let s = Core.Registry.build_exn "htgrid(3x3)" in
  let r = Analysis.Load.optimal s in
  Alcotest.(check (float 1e-6))
    "witness load" r.load
    (Quorum.Strategy.system_load r.strategy)

let test_load_lower_bounds () =
  let s = Systems.Majority.make 7 in
  let cn, inv = Analysis.Load.lower_bounds s in
  check_float "c/n" (4.0 /. 7.0) cn;
  check_float "1/c" 0.25 inv;
  let r = Analysis.Load.optimal s in
  check "load >= bounds" true
    (r.load >= Analysis.Load.balanced_lower_bound s -. 1e-9)

let test_load_bound_all_systems () =
  List.iter
    (fun spec ->
      let s = Core.Registry.build_exn spec in
      let r = Analysis.Load.optimal s in
      check
        (spec ^ ": load within [max(c/n,1/c), 1]")
        true
        (r.load >= Analysis.Load.balanced_lower_bound s -. 1e-9
        && r.load <= 1.0 +. 1e-9))
    [
      "majority(9)"; "cwlog(8)"; "triangle(10)"; "hqs(3-3)"; "tree(7)";
      "grid-rw(3x3)"; "htgrid(3x3)"; "htriang(10)"; "fpp(7)"; "diamond(8)";
    ]

(* --- Metrics -------------------------------------------------------- *)

let test_metrics_of_quorums () =
  let qs =
    [
      Bitset.of_list 6 [ 0; 1 ];
      Bitset.of_list 6 [ 1; 2; 3 ];
      Bitset.of_list 6 [ 0; 4; 5 ];
    ]
  in
  let m = Analysis.Metrics.of_quorums qs in
  check_int "min" 2 m.min_size;
  check_int "max" 3 m.max_size;
  check_int "count" 3 m.count;
  Alcotest.(check (float 1e-9)) "avg" (8.0 /. 3.0) m.avg_size

let test_metrics_sampled_y () =
  (* Sampling minimal quorums of Y(10): min is the 4-element side. *)
  let s = Systems.Y_system.system ~rows:4 () in
  let m = Analysis.Metrics.sampled ~trials:300 (Rng.create 3) s in
  check_int "y(10) sampled min" 4 m.min_size;
  check "sampled sizes sane" true (m.max_size <= 10 && m.min_size >= 3)

let test_smallest_quorum () =
  check_int "majority(7)" 4
    (Analysis.Metrics.smallest_quorum (Systems.Majority.make 7));
  check_int "paths(2) sampled" 4
    (Analysis.Metrics.smallest_quorum (Systems.Paths.system ~d:2 ()))

let () =
  Alcotest.run "analysis"
    [
      ( "failure",
        [
          Alcotest.test_case "singleton" `Quick test_exact_singleton;
          Alcotest.test_case "majority binomial" `Quick
            test_exact_majority_binomial;
          Alcotest.test_case "counts valid" `Quick test_poly_counts_valid;
          Alcotest.test_case "monte carlo" `Slow test_monte_carlo_close_to_exact;
          Alcotest.test_case "dispatch" `Quick test_dispatch_uses_exact_for_small;
        ] );
      ( "load",
        [
          Alcotest.test_case "majority" `Quick test_load_majority;
          Alcotest.test_case "singleton" `Quick test_load_singleton;
          Alcotest.test_case "fpp" `Quick test_load_fpp;
          Alcotest.test_case "htriang" `Quick test_load_htriang;
          Alcotest.test_case "witness consistency" `Quick
            test_load_strategy_consistency;
          Alcotest.test_case "lower bounds" `Quick test_load_lower_bounds;
          Alcotest.test_case "bounds all systems" `Slow
            test_load_bound_all_systems;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "of_quorums" `Quick test_metrics_of_quorums;
          Alcotest.test_case "sampled y" `Quick test_metrics_sampled_y;
          Alcotest.test_case "smallest" `Quick test_smallest_quorum;
        ] );
    ]
