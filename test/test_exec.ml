(* Tests for the domain pool (lib/exec) and the determinism contract
   of every parallel analysis path: pooled results must be identical
   for jobs = 1, 2 and 4, and — where promised — equal to the original
   sequential code path bit for bit. *)

module Pool = Exec.Pool
module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng
module Strategy = Quorum.Strategy
module Failure = Analysis.Failure

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Shared pools, one per jobs count; shut down by the final test. *)
let pools = lazy (List.map (fun jobs -> Pool.create ~jobs ()) [ 1; 2; 4 ])

let with_pools f = List.iter f (Lazy.force pools)

(* --- pool unit tests ----------------------------------------------- *)

let test_map_chunks () =
  with_pools (fun p ->
      let squares = Pool.map_chunks p ~chunks:17 (fun i -> i * i) in
      check_int "length" 17 (Array.length squares);
      Array.iteri (fun i sq -> check_int "square" (i * i) sq) squares)

let test_iter_chunks_disjoint_slots () =
  with_pools (fun p ->
      let slots = Array.make 33 (-1) in
      Pool.iter_chunks p ~chunks:33 (fun i -> slots.(i) <- 2 * i);
      Array.iteri (fun i v -> check_int "slot" (2 * i) v) slots)

let test_empty_batch () =
  with_pools (fun p ->
      Pool.iter_chunks p ~chunks:0 (fun _ -> Alcotest.fail "ran a chunk");
      check_int "empty map" 0 (Array.length (Pool.map_chunks p ~chunks:0 (fun i -> i)));
      check_int "empty array" 0 (Array.length (Pool.map_array p (fun x -> x) [||])))

let test_map_array () =
  with_pools (fun p ->
      let doubled = Pool.map_array p (fun x -> 2 * x) [| 5; 6; 7 |] in
      check "doubled" true (doubled = [| 10; 12; 14 |]))

let test_exception_propagation () =
  (* The lowest-numbered failing chunk wins, whatever the domain count. *)
  with_pools (fun p ->
      match
        Pool.iter_chunks p ~chunks:16 (fun i ->
            if i >= 3 then failwith (string_of_int i))
      with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure m -> check_string "lowest failing chunk" "3" m);
  (* The batch still ran to completion: the pool is reusable after. *)
  with_pools (fun p ->
      check_int "reusable" 4 (Array.length (Pool.map_chunks p ~chunks:4 Fun.id)))

let test_nested_submission_rejected () =
  with_pools (fun p ->
      match
        Pool.iter_chunks p ~chunks:2 (fun _ ->
            Pool.iter_chunks p ~chunks:1 (fun _ -> ()))
      with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_reduce_tree () =
  let f a b = "(" ^ a ^ b ^ ")" in
  (* The documented shape: adjacent pairs, repeatedly. *)
  check_string "5 leaves" "(((ab)(cd))e)"
    (Pool.reduce_tree f [| "a"; "b"; "c"; "d"; "e" |]);
  check_string "1 leaf" "a" (Pool.reduce_tree f [| "a" |]);
  (match Pool.reduce_tree f [||] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* Deterministic float sums: same array, same result, every time. *)
  let xs = Array.init 1000 (fun i -> 1.0 /. float_of_int (i + 1)) in
  check "repeatable" true
    (Pool.reduce_tree ( +. ) xs = Pool.reduce_tree ( +. ) xs)

let test_with_pool_and_shutdown () =
  let escaped = Pool.with_pool ~jobs:2 (fun p ->
      check_int "jobs" 2 (Pool.jobs p);
      check_int "usable" 3 (Array.length (Pool.map_chunks p ~chunks:3 Fun.id));
      p)
  in
  (* with_pool shut the pool down; later submissions are rejected. *)
  (match Pool.map_chunks escaped ~chunks:1 Fun.id with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ());
  (* shutdown is idempotent. *)
  Pool.shutdown escaped;
  Pool.shutdown escaped

(* --- determinism of the parallel analysis paths --------------------- *)

(* Small enumerable systems covering distinct construction shapes.
   paths(2) matters: its avail predicates reuse DFS scratch buffers, so
   it pins the per-domain re-entrancy of construction-provided masks. *)
let det_specs =
  [|
    "majority(11)";
    "wall(1-2-2-3)";
    "grid-rw(3x4)";
    "htgrid(3x3)";
    "y(10)";
    "htriang(10)";
    "paths(2)";
  |]

let spec_arb =
  QCheck.make
    ~print:(fun i -> det_specs.(i))
    QCheck.Gen.(int_bound (Array.length det_specs - 1))

let build i = Core.Registry.build_exn det_specs.(i)

let poly_counts s poly =
  List.init (s.System.n + 1) (Quorum.Failure_poly.fail_count poly)

let exact_poly_deterministic =
  QCheck.Test.make ~name:"exact_poly: pooled = sequential, any jobs"
    ~count:12 spec_arb
    (fun i ->
      let s = build i in
      let oracle = poly_counts s (Failure.exact_poly s) in
      List.for_all
        (fun p -> poly_counts s (Failure.exact_poly ~pool:p s) = oracle)
        (Lazy.force pools))

let monte_carlo_deterministic =
  QCheck.Test.make ~name:"monte_carlo: pooled estimate independent of jobs"
    ~count:12
    QCheck.(pair spec_arb (int_bound 10_000))
    (fun (i, seed) ->
      let s = build i in
      let est p =
        Failure.monte_carlo ?pool:p ~trials:4_096 (Rng.create seed) s ~p:0.3
      in
      match List.map (fun p -> est (Some p)) (Lazy.force pools) with
      | [] -> true
      | e0 :: rest -> List.for_all (( = ) e0) rest)

let exact_hetero_deterministic =
  QCheck.Test.make ~name:"exact_hetero: pooled independent of jobs, ~= DFS"
    ~count:8
    QCheck.(pair spec_arb (int_bound 10_000))
    (fun (i, seed) ->
      let s = build i in
      let rng = Rng.create seed in
      let p = Array.init s.System.n (fun _ -> 0.9 *. Rng.float rng) in
      let p_of i = p.(i) in
      let oracle = Failure.exact_hetero s ~p_of in
      let pooled =
        List.map (fun p -> Failure.exact_hetero ~pool:p s ~p_of)
          (Lazy.force pools)
      in
      (match pooled with
      | [] -> true
      | f0 :: rest -> List.for_all (( = ) f0) rest)
      && List.for_all (fun f -> abs_float (f -. oracle) < 1e-12) pooled)

let empirical_deterministic =
  QCheck.Test.make
    ~name:"empirical_of_select: pooled loads independent of jobs" ~count:10
    QCheck.(pair spec_arb (int_bound 10_000))
    (fun (i, seed) ->
      let s = build i in
      (* Force any lazy quorum list before sharing select across
         domains (the documented contract). *)
      System.prepare s;
      let run p =
        Strategy.empirical_of_select ?pool:p ~n:s.System.n ~trials:2_000
          (Rng.create seed) s.System.select
      in
      match List.map (fun p -> run (Some p)) (Lazy.force pools) with
      | [] -> true
      | e0 :: rest ->
          List.for_all
            (fun (e : Strategy.empirical) ->
              e.loads = e0.loads && e.max_load = e0.max_load
              && e.avg_size = e0.avg_size
              && e.misses = e0.misses)
            rest)

let test_empirical_live () =
  (* ?live: selections respect the live set, so a dead element carries
     zero load, and the default (no ~live) is the fully-live universe. *)
  let s = Core.Registry.build_exn "htriang(10)" in
  System.prepare s;
  let live = Bitset.universe s.System.n in
  Bitset.remove live 0;
  with_pools (fun p ->
      let e =
        Strategy.empirical_of_select ~pool:p ~live ~n:s.System.n
          ~trials:2_000 (Rng.create 5) s.System.select
      in
      check "dead element unloaded" true (e.Strategy.loads.(0) = 0.0);
      check_int "no misses" 0 e.Strategy.misses);
  let default_e =
    Strategy.empirical_of_select ~n:s.System.n ~trials:500 (Rng.create 6)
      s.System.select
  in
  let universe_e =
    Strategy.empirical_of_select ~live:(Bitset.universe s.System.n)
      ~n:s.System.n ~trials:500 (Rng.create 6) s.System.select
  in
  check "default live = universe" true
    (default_e.Strategy.loads = universe_e.Strategy.loads)

let test_shutdown_pools () = List.iter Pool.shutdown (Lazy.force pools)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map_chunks" `Quick test_map_chunks;
          Alcotest.test_case "iter_chunks slots" `Quick
            test_iter_chunks_disjoint_slots;
          Alcotest.test_case "empty batches" `Quick test_empty_batch;
          Alcotest.test_case "map_array" `Quick test_map_array;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested submission rejected" `Quick
            test_nested_submission_rejected;
          Alcotest.test_case "reduce_tree" `Quick test_reduce_tree;
          Alcotest.test_case "with_pool / shutdown" `Quick
            test_with_pool_and_shutdown;
        ] );
      ( "determinism",
        [
          qc exact_poly_deterministic;
          qc monte_carlo_deterministic;
          qc exact_hetero_deterministic;
          qc empirical_deterministic;
          Alcotest.test_case "empirical ?live" `Quick test_empirical_live;
          Alcotest.test_case "shutdown shared pools" `Quick
            test_shutdown_pools;
        ] );
    ]
