(* Span tracing and trace analysis: span-tree well-formedness, ring
   wrap-around safety of the causality check, critical-path latency
   breakdowns (which must partition the end-to-end latency exactly),
   the consistency auditor (sound on clean histories, witnessing on a
   deliberately stale fixture), the prometheus/diff/reservoir metrics
   surface and the run-report dashboard. *)

module M = Obs.Metrics
module T = Obs.Trace
module S = Obs.Span
module Ta = Obs.Trace_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* --- Span trees ------------------------------------------------------ *)

let test_span_tree_well_formed () =
  let s = S.create () in
  let root = S.start s ~time:1.0 ~node:0 "op" in
  let child = S.start s ~time:2.0 ~node:1 ~parent:root "attempt" in
  let leaf = S.start s ~time:3.0 ~node:2 ~parent:child "fsync" in
  check_int "three spans" 3 (S.count s);
  check_int "three open" 3 (S.open_count s);
  check_int "root of leaf" root (S.get_exn s leaf).S.root;
  check_int "parent of leaf" child (S.get_exn s leaf).S.parent;
  S.finish s ~time:4.0 leaf;
  S.finish s ~time:5.0 child;
  S.finish s ~time:6.0 ~status:(S.Error "late") root;
  check_int "none open" 0 (S.open_count s);
  check "validates clean" true (S.validate s = []);
  check_float "leaf duration" 1.0 (S.duration (S.get_exn s leaf));
  check_int "one root" 1 (List.length (S.roots s));
  check_int "root has one child" 1 (List.length (S.children s root));
  check_str "error status renders" "error:late"
    (S.status_name (S.Error "late"))

let test_span_finish_idempotent () =
  let s = S.create () in
  let id = S.start s ~time:0.0 ~node:0 "op" in
  S.finish s ~time:2.0 ~status:S.Ok id;
  (* Second close loses: first close wins, including its status. *)
  S.finish s ~time:9.0 ~status:(S.Error "late") id;
  let sp = S.get_exn s id in
  check_float "first end wins" 2.0 sp.S.end_time;
  check "first status wins" true (sp.S.status = S.Ok)

let test_span_child_may_outlive_parent () =
  (* A replica-side fsync span can legally end after the quorum-answered
     root: validate must allow late children (but never end < start). *)
  let s = S.create () in
  let root = S.start s ~time:0.0 ~node:0 "op" in
  let child = S.start s ~time:1.0 ~node:1 ~parent:root "fsync" in
  S.finish s ~time:2.0 root;
  S.finish s ~time:5.0 child;
  check "late child validates" true (S.validate s = [])

let test_span_errors () =
  let s = S.create () in
  check "unknown parent raises" true
    (raises_invalid (fun () ->
         ignore (S.start s ~time:0.0 ~node:0 ~parent:42 "op")));
  let id = S.start s ~time:3.0 ~node:0 "op" in
  check "end before start raises" true
    (raises_invalid (fun () -> S.finish s ~time:1.0 id));
  check "open status raises" true
    (raises_invalid (fun () -> S.finish s ~time:4.0 ~status:S.Open id))

(* --- Causality check under ring wrap-around -------------------------- *)

(* Each op is a fresh monotone message id: matched ops record Send then
   Deliver, orphans record only the Deliver.  With no eviction the
   check must report exactly the orphans; after wrap it may miss
   orphans (their cutoff is gone) but must never report a deliver whose
   send was merely evicted. *)
let causality_wrap_safe =
  QCheck.Test.make ~name:"causality check: exact when dropped=0, no false \
                          positives after wrap"
    ~count:500
    QCheck.(pair (2 -- 64) (list_of_size Gen.(1 -- 120) bool))
    (fun (capacity, ops) ->
      let t = T.create ~capacity () in
      List.iteri
        (fun i orphan ->
          let time = float_of_int i in
          if not orphan then
            T.record t ~time ~node:0 ~peer:1 ~msg_id:i T.Send;
          T.record t ~time ~node:1 ~peer:0 ~msg_id:i T.Deliver)
        ops;
      let orphans =
        List.filteri (fun _ o -> o) ops |> List.length
      in
      let reported = T.causality_violations t in
      let genuine =
        List.for_all
          (fun (e : T.event) ->
            e.T.kind = T.Deliver && List.nth ops e.T.msg_id)
          reported
      in
      if T.dropped t = 0 then
        genuine && List.length reported = orphans
      else genuine)

let test_dropped_counter_wired () =
  (* Obs.create meters ring overwrites into obs.trace.dropped. *)
  let obs = Obs.create ~trace_capacity:4 () in
  let tr = Obs.trace obs in
  for i = 0 to 9 do
    T.record tr ~time:(float_of_int i) ~node:0 T.Note
  done;
  check_int "ring dropped 6" 6 (T.dropped tr);
  let dropped = M.counter (Obs.metrics obs) "obs.trace.dropped" in
  check_int "counter mirrors ring" 6 (M.counter_value dropped)

(* --- Critical-path breakdowns over a real run ------------------------ *)

let store_run ~scenario =
  let system = Core.Registry.build_exn "htgrid(4x4)" in
  let obs = Obs.create ~trace_capacity:(1 lsl 18) () in
  let s =
    Protocols.Chaos.scenario_of_label ~n:system.Quorum.System.n ~horizon:120.0
      scenario
  in
  let _r, store =
    Protocols.Chaos.run_store_h ~seed:42 ~obs ~read_system:system
      ~write_system:system ~name:system.Quorum.System.name s
  in
  (obs, store)

let test_breakdown_partitions_latency () =
  let obs, _store = store_run ~scenario:"restart" in
  let profiles =
    Ta.profile_ops ~trace:(Obs.trace obs) ~spans:(Obs.spans obs) ()
  in
  check "profiled some ops" true (profiles <> []);
  check "all chains complete (nothing evicted)" true
    (List.for_all (fun (p : Ta.op_profile) -> p.Ta.complete) profiles);
  List.iter
    (fun (p : Ta.op_profile) ->
      let total = Ta.breakdown_total p.Ta.breakdown in
      check "components sum to latency" true
        (abs_float (total -. p.Ta.latency) <= 1e-6 +. (0.01 *. p.Ta.latency));
      check "no negative component" true
        (p.Ta.breakdown.Ta.network >= 0.0
        && p.Ta.breakdown.Ta.fsync >= 0.0
        && p.Ta.breakdown.Ta.queueing >= 0.0
        && p.Ta.breakdown.Ta.retransmit >= 0.0))
    profiles;
  (* The restart scenario has fsync latency 0.5, so write critical
     paths must show fsync time. *)
  let by = Ta.by_name profiles in
  let writes = List.assoc "store.write" by in
  let agg = Ta.aggregate writes in
  check "writes spent time on fsync" true (agg.Ta.total.Ta.fsync > 0.0);
  check_int "aggregate counts all" (List.length writes) agg.Ta.count

let test_span_trees_from_run () =
  let obs, store = store_run ~scenario:"loss+burst" in
  let sp = Obs.spans obs in
  check "run's span forest validates" true (S.validate sp = []);
  check "spans were opened" true (S.count sp > 0);
  (* Every history hop names a finished root span of the right name. *)
  List.iter
    (fun (h : Ta.hop) ->
      let root = S.get_exn sp h.Ta.span in
      check_int "hop span is a root" (-1) root.S.parent;
      check_str "root name matches kind"
        (if h.Ta.is_write then "store.write" else "store.read")
        root.S.name;
      check "root finished" true (not (S.is_open root));
      check "op has trace events" true
        (Ta.events_of_op ~trace:(Obs.trace obs) ~spans:sp h.Ta.span <> []))
    (Protocols.Replicated_store.history store)

(* --- Consistency auditor --------------------------------------------- *)

let test_audit_clean_run_passes () =
  let obs, store = store_run ~scenario:"partition" in
  let audit =
    Ta.audit_history ~trace:(Obs.trace obs) ~spans:(Obs.spans obs)
      (Protocols.Replicated_store.history store)
  in
  check "clean run passes" true (Ta.passed audit);
  check_str "verdict" "pass" (Ta.verdict audit);
  check "reads were checked" true (audit.Ta.reads > 0);
  check "writes were checked" true (audit.Ta.writes > 0)

let hop ?(client = 0) ?(key = 0) ?(span = -1) ~is_write ~version started
    finished =
  { Ta.client; key; is_write; version; started; finished; span }

let test_audit_stale_read_witnessed () =
  (* Deliberate fixture: a write to key 7 finishes at t=2, a later read
     (t=3..4) observes version 0 — a stale read with causal evidence. *)
  let spans = S.create () in
  let trace = T.create ~capacity:64 () in
  let w = S.start spans ~time:0.0 ~node:1 "store.write" in
  T.record trace ~time:0.5 ~node:1 ~peer:2 ~msg_id:10 ~span:w T.Send;
  T.record trace ~time:1.0 ~node:2 ~peer:1 ~msg_id:10 ~span:w T.Deliver;
  S.finish spans ~time:2.0 w;
  let r = S.start spans ~time:3.0 ~node:3 "store.read" in
  T.record trace ~time:3.5 ~node:3 ~peer:2 ~msg_id:11 ~span:r T.Send;
  S.finish spans ~time:4.0 r;
  let history =
    [
      hop ~client:1 ~key:7 ~span:w ~is_write:true ~version:1 0.0 2.0;
      hop ~client:3 ~key:7 ~span:r ~is_write:false ~version:0 3.0 4.0;
    ]
  in
  let audit = Ta.audit_history ~trace ~spans history in
  check "fixture fails" false (Ta.passed audit);
  check_str "verdict counts it" "FAIL (1 violations)" (Ta.verdict audit);
  match audit.Ta.violations with
  | [ v ] ->
      check_str "check name" "stale-read" v.Ta.check;
      check_int "offending read version" 0 v.Ta.offending.Ta.version;
      check "expected write attached" true
        (match v.Ta.expected with
        | Some e -> e.Ta.is_write && e.Ta.version = 1
        | None -> false);
      (* The witness chain holds the surviving events of both ops. *)
      check_int "witness chain" 3 (List.length v.Ta.witness);
      check "witness spans both ops" true
        (List.exists (fun (e : T.event) -> e.T.span = w) v.Ta.witness
        && List.exists (fun (e : T.event) -> e.T.span = r) v.Ta.witness)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_audit_session_guarantees () =
  (* read-your-writes: client 5's own write (v2, done at t=2) must be
     seen by its later read even though a bigger global version exists
     only concurrently. *)
  let ryw =
    Ta.audit_history
      [
        hop ~client:5 ~key:1 ~is_write:true ~version:2 0.0 2.0;
        hop ~client:5 ~key:1 ~is_write:false ~version:1 3.0 4.0;
      ]
  in
  check "ryw violation found" false (Ta.passed ryw);
  (* Monotonic reads: same client, same key, version going backwards
     across non-overlapping reads. *)
  let mono =
    Ta.audit_history
      [
        hop ~client:2 ~key:3 ~is_write:false ~version:4 0.0 1.0;
        hop ~client:2 ~key:3 ~is_write:false ~version:3 2.0 3.0;
      ]
  in
  check "monotonic violation found" false (Ta.passed mono);
  check "named monotonic-reads" true
    (List.exists
       (fun (v : Ta.violation) -> v.Ta.check = "monotonic-reads")
       mono.Ta.violations);
  (* Overlapping ops are never flagged: the read starts before the
     write finishes, so either version is legitimate. *)
  let overlap =
    Ta.audit_history
      [
        hop ~client:1 ~key:0 ~is_write:true ~version:9 0.0 5.0;
        hop ~client:2 ~key:0 ~is_write:false ~version:0 4.0 6.0;
      ]
  in
  check "concurrent read not flagged" true (Ta.passed overlap)

(* --- Prometheus / diff / reservoir ----------------------------------- *)

let render_to_string emit =
  let path = Filename.temp_file "obs_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Sink.with_file path emit;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_prometheus_export () =
  let m = M.create () in
  let c = M.counter m ~help:"messages sent" "sim.messages_sent" in
  M.incr ~by:41 c;
  let g = M.gauge m "fd.suspected" in
  M.set ~labels:[ ("node", "3") ] g 1.0;
  let h = M.histogram m "store.op_latency" in
  List.iter (M.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let out = render_to_string (fun oc -> Obs.Sink.metrics_prometheus oc m) in
  check "counter renamed _total" true
    (contains ~needle:"sim_messages_sent_total 41" out);
  check "help line present" true
    (contains ~needle:"# HELP sim_messages_sent_total messages sent" out);
  check "type line present" true
    (contains ~needle:"# TYPE sim_messages_sent_total counter" out);
  check "gauge labelled" true
    (contains ~needle:"fd_suspected{node=\"3\"} 1" out);
  check "histogram as summary" true
    (contains ~needle:"# TYPE store_op_latency summary" out);
  check "median quantile" true
    (contains ~needle:"store_op_latency{quantile=\"0.5\"} 2" out);
  check "summary count" true
    (contains ~needle:"store_op_latency_count 4" out);
  check "summary sum" true (contains ~needle:"store_op_latency_sum 10" out)

let test_snapshot_diff () =
  let m = M.create () in
  let c = M.counter m "c" in
  let g = M.gauge m "g" in
  let h = M.histogram m "h" in
  M.incr ~by:5 c;
  M.set g 2.0;
  M.observe h 10.0;
  let before = M.snapshot m in
  M.incr ~by:3 c;
  M.observe h 20.0;
  let d = M.diff ~before ~after:(M.snapshot m) in
  (* The untouched gauge is omitted; counter and histogram report
     deltas. *)
  check_int "two changed cells" 2 (List.length d);
  List.iter
    (fun (s : M.sample) ->
      match s.M.value with
      | M.Counter n -> check_int "counter delta" 3 n
      | M.Histogram st ->
          check_int "hist delta n" 1 st.M.n;
          check_float "hist delta total" 20.0 st.M.total
      | M.Gauge _ -> Alcotest.fail "gauge should not appear")
    d;
  check_str "no-change render" "(no change)\n"
    (M.render_diff ~before:(M.snapshot m) ~after:(M.snapshot m))

let test_reservoir_histogram () =
  let m = M.create () in
  let h = M.histogram m ~max_samples:64 "capped" in
  (* Below the cap: exact percentiles, full retention. *)
  for i = 1 to 64 do
    M.observe h (float_of_int i)
  done;
  check_int "below cap keeps all" 64 (M.sample_count h);
  check_float "exact p50 below cap" 32.0 (M.percentile_or ~default:nan h 0.5);
  (* Above the cap: count/sum/min/max stay exact, retention is capped,
     and the sampled median stays inside the observed range. *)
  for i = 65 to 10_000 do
    M.observe h (float_of_int i)
  done;
  check_int "count exact above cap" 10_000 (M.count h);
  check_int "retention capped" 64 (M.sample_count h);
  check_float "sum exact" (float_of_int (10_000 * 10_001 / 2)) (M.sum h);
  (* min/max are surfaced through snapshots and stay exact. *)
  (match
     List.find_opt (fun (s : M.sample) -> s.M.name = "capped") (M.snapshot m)
   with
  | Some { M.value = M.Histogram st; _ } ->
      check_float "min exact" 1.0 st.M.min_v;
      check_float "max exact" 10_000.0 st.M.max_v
  | _ -> Alcotest.fail "capped histogram missing from snapshot");
  let p50 = M.percentile_or ~default:nan h 0.5 in
  check "sampled median in range" true (p50 >= 1.0 && p50 <= 10_000.0)

let reservoir_deterministic =
  QCheck.Test.make ~name:"reservoir sampling is deterministic" ~count:50
    QCheck.(list_of_size Gen.(100 -- 300) (float_bound_inclusive 100.0))
    (fun samples ->
      let run () =
        let m = M.create () in
        let h = M.histogram m ~max_samples:32 "det" in
        List.iter (M.observe h) samples;
        ( M.count h,
          M.sample_count h,
          M.percentile_or ~default:nan h 0.5,
          M.sum h )
      in
      run () = run ())

(* --- Run report ------------------------------------------------------- *)

let test_run_report_markdown () =
  let system = Core.Registry.build_exn "htgrid(4x4)" in
  let r =
    Protocols.Run_report.run ~horizon:120.0
      ~protocol:Protocols.Run_report.Store ~system ~scenario:"baseline" ()
  in
  let md = Protocols.Run_report.to_markdown r in
  check_int "pinned store seed" 42 r.Protocols.Run_report.seed;
  check "has latency section" true
    (contains ~needle:"## Operation latency" md);
  check "has store ops row" true (contains ~needle:"| store.read |" md);
  check "audit passes" true (contains ~needle:"**pass**" md);
  check "trace healthy" true (contains ~needle:"Causality: ok" md);
  check "metrics embedded" true (contains ~needle:"obs.trace.dropped" md)

let () =
  Alcotest.run "trace_analysis"
    [
      ( "spans",
        [
          Alcotest.test_case "well-formed tree" `Quick
            test_span_tree_well_formed;
          Alcotest.test_case "finish idempotent" `Quick
            test_span_finish_idempotent;
          Alcotest.test_case "late child ok" `Quick
            test_span_child_may_outlive_parent;
          Alcotest.test_case "errors" `Quick test_span_errors;
        ] );
      ( "wrap-around",
        [
          QCheck_alcotest.to_alcotest causality_wrap_safe;
          Alcotest.test_case "dropped counter" `Quick
            test_dropped_counter_wired;
        ] );
      ( "critical path",
        [
          Alcotest.test_case "breakdown partitions latency" `Quick
            test_breakdown_partitions_latency;
          Alcotest.test_case "span trees from run" `Quick
            test_span_trees_from_run;
        ] );
      ( "auditor",
        [
          Alcotest.test_case "clean run passes" `Quick
            test_audit_clean_run_passes;
          Alcotest.test_case "stale read witnessed" `Quick
            test_audit_stale_read_witnessed;
          Alcotest.test_case "session guarantees" `Quick
            test_audit_session_guarantees;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
          Alcotest.test_case "reservoir cap" `Quick test_reservoir_histogram;
          QCheck_alcotest.to_alcotest reservoir_deterministic;
        ] );
      ( "report",
        [
          Alcotest.test_case "markdown dashboard" `Quick
            test_run_report_markdown;
        ] );
    ]
