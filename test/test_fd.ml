(* The failure-detector contract, as executable properties: over random
   crash/recovery schedules and both detector modes, a crashed node is
   suspected by every live observer within the mode's detection bound
   (completeness) and trusted again within a beat period of recovering
   (eventual accuracy).  Plus accrual-mode unit tests and a safety
   smoke over the fd stress scenarios — the fast CI gate for the
   detector stack. *)

module Fd = Sim.Failure_detector
module Engine = Sim.Engine
module Chaos = Protocols.Chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type wire = Beat

let make_world ?(seed = 5) ?mode ?(period = 1.0) ?(timeout = 4.0) ~nodes () =
  let fd = Fd.create ~period ~timeout ?mode ~nodes ~beat:Beat () in
  let handlers : wire Engine.handlers =
    {
      on_message = (fun _ ~node ~src Beat -> Fd.heard fd ~node ~from:src);
      on_timer = (fun _ ~node ~tag -> ignore (Fd.on_timer fd ~node ~tag));
      on_crash = (fun _ ~node:_ -> ());
      on_recover = (fun _ ~node ~amnesia:_ -> Fd.on_recover fd ~node);
    }
  in
  let engine = Engine.create ~seed ~nodes handlers in
  Fd.bind fd engine;
  Fd.start fd;
  (fd, engine)

(* Detection bound per mode.  Fixed timeout: [timeout] of silence plus
   the beat period granularity plus network latency.  Accrual: phi
   reaches tau after ~2.303 * tau * mean inter-arrival; the mean
   concentrates near [period] (base latency cancels between
   consecutive beats), budgeted here at twice that for jitter. *)
let detect_bound ~period ~timeout = function
  | None -> timeout +. (2.0 *. period) +. 3.0
  | Some tau ->
      Float.max timeout (2.303 *. tau *. (2.0 *. period))
      +. (2.0 *. period) +. 3.0

(* --- The contract, as qcheck properties over random schedules -------- *)

(* (nodes, seed, crash time, extra downtime, accrual threshold option);
   the victim is derived from the seed. *)
let schedule_gen =
  QCheck.Gen.(
    (fun nodes seed crash_t extra tau -> (nodes, seed, crash_t, extra, tau))
    <$> int_range 3 8 <*> int_range 0 999 <*> int_range 8 20
    <*> int_range 0 10
    <*> oneofl [ None; Some 1.0; Some 1.5; Some 2.0 ])

let schedule_arb =
  QCheck.make
    ~print:(fun (n, seed, ct, extra, tau) ->
      Printf.sprintf "n=%d seed=%d crash@%d +%d %s" n seed ct extra
        (match tau with
        | None -> "fixed"
        | Some tau -> Printf.sprintf "accrual(%g)" tau))
    schedule_gen

let fd_contract =
  QCheck.Test.make
    ~name:
      "completeness within the detection bound, accuracy within a period \
       of recovery" ~count:40 schedule_arb
    (fun (nodes, seed, crash_t, extra, tau) ->
      let period = 1.0 and timeout = 4.0 in
      let mode =
        Option.map
          (fun threshold ->
            Fd.Accrual { threshold; window = 16; min_samples = 3 })
          tau
      in
      let fd, engine = make_world ~seed ?mode ~period ~timeout ~nodes () in
      let victim = seed mod nodes in
      let crash_time = float_of_int crash_t in
      let detect_by = crash_time +. detect_bound ~period ~timeout tau in
      let recover_time = detect_by +. float_of_int extra in
      let trust_by = recover_time +. period +. 3.0 in
      Engine.crash_at engine ~time:crash_time ~node:victim;
      Engine.recover_at engine ~time:recover_time ~node:victim;
      let ok = ref true in
      let each_observer f =
        for i = 0 to nodes - 1 do
          if i <> victim then ok := !ok && f i
        done
      in
      (* Trusted while alive (beats have been flowing since t~1). *)
      Engine.schedule engine ~time:(crash_time -. 0.5) (fun () ->
          each_observer (fun i -> not (Fd.suspects fd ~node:i victim)));
      (* Completeness: every live observer suspects the crashed node,
         and its view excludes it. *)
      Engine.schedule engine ~time:detect_by (fun () ->
          each_observer (fun i ->
              Fd.suspects fd ~node:i victim
              && not (Quorum.Bitset.mem (Fd.view fd ~node:i) victim)));
      (* Eventual accuracy: suspicion clears shortly after recovery,
         everywhere. *)
      Engine.schedule engine ~time:trust_by (fun () ->
          each_observer (fun i -> not (Fd.suspects fd ~node:i victim)));
      let keeper = (victim + 1) mod nodes in
      Engine.set_timer engine ~node:keeper ~delay:(trust_by +. 1.0) ~tag:0;
      Engine.run engine;
      !ok)

(* Suspicion is normalized across modes: >= 1.0 exactly when suspected,
   0.0 for self, graded below 1.0 for trusted live peers. *)
let suspicion_normalized =
  QCheck.Test.make ~name:"suspicion >= 1.0 coincides with suspects"
    ~count:20 schedule_arb
    (fun (nodes, seed, crash_t, _, tau) ->
      let period = 1.0 and timeout = 4.0 in
      let mode =
        Option.map
          (fun threshold ->
            Fd.Accrual { threshold; window = 16; min_samples = 3 })
          tau
      in
      let fd, engine = make_world ~seed ?mode ~period ~timeout ~nodes () in
      let victim = seed mod nodes in
      let crash_time = float_of_int crash_t in
      Engine.crash_at engine ~time:crash_time ~node:victim;
      let ok = ref true in
      let probe () =
        for i = 0 to nodes - 1 do
          ok := !ok && Fd.suspicion fd ~node:i i = 0.0;
          for j = 0 to nodes - 1 do
            if j <> i then begin
              let s = Fd.suspicion fd ~node:i j in
              let sus = Fd.suspects fd ~node:i j in
              (* The strict/large comparison at exactly 1.0 differs by
                 mode; probe away from the boundary. *)
              if s > 1.0 +. 1e-6 then ok := !ok && sus
              else if s < 1.0 -. 1e-6 then ok := !ok && not sus
            end
          done
        done
      in
      Engine.schedule engine ~time:(crash_time -. 0.5) probe;
      Engine.schedule engine
        ~time:(crash_time +. detect_bound ~period ~timeout tau)
        probe;
      let keeper = (victim + 1) mod nodes in
      Engine.set_timer engine ~node:keeper
        ~delay:(crash_time +. 30.0) ~tag:0;
      Engine.run engine;
      !ok)

(* --- Accrual mode: unit tests ---------------------------------------- *)

let test_accrual_create_validates () =
  let mk mode = ignore (Fd.create ~mode ~nodes:3 ~beat:Beat ()) in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "threshold must be positive" true
    (raises (fun () ->
         mk (Fd.Accrual { threshold = 0.0; window = 8; min_samples = 3 })));
  check "window >= 2" true
    (raises (fun () ->
         mk (Fd.Accrual { threshold = 1.0; window = 1; min_samples = 1 })));
  check "min_samples within window" true
    (raises (fun () ->
         mk (Fd.Accrual { threshold = 1.0; window = 4; min_samples = 5 })));
  check "timeout must exceed period" true
    (raises (fun () ->
         ignore (Fd.create ~period:2.0 ~timeout:1.0 ~nodes:3 ~beat:Beat ())))

let test_accrual_detects_and_heals () =
  let mode = Fd.Accrual { threshold = 1.5; window = 16; min_samples = 3 } in
  let fd, engine = make_world ~mode ~timeout:6.0 ~nodes:5 () in
  Engine.crash_at engine ~time:12.0 ~node:2;
  Engine.recover_at engine ~time:30.0 ~node:2;
  Engine.schedule engine ~time:11.5 (fun () ->
      check "trusted while beating" false (Fd.suspects fd ~node:0 2);
      check "graded level low while beating" true
        (Fd.suspicion fd ~node:0 2 < 1.0));
  (* phi = log10(e) * elapsed / mean ~ 0.434 * elapsed at mean ~ 1.0:
     threshold 1.5 crosses near elapsed ~ 3.5; well before t = 22. *)
  Engine.schedule engine ~time:22.0 (fun () ->
      check "crashed node suspected" true (Fd.suspects fd ~node:0 2);
      check "level above threshold" true (Fd.suspicion fd ~node:0 2 >= 1.0);
      check_int "only the victim" 1 (Fd.suspected_count fd ~node:0));
  Engine.schedule engine ~time:35.0 (fun () ->
      check "trusted again after recovery" false (Fd.suspects fd ~node:0 2);
      check_int "nobody suspected" 0 (Fd.suspected_count fd ~node:0));
  Engine.set_timer engine ~node:0 ~delay:36.0 ~tag:0;
  Engine.run engine

let test_accrual_stats_measure_detection () =
  let mode = Fd.Accrual { threshold = 1.5; window = 16; min_samples = 3 } in
  let fd, engine = make_world ~mode ~timeout:6.0 ~nodes:5 () in
  Engine.crash_at engine ~time:12.0 ~node:2;
  Engine.set_timer engine ~node:0 ~delay:30.0 ~tag:0;
  Engine.run engine;
  let st = Fd.stats fd ~node:0 in
  check_int "one detection at node 0" 1 st.Fd.detections;
  check "latency positive" true (st.Fd.mean_detect > 0.0);
  check "latency within the accrual bound" true (st.Fd.mean_detect < 10.0);
  check_int "no false positives in a calm run" 0 st.Fd.false_positives;
  check "transition recorded" true (st.Fd.transitions >= 1)

let test_mode_accessors () =
  let mode = Fd.Accrual { threshold = 2.0; window = 8; min_samples = 2 } in
  let fd = Fd.create ~period:0.5 ~timeout:3.0 ~mode ~nodes:3 ~beat:Beat () in
  check "mode is accrual" true (Fd.mode fd = mode);
  Alcotest.(check (float 1e-9)) "period" 0.5 (Fd.period fd);
  Alcotest.(check (float 1e-9)) "timeout kept as fallback" 3.0 (Fd.timeout fd)

(* --- Safety smoke over the fd stress scenarios ----------------------- *)

let smoke_horizon = 100.0

let fd_scenarios () =
  Chaos.scenario_of_label ~n:15 ~horizon:smoke_horizon "churn-iid"
  :: Chaos.fd_family ~n:15 ~horizon:smoke_horizon

let test_fd_scenarios_safe () =
  (* Zero stale reads across the detector stress family, with the
     detector actually steering quorum selection — both modes, and
     with hedging + degraded reads on. *)
  let system = Core.Registry.build_exn "htriang(15)" in
  List.iter
    (fun scenario ->
      List.iter
        (fun (accrual, hedge) ->
          let r =
            Chaos.run_fd ~seed:47 ?accrual ~hedge ~degraded_reads:hedge
              ~read_system:system ~write_system:system ~name:"htriang(15)"
              scenario
          in
          check_int
            (Printf.sprintf "stale reads %s/%s" r.Chaos.label r.Chaos.detector)
            0 r.Chaos.stale_reads;
          check
            (Printf.sprintf "progress %s/%s" r.Chaos.label r.Chaos.detector)
            true
            (r.Chaos.ok > 0))
        [ (None, false); (Some 2.0, true) ])
    (fd_scenarios ())

let test_fd_run_deterministic () =
  let system = Core.Registry.build_exn "htriang(15)" in
  let scenario =
    Chaos.scenario_of_label ~n:15 ~horizon:smoke_horizon "suspect-burst"
  in
  let run () =
    Chaos.run_fd ~seed:47 ~accrual:2.0 ~hedge:true ~read_system:system
      ~write_system:system ~name:"htriang(15)" scenario
  in
  check "same seed, same report" true (run () = run ())

let test_churn_fd_mode_safe () =
  let scenario =
    {
      Chaos.label = "churn";
      horizon = smoke_horizon;
      plan =
        {
          Chaos.calm with
          loss = 0.02;
          churn_sustained = Some (0.1, 50.0);
        };
    }
  in
  let r =
    Chaos.run_churn ~seed:47 ~rows:5 ~period:8.0 ~mode:Chaos.Fd ~universe:30
      scenario
  in
  check_int "no stale reads under fd-driven membership" 0 r.Chaos.stale_reads;
  check "progress under fd-driven membership" true (r.Chaos.ok > 0)

let () =
  Alcotest.run "fd"
    [
      ( "contract",
        [
          QCheck_alcotest.to_alcotest fd_contract;
          QCheck_alcotest.to_alcotest suspicion_normalized;
        ] );
      ( "accrual",
        [
          Alcotest.test_case "create validates" `Quick
            test_accrual_create_validates;
          Alcotest.test_case "detects and heals" `Quick
            test_accrual_detects_and_heals;
          Alcotest.test_case "stats measure detection" `Quick
            test_accrual_stats_measure_detection;
          Alcotest.test_case "mode accessors" `Quick test_mode_accessors;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "fd stress family is safe" `Quick
            test_fd_scenarios_safe;
          Alcotest.test_case "runs are deterministic" `Quick
            test_fd_run_deterministic;
          Alcotest.test_case "fd-driven membership is safe" `Quick
            test_churn_fd_mode_safe;
        ] );
    ]
