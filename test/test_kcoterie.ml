(* k-coteries and k-mutual exclusion: structural properties of the
   constructions and end-to-end semaphore behaviour (capacity reached,
   never exceeded). *)

module Bitset = Quorum.Bitset
module System = Quorum.System
module K = Systems.K_coterie
module Engine = Sim.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Structure ------------------------------------------------------- *)

let test_degree () =
  (* A 1-coterie has degree 1 by the intersection property. *)
  check_int "majority degree" 1
    (K.degree (System.quorums_exn (Systems.Majority.make 7)));
  check_int "htriang degree" 1
    (K.degree
       (System.quorums_exn
          (Core.Htriang.system (Core.Htriang.standard ~rows:4 ()))));
  (* Singletons over disjoint elements: degree = count. *)
  let disjoint =
    [ Bitset.of_list 6 [ 0; 1 ]; Bitset.of_list 6 [ 2; 3 ]; Bitset.of_list 6 [ 4; 5 ] ]
  in
  check_int "three disjoint" 3 (K.degree disjoint)

let test_k_majority_properties () =
  List.iter
    (fun (n, k) ->
      let s = K.k_majority ~n ~k in
      let quorums = System.quorums_exn s in
      check
        (Printf.sprintf "k-majority(%d,%d) is a %d-coterie" n k k)
        true
        (K.is_k_coterie ~k quorums))
    [ (6, 2); (9, 2); (11, 3) ]

let test_k_majority_is_majority_for_k1 () =
  let a = K.k_majority ~n:7 ~k:1 in
  let b = Systems.Majority.make 7 in
  for mask = 0 to 127 do
    if System.avail_mask_exn a mask <> System.avail_mask_exn b mask then
      Alcotest.failf "k=1 differs from majority at %d" mask
  done

let test_copies_properties () =
  (* 3 copies of h-triang(6): a 3-coterie over 18 processes. *)
  let base = Core.Htriang.system (Core.Htriang.standard ~rows:3 ()) in
  let s = K.copies ~k:3 base in
  check_int "universe" 18 s.System.n;
  let quorums = System.quorums_exn s in
  check "is a 3-coterie" true (K.is_k_coterie ~k:3 quorums);
  check_int "3x base quorums" 30 (List.length quorums);
  (* availability = any group's slice available *)
  let live = Bitset.create 18 in
  check "empty unavailable" false (s.System.avail live);
  (* one full group *)
  for e = 6 to 11 do
    Bitset.add live e
  done;
  check "middle group alone suffices" true (s.System.avail live)

let test_copies_select_spreads () =
  let base = Core.Htriang.system (Core.Htriang.standard ~rows:3 ()) in
  let s = K.copies ~k:3 base in
  let rng = Quorum.Rng.create 5 in
  let group_hits = Array.make 3 0 in
  for _ = 1 to 300 do
    match s.System.select rng ~live:(Bitset.universe 18) with
    | Some q ->
        let g = Option.get (Bitset.choose q) / 6 in
        group_hits.(g) <- group_hits.(g) + 1
    | None -> Alcotest.fail "select failed"
  done;
  Array.iter
    (fun hits -> check "each group used" true (hits > 50))
    group_hits

(* --- k-mutual exclusion ---------------------------------------------- *)

let run_k_mutex ~capacity ~system ~requests =
  let mx = Protocols.Mutex.create ~capacity ~system ~cs_duration:5.0 () in
  let engine =
    Engine.create ~seed:13 ~nodes:system.System.n (Protocols.Mutex.handlers mx)
  in
  Protocols.Mutex.bind mx engine;
  (* A burst of requests so concurrency can build up. *)
  Protocols.Workload.staggered_requests engine ~every:0.05 ~count:requests
    (fun ~client -> Protocols.Mutex.request mx ~node:client);
  Engine.run engine;
  mx

let test_k_mutex_semaphore () =
  (* 3 copies of h-triang(6) as a 3-coterie: up to three concurrent
     critical sections, never four. *)
  let base = Core.Htriang.system (Core.Htriang.standard ~rows:3 ()) in
  let system = K.copies ~k:3 base in
  let mx = run_k_mutex ~capacity:3 ~system ~requests:18 in
  check_int "all served" 18 (Protocols.Mutex.entries mx);
  check_int "never above capacity" 0 (Protocols.Mutex.violations mx);
  check "parallelism achieved" true (Protocols.Mutex.max_concurrency mx >= 2)

let test_k_mutex_k_majority () =
  (* Random 4-of-9 quorums usually overlap, so parallelism here is
     opportunistic; the hard guarantee is the ceiling. *)
  let system = K.k_majority ~n:9 ~k:2 in
  let mx = run_k_mutex ~capacity:2 ~system ~requests:9 in
  check_int "all served" 9 (Protocols.Mutex.entries mx);
  check_int "never above 2" 0 (Protocols.Mutex.violations mx);
  check "ceiling respected" true (Protocols.Mutex.max_concurrency mx <= 2)

let test_plain_mutex_stays_serial () =
  (* Control: a 1-coterie under the same burst never exceeds one
     holder. *)
  let system = Core.Registry.build_exn "htriang(10)" in
  let mx = run_k_mutex ~capacity:1 ~system ~requests:10 in
  check_int "serial" 1 (Protocols.Mutex.max_concurrency mx);
  check_int "safe" 0 (Protocols.Mutex.violations mx)

let () =
  Alcotest.run "kcoterie"
    [
      ( "structure",
        [
          Alcotest.test_case "degree" `Quick test_degree;
          Alcotest.test_case "k-majority" `Quick test_k_majority_properties;
          Alcotest.test_case "k=1 is majority" `Quick
            test_k_majority_is_majority_for_k1;
          Alcotest.test_case "copies" `Quick test_copies_properties;
          Alcotest.test_case "copies spread" `Quick test_copies_select_spreads;
        ] );
      ( "k-mutex",
        [
          Alcotest.test_case "semaphore" `Quick test_k_mutex_semaphore;
          Alcotest.test_case "k-majority semaphore" `Quick
            test_k_mutex_k_majority;
          Alcotest.test_case "serial control" `Quick
            test_plain_mutex_stays_serial;
        ] );
    ]
