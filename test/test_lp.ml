(* Simplex solver tests: known optima, infeasibility, unboundedness,
   degenerate cases, and a randomized sanity property. *)

module S = Lp.Simplex

let check_opt name expected outcome =
  match outcome with
  | S.Optimal { objective; _ } ->
      Alcotest.(check (float 1e-6)) name expected objective
  | S.Infeasible -> Alcotest.fail (name ^ ": unexpectedly infeasible")
  | S.Unbounded -> Alcotest.fail (name ^ ": unexpectedly unbounded")

let test_basic_max () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2,6). *)
  let outcome =
    S.maximize ~c:[| 3.0; 5.0 |]
      ~a_ub:[| [| 1.0; 0.0 |]; [| 0.0; 2.0 |]; [| 3.0; 2.0 |] |]
      ~b_ub:[| 4.0; 12.0; 18.0 |] ()
  in
  check_opt "classic LP" 36.0 outcome;
  (match outcome with
  | S.Optimal { solution; _ } ->
      Alcotest.(check (float 1e-6)) "x" 2.0 solution.(0);
      Alcotest.(check (float 1e-6)) "y" 6.0 solution.(1)
  | _ -> assert false)

let test_min_with_equality () =
  (* min x + y st x + y = 2, x <= 1.5 -> 2. *)
  check_opt "equality" 2.0
    (S.solve ~c:[| 1.0; 1.0 |]
       ~a_ub:[| [| 1.0; 0.0 |] |]
       ~b_ub:[| 1.5 |]
       ~a_eq:[| [| 1.0; 1.0 |] |]
       ~b_eq:[| 2.0 |] ())

let test_infeasible () =
  (* x <= 1 and x = 3 *)
  match
    S.solve ~c:[| 1.0 |]
      ~a_ub:[| [| 1.0 |] |]
      ~b_ub:[| 1.0 |]
      ~a_eq:[| [| 1.0 |] |]
      ~b_eq:[| 3.0 |] ()
  with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  (* max x, no constraints *)
  match S.maximize ~c:[| 1.0 |] () with
  | S.Unbounded -> ()
  | S.Optimal _ | S.Infeasible -> Alcotest.fail "expected unbounded"

let test_negative_rhs () =
  (* min x st -x <= -3  (i.e. x >= 3) -> 3. *)
  check_opt "negative rhs" 3.0
    (S.solve ~c:[| 1.0 |] ~a_ub:[| [| -1.0 |] |] ~b_ub:[| -3.0 |] ())

let test_degenerate () =
  (* Redundant constraints sharing a vertex. *)
  check_opt "degenerate" 4.0
    (S.maximize ~c:[| 1.0; 1.0 |]
       ~a_ub:
         [|
           [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |]; [| 1.0; 1.0 |];
         |]
       ~b_ub:[| 2.0; 2.0; 4.0; 4.0 |] ())

let test_zero_objective () =
  (* Any feasible point optimal. *)
  match
    S.solve ~c:[| 0.0; 0.0 |]
      ~a_eq:[| [| 1.0; 1.0 |] |]
      ~b_eq:[| 1.0 |] ()
  with
  | S.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-9)) "objective 0" 0.0 objective;
      Alcotest.(check (float 1e-6)) "feasible" 1.0 (solution.(0) +. solution.(1))
  | _ -> Alcotest.fail "expected optimal"

let test_load_lp_shape () =
  (* The load LP of a 3-element majority: optimal load is 2/3. *)
  let quorums = [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  let m = List.length quorums in
  let nv = m + 1 in
  let c = Array.make nv 0.0 in
  c.(m) <- 1.0;
  let a_ub =
    Array.init 3 (fun i ->
        let row = Array.make nv 0.0 in
        List.iteri (fun j q -> if List.mem i q then row.(j) <- 1.0) quorums;
        row.(m) <- -1.0;
        row)
  in
  let b_ub = Array.make 3 0.0 in
  let a_eq = [| Array.init nv (fun j -> if j < m then 1.0 else 0.0) |] in
  check_opt "majority-3 load" (2.0 /. 3.0)
    (S.solve ~c ~a_ub ~b_ub ~a_eq ~b_eq:[| 1.0 |] ())

let random_lp_feasibility =
  (* For random bounded LPs min c.x st x_i <= b_i the optimum is
     0 when all c >= 0 (x = 0 feasible). *)
  QCheck.Test.make ~name:"nonneg objective with box constraints -> 0"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 5) (pair (float_bound_inclusive 5.0) (float_bound_inclusive 5.0)))
    (fun spec ->
      QCheck.assume (spec <> []);
      let n = List.length spec in
      let c = Array.of_list (List.map fst spec) in
      let b_ub = Array.of_list (List.map (fun (_, b) -> b +. 0.1) spec) in
      let a_ub =
        Array.init n (fun i ->
            Array.init n (fun j -> if i = j then 1.0 else 0.0))
      in
      match S.solve ~c ~a_ub ~b_ub () with
      | S.Optimal { objective; _ } -> abs_float objective < 1e-7
      | S.Infeasible | S.Unbounded -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "equality" `Quick test_min_with_equality;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "load LP shape" `Quick test_load_lp_shape;
          QCheck_alcotest.to_alcotest random_lp_feasibility;
        ] );
    ]
