(* Unit and property tests for the quorum substrate: bitsets, RNG,
   failure polynomials, combinatorics, coterie operations and
   strategies. *)

module Bitset = Quorum.Bitset
module Rng = Quorum.Rng
module Failure_poly = Quorum.Failure_poly
module Combinat = Quorum.Combinat
module Coterie = Quorum.Coterie
module Strategy = Quorum.Strategy

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Bitset ------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bitset.create 10 in
  check "fresh empty" true (Bitset.is_empty s);
  Bitset.add s 3;
  Bitset.add s 7;
  check "mem 3" true (Bitset.mem s 3);
  check "mem 4" false (Bitset.mem s 4);
  check_int "cardinal" 2 (Bitset.cardinal s);
  Bitset.remove s 3;
  check "removed" false (Bitset.mem s 3);
  Alcotest.(check (list int)) "to_list" [ 7 ] (Bitset.to_list s)

let test_bitset_large_universe () =
  (* Straddles several words. *)
  let n = 200 in
  let s = Bitset.create n in
  List.iter (Bitset.add s) [ 0; 61; 62; 63; 124; 199 ];
  check_int "cardinal" 6 (Bitset.cardinal s);
  check "mem 62" true (Bitset.mem s 62);
  check "mem 61" true (Bitset.mem s 61);
  let c = Bitset.complement s in
  check_int "complement cardinal" (n - 6) (Bitset.cardinal c);
  check "disjoint" false (Bitset.intersects s c);
  check "union is universe" true
    (Bitset.equal (Bitset.union s c) (Bitset.universe n))

let test_bitset_universe () =
  let u = Bitset.universe 63 in
  check_int "universe cardinal" 63 (Bitset.cardinal u);
  let u124 = Bitset.universe 124 in
  check_int "two-word universe" 124 (Bitset.cardinal u124)

let test_bitset_masks () =
  let s = Bitset.of_list 10 [ 1; 4; 9 ] in
  check_int "to_mask" ((1 lsl 1) lor (1 lsl 4) lor (1 lsl 9)) (Bitset.to_mask s);
  let s' = Bitset.of_mask ~n:10 (Bitset.to_mask s) in
  check "roundtrip" true (Bitset.equal s s');
  Bitset.blit_mask s' 0b101;
  Alcotest.(check (list int)) "blit" [ 0; 2 ] (Bitset.to_list s')

let test_popcount () =
  check_int "popcount 0" 0 (Bitset.popcount 0);
  check_int "popcount 255" 8 (Bitset.popcount 255);
  check_int "popcount max" 62 (Bitset.popcount ((1 lsl 62) - 1));
  check_int "popcount bit61" 1 (Bitset.popcount (1 lsl 61))

let bitset_ops_model =
  (* Compare against a sorted-int-list model. *)
  let gen = QCheck.(pair (list (int_bound 49)) (list (int_bound 49))) in
  QCheck.Test.make ~name:"bitset ops match list model" ~count:500 gen
    (fun (la, lb) ->
      let module S = Set.Make (Int) in
      let sa = S.of_list la and sb = S.of_list lb in
      let a = Bitset.of_list 50 la and b = Bitset.of_list 50 lb in
      S.elements (S.inter sa sb) = Bitset.to_list (Bitset.inter a b)
      && S.elements (S.union sa sb) = Bitset.to_list (Bitset.union a b)
      && S.elements (S.diff sa sb) = Bitset.to_list (Bitset.diff a b)
      && S.subset sa sb = Bitset.subset a b
      && (not (S.disjoint sa sb)) = Bitset.intersects a b
      && S.cardinal sa = Bitset.cardinal a)

let bitset_fold_iter =
  QCheck.Test.make ~name:"fold and iter agree" ~count:200
    QCheck.(list (int_bound 80))
    (fun l ->
      let s = Bitset.of_list 81 l in
      let via_fold = Bitset.fold (fun i acc -> i :: acc) s [] in
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) s;
      via_fold = !via_iter)

(* --- Rng ----------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independence () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  check "split differs" true (Rng.bits64 c <> Rng.bits64 a)

let test_rng_int_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    check "in range" true (v >= 0 && v < 7)
  done

let test_rng_float_range () =
  let r = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    check "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_bernoulli_mean () =
  let r = Rng.create 3 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int trials in
  check "mean near 0.3" true (abs_float (mean -. 0.3) < 0.02)

let test_rng_pick_weighted () =
  let r = Rng.create 4 in
  let counts = [| 0; 0; 0 |] in
  for _ = 1 to 30_000 do
    let i = Rng.pick_weighted r ~weights:[| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let f i = float_of_int counts.(i) /. 30_000.0 in
  check "w0 ~ 0.25" true (abs_float (f 0 -. 0.25) < 0.02);
  check "w1 ~ 0.5" true (abs_float (f 1 -. 0.5) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create 5 in
  let total = ref 0.0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    total := !total +. Rng.exponential r ~mean:2.0
  done;
  check "exp mean ~ 2" true
    (abs_float ((!total /. float_of_int trials) -. 2.0) < 0.05)

let test_rng_shuffle_permutation () =
  let r = Rng.create 6 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

(* --- Failure_poly --------------------------------------------------- *)

let test_binomial () =
  check_float "C(5,2)" 10.0 (Failure_poly.binomial 5 2);
  check_float "C(28,14)" 40116600.0 (Failure_poly.binomial 28 14);
  check_float "C(5,-1)" 0.0 (Failure_poly.binomial 5 (-1));
  check_float "C(5,6)" 0.0 (Failure_poly.binomial 5 6)

let test_poly_always_fails () =
  let t = Failure_poly.always_fails ~n:6 in
  check_float "F(0.3) = 1" 1.0 (Failure_poly.eval t ~p:0.3);
  check_float "F(0) = 1" 1.0 (Failure_poly.eval t ~p:0.0)

let test_poly_singleton () =
  (* Singleton over 1 element: fails iff that element dies. *)
  let t = Failure_poly.of_fail_counts ~n:1 [| 1.0; 0.0 |] in
  check_float "F(p) = p" 0.37 (Failure_poly.eval t ~p:0.37);
  check_float "avail" 0.63 (Failure_poly.availability t ~p:0.37)

let test_poly_transversal_view () =
  let t = Failure_poly.of_fail_counts ~n:3 [| 1.0; 3.0; 1.0; 0.0 |] in
  check_float "a_0 = c_3" 0.0 (Failure_poly.transversal_count t 0);
  check_float "a_2 = c_1" 3.0 (Failure_poly.transversal_count t 2);
  check "valid" true (Failure_poly.complement_is_valid t)

(* --- Combinat ------------------------------------------------------- *)

let test_gosper_count () =
  let count = ref 0 in
  Combinat.iter_ksubset_masks ~n:10 ~k:3 (fun _ -> incr count);
  check_int "C(10,3)" 120 !count

let test_gosper_popcount () =
  Combinat.iter_ksubset_masks ~n:12 ~k:5 (fun m ->
      check_int "popcount 5" 5 (Bitset.popcount m))

let test_ksubsets () =
  check_int "C(5,2) lists" 10 (List.length (Combinat.ksubsets [ 1; 2; 3; 4; 5 ] 2));
  Alcotest.(check (list (list int)))
    "k=0" [ [] ]
    (Combinat.ksubsets [ 1; 2 ] 0)

let test_product () =
  let p = Combinat.product [ [ 1; 2 ]; [ 3 ]; [ 4; 5 ] ] in
  check_int "2*1*2" 4 (List.length p);
  check "first" true (List.hd p = [ 1; 3; 4 ]);
  Alcotest.(check (list (list int))) "empty" [ [] ] (Combinat.product [])

let test_choose_count () =
  check_int "C(28,14)" 40116600 (Combinat.choose_count 28 14);
  check_int "C(6,0)" 1 (Combinat.choose_count 6 0);
  check_int "C(6,7)" 0 (Combinat.choose_count 6 7)

(* --- Coterie -------------------------------------------------------- *)

let bs = Bitset.of_list

let test_intersection_check () =
  let q = [ bs 4 [ 0; 1 ]; bs 4 [ 1; 2 ]; bs 4 [ 0; 2 ] ] in
  check "intersecting" true (Coterie.all_intersect q);
  let q' = [ bs 4 [ 0; 1 ]; bs 4 [ 2; 3 ] ] in
  check "disjoint pair" false (Coterie.all_intersect q')

let test_antichain () =
  check "antichain" true (Coterie.is_antichain [ bs 4 [ 0; 1 ]; bs 4 [ 1; 2 ] ]);
  check "contained" false
    (Coterie.is_antichain [ bs 4 [ 0; 1 ]; bs 4 [ 0; 1; 2 ] ])

let test_minimize () =
  let q = [ bs 4 [ 0; 1; 2 ]; bs 4 [ 0; 1 ]; bs 4 [ 0; 1 ]; bs 4 [ 2; 3 ] ] in
  let m = Coterie.minimize q in
  check_int "two kept" 2 (List.length m);
  check "antichain result" true (Coterie.is_antichain m)

let test_dominates () =
  (* {0} dominates {{0,1},{0,2}} *)
  let c = [ bs 3 [ 0 ] ] in
  let d = [ bs 3 [ 0; 1 ]; bs 3 [ 0; 2 ] ] in
  check "singleton dominates" true (Coterie.dominates c d);
  check "self no dominate" false (Coterie.dominates d d)

let test_minimal_of_avail_majority () =
  (* Majority over 5: minimal quorums are the C(5,3)=10 triples. *)
  let avail mask = Bitset.popcount mask >= 3 in
  let quorums = Coterie.minimal_of_avail ~n:5 avail in
  check_int "ten triples" 10 (List.length quorums);
  List.iter
    (fun q -> check_int "size 3" 3 (Bitset.cardinal q))
    quorums

let test_transversal_counts_singleton () =
  (* Singleton {0} over 2 elements: fails iff 0 is dead.
     dead-sets hitting the quorum: {0} and {0,1}. *)
  let avail mask = mask land 1 <> 0 in
  let counts = Coterie.transversal_counts ~n:2 avail in
  check_float "one 1-transversal" 1.0 counts.(1);
  check_float "one 2-transversal" 1.0 counts.(2);
  check_float "no 0-transversal" 0.0 counts.(0)

(* --- Strategy ------------------------------------------------------- *)

let test_strategy_uniform_loads () =
  let quorums = [ bs 3 [ 0; 1 ]; bs 3 [ 1; 2 ]; bs 3 [ 0; 2 ] ] in
  let s = Strategy.uniform quorums in
  let loads = Strategy.element_loads s in
  Array.iter (fun l -> check_float "balanced 2/3" (2.0 /. 3.0) l) loads;
  check_float "system load" (2.0 /. 3.0) (Strategy.system_load s);
  check_float "avg size" 2.0 (Strategy.average_quorum_size s)

let test_strategy_weighted () =
  let s =
    Strategy.make
      [| bs 2 [ 0 ]; bs 2 [ 1 ] |]
      [| 3.0; 1.0 |]
  in
  let loads = Strategy.element_loads s in
  check_float "elem0" 0.75 loads.(0);
  check_float "elem1" 0.25 loads.(1)

let test_strategy_sample () =
  let s =
    Strategy.make [| bs 2 [ 0 ]; bs 2 [ 1 ] |] [| 1.0; 0.0 |]
  in
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    check "always first" true (Bitset.mem (Strategy.sample s rng) 0)
  done

let test_empirical_of_select () =
  let rng = Rng.create 13 in
  let select _rng ~live:_ = Some (bs 4 [ 0; 1 ]) in
  let e = Strategy.empirical_of_select ~n:4 ~trials:100 rng select in
  check_float "load 0" 1.0 e.loads.(0);
  check_float "load 3" 0.0 e.loads.(3);
  check_float "avg size" 2.0 e.avg_size;
  check_int "no misses" 0 e.misses

let qsuite name tests = (name, tests)

let () =
  Alcotest.run "quorum"
    [
      qsuite "bitset"
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "large universe" `Quick test_bitset_large_universe;
          Alcotest.test_case "universe" `Quick test_bitset_universe;
          Alcotest.test_case "masks" `Quick test_bitset_masks;
          Alcotest.test_case "popcount" `Quick test_popcount;
          QCheck_alcotest.to_alcotest bitset_ops_model;
          QCheck_alcotest.to_alcotest bitset_fold_iter;
        ];
      qsuite "rng"
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independence;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli mean" `Quick test_rng_bernoulli_mean;
          Alcotest.test_case "pick_weighted" `Quick test_rng_pick_weighted;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
        ];
      qsuite "failure_poly"
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "always fails" `Quick test_poly_always_fails;
          Alcotest.test_case "singleton" `Quick test_poly_singleton;
          Alcotest.test_case "transversal view" `Quick test_poly_transversal_view;
        ];
      qsuite "combinat"
        [
          Alcotest.test_case "gosper count" `Quick test_gosper_count;
          Alcotest.test_case "gosper popcount" `Quick test_gosper_popcount;
          Alcotest.test_case "ksubsets" `Quick test_ksubsets;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "choose_count" `Quick test_choose_count;
        ];
      qsuite "coterie"
        [
          Alcotest.test_case "intersection" `Quick test_intersection_check;
          Alcotest.test_case "antichain" `Quick test_antichain;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "minimal_of_avail" `Quick
            test_minimal_of_avail_majority;
          Alcotest.test_case "transversal counts" `Quick
            test_transversal_counts_singleton;
        ];
      qsuite "strategy"
        [
          Alcotest.test_case "uniform loads" `Quick test_strategy_uniform_loads;
          Alcotest.test_case "weighted" `Quick test_strategy_weighted;
          Alcotest.test_case "sample" `Quick test_strategy_sample;
          Alcotest.test_case "empirical" `Quick test_empirical_of_select;
        ];
    ]
