(* End-to-end protocol tests: quorum mutual exclusion (safety under
   contention, liveness) and the replicated store (consistency, fault
   handling). *)

module Engine = Sim.Engine
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_mutex ?(seed = 1) ?(requests = 30) ?(spacing = 0.1) ?faults spec =
  let system = Core.Registry.build_exn spec in
  let mx = Protocols.Mutex.create ~system ~cs_duration:0.8 () in
  let engine =
    Engine.create ~seed ~nodes:system.Quorum.System.n
      (Protocols.Mutex.handlers mx)
  in
  Protocols.Mutex.bind mx engine;
  (match faults with
  | Some events -> Sim.Failure_injector.scripted engine events
  | None -> ());
  Protocols.Workload.staggered_requests engine ~every:spacing ~count:requests
    (fun ~client -> Protocols.Mutex.request mx ~node:client);
  Engine.run engine;
  mx

let test_mutex_safety_liveness () =
  List.iter
    (fun spec ->
      let mx = run_mutex spec in
      check_int (spec ^ ": no violations") 0 (Protocols.Mutex.violations mx);
      check_int (spec ^ ": all served") 30 (Protocols.Mutex.entries mx);
      check_int (spec ^ ": none unavailable") 0
        (Protocols.Mutex.unavailable mx))
    [ "majority(7)"; "htriang(10)"; "htgrid(3x3)"; "cwlog(8)"; "fpp(7)" ]

let test_mutex_heavy_contention () =
  (* All requests in a burst: INQUIRE/YIELD machinery must untangle. *)
  let mx = run_mutex ~requests:15 ~spacing:0.0001 "htriang(15)" in
  check_int "burst: safe" 0 (Protocols.Mutex.violations mx);
  check_int "burst: all served" 15 (Protocols.Mutex.entries mx)

let test_mutex_many_seeds () =
  List.iter
    (fun seed ->
      let mx = run_mutex ~seed ~requests:20 ~spacing:0.05 "htriang(10)" in
      check_int "seeded: safe" 0 (Protocols.Mutex.violations mx);
      check_int "seeded: served" 20 (Protocols.Mutex.entries mx))
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_mutex_with_dead_nodes () =
  (* Crash two nodes before any request: live-aware selection must
     route around them. *)
  let faults =
    [ (0.0, Sim.Failure_injector.Crash 0); (0.0, Sim.Failure_injector.Crash 7) ]
  in
  let system = Core.Registry.build_exn "htriang(15)" in
  let mx = Protocols.Mutex.create ~system ~cs_duration:0.5 () in
  let engine = Engine.create ~seed:4 ~nodes:15 (Protocols.Mutex.handlers mx) in
  Protocols.Mutex.bind mx engine;
  Sim.Failure_injector.scripted engine faults;
  (* Only live nodes request. *)
  List.iter
    (fun (i, t) ->
      Engine.schedule engine ~time:t (fun () ->
          Protocols.Mutex.request mx ~node:i))
    [ (1, 1.0); (2, 1.1); (3, 1.2); (8, 1.3); (14, 1.4) ];
  Engine.run engine;
  check_int "faulty: safe" 0 (Protocols.Mutex.violations mx);
  check_int "faulty: served" 5 (Protocols.Mutex.entries mx)

let test_mutex_waits_positive () =
  let mx = run_mutex ~requests:10 ~spacing:0.01 "majority(7)" in
  let stats = Protocols.Mutex.acquire_latency mx in
  check_int "latency samples" 10 (Obs.Metrics.count stats);
  check "waits positive" true (Obs.Metrics.mean stats > 0.0)

(* --- Replicated store ---------------------------------------------- *)

let make_store ?(seed = 11) spec_read spec_write =
  let read_system = Core.Registry.build_exn spec_read in
  let write_system = Core.Registry.build_exn spec_write in
  let store =
    Protocols.Replicated_store.create ~read_system ~write_system ~timeout:50.0 ()
  in
  let engine =
    Engine.create ~seed ~nodes:read_system.Quorum.System.n
      (Protocols.Replicated_store.handlers store)
  in
  Protocols.Replicated_store.bind store engine;
  (store, engine)

let test_store_basic_rw () =
  let store, engine = make_store "hgrid-read(4x4)" "hgrid-write(4x4)" in
  Engine.schedule engine ~time:1.0 (fun () ->
      Protocols.Replicated_store.write store ~client:0 ~key:1 ~value:42);
  Engine.schedule engine ~time:10.0 (fun () ->
      Protocols.Replicated_store.read store ~client:5 ~key:1);
  Engine.run engine;
  check_int "write ok" 1 (Protocols.Replicated_store.writes_ok store);
  check_int "read ok" 1 (Protocols.Replicated_store.reads_ok store);
  check_int "no stale" 0 (Protocols.Replicated_store.stale_reads store);
  check_int "no timeouts" 0 (Protocols.Replicated_store.timeouts store)

let test_store_mixed_workload () =
  List.iter
    (fun (r, w) ->
      let store, engine = make_store r w in
      let rng = Rng.create 5 in
      let n =
        Protocols.Workload.read_write_mix engine ~rng ~rate:2.0 ~horizon:100.0
          ~read_fraction:0.7 ~keys:4
          ~read:(fun ~client ~key ->
            Protocols.Replicated_store.read store ~client ~key)
          ~write:(fun ~client ~key ~value ->
            Protocols.Replicated_store.write store ~client ~key ~value)
      in
      Engine.run engine;
      let done_ =
        Protocols.Replicated_store.reads_ok store
        + Protocols.Replicated_store.writes_ok store
      in
      check_int (r ^ ": all ops complete") n done_;
      check_int (r ^ ": no stale reads") 0
        (Protocols.Replicated_store.stale_reads store))
    [
      ("hgrid-read(4x4)", "hgrid-write(4x4)");
      ("htriang(15)", "htriang(15)");
      ("majority(9)", "majority(9)");
    ]

let test_store_under_faults () =
  (* iid transient faults: operations may time out or be refused but
     completed reads stay consistent. *)
  let store, engine = make_store ~seed:21 "htriang(15)" "htriang(15)" in
  Sim.Failure_injector.iid_faults engine ~rng:(Rng.create 9) ~p:0.15
    ~mean_downtime:10.0 ~horizon:400.0;
  let rng = Rng.create 6 in
  let n =
    Protocols.Workload.read_write_mix engine ~rng ~rate:1.0 ~horizon:400.0
      ~read_fraction:0.5 ~keys:3
      ~read:(fun ~client ~key ->
        Protocols.Replicated_store.read store ~client ~key)
      ~write:(fun ~client ~key ~value ->
        Protocols.Replicated_store.write store ~client ~key ~value)
  in
  Engine.run engine;
  let ok =
    Protocols.Replicated_store.reads_ok store
    + Protocols.Replicated_store.writes_ok store
  in
  let failed =
    Protocols.Replicated_store.timeouts store
    + Protocols.Replicated_store.unavailable store
  in
  check "some ops issued" true (n > 50);
  check "most ops complete" true (ok > n / 2);
  check_int "accounting" n (ok + failed);
  check_int "no stale reads under faults" 0
    (Protocols.Replicated_store.stale_reads store)

let test_store_retries_improve_availability () =
  (* Same fault process, with and without retry-on-timeout: retries
     recover most mid-flight member crashes, consistency intact. *)
  let run retries =
    let read_system = Core.Registry.build_exn "htriang(15)" in
    let store =
      Protocols.Replicated_store.create ~retries ~read_system
        ~write_system:read_system ~timeout:25.0 ()
    in
    let engine =
      Engine.create ~seed:41 ~nodes:15
        (Protocols.Replicated_store.handlers store)
    in
    Protocols.Replicated_store.bind store engine;
    Sim.Failure_injector.iid_faults engine ~rng:(Rng.create 42) ~p:0.15
      ~mean_downtime:12.0 ~horizon:500.0;
    let n =
      Protocols.Workload.read_write_mix engine ~rng:(Rng.create 43) ~rate:1.0
        ~horizon:500.0 ~read_fraction:0.5 ~keys:2
        ~read:(fun ~client ~key ->
          Protocols.Replicated_store.read store ~client ~key)
        ~write:(fun ~client ~key ~value ->
          Protocols.Replicated_store.write store ~client ~key ~value)
    in
    Engine.run engine;
    let ok =
      Protocols.Replicated_store.reads_ok store
      + Protocols.Replicated_store.writes_ok store
    in
    (n, ok, store)
  in
  let n0, ok0, store0 = run 0 in
  let n3, ok3, store3 = run 3 in
  check_int "same workload" n0 n3;
  check "retries help" true (ok3 > ok0);
  check "retries actually used" true
    (Protocols.Replicated_store.retried store3 > 0);
  check_int "still consistent (0 retries)" 0
    (Protocols.Replicated_store.stale_reads store0);
  check_int "still consistent (3 retries)" 0
    (Protocols.Replicated_store.stale_reads store3)

let test_store_partition_unavailability () =
  (* A partition isolating most nodes makes quorums unavailable for
     clients on the minority side: operations time out rather than
     return inconsistent data. *)
  let read_system = Core.Registry.build_exn "majority(9)" in
  let write_system = Core.Registry.build_exn "majority(9)" in
  let store =
    Protocols.Replicated_store.create ~read_system ~write_system ~timeout:20.0 ()
  in
  let network = Sim.Network.create () in
  let engine =
    Engine.create ~seed:31 ~nodes:9 ~network
      (Protocols.Replicated_store.handlers store)
  in
  Protocols.Replicated_store.bind store engine;
  Engine.schedule engine ~time:1.0 (fun () ->
      ignore (Sim.Network.partition network ~group_a:[ 0; 1 ]));
  Engine.schedule engine ~time:2.0 (fun () ->
      Protocols.Replicated_store.write store ~client:0 ~key:0 ~value:7);
  Engine.run engine;
  check_int "minority write cannot complete" 0
    (Protocols.Replicated_store.writes_ok store);
  (* With retries the attempt may end as a timeout or — once the far
     side is suspected and no quorum remains in view — as unavailable;
     either way it fails exactly once and never "succeeds". *)
  check_int "it fails" 1
    (Protocols.Replicated_store.timeouts store
    + Protocols.Replicated_store.unavailable store)

let () =
  Alcotest.run "protocols"
    [
      ( "mutex",
        [
          Alcotest.test_case "safety+liveness" `Quick test_mutex_safety_liveness;
          Alcotest.test_case "heavy contention" `Quick
            test_mutex_heavy_contention;
          Alcotest.test_case "many seeds" `Quick test_mutex_many_seeds;
          Alcotest.test_case "dead nodes" `Quick test_mutex_with_dead_nodes;
          Alcotest.test_case "wait stats" `Quick test_mutex_waits_positive;
        ] );
      ( "replicated store",
        [
          Alcotest.test_case "basic rw" `Quick test_store_basic_rw;
          Alcotest.test_case "mixed workload" `Quick test_store_mixed_workload;
          Alcotest.test_case "under faults" `Quick test_store_under_faults;
          Alcotest.test_case "retries" `Quick
            test_store_retries_improve_availability;
          Alcotest.test_case "partition" `Quick
            test_store_partition_unavailability;
        ] );
    ]
