(* Tests for the discrete-event simulation substrate. *)

module Engine = Sim.Engine
module Heap = Sim.Heap
module Network = Sim.Network
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Heap ----------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.push h ~time:t (int_of_float t)) [ 3.0; 1.0; 2.0 ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> -1 in
  check_int "first" 1 (pop ());
  check_int "second" 2 (pop ());
  check_int "third" 3 (pop ());
  check "empty" true (Heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~time:1.0 v) [ 10; 20; 30 ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> -1 in
  check_int "tie fifo 1" 10 (pop ());
  check_int "tie fifo 2" 20 (pop ());
  check_int "tie fifo 3" 30 (pop ())

let heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (float_bound_inclusive 100.0))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:t ()) times;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* --- Network -------------------------------------------------------- *)

let test_network_latency_positive () =
  let net = Network.create ~base_latency:2.0 ~jitter:0.5 () in
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    match Network.delay net rng ~src:0 ~dst:1 with
    | Some d -> check "latency >= base" true (d >= 2.0)
    | None -> Alcotest.fail "lossless network dropped"
  done

let test_network_loss () =
  let net = Network.create ~loss:0.5 () in
  let rng = Rng.create 2 in
  let dropped = ref 0 in
  for _ = 1 to 2000 do
    if Network.delay net rng ~src:0 ~dst:1 = None then incr dropped
  done;
  let rate = float_of_int !dropped /. 2000.0 in
  check "loss near 0.5" true (abs_float (rate -. 0.5) < 0.05)

let test_network_partition () =
  let net = Network.create () in
  let cut = Network.partition net ~group_a:[ 0; 1 ] in
  let rng = Rng.create 3 in
  check "cross-cut blocked" true (Network.delay net rng ~src:0 ~dst:2 = None);
  check "same side ok" true (Network.delay net rng ~src:0 ~dst:1 <> None);
  check "other side ok" true (Network.delay net rng ~src:2 ~dst:3 <> None);
  Network.heal net cut;
  check "healed" true (Network.delay net rng ~src:0 ~dst:2 <> None)

let test_network_overlapping_cuts () =
  (* Two overlapping cuts heal independently; a link crosses only when
     every cut containing it is gone. *)
  let net = Network.create () in
  let rng = Rng.create 4 in
  let c1 = Network.partition net ~group_a:[ 0 ] in
  let c2 = Network.partition net ~group_a:[ 0; 1 ] in
  check "blocked by both" true (Network.delay net rng ~src:0 ~dst:2 = None);
  Network.heal net c1;
  check "still one cut" true (Network.partitioned net);
  check "0-2 still blocked by c2" true
    (Network.delay net rng ~src:0 ~dst:2 = None);
  check "0-1 freed by healing c1" true
    (Network.delay net rng ~src:0 ~dst:1 <> None);
  Network.heal net c1;
  (* double-heal is a no-op *)
  check "0-2 blocked after double heal" true
    (Network.delay net rng ~src:0 ~dst:2 = None);
  Network.heal net c2;
  check "all healed" false (Network.partitioned net);
  check "0-2 open" true (Network.delay net rng ~src:0 ~dst:2 <> None)

let test_network_heal_all () =
  let net = Network.create () in
  let rng = Rng.create 5 in
  let _ = Network.partition net ~group_a:[ 0 ] in
  let _ = Network.partition net ~group_a:[ 1 ] in
  Network.heal_all net;
  check "heal_all removes every cut" false (Network.partitioned net);
  check "traffic flows" true (Network.delay net rng ~src:0 ~dst:1 <> None)

let test_network_link_loss () =
  let net = Network.create () in
  let rng = Rng.create 6 in
  Network.set_link_loss net ~src:0 ~dst:1 1.0;
  check "lossy direction drops" true (Network.delay net rng ~src:0 ~dst:1 = None);
  check "reverse direction flows" true
    (Network.delay net rng ~src:1 ~dst:0 <> None);
  Network.set_link_loss net ~src:0 ~dst:1 0.0;
  check "cleared" true (Network.delay net rng ~src:0 ~dst:1 <> None)

let test_network_slowdown () =
  (* A gray node inflates latency on every adjacent link, both ways. *)
  let net = Network.create ~jitter:0.0 () in
  let rng = Rng.create 7 in
  let base =
    match Network.delay net rng ~src:1 ~dst:2 with
    | Some d -> d
    | None -> Alcotest.fail "unexpected drop"
  in
  Network.set_slowdown net ~node:1 10.0;
  (match Network.delay net rng ~src:1 ~dst:2 with
  | Some d -> check "outbound slowed" true (d >= base +. 10.0)
  | None -> Alcotest.fail "unexpected drop");
  (match Network.delay net rng ~src:0 ~dst:1 with
  | Some d -> check "inbound slowed" true (d >= base +. 10.0)
  | None -> Alcotest.fail "unexpected drop");
  Network.set_slowdown net ~node:1 0.0;
  match Network.delay net rng ~src:1 ~dst:2 with
  | Some d -> check "slowdown cleared" true (d < base +. 10.0)
  | None -> Alcotest.fail "unexpected drop"

(* --- Engine --------------------------------------------------------- *)

type probe_msg = Ping | Pong

let probe_handlers log : probe_msg Engine.handlers =
  {
    on_message =
      (fun engine ~node ~src msg ->
        log := (Engine.now engine, `Msg (node, src)) :: !log;
        match msg with
        | Ping -> Engine.send engine ~src:node ~dst:src Pong
        | Pong -> ());
    on_timer =
      (fun engine ~node ~tag ->
        log := (Engine.now engine, `Timer (node, tag)) :: !log);
    on_crash = (fun engine ~node -> log := (Engine.now engine, `Crash node) :: !log);
    on_recover =
      (fun engine ~node ~amnesia:_ ->
        log := (Engine.now engine, `Recover node) :: !log);
  }

let test_engine_ping_pong () =
  let log = ref [] in
  let e = Engine.create ~seed:5 ~nodes:3 (probe_handlers log) in
  Engine.send e ~src:0 ~dst:1 Ping;
  Engine.run e;
  check_int "two deliveries" 2 (Engine.messages_delivered e);
  check_int "two sends" 2 (Engine.messages_sent e);
  check "time advanced" true (Engine.now e > 0.0)

let test_engine_determinism () =
  let run () =
    let log = ref [] in
    let e = Engine.create ~seed:9 ~nodes:4 (probe_handlers log) in
    Engine.send e ~src:0 ~dst:1 Ping;
    Engine.send e ~src:2 ~dst:3 Ping;
    Engine.set_timer e ~node:0 ~delay:0.5 ~tag:7;
    Engine.run e;
    (!log, Engine.now e)
  in
  let a = run () and b = run () in
  check "identical traces" true (a = b)

let test_engine_crash_drops_messages () =
  let log = ref [] in
  let e = Engine.create ~seed:6 ~nodes:2 (probe_handlers log) in
  Engine.crash_at e ~time:0.0 ~node:1;
  Engine.schedule e ~time:1.0 (fun () -> Engine.send e ~src:0 ~dst:1 Ping);
  Engine.run e;
  let deliveries =
    List.filter (fun (_, ev) -> match ev with `Msg _ -> true | _ -> false) !log
  in
  check_int "no deliveries to dead node" 0 (List.length deliveries)

let test_engine_recover () =
  let log = ref [] in
  let e = Engine.create ~seed:6 ~nodes:2 (probe_handlers log) in
  Engine.crash_at e ~time:0.0 ~node:1;
  Engine.recover_at e ~time:5.0 ~node:1;
  Engine.schedule e ~time:6.0 (fun () -> Engine.send e ~src:0 ~dst:1 Ping);
  Engine.run e;
  let deliveries =
    List.filter (fun (_, ev) -> match ev with `Msg _ -> true | _ -> false) !log
  in
  (* ping delivered to 1, pong back to 0 *)
  check_int "delivered after recovery" 2 (List.length deliveries)

let test_engine_until () =
  let log = ref [] in
  let e = Engine.create ~seed:1 ~nodes:1 (probe_handlers log) in
  Engine.set_timer e ~node:0 ~delay:1.0 ~tag:1;
  Engine.set_timer e ~node:0 ~delay:10.0 ~tag:2;
  Engine.run ~until:5.0 e;
  check_int "only first timer" 1 (List.length !log);
  Alcotest.(check (float 1e-9)) "clock clamped" 5.0 (Engine.now e)

let test_engine_live_set () =
  let log = ref [] in
  let e = Engine.create ~seed:1 ~nodes:4 (probe_handlers log) in
  Engine.crash_at e ~time:0.0 ~node:2;
  Engine.run e;
  let live = Engine.live_set e in
  check "2 dead" false (Quorum.Bitset.mem live 2);
  check_int "3 live" 3 (Quorum.Bitset.cardinal live)

let test_engine_background_drains () =
  (* A perpetual background timer chain must not keep [run] alive. *)
  let fired = ref 0 in
  let handlers : probe_msg Engine.handlers =
    {
      on_message = (fun _ ~node:_ ~src:_ _ -> ());
      on_timer =
        (fun e ~node ~tag ->
          incr fired;
          Engine.set_timer ~background:true e ~node ~delay:1.0 ~tag);
      on_crash = (fun _ ~node:_ -> ());
      on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
    }
  in
  let e = Engine.create ~seed:2 ~nodes:1 handlers in
  Engine.set_timer ~background:true e ~node:0 ~delay:1.0 ~tag:0;
  Engine.set_timer e ~node:0 ~delay:3.5 ~tag:1;
  (* foreground *)
  let outcome = Engine.run_status e in
  check "drained" true (outcome = Engine.Drained);
  (* Background beats at 1,2,3 ran while foreground work remained, plus
     the foreground timer at 3.5. *)
  check_int "heartbeats ran while foreground lived" 4 !fired;
  check_int "background not in messages_sent" 0 (Engine.messages_sent e)

let test_engine_budget_reported () =
  (* A self-perpetuating foreground timer never drains: the event
     budget must trip, be reported, and be counted. *)
  let handlers : probe_msg Engine.handlers =
    {
      on_message = (fun _ ~node:_ ~src:_ _ -> ());
      on_timer =
        (fun e ~node ~tag -> Engine.set_timer e ~node ~delay:1.0 ~tag);
      on_crash = (fun _ ~node:_ -> ());
      on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
    }
  in
  let e = Engine.create ~seed:2 ~nodes:1 handlers in
  Engine.set_timer e ~node:0 ~delay:1.0 ~tag:0;
  let outcome = Engine.run_status ~max_events:100 e in
  check "budget exhausted" true (outcome = Engine.Budget_exhausted);
  check_int "exhaustion counted" 1 (Engine.budget_exhaustions e);
  check "run raises on exhaustion" true
    (try
       Engine.run ~max_events:100 e;
       false
     with Failure _ -> true);
  check_int "counted again" 2 (Engine.budget_exhaustions e)

(* --- Failure injector ------------------------------------------------ *)

let test_iid_faults_fraction () =
  (* Measure the down-fraction of a node across a long horizon. *)
  let log = ref [] in
  let e = Engine.create ~seed:3 ~nodes:5 (probe_handlers log) in
  Sim.Failure_injector.iid_faults e ~rng:(Rng.create 42) ~p:0.25
    ~mean_downtime:2.0 ~horizon:5000.0;
  (* Track downtime of node 0 through crash/recover events. *)
  Engine.run e;
  let events =
    List.rev
      (List.filter_map
         (fun (t, ev) ->
           match ev with
           | `Crash 0 -> Some (t, `Down)
           | `Recover 0 -> Some (t, `Up)
           | _ -> None)
         !log)
  in
  let rec downtime acc last_down = function
    | [] -> (match last_down with Some t -> acc +. (5000.0 -. t) | None -> acc)
    | (t, `Down) :: rest -> downtime acc (Some t) rest
    | (t, `Up) :: rest ->
        (match last_down with
        | Some d -> downtime (acc +. (t -. d)) None rest
        | None -> downtime acc None rest)
  in
  let frac = downtime 0.0 None events /. 5000.0 in
  check "down fraction near p" true (abs_float (frac -. 0.25) < 0.06)

let test_scripted () =
  let log = ref [] in
  let e = Engine.create ~seed:3 ~nodes:2 (probe_handlers log) in
  Sim.Failure_injector.scripted e
    [ (1.0, Sim.Failure_injector.Crash 0); (2.0, Sim.Failure_injector.Recover 0) ];
  Engine.run e;
  check_int "two events" 2 (List.length !log)

let test_crash_random_subset () =
  let log = ref [] in
  let e = Engine.create ~seed:3 ~nodes:100 (probe_handlers log) in
  Sim.Failure_injector.crash_random_subset e ~rng:(Rng.create 8) ~at:1.0
    ~p:0.3;
  Engine.run e;
  let crashed = 100 - Quorum.Bitset.cardinal (Engine.live_set e) in
  check "roughly 30 crashed" true (crashed > 15 && crashed < 45)

(* --- Rpc retransmit backoff ---------------------------------------- *)

let test_backoff_jitter_zero () =
  (* jitter = 0: the classic deterministic schedule, prev * backoff
     clamped to the cap — no RNG draw at all. *)
  let rpc =
    Sim.Rpc.create ~timeout:2.0 ~backoff:2.0 ~jitter:0.0 ~cap:16.0
      ~wrap:Fun.id ()
  in
  let rng = Rng.create 1 in
  let d1 = Sim.Rpc.next_backoff rpc rng ~prev:2.0 in
  let d2 = Sim.Rpc.next_backoff rpc rng ~prev:d1 in
  let d3 = Sim.Rpc.next_backoff rpc rng ~prev:d2 in
  let d4 = Sim.Rpc.next_backoff rpc rng ~prev:d3 in
  Alcotest.(check (float 1e-9)) "doubles" 4.0 d1;
  Alcotest.(check (float 1e-9)) "doubles again" 8.0 d2;
  Alcotest.(check (float 1e-9)) "hits cap" 16.0 d3;
  Alcotest.(check (float 1e-9)) "stays capped" 16.0 d4

let backoff_within_bounds =
  QCheck.Test.make ~count:200
    ~name:"decorrelated backoff stays in [timeout, min cap (3*prev)]"
    QCheck.(pair (int_range 0 10_000) (float_range 2.0 40.0))
    (fun (seed, prev) ->
      let rpc =
        Sim.Rpc.create ~timeout:2.0 ~jitter:0.3 ~cap:32.0 ~wrap:Fun.id ()
      in
      let d = Sim.Rpc.next_backoff rpc (Rng.create seed) ~prev in
      d >= 2.0 && d <= Float.min 32.0 (3.0 *. prev))

let test_backoff_deterministic () =
  (* Same seed, same prev sequence -> identical delays: jittered runs
     stay exactly reproducible. *)
  let draw seed =
    let rpc = Sim.Rpc.create ~timeout:2.0 ~jitter:0.3 ~wrap:Fun.id () in
    let rng = Rng.create seed in
    let rec go prev k acc =
      if k = 0 then List.rev acc
      else
        let d = Sim.Rpc.next_backoff rpc rng ~prev in
        go d (k - 1) (d :: acc)
    in
    go 2.0 8 []
  in
  Alcotest.(check (list (float 1e-12))) "same seed" (draw 9) (draw 9);
  check "different seed differs" true (draw 9 <> draw 10)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          QCheck_alcotest.to_alcotest heap_sorts;
        ] );
      ( "network",
        [
          Alcotest.test_case "latency" `Quick test_network_latency_positive;
          Alcotest.test_case "loss" `Quick test_network_loss;
          Alcotest.test_case "partition" `Quick test_network_partition;
          Alcotest.test_case "overlapping cuts" `Quick
            test_network_overlapping_cuts;
          Alcotest.test_case "heal all" `Quick test_network_heal_all;
          Alcotest.test_case "link loss" `Quick test_network_link_loss;
          Alcotest.test_case "slowdown" `Quick test_network_slowdown;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ping pong" `Quick test_engine_ping_pong;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "crash drops" `Quick
            test_engine_crash_drops_messages;
          Alcotest.test_case "recover" `Quick test_engine_recover;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "live set" `Quick test_engine_live_set;
          Alcotest.test_case "background drains" `Quick
            test_engine_background_drains;
          Alcotest.test_case "budget reported" `Quick
            test_engine_budget_reported;
        ] );
      ( "failure injector",
        [
          Alcotest.test_case "iid fraction" `Slow test_iid_faults_fraction;
          Alcotest.test_case "scripted" `Quick test_scripted;
          Alcotest.test_case "random subset" `Quick test_crash_random_subset;
        ] );
      ( "rpc backoff",
        [
          Alcotest.test_case "jitter zero" `Quick test_backoff_jitter_zero;
          QCheck_alcotest.to_alcotest backoff_within_bounds;
          Alcotest.test_case "deterministic" `Quick test_backoff_deterministic;
        ] );
    ]
