(* Cross-construction battery for every baseline quorum system, plus
   per-construction unit tests (closed-form failure probabilities
   against exact enumeration, published structural facts). *)

module Bitset = Quorum.Bitset
module System = Quorum.System
module Coterie = Quorum.Coterie
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* Systems small enough for full checks.  Each battery entry runs the
   generic properties below. *)
let small_systems () =
  [
    Systems.Majority.make 7;
    Systems.Majority.make 8;
    Systems.Singleton.make 5;
    Systems.Weighted_voting.system ~votes:[| 3; 1; 1; 1; 1 |] ();
    Systems.Grid.system ~rows:3 ~cols:3 Systems.Grid.Read_write;
    Systems.Grid.t_grid ~rows:3 ~cols:3 ();
    Systems.Wall.system [| 1; 2; 3; 2 |];
    Systems.Cwlog.system ~n:14 ();
    Systems.Triangle.system ~rows:4 ();
    Systems.Diamond.system ~half_rows:3 ();
    Systems.Hqs.system ~branching:[ 3; 3 ] ();
    Systems.Tree_quorum.system ~height:3 ();
    Systems.Fpp.system ~order:2 ();
    Systems.Fpp.system ~order:3 ();
    Systems.Y_system.system ~rows:4 ();
    Systems.Paths.system ~d:2 ();
  ]

let enumerable (s : System.t) = Option.is_some s.System.min_quorums

(* Read-only and write-only families are not self-intersecting quorum
   systems: a read quorum must intersect every write quorum and vice
   versa (section 4.1).  Check that cross property here; the battery
   below covers the mutual-exclusion systems. *)
let test_read_write_cross_intersection () =
  List.iter
    (fun (rows, cols) ->
      let reads =
        Quorum.System.quorums_exn
          (Systems.Grid.system ~rows ~cols Systems.Grid.Read)
      in
      let writes =
        Quorum.System.quorums_exn
          (Systems.Grid.system ~rows ~cols Systems.Grid.Write)
      in
      List.iter
        (fun r ->
          List.iter
            (fun w ->
              check "read x write intersect" true (Bitset.intersects r w))
            writes)
        reads)
    [ (2, 4); (4, 2); (3, 3) ]

(* 1. Intersection property and antichain over the explicit coterie. *)
let test_coterie_properties () =
  List.iter
    (fun (s : System.t) ->
      if enumerable s then begin
        let quorums = System.quorums_exn s in
        check (s.name ^ ": nonempty") true (quorums <> []);
        check (s.name ^ ": intersecting") true (Coterie.all_intersect quorums);
        check (s.name ^ ": antichain") true (Coterie.is_antichain quorums)
      end)
    (small_systems ())

(* 2. Every enumerated quorum is available. *)
let test_quorums_available () =
  List.iter
    (fun (s : System.t) ->
      if enumerable s then
        List.iter
          (fun q -> check (s.name ^ ": quorum avail") true (s.avail q))
          (System.quorums_exn s))
    (small_systems ())

(* 3. avail agrees with subset-of-live over all masks (n <= 16), or
   sampled masks otherwise. *)
let test_avail_matches_quorum_list () =
  List.iter
    (fun (s : System.t) ->
      if enumerable s && s.n <= 16 then begin
        let quorums = System.quorums_exn s in
        let avail = System.avail_mask_exn s in
        let scratch = Bitset.create s.n in
        for mask = 0 to (1 lsl s.n) - 1 do
          Bitset.blit_mask scratch mask;
          let expected =
            List.exists (fun q -> Bitset.subset q scratch) quorums
          in
          if expected <> avail mask then
            Alcotest.failf "%s: avail mismatch at mask %d" s.name mask
        done
      end)
    (small_systems ())

(* 4. avail_mask consistent with avail on random subsets. *)
let test_mask_vs_bitset () =
  let rng = Rng.create 99 in
  List.iter
    (fun (s : System.t) ->
      if s.n <= Bitset.bits_per_word then begin
        let mask_avail = System.avail_mask_exn s in
        for _ = 1 to 200 do
          let live = Bitset.random_subset rng ~n:s.n ~p:0.6 in
          if s.avail live <> mask_avail (Bitset.to_mask live) then
            Alcotest.failf "%s: mask/bitset disagree" s.name
        done
      end)
    (small_systems ())

(* 5. Monotonicity: adding a live node never kills availability. *)
let test_monotone () =
  let rng = Rng.create 123 in
  List.iter
    (fun (s : System.t) ->
      for _ = 1 to 100 do
        let live = Bitset.random_subset rng ~n:s.n ~p:0.5 in
        if s.avail live then begin
          let bigger = Bitset.copy live in
          let dead = Bitset.complement live in
          (match Bitset.choose dead with
          | Some e -> Bitset.add bigger e
          | None -> ());
          check (s.name ^ ": monotone") true (s.avail bigger)
        end
      done)
    (small_systems ())

(* 6. Select returns a quorum within live. *)
let test_select_valid () =
  let rng = Rng.create 7 in
  List.iter
    (fun (s : System.t) ->
      for _ = 1 to 100 do
        let live = Bitset.random_subset rng ~n:s.n ~p:0.8 in
        match s.System.select rng ~live with
        | None ->
            check (s.name ^ ": select none implies unavail") false
              (s.avail live)
        | Some q ->
            check (s.name ^ ": quorum in live") true (Bitset.subset q live);
            check (s.name ^ ": selected avail") true (s.avail q)
      done)
    (small_systems ())

(* 7. Failure-probability boundary values. *)
let test_fp_boundaries () =
  List.iter
    (fun (s : System.t) ->
      if s.n <= 20 then begin
        let poly = Analysis.Failure.exact_poly s in
        check_float (s.name ^ ": F(0)=0") 0.0
          (Quorum.Failure_poly.eval poly ~p:0.0);
        check_float (s.name ^ ": F(1)=1") 1.0
          (Quorum.Failure_poly.eval poly ~p:1.0);
        (* monotone in p *)
        let prev = ref 0.0 in
        List.iter
          (fun p ->
            let v = Quorum.Failure_poly.eval poly ~p in
            check (s.name ^ ": monotone in p") true (v >= !prev -. 1e-12);
            prev := v)
          [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.7; 0.9 ]
      end)
    (small_systems ())

(* --- Closed forms vs enumeration ----------------------------------- *)

let enum_fp s p = Analysis.Failure.exact s ~p

let test_wall_closed_form () =
  List.iter
    (fun widths ->
      let s = Systems.Wall.system widths in
      List.iter
        (fun p ->
          check_close 1e-9 "wall closed form"
            (enum_fp s p)
            (Systems.Wall.failure_probability ~widths ~p))
        [ 0.1; 0.3; 0.5; 0.8 ])
    [ [| 1; 2; 2 |]; [| 3; 3; 3 |]; [| 2; 1; 4; 2 |]; [| 5 |] ]

let test_grid_closed_form () =
  List.iter
    (fun (rows, cols) ->
      List.iter
        (fun mode ->
          let s = Systems.Grid.system ~rows ~cols mode in
          List.iter
            (fun p ->
              check_close 1e-9 "grid closed form"
                (enum_fp s p)
                (Systems.Grid.failure_probability ~rows ~cols mode ~p))
            [ 0.1; 0.4; 0.6 ])
        [ Systems.Grid.Read; Systems.Grid.Write; Systems.Grid.Read_write ])
    [ (3, 3); (2, 5); (4, 2) ]

let test_hqs_closed_form () =
  List.iter
    (fun branching ->
      let s = Systems.Hqs.system ~branching () in
      List.iter
        (fun p ->
          check_close 1e-9 "hqs closed form"
            (enum_fp s p)
            (Systems.Hqs.failure_probability ~branching ~p))
        [ 0.1; 0.3; 0.5 ])
    [ [ 3; 3 ]; [ 5; 3 ]; [ 3; 5 ] ]

let test_tree_closed_form () =
  List.iter
    (fun height ->
      let s = Systems.Tree_quorum.system ~height () in
      List.iter
        (fun p ->
          check_close 1e-9 "tree closed form"
            (enum_fp s p)
            (Systems.Tree_quorum.failure_probability ~height ~p))
        [ 0.1; 0.3; 0.5 ])
    [ 2; 3; 4 ]

let test_majority_closed_form () =
  List.iter
    (fun n ->
      let s = Systems.Majority.make n in
      List.iter
        (fun p ->
          check_close 1e-9 "majority closed form"
            (enum_fp s p)
            (Systems.Majority.failure_probability ~n ~p))
        [ 0.1; 0.3; 0.5 ])
    [ 5; 8; 15 ]

let test_voting_closed_form () =
  let votes = [| 2; 1; 1; 3; 1 |] in
  let s = Systems.Weighted_voting.system ~votes () in
  List.iter
    (fun p ->
      check_close 1e-9 "voting closed form"
        (enum_fp s p)
        (Systems.Weighted_voting.failure_probability ~votes ~p))
    [ 0.15; 0.5; 0.75 ]

(* --- Non-domination: F(1/2) = 1/2 ---------------------------------- *)

let test_non_dominated_half () =
  let nd =
    [
      Systems.Majority.make 7;
      Systems.Majority.make 8;
      (* tie-broken *)
      Systems.Hqs.system ~branching:[ 3; 3 ] ();
      Systems.Cwlog.system ~n:14 ();
      Systems.Triangle.system ~rows:4 ();
      Systems.Diamond.system ~half_rows:3 ();
      Systems.Y_system.system ~rows:4 ();
      Systems.Y_system.system ~rows:5 ();
    ]
  in
  List.iter
    (fun (s : System.t) ->
      check_close 1e-9 (s.name ^ ": F(1/2)") 0.5 (enum_fp s 0.5))
    nd

(* The plain even majority is dominated: F(1/2) > 1/2. *)
let test_plain_even_majority_dominated () =
  let s = Systems.Majority.make_plain 8 in
  check "plain majority dominated" true (enum_fp s 0.5 > 0.5)

(* --- Published / structural facts ----------------------------------- *)

let test_cwlog_shape () =
  Alcotest.(check (array int))
    "cwlog(14) widths" [| 1; 2; 2; 3; 3; 3 |]
    (Systems.Cwlog.widths_for 14);
  Alcotest.(check (array int))
    "cwlog(29) widths"
    [| 1; 2; 2; 3; 3; 3; 3; 4; 4; 4 |]
    (Systems.Cwlog.widths_for 29);
  let stats = Analysis.Metrics.of_system (Systems.Cwlog.system ~n:14 ()) in
  check_int "cwlog(14) min quorum" 3 stats.min_size;
  check_int "cwlog(14) max quorum" 6 stats.max_size

let test_fpp_shape () =
  let s = Systems.Fpp.system ~order:3 () in
  check_int "fpp order 3 universe" 13 s.System.n;
  let quorums = System.quorums_exn s in
  check_int "13 lines" 13 (List.length quorums);
  List.iter
    (fun q -> check_int "line size q+1" 4 (Bitset.cardinal q))
    quorums;
  (* any two lines meet in exactly one point *)
  let rec pairs = function
    | [] -> ()
    | q :: rest ->
        List.iter
          (fun r ->
            check_int "lines meet in one point" 1
              (Bitset.cardinal (Bitset.inter q r)))
          rest;
        pairs rest
  in
  pairs quorums

let test_wall_quorum_count () =
  check_int "wall quorum count" (Systems.Wall.quorum_count [| 1; 2; 3 |])
    (List.length (System.quorums_exn (Systems.Wall.system [| 1; 2; 3 |])));
  check_int "triangle(4 rows) count"
    (2 * 3 * 4 + 3 * 4 + 4 + 1)
    (Systems.Wall.quorum_count [| 1; 2; 3; 4 |])

let test_triangle_sizes () =
  let s = Systems.Triangle.system ~rows:5 () in
  let stats = Analysis.Metrics.of_system s in
  check_int "triangle min = rows" 5 stats.min_size;
  check_int "rows_for" 5 (Systems.Triangle.rows_for 15);
  check_int "rows_for non-triangular" 5 (Systems.Triangle.rows_for 11)

let test_paths_structure () =
  check_int "paths universe" 12 (Systems.Paths.universe_size ~d:2);
  let s = Systems.Paths.system ~d:2 () in
  (* a full row of horizontal edges alone is not enough: the dual
     crossing needs vertical freedom *)
  let row = Bitset.create 12 in
  List.iter
    (fun c -> Bitset.add row (Systems.Paths.horizontal ~d:2 ~row:1 ~col:c))
    [ 0; 1 ];
  check "LR row alone insufficient" false (s.System.avail row);
  check "full universe available" true
    (s.System.avail (Bitset.universe 12))

let test_y_structure () =
  let s = Systems.Y_system.system ~rows:4 () in
  check_int "y universe" 10 s.System.n;
  (* left edge path apex->bottom-left corner touches all three sides *)
  let q = Bitset.create 10 in
  List.iter
    (fun r -> Bitset.add q (Systems.Y_system.element ~row:r ~col:0))
    [ 0; 1; 2; 3 ];
  check "left edge is a quorum" true (s.System.avail q);
  (* bottom row alone touches left, right, bottom *)
  let b = Bitset.create 10 in
  List.iter
    (fun c -> Bitset.add b (Systems.Y_system.element ~row:3 ~col:c))
    [ 0; 1; 2; 3 ];
  check "bottom row is a quorum" true (s.System.avail b);
  (* two disconnected side stubs are not *)
  let bad = Bitset.create 10 in
  Bitset.add bad (Systems.Y_system.element ~row:3 ~col:0);
  Bitset.add bad (Systems.Y_system.element ~row:3 ~col:3);
  Bitset.add bad (Systems.Y_system.element ~row:0 ~col:0);
  check "disconnected set is not" false (s.System.avail bad)

let test_tree_quorum_shapes () =
  let s = Systems.Tree_quorum.system ~height:3 () in
  let stats = Analysis.Metrics.of_system s in
  check_int "tree(7) min (root path)" 3 stats.min_size;
  check_int "tree(7) max (leaves)" 4 stats.max_size

let test_majority_sizes () =
  check_int "majority(15) quorum" 8 (Systems.Majority.quorum_size 15);
  check_int "majority(28) quorum" 14 (Systems.Majority.quorum_size 28);
  let stats = Analysis.Metrics.of_system (Systems.Majority.make 7) in
  check_int "majority(7) size" 4 stats.min_size;
  check_int "all same size" 4 stats.max_size

(* Singleton failure probability is exactly p. *)
let test_singleton_fp () =
  let s = Systems.Singleton.make 4 in
  List.iter
    (fun p -> check_close 1e-9 "singleton F=p" p (enum_fp s p))
    [ 0.0; 0.25; 0.5; 0.9 ]

let () =
  Alcotest.run "systems"
    [
      ( "battery",
        [
          Alcotest.test_case "coterie properties" `Quick test_coterie_properties;
          Alcotest.test_case "read x write cross" `Quick
            test_read_write_cross_intersection;
          Alcotest.test_case "quorums available" `Quick test_quorums_available;
          Alcotest.test_case "avail = quorum list" `Slow
            test_avail_matches_quorum_list;
          Alcotest.test_case "mask = bitset" `Quick test_mask_vs_bitset;
          Alcotest.test_case "monotone" `Quick test_monotone;
          Alcotest.test_case "select valid" `Quick test_select_valid;
          Alcotest.test_case "fp boundaries" `Slow test_fp_boundaries;
        ] );
      ( "closed forms",
        [
          Alcotest.test_case "wall" `Quick test_wall_closed_form;
          Alcotest.test_case "grid" `Quick test_grid_closed_form;
          Alcotest.test_case "hqs" `Quick test_hqs_closed_form;
          Alcotest.test_case "tree" `Quick test_tree_closed_form;
          Alcotest.test_case "majority" `Quick test_majority_closed_form;
          Alcotest.test_case "voting" `Quick test_voting_closed_form;
        ] );
      ( "non-domination",
        [
          Alcotest.test_case "F(1/2) = 1/2" `Quick test_non_dominated_half;
          Alcotest.test_case "plain even majority" `Quick
            test_plain_even_majority_dominated;
        ] );
      ( "structure",
        [
          Alcotest.test_case "cwlog shape" `Quick test_cwlog_shape;
          Alcotest.test_case "fpp plane" `Quick test_fpp_shape;
          Alcotest.test_case "wall quorum count" `Quick test_wall_quorum_count;
          Alcotest.test_case "triangle sizes" `Quick test_triangle_sizes;
          Alcotest.test_case "paths structure" `Quick test_paths_structure;
          Alcotest.test_case "y structure" `Quick test_y_structure;
          Alcotest.test_case "tree shapes" `Quick test_tree_quorum_shapes;
          Alcotest.test_case "majority sizes" `Quick test_majority_sizes;
          Alcotest.test_case "singleton fp" `Quick test_singleton_fp;
        ] );
    ]
