(* Sessioned-client suite: windowed/batched sessions agree with
   sequential submission under chaos (same final register state, zero
   stale reads), batched fsyncs are crash-atomic per batch, the shard
   router partitions keys onto disjoint subquorums, session backlogs
   shed at the bound, and the throughput runner is deterministic with
   the hierarchical arms beating flat majority once n is large. *)

module Engine = Sim.Engine
module Network = Sim.Network
module Durable = Sim.Durable
module Store = Protocols.Replicated_store
module Session = Protocols.Replicated_store.Session
module Chaos = Protocols.Chaos
module Client_config = Protocols.Client_config
module Shard_router = Protocols.Shard_router
module Throughput = Protocols.Throughput
module Rng = Quorum.Rng
module Bitset = Quorum.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Windowed-vs-sequential equivalence (qcheck) --------------------- *)

(* One client conversation: the same op list submitted through a
   window-1 session one-at-a-time, and through a wide batched session
   all-at-once.  Per-key FIFO makes both apply each key's writes in
   submission order, so when every op completes the final register
   state must be identical — and equal to last-Put-wins computed
   directly from the op list. *)

let seed = 11
let n_keys = 4
let client = 3 (* outside the minority partition cut ([0]) for n = 6 *)

let test_system () = Core.Htriang.system (Core.Htriang.standard ~rows:3 ())

let loss_scenario =
  { Chaos.label = "loss"; horizon = 400.0; plan = { Chaos.calm with loss = 0.1 } }

let partition_scenario =
  {
    Chaos.label = "partition";
    horizon = 400.0;
    plan =
      { Chaos.calm with loss = 0.02; partitions = [ (10.0, 15.0, [ 0 ]) ] };
  }

(* ops are (key, is_put); values are assigned by position so both
   drivers submit byte-identical requests. *)
let requests ops =
  Array.of_list
    (List.mapi
       (fun i (key, is_put) ->
         if is_put then Store.Put { key; value = i + 1 } else Store.Get { key })
       ops)

let expected_state ops =
  let m = Array.make n_keys None in
  List.iteri
    (fun i (key, is_put) -> if is_put then m.(key) <- Some (i + 1))
    ops;
  m

(* Highest-versioned replica value per key: with every write committed,
   this is the register's final state. *)
let final_state store ~n =
  Array.init n_keys (fun key ->
      let best = ref None in
      for node = 0 to n - 1 do
        match Store.replica_value store ~node ~key with
        | Some (v, value) -> (
            match !best with
            | Some (bv, _) when bv >= v -> ()
            | _ -> best := Some (v, value))
        | None -> ()
      done;
      Option.map snd !best)

let run_session ~window ~batch_size ~sequential scenario ops =
  let system = test_system () in
  let n = system.Quorum.System.n in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.Chaos.plan.Chaos.loss () in
  let config =
    Client_config.(default |> with_timeout 60.0 |> with_retries 8)
  in
  let store =
    Store.of_config ~config ~read_system:system ~write_system:system ()
  in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:n ~network (Store.handlers store)
  in
  Store.bind store engine;
  Chaos.apply engine ~rng scenario;
  let session =
    Session.create store ~client ~window ~batch_size ~batch_delay:0.5 ()
  in
  let reqs = requests ops in
  (if sequential then
     let rec go i =
       if i < Array.length reqs then
         let ok =
           Session.submit store session
             ~on_complete:(fun _ -> go (i + 1))
             reqs.(i)
         in
         if not ok then go (i + 1)
     in
     Engine.schedule engine ~time:0.0 (fun () -> go 0)
   else
     Engine.schedule engine ~time:0.0 (fun () ->
         Array.iter
           (fun req -> ignore (Session.submit store session req))
           reqs;
         Session.drain store session));
  ignore (Engine.run_status engine);
  (store, session, final_state store ~n)

let ops_gen =
  QCheck.Gen.(
    list_size (int_range 5 20) (pair (int_range 0 (n_keys - 1)) bool))

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun (k, w) -> Printf.sprintf "%s%d" (if w then "w" else "r") k)
           ops))
    ops_gen

let equivalence (scenario : Chaos.scenario) =
  QCheck.Test.make ~count:12
    ~name:
      (Printf.sprintf "windowed+batched = sequential (%s)"
         scenario.Chaos.label)
    ops_arb
    (fun ops ->
      let total = List.length ops in
      let seq_store, seq_s, seq_state =
        run_session ~window:1 ~batch_size:1 ~sequential:true scenario ops
      in
      let win_store, win_s, win_state =
        run_session ~window:4 ~batch_size:3 ~sequential:false scenario ops
      in
      (* The chaos here is survivable by construction (generous timeout
         and retries), so an incomplete run is itself a failure. *)
      Session.completed seq_s = total
      && Session.completed win_s = total
      && Store.timeouts seq_store + Store.unavailable seq_store = 0
      && Store.timeouts win_store + Store.unavailable win_store = 0
      && Store.stale_reads seq_store = 0
      && Store.stale_reads win_store = 0
      && seq_state = win_state
      && win_state = expected_state ops)

(* --- Batched fsync atomicity ---------------------------------------- *)

let test_batch_torn_as_unit () =
  let dur =
    Durable.create ~obs:(Obs.create ()) ~nodes:1
      (Durable.config ~fsync_latency:1.0 ~torn_tail:true ())
  in
  let at = Durable.append_batch dur ~node:0 ~now:0.0 [ "a"; "b"; "c" ] in
  check "one durable instant for the batch" true (at = 1.0);
  ignore (Durable.append_batch dur ~node:0 ~now:2.0 [ "d"; "e" ]);
  (* d,e are in flight at 2.5; the torn tail then destroys the whole
     newest surviving group (a,b,c) — never a partial batch. *)
  Durable.crash dur ~node:0 ~now:2.5;
  check "torn batch dies whole" true (Durable.replay dur ~node:0 ~now:9.0 = []);
  (* Same appends, crash after both fsyncs: everything survives. *)
  let dur2 =
    Durable.create ~obs:(Obs.create ()) ~nodes:1
      (Durable.config ~fsync_latency:1.0 ~torn_tail:true ())
  in
  ignore (Durable.append_batch dur2 ~node:0 ~now:0.0 [ "a"; "b"; "c" ]);
  ignore (Durable.append_batch dur2 ~node:0 ~now:2.0 [ "d"; "e" ]);
  Durable.crash dur2 ~node:0 ~now:5.0;
  check "settled batches survive" true
    (Durable.replay dur2 ~node:0 ~now:9.0 = [ "a"; "b"; "c"; "d"; "e" ])

(* Property: whatever the batch layout and crash instant, each batch
   survives all-or-nothing. *)
let batch_atomicity =
  QCheck.Test.make ~count:100 ~name:"crash keeps batches all-or-nothing"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5) (int_range 1 4))
        (float_range 0.0 8.0))
    (fun (sizes, crash_at) ->
      let dur =
        Durable.create ~obs:(Obs.create ()) ~nodes:1
          (Durable.config ~fsync_latency:1.0 ~torn_tail:true ())
      in
      List.iteri
        (fun b size ->
          ignore
            (Durable.append_batch dur ~node:0
               ~now:(float_of_int b)
               (List.init size (fun j -> (b, j)))))
        sizes;
      Durable.crash dur ~node:0 ~now:crash_at;
      let survived = Durable.replay dur ~node:0 ~now:100.0 in
      List.for_all
        (fun b ->
          let got =
            List.length (List.filter (fun (b', _) -> b' = b) survived)
          in
          got = 0 || got = List.nth sizes b)
        (List.init (List.length sizes) Fun.id))

(* --- Shard router ---------------------------------------------------- *)

let test_router_layout () =
  let r =
    match Shard_router.create ~universe:12 ~shards:3 () with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  check_int "universe" 12 (Shard_router.universe r);
  check_int "shards" 3 (Shard_router.shard_count r);
  check_int "key routing" 2 (Shard_router.shard_of_key r ~key:5);
  (* Blocks partition the universe contiguously. *)
  check "blocks partition the universe" true
    (List.concat_map
       (fun s -> Array.to_list (Shard_router.members r ~shard:s))
       [ 0; 1; 2 ]
    = List.init 12 Fun.id);
  (* Every shard system spans the full universe, so engine-sized live
     sets work unchanged. *)
  check_int "embedded over the universe" 12
    (Shard_router.read_system r ~key:0).Quorum.System.n;
  (* A member's shard is consistent with the blocks; shard_of_node
     never crosses blocks. *)
  for node = 0 to 11 do
    match Shard_router.shard_of_node r ~node with
    | Some s ->
        check "node sits in its shard's block" true
          (Array.exists (fun p -> p = node) (Shard_router.members r ~shard:s))
    | None -> ()
  done

let test_router_disjoint_quorums () =
  let r =
    match Shard_router.create ~universe:12 ~shards:3 () with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let rng = Rng.create 3 in
  let live = Bitset.universe 12 in
  (* Disjoint keys hit disjoint subquorums: any read/write quorum of
     shard 0 is disjoint from any of shard 1. *)
  for _ = 1 to 20 do
    match
      ( (Shard_router.shard_read_system r ~shard:0).Quorum.System.select rng
          ~live,
        (Shard_router.shard_write_system r ~shard:1).Quorum.System.select rng
          ~live )
    with
    | Some q0, Some q1 ->
        check "subquorums of different shards are disjoint" true
          (Bitset.is_empty (Bitset.inter q0 q1))
    | _ -> Alcotest.fail "no quorum with everything live"
  done

let test_router_rejects_bad_cuts () =
  check "more shards than processes" true
    (Result.is_error (Shard_router.create ~universe:3 ~shards:4 ()));
  check "zero shards" true
    (Result.is_error (Shard_router.create ~universe:3 ~shards:0 ()))

(* --- Backlog shedding ------------------------------------------------ *)

let test_backlog_shed () =
  let system = test_system () in
  let n = system.Quorum.System.n in
  let store =
    Store.of_config ~read_system:system ~write_system:system ()
  in
  let engine =
    Engine.create ~seed:2 ~nodes:n ~network:(Network.create ())
      (Store.handlers store)
  in
  Store.bind store engine;
  let s = Session.create store ~client:0 ~window:1 ~max_queue:2 () in
  let accepted = ref 0 in
  Engine.schedule engine ~time:0.0 (fun () ->
      for v = 1 to 6 do
        if Session.submit store s (Store.Put { key = 0; value = v }) then
          incr accepted
      done);
  ignore (Engine.run_status engine);
  (* window 1 + backlog 2: the first three submissions stick, the rest
     shed (same key, so nothing can jump the queue). *)
  check_int "accepted" 3 !accepted;
  check_int "shed (session)" 3 (Session.shed s);
  check_int "shed (store)" 3 (Store.shed store);
  check_int "completed the accepted ones" 3 (Session.completed s);
  check_int "peak backlog" 2 (Session.peak_queue s);
  check_int "writes landed" 3 (Store.writes_ok store)

(* --- Throughput runner ----------------------------------------------- *)

let calm_scenario ~horizon = { Chaos.label = "calm"; horizon; plan = Chaos.calm }

let test_throughput_deterministic () =
  let arm = Throughput.htriang_arm ~n:9 in
  let s = calm_scenario ~horizon:60.0 in
  let r1 = Throughput.run_arm ~seed:5 arm s in
  let r2 = Throughput.run_arm ~seed:5 arm s in
  check "pinned seed replays bit-identically" true (r1 = r2);
  check "work was done" true (r1.Throughput.completed > 0);
  check_int "no stale reads" 0 r1.Throughput.stale_reads

let test_throughput_crossover () =
  let s = calm_scenario ~horizon:80.0 in
  let run arm = Throughput.run_arm ~seed:5 ~window:6 arm s in
  let flat = run (Throughput.flat_arm ~n:12) in
  let sharded =
    match Throughput.sharded_arm ~n:12 () with
    | Ok arm -> run arm
    | Error e -> Alcotest.fail e
  in
  check "sharded hierarchical outpaces flat majority at n=12" true
    (sharded.Throughput.ops_per_sec > flat.Throughput.ops_per_sec);
  check_int "sharded stays consistent" 0 sharded.Throughput.stale_reads

let test_open_loop_sheds_under_overload () =
  let s = calm_scenario ~horizon:60.0 in
  let r =
    Throughput.run_arm ~seed:5 ~mode:(Throughput.Open 30.0) ~max_queue:8
      (Throughput.flat_arm ~n:9)
      s
  in
  (* 30 ops/s against a ~4 ops/s flat arm: queues hit the bound and
     overflow is shed rather than growing without limit. *)
  check "bounded queue shed under overload" true (r.Throughput.shed > 0);
  check "queue hit the bound" true (r.Throughput.peak_backlog >= 8);
  check_int "still zero stale reads" 0 r.Throughput.stale_reads

let () =
  Alcotest.run "throughput"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest (equivalence loss_scenario);
          QCheck_alcotest.to_alcotest (equivalence partition_scenario);
        ] );
      ( "batching",
        [
          Alcotest.test_case "torn tail tears whole batches" `Quick
            test_batch_torn_as_unit;
          QCheck_alcotest.to_alcotest batch_atomicity;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "layout" `Quick test_router_layout;
          Alcotest.test_case "disjoint subquorums" `Quick
            test_router_disjoint_quorums;
          Alcotest.test_case "bad cuts rejected" `Quick
            test_router_rejects_bad_cuts;
        ] );
      ( "sessions",
        [ Alcotest.test_case "backlog sheds" `Quick test_backlog_shed ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick
            test_throughput_deterministic;
          Alcotest.test_case "crossover" `Quick test_throughput_crossover;
          Alcotest.test_case "open-loop shed" `Quick
            test_open_loop_sheds_under_overload;
        ] );
    ]
