(* Crash-recovery suite: the durable store's loss model (tail and torn
   writes), the failure injector's recovery-past-horizon guarantee, the
   replicated store's amnesiac re-join protocol, and the chaos recovery
   scenarios (crash-restart, amnesiac minority, amnesiac majority)
   across all four quorum constructions. *)

module Engine = Sim.Engine
module Durable = Sim.Durable
module Injector = Sim.Failure_injector
module Replicated_store = Protocols.Replicated_store
module Chaos = Protocols.Chaos
module Rng = Quorum.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Durable: cells and the crash loss model ------------------------ *)

let test_instant_config_is_free () =
  let dur = Durable.create ~obs:(Obs.create ()) ~nodes:2 Durable.instant in
  check "no fsync latency" true (Durable.fsync_latency dur = 0.0);
  let at = Durable.append dur ~node:0 ~now:3.0 "e" in
  check "append durable immediately" true (at = 3.0);
  Durable.crash dur ~node:0 ~now:3.0;
  check "instant writes survive any crash" true
    (Durable.replay dur ~node:0 ~now:3.0 = [ "e" ])

let test_cell_crash_semantics () =
  let dur =
    Durable.create ~obs:(Obs.create ()) ~nodes:2
      (Durable.config ~fsync_latency:1.0 ())
  in
  let c = Durable.cell dur ~name:"x" in
  let at = Durable.set c ~node:0 ~now:0.0 "a" in
  check "fsync delayed" true (at = 1.0);
  check "memory view sees the pending write" true
    (Durable.get c ~node:0 = Some "a");
  check "not durable before its fsync" true
    (Durable.durable_value c ~node:0 ~now:0.5 = None);
  (* "a" settles at 1.0; "b" is in flight until 3.0 *)
  ignore (Durable.set c ~node:0 ~now:2.0 "b");
  Durable.crash dur ~node:0 ~now:2.5;
  check "durable value survives, in-flight write dies" true
    (Durable.durable_value c ~node:0 ~now:2.5 = Some "a");
  check "memory view agrees after the crash" true
    (Durable.get c ~node:0 = Some "a");
  check "other node untouched" true (Durable.get c ~node:1 = None)

(* qcheck: whatever the fsync latency, entry count and crash time, a
   crash leaves exactly the durable prefix — minus one more record when
   the torn tail bites (only possible when the crash interrupted a
   flush). *)
let torn_tail_replay_is_exact_prefix =
  QCheck.Test.make ~count:300 ~name:"replay = durable prefix under torn tail"
    QCheck.(
      triple (float_range 0.0 2.0) (int_range 0 30) (float_range 0.0 35.0))
    (fun (latency, n_entries, crash_at) ->
      let dur =
        Durable.create ~obs:(Obs.create ()) ~nodes:1
          (Durable.config ~fsync_latency:latency ~torn_tail:true ())
      in
      let appended =
        List.init n_entries (fun i ->
            let at = Durable.append dur ~node:0 ~now:(float_of_int (i + 1)) i in
            (i, at))
      in
      Durable.crash dur ~node:0 ~now:crash_at;
      let survived = List.filter (fun (_, at) -> at <= crash_at) appended in
      let lost = n_entries - List.length survived in
      let expected =
        let s = List.map fst survived in
        if lost > 0 then match List.rev s with [] -> [] | _ :: r -> List.rev r
        else s
      in
      Durable.replay dur ~node:0 ~now:(crash_at +. 100.0) = expected)

(* --- Failure injector: recovery past the horizon --------------------- *)

type quiet = Never [@@warning "-37"]

let quiet_handlers : quiet Engine.handlers =
  {
    on_message = (fun _ ~node:_ ~src:_ Never -> ());
    on_timer = (fun _ ~node:_ ~tag:_ -> ());
    on_crash = (fun _ ~node:_ -> ());
    on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
  }

(* qcheck: every crash the iid process generates gets its matching
   recovery, even when the recovery lands past the horizon — no node is
   ever left permanently dead by an accident of scheduling. *)
let injector_recovers_past_horizon =
  QCheck.Test.make ~count:50 ~name:"iid_faults: every crash is recovered"
    QCheck.(triple (int_range 0 100_000) (float_range 0.05 0.6) bool)
    (fun (seed, p, amnesia) ->
      let engine = Engine.create ~seed ~nodes:7 quiet_handlers in
      Injector.iid_faults ~amnesia engine
        ~rng:(Rng.create (seed + 1))
        ~p ~mean_downtime:5.0 ~horizon:50.0;
      Engine.run engine;
      Quorum.Bitset.cardinal (Engine.live_set engine) = 7)

let test_restarts_validation () =
  let engine = Engine.create ~seed:1 ~nodes:3 quiet_handlers in
  Alcotest.check_raises "negative window start rejected"
    (Invalid_argument "Failure_injector.restarts: window") (fun () ->
      Injector.restarts engine [ (-1.0, 2.0, [ 0 ]) ]);
  Alcotest.check_raises "empty downtime rejected"
    (Invalid_argument "Failure_injector.restarts: window") (fun () ->
      Injector.restarts engine [ (1.0, 0.0, [ 0 ]) ]);
  Injector.restarts ~amnesia:true engine [ (1.0, 2.0, [ 0; 2 ]) ];
  Engine.run engine;
  check "all nodes back up" true (Quorum.Bitset.cardinal (Engine.live_set engine) = 3)

(* --- Replicated store: amnesiac re-join ------------------------------ *)

let test_amnesiac_replica_refuses_until_synced () =
  let system = Core.Registry.build_exn "majority(5)" in
  let store =
    Replicated_store.create ~read_system:system ~write_system:system
      ~timeout:25.0
      ~durability:(Durable.config ~fsync_latency:0.5 ())
      ()
  in
  let engine =
    Engine.create ~seed:101 ~nodes:5 (Replicated_store.handlers store)
  in
  Replicated_store.bind store engine;
  Engine.schedule engine ~time:1.0 (fun () ->
      Replicated_store.write store ~client:0 ~key:1 ~value:42);
  (* Two replicas lose their memory at once, well after the write
     committed. *)
  Engine.crash_at engine ~time:20.0 ~node:3;
  Engine.crash_at engine ~time:20.0 ~node:4;
  Engine.recover_at ~amnesia:true engine ~time:24.0 ~node:3;
  Engine.recover_at ~amnesia:true engine ~time:24.0 ~node:4;
  let was_rejoining = ref false in
  Engine.schedule engine ~time:24.01 (fun () ->
      was_rejoining :=
        Replicated_store.rejoining store ~node:3
        && Replicated_store.rejoining store ~node:4);
  (* Reads fired into the re-join window: any that land on a
     still-rejoining replica must be nacked, never served from the
     wiped table. *)
  List.iter
    (fun dt ->
      Engine.schedule engine ~time:(24.0 +. dt) (fun () ->
          Replicated_store.read store ~client:0 ~key:1))
    [ 0.1; 0.2; 0.3; 0.4 ];
  Engine.run engine;
  check "both replicas refusing right after recovery" true !was_rejoining;
  check "requests were nacked during the window" true
    (Replicated_store.rejoin_refusals store > 0);
  check "both re-join syncs completed" true (Replicated_store.rejoins store >= 2);
  check "no replica left refusing" true
    ((not (Replicated_store.rejoining store ~node:3))
    && not (Replicated_store.rejoining store ~node:4));
  check_int "reads stayed consistent" 0 (Replicated_store.stale_reads store);
  (* The sync quorum intersects the write quorum, so both amnesiacs
     re-learned the committed write even if their own logs missed it. *)
  check "replica 3 restored" true
    (Replicated_store.replica_value store ~node:3 ~key:1 = Some (1, 42));
  check "replica 4 restored" true
    (Replicated_store.replica_value store ~node:4 ~key:1 = Some (1, 42))

let test_plain_restart_needs_no_rejoin () =
  let system = Core.Registry.build_exn "majority(5)" in
  let store =
    Replicated_store.create ~read_system:system ~write_system:system
      ~timeout:25.0 ()
  in
  let engine =
    Engine.create ~seed:103 ~nodes:5 (Replicated_store.handlers store)
  in
  Replicated_store.bind store engine;
  Engine.schedule engine ~time:1.0 (fun () ->
      Replicated_store.write store ~client:0 ~key:1 ~value:7);
  Engine.crash_at engine ~time:20.0 ~node:4;
  Engine.recover_at engine ~time:24.0 ~node:4;
  Engine.schedule engine ~time:24.01 (fun () ->
      check "memory intact, no refusal" false
        (Replicated_store.rejoining store ~node:4));
  Engine.run engine;
  check_int "no rejoin ran" 0 (Replicated_store.rejoins store);
  check_int "consistent" 0 (Replicated_store.stale_reads store)

(* --- Chaos: recovery scenarios across all four systems --------------- *)

let recovery_scenarios = Chaos.recovery ~n:9 ~horizon:120.0

let mutex_systems =
  [ "majority(9)"; "htriang(10)"; "htgrid(3x3)"; "hgrid(3x3)" ]

let test_mutex_safe_under_recovery_scenarios () =
  List.iter
    (fun name ->
      let system = Core.Registry.build_exn name in
      let scenarios =
        Chaos.recovery ~n:system.Quorum.System.n ~horizon:120.0
      in
      List.iter
        (fun scenario ->
          let r = Chaos.run_mutex ~seed:41 ~rate:0.3 ~system scenario in
          check_int
            (name ^ "/" ^ scenario.Chaos.label ^ ": no violations")
            0 r.Chaos.violations;
          check (name ^ "/" ^ scenario.Chaos.label ^ ": made progress") true
            (r.Chaos.entries > 0);
          check (name ^ "/" ^ scenario.Chaos.label ^ ": within budget") false
            r.Chaos.budget_hit)
        scenarios)
    mutex_systems

let store_systems =
  [
    ("majority(9)", "majority(9)", "majority(9)");
    ("htriang(10)", "htriang(10)", "htriang(10)");
    ("htgrid(3x3)", "htgrid(3x3)", "htgrid(3x3)");
    ("hgrid-r/w(3x3)", "hgrid-read(3x3)", "hgrid-write(3x3)");
  ]

let test_store_consistent_under_recovery_scenarios () =
  List.iter
    (fun (name, rs, ws) ->
      let read_system = Core.Registry.build_exn rs in
      let write_system = Core.Registry.build_exn ws in
      let scenarios =
        Chaos.recovery ~n:read_system.Quorum.System.n ~horizon:120.0
      in
      List.iter
        (fun scenario ->
          let r =
            Chaos.run_store ~seed:42 ~rate:1.0 ~read_system ~write_system
              ~name scenario
          in
          check_int
            (name ^ "/" ^ scenario.Chaos.label ^ ": no stale reads")
            0 r.Chaos.stale_reads;
          check (name ^ "/" ^ scenario.Chaos.label ^ ": reads complete") true
            (r.Chaos.reads_ok > 0);
          check (name ^ "/" ^ scenario.Chaos.label ^ ": writes complete") true
            (r.Chaos.writes_ok > 0);
          check (name ^ "/" ^ scenario.Chaos.label ^ ": within budget") false
            r.Chaos.budget_hit;
          if scenario.Chaos.plan.Chaos.amnesia then
            check (name ^ "/" ^ scenario.Chaos.label ^ ": rejoins ran") true
              (r.Chaos.rejoins > 0))
        scenarios)
    store_systems

let test_reconfig_consistent_under_recovery_scenarios () =
  let initial = Core.Registry.build_exn "majority(9)" in
  let next = Core.Registry.build_exn "htriang(10)" in
  List.iter
    (fun scenario ->
      let r =
        Chaos.run_reconfig ~seed:43 ~rate:1.0 ~initial ~next
          ~name:"majority->htriang" scenario
      in
      check_int
        (scenario.Chaos.label ^ ": no stale reads across epochs")
        0 r.Chaos.stale_reads;
      check (scenario.Chaos.label ^ ": ops completed") true
        (r.Chaos.reads_ok > 0 && r.Chaos.writes_ok > 0);
      check (scenario.Chaos.label ^ ": within budget") false r.Chaos.budget_hit)
    recovery_scenarios

let test_recovery_scenarios_pinned_and_reproducible () =
  (* The scenario labels are part of the CLI surface; keep them
     stable.  And a recovery run replays bit-identically from its
     seed (the seed is carried in the report). *)
  check "labels pinned" true
    (List.map (fun (s : Chaos.scenario) -> s.Chaos.label) recovery_scenarios
    = [ "restart"; "amnesia"; "amnesia-maj" ]);
  let system = Core.Registry.build_exn "majority(9)" in
  let scenario = List.nth recovery_scenarios 2 in
  let a = Chaos.run_store ~seed:42 ~read_system:system ~write_system:system ~name:"m" scenario in
  let b = Chaos.run_store ~seed:42 ~read_system:system ~write_system:system ~name:"m" scenario in
  check "same seed, same run" true (a = b);
  check_int "report carries the seed" 42 a.Chaos.seed

let () =
  Alcotest.run "recovery"
    [
      ( "durable",
        [
          Alcotest.test_case "instant config is free" `Quick
            test_instant_config_is_free;
          Alcotest.test_case "cell crash semantics" `Quick
            test_cell_crash_semantics;
          QCheck_alcotest.to_alcotest torn_tail_replay_is_exact_prefix;
        ] );
      ( "injector",
        [
          QCheck_alcotest.to_alcotest injector_recovers_past_horizon;
          Alcotest.test_case "restart windows" `Quick test_restarts_validation;
        ] );
      ( "rejoin",
        [
          Alcotest.test_case "amnesiac replica refuses until synced" `Quick
            test_amnesiac_replica_refuses_until_synced;
          Alcotest.test_case "plain restart keeps serving" `Quick
            test_plain_restart_needs_no_rejoin;
        ] );
      ( "chaos recovery",
        [
          Alcotest.test_case "mutex: all systems safe" `Quick
            test_mutex_safe_under_recovery_scenarios;
          Alcotest.test_case "store: all systems consistent" `Quick
            test_store_consistent_under_recovery_scenarios;
          Alcotest.test_case "reconfig: consistent across restarts" `Quick
            test_reconfig_consistent_under_recovery_scenarios;
          Alcotest.test_case "pinned + reproducible" `Quick
            test_recovery_scenarios_pinned_and_reproducible;
        ] );
    ]
