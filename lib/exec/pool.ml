type batch = {
  run : int -> unit;
  total : int;
  mutable next : int;  (* next chunk index to hand out *)
  mutable completed : int;
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-numbered failing chunk *)
  times : float array;  (* per-chunk wall seconds; disjoint slots *)
}

type t = {
  jobs : int;
  name : string;
  metrics : Obs.Metrics.t option;
  prof : Obs.Prof.t;
  mutex : Mutex.t;
  has_work : Condition.t;  (* workers wait here between batches *)
  progress : Condition.t;  (* the submitter waits here for the join *)
  mutable batch : batch option;
  mutable running : bool;  (* a batch is in flight (nested-submit guard) *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let now () = Unix.gettimeofday ()

(* Run one chunk outside the lock, recording the first (lowest-index)
   exception.  The batch always runs to completion so the join below
   stays a simple counter. *)
let exec_chunk t b idx =
  let t0 = now () in
  (try b.run idx
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.mutex;
     (match b.error with
     | Some (i, _, _) when i < idx -> ()
     | _ -> b.error <- Some (idx, e, bt));
     Mutex.unlock t.mutex);
  b.times.(idx) <- now () -. t0

(* Pull and run chunks until the cursor is exhausted.  Called with the
   lock held; returns with the lock held. *)
let drain t b =
  while b.next < b.total do
    let idx = b.next in
    b.next <- idx + 1;
    Mutex.unlock t.mutex;
    exec_chunk t b idx;
    Mutex.lock t.mutex;
    b.completed <- b.completed + 1;
    if b.completed = b.total then Condition.broadcast t.progress
  done

let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.closed then Mutex.unlock t.mutex
    else begin
      (match t.batch with Some b -> drain t b | None -> ());
      if not t.closed then begin
        (* Either no batch, or its cursor is exhausted: sleep until the
           next batch (or shutdown) is broadcast. *)
        Condition.wait t.has_work t.mutex;
        loop ()
      end
      else Mutex.unlock t.mutex
    end
  in
  loop ()

let create ?(name = "pool") ?metrics ?prof ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      name;
      metrics;
      prof = (match prof with Some p -> p | None -> Obs.Prof.null);
      mutex = Mutex.create ();
      has_work = Condition.create ();
      progress = Condition.create ();
      batch = None;
      running = false;
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  if t.closed then Mutex.unlock t.mutex
  else begin
    t.closed <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?name ?metrics ?prof ?jobs f =
  let t = create ?name ?metrics ?prof ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let record_metrics t b wall =
  match t.metrics with
  | None -> ()
  | Some m ->
      let labels = [ ("pool", t.name) ] in
      let batches = Obs.Metrics.counter m "exec.batches" ~help:"pool batches run" in
      let chunks = Obs.Metrics.counter m "exec.chunks" ~help:"pool chunks run" in
      let batch_ms =
        Obs.Metrics.histogram m "exec.batch_ms" ~help:"batch wall time (ms)"
      in
      let chunk_ms =
        Obs.Metrics.histogram m "exec.chunk_ms" ~help:"per-chunk wall time (ms)"
      in
      Obs.Metrics.incr ~labels batches;
      Obs.Metrics.incr ~labels ~by:b.total chunks;
      Obs.Metrics.observe ~labels batch_ms (wall *. 1000.0);
      Array.iter
        (fun s -> Obs.Metrics.observe ~labels chunk_ms (s *. 1000.0))
        b.times

let iter_chunks t ~chunks f =
  if chunks < 0 then invalid_arg "Pool.iter_chunks: negative chunk count";
  if chunks = 0 then ()
  else begin
    (* Batch-level probe only: the accumulators are not domain-safe, so
       worker domains never touch them — the submitting domain charges
       the whole batch (its own chunk work plus the join wait). *)
    Obs.Prof.enter t.prof Obs.Prof.Exec;
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      Obs.Prof.leave t.prof Obs.Prof.Exec;
      invalid_arg "Pool: submission after shutdown"
    end;
    if t.running then begin
      Mutex.unlock t.mutex;
      Obs.Prof.leave t.prof Obs.Prof.Exec;
      invalid_arg "Pool: nested submission (chunk bodies must not submit)"
    end;
    let b =
      {
        run = f;
        total = chunks;
        next = 0;
        completed = 0;
        error = None;
        times = Array.make chunks 0.0;
      }
    in
    t.running <- true;
    t.batch <- Some b;
    let t0 = now () in
    Condition.broadcast t.has_work;
    (* The submitting domain is a worker too. *)
    drain t b;
    while b.completed < b.total do
      Condition.wait t.progress t.mutex
    done;
    t.batch <- None;
    t.running <- false;
    Mutex.unlock t.mutex;
    record_metrics t b (now () -. t0);
    Obs.Prof.leave t.prof Obs.Prof.Exec;
    match b.error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map_chunks t ~chunks f =
  if chunks < 0 then invalid_arg "Pool.map_chunks: negative chunk count";
  if chunks = 0 then [||]
  else begin
    let out = Array.make chunks None in
    iter_chunks t ~chunks (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array t f a = map_chunks t ~chunks:(Array.length a) (fun i -> f a.(i))

let reduce_tree f a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Pool.reduce_tree: empty array";
  (* Combine adjacent pairs until one value remains: the tree shape
     depends only on [n], so float folds reproduce exactly. *)
  let rec level src len =
    if len = 1 then src.(0)
    else begin
      let half = (len + 1) / 2 in
      let dst =
        Array.init half (fun i ->
            if (2 * i) + 1 < len then f src.(2 * i) src.((2 * i) + 1)
            else src.(2 * i))
      in
      level dst half
    end
  in
  level a n

let map_reduce_chunks t ~chunks ~map ~reduce =
  if chunks < 1 then invalid_arg "Pool.map_reduce_chunks: chunks must be >= 1";
  reduce_tree reduce (map_chunks t ~chunks map)
