(** A small reusable domain pool with chunked parallel-for and
    deterministic reduction.

    The pool owns [jobs - 1] worker domains (the submitting domain is
    the remaining worker, so a [jobs = 1] pool runs everything inline
    with zero domains spawned).  Work is submitted as a {e batch} of
    numbered chunks; idle workers pull chunk indices from a shared
    cursor, so uneven chunks balance automatically.

    {b Determinism.}  Results must never depend on how many domains
    execute a batch.  The contract that guarantees this: the chunking
    of a problem is chosen by the {e caller} from the problem alone
    (never from [jobs]), every chunk writes only its own slot, and
    reductions combine the chunk results in a fixed order
    ({!reduce_tree} is a balanced binary tree over the chunk indices).
    All the analysis drivers in [lib/analysis] and [lib/quorum] follow
    this contract, which is what makes their output bit-identical for
    [jobs] of 1, 2 and 4.

    {b Exceptions.}  If chunks raise, the batch still runs to
    completion and the exception of the {e lowest-numbered} failing
    chunk is re-raised in the submitter (with its backtrace) — again
    independent of domain count.

    {b Nesting.}  Chunk bodies must not submit to the pool they run on
    (there is one shared cursor, so nested batches would deadlock);
    such submissions are rejected with [Invalid_argument].  A pool is
    meant to be driven by one client domain at a time.

    {b Thread safety of chunk bodies.}  The pool runs chunk bodies
    concurrently; they must not share mutable state (per-chunk RNG
    streams, per-chunk scratch).  Beware hidden sharing through [lazy]
    values: force them before submitting (see
    [Quorum.System.prepare]). *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the number of domains worth
    spawning on this machine. *)

val create :
  ?name:string ->
  ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Prof.t ->
  ?jobs:int ->
  unit ->
  t
(** [create ()] builds a pool with {!default_jobs} workers; [~jobs]
    overrides (must be >= 1).  When [~metrics] is given, every batch
    records into it: counters [exec.batches] and [exec.chunks], and
    histograms [exec.batch_ms] / [exec.chunk_ms] (wall-clock), all
    labelled with [pool=][name] (default ["pool"]).  Metrics are
    written by the submitting domain after the batch joins, so any
    [Obs.Metrics.t] is safe to pass.  When [~prof] is given, each
    batch is charged to the [exec.pool] category — batch-level and
    from the submitting domain only ({!Obs.Prof} accumulators are not
    domain-safe), so it covers the submitter's chunk work plus the
    join wait. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join and release the worker domains.  Idempotent; any later
    submission raises [Invalid_argument]. *)

val with_pool :
  ?name:string ->
  ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Prof.t ->
  ?jobs:int ->
  (t -> 'a) ->
  'a
(** [create], run, [shutdown] (also on exception). *)

(** {2 Batch operations}

    All of them raise [Invalid_argument] on a negative chunk count, on
    a shut-down pool, and on nested submission. *)

val iter_chunks : t -> chunks:int -> (int -> unit) -> unit
(** Run chunk bodies [f 0 .. f (chunks - 1)], distributed over the
    pool; returns when all have finished. *)

val map_chunks : t -> chunks:int -> (int -> 'a) -> 'a array
(** Like {!iter_chunks}, collecting results indexed by chunk. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** One chunk per element. *)

val reduce_tree : ('a -> 'a -> 'a) -> 'a array -> 'a
(** Deterministic balanced-tree fold (adjacent pairs, repeatedly):
    [reduce_tree f [|a; b; c; d; e|]] is
    [f (f (f a b) (f c d)) e].  The shape depends only on the array
    length, so float reductions are reproducible across domain counts.
    Raises [Invalid_argument] on an empty array. *)

val map_reduce_chunks :
  t -> chunks:int -> map:(int -> 'a) -> reduce:('a -> 'a -> 'a) -> 'a
(** [reduce_tree reduce (map_chunks t ~chunks map)]; [chunks] must be
    >= 1. *)
