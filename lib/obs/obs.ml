module Metrics = Metrics
module Trace = Trace
module Sink = Sink

type t = { metrics : Metrics.t; trace : Trace.t }

let create ?(trace_capacity = 8192) () =
  { metrics = Metrics.create (); trace = Trace.create ~capacity:trace_capacity () }

let metrics t = t.metrics
let trace t = t.trace
