module Metrics = Metrics
module Trace = Trace
module Span = Span
module Trace_analysis = Trace_analysis
module Sink = Sink

type t = { metrics : Metrics.t; trace : Trace.t; spans : Span.t }

let create ?(trace_capacity = 8192) () =
  let metrics = Metrics.create () in
  let dropped =
    Metrics.counter metrics
      ~help:"trace events lost to ring-buffer overwrite"
      "obs.trace.dropped"
  in
  let trace =
    Trace.create ~capacity:trace_capacity
      ~on_drop:(fun () -> Metrics.incr dropped)
      ()
  in
  { metrics; trace; spans = Span.create () }

let metrics t = t.metrics
let trace t = t.trace
let spans t = t.spans
