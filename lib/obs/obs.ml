module Metrics = Metrics
module Trace = Trace
module Span = Span
module Prof = Prof
module Trace_analysis = Trace_analysis
module Sink = Sink

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  spans : Span.t;
  prof : Prof.t;
}

let create ?(trace_capacity = 8192) ?(profile = false) ?span_keep_1_in
    ?(span_sample_seed = 0) () =
  let prof = Prof.create ~enabled:profile () in
  let metrics = Metrics.create ~prof () in
  let dropped =
    Metrics.counter metrics
      ~help:"trace events lost to ring-buffer overwrite"
      "obs.trace.dropped"
  in
  let trace =
    Trace.create ~capacity:trace_capacity
      ~on_drop:(fun () -> Metrics.incr dropped)
      ~prof ()
  in
  let spans = Span.create ~prof () in
  (match span_keep_1_in with
  | None -> ()
  | Some k -> Span.set_sampler spans ~seed:span_sample_seed ~keep_1_in:k);
  { metrics; trace; spans; prof }

let metrics t = t.metrics
let trace t = t.trace
let spans t = t.spans
let prof t = t.prof
