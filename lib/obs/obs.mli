(** Observability: typed metrics, causal event tracing, spans and a
    simulator self-profiler.

    An {!t} bundles one {!Metrics} registry, one {!Trace} ring, one
    {!Span} collector and one {!Prof} profiler.  Pass a single [Obs.t]
    to everything that participates in a run — the simulation engine,
    the rpc layer, the failure detector, the protocol — and every
    subsystem registers its instruments in the same registry, appends
    to the same trace and opens spans in the same collector, giving one
    unified, dumpable view of the run (see {!Sink}) that
    {!Trace_analysis} can later rebuild into per-operation causal
    trees.

    The first three layers measure the {e simulated} system; {!Prof}
    measures the {e simulator}: real wall time and allocation per
    subsystem, so perf work on the engine has ground truth.  All four
    are behaviorally inert — none touches a simulation RNG stream, so
    pinned-seed runs are bit-identical whatever is enabled.

    Trace-ring overwrites are metered automatically: every event lost
    to the ring bumps the ["obs.trace.dropped"] counter, so a metrics
    dump reveals a truncated trace even after the ring itself is gone. *)

module Metrics = Metrics
module Trace = Trace
module Span = Span
module Prof = Prof
module Trace_analysis = Trace_analysis
module Sink = Sink

type t

val create :
  ?trace_capacity:int ->
  ?profile:bool ->
  ?span_keep_1_in:int ->
  ?span_sample_seed:int ->
  unit ->
  t
(** [trace_capacity] (default 8192) sizes the trace ring; [0] disables
    tracing (metrics only).  [profile] (default false) enables the
    {!Prof} probes wired through the engine, rpc, durable and obs
    layers.  [span_keep_1_in] installs a deterministic root-span
    sampler (see {!Span.set_sampler}; default: keep everything) keyed
    by [span_sample_seed] (default 0) — a seed private to the sampler,
    not the simulation's. *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val spans : t -> Span.t
val prof : t -> Prof.t
