(** Observability: typed metrics, causal event tracing and spans.

    An {!t} bundles one {!Metrics} registry, one {!Trace} ring and one
    {!Span} collector.  Pass a single [Obs.t] to everything that
    participates in a run — the simulation engine, the rpc layer, the
    failure detector, the protocol — and every subsystem registers its
    instruments in the same registry, appends to the same trace and
    opens spans in the same collector, giving one unified, dumpable
    view of the run (see {!Sink}) that {!Trace_analysis} can later
    rebuild into per-operation causal trees.

    Trace-ring overwrites are metered automatically: every event lost
    to the ring bumps the ["obs.trace.dropped"] counter, so a metrics
    dump reveals a truncated trace even after the ring itself is gone. *)

module Metrics = Metrics
module Trace = Trace
module Span = Span
module Trace_analysis = Trace_analysis
module Sink = Sink

type t

val create : ?trace_capacity:int -> unit -> t
(** [trace_capacity] (default 8192) sizes the trace ring; [0] disables
    tracing (metrics only). *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val spans : t -> Span.t
