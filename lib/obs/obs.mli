(** Observability: typed metrics plus causal event tracing.

    An {!t} bundles one {!Metrics} registry and one {!Trace} ring.
    Pass a single [Obs.t] to everything that participates in a run —
    the simulation engine, the rpc layer, the failure detector, the
    protocol — and every subsystem registers its instruments in the
    same registry and appends to the same trace, giving one unified,
    dumpable view of the run (see {!Sink}). *)

module Metrics = Metrics
module Trace = Trace
module Sink = Sink

type t

val create : ?trace_capacity:int -> unit -> t
(** [trace_capacity] (default 8192) sizes the trace ring; [0] disables
    tracing (metrics only). *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t
