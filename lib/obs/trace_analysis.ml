(* Offline analysis over a recorded (trace, spans) pair: causal-tree
   reconstruction, critical-path latency breakdowns, and a consistency
   auditor over recorded operation histories. *)

type breakdown = {
  network : float;
  fsync : float;
  queueing : float;
  retransmit : float;
}

let zero_breakdown =
  { network = 0.0; fsync = 0.0; queueing = 0.0; retransmit = 0.0 }

let breakdown_total b = b.network +. b.fsync +. b.queueing +. b.retransmit

let breakdown_add a b =
  {
    network = a.network +. b.network;
    fsync = a.fsync +. b.fsync;
    queueing = a.queueing +. b.queueing;
    retransmit = a.retransmit +. b.retransmit;
  }

type op_profile = {
  root : Span.span;
  events : Trace.event list;
  latency : float;
  breakdown : breakdown;
  complete : bool;
}

let default_is_fsync name =
  (* Matches "fsync" anywhere in the span name ("fsync", "store.fsync"). *)
  let n = String.length name and m = 5 in
  let rec at i =
    i + m <= n && (String.sub name i m = "fsync" || at (i + 1))
  in
  at 0

let root_of spans id =
  match Span.get spans id with Some s -> Some s.Span.root | None -> None

(* root id -> op events, chronological (trace iteration order). *)
let bucket_events ~trace ~spans =
  let tbl = Hashtbl.create 64 in
  Trace.iter trace (fun (e : Trace.event) ->
      if e.span >= 0 then
        match root_of spans e.span with
        | Some r ->
            let prev =
              match Hashtbl.find_opt tbl r with Some l -> l | None -> []
            in
            Hashtbl.replace tbl r (e :: prev)
        | None -> ());
  let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter (fun r l -> Hashtbl.add out r (List.rev l)) tbl;
  out

(* Merge possibly-overlapping (start, end) intervals. *)
let merge_intervals ivs =
  let sorted = List.sort compare ivs in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> (
        match acc with
        | (ps, pe) :: tl when s <= pe -> go ((ps, max pe e) :: tl) rest
        | _ -> go ((s, e) :: acc) rest)
  in
  go [] sorted

let overlap_sum ivs a b =
  List.fold_left
    (fun acc (s, e) ->
      let lo = max a s and hi = min b e in
      if hi > lo then acc +. (hi -. lo) else acc)
    0.0 ivs

(* Critical-path walk for one finished root span.

   Walking backward from the operation's end: the last message
   delivered on the current node explains how control got there; the
   send-to-deliver interval of that message is a network edge, and the
   deliver-to-now gap is local time on the node.  Local gaps are split
   into fsync (overlap with the op's fsync spans on that node),
   retransmit (a "rpc.retransmit" note fired in the gap — the node was
   waiting out a retransmission timer) and queueing (everything else).
   Every interval of [start, end] lands in exactly one component, so
   the components sum to the end-to-end latency by construction. *)
let profile_root ~fsync_by_node (root : Span.span) events =
  let start = root.Span.start_time and stop = root.Span.end_time in
  let ev = Array.of_list events in
  let n = Array.length ev in
  let sends = Hashtbl.create 32 in
  Array.iteri
    (fun i (e : Trace.event) ->
      if e.kind = Trace.Send && e.msg_id >= 0 then
        if not (Hashtbl.mem sends e.msg_id) then Hashtbl.add sends e.msg_id i)
    ev;
  let retrans =
    Array.to_list ev
    |> List.filter_map (fun (e : Trace.event) ->
           if e.kind = Trace.Note && e.label = "rpc.retransmit" then
             Some (e.node, e.time)
           else None)
  in
  let fsync_ivs node =
    match Hashtbl.find_opt fsync_by_node node with
    | Some ivs -> ivs
    | None -> []
  in
  let acc = ref zero_breakdown in
  let complete = ref true in
  let classify_local node a b =
    let a = max a start and b = min b stop in
    if b > a then begin
      let f = overlap_sum (fsync_ivs node) a b in
      let rest = max 0.0 (b -. a -. f) in
      let waited_retrans =
        List.exists (fun (n', t) -> n' = node && t >= a && t <= b) retrans
      in
      acc :=
        {
          !acc with
          fsync = !acc.fsync +. f;
          queueing = (!acc.queueing +. if waited_retrans then 0.0 else rest);
          retransmit =
            (!acc.retransmit +. if waited_retrans then rest else 0.0);
        }
    end
  in
  (* Latest Deliver on [node] strictly before record index [idx] and not
     after [t_cur].  Record order is time order, so index bounds double
     as time bounds for same-time events. *)
  let rec find_deliver node idx t_cur =
    if idx <= 0 then None
    else
      let e = ev.(idx - 1) in
      if e.kind = Trace.Deliver && e.node = node && e.time <= t_cur then
        Some (idx - 1)
      else find_deliver node (idx - 1) t_cur
  in
  let rec walk node idx t_cur =
    if t_cur > start then
      match find_deliver node idx t_cur with
      | None ->
          (* No earlier message reached this node inside the op: the
             rest is local work since the op started. *)
          classify_local node start t_cur
      | Some di -> (
          let d = ev.(di) in
          classify_local node d.time t_cur;
          match Hashtbl.find_opt sends d.msg_id with
          | Some si when si < di ->
              let s = ev.(si) in
              let a = max s.time start in
              if d.time > a then
                acc := { !acc with network = !acc.network +. (d.time -. a) };
              walk s.node si s.time
          | _ ->
              (* The matching send fell off the trace ring: we cannot
                 follow the chain further.  Attribute the unexplained
                 remainder to queueing and say so. *)
              complete := false;
              let a = start and b = max start d.time in
              if b > a then
                acc := { !acc with queueing = !acc.queueing +. (b -. a) })
  in
  walk root.Span.node n stop;
  {
    root;
    events = Array.to_list ev;
    latency = stop -. start;
    breakdown = !acc;
    complete = !complete;
  }

let profile_ops ?(is_fsync = default_is_fsync) ~trace ~spans () =
  let buckets = bucket_events ~trace ~spans in
  (* Per root: fsync intervals grouped by node, merged. *)
  let fsync_raw = Hashtbl.create 32 in
  Span.iter spans (fun (s : Span.span) ->
      if (not (Span.is_open s)) && is_fsync s.name then begin
        let prev =
          match Hashtbl.find_opt fsync_raw s.root with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace fsync_raw s.root
          ((s.node, s.start_time, s.end_time) :: prev)
      end);
  Span.roots spans
  |> List.filter (fun (r : Span.span) -> not (Span.is_open r))
  |> List.map (fun (r : Span.span) ->
         let events =
           match Hashtbl.find_opt buckets r.id with Some l -> l | None -> []
         in
         let fsync_by_node = Hashtbl.create 8 in
         (match Hashtbl.find_opt fsync_raw r.id with
         | None -> ()
         | Some l ->
             List.iter
               (fun (node, s, e) ->
                 let prev =
                   match Hashtbl.find_opt fsync_by_node node with
                   | Some l -> l
                   | None -> []
                 in
                 Hashtbl.replace fsync_by_node node ((s, e) :: prev))
               l;
             Hashtbl.iter
               (fun node ivs ->
                 Hashtbl.replace fsync_by_node node (merge_intervals ivs))
               (Hashtbl.copy fsync_by_node));
         profile_root ~fsync_by_node r events)

let events_of_op ~trace ~spans root =
  let buckets = bucket_events ~trace ~spans in
  match Hashtbl.find_opt buckets root with Some l -> l | None -> []

(* Nearest-rank percentile over a float list (matches Metrics). *)
let percentile xs q =
  if q < 0.0 || q > 1.0 then invalid_arg "Trace_analysis.percentile: q";
  match xs with
  | [] -> None
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank =
        min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))
      in
      Some a.(rank)

type aggregate = {
  count : int;
  complete : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_v : float;
  total : breakdown;  (** summed across ops *)
}

let aggregate profiles =
  let lats = List.map (fun p -> p.latency) profiles in
  let count = List.length profiles in
  let pct q = match percentile lats q with Some v -> v | None -> 0.0 in
  {
    count;
    complete =
      List.length (List.filter (fun (p : op_profile) -> p.complete) profiles);
    mean =
      (if count = 0 then 0.0
       else List.fold_left ( +. ) 0.0 lats /. float_of_int count);
    p50 = pct 0.5;
    p90 = pct 0.9;
    p99 = pct 0.99;
    max_v = List.fold_left max 0.0 lats;
    total =
      List.fold_left
        (fun acc p -> breakdown_add acc p.breakdown)
        zero_breakdown profiles;
  }

let by_name profiles =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun p ->
      let name = p.root.Span.name in
      match Hashtbl.find_opt tbl name with
      | Some l -> Hashtbl.replace tbl name (p :: l)
      | None ->
          order := name :: !order;
          Hashtbl.add tbl name [ p ])
    profiles;
  List.rev_map
    (fun name -> (name, List.rev (Hashtbl.find tbl name)))
    !order

(* ------------------------------------------------------------------ *)
(* Span windows (e.g. reconfiguration downtime) *)

let span_windows ~spans ~name =
  let ivs = ref [] in
  Span.iter spans (fun (s : Span.span) ->
      if s.Span.name = name && not (Span.is_open s) then
        ivs := (s.Span.start_time, s.Span.end_time) :: !ivs);
  merge_intervals !ivs

let span_window_total ~spans ~name =
  List.fold_left
    (fun acc (s, e) -> acc +. (e -. s))
    0.0
    (span_windows ~spans ~name)

(* ------------------------------------------------------------------ *)
(* History auditor *)

type hop = {
  client : int;
  key : int;
  is_write : bool;
  version : int;
  started : float;
  finished : float;
  span : int;
}

type violation = {
  check : string;
  detail : string;
  offending : hop;
  expected : hop option;
  witness : Trace.event list;
}

type audit = { reads : int; writes : int; violations : violation list }

let passed a = a.violations = []

let verdict a =
  if passed a then "pass"
  else Printf.sprintf "FAIL (%d violations)" (List.length a.violations)

let witness_events ?trace ?spans hops =
  match (trace, spans) with
  | Some trace, Some spans ->
      let roots = Hashtbl.create 4 in
      List.iter
        (fun h ->
          if h.span >= 0 then
            match root_of spans h.span with
            | Some r -> Hashtbl.replace roots r ()
            | None -> ())
        hops;
      if Hashtbl.length roots = 0 then []
      else
        let acc = ref [] in
        Trace.iter trace (fun (e : Trace.event) ->
            if e.span >= 0 then
              match root_of spans e.span with
              | Some r when Hashtbl.mem roots r -> acc := e :: !acc
              | _ -> ());
        List.rev !acc
  | _ -> []

let audit_history ?trace ?spans hops =
  let hops = List.sort (fun a b -> compare a.started b.started) hops in
  let reads = List.filter (fun h -> not h.is_write) hops in
  let writes = List.filter (fun h -> h.is_write) hops in
  let violations = ref [] in
  let add check detail offending expected =
    violations :=
      {
        check;
        detail;
        offending;
        expected;
        witness =
          witness_events ?trace ?spans
            (offending :: Option.to_list expected);
      }
      :: !violations
  in
  (* Latest write on [key] that durably finished before [t] — any read
     starting after that point must observe at least its version. *)
  let last_write_before ?client key t =
    List.fold_left
      (fun best w ->
        if
          w.key = key && w.finished < t
          && (match client with None -> true | Some c -> w.client = c)
        then
          match best with
          | Some b when b.version >= w.version -> best
          | _ -> Some w
        else best)
      None writes
  in
  List.iter
    (fun r ->
      (match last_write_before r.key r.started with
      | Some w when r.version < w.version ->
          add "stale-read"
            (Printf.sprintf
               "read of key %d by client %d returned version %d, but \
                version %d committed at t=%g, before the read started at \
                t=%g"
               r.key r.client r.version w.version w.finished r.started)
            r (Some w)
      | _ -> ());
      match last_write_before ~client:r.client r.key r.started with
      | Some w when r.version < w.version ->
          add "read-your-writes"
            (Printf.sprintf
               "client %d read version %d of key %d after its own write \
                of version %d finished at t=%g"
               r.client r.version r.key w.version w.finished)
            r (Some w)
      | _ -> ())
    reads;
  (* Monotonic reads: per (client, key), a read must not observe an
     older version than any same-client read that finished before it
     started.  Overlapping reads are unordered and never flagged. *)
  List.iter
    (fun r ->
      let prior =
        List.fold_left
          (fun best r' ->
            if
              r'.client = r.client && r'.key = r.key
              && r'.finished < r.started
            then
              match best with
              | Some b when b.version >= r'.version -> best
              | _ -> Some r'
            else best)
          None reads
      in
      match prior with
      | Some p when r.version < p.version ->
          add "monotonic-reads"
            (Printf.sprintf
               "client %d observed version %d of key %d at t=%g after \
                observing version %d at t=%g"
               r.client r.version r.key r.started p.version p.finished)
            r (Some p)
      | _ -> ())
    reads;
  {
    reads = List.length reads;
    writes = List.length writes;
    violations = List.rev !violations;
  }
