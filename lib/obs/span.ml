type status = Open | Ok | Error of string

let status_name = function
  | Open -> "open"
  | Ok -> "ok"
  | Error "" -> "error"
  | Error reason -> "error:" ^ reason

type span = {
  id : int;
  parent : int;
  root : int;
  node : int;
  name : string;
  start_time : float;
  mutable end_time : float;
  mutable status : status;
}

let dummy =
  { id = -1; parent = -1; root = -1; node = -1; name = "";
    start_time = 0.0; end_time = nan; status = Open }

type t = {
  mutable data : span array;
  mutable len : int;
  prof : Prof.t;
  (* Root sampling: keep 1 in [keep_1_in] root spans (1 = all, 0 = none);
     descendants of a dropped root get the [sampled_out] sentinel id, so
     a tree is kept or dropped whole. *)
  mutable keep_1_in : int;
  mutable sample_seed : int;
  mutable roots_seen : int;
  mutable roots_kept : int;
}

let sampled_out = -2

let create ?(prof = Prof.null) () =
  { data = [||]; len = 0; prof; keep_1_in = 1; sample_seed = 0;
    roots_seen = 0; roots_kept = 0 }

let count t = t.len
let get t id = if id >= 0 && id < t.len then Some t.data.(id) else None

let get_exn t id =
  match get t id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Span.get_exn: unknown span %d" id)

let set_sampler t ~seed ~keep_1_in =
  if keep_1_in < 0 then invalid_arg "Span.set_sampler: keep_1_in < 0";
  t.sample_seed <- seed;
  t.keep_1_in <- keep_1_in

let sampler_keep_1_in t = t.keep_1_in
let roots_seen t = t.roots_seen
let roots_kept t = t.roots_kept

(* splitmix64 finalizer, the same mixer {!Metrics} reservoirs use: the
   keep/drop decision is a pure function of (seed, root ordinal), fully
   independent of the simulation's RNG streams and of wall clock. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let keep_root t =
  match t.keep_1_in with
  | 1 -> true
  | 0 -> false
  | k ->
      let h =
        mix64
          (Int64.add
             (Int64.mul (Int64.of_int t.roots_seen) 0x9E3779B97F4A7C15L)
             (Int64.of_int t.sample_seed))
      in
      Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int k))
      = 0

let start t ~time ~node ?(parent = -1) name =
  if parent <= sampled_out then sampled_out
  else begin
    Prof.enter t.prof Prof.Span;
    let id =
      let sampled_root =
        parent < 0
        && begin
             t.roots_seen <- t.roots_seen + 1;
             not (keep_root t)
           end
      in
      if sampled_root then sampled_out
      else begin
        let root =
          if parent < 0 then begin
            t.roots_kept <- t.roots_kept + 1;
            t.len
          end
          else
            match get t parent with
            | Some p -> p.root
            | None -> invalid_arg "Span.start: unknown parent"
        in
        let s =
          { id = t.len; parent; root; node; name; start_time = time;
            end_time = nan; status = Open }
        in
        if t.len = Array.length t.data then begin
          let grown = Array.make (max 16 (2 * t.len)) dummy in
          Array.blit t.data 0 grown 0 t.len;
          t.data <- grown
        end;
        t.data.(t.len) <- s;
        t.len <- t.len + 1;
        s.id
      end
    in
    Prof.leave t.prof Prof.Span;
    id
  end

let is_open s = s.status = Open
let duration s = if is_open s then nan else s.end_time -. s.start_time

let finish t ~time ?(status = Ok) id =
  if status = Open then invalid_arg "Span.finish: status Open";
  if id <= sampled_out then ()  (* whole tree was sampled out *)
  else begin
    Prof.enter t.prof Prof.Span;
    let s = get_exn t id in
    (* First close wins: a watchdog and a late reply may both try to end
       the same span, and the earlier verdict is the operation's truth. *)
    if is_open s then begin
      if time < s.start_time then invalid_arg "Span.finish: time before start";
      s.end_time <- time;
      s.status <- status
    end;
    Prof.leave t.prof Prof.Span
  end

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun s -> acc := s :: !acc);
  List.rev !acc

let roots t =
  let acc = ref [] in
  iter t (fun s -> if s.parent < 0 then acc := s :: !acc);
  List.rev !acc

let children t id =
  let acc = ref [] in
  iter t (fun s -> if s.parent = id then acc := s :: !acc);
  List.rev !acc

let open_count t =
  let n = ref 0 in
  iter t (fun s -> if is_open s then incr n);
  !n

let clear t =
  t.len <- 0;
  t.roots_seen <- 0;
  t.roots_kept <- 0

let validate t =
  let faults = ref [] in
  let fault fmt = Printf.ksprintf (fun m -> faults := m :: !faults) fmt in
  iter t (fun s ->
      if s.parent >= 0 then begin
        match get t s.parent with
        | None -> fault "span %d: parent %d does not exist" s.id s.parent
        | Some p ->
            if p.id >= s.id then
              fault "span %d: parent %d not started before child" s.id p.id;
            if s.root <> p.root then
              fault "span %d: root %d disagrees with parent's root %d" s.id
                s.root p.root;
            if s.start_time < p.start_time then
              fault "span %d: starts %g before parent %d at %g" s.id
                s.start_time p.id p.start_time
      end
      else if s.root <> s.id then
        fault "span %d: root span with root field %d" s.id s.root;
      if (not (is_open s)) && s.end_time < s.start_time then
        fault "span %d: ends %g before it starts %g" s.id s.end_time
          s.start_time);
  List.rev !faults
