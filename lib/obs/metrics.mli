(** Typed metrics registry: counters, gauges and histograms, each
    optionally split by labels.

    A {e family} is registered once under a dotted name
    (e.g. ["rpc.retransmits"]) and returns a typed handle; updates may
    carry labels (e.g. [[("node", "3")]]) and land in a per-label-value
    {e cell} of the family, so ["rpc.retransmits{node=3}"] and
    ["rpc.retransmits{node=5}"] accumulate independently.  Label lists
    are canonicalized by key, so label order never matters.

    Registration is idempotent: registering the same name twice returns
    the same family (so subsystems can register independently), but
    re-registering a name as a different metric kind raises
    [Invalid_argument] — the type of a metric is part of its contract.

    Reads are non-allocating on the registry: asking for a cell that
    was never written returns the zero value (0, 0.0, empty histogram)
    without creating it.

    Histograms keep exact samples, so {!percentile} is nearest-rank on
    the true sample set, not a bucket approximation.  All histogram
    accessors are empty-safe: {!mean} and {!sum} return [0.0] on an
    empty cell, {!percentile} returns [None], {!summary} renders
    ["n=0"] — nothing raises on "no data yet". *)

type t
(** A registry: a mutable collection of metric families. *)

type labels = (string * string) list
(** Label key/value pairs; order is irrelevant. *)

type counter
type gauge
type histogram

val create : ?prof:Prof.t -> unit -> t
(** [prof] (default {!Prof.null}) receives an [obs.metrics] probe around
    every update, so a profiled run can price its own metrics
    overhead. *)

val set_enabled : t -> bool -> unit
(** Registry-wide update switch.  When off, {!incr}/{!set}/{!set_max}/
    {!observe} return without touching (or creating) any cell —
    the zero-overhead "no sink" mode for hot benchmark runs.
    Registration and reads are unaffected.  Default: enabled. *)

val is_enabled : t -> bool

(** {2 Registration} *)

val counter : t -> ?help:string -> string -> counter
(** Register (or look up) a monotone integer counter family. *)

val gauge : t -> ?help:string -> string -> gauge
(** Register (or look up) a last-value-wins float gauge family. *)

val histogram : t -> ?help:string -> ?max_samples:int -> string -> histogram
(** Register (or look up) an exact-sample histogram family.

    [max_samples] (default 0 = unbounded) caps per-cell memory with a
    reservoir sample (Algorithm R): {!count}, {!sum}, {!mean}, min and
    max stay exact regardless, and {!percentile} is exact until a cell
    has seen more than [max_samples] observations, an unbiased
    fixed-size sample after that.  The reservoir's random stream is
    seeded from the cell identity, so results are reproducible and the
    global [Random] state of a seeded simulation is never touched.
    Cells created before a re-registration supplied [max_samples] keep
    their original cap. *)

(** {2 Updates} *)

val incr : ?labels:labels -> ?by:int -> counter -> unit
(** Bump a counter cell by [by] (default 1; must be >= 0). *)

val set : ?labels:labels -> gauge -> float -> unit

val set_max : ?labels:labels -> gauge -> float -> unit
(** Monotone set: keep the larger of the current and given values —
    high-water marks (peak queue depth, deepest backlog).  A fresh
    cell starts at 0, so negative values never register. *)

val observe : ?labels:labels -> histogram -> float -> unit
(** Record one sample (e.g. a latency). *)

(** {2 Reads} *)

val counter_value : ?labels:labels -> counter -> int
val gauge_value : ?labels:labels -> gauge -> float

val count : ?labels:labels -> histogram -> int
(** Observations ever recorded (exact even with [max_samples]). *)

val sample_count : ?labels:labels -> histogram -> int
(** Samples currently held; [< count] once a reservoir cap kicked in. *)

val sum : ?labels:labels -> histogram -> float

val mean : ?labels:labels -> histogram -> float
(** [0.0] when the cell is empty. *)

val percentile : ?labels:labels -> histogram -> float -> float option
(** [percentile h 0.99] — nearest-rank on the recorded samples; [None]
    when the cell is empty.  Raises [Invalid_argument] when the
    quantile is outside [0, 1]. *)

val percentile_or :
  ?labels:labels -> default:float -> histogram -> float -> float
(** {!percentile} with an explicit value for the empty case. *)

val summary : ?labels:labels -> histogram -> string
(** One-line ["n=.. mean=.. p50=.. p99=.. max=.."] rendering;
    ["n=0"] when empty. *)

(** {2 Snapshots} *)

type hist_stats = {
  n : int;
  total : float;
  avg : float;  (** 0.0 when empty *)
  min_v : float;  (** 0.0 when empty *)
  max_v : float;  (** 0.0 when empty *)
  p50 : float;
  p90 : float;
  p99 : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_stats

type sample = {
  name : string;
  labels : labels;  (** canonicalized (sorted by key) *)
  help : string;
  value : value;
}

val snapshot : t -> sample list
(** Every cell of every family, sorted by [(name, labels)] — the order
    is deterministic, so snapshot dumps diff cleanly across runs. *)

val render : t -> string
(** Aligned human-readable table of the whole registry, one line per
    cell.  Families registered but never written still get a line
    (["(no data)"]), so a dump shows which instruments exist. *)

(** {2 Snapshot diffing} *)

val diff : before:sample list -> after:sample list -> sample list
(** What changed between two snapshots of the {e same} registry, cell
    by cell: counters and gauges report [after - before], histograms
    report the delta [n]/[total]/[avg] with the distribution shape
    (min/max/percentiles) taken from [after] — shapes are not
    decomposable.  Unchanged cells are omitted; cells new in [after]
    appear as-is (zero-valued new cells are still omitted). *)

val render_diff : before:sample list -> after:sample list -> string
(** {!diff} rendered like {!render}; ["(no change)"] when empty. *)
