let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> json_string k ^ ":" ^ json_string v)
         labels)
  ^ "}"

(* %.17g round-trips any float; %g keeps dumps readable.  Simulated
   times and latencies do not need the full 17 digits. *)
let fl x = Printf.sprintf "%g" x

let metrics_jsonl oc m =
  List.iter
    (fun (s : Metrics.sample) ->
      let base =
        Printf.sprintf "{\"metric\":%s,\"labels\":%s" (json_string s.name)
          (json_labels s.labels)
      in
      (match s.value with
      | Metrics.Counter v ->
          Printf.fprintf oc "%s,\"type\":\"counter\",\"value\":%d}\n" base v
      | Metrics.Gauge v ->
          Printf.fprintf oc "%s,\"type\":\"gauge\",\"value\":%s}\n" base
            (fl v)
      | Metrics.Histogram h ->
          Printf.fprintf oc
            "%s,\"type\":\"histogram\",\"n\":%d,\"sum\":%s,\"mean\":%s,\
             \"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}\n"
            base h.n (fl h.total) (fl h.avg) (fl h.min_v) (fl h.max_v)
            (fl h.p50) (fl h.p90) (fl h.p99)))
    (Metrics.snapshot m)

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' s)
    ^ "\""
  else s

let csv_labels labels =
  csv_field
    (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let metrics_csv oc m =
  output_string oc "metric,labels,type,count,value,sum,min,max,p50,p90,p99\n";
  List.iter
    (fun (s : Metrics.sample) ->
      let name = csv_field s.name and labels = csv_labels s.labels in
      match s.value with
      | Metrics.Counter v ->
          Printf.fprintf oc "%s,%s,counter,%d,%d,,,,,,\n" name labels v v
      | Metrics.Gauge v ->
          Printf.fprintf oc "%s,%s,gauge,,%s,,,,,,\n" name labels (fl v)
      | Metrics.Histogram h ->
          Printf.fprintf oc "%s,%s,histogram,%d,%s,%s,%s,%s,%s,%s,%s\n" name
            labels h.n (fl h.avg) (fl h.total) (fl h.min_v) (fl h.max_v)
            (fl h.p50) (fl h.p90) (fl h.p99))
    (Metrics.snapshot m)

let trace_jsonl oc tr =
  Trace.iter tr (fun (e : Trace.event) ->
      Printf.fprintf oc
        "{\"seq\":%d,\"t\":%s,\"kind\":%s,\"node\":%d,\"peer\":%d,\
         \"msg\":%d,\"span\":%d,\"label\":%s}\n"
        e.seq (fl e.time)
        (json_string (Trace.kind_name e.kind))
        e.node e.peer e.msg_id e.span (json_string e.label))

let trace_csv oc tr =
  output_string oc "seq,time,kind,node,peer,msg_id,span,label\n";
  Trace.iter tr (fun (e : Trace.event) ->
      Printf.fprintf oc "%d,%s,%s,%d,%d,%d,%d,%s\n" e.seq (fl e.time)
        (Trace.kind_name e.kind) e.node e.peer e.msg_id e.span
        (csv_field e.label))

let spans_jsonl oc sp =
  Span.iter sp (fun (s : Span.span) ->
      Printf.fprintf oc
        "{\"id\":%d,\"parent\":%d,\"root\":%d,\"node\":%d,\"name\":%s,\
         \"start\":%s,\"end\":%s,\"status\":%s}\n"
        s.id s.parent s.root s.node (json_string s.name)
        (fl s.start_time)
        (if Span.is_open s then "null" else fl s.end_time)
        (json_string (Span.status_name s.status)))

(* Prometheus text exposition format, version 0.0.4.  Counters get the
   conventional [_total] suffix; exact-sample histograms are closest to
   Prometheus summaries (pre-computed quantiles), so that is how they
   are exposed. *)
let prom_name s =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c
      | _ -> '_')
    s

let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels ?extra labels =
  let labels =
    match extra with None -> labels | Some kv -> labels @ [ kv ]
  in
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_escape v))
           labels)
    ^ "}"

let metrics_prometheus oc m =
  let last_header = ref "" in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = prom_name s.name in
      let header typ suffix =
        (* One HELP/TYPE block per family; the snapshot is sorted by
           name, so cells of a family are adjacent. *)
        if !last_header <> name then begin
          last_header := name;
          if s.help <> "" then
            Printf.fprintf oc "# HELP %s%s %s\n" name suffix
              (prom_escape s.help);
          Printf.fprintf oc "# TYPE %s%s %s\n" name suffix typ
        end
      in
      match s.value with
      | Metrics.Counter v ->
          header "counter" "_total";
          Printf.fprintf oc "%s_total%s %d\n" name (prom_labels s.labels) v
      | Metrics.Gauge v ->
          header "gauge" "";
          Printf.fprintf oc "%s%s %s\n" name (prom_labels s.labels) (fl v)
      | Metrics.Histogram h ->
          header "summary" "";
          List.iter
            (fun (q, v) ->
              Printf.fprintf oc "%s%s %s\n" name
                (prom_labels ~extra:("quantile", q) s.labels)
                (fl v))
            [ ("0.5", h.p50); ("0.9", h.p90); ("0.99", h.p99) ];
          Printf.fprintf oc "%s_sum%s %s\n" name (prom_labels s.labels)
            (fl h.total);
          Printf.fprintf oc "%s_count%s %d\n" name (prom_labels s.labels)
            h.n)
    (Metrics.snapshot m)

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
