(** Offline analysis over a recorded run: causal-tree reconstruction,
    per-operation critical paths with latency breakdowns, and a
    consistency auditor over recorded operation histories.

    The analyzer consumes the {!Trace} ring and the {!Span} collector
    of one {!Obs.t}.  Spans group trace events into operations (every
    event carries the span context it happened under, and every span
    knows its tree's root), message ids stitch cross-node causality
    (Send → Deliver), and the two together let the analyzer walk the
    {e critical path} of each operation backward from its completion:
    the last message delivered on a node explains how control got
    there, its send→deliver interval is a network edge, and the gaps
    between hops are local time — split into fsync (overlap with the
    op's fsync spans), retransmit (a retransmission timer fired in the
    gap) and queueing (the rest).  The walk partitions the operation's
    [start, end] interval, so breakdown components sum to the
    end-to-end latency {e exactly}; analysis never perturbs the run
    (it happens after the fact, on recorded data). *)

(** {2 Critical paths and latency breakdowns} *)

type breakdown = {
  network : float;  (** time in flight between nodes *)
  fsync : float;  (** waiting on modeled durable writes *)
  queueing : float;  (** local residue: handler/queue/think time *)
  retransmit : float;  (** waiting out retransmission timers *)
}

val zero_breakdown : breakdown
val breakdown_total : breakdown -> float
val breakdown_add : breakdown -> breakdown -> breakdown

type op_profile = {
  root : Span.span;  (** the operation's root span (finished) *)
  events : Trace.event list;  (** the op's events, chronological *)
  latency : float;  (** root end - start *)
  breakdown : breakdown;  (** partitions [latency] exactly *)
  complete : bool;
      (** false when ring eviction broke the causal chain; the
          unexplained remainder is attributed to queueing *)
}

val profile_ops :
  ?is_fsync:(string -> bool) -> trace:Trace.t -> spans:Span.t -> unit ->
  op_profile list
(** One profile per {e finished} root span (open roots — operations
    still running when the run stopped — are skipped).  [is_fsync]
    decides which span names count as fsync time (default: name
    contains ["fsync"]). *)

val events_of_op : trace:Trace.t -> spans:Span.t -> int -> Trace.event list
(** All surviving trace events of the operation rooted at the given
    span id, chronological — the op's causal tree as evidence. *)

val percentile : float list -> float -> float option
(** Nearest-rank percentile (same convention as {!Metrics}); [None] on
    an empty list. *)

type aggregate = {
  count : int;
  complete : int;  (** profiles with an unbroken causal chain *)
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_v : float;
  total : breakdown;  (** component sums across all ops *)
}

val aggregate : op_profile list -> aggregate

val by_name : op_profile list -> (string * op_profile list) list
(** Group profiles by root-span name (e.g. ["store.read"] vs
    ["store.write"]), first-seen order. *)

(** {2 Span windows}

    Merged wall-clock windows covered by all finished spans of a given
    name.  The motivating consumer is reconfiguration downtime: every
    epoch switch opens a ["reconfig.switch"] span, so the merged
    windows are the intervals during which some switch was in flight
    (service degraded to NACK-and-retry), and their total is the run's
    reconfiguration downtime. *)

val span_windows :
  spans:Span.t -> name:string -> (float * float) list
(** Merged, non-overlapping [(start, end)] intervals of all {e finished}
    spans named [name], in time order; open spans are ignored. *)

val span_window_total : spans:Span.t -> name:string -> float
(** Total time covered by {!span_windows} (overlaps counted once). *)

(** {2 History auditor}

    Protocols record one {!hop} per completed client operation; the
    auditor replays the history and checks session guarantees.  All
    checks use strict real-time order ([finished < started]) — an
    operation concurrent with a write may legitimately return either
    version, so overlapping pairs are never flagged and the auditor
    cannot false-positive on a linearizable history. *)

type hop = {
  client : int;  (** issuing client/node *)
  key : int;
  is_write : bool;
  version : int;  (** version written, or version observed by a read *)
  started : float;
  finished : float;
  span : int;  (** the op's root span id; -1 when unknown *)
}

type violation = {
  check : string;
      (** ["stale-read"], ["read-your-writes"] or ["monotonic-reads"] *)
  detail : string;  (** human-readable explanation with times/versions *)
  offending : hop;  (** the read that observed too little *)
  expected : hop option;  (** the operation it should have observed *)
  witness : Trace.event list;
      (** surviving trace events of the operations involved — the
          causal evidence chain (empty when trace/spans not given) *)
}

type audit = { reads : int; writes : int; violations : violation list }

val audit_history : ?trace:Trace.t -> ?spans:Span.t -> hop list -> audit
(** Checks every read against three guarantees: {e stale-read} (a read
    must observe at least the largest version whose write finished
    before the read started), {e read-your-writes} (same, restricted
    to the reader's own writes) and {e monotonic-reads} (a client's
    non-overlapping reads of a key must observe non-decreasing
    versions).  Pass [trace]/[spans] to attach witnessing event chains
    to violations. *)

val passed : audit -> bool
val verdict : audit -> string
(** ["pass"] or ["FAIL (n violations)"]. *)
