type kind = Send | Deliver | Drop | Crash | Recover | Note

let kind_name = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Crash -> "crash"
  | Recover -> "recover"
  | Note -> "note"

type event = {
  seq : int;
  time : float;
  kind : kind;
  node : int;
  peer : int;
  msg_id : int;
  span : int;
  label : string;
}

let dummy =
  { seq = -1; time = 0.0; kind = Note; node = -1; peer = -1; msg_id = -1;
    span = -1; label = "" }

type t = {
  buf : event array;
  cap : int;
  on_drop : unit -> unit;
  prof : Prof.t;
  mutable next_seq : int;
}

let create ?(capacity = 8192) ?(on_drop = fun () -> ()) ?(prof = Prof.null) ()
    =
  if capacity < 0 then invalid_arg "Trace.create: capacity";
  {
    buf = Array.make (max capacity 1) dummy;
    cap = capacity;
    on_drop;
    prof;
    next_seq = 0;
  }

let capacity t = t.cap
let recorded t = t.next_seq
let length t = min t.next_seq t.cap
let dropped t = max 0 (t.next_seq - t.cap)
let clear t = t.next_seq <- 0

let record t ~time ~node ?(peer = -1) ?(msg_id = -1) ?(span = -1)
    ?(label = "") kind =
  if t.cap > 0 then begin
    Prof.enter t.prof Prof.Trace;
    let seq = t.next_seq in
    if seq >= t.cap then t.on_drop ();
    t.buf.(seq mod t.cap) <-
      { seq; time; kind; node; peer; msg_id; span; label };
    t.next_seq <- seq + 1;
    Prof.leave t.prof Prof.Trace
  end

let iter t f =
  let first = t.next_seq - length t in
  for seq = first to t.next_seq - 1 do
    f t.buf.(seq mod t.cap)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let causality_violations t =
  let sent = Hashtbl.create 256 in
  (* Message ids are assigned monotonically, so the first Send in the
     (chronological) buffer carries the smallest id still recorded:
     delivers linking to anything older lost their send to ring
     eviction and cannot be judged. *)
  let oldest_sent = ref max_int in
  let evicted = dropped t > 0 in
  let violations = ref [] in
  iter t (fun e ->
      match e.kind with
      | Send when e.msg_id >= 0 ->
          if e.msg_id < !oldest_sent then oldest_sent := e.msg_id;
          Hashtbl.replace sent e.msg_id ()
      | Deliver when e.msg_id >= 0 ->
          if
            (not (Hashtbl.mem sent e.msg_id))
            && not (evicted && e.msg_id < !oldest_sent)
          then violations := e :: !violations
      | Send | Deliver | Drop | Crash | Recover | Note -> ());
  List.rev !violations
