(** JSONL / CSV serialization of metric snapshots and trace buffers.

    JSONL: one self-describing JSON object per line — greppable,
    streamable, trivially loadable from pandas/jq.  CSV: one flat
    header plus one row per cell/event.  Both are written in the
    deterministic order of {!Metrics.snapshot} / {!Trace.iter}, so
    dumps from the same seed are byte-identical. *)

val metrics_jsonl : out_channel -> Metrics.t -> unit
val metrics_csv : out_channel -> Metrics.t -> unit
val trace_jsonl : out_channel -> Trace.t -> unit
val trace_csv : out_channel -> Trace.t -> unit

val with_file : string -> (out_channel -> unit) -> unit
(** Open [path] for writing, run the sink, close (also on raise). *)
