(** JSONL / CSV serialization of metric snapshots and trace buffers.

    JSONL: one self-describing JSON object per line — greppable,
    streamable, trivially loadable from pandas/jq.  CSV: one flat
    header plus one row per cell/event.  Both are written in the
    deterministic order of {!Metrics.snapshot} / {!Trace.iter}, so
    dumps from the same seed are byte-identical. *)

val metrics_jsonl : out_channel -> Metrics.t -> unit
val metrics_csv : out_channel -> Metrics.t -> unit

val metrics_prometheus : out_channel -> Metrics.t -> unit
(** Prometheus text exposition (format 0.0.4): [# HELP]/[# TYPE] block
    per family, counters suffixed [_total], histograms exposed as
    summaries (pre-computed [quantile] series plus [_sum]/[_count]).
    Metric and label names have non-identifier characters mapped to
    ['_'] (["rpc.retransmits"] becomes [rpc_retransmits_total]). *)

val trace_jsonl : out_channel -> Trace.t -> unit
val trace_csv : out_channel -> Trace.t -> unit

val spans_jsonl : out_channel -> Span.t -> unit
(** One span per line; open spans serialize with ["end":null] and
    status ["open"]. *)

val with_file : string -> (out_channel -> unit) -> unit
(** Open [path] for writing, run the sink, close (also on raise). *)
