(** Operation-scoped spans: the unit of causal accounting.

    A span covers one logical operation (a client write, one quorum
    attempt, one replica fsync) on one node, from a start sim-time to
    an end sim-time, with an outcome status.  Spans form trees: every
    span either is a root (a whole client operation) or names a parent
    that was started earlier, and carries the id of its tree's root so
    a flat span dump groups by operation without walking pointers.

    Span ids double as the {e trace context} that {!Sim.Engine} and
    {!Sim.Rpc} propagate through messages: trace events recorded while
    a span's context is ambient carry its id in {!Trace.event.span},
    which is how {!Trace_analysis} stitches ring-trace events back to
    the operation that caused them — including events on {e other}
    nodes, reached only through message delivery.

    The collector is append-only and ids are dense (0, 1, 2, ...), so
    [get] is O(1) and a span's parent always has a smaller id. *)

type status =
  | Open  (** still running; [end_time] is [nan] *)
  | Ok
  | Error of string  (** failed; the payload says why (may be [""]) *)

val status_name : status -> string
(** ["open"], ["ok"], ["error"] or ["error:<reason>"]. *)

type span = {
  id : int;
  parent : int;  (** -1 for a root span *)
  root : int;  (** id of this tree's root; equals [id] for roots *)
  node : int;  (** node the spanned work ran on *)
  name : string;  (** e.g. ["store.write"], ["rpc.attempt"], ["fsync"] *)
  start_time : float;
  mutable end_time : float;  (** [nan] while open *)
  mutable status : status;
}

type t
(** A span collector; one per run, owned by {!Obs.t}. *)

val create : ?prof:Prof.t -> unit -> t
(** [prof] (default {!Prof.null}) receives an [obs.span] probe around
    every start/finish, so a profiled run prices its span overhead. *)

(** {2 Sampling}

    High-volume runs can keep 1 in [k] operation trees instead of all
    of them.  The decision is made once per {e root} span, keyed only
    on a private seed and the root's ordinal (splitmix64) — never on
    the simulation's RNG — and the whole tree follows it: starting a
    child under a sampled-out parent yields {!sampled_out} again, so
    descendants are kept or dropped together even across nodes (the
    sentinel propagates through {!Sim.Engine}'s ambient span context
    like any other id).  {!finish} on the sentinel is a no-op, so
    protocol code needs no sampling awareness. *)

val sampled_out : int
(** The sentinel pseudo-id (-2) returned for spans whose root was
    sampled out.  Distinct from -1 ("no span"): -1 still raises where
    it always did, and engine-context propagation forwards the
    sentinel where it would drop -1. *)

val set_sampler : t -> seed:int -> keep_1_in:int -> unit
(** Keep 1 in [keep_1_in] roots ([1] = keep everything, the default;
    [0] = drop everything).  Raises [Invalid_argument] when negative.
    Deterministic: same seed and same start order, same decisions. *)

val sampler_keep_1_in : t -> int

val roots_seen : t -> int
(** Root spans requested (kept + sampled out). *)

val roots_kept : t -> int

val start : t -> time:float -> node:int -> ?parent:int -> string -> int
(** Open a new span and return its id.  [parent] defaults to -1
    (a root span); raises [Invalid_argument] if [parent] names a span
    that does not exist.  With a sampler installed, a root may come
    back as {!sampled_out}; a [parent] of {!sampled_out} (or lower)
    always does. *)

val finish : t -> time:float -> ?status:status -> int -> unit
(** Close a span (default status {!Ok}).  Idempotent: closing an
    already-closed span is a no-op — the first verdict wins, so a
    watchdog abort and a late success cannot fight.  A {!sampled_out}
    id is a no-op.  Raises [Invalid_argument] on an unknown id, a
    status of [Open], or an end time before the span's start. *)

val get : t -> int -> span option
val get_exn : t -> int -> span

val count : t -> int
(** Spans ever started. *)

val open_count : t -> int
(** Spans not yet finished. *)

val is_open : span -> bool

val duration : span -> float
(** [end_time - start_time]; [nan] while open. *)

val iter : t -> (span -> unit) -> unit
(** In id (= start) order. *)

val to_list : t -> span list
val roots : t -> span list
val children : t -> int -> span list
val clear : t -> unit

val validate : t -> string list
(** Well-formedness report; [[]] is the pass verdict.  Checks that
    every non-root span has an existing parent started before it, that
    [root] fields agree along parent links, that children do not start
    before their parents, and that no closed span ends before it
    starts.  Child spans are allowed to {e end} after their parents:
    a replica's fsync legitimately outlives the client operation that
    caused it once a quorum has already answered. *)
