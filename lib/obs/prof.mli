(** Self-profiling for the simulator itself: where does an event's wall
    time and allocation go?

    Unlike {!Metrics}/{!Trace}/{!Span} — which measure the {e simulated}
    system — a [Prof.t] measures the {e simulator}: real wall-clock time
    ([Unix.gettimeofday]) and real minor-heap allocation
    ([Gc.minor_words]) attributed to a small fixed set of subsystem
    categories.  Probes are scoped and may nest; every probe boundary
    charges the elapsed interval to the {e enclosing} category, so each
    category accumulates exclusive (self) time and the per-category
    shares of a {!report} sum to exactly the probed total.

    The accumulators are flat [float array]s indexed by category — no
    per-event closures or allocation on the probe fast path beyond the
    clock reads themselves (a few boxed floats per probe, charged to the
    enclosing category; negligible against typical hundreds of words per
    simulated event).  A disabled profiler costs one load and branch per
    probe edge.

    Profiling is {e behaviorally inert}: it reads clocks and counters
    but never touches simulation state or RNG streams, so pinned-seed
    runs are bit-identical with profiling on or off.

    Not domain-safe: probes must come from the domain that owns the
    profiler (worker domains of {!Exec.Pool} are charged batch-level by
    the submitting domain instead). *)

type category =
  | Loop  (** engine run loop bookkeeping: peeks, budget, drain checks *)
  | Heap  (** event-queue pushes and pops *)
  | Dispatch_msg  (** [on_message] handler bodies *)
  | Dispatch_timer  (** [on_timer] handler bodies *)
  | Dispatch_recovery  (** [on_crash] / [on_recover] handler bodies *)
  | Thunk  (** scheduled thunks (workload injection) *)
  | Rpc  (** reliable-rpc bookkeeping: acks, retransmit arming *)
  | Durable  (** durable-log appends, replay, crash truncation *)
  | Trace  (** trace-ring writes *)
  | Metrics  (** metric cell updates *)
  | Span  (** span open/close and sampling decisions *)
  | Exec  (** parallel pool batches (submitting domain) *)
  | Other

val index : category -> int
(** Dense index in [0, n_categories). *)

val n_categories : int

val name : category -> string
(** Stable dotted label, e.g. ["engine.dispatch.message"]. *)

val all : category list
(** Every category, in index order. *)

type t

val create : ?enabled:bool -> unit -> t
(** A fresh profiler (default disabled — all probes are no-ops). *)

val null : t
(** A shared, permanently disabled instance, for subsystems whose owner
    supplied no profiler.  Never enable it. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Toggling abandons any currently open probes (their interval since
    the last boundary is discarded) and re-arms the clock baseline. *)

val clear : t -> unit
(** Zero all accumulators (enabled state is kept). *)

(** {2 Probes} *)

val enter : t -> category -> unit
val leave : t -> category -> unit
(** Manual probe pair for hot paths (no closure).  Calls must nest like
    parentheses; a mismatched or extra [leave] is counted (see
    {!report}) rather than raised, so a probe bug can never take down a
    run. *)

val probe : t -> category -> (unit -> 'a) -> 'a
val scope : t -> category -> (unit -> 'a) -> 'a
(** [scope t cat f] runs [f] inside an [enter]/[leave] pair, leaving on
    exceptions too.  [probe] is an alias. *)

(** {2 Reports} *)

type row = {
  category : category;
  label : string;  (** {!name} of the category *)
  probes : int;  (** times entered *)
  seconds : float;  (** exclusive wall time *)
  time_share : float;  (** fraction of {!report.total_seconds}, 0..1 *)
  minor_words : float;  (** exclusive minor-heap words *)
  alloc_share : float;  (** fraction of {!report.total_minor_words} *)
}

type report = {
  rows : row list;  (** probed categories, sorted by [seconds] desc *)
  total_seconds : float;  (** sum over all categories *)
  total_minor_words : float;
  truncated : int;  (** probes nested deeper than the fixed stack *)
  unbalanced : int;  (** leave-without-enter or category mismatches *)
}

val report : t -> report
(** Shares are computed against the category totals, so they sum to 1
    (up to float rounding) whenever anything was probed. *)

val render : t -> string
(** Aligned plain-text table. *)

val render_markdown : t -> string
(** The same table as GitHub-flavored markdown (for {!Run_report}). *)
