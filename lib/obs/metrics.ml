type labels = (string * string) list

let canon labels =
  List.sort (fun (a, _) (b, _) -> compare (a : string) b) labels

(* Exact-sample histogram: a growable array plus a sortedness flag so
   repeated percentile queries sort at most once between observations.
   With [cap > 0] the array is a reservoir (Algorithm R): count, sum,
   mean, min and max stay exact forever, percentiles are exact until
   [seen] exceeds [cap] and an unbiased sample afterwards. *)
type hist = {
  mutable data : float array;
  mutable len : int;
  mutable total : float;
  mutable is_sorted : bool;
  cap : int;  (* 0 = unbounded (exact) *)
  mutable seen : int;
  mutable min_v : float;
  mutable max_v : float;
  mutable rng : int64;
}

let hist_create ?(cap = 0) ?(seed = 0) () =
  {
    data = [||];
    len = 0;
    total = 0.0;
    is_sorted = true;
    cap;
    seen = 0;
    min_v = infinity;
    max_v = neg_infinity;
    rng = Int64.add (Int64.of_int seed) 0x5DEECE66DL;
  }

(* splitmix64: deterministic per-cell stream, independent of the global
   [Random] state so sampling can never perturb a seeded simulation. *)
let hist_rand h bound =
  let z = Int64.add h.rng 0x9E3779B97F4A7C15L in
  h.rng <- z;
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int bound))

let hist_add h x =
  h.seen <- h.seen + 1;
  h.total <- h.total +. x;
  if x < h.min_v then h.min_v <- x;
  if x > h.max_v then h.max_v <- x;
  if h.cap > 0 && h.len >= h.cap then begin
    (* Reservoir full: keep x with probability cap/seen, evicting a
       uniformly random resident. *)
    let j = hist_rand h h.seen in
    if j < h.cap then begin
      h.data.(j) <- x;
      h.is_sorted <- false
    end
  end
  else begin
    if h.len = Array.length h.data then begin
      let grown = Array.make (max 16 (2 * h.len)) 0.0 in
      Array.blit h.data 0 grown 0 h.len;
      h.data <- grown
    end;
    h.data.(h.len) <- x;
    h.len <- h.len + 1;
    h.is_sorted <- false
  end

let hist_ensure_sorted h =
  if not h.is_sorted then begin
    let prefix = Array.sub h.data 0 h.len in
    Array.sort compare prefix;
    Array.blit prefix 0 h.data 0 h.len;
    h.is_sorted <- true
  end

(* Nearest-rank percentile (matches a sorted-list oracle exactly). *)
let hist_percentile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.percentile: q";
  if h.len = 0 then None
  else begin
    hist_ensure_sorted h;
    let rank =
      min (h.len - 1)
        (max 0 (int_of_float (ceil (q *. float_of_int h.len)) - 1))
    in
    Some h.data.(rank)
  end

type kind = KCounter | KGauge | KHistogram

let kind_name = function
  | KCounter -> "counter"
  | KGauge -> "gauge"
  | KHistogram -> "histogram"

type cell = Ccounter of int ref | Cgauge of float ref | Chist of hist

type family = {
  fname : string;
  mutable help : string;
  kind : kind;
  mutable hcap : int;  (* histogram reservoir cap; 0 = exact *)
  cells : (labels, cell) Hashtbl.t;
  fprof : Prof.t;
  fon : bool ref;  (* shared with the registry: one switch for all *)
  mutable c0 : cell option;  (* cached unlabeled cell: the hot path *)
}

type t = {
  families : (string, family) Hashtbl.t;
  prof : Prof.t;
  on : bool ref;
}

type counter = family
type gauge = family
type histogram = family

let create ?(prof = Prof.null) () =
  { families = Hashtbl.create 32; prof; on = ref true }

let set_enabled t on = t.on := on
let is_enabled t = !(t.on)

let register t kind ?(help = "") ?(max_samples = 0) name =
  if max_samples < 0 then invalid_arg "Metrics: max_samples < 0";
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_name f.kind));
      if help <> "" then f.help <- help;
      if max_samples > 0 then f.hcap <- max_samples;
      f
  | None ->
      let f =
        { fname = name; help; kind; hcap = max_samples;
          cells = Hashtbl.create 4; fprof = t.prof; fon = t.on; c0 = None }
      in
      Hashtbl.add t.families name f;
      f

let counter t ?help name = register t KCounter ?help name
let gauge t ?help name = register t KGauge ?help name

let histogram t ?help ?max_samples name =
  register t KHistogram ?help ?max_samples name

(* Write path: create the cell on first touch. *)
let cell f labels =
  let key = canon labels in
  match Hashtbl.find_opt f.cells key with
  | Some c -> c
  | None ->
      let c =
        match f.kind with
        | KCounter -> Ccounter (ref 0)
        | KGauge -> Cgauge (ref 0.0)
        | KHistogram ->
            (* Seeded from the cell identity: reservoir contents are a
               pure function of the observation stream, never of wall
               clock or global Random state. *)
            Chist
              (hist_create ~cap:f.hcap
                 ~seed:(Hashtbl.hash (f.fname, key))
                 ())
      in
      Hashtbl.add f.cells key c;
      c

(* Unlabeled fast path: the first touch creates the cell, every later
   update is a cached-field read — no canonicalization, no hash lookup,
   no allocation. *)
let unlabeled f =
  match f.c0 with
  | Some c -> c
  | None ->
      let c = cell f [] in
      f.c0 <- Some c;
      c

(* Read path: never allocates a cell. *)
let peek f labels = Hashtbl.find_opt f.cells (canon labels)

let incr ?(labels = []) ?(by = 1) f =
  if by < 0 then invalid_arg "Metrics.incr: by < 0";
  if !(f.fon) then begin
    Prof.enter f.fprof Prof.Metrics;
    (match (if labels == [] then unlabeled f else cell f labels) with
    | Ccounter r -> r := !r + by
    | Cgauge _ | Chist _ -> assert false);
    Prof.leave f.fprof Prof.Metrics
  end

let counter_value ?(labels = []) f =
  match peek f labels with Some (Ccounter r) -> !r | _ -> 0

let set ?(labels = []) f v =
  if !(f.fon) then begin
    Prof.enter f.fprof Prof.Metrics;
    (match (if labels == [] then unlabeled f else cell f labels) with
    | Cgauge r -> r := v
    | Ccounter _ | Chist _ -> assert false);
    Prof.leave f.fprof Prof.Metrics
  end

let set_max ?(labels = []) f v =
  if !(f.fon) then begin
    Prof.enter f.fprof Prof.Metrics;
    (match (if labels == [] then unlabeled f else cell f labels) with
    | Cgauge r -> if v > !r then r := v
    | Ccounter _ | Chist _ -> assert false);
    Prof.leave f.fprof Prof.Metrics
  end

let gauge_value ?(labels = []) f =
  match peek f labels with Some (Cgauge r) -> !r | _ -> 0.0

let observe ?(labels = []) f x =
  if !(f.fon) then begin
    Prof.enter f.fprof Prof.Metrics;
    (match (if labels == [] then unlabeled f else cell f labels) with
    | Chist h -> hist_add h x
    | Ccounter _ | Cgauge _ -> assert false);
    Prof.leave f.fprof Prof.Metrics
  end

let hist_of ?(labels = []) f =
  match peek f labels with Some (Chist h) -> Some h | _ -> None

let count ?labels f =
  match hist_of ?labels f with Some h -> h.seen | None -> 0

let sample_count ?labels f =
  match hist_of ?labels f with Some h -> h.len | None -> 0

let sum ?labels f =
  match hist_of ?labels f with Some h -> h.total | None -> 0.0

let mean ?labels f =
  match hist_of ?labels f with
  | Some h when h.seen > 0 -> h.total /. float_of_int h.seen
  | Some _ | None -> 0.0

let percentile ?labels f q =
  match hist_of ?labels f with
  | Some h -> hist_percentile h q
  | None ->
      if q < 0.0 || q > 1.0 then invalid_arg "Metrics.percentile: q";
      None

let percentile_or ?labels ~default f q =
  match percentile ?labels f q with Some v -> v | None -> default

type hist_stats = {
  n : int;
  total : float;
  avg : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let hist_stats_of h =
  if h.seen = 0 then
    { n = 0; total = 0.0; avg = 0.0; min_v = 0.0; max_v = 0.0;
      p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else begin
    let pct q = match hist_percentile h q with Some v -> v | None -> 0.0 in
    {
      n = h.seen;
      total = h.total;
      avg = h.total /. float_of_int h.seen;
      min_v = h.min_v;
      max_v = h.max_v;
      p50 = pct 0.50;
      p90 = pct 0.90;
      p99 = pct 0.99;
    }
  end

type value = Counter of int | Gauge of float | Histogram of hist_stats

type sample = {
  name : string;
  labels : labels;
  help : string;
  value : value;
}

let summary ?labels f =
  match hist_of ?labels f with
  | Some h when h.seen > 0 ->
      let s = hist_stats_of h in
      Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" s.n s.avg
        s.p50 s.p99 s.max_v
  | Some _ | None -> "n=0"

let sorted_families t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
  |> List.sort (fun a b -> compare a.fname b.fname)

let sorted_cells f =
  Hashtbl.fold (fun labels c acc -> (labels, c) :: acc) f.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  List.concat_map
    (fun f ->
      List.map
        (fun (labels, c) ->
          let value =
            match c with
            | Ccounter r -> Counter !r
            | Cgauge r -> Gauge !r
            | Chist h -> Histogram (hist_stats_of h)
          in
          { name = f.fname; labels; help = f.help; value })
        (sorted_cells f))
    (sorted_families t)

let label_string labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let diff ~before ~after =
  (* Snapshots are sorted by (name, labels); a single merge pass pairs
     the cells.  Cells only present in [before] describe instruments
     that ceased to exist — impossible for one registry — so they are
     skipped rather than invented as negative samples. *)
  let key (s : sample) = (s.name, s.labels) in
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl (key s) s) before;
  List.filter_map
    (fun (a : sample) ->
      let changed value = Some { a with value } in
      match Hashtbl.find_opt tbl (key a) with
      | None -> (
          match a.value with
          | Counter 0 | Gauge 0.0 -> None
          | Histogram h when h.n = 0 -> None
          | _ -> Some a)
      | Some b -> (
          match (a.value, b.value) with
          | Counter va, Counter vb ->
              if va = vb then None else changed (Counter (va - vb))
          | Gauge va, Gauge vb ->
              if va = vb then None else changed (Gauge (va -. vb))
          | Histogram ha, Histogram hb ->
              let n = ha.n - hb.n in
              if n = 0 then None
              else
                (* Counts and sums subtract exactly; the distribution
                   shape (min/max/percentiles) is not decomposable, so
                   the diff reports the [after] shape. *)
                changed
                  (Histogram
                     {
                       ha with
                       n;
                       total = ha.total -. hb.total;
                       avg = (ha.total -. hb.total) /. float_of_int n;
                     })
          | _ ->
              (* Same name, different kind: registries forbid this. *)
              Some a))
    after

let value_string = function
  | Counter v -> Printf.sprintf "counter   %d" v
  | Gauge v -> Printf.sprintf "gauge     %g" v
  | Histogram h ->
      Printf.sprintf
        "histogram n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f \
         max=%.3f"
        h.n h.avg h.min_v h.p50 h.p90 h.p99 h.max_v

let render_diff ~before ~after =
  let buf = Buffer.create 512 in
  let rows = diff ~before ~after in
  if rows = [] then Buffer.add_string buf "(no change)\n"
  else
    List.iter
      (fun (s : sample) ->
        Buffer.add_string buf
          (Printf.sprintf "%-42s %s\n"
             (s.name ^ label_string s.labels)
             (value_string s.value)))
      rows;
  Buffer.contents buf

let render t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      let cells = sorted_cells f in
      if cells = [] then
        Buffer.add_string buf
          (Printf.sprintf "%-42s %-9s (no data)\n" f.fname
             (kind_name f.kind))
      else
        List.iter
          (fun (labels, c) ->
            let id = f.fname ^ label_string labels in
            let body =
              match c with
              | Ccounter r -> Printf.sprintf "counter   %d" !r
              | Cgauge r -> Printf.sprintf "gauge     %g" !r
              | Chist h ->
                  let s = hist_stats_of h in
                  Printf.sprintf
                    "histogram n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f \
                     p99=%.3f max=%.3f"
                    s.n s.avg s.min_v s.p50 s.p90 s.p99 s.max_v
            in
            Buffer.add_string buf (Printf.sprintf "%-42s %s\n" id body))
          cells)
    (sorted_families t);
  Buffer.contents buf
