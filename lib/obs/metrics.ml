type labels = (string * string) list

let canon labels =
  List.sort (fun (a, _) (b, _) -> compare (a : string) b) labels

(* Exact-sample histogram: a growable array plus a sortedness flag so
   repeated percentile queries sort at most once between observations. *)
type hist = {
  mutable data : float array;
  mutable len : int;
  mutable total : float;
  mutable is_sorted : bool;
}

let hist_create () =
  { data = [||]; len = 0; total = 0.0; is_sorted = true }

let hist_add h x =
  if h.len = Array.length h.data then begin
    let grown = Array.make (max 16 (2 * h.len)) 0.0 in
    Array.blit h.data 0 grown 0 h.len;
    h.data <- grown
  end;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  h.total <- h.total +. x;
  h.is_sorted <- false

let hist_ensure_sorted h =
  if not h.is_sorted then begin
    let prefix = Array.sub h.data 0 h.len in
    Array.sort compare prefix;
    Array.blit prefix 0 h.data 0 h.len;
    h.is_sorted <- true
  end

(* Nearest-rank percentile (matches a sorted-list oracle exactly). *)
let hist_percentile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.percentile: q";
  if h.len = 0 then None
  else begin
    hist_ensure_sorted h;
    let rank =
      min (h.len - 1)
        (max 0 (int_of_float (ceil (q *. float_of_int h.len)) - 1))
    in
    Some h.data.(rank)
  end

type kind = KCounter | KGauge | KHistogram

let kind_name = function
  | KCounter -> "counter"
  | KGauge -> "gauge"
  | KHistogram -> "histogram"

type cell = Ccounter of int ref | Cgauge of float ref | Chist of hist

type family = {
  fname : string;
  mutable help : string;
  kind : kind;
  cells : (labels, cell) Hashtbl.t;
}

type t = { families : (string, family) Hashtbl.t }
type counter = family
type gauge = family
type histogram = family

let create () = { families = Hashtbl.create 32 }

let register t kind ?(help = "") name =
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_name f.kind));
      if help <> "" then f.help <- help;
      f
  | None ->
      let f = { fname = name; help; kind; cells = Hashtbl.create 4 } in
      Hashtbl.add t.families name f;
      f

let counter t ?help name = register t KCounter ?help name
let gauge t ?help name = register t KGauge ?help name
let histogram t ?help name = register t KHistogram ?help name

(* Write path: create the cell on first touch. *)
let cell f labels =
  let key = canon labels in
  match Hashtbl.find_opt f.cells key with
  | Some c -> c
  | None ->
      let c =
        match f.kind with
        | KCounter -> Ccounter (ref 0)
        | KGauge -> Cgauge (ref 0.0)
        | KHistogram -> Chist (hist_create ())
      in
      Hashtbl.add f.cells key c;
      c

(* Read path: never allocates a cell. *)
let peek f labels = Hashtbl.find_opt f.cells (canon labels)

let incr ?(labels = []) ?(by = 1) f =
  if by < 0 then invalid_arg "Metrics.incr: by < 0";
  match cell f labels with
  | Ccounter r -> r := !r + by
  | Cgauge _ | Chist _ -> assert false

let counter_value ?(labels = []) f =
  match peek f labels with Some (Ccounter r) -> !r | _ -> 0

let set ?(labels = []) f v =
  match cell f labels with
  | Cgauge r -> r := v
  | Ccounter _ | Chist _ -> assert false

let gauge_value ?(labels = []) f =
  match peek f labels with Some (Cgauge r) -> !r | _ -> 0.0

let observe ?(labels = []) f x =
  match cell f labels with
  | Chist h -> hist_add h x
  | Ccounter _ | Cgauge _ -> assert false

let hist_of ?(labels = []) f =
  match peek f labels with Some (Chist h) -> Some h | _ -> None

let count ?labels f =
  match hist_of ?labels f with Some h -> h.len | None -> 0

let sum ?labels f =
  match hist_of ?labels f with Some h -> h.total | None -> 0.0

let mean ?labels f =
  match hist_of ?labels f with
  | Some h when h.len > 0 -> h.total /. float_of_int h.len
  | Some _ | None -> 0.0

let percentile ?labels f q =
  match hist_of ?labels f with
  | Some h -> hist_percentile h q
  | None ->
      if q < 0.0 || q > 1.0 then invalid_arg "Metrics.percentile: q";
      None

let percentile_or ?labels ~default f q =
  match percentile ?labels f q with Some v -> v | None -> default

type hist_stats = {
  n : int;
  total : float;
  avg : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let hist_stats_of h =
  if h.len = 0 then
    { n = 0; total = 0.0; avg = 0.0; min_v = 0.0; max_v = 0.0;
      p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else begin
    hist_ensure_sorted h;
    let pct q = match hist_percentile h q with Some v -> v | None -> 0.0 in
    {
      n = h.len;
      total = h.total;
      avg = h.total /. float_of_int h.len;
      min_v = h.data.(0);
      max_v = h.data.(h.len - 1);
      p50 = pct 0.50;
      p90 = pct 0.90;
      p99 = pct 0.99;
    }
  end

type value = Counter of int | Gauge of float | Histogram of hist_stats

type sample = {
  name : string;
  labels : labels;
  help : string;
  value : value;
}

let summary ?labels f =
  match hist_of ?labels f with
  | Some h when h.len > 0 ->
      let s = hist_stats_of h in
      Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" s.n s.avg
        s.p50 s.p99 s.max_v
  | Some _ | None -> "n=0"

let sorted_families t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
  |> List.sort (fun a b -> compare a.fname b.fname)

let sorted_cells f =
  Hashtbl.fold (fun labels c acc -> (labels, c) :: acc) f.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  List.concat_map
    (fun f ->
      List.map
        (fun (labels, c) ->
          let value =
            match c with
            | Ccounter r -> Counter !r
            | Cgauge r -> Gauge !r
            | Chist h -> Histogram (hist_stats_of h)
          in
          { name = f.fname; labels; help = f.help; value })
        (sorted_cells f))
    (sorted_families t)

let label_string labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let render t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      let cells = sorted_cells f in
      if cells = [] then
        Buffer.add_string buf
          (Printf.sprintf "%-42s %-9s (no data)\n" f.fname
             (kind_name f.kind))
      else
        List.iter
          (fun (labels, c) ->
            let id = f.fname ^ label_string labels in
            let body =
              match c with
              | Ccounter r -> Printf.sprintf "counter   %d" !r
              | Cgauge r -> Printf.sprintf "gauge     %g" !r
              | Chist h ->
                  let s = hist_stats_of h in
                  Printf.sprintf
                    "histogram n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f \
                     p99=%.3f max=%.3f"
                    s.n s.avg s.min_v s.p50 s.p90 s.p99 s.max_v
            in
            Buffer.add_string buf (Printf.sprintf "%-42s %s\n" id body))
          cells)
    (sorted_families t);
  Buffer.contents buf
