(* Self-profiling for the simulator: flat int-indexed accumulators, an
   explicit probe stack, and boundary charging.  Every enter/leave reads
   the wall clock and the minor-allocation counter once and charges the
   elapsed interval to the category that was on top of the stack, so
   each category accumulates *exclusive* (self) time and words — the
   rows of a report sum to the total probed interval by construction. *)

type category =
  | Loop
  | Heap
  | Dispatch_msg
  | Dispatch_timer
  | Dispatch_recovery
  | Thunk
  | Rpc
  | Durable
  | Trace
  | Metrics
  | Span
  | Exec
  | Other

let n_categories = 13

let index = function
  | Loop -> 0
  | Heap -> 1
  | Dispatch_msg -> 2
  | Dispatch_timer -> 3
  | Dispatch_recovery -> 4
  | Thunk -> 5
  | Rpc -> 6
  | Durable -> 7
  | Trace -> 8
  | Metrics -> 9
  | Span -> 10
  | Exec -> 11
  | Other -> 12

let all =
  [ Loop; Heap; Dispatch_msg; Dispatch_timer; Dispatch_recovery; Thunk;
    Rpc; Durable; Trace; Metrics; Span; Exec; Other ]

let name = function
  | Loop -> "engine.loop"
  | Heap -> "engine.heap"
  | Dispatch_msg -> "engine.dispatch.message"
  | Dispatch_timer -> "engine.dispatch.timer"
  | Dispatch_recovery -> "engine.dispatch.recovery"
  | Thunk -> "engine.dispatch.thunk"
  | Rpc -> "sim.rpc"
  | Durable -> "sim.durable"
  | Trace -> "obs.trace"
  | Metrics -> "obs.metrics"
  | Span -> "obs.span"
  | Exec -> "exec.pool"
  | Other -> "other"

let stack_cap = 128

type t = {
  mutable on : bool;
  time : float array;  (* per-category self seconds *)
  words : float array;  (* per-category self minor words *)
  count : int array;  (* probes entered per category *)
  stack : int array;  (* enclosing category indices *)
  mutable depth : int;
  mutable last_t : float;  (* boundary: wall clock at last probe edge *)
  mutable last_w : float;  (* boundary: minor words at last probe edge *)
  mutable truncated : int;  (* probes deeper than the stack *)
  mutable unbalanced : int;  (* leave without enter / category mismatch *)
}

let create ?(enabled = false) () =
  {
    on = enabled;
    time = Array.make n_categories 0.0;
    words = Array.make n_categories 0.0;
    count = Array.make n_categories 0;
    stack = Array.make stack_cap 0;
    depth = 0;
    last_t = 0.0;
    last_w = 0.0;
    truncated = 0;
    unbalanced = 0;
  }

(* A shared always-off instance: subsystems hold a [Prof.t]
   unconditionally and the disabled checks cost one load + branch. *)
let null = create ()

let enabled t = t.on

let clear t =
  Array.fill t.time 0 n_categories 0.0;
  Array.fill t.words 0 n_categories 0.0;
  Array.fill t.count 0 n_categories 0;
  t.depth <- 0;
  t.truncated <- 0;
  t.unbalanced <- 0

let set_enabled t on =
  (* Abandon any open probes: toggling mid-scope must not charge the
     disabled interval to whatever happened to be on the stack. *)
  t.depth <- 0;
  t.on <- on;
  if on then begin
    t.last_t <- Unix.gettimeofday ();
    t.last_w <- Gc.minor_words ()
  end

let charge t i tn wn =
  t.time.(i) <- t.time.(i) +. (tn -. t.last_t);
  t.words.(i) <- t.words.(i) +. (wn -. t.last_w)

let enter t cat =
  if t.on then begin
    let i = index cat in
    let tn = Unix.gettimeofday () in
    let wn = Gc.minor_words () in
    if t.depth > 0 then charge t t.stack.(min (t.depth - 1) (stack_cap - 1)) tn wn;
    if t.depth < stack_cap then t.stack.(t.depth) <- i
    else t.truncated <- t.truncated + 1;
    t.depth <- t.depth + 1;
    t.count.(i) <- t.count.(i) + 1;
    t.last_t <- tn;
    t.last_w <- wn
  end

let leave t cat =
  if t.on then begin
    if t.depth = 0 then t.unbalanced <- t.unbalanced + 1
    else begin
      let top = t.stack.(min (t.depth - 1) (stack_cap - 1)) in
      if t.depth <= stack_cap && top <> index cat then
        t.unbalanced <- t.unbalanced + 1;
      let tn = Unix.gettimeofday () in
      let wn = Gc.minor_words () in
      charge t top tn wn;
      t.depth <- t.depth - 1;
      t.last_t <- tn;
      t.last_w <- wn
    end
  end

let scope t cat f =
  enter t cat;
  match f () with
  | v ->
      leave t cat;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      leave t cat;
      Printexc.raise_with_backtrace e bt

let probe = scope

type row = {
  category : category;
  label : string;
  probes : int;
  seconds : float;
  time_share : float;
  minor_words : float;
  alloc_share : float;
}

type report = {
  rows : row list;
  total_seconds : float;
  total_minor_words : float;
  truncated : int;
  unbalanced : int;
}

let report t =
  let total_s = Array.fold_left ( +. ) 0.0 t.time in
  let total_w = Array.fold_left ( +. ) 0.0 t.words in
  let rows =
    List.filter_map
      (fun cat ->
        let i = index cat in
        if t.count.(i) = 0 && t.time.(i) = 0.0 then None
        else
          Some
            {
              category = cat;
              label = name cat;
              probes = t.count.(i);
              seconds = t.time.(i);
              time_share = (if total_s > 0.0 then t.time.(i) /. total_s else 0.0);
              minor_words = t.words.(i);
              alloc_share =
                (if total_w > 0.0 then t.words.(i) /. total_w else 0.0);
            })
      all
    |> List.sort (fun a b -> compare b.seconds a.seconds)
  in
  {
    rows;
    total_seconds = total_s;
    total_minor_words = total_w;
    truncated = t.truncated;
    unbalanced = t.unbalanced;
  }

let render t =
  let r = report t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %10s %10s %6s %14s %6s\n" "category" "probes"
       "seconds" "time%" "minor-words" "alloc%");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %10d %10.4f %5.1f%% %14.0f %5.1f%%\n" row.label
           row.probes row.seconds
           (100.0 *. row.time_share)
           row.minor_words
           (100.0 *. row.alloc_share)))
    r.rows;
  Buffer.add_string buf
    (Printf.sprintf "%-28s %10s %10.4f %5s  %14.0f\n" "total" "" r.total_seconds
       "" r.total_minor_words);
  if r.truncated > 0 || r.unbalanced > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(probe stack: %d truncated, %d unbalanced)\n" r.truncated
         r.unbalanced);
  Buffer.contents buf

let render_markdown t =
  let r = report t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "| category | probes | seconds | time % | minor words | alloc % |\n";
  Buffer.add_string buf "|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "| `%s` | %d | %.4f | %.1f%% | %.0f | %.1f%% |\n"
           row.label row.probes row.seconds
           (100.0 *. row.time_share)
           row.minor_words
           (100.0 *. row.alloc_share)))
    r.rows;
  Buffer.add_string buf
    (Printf.sprintf "| **total** | | %.4f | | %.0f | |\n" r.total_seconds
       r.total_minor_words);
  Buffer.contents buf
