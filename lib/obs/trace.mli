(** Ring-buffered structured event trace with message-causality links.

    Every event carries a simulated timestamp, the node it happened on,
    an optional peer node, an optional message id, an optional span id
    (see {!Span}) and a free-form label.  Message ids are the causality
    links: the event stream of a healthy run contains, for every
    [Deliver] of message [m], an earlier [Send] of [m] — send → deliver
    → (the ack's own send → deliver) chains are reconstructible from
    the ids alone.  Span ids tie message events to the operation whose
    causal context they were emitted under, which is what
    {!Trace_analysis} uses to rebuild per-operation critical paths.

    The buffer is a fixed-capacity ring: recording never allocates
    beyond the initial array and never slows down a long run; once full,
    the oldest events are overwritten ({!dropped} counts them, and
    [on_drop] fires once per overwritten event so an owner can meter
    the loss).  A capacity of [0] disables recording entirely
    ({!record} becomes a no-op), which is how metrics-only runs avoid
    trace overhead. *)

type kind =
  | Send  (** a message left [node] for [peer] *)
  | Deliver  (** a message from [peer] was handed to [node] *)
  | Drop  (** the network or a dead destination ate the message *)
  | Crash
  | Recover
  | Note  (** protocol-level event; see [label] *)

type event = {
  seq : int;  (** global record index, monotone from 0 *)
  time : float;
  kind : kind;
  node : int;
  peer : int;  (** -1 when there is no other endpoint *)
  msg_id : int;  (** causality link; -1 when not a message event *)
  span : int;  (** {!Span} context the event happened under; -1 if none *)
  label : string;  (** detail, e.g. ["mutex.enter_cs"]; may be empty *)
}

type t

val create :
  ?capacity:int -> ?on_drop:(unit -> unit) -> ?prof:Prof.t -> unit -> t
(** [capacity] (default 8192) is the ring size in events; [0] disables
    recording.  [on_drop] (default a no-op) is invoked once for every
    event that overwrites an older one.  [prof] (default {!Prof.null})
    receives an [obs.trace] probe around every recorded event.

    Note for zero-allocation call sites: supplying {!record}'s optional
    arguments boxes them at the call regardless of capacity, so hot
    paths that want a true no-op when tracing is off should guard on
    [capacity t > 0] before calling. *)

val capacity : t -> int

val record :
  t ->
  time:float ->
  node:int ->
  ?peer:int ->
  ?msg_id:int ->
  ?span:int ->
  ?label:string ->
  kind ->
  unit

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : t -> int
(** Events lost to ring overwrites. *)

val length : t -> int
(** Events currently held. *)

val iter : t -> (event -> unit) -> unit
(** Oldest to newest. *)

val to_list : t -> event list
val clear : t -> unit
val kind_name : kind -> string

val causality_violations : t -> event list
(** The [Deliver] events whose [msg_id] has no earlier [Send] in the
    buffer.  Delivers whose matching send may have been evicted by ring
    wrap-around (their id precedes the oldest buffered send — message
    ids are assigned monotonically) are not reported; on a buffer with
    [dropped = 0] the check is exact.  An empty list is the pass
    verdict: every delivery is causally explained. *)
