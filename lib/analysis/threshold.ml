let improves ~family ~levels:(small, large) p =
  if small >= large then invalid_arg "Threshold.improves: levels";
  let fs = family small ~p and fl = family large ~p in
  (* Genuine decay, not just approach to a non-zero plateau: require a
     geometric drop between the two sizes (or underflow to ~0, deep in
     the supercritical region). *)
  fl < 0.9 *. fs || (fl <= fs && fl < 1e-12)

let bisect ?(iters = 30) ~supercritical ~low ~high () =
  if not (low < high) then invalid_arg "Threshold.bisect: bounds";
  if not (supercritical low) then low
  else begin
    let rec go lo hi i =
      if i = 0 then lo
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if supercritical mid then go mid hi (i - 1) else go lo mid (i - 1)
      end
    in
    go low high iters
  end

let critical_p ?iters ~family ~levels () =
  bisect ?iters ~supercritical:(improves ~family ~levels) ~low:0.01 ~high:0.5
    ()
