(** System load (Definitions 3.3 / 3.4) and Proposition 3.3 bounds.

    The system load is the value of the linear program

    {v minimize t   s.t.  sum_j w_j = 1,  w >= 0,
                          forall i: sum_(j : i in S_j) w_j <= t v}

    over the (minimal) quorums [S_j].  {!optimal} solves it with the
    in-repo simplex and returns both the load and the witnessing
    strategy.  {!lower_bounds} gives the Proposition 3.3 bounds
    [c(S)/n] and [1/c(S)] that hold for every strategy. *)

type result = {
  load : float;
  strategy : Quorum.Strategy.t;  (** Optimal strategy (zero-weight quorums pruned). *)
}

val optimal : Quorum.System.t -> result
(** Requires an enumerable quorum list.  Raises [Invalid_argument] when
    the construction does not expose one — compatibility shim; new code
    should use {!try_optimal}. *)

val try_optimal : Quorum.System.t -> (result, string) Stdlib.result
(** {!optimal} with the uniform [result] convention the CLI renders:
    [Error] (instead of an exception) when the construction does not
    enumerate its quorums, when forcing the enumeration refuses, or
    when the LP fails.  Never raises. *)

val optimal_of_quorums : n:int -> Quorum.Bitset.t list -> result

val lower_bounds : Quorum.System.t -> float * float
(** [(c/n, 1/c)] with [c] the smallest quorum cardinality. *)

val balanced_lower_bound : Quorum.System.t -> float
(** [max (c/n) (1/c)]. *)
