(** Latency-aware quorum selection and placement analysis.

    The per-request cost of a quorum protocol is one round-trip to the
    {e farthest} quorum member; with an enumerable coterie the
    latency-optimal quorum from a given origin can be computed exactly,
    and the gap between latency-optimal and load-optimal selection
    measured.  Used by the [placement] benchmark target. *)

val best_quorum :
  Quorum.System.t -> Sim.Topology.t -> from:int -> Quorum.Bitset.t * float
(** Latency-optimal minimal quorum and its RTT from [from].  Requires
    an enumerable coterie. *)

val mean_best_rtt : Quorum.System.t -> Sim.Topology.t -> float
(** Average over all origins of the best-quorum RTT — the steady-state
    per-request latency with latency-aware selection. *)

val mean_strategy_rtt :
  ?trials:int -> Quorum.Rng.t -> Quorum.System.t -> Sim.Topology.t -> float
(** Same with the system's own (load-balancing) selection strategy:
    the price of balancing load instead of chasing proximity. *)

val latency_select :
  Quorum.System.t ->
  Sim.Topology.t ->
  from:int ->
  Quorum.Rng.t ->
  live:Quorum.Bitset.t ->
  Quorum.Bitset.t option
(** A selection function for protocols: the latency-optimal quorum
    among those fully live (falls back to [None] if none). *)
