(** Workload-aware quorum-system optimizer.

    Given a {!Workload.t}, sweep the {!Core.Registry} catalogue —
    every family that instantiates over the requested universe size,
    plus the [r]-of-[n] / [(n+1-r)]-of-[n] threshold read/write pairs
    the catalogue cannot express as single coteries — evaluate each
    candidate on four objectives, and return the Pareto frontier:

    - {b load}: LP-optimal system load where the quorums enumerate
      ({!Load.try_optimal} for symmetric candidates, the mixed
      read/write LP of {!mixed_load} for paired ones, the closed form
      for threshold pairs), falling back to the empirical load of the
      construction's selection strategy;
    - {b availability}: [fr * (1 - F_read) + (1 - fr) * (1 - F_write)]
      with the failure probabilities from {!Failure.of_workload};
    - {b expected quorum RTT} under the workload's topology (0 when
      there is none);
    - {b expected quorum size}.

    Every candidate that does {e not} make the frontier comes back
    with an explanation: the frontier point that dominates it, the
    crash set that breaks its resilience target, or the error that
    stopped its evaluation.

    {b Determinism.}  The sweep shards one chunk per candidate on an
    {!Exec.Pool}; every candidate derives its RNG seed from the sweep
    seed and its own index, builds its systems fresh inside its chunk
    (no shared lazies), and never touches the pool from inside a chunk
    — so the report is bit-identical for any [--jobs]. *)

type source =
  | Lp  (** LP-optimal strategy (plain or mixed read/write) *)
  | Analytic  (** closed form (threshold pairs) *)
  | Empirical  (** sampled from the construction's selection strategy *)

type point = {
  label : string;
  read_spec : string;
  write_spec : string;  (** equals [read_spec] for symmetric candidates *)
  n : int;
  load : float;
  availability : float;
  rtt : float;  (** 0.0 under [No_latency] *)
  size : float;  (** expected quorum size under the mix *)
  source : source;
}

type candidate = { label : string; read_spec : string; write_spec : string }

type report = {
  workload : Workload.t;
  n : int;
  seed : int;
  trials : int;
  frontier : point list;  (** Pareto-optimal, sorted by load *)
  dominated : (point * string) list;
      (** evaluated points off the frontier, each with the frontier
          point that dominates it *)
  unresilient : (point * string) list;
      (** points that miss the resilience target, with a witness
          crash set *)
  errors : (string * string) list;  (** candidate label, error message *)
  not_instantiable : string list;
      (** catalogue families with no valid instantiation at [n] *)
}

val candidates : n:int -> candidate list
(** The default candidate set: every validated
    {!Core.Registry.instantiations} spec (coteries symmetric;
    [Read_half]/[Write_half] families paired), plus the [n] threshold
    pairs [(r, n + 1 - r)]. *)

val threshold_pair_load : n:int -> read_fraction:float -> r:int -> float
(** Closed-form load of the [r]-of-[n] read / [(n+1-r)]-of-[n] write
    pair: [(fr * r + (1 - fr) * (n + 1 - r)) / n] — the uniform
    strategy is optimal by symmetry. *)

val best_threshold_pair :
  n:int -> f:int -> read_fraction:float -> (int * float) option
(** The read threshold [r] minimizing {!threshold_pair_load} among the
    [f]-resilient pairs ([f + 1 <= r <= n - f]); [None] when no pair
    is resilient ([2f >= n]). *)

val mixed_load :
  read_fraction:float ->
  n:int ->
  reads:Quorum.Bitset.t list ->
  writes:Quorum.Bitset.t list ->
  (float * Quorum.Strategy.t * Quorum.Strategy.t, string) result
(** The mixed read/write load LP: distributions [wR] over [reads] and
    [wW] over [writes] minimizing
    [max_i (fr * loadR_i + (1 - fr) * loadW_i)].  Returns the load and
    the two witnessing strategies (zero-weight quorums pruned).  With
    [reads == writes] this equals the plain system-load LP. *)

val pareto : point list -> point list * (point * point) list
(** Split into (frontier, dominated-with-dominator).  [a] dominates
    [b] iff [a] is no worse on all four objectives (load, rtt, size
    down; availability up) and strictly better on at least one.  The
    frontier is sorted by load, then label. *)

val evaluate :
  ?trials:int ->
  ?seed:int ->
  workload:Workload.t ->
  candidate ->
  (point * string option, string) result
(** Evaluate one candidate sequentially; [Ok (point, witness)] where
    the witness is [Some crash_set] when the candidate misses the
    workload's resilience target.  Never raises. *)

val sweep :
  ?pool:Exec.Pool.t ->
  ?trials:int ->
  ?seed:int ->
  ?candidates:candidate list ->
  workload:Workload.t ->
  n:int ->
  unit ->
  (report, string) result
(** Run the full sweep (defaults: [trials = 50_000], [seed = 47], the
    {!candidates} of [n]).  With [~pool], one chunk per candidate;
    the report is bit-identical for any pool size.  [Error] only when
    the workload itself does not validate at [n] or the candidate set
    is empty — per-candidate failures are collected in
    [report.errors]. *)

val render : report -> string
(** Human-readable report: the workload line, a frontier table and the
    per-candidate explanations (dominated / unresilient / errors /
    not instantiable). *)
