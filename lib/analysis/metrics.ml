module Bitset = Quorum.Bitset
module System = Quorum.System

type size_stats = {
  min_size : int;
  max_size : int;
  avg_size : float;
  count : int;
}

let of_sizes sizes =
  match sizes with
  | [] -> invalid_arg "Metrics: no quorums"
  | _ ->
      let count = List.length sizes in
      let total = List.fold_left ( + ) 0 sizes in
      {
        min_size = List.fold_left min max_int sizes;
        max_size = List.fold_left max 0 sizes;
        avg_size = float_of_int total /. float_of_int count;
        count;
      }

let of_quorums quorums = of_sizes (List.map Bitset.cardinal quorums)
let of_system s = of_quorums (System.quorums_exn s)

let sampled ~trials rng (s : System.t) =
  if trials <= 0 then invalid_arg "Metrics.sampled: trials";
  let live = Bitset.universe s.n in
  let sizes = ref [] in
  for _ = 1 to trials do
    match System.shrink_select s.avail rng ~live with
    | Some q -> sizes := Bitset.cardinal q :: !sizes
    | None -> ()
  done;
  of_sizes !sizes

let smallest_quorum (s : System.t) =
  match s.min_quorums with
  | Some _ -> (of_system s).min_size
  | None -> (sampled ~trials:1000 (Quorum.Rng.create 7) s).min_size
