(** Failure-probability computation (Definition 3.2 / Proposition 3.1).

    Three routes, in decreasing exactness and increasing reach:

    - {!exact_poly}: scan all 2^n live-sets through the system's mask
      fast-path and bucket the failing ones by cardinality, yielding
      the full failure polynomial — exact, O(2^n), practical to
      n ~ 28-30 (every size the paper tabulates);
    - closed forms: the per-construction recursions live with their
      constructions ([Wall.failure_probability],
      [Hgrid.failure_probability], [Htriang.failure_probability], ...)
      and are cross-checked against the enumeration in the test suite;
    - {!monte_carlo}: iid sampling of live-sets at a fixed [p], with a
      95% confidence half-width, for universes beyond enumeration. *)

val exact_poly : Quorum.System.t -> Quorum.Failure_poly.t
(** Requires [n <= 30] (2^30 availability evaluations). *)

val exact : Quorum.System.t -> p:float -> float
(** [eval (exact_poly s) ~p] — prefer {!exact_poly} when sweeping
    over [p]. *)

type estimate = { mean : float; half_width : float; trials : int }
(** [mean] plus/minus [half_width] is a 95% confidence interval. *)

val monte_carlo :
  ?trials:int -> Quorum.Rng.t -> Quorum.System.t -> p:float -> estimate
(** Default 100_000 trials. *)

val failure_probability :
  ?mc_trials:int -> ?rng:Quorum.Rng.t -> Quorum.System.t -> p:float -> float
(** Auto-dispatch: exact enumeration when [n <= 26], Monte-Carlo
    otherwise (seed 0 unless [rng] given). *)

(** {1 Heterogeneous crash probabilities}

    The paper's model gives every process the same [p]; real
    deployments do not.  These variants take a per-process crash
    probability.  The per-construction closed forms have matching
    [failure_probability_hetero] functions, cross-checked against
    {!exact_hetero} in the test suite. *)

val exact_hetero : Quorum.System.t -> p_of:(int -> float) -> float
(** Exact by depth-first enumeration of live-sets with their
    probabilities; requires [n <= 26]. *)

val monte_carlo_hetero :
  ?trials:int -> Quorum.Rng.t -> Quorum.System.t -> p_of:(int -> float) ->
  estimate
