(** Failure-probability computation (Definition 3.2 / Proposition 3.1).

    Three routes, in decreasing exactness and increasing reach:

    - {!exact_poly}: scan all 2^n live-sets through the system's mask
      fast-path and bucket the failing ones by cardinality, yielding
      the full failure polynomial — exact, O(2^n), practical to
      n ~ 28-30 (every size the paper tabulates);
    - closed forms: the per-construction recursions live with their
      constructions ([Wall.failure_probability],
      [Hgrid.failure_probability], [Htriang.failure_probability], ...)
      and are cross-checked against the enumeration in the test suite;
    - {!monte_carlo}: iid sampling of live-sets at a fixed [p], with a
      95% confidence half-width, for universes beyond enumeration.

    {b Parallelism.}  Every route takes an optional [?pool]
    ([Exec.Pool]): the 2^n scans shard by live-set prefix, the
    samplers split one RNG stream per fixed chunk.  Chunking never
    depends on the pool's domain count, so a pooled result is
    bit-identical for jobs of 1, 2, 4, ...; {!exact_poly} (integer
    counting) and the samplers at [jobs = 1] moreover match the
    sequential route exactly.  Omitting [?pool] keeps the original
    single-domain code path. *)

val exact_poly : ?pool:Exec.Pool.t -> Quorum.System.t -> Quorum.Failure_poly.t
(** Requires [n <= 30] (2^30 availability evaluations).  With a pool,
    the mask range is sharded by live-set prefix (up to 256 chunks);
    counts are integer-valued floats, so the pooled result equals the
    sequential one bit-for-bit. *)

val exact : ?pool:Exec.Pool.t -> Quorum.System.t -> p:float -> float
(** [eval (exact_poly s) ~p] — prefer {!exact_poly} when sweeping
    over [p]. *)

type estimate = { mean : float; half_width : float; trials : int }
(** [mean] plus/minus [half_width] is a 95% confidence interval. *)

val monte_carlo :
  ?pool:Exec.Pool.t ->
  ?trials:int ->
  Quorum.Rng.t ->
  Quorum.System.t ->
  p:float ->
  estimate
(** Default 100_000 trials.  With a pool the trials are split into 64
    fixed chunks, each consuming its own stream split off [rng] in
    chunk order — the estimate is the same for any domain count (but
    differs from the unpooled single-stream estimate, which is kept
    bit-compatible with the pre-pool implementation). *)

val failure_probability :
  ?pool:Exec.Pool.t ->
  ?mc_trials:int ->
  ?rng:Quorum.Rng.t ->
  Quorum.System.t ->
  p:float ->
  float
(** Auto-dispatch: exact enumeration when [n <= 26], Monte-Carlo
    otherwise (seed 0 unless [rng] given). *)

(** {1 Heterogeneous crash probabilities}

    The paper's model gives every process the same [p]; real
    deployments do not.  These variants take a per-process crash
    probability.  The per-construction closed forms have matching
    [failure_probability_hetero] functions, cross-checked against
    {!exact_hetero} in the test suite. *)

val exact_hetero :
  ?pool:Exec.Pool.t -> Quorum.System.t -> p_of:(int -> float) -> float
(** Exact by depth-first enumeration of live-sets with their
    probabilities; requires [n <= 26].  With a pool the DFS is sharded
    on the liveness of the first processes and the per-chunk sums are
    combined by a deterministic tree reduction: pooled results are
    identical across domain counts (though the summation order — and
    hence the last ulp — may differ from the unpooled DFS). *)

val monte_carlo_hetero :
  ?pool:Exec.Pool.t ->
  ?trials:int ->
  Quorum.Rng.t ->
  Quorum.System.t ->
  p_of:(int -> float) ->
  estimate

(** {1 Unified workload entry point}

    The route new code should take: one {!Workload.t} instead of
    scattered [~p] / [~p_of] arguments, a [result] instead of raised
    [Invalid_argument]s.  The entry points above remain as the
    low-level compatibility shims the auto-dispatch is built from. *)

val of_workload :
  ?pool:Exec.Pool.t ->
  ?trials:int ->
  ?rng:Quorum.Rng.t ->
  workload:Workload.t ->
  Quorum.System.t ->
  (float, string) result
(** Failure probability of the system under the workload's failure
    model: exact enumeration when [n <= 26] ({!exact} / {!exact_hetero}
    by model), Monte-Carlo beyond (seed 0 unless [rng] given; [trials]
    defaults to 100_000).  [Error] on a workload that does not validate
    against the system's universe — never raises. *)
