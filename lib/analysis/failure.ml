module Bitset = Quorum.Bitset
module System = Quorum.System
module Failure_poly = Quorum.Failure_poly
module Rng = Quorum.Rng
module Pool = Exec.Pool

(* Chunk counts for the parallel paths are chosen from the problem
   alone (never from the pool's domain count), so results are
   bit-identical for any number of domains: the 2^n scans shard by
   live-set prefix (the high [k] mask bits), the sampling estimators
   use a fixed 64-way split with one RNG stream per chunk. *)

let prefix_bits ~n ~seq_bits = min 8 (max 0 (n - seq_bits))
let mc_chunks = 64

let count_fails ~n avail ~lo ~hi =
  let counts = Array.make (n + 1) 0.0 in
  for live = lo to hi - 1 do
    if not (avail live) then begin
      let k = Bitset.popcount live in
      counts.(k) <- counts.(k) +. 1.0
    end
  done;
  counts

let exact_poly ?pool (s : System.t) =
  if s.n > 30 then
    invalid_arg "Failure.exact_poly: universe too large for enumeration";
  let avail = System.avail_mask_exn s in
  let counts =
    match pool with
    | None -> count_fails ~n:s.n avail ~lo:0 ~hi:(1 lsl s.n)
    | Some pool ->
        (* Shard by live-set prefix: chunk [c] scans the masks whose
           top [k] bits equal [c].  Counts are integer-valued floats
           (< 2^53), so summing them in any fixed order is exact. *)
        let k = prefix_bits ~n:s.n ~seq_bits:14 in
        let shift = s.n - k in
        Pool.map_reduce_chunks pool ~chunks:(1 lsl k)
          ~map:(fun c ->
            count_fails ~n:s.n avail ~lo:(c lsl shift) ~hi:((c + 1) lsl shift))
          ~reduce:(fun a b -> Array.map2 ( +. ) a b)
  in
  Failure_poly.of_fail_counts ~n:s.n counts

let exact ?pool s ~p = Failure_poly.eval (exact_poly ?pool s) ~p

type estimate = { mean : float; half_width : float; trials : int }

let estimate_of ~failures ~trials =
  let mean = float_of_int failures /. float_of_int trials in
  let half_width =
    1.96 *. sqrt (mean *. (1.0 -. mean) /. float_of_int trials)
  in
  { mean; half_width; trials }

let mc_count_failures rng (s : System.t) ~p_of ~trials =
  let live = Bitset.create s.n in
  let failures = ref 0 in
  for _ = 1 to trials do
    Bitset.clear live;
    for i = 0 to s.n - 1 do
      if not (Rng.bernoulli rng (p_of i)) then Bitset.add live i
    done;
    if not (s.avail live) then incr failures
  done;
  !failures

(* Shared sampler: the sequential path consumes [rng] directly
   (bit-compatible with the pre-pool implementation); the pooled path
   splits one stream per chunk, in chunk order, so the estimate is
   identical for any domain count. *)
let mc_estimate ?pool ~trials rng (s : System.t) ~p_of =
  let failures =
    match pool with
    | None -> mc_count_failures rng s ~p_of ~trials
    | Some pool ->
        let rngs = Array.init mc_chunks (fun _ -> Rng.split rng) in
        let share c =
          (trials / mc_chunks) + (if c < trials mod mc_chunks then 1 else 0)
        in
        let parts =
          Pool.map_chunks pool ~chunks:mc_chunks (fun c ->
              mc_count_failures rngs.(c) s ~p_of ~trials:(share c))
        in
        Array.fold_left ( + ) 0 parts
  in
  estimate_of ~failures ~trials

let monte_carlo ?pool ?(trials = 100_000) rng (s : System.t) ~p =
  if trials <= 0 then invalid_arg "Failure.monte_carlo: trials";
  mc_estimate ?pool ~trials rng s ~p_of:(fun _ -> p)

let hetero_walk (s : System.t) avail ~p_of ~from ~mask ~prob =
  (* DFS over processes: each node multiplies in one survival factor,
     so the full scan costs one multiply per visited subset. *)
  let rec walk i mask prob =
    if prob = 0.0 then 0.0
    else if i = s.n then if avail mask then 0.0 else prob
    else begin
      let p = p_of i in
      walk (i + 1) mask (prob *. p)
      +. walk (i + 1) (mask lor (1 lsl i)) (prob *. (1.0 -. p))
    end
  in
  walk from mask prob

let exact_hetero ?pool (s : System.t) ~p_of =
  if s.n > 26 then
    invalid_arg "Failure.exact_hetero: universe too large for enumeration";
  let avail = System.avail_mask_exn s in
  match pool with
  | None -> hetero_walk s avail ~p_of ~from:0 ~mask:0 ~prob:1.0
  | Some pool ->
      (* Shard on the liveness of the first [k] processes; chunk [c]'s
         bit [i] decides process [i].  The per-chunk sums are combined
         by a deterministic tree reduction, so the floating-point
         result does not depend on the domain count. *)
      let k = prefix_bits ~n:s.n ~seq_bits:12 in
      Pool.map_reduce_chunks pool ~chunks:(1 lsl k)
        ~map:(fun c ->
          let prob = ref 1.0 in
          for i = 0 to k - 1 do
            let p = p_of i in
            prob := !prob *. (if c land (1 lsl i) <> 0 then 1.0 -. p else p)
          done;
          hetero_walk s avail ~p_of ~from:k ~mask:c ~prob:!prob)
        ~reduce:( +. )

let monte_carlo_hetero ?pool ?(trials = 100_000) rng (s : System.t) ~p_of =
  if trials <= 0 then invalid_arg "Failure.monte_carlo_hetero: trials";
  mc_estimate ?pool ~trials rng s ~p_of

let of_workload ?pool ?trials ?rng ~workload (s : System.t) =
  match Workload.p_of workload ~n:s.n with
  | Error _ as e -> e
  | Ok p_of -> (
      let rng = match rng with Some r -> r | None -> Rng.create 0 in
      try
        Ok
          (match workload.Workload.failures with
          | Workload.Iid p ->
              if s.n <= 26 then exact ?pool s ~p
              else (monte_carlo ?pool ?trials rng s ~p).mean
          | Workload.Per_process _ ->
              if s.n <= 26 then exact_hetero ?pool s ~p_of
              else (monte_carlo_hetero ?pool ?trials rng s ~p_of).mean)
      with Invalid_argument msg | Failure msg -> Error msg)

let failure_probability ?pool ?mc_trials ?rng (s : System.t) ~p =
  if s.n <= 26 then exact ?pool s ~p
  else begin
    let rng = match rng with Some r -> r | None -> Rng.create 0 in
    (monte_carlo ?pool ?trials:mc_trials rng s ~p).mean
  end
