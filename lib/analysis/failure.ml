module Bitset = Quorum.Bitset
module System = Quorum.System
module Failure_poly = Quorum.Failure_poly
module Rng = Quorum.Rng

let exact_poly (s : System.t) =
  if s.n > 30 then
    invalid_arg "Failure.exact_poly: universe too large for enumeration";
  let avail = System.avail_mask_exn s in
  let counts = Array.make (s.n + 1) 0.0 in
  for live = 0 to (1 lsl s.n) - 1 do
    if not (avail live) then begin
      let k = Bitset.popcount live in
      counts.(k) <- counts.(k) +. 1.0
    end
  done;
  Failure_poly.of_fail_counts ~n:s.n counts

let exact s ~p = Failure_poly.eval (exact_poly s) ~p

type estimate = { mean : float; half_width : float; trials : int }

let monte_carlo ?(trials = 100_000) rng (s : System.t) ~p =
  if trials <= 0 then invalid_arg "Failure.monte_carlo: trials";
  let live = Bitset.create s.n in
  let failures = ref 0 in
  for _ = 1 to trials do
    Bitset.clear live;
    for i = 0 to s.n - 1 do
      if not (Rng.bernoulli rng p) then Bitset.add live i
    done;
    if not (s.avail live) then incr failures
  done;
  let mean = float_of_int !failures /. float_of_int trials in
  let half_width =
    1.96 *. sqrt (mean *. (1.0 -. mean) /. float_of_int trials)
  in
  { mean; half_width; trials }

let exact_hetero (s : System.t) ~p_of =
  if s.n > 26 then
    invalid_arg "Failure.exact_hetero: universe too large for enumeration";
  let avail = System.avail_mask_exn s in
  (* DFS over processes: each node multiplies in one survival factor,
     so the full scan costs one multiply per visited subset. *)
  let rec walk i mask prob =
    if prob = 0.0 then 0.0
    else if i = s.n then if avail mask then 0.0 else prob
    else begin
      let p = p_of i in
      walk (i + 1) mask (prob *. p)
      +. walk (i + 1) (mask lor (1 lsl i)) (prob *. (1.0 -. p))
    end
  in
  walk 0 0 1.0

let monte_carlo_hetero ?(trials = 100_000) rng (s : System.t) ~p_of =
  if trials <= 0 then invalid_arg "Failure.monte_carlo_hetero: trials";
  let live = Bitset.create s.n in
  let failures = ref 0 in
  for _ = 1 to trials do
    Bitset.clear live;
    for i = 0 to s.n - 1 do
      if not (Rng.bernoulli rng (p_of i)) then Bitset.add live i
    done;
    if not (s.avail live) then incr failures
  done;
  let mean = float_of_int !failures /. float_of_int trials in
  let half_width =
    1.96 *. sqrt (mean *. (1.0 -. mean) /. float_of_int trials)
  in
  { mean; half_width; trials }

let failure_probability ?mc_trials ?rng (s : System.t) ~p =
  if s.n <= 26 then exact s ~p
  else begin
    let rng = match rng with Some r -> r | None -> Rng.create 0 in
    (monte_carlo ?trials:mc_trials rng s ~p).mean
  end
