(** Quorum-size statistics and summaries (Table 4 / Table 5 inputs). *)

type size_stats = {
  min_size : int;
  max_size : int;
  avg_size : float;  (** Unweighted mean over the quorums considered. *)
  count : int;
}

val of_quorums : Quorum.Bitset.t list -> size_stats
(** Statistics over an explicit (minimal) quorum list. *)

val of_system : Quorum.System.t -> size_stats
(** Over the system's enumerated minimal quorums. *)

val sampled :
  trials:int -> Quorum.Rng.t -> Quorum.System.t -> size_stats
(** For constructions without an enumerable coterie (Paths, Y):
    sample random minimal quorums by shrinking the full universe.
    [min_size]/[max_size] are then observed bounds, not exact. *)

val smallest_quorum : Quorum.System.t -> int
(** Exact when quorums enumerate, sampled (1000 draws, seed 7)
    otherwise. *)
