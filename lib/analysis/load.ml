module Bitset = Quorum.Bitset
module Strategy = Quorum.Strategy

type result = { load : float; strategy : Strategy.t }

let optimal_of_quorums ~n quorums =
  let quorums = Array.of_list quorums in
  let m = Array.length quorums in
  if m = 0 then invalid_arg "Load.optimal_of_quorums: no quorums";
  (* Variables: w_1..w_m, t.  Minimize t. *)
  let nv = m + 1 in
  let c = Array.make nv 0.0 in
  c.(m) <- 1.0;
  let a_ub =
    Array.init n (fun i ->
        let row = Array.make nv 0.0 in
        Array.iteri
          (fun j q -> if Bitset.mem q i then row.(j) <- 1.0)
          quorums;
        row.(m) <- -1.0;
        row)
  in
  let b_ub = Array.make n 0.0 in
  let a_eq =
    [| Array.init nv (fun j -> if j < m then 1.0 else 0.0) |]
  in
  let b_eq = [| 1.0 |] in
  match Lp.Simplex.solve ~c ~a_ub ~b_ub ~a_eq ~b_eq () with
  | Lp.Simplex.Optimal { objective; solution } ->
      let kept = ref [] in
      Array.iteri
        (fun j w -> if j < m && w > 1e-12 then kept := (quorums.(j), w) :: !kept)
        solution;
      let kept = Array.of_list !kept in
      {
        load = objective;
        strategy =
          Strategy.make (Array.map fst kept) (Array.map snd kept);
      }
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
      (* Cannot happen: w = uniform, t = 1 is always feasible and
         t >= 1/n bounds the objective. *)
      failwith "Load.optimal_of_quorums: LP solver failed"

let optimal (s : Quorum.System.t) =
  optimal_of_quorums ~n:s.n (Quorum.System.quorums_exn s)

let try_optimal (s : Quorum.System.t) =
  match Quorum.System.quorums s with
  | Error _ as e -> e
  | Ok quorums -> (
      try Ok (optimal_of_quorums ~n:s.n quorums)
      with Invalid_argument msg | Failure msg -> Error msg)

let smallest_quorum_size (s : Quorum.System.t) =
  match
    List.fold_left
      (fun acc q -> min acc (Bitset.cardinal q))
      max_int
      (Quorum.System.quorums_exn s)
  with
  | c when c = max_int -> invalid_arg "Load.lower_bounds: no quorums"
  | c -> c

let lower_bounds s =
  let c = float_of_int (smallest_quorum_size s) in
  (c /. float_of_int s.n, 1.0 /. c)

let balanced_lower_bound s =
  let a, b = lower_bounds s in
  max a b
