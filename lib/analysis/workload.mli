(** The unified workload specification every analysis entry point
    consumes.

    The paper's tables fix the deployment parameters one at a time
    (a crash probability here, a read fraction there); real capacity
    planning asks the inverse question — {e given} a workload, which
    system should run it?  A {!t} bundles the four inputs that question
    needs:

    - the {b read fraction} [fr] of the operation mix (reads use the
      read quorums / strategy, writes the write side);
    - the {b failure model}: one iid crash probability, or a
      per-process vector (the Senn–Cachin heterogeneous setting);
    - the {b latency model}: optionally a {!Sim.Topology} whose
      pairwise distances price each quorum's round trip;
    - the {b resilience target} [f]: the system must stay available
      under {e every} crash set of size [f].

    Consumers: {!Failure.of_workload} (availability under the failure
    model), {!Optimizer.sweep} (the catalogue search),
    [Protocols.Workload.read_write_mix_w] and [Protocols.Chaos]'s
    [?workload] (simulated operation mixes).  The scattered
    positional/optional variants those modules used to take
    ([~read_fraction], [~p_of], [~p]) remain as thin compatibility
    shims over this record. *)

type failure_model =
  | Iid of float  (** every process crashes independently with this p *)
  | Per_process of float array
      (** [p.(i)] is process [i]'s crash probability; the array length
          must equal the universe size of the analyzed system *)

type latency_model =
  | No_latency
      (** no latency model: the RTT objective is identically 0 and
          never separates points *)
  | Topology of Sim.Topology.t
      (** quorum RTT is twice the distance to the farthest member
          (see {!Sim.Topology.rtt}); the topology must cover the
          universe *)

type t = {
  read_fraction : float;  (** fraction of operations that are reads *)
  failures : failure_model;
  latency : latency_model;
  resilience : int;  (** target [f]: survive every [f]-crash set *)
}

val make :
  ?failures:failure_model ->
  ?latency:latency_model ->
  ?resilience:int ->
  read_fraction:float ->
  unit ->
  (t, string) result
(** Validated construction; defaults [Iid 0.1], [No_latency], [f = 1].
    [Error] on a read fraction outside [0, 1], a probability outside
    [0, 1] or a negative resilience target. *)

val default : t
(** [make ~read_fraction:0.5 ()]: a balanced mix, iid p = 0.1,
    no latency model, f = 1. *)

val validate : t -> n:int -> (unit, string) result
(** The [n]-dependent checks: a [Per_process] vector must have length
    exactly [n], a [Topology] must cover [n] processes, and
    [resilience < n]. *)

val p_of : t -> n:int -> (int -> float, string) result
(** The per-process crash probability function of the failure model,
    after {!validate}. *)

val hetero :
  n:int -> base:float -> (int * float) list -> (failure_model, string) result
(** [Per_process] from a base probability plus [(id, p)] overrides —
    the shape [quorumctl]'s [--hetero id:p,...] flag parses to.
    [Error] on an id outside the universe or a probability outside
    [0, 1]. *)

val describe : t -> string
(** One line for reports: read fraction, failure model, latency model,
    resilience target. *)
