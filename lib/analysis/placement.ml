module Bitset = Quorum.Bitset
module System = Quorum.System
module Topology = Sim.Topology

let check_fit (s : System.t) topology =
  if Topology.size topology < s.n then
    invalid_arg "Placement: topology smaller than the universe"

let best_quorum (s : System.t) topology ~from =
  check_fit s topology;
  let quorums = System.quorums_exn s in
  List.fold_left
    (fun (best_q, best_rtt) q ->
      let r = Topology.rtt topology ~from q in
      if r < best_rtt then (q, r) else (best_q, best_rtt))
    (List.hd quorums, Topology.rtt topology ~from (List.hd quorums))
    (List.tl quorums)

let mean_best_rtt (s : System.t) topology =
  check_fit s topology;
  let total = ref 0.0 in
  for from = 0 to s.n - 1 do
    total := !total +. snd (best_quorum s topology ~from)
  done;
  !total /. float_of_int s.n

let mean_strategy_rtt ?(trials = 200) rng (s : System.t) topology =
  check_fit s topology;
  let live = Bitset.universe s.n in
  let total = ref 0.0 in
  let count = ref 0 in
  for from = 0 to s.n - 1 do
    for _ = 1 to trials / s.n do
      match s.System.select rng ~live with
      | Some q ->
          total := !total +. Topology.rtt topology ~from q;
          incr count
      | None -> ()
    done
  done;
  if !count = 0 then nan else !total /. float_of_int !count

let latency_select (s : System.t) topology ~from _rng ~live =
  check_fit s topology;
  let usable =
    List.filter (fun q -> Bitset.subset q live) (System.quorums_exn s)
  in
  match usable with
  | [] -> None
  | q :: rest ->
      let best, _ =
        List.fold_left
          (fun (bq, br) q ->
            let r = Topology.rtt topology ~from q in
            if r < br then (q, r) else (bq, br))
          (q, Topology.rtt topology ~from q)
          rest
      in
      Some (Bitset.copy best)
