module Bitset = Quorum.Bitset
module Rng = Quorum.Rng
module Strategy = Quorum.Strategy
module System = Quorum.System
module Registry = Core.Registry

type source = Lp | Analytic | Empirical

type point = {
  label : string;
  read_spec : string;
  write_spec : string;
  n : int;
  load : float;
  availability : float;
  rtt : float;
  size : float;
  source : source;
}

type candidate = { label : string; read_spec : string; write_spec : string }

type report = {
  workload : Workload.t;
  n : int;
  seed : int;
  trials : int;
  frontier : point list;
  dominated : (point * string) list;
  unresilient : (point * string) list;
  errors : (string * string) list;
  not_instantiable : string list;
}

(* ------------------------------------------------------------------ *)
(* Candidate enumeration                                               *)
(* ------------------------------------------------------------------ *)

let spec_family spec =
  match Registry.parse_spec spec with Ok (f, _) -> Some f | Error _ -> None

let candidates ~n =
  let inst = Registry.instantiations ~n in
  let symmetric =
    List.concat_map
      (fun ((e : Registry.entry), specs) ->
        match e.kind with
        | Registry.Coterie ->
            List.map
              (fun s -> { label = s; read_spec = s; write_spec = s })
              specs
        | Registry.Read_half _ | Registry.Write_half _ -> [])
      inst
  in
  let pairs =
    List.concat_map
      (fun ((e : Registry.entry), specs) ->
        match e.kind with
        | Registry.Read_half write_family ->
            List.filter_map
              (fun read_spec ->
                match Registry.parse_spec read_spec with
                | Error _ -> None
                | Ok (_, args) -> (
                    let write_spec =
                      Printf.sprintf "%s(%s)" write_family
                        (String.concat "," args)
                    in
                    match Registry.build write_spec with
                    | Ok s when s.System.n = n ->
                        Some
                          {
                            label = read_spec ^ "+" ^ write_spec;
                            read_spec;
                            write_spec;
                          }
                    | _ -> None))
              specs
        | Registry.Coterie | Registry.Write_half _ -> [])
      inst
  in
  let thresh =
    List.init n (fun i ->
        let r = i + 1 in
        let w = n + 1 - r in
        let read_spec = Printf.sprintf "thresh(%d-%d)" n r in
        let write_spec = Printf.sprintf "thresh(%d-%d)" n w in
        { label = read_spec ^ "+" ^ write_spec; read_spec; write_spec })
  in
  symmetric @ pairs @ thresh

(* ------------------------------------------------------------------ *)
(* Load                                                                *)
(* ------------------------------------------------------------------ *)

let threshold_pair_load ~n ~read_fraction ~r =
  let fr = read_fraction in
  ((fr *. float_of_int r) +. ((1.0 -. fr) *. float_of_int (n + 1 - r)))
  /. float_of_int n

let best_threshold_pair ~n ~f ~read_fraction =
  let lo = f + 1 and hi = n - f in
  if lo > hi then None
  else begin
    let best = ref None in
    for r = lo to hi do
      let l = threshold_pair_load ~n ~read_fraction ~r in
      match !best with
      | Some (_, bl) when bl <= l -> ()
      | _ -> best := Some (r, l)
    done;
    !best
  end

let mixed_load ~read_fraction ~n ~reads ~writes =
  let fr = read_fraction in
  let rq = Array.of_list reads and wq = Array.of_list writes in
  let mr = Array.length rq and mw = Array.length wq in
  if mr = 0 || mw = 0 then Error "Optimizer.mixed_load: empty quorum list"
  else begin
    (* Variables: wR_1..wR_mr, wW_1..wW_mw, t.  Minimize t subject to
       sum wR = 1, sum wW = 1 and, per element i,
       fr * sum_(read j : i in j) wR_j
         + (1 - fr) * sum_(write k : i in k) wW_k <= t. *)
    let nv = mr + mw + 1 in
    let c = Array.make nv 0.0 in
    c.(nv - 1) <- 1.0;
    let a_ub =
      Array.init n (fun i ->
          let row = Array.make nv 0.0 in
          Array.iteri (fun j q -> if Bitset.mem q i then row.(j) <- fr) rq;
          Array.iteri
            (fun j q -> if Bitset.mem q i then row.(mr + j) <- 1.0 -. fr)
            wq;
          row.(nv - 1) <- -1.0;
          row)
    in
    let b_ub = Array.make n 0.0 in
    let a_eq =
      [|
        Array.init nv (fun j -> if j < mr then 1.0 else 0.0);
        Array.init nv (fun j -> if j >= mr && j < mr + mw then 1.0 else 0.0);
      |]
    in
    let b_eq = [| 1.0; 1.0 |] in
    match Lp.Simplex.solve ~c ~a_ub ~b_ub ~a_eq ~b_eq () with
    | Lp.Simplex.Optimal { objective; solution } ->
        let prune qs off m =
          let kept = ref [] in
          for j = m - 1 downto 0 do
            let w = solution.(off + j) in
            if w > 1e-12 then kept := (qs.(j), w) :: !kept
          done;
          let kept = Array.of_list !kept in
          Strategy.make (Array.map fst kept) (Array.map snd kept)
        in
        Ok (objective, prune rq 0 mr, prune wq mr mw)
    | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
        Error "Optimizer.mixed_load: LP solver failed"
  end

(* ------------------------------------------------------------------ *)
(* Pareto dominance                                                    *)
(* ------------------------------------------------------------------ *)

let dominates a b =
  a.load <= b.load
  && a.availability >= b.availability
  && a.rtt <= b.rtt && a.size <= b.size
  && (a.load < b.load
     || a.availability > b.availability
     || a.rtt < b.rtt || a.size < b.size)

let point_order a b =
  match compare a.load b.load with 0 -> compare a.label b.label | c -> c

let pareto points =
  let sorted = List.sort point_order points in
  let dominated_by p = List.exists (fun q -> dominates q p) sorted in
  let frontier = List.filter (fun p -> not (dominated_by p)) sorted in
  let dominated =
    List.filter_map
      (fun p ->
        if not (dominated_by p) then None
        else
          (* Dominance is transitive, so a dominated point always has a
             dominator on the frontier. *)
          match List.find_opt (fun q -> dominates q p) frontier with
          | Some q -> Some (p, q)
          | None -> Some (p, p))
      sorted
  in
  (frontier, dominated)

(* ------------------------------------------------------------------ *)
(* Per-candidate evaluation                                            *)
(* ------------------------------------------------------------------ *)

let resilience_witness ~f (rs : System.t) (ws : System.t) =
  let n = rs.System.n in
  if f = 0 then begin
    let full = Bitset.universe n in
    if rs.System.avail full && ws.System.avail full then None else Some "{}"
  end
  else begin
    let witness = ref None in
    List.iter
      (fun crash ->
        if !witness = None then begin
          let live = Bitset.universe n in
          List.iter (fun i -> Bitset.remove live i) crash;
          if not (rs.System.avail live && ws.System.avail live) then
            witness :=
              Some
                (Printf.sprintf "{%s}"
                   (String.concat "," (List.map string_of_int crash)))
        end)
      (Quorum.Combinat.ksubsets (List.init n Fun.id) f);
    !witness
  end

let mean_rtt_of_quorum topo ~n q =
  let s = ref 0.0 in
  for o = 0 to n - 1 do
    s := !s +. Sim.Topology.rtt topo ~from:o q
  done;
  !s /. float_of_int n

let rtt_of_strategy topo ~n (st : Strategy.t) =
  let total = ref 0.0 in
  Array.iteri
    (fun j q ->
      let w = st.Strategy.probs.(j) in
      if w > 0.0 then total := !total +. (w *. mean_rtt_of_quorum topo ~n q))
    st.Strategy.quorums;
  !total

let rtt_samples = 64

let rtt_of_select topo ~n rng select =
  let live = Bitset.universe n in
  let total = ref 0.0 and k = ref 0 in
  for _ = 1 to rtt_samples do
    match select rng ~live with
    | None -> ()
    | Some q ->
        incr k;
        total := !total +. mean_rtt_of_quorum topo ~n q
  done;
  if !k = 0 then 0.0 else !total /. float_of_int !k

(* The read threshold r when the candidate is a thresh(n-r)+thresh(n-w)
   pair — the one candidate shape with a closed-form load. *)
let thresh_read_r cand =
  match
    (Registry.parse_spec cand.read_spec, Registry.parse_spec cand.write_spec)
  with
  | Ok ("thresh", [ a ]), Ok ("thresh", [ _ ]) -> (
      match String.split_on_char '-' a with
      | [ _; r ] -> int_of_string_opt r
      | _ -> None)
  | _ -> None

let evaluate ?(trials = 50_000) ?(seed = 47) ~workload cand =
  match Registry.build cand.read_spec with
  | Error _ as e -> e
  | Ok rs -> (
      let symmetric = cand.read_spec = cand.write_spec in
      match if symmetric then Ok rs else Registry.build cand.write_spec with
      | Error _ as e -> e
      | Ok ws -> (
          let n = rs.System.n in
          if ws.System.n <> n then
            Error
              (Printf.sprintf "%s: read/write universe sizes differ (%d vs %d)"
                 cand.label n ws.System.n)
          else
            match Workload.validate workload ~n with
            | Error _ as e -> e
            | Ok () -> (
                try
                  let fr = workload.Workload.read_fraction in
                  let fw = 1.0 -. fr in
                  let rng = Rng.create seed in
                  let witness =
                    resilience_witness ~f:workload.Workload.resilience rs ws
                  in
                  (* Load, expected quorum size, and the strategies (when
                     the LP yields them) for the RTT objective. *)
                  let load, size, source, strategies =
                    match thresh_read_r cand with
                    | Some r ->
                        let w = n + 1 - r in
                        ( threshold_pair_load ~n ~read_fraction:fr ~r,
                          (fr *. float_of_int r) +. (fw *. float_of_int w),
                          Analytic,
                          None )
                    | None -> (
                        if symmetric then
                          match Load.try_optimal rs with
                          | Ok { Load.load; strategy } ->
                              ( load,
                                Strategy.average_quorum_size strategy,
                                Lp,
                                Some (strategy, strategy) )
                          | Error _ ->
                              (* No enumerable quorum list: measure the
                                 construction's own selection strategy. *)
                              let emp =
                                Strategy.empirical_of_select ~n ~trials rng
                                  rs.System.select
                              in
                              ( emp.Strategy.max_load,
                                emp.Strategy.avg_size,
                                Empirical,
                                None )
                        else
                          match (System.quorums rs, System.quorums ws) with
                          | Error e, _ | _, Error e -> failwith e
                          | Ok reads, Ok writes -> (
                              match
                                mixed_load ~read_fraction:fr ~n ~reads ~writes
                              with
                              | Error e -> failwith e
                              | Ok (load, str, stw) ->
                                  ( load,
                                    (fr *. Strategy.average_quorum_size str)
                                    +. (fw *. Strategy.average_quorum_size stw),
                                    Lp,
                                    Some (str, stw) )))
                  in
                  let fp s =
                    match
                      Failure.of_workload ~trials ~rng:(Rng.split rng)
                        ~workload s
                    with
                    | Ok f -> f
                    | Error e -> failwith e
                  in
                  let f_r = fp rs in
                  let f_w = if symmetric then f_r else fp ws in
                  let availability =
                    (fr *. (1.0 -. f_r)) +. (fw *. (1.0 -. f_w))
                  in
                  let rtt =
                    match workload.Workload.latency with
                    | Workload.No_latency -> 0.0
                    | Workload.Topology topo -> (
                        match strategies with
                        | Some (str, stw) ->
                            (fr *. rtt_of_strategy topo ~n str)
                            +. (fw *. rtt_of_strategy topo ~n stw)
                        | None ->
                            let rtt_r =
                              rtt_of_select topo ~n rng rs.System.select
                            in
                            let rtt_w =
                              if symmetric then rtt_r
                              else rtt_of_select topo ~n rng ws.System.select
                            in
                            (fr *. rtt_r) +. (fw *. rtt_w))
                  in
                  Ok
                    ( {
                        label = cand.label;
                        read_spec = cand.read_spec;
                        write_spec = cand.write_spec;
                        n;
                        load;
                        availability;
                        rtt;
                        size;
                        source;
                      },
                      witness )
                with Invalid_argument msg | Failure msg -> Error msg)))

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

let sweep ?pool ?(trials = 50_000) ?(seed = 47) ?candidates:cand_list ~workload
    ~n () =
  match Workload.validate workload ~n with
  | Error _ as e -> e
  | Ok () ->
      let cand_list =
        match cand_list with Some c -> c | None -> candidates ~n
      in
      if cand_list = [] then Error "Optimizer.sweep: no candidates"
      else begin
        let arr = Array.of_list cand_list in
        (* One chunk per candidate; each chunk derives its own seed from
           the candidate index and builds its systems fresh, so pooled
           runs are bit-identical for any domain count.  Chunk bodies
           never touch [pool] (nested submission is rejected). *)
        let eval i =
          let c = arr.(i) in
          (c, evaluate ~trials ~seed:(seed + (997 * i)) ~workload c)
        in
        let results =
          match pool with
          | Some pool ->
              Exec.Pool.map_chunks pool ~chunks:(Array.length arr) eval
          | None -> Array.init (Array.length arr) eval
        in
        let errors = ref [] and unresilient = ref [] and ok = ref [] in
        Array.iter
          (fun ((c : candidate), res) ->
            match res with
            | Error e -> errors := (c.label, e) :: !errors
            | Ok (p, Some w) ->
                unresilient :=
                  ( p,
                    Printf.sprintf "not %d-resilient: fails crash set %s"
                      workload.Workload.resilience w )
                  :: !unresilient
            | Ok (p, None) -> ok := p :: !ok)
          results;
        let frontier, dominated = pareto (List.rev !ok) in
        let dominated =
          List.map
            (fun ((p : point), (q : point)) ->
              ( p,
                Printf.sprintf
                  "dominated by %s (load %.4f vs %.4f, availability %.6f vs \
                   %.6f, rtt %.3f vs %.3f, size %.2f vs %.2f)"
                  q.label q.load p.load q.availability p.availability q.rtt
                  p.rtt q.size p.size ))
            dominated
        in
        let covered =
          List.concat_map
            (fun c ->
              List.filter_map spec_family [ c.read_spec; c.write_spec ])
            cand_list
        in
        let not_instantiable =
          List.filter_map
            (fun (e : Registry.entry) ->
              if List.mem e.family covered then None else Some e.family)
            Registry.catalogue
        in
        Ok
          {
            workload;
            n;
            seed;
            trials;
            frontier;
            dominated;
            unresilient = List.rev !unresilient;
            errors = List.rev !errors;
            not_instantiable;
          }
      end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let source_label = function
  | Lp -> "lp"
  | Analytic -> "analytic"
  | Empirical -> "empirical"

let render r =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "workload: %s\n" (Workload.describe r.workload);
  pf "universe: n = %d; seed = %d; trials = %d\n\n" r.n r.seed r.trials;
  let width =
    List.fold_left
      (fun w (p : point) -> max w (String.length p.label))
      9 r.frontier
  in
  pf "Pareto frontier (%d point%s):\n" (List.length r.frontier)
    (if List.length r.frontier = 1 then "" else "s");
  pf "  %-*s  %8s  %12s  %8s  %6s  %s\n" width "system" "load" "availability"
    "rtt" "size" "source";
  List.iter
    (fun (p : point) ->
      pf "  %-*s  %8.4f  %12.6f  %8.3f  %6.2f  %s\n" width p.label p.load
        p.availability p.rtt p.size (source_label p.source))
    r.frontier;
  if r.dominated <> [] then begin
    pf "\ndominated (%d):\n" (List.length r.dominated);
    List.iter
      (fun ((p : point), why) -> pf "  %s: %s\n" p.label why)
      r.dominated
  end;
  if r.unresilient <> [] then begin
    pf "\nbelow the resilience target (%d):\n" (List.length r.unresilient);
    List.iter
      (fun ((p : point), why) -> pf "  %s: %s\n" p.label why)
      r.unresilient
  end;
  if r.errors <> [] then begin
    pf "\nnot evaluated (%d):\n" (List.length r.errors);
    List.iter (fun (l, e) -> pf "  %s: %s\n" l e) r.errors
  end;
  if r.not_instantiable <> [] then
    pf "\nno instantiation at n = %d: %s\n" r.n
      (String.concat ", " r.not_instantiable);
  Buffer.contents buf
