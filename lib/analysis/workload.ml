type failure_model = Iid of float | Per_process of float array

type latency_model = No_latency | Topology of Sim.Topology.t

type t = {
  read_fraction : float;
  failures : failure_model;
  latency : latency_model;
  resilience : int;
}

let prob_ok p = p >= 0.0 && p <= 1.0

let check_failures = function
  | Iid p ->
      if prob_ok p then Ok ()
      else Error (Printf.sprintf "Workload: crash probability %g not in [0,1]" p)
  | Per_process ps ->
      let bad = ref None in
      Array.iteri (fun i p -> if not (prob_ok p) && !bad = None then bad := Some (i, p)) ps;
      (match !bad with
      | Some (i, p) ->
          Error
            (Printf.sprintf
               "Workload: process %d crash probability %g not in [0,1]" i p)
      | None ->
          if Array.length ps = 0 then Error "Workload: empty per-process vector"
          else Ok ())

let make ?(failures = Iid 0.1) ?(latency = No_latency) ?(resilience = 1)
    ~read_fraction () =
  if not (prob_ok read_fraction) then
    Error (Printf.sprintf "Workload: read fraction %g not in [0,1]" read_fraction)
  else if resilience < 0 then
    Error (Printf.sprintf "Workload: resilience target %d negative" resilience)
  else
    match check_failures failures with
    | Error _ as e -> e
    | Ok () -> Ok { read_fraction; failures; latency; resilience }

let default =
  match make ~read_fraction:0.5 () with
  | Ok w -> w
  | Error _ -> assert false

let validate t ~n =
  if n <= 0 then Error "Workload: universe must be non-empty"
  else if not (prob_ok t.read_fraction) then
    Error (Printf.sprintf "Workload: read fraction %g not in [0,1]" t.read_fraction)
  else if t.resilience < 0 then
    Error (Printf.sprintf "Workload: resilience target %d negative" t.resilience)
  else if t.resilience >= n then
    Error
      (Printf.sprintf
         "Workload: resilience target f = %d needs more than the %d processes"
         t.resilience n)
  else
    match check_failures t.failures with
    | Error _ as e -> e
    | Ok () -> (
        (match t.failures with
        | Iid _ -> Ok ()
        | Per_process ps ->
            if Array.length ps <> n then
              Error
                (Printf.sprintf
                   "Workload: per-process vector has %d entries for a \
                    %d-process universe"
                   (Array.length ps) n)
            else Ok ())
        |> function
        | Error _ as e -> e
        | Ok () -> (
            match t.latency with
            | No_latency -> Ok ()
            | Topology topo ->
                if Sim.Topology.size topo < n then
                  Error
                    (Printf.sprintf
                       "Workload: topology covers %d < %d processes"
                       (Sim.Topology.size topo) n)
                else Ok ()))

let p_of t ~n =
  match validate t ~n with
  | Error _ as e -> e
  | Ok () -> (
      match t.failures with
      | Iid p -> Ok (fun _ -> p)
      | Per_process ps -> Ok (fun i -> ps.(i)))

let hetero ~n ~base overrides =
  if n <= 0 then Error "Workload.hetero: universe must be non-empty"
  else if not (prob_ok base) then
    Error (Printf.sprintf "Workload.hetero: base probability %g not in [0,1]" base)
  else
    let ps = Array.make n base in
    let rec apply = function
      | [] -> Ok (Per_process ps)
      | (i, p) :: rest ->
          if i < 0 || i >= n then
            Error (Printf.sprintf "Workload.hetero: process %d outside 0..%d" i (n - 1))
          else if not (prob_ok p) then
            Error (Printf.sprintf "Workload.hetero: probability %g not in [0,1]" p)
          else begin
            ps.(i) <- p;
            apply rest
          end
    in
    apply overrides

let describe t =
  let failures =
    match t.failures with
    | Iid p -> Printf.sprintf "iid p = %g" p
    | Per_process ps ->
        let lo = Array.fold_left min 1.0 ps in
        let hi = Array.fold_left max 0.0 ps in
        Printf.sprintf "per-process p in [%g, %g]" lo hi
  in
  let latency =
    match t.latency with
    | No_latency -> "no latency model"
    | Topology topo -> Printf.sprintf "topology of %d sites" (Sim.Topology.size topo)
  in
  Printf.sprintf "read fraction %.2f, %s, %s, resilience f = %d"
    t.read_fraction failures latency t.resilience
