(** Critical crash probabilities.

    Kumar & Cheung prove the hierarchical grid's availability tends to
    1 for every [p < p* < 1/2] with [p*] depending on the sub-grid
    dimensions, and the paper inherits that claim for the h-T-grid and
    h-triang; none of the papers compute [p*].  This module measures
    it: a family of growing instances is {e supercritical} at [p] when
    its failure probability still decreases between the two largest
    instances; [p*] is located by bisection.

    For ideal recursions the threshold is also the unstable fixed point
    of the level map (e.g. majority-of-three: [a -> 3a^2 - 2a^3] has
    fixed point 1/2, so HQS has p* = 1/2 exactly); the measured values
    are validated against such fixed points in the test suite. *)

val improves : family:(int -> p:float -> float) -> levels:int * int ->
  float -> bool
(** [improves ~family ~levels:(small, large) p]: the failure
    probability genuinely decays between the instances (a geometric
    drop, so approaching a non-zero plateau does not count), or both
    values have underflowed to ~0 (deep supercritical). *)

val bisect :
  ?iters:int ->
  supercritical:(float -> bool) ->
  low:float ->
  high:float ->
  unit ->
  float
(** Largest [p] (within [2^-iters * (high - low)]) such that
    [supercritical p]; assumes monotonicity.  [iters] defaults to 30.
    [low] must be supercritical; returns [low] if even it is not. *)

val critical_p :
  ?iters:int -> family:(int -> p:float -> float) -> levels:int * int ->
  unit -> float
(** [bisect] over [improves]. *)
