module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng
module Combinat = Quorum.Combinat

type shape =
  | Leaf of { id : int; row : int; col : int }
  | Grid of { cells : shape array array; row0 : int; row1 : int }

type t = {
  shape : shape;
  n : int;
  global_rows : int;
  global_cols : int;
  dims : (int * int) list;
}

let of_dims dims =
  if dims = [] then invalid_arg "Hgrid.of_dims: no levels";
  List.iter
    (fun (m, n) ->
      if m <= 0 || n <= 0 then invalid_arg "Hgrid.of_dims: bad dimensions")
    dims;
  let global_rows = List.fold_left (fun acc (m, _) -> acc * m) 1 dims in
  let global_cols = List.fold_left (fun acc (_, n) -> acc * n) 1 dims in
  (* Spans of a level's sub-objects in global coordinates. *)
  let rec build dims ~row0 ~col0 =
    match dims with
    | [] -> Leaf { id = (row0 * global_cols) + col0; row = row0; col = col0 }
    | (m, n) :: rest ->
        let row_span = List.fold_left (fun acc (m', _) -> acc * m') 1 rest in
        let col_span = List.fold_left (fun acc (_, n') -> acc * n') 1 rest in
        let cells =
          Array.init m (fun i ->
              Array.init n (fun j ->
                  build rest
                    ~row0:(row0 + (i * row_span))
                    ~col0:(col0 + (j * col_span))))
        in
        Grid { cells; row0; row1 = row0 + (m * row_span) }
  in
  {
    shape = build dims ~row0:0 ~col0:0;
    n = global_rows * global_cols;
    global_rows;
    global_cols;
    dims;
  }

let flat ~rows ~cols = of_dims [ (rows, cols) ]

let preferred_2x2 ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Hgrid.preferred_2x2";
  (* Peel nested 2x2 levels (listed top-down, so they are the outer
     ones) while both dimensions stay even; whatever remains is the
     innermost level. *)
  let rec levels r c =
    if r mod 2 = 0 && c mod 2 = 0 && (r > 2 || c > 2) then
      (2, 2) :: levels (r / 2) (c / 2)
    else if r = 1 && c = 1 then []
    else [ (r, c) ]
  in
  of_dims (levels rows cols)

let of_blocks ~row_parts ~col_parts =
  if row_parts = [] || col_parts = [] then invalid_arg "Hgrid.of_blocks";
  List.iter
    (fun k -> if k <= 0 then invalid_arg "Hgrid.of_blocks: bad part")
    (row_parts @ col_parts);
  let rows = List.fold_left ( + ) 0 row_parts in
  let cols = List.fold_left ( + ) 0 col_parts in
  let spans parts origin =
    List.fold_left
      (fun (acc, off) len -> ((off, len) :: acc, off + len))
      ([], origin) parts
    |> fst |> List.rev
  in
  let flat_block ~row0 ~col0 ~h ~w =
    let cells =
      Array.init h (fun i ->
          Array.init w (fun j ->
              let r = row0 + i and c = col0 + j in
              Leaf { id = (r * cols) + c; row = r; col = c }))
    in
    if h = 1 && w = 1 then cells.(0).(0)
    else Grid { cells; row0; row1 = row0 + h }
  in
  let cells =
    Array.of_list
      (List.map
         (fun (r0, h) ->
           Array.of_list
             (List.map
                (fun (c0, w) -> flat_block ~row0:r0 ~col0:c0 ~h ~w)
                (spans col_parts 0)))
         (spans row_parts 0))
  in
  {
    shape = Grid { cells; row0 = 0; row1 = rows };
    n = rows * cols;
    global_rows = rows;
    global_cols = cols;
    dims = [ (rows, cols) ];
  }

let auto_2x2 ?(ceil_first = false) ~rows ~cols () =
  if rows <= 0 || cols <= 0 then invalid_arg "Hgrid.auto_2x2";
  let split k =
    let big = (k + 1) / 2 and small = k / 2 in
    if ceil_first then [ big; small ] else [ small; big ]
  in
  let global_cols = cols in
  let rec build r c ~row0 ~col0 =
    if r = 1 && c = 1 then
      Leaf { id = (row0 * global_cols) + col0; row = row0; col = col0 }
    else if r <= 2 && c <= 2 then begin
      (* Dimensions of at most 2 are not subdivided: the block is a
         flat grid of processes (the paper's "2x2 whenever possible"
         bottoms out here). *)
      let cells =
        Array.init r (fun i ->
            Array.init c (fun j ->
                let gr = row0 + i and gc = col0 + j in
                Leaf { id = (gr * global_cols) + gc; row = gr; col = gc }))
      in
      Grid { cells; row0; row1 = row0 + r }
    end
    else begin
      let row_parts = if r <= 2 then [ r ] else split r in
      let col_parts = if c <= 2 then [ c ] else split c in
      let offsets parts origin =
        List.fold_left
          (fun (acc, off) len -> ((off, len) :: acc, off + len))
          ([], origin) parts
        |> fst |> List.rev
      in
      let row_spans = offsets row_parts row0 in
      let col_spans = offsets col_parts col0 in
      let cells =
        Array.of_list
          (List.map
             (fun (r0, rl) ->
               Array.of_list
                 (List.map
                    (fun (c0, cl) -> build rl cl ~row0:r0 ~col0:c0)
                    col_spans))
             row_spans)
      in
      Grid { cells; row0; row1 = row0 + r }
    end
  in
  {
    shape = build rows cols ~row0:0 ~col0:0;
    n = rows * cols;
    global_rows = rows;
    global_cols = cols;
    dims = [ (rows, cols) ];
  }

(* --- Structural predicates ------------------------------------- *)

let rec row_cover_ok mem = function
  | Leaf l -> mem l.id
  | Grid g ->
      Array.for_all (fun row -> Array.exists (row_cover_ok mem) row) g.cells

let rec full_line_ok mem = function
  | Leaf l -> mem l.id
  | Grid g ->
      Array.exists (fun row -> Array.for_all (full_line_ok mem) row) g.cells

let rec full_line_max_base mem = function
  | Leaf l -> if mem l.id then Some l.row else None
  | Grid g ->
      (* A full-line of the grid combines full-lines of all cells of
         one row; its topmost global row is the min over cells, which
         each cell maximizes independently. *)
      let row_candidate row =
        Array.fold_left
          (fun acc cell ->
            match (acc, full_line_max_base mem cell) with
            | None, _ | _, None -> None
            | Some a, Some b -> Some (min a b))
          (Some max_int) row
      in
      Array.fold_left
        (fun best row ->
          match (best, row_candidate row) with
          | None, c -> c
          | b, None -> b
          | Some b, Some c -> Some (max b c))
        None g.cells

let rec row_cover_ok_at mem r = function
  | Leaf l -> l.row < r || mem l.id
  | Grid g ->
      g.row1 <= r
      || Array.for_all
           (fun row -> Array.exists (row_cover_ok_at mem r) row)
           g.cells

(* --- Quorum enumeration ----------------------------------------- *)

let rec row_cover_quorums = function
  | Leaf l -> [ [ l.id ] ]
  | Grid g ->
      Array.to_list g.cells
      |> List.map (fun row ->
             List.concat_map row_cover_quorums (Array.to_list row))
      |> Combinat.product
      |> List.map List.concat

let rec full_lines_with_base = function
  | Leaf l -> [ (l.row, [ l.id ]) ]
  | Grid g ->
      Array.to_list g.cells
      |> List.concat_map (fun row ->
             Array.to_list row
             |> List.map full_lines_with_base
             |> Combinat.product
             |> List.map (fun parts ->
                    let base =
                      List.fold_left (fun acc (b, _) -> min acc b) max_int
                        parts
                    in
                    (base, List.concat_map snd parts)))

let full_line_quorums shape = List.map snd (full_lines_with_base shape)

let rec partial_cover_raw r = function
  | Leaf l -> if l.row < r then [ [] ] else [ [ l.id ] ]
  | Grid g ->
      if g.row1 <= r then [ [] ]
      else
        Array.to_list g.cells
        |> List.map (fun row ->
               List.concat_map (partial_cover_raw r) (Array.to_list row))
        |> Combinat.product
        |> List.map List.concat

let partial_cover_quorums shape r =
  partial_cover_raw r shape
  |> List.map (List.sort_uniq compare)
  |> List.sort_uniq compare

(* --- Selection --------------------------------------------------- *)

let rec select_row_cover rng mem = function
  | Leaf l -> if mem l.id then Some [ l.id ] else None
  | Grid g ->
      let pick_in_row row =
        let order = Array.copy row in
        Rng.shuffle_in_place rng order;
        let rec try_cells i =
          if i = Array.length order then None
          else
            match select_row_cover rng mem order.(i) with
            | Some q -> Some q
            | None -> try_cells (i + 1)
        in
        try_cells 0
      in
      let rec all_rows i acc =
        if i = Array.length g.cells then Some acc
        else
          match pick_in_row g.cells.(i) with
          | None -> None
          | Some q -> all_rows (i + 1) (q @ acc)
      in
      all_rows 0 []

let rec select_full_line rng mem = function
  | Leaf l -> if mem l.id then Some [ l.id ] else None
  | Grid g ->
      let try_row row =
        let rec all j acc =
          if j = Array.length row then Some acc
          else
            match select_full_line rng mem row.(j) with
            | None -> None
            | Some q -> all (j + 1) (q @ acc)
        in
        all 0 []
      in
      let order = Array.init (Array.length g.cells) (fun i -> i) in
      Rng.shuffle_in_place rng order;
      let rec try_rows i =
        if i = Array.length order then None
        else
          match try_row g.cells.(order.(i)) with
          | Some q -> Some q
          | None -> try_rows (i + 1)
      in
      try_rows 0

(* --- Systems ----------------------------------------------------- *)

let mem_of_live live i = Bitset.mem live i
let mem_of_mask mask i = mask land (1 lsl i) <> 0

let make_system ?name t ~default_name ~avail_fn ~quorums ~select_fn =
  let name = match name with Some s -> s | None -> default_name in
  let avail live = avail_fn (mem_of_live live) in
  let avail_mask =
    if t.n <= Bitset.bits_per_word then
      Some (fun mask -> avail_fn (mem_of_mask mask))
    else None
  in
  let min_quorums =
    lazy
      (Quorum.Coterie.minimize (List.map (Bitset.of_list t.n) (quorums ())))
  in
  let select rng ~live =
    Option.map (Bitset.of_list t.n) (select_fn rng (mem_of_live live))
  in
  System.make ~name ~n:t.n ~avail ?avail_mask ~min_quorums ~select ()

let dims_string t =
  String.concat ","
    (List.map (fun (m, n) -> Printf.sprintf "%dx%d" m n) t.dims)

let read_system ?name t =
  make_system ?name t
    ~default_name:(Printf.sprintf "h-grid-read(%s)" (dims_string t))
    ~avail_fn:(fun mem -> row_cover_ok mem t.shape)
    ~quorums:(fun () -> row_cover_quorums t.shape)
    ~select_fn:(fun rng mem -> select_row_cover rng mem t.shape)

let write_system ?name t =
  make_system ?name t
    ~default_name:(Printf.sprintf "h-grid-write(%s)" (dims_string t))
    ~avail_fn:(fun mem -> full_line_ok mem t.shape)
    ~quorums:(fun () -> full_line_quorums t.shape)
    ~select_fn:(fun rng mem -> select_full_line rng mem t.shape)

let rw_system ?name t =
  make_system ?name t
    ~default_name:(Printf.sprintf "h-grid(%s)" (dims_string t))
    ~avail_fn:(fun mem ->
      row_cover_ok mem t.shape && full_line_ok mem t.shape)
    ~quorums:(fun () ->
      List.concat_map
        (fun line ->
          List.map (fun cover -> line @ cover) (row_cover_quorums t.shape))
        (full_line_quorums t.shape))
    ~select_fn:(fun rng mem ->
      match
        ( select_full_line rng mem t.shape,
          select_row_cover rng mem t.shape )
      with
      | Some l, Some c -> Some (l @ c)
      | _ -> None)

(* --- Exact analysis ---------------------------------------------- *)

type mode = Read | Write | Read_write

(* Joint law of (row-cover available, full-line available) per node:
   (p_rc, p_fl, p_both).  Disjoint sub-objects make cells independent;
   within a grid, rows are independent too.  [p] maps a process id to
   its crash probability. *)
let rec joint p = function
  | Leaf l ->
      let q = 1.0 -. p l.id in
      (q, q, q)
  | Grid g ->
      let row_stats row =
        let cells = Array.map (joint p) row in
        let b = Array.fold_left (fun acc (_, fl, _) -> acc *. fl) 1.0 cells in
        let a =
          1.0
          -. Array.fold_left (fun acc (rc, _, _) -> acc *. (1.0 -. rc)) 1.0 cells
        in
        let ab =
          b
          -. Array.fold_left
               (fun acc (_, fl, both) -> acc *. (fl -. both))
               1.0 cells
        in
        (a, b, ab)
      in
      let rows = Array.map row_stats g.cells in
      let rc = Array.fold_left (fun acc (a, _, _) -> acc *. a) 1.0 rows in
      let fl =
        1.0 -. Array.fold_left (fun acc (_, b, _) -> acc *. (1.0 -. b)) 1.0 rows
      in
      let both =
        rc
        -. Array.fold_left (fun acc (a, _, ab) -> acc *. (a -. ab)) 1.0 rows
      in
      (rc, fl, both)

let failure_probability_hetero t mode ~p_of =
  let rc, fl, both = joint p_of t.shape in
  match mode with
  | Read -> 1.0 -. rc
  | Write -> 1.0 -. fl
  | Read_write -> 1.0 -. both

let failure_probability t mode ~p =
  failure_probability_hetero t mode ~p_of:(fun _ -> p)

(* --- Rendering (Figure 1) ---------------------------------------- *)

let render ?quorum t =
  let starred id =
    match quorum with Some q -> Bitset.mem q id | None -> false
  in
  (* Separator positions: boundaries of the outermost sub-objects. *)
  let inner_rows, inner_cols =
    match t.dims with
    | [] | [ _ ] -> (t.global_rows, t.global_cols)
    | (m, n) :: _ -> (t.global_rows / m, t.global_cols / n)
  in
  let buf = Buffer.create 256 in
  for r = 0 to t.global_rows - 1 do
    if r > 0 && r mod inner_rows = 0 then begin
      for c = 0 to t.global_cols - 1 do
        if c > 0 && c mod inner_cols = 0 then Buffer.add_string buf "-+";
        Buffer.add_string buf "----"
      done;
      Buffer.add_char buf '\n'
    end;
    for c = 0 to t.global_cols - 1 do
      if c > 0 && c mod inner_cols = 0 then Buffer.add_string buf " |";
      let id = (r * t.global_cols) + c in
      Buffer.add_string buf
        (Printf.sprintf "%3d%s" id (if starred id then "*" else " "))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
