(** The hierarchical T-grid (section 4.2) — the paper's first
    contribution.

    A mutual-exclusion quorum of the h-grid (full-line plus full
    row-cover) carries redundant elements: the quorum of the T-grid is
    a hierarchical {e full-line} [L] together with a {e partial
    row-cover with respect to [L]} — a row-cover from which every
    element {e above} a topmost element of [L] (Definitions 4.1/4.2:
    lexicographically smaller hierarchical row vector) is dropped.
    Theorem 4.1 / Lemma 4.1: any two such quorums intersect.

    Quorum sizes range from [sqrt n] (a bottom full-line, nothing
    below) to [2 sqrt n - 1]; availability, load and mean quorum size
    all improve on the h-grid (Tables 1-4).

    The module also implements the two selection strategies analyzed in
    section 4.3: the load-optimal strategy that bases full-lines on
    whole global rows with tuned row probabilities
    ({!flat_row_strategy}), and the all-quorums variant that lets each
    full-line fragment drop to a lower local line with small
    probability ({!select_lower_line}). *)

val system : ?name:string -> Hgrid.t -> Quorum.System.t
(** Availability: there is a threshold row [r] with a live full-line
    sitting fully at global rows [>= r] and a live partial row-cover
    for threshold [r] (two O(n) recursive passes).  Quorums are
    enumerated as full-line x partial-cover unions, minimized. *)

val quorums : Hgrid.t -> Quorum.Bitset.t list
(** The minimal T-grid quorums. *)

val flat_row_strategy : Hgrid.t -> Quorum.Strategy.t
(** Section 4.3's load-minimizing strategy: the full-line is a whole
    global row [r], picked with the probability [w_r] that equalizes
    element loads ([w_r = k - S_(r-1)/cols] solved top-down with
    [sum w_r = 1]); the partial cover picks uniform elements in each
    row below [r].  The returned strategy is explicit and exact. *)

val select_lower_line :
  epsilon:float ->
  Hgrid.t ->
  Quorum.Rng.t ->
  live:Quorum.Bitset.t ->
  Quorum.Bitset.t option
(** The section 4.3 variant that uses {e all} quorums: each full-line
    fragment independently drops to a lower local row with probability
    [epsilon] at every level; the partial cover then respects the
    resulting topmost row.  Only fully-live structures are selected. *)
