let parse_spec spec =
  match String.index_opt spec '(' with
  | None -> Ok (String.trim spec, [])
  | Some i ->
      if String.length spec = 0 || spec.[String.length spec - 1] <> ')' then
        Error "Registry: expected name(args)"
      else
        let name = String.sub spec 0 i in
        let args = String.sub spec (i + 1) (String.length spec - i - 2) in
        Ok
          ( String.trim name,
            if String.trim args = "" then []
            else String.split_on_char ',' args |> List.map String.trim )

let int_arg = int_of_string

(* "4x6" -> rows 4, cols 6; a bare int k -> k x k. *)
let dims_arg s =
  match String.split_on_char 'x' s with
  | [ r; c ] -> (int_of_string r, int_of_string c)
  | [ k ] ->
      let k = int_of_string k in
      (k, k)
  | _ -> invalid_arg "Registry: expected RxC"

let ints_dash s = String.split_on_char '-' s |> List.map int_of_string

let triangle_rows n =
  let d = Systems.Triangle.rows_for n in
  if d * (d + 1) / 2 <> n then
    invalid_arg
      (Printf.sprintf "Registry: %d is not a triangular number" n);
  d

let one_int f = function
  | [ n ] -> f (int_arg n)
  | _ -> invalid_arg "Registry: expected one integer argument"

let one_dims f = function
  | [ d ] ->
      let rows, cols = dims_arg d in
      f ~rows ~cols
  | _ -> invalid_arg "Registry: expected RxC dimensions"

(* ------------------------------------------------------------------ *)
(* The catalogue: one entry per spec name, the single source of truth  *)
(* for the CLI help, bench spec validation and the registry tests.     *)
(* ------------------------------------------------------------------ *)

type entry = {
  family : string;
  arity : string;
  example : string;
  doc : string;
  builder : string list -> Quorum.System.t;
}

let entry family arity example doc builder =
  { family; arity; example; doc; builder }

let catalogue =
  [
    entry "majority" "n" "majority(15)"
      "simple majority voting; one process gets 2 votes on even n"
      (one_int Systems.Majority.make);
    entry "majority-plain" "n" "majority-plain(28)"
      "majority of n with no tie-breaking weights"
      (one_int Systems.Majority.make_plain);
    entry "singleton" "n" "singleton(5)"
      "one distinguished process is the only quorum"
      (one_int Systems.Singleton.make);
    entry "voting" "v1-v2-..." "voting(1-1-2)"
      "weighted voting with the given per-process votes"
      (function
        | [ votes ] ->
            Systems.Weighted_voting.system
              ~votes:(Array.of_list (ints_dash votes))
              ()
        | _ -> invalid_arg "Registry: expected votes v1-v2-...");
    entry "hqs" "b1-b2-... | n" "hqs(5-3)"
      "hierarchical quorum system; a bare size is factored as the paper does"
      (function
        | [ branching ] ->
            let branching =
              match ints_dash branching with
              | [ n ] ->
                  (* a bare size: factor as the paper does (5x3, 3x3x3) *)
                  (match n with
                  | 15 -> [ 5; 3 ]
                  | 27 -> [ 3; 3; 3 ]
                  | 9 -> [ 3; 3 ]
                  | n -> [ n ])
              | l -> l
            in
            Systems.Hqs.system ~branching ()
        | branching when branching <> [] ->
            Systems.Hqs.system ~branching:(List.map int_arg branching) ()
        | _ -> invalid_arg "Registry: expected hqs branching");
    entry "cwlog" "n" "cwlog(14)"
      "crumbling-wall CWlog with log-profile row widths"
      (one_int (fun n -> Systems.Cwlog.system ~n ()));
    entry "tree" "n = 2^h - 1" "tree(15)"
      "Agrawal-El Abbadi tree quorums on a complete binary tree"
      (one_int (fun n ->
           let rec height_of k acc =
             if k <= 1 then acc else height_of (k / 2) (acc + 1)
           in
           let h = height_of (n + 1) 0 in
           if (1 lsl h) - 1 <> n then
             invalid_arg "Registry: tree size must be 2^h - 1";
           Systems.Tree_quorum.system ~height:h ()));
    entry "fpp" "n = q^2+q+1" "fpp(13)"
      "finite projective plane of order q; quorums are the lines"
      (one_int (fun n ->
           let rec find q = if (q * q) + q + 1 >= n then q else find (q + 1) in
           let q = find 1 in
           if (q * q) + q + 1 <> n then
             invalid_arg "Registry: fpp size must be q^2+q+1";
           Systems.Fpp.system ~order:q ()));
    entry "triangle" "n (triangular)" "triangle(15)"
      "Lovasz triangle: one full row or one element per row"
      (one_int (fun n -> Systems.Triangle.system ~rows:(triangle_rows n) ()));
    entry "y" "n (triangular)" "y(15)"
      "Y systems: connected left-right-bottom triangle crossings"
      (one_int (fun n -> Systems.Y_system.system ~rows:(triangle_rows n) ()));
    entry "paths" "d  [n = 2d(d+1)]" "paths(3)"
      "Naor-Wool paths: crossing paths in a d x (d+1) grid pair"
      (one_int (fun d -> Systems.Paths.system ~d ()));
    entry "diamond" "n = m^2 - 1" "diamond(8)"
      "Kumar-Cheung diamond hierarchy of half rows"
      (one_int (fun n ->
           let rec find m = if (m * m) - 1 >= n then m else find (m + 1) in
           let m = find 2 in
           if (m * m) - 1 <> n then
             invalid_arg "Registry: diamond size must be m^2 - 1";
           Systems.Diamond.system ~half_rows:m ()));
    entry "wall" "w1-w2-..." "wall(1-2-2-3)"
      "wall with the given row widths: a full row plus one per lower row"
      (function
        | [ widths ] -> Systems.Wall.system (Array.of_list (ints_dash widths))
        | _ -> invalid_arg "Registry: expected wall widths w1-w2-...");
    entry "grid-read" "RxC | k" "grid-read(4x4)"
      "flat grid, read quorums (one element per row)"
      (one_dims (fun ~rows ~cols ->
           Systems.Grid.system ~rows ~cols Systems.Grid.Read));
    entry "grid-write" "RxC | k" "grid-write(4x4)"
      "flat grid, write quorums (one full row + row cover)"
      (one_dims (fun ~rows ~cols ->
           Systems.Grid.system ~rows ~cols Systems.Grid.Write));
    entry "grid-rw" "RxC | k" "grid-rw(4x4)"
      "flat grid, symmetric read/write quorums"
      (one_dims (fun ~rows ~cols ->
           Systems.Grid.system ~rows ~cols Systems.Grid.Read_write));
    entry "tgrid" "RxC | k" "tgrid(4x4)"
      "flat T-grid: full line plus the row cover below it"
      (one_dims (fun ~rows ~cols -> Systems.Grid.t_grid ~rows ~cols ()));
    entry "hgrid" "RxC | k" "hgrid(6x4)"
      "hierarchical grid (sect. 4.1), 2x2 logical blocks, read/write"
      (one_dims (fun ~rows ~cols ->
           Hgrid.rw_system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry "hgrid-read" "RxC | k" "hgrid-read(6x4)"
      "hierarchical grid, read quorums"
      (one_dims (fun ~rows ~cols ->
           Hgrid.read_system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry "hgrid-write" "RxC | k" "hgrid-write(6x4)"
      "hierarchical grid, write quorums"
      (one_dims (fun ~rows ~cols ->
           Hgrid.write_system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry "htgrid" "RxC | k" "htgrid(4x4)"
      "hierarchical T-grid (sect. 4.2), the paper's first construction"
      (one_dims (fun ~rows ~cols ->
           Htgrid.system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry "htriang" "n (triangular)" "htriang(15)"
      "hierarchical triangle (sect. 5), the paper's second construction"
      (one_int (fun n ->
           Htriang.system (Htriang.standard ~rows:(triangle_rows n) ())));
  ]

let find name = List.find_opt (fun e -> e.family = name) catalogue

let build spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok (name, args) -> (
      match find name with
      | None ->
          Error
            (Printf.sprintf
               "Registry: unknown system family %s (known: %s)" name
               (String.concat ", " (List.map (fun e -> e.family) catalogue)))
      | Some e -> (
          try Ok (e.builder args) with
          | Invalid_argument msg | Failure msg -> Error msg))

let build_exn spec =
  match build spec with
  | Ok s -> s
  | Error msg -> invalid_arg msg

let paper_lineup_15 () =
  List.map build_exn
    [
      "majority(15)";
      "hqs(5-3)";
      "cwlog(14)";
      "htgrid(4x4)";
      "paths(2)";
      "y(15)";
      "htriang(15)";
    ]

let paper_lineup_28 () =
  List.map build_exn
    [
      "majority(28)";
      "hqs(3-3-3)";
      "cwlog(29)";
      "htgrid(5x5)";
      "paths(3)";
      "y(28)";
      "htriang(28)";
    ]
