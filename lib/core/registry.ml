let parse_spec spec =
  match String.index_opt spec '(' with
  | None -> Ok (String.trim spec, [])
  | Some i ->
      if String.length spec = 0 || spec.[String.length spec - 1] <> ')' then
        Error "Registry: expected name(args)"
      else
        let name = String.sub spec 0 i in
        let args = String.sub spec (i + 1) (String.length spec - i - 2) in
        Ok
          ( String.trim name,
            if String.trim args = "" then []
            else String.split_on_char ',' args |> List.map String.trim )

let int_arg = int_of_string

(* "4x6" -> rows 4, cols 6; a bare int k -> k x k. *)
let dims_arg s =
  match String.split_on_char 'x' s with
  | [ r; c ] -> (int_of_string r, int_of_string c)
  | [ k ] ->
      let k = int_of_string k in
      (k, k)
  | _ -> invalid_arg "Registry: expected RxC"

let ints_dash s = String.split_on_char '-' s |> List.map int_of_string

let triangle_rows n =
  let d = Systems.Triangle.rows_for n in
  if d * (d + 1) / 2 <> n then
    invalid_arg
      (Printf.sprintf "Registry: %d is not a triangular number" n);
  d

let build_parsed name args =
  match (name, args) with
  | "majority", [ n ] -> Systems.Majority.make (int_arg n)
  | "majority-plain", [ n ] -> Systems.Majority.make_plain (int_arg n)
  | "singleton", [ n ] -> Systems.Singleton.make (int_arg n)
  | "voting", [ votes ] ->
      Systems.Weighted_voting.system
        ~votes:(Array.of_list (ints_dash votes))
        ()
  | "hqs", [ branching ] ->
      let branching =
        match ints_dash branching with
        | [ n ] ->
            (* a bare size: factor as the paper does (5x3, 3x3x3) *)
            (match n with
            | 15 -> [ 5; 3 ]
            | 27 -> [ 3; 3; 3 ]
            | 9 -> [ 3; 3 ]
            | n -> [ n ])
        | l -> l
      in
      Systems.Hqs.system ~branching ()
  | "hqs", branching when branching <> [] ->
      Systems.Hqs.system ~branching:(List.map int_arg branching) ()
  | "cwlog", [ n ] -> Systems.Cwlog.system ~n:(int_arg n) ()
  | "tree", [ n ] ->
      let n = int_arg n in
      let rec height_of k acc = if k <= 1 then acc else height_of (k / 2) (acc + 1) in
      let h = height_of (n + 1) 0 in
      if (1 lsl h) - 1 <> n then
        invalid_arg "Registry: tree size must be 2^h - 1";
      Systems.Tree_quorum.system ~height:h ()
  | "fpp", [ n ] ->
      let n = int_arg n in
      let rec find q = if q * q + q + 1 >= n then q else find (q + 1) in
      let q = find 1 in
      if q * q + q + 1 <> n then
        invalid_arg "Registry: fpp size must be q^2+q+1";
      Systems.Fpp.system ~order:q ()
  | "triangle", [ n ] ->
      Systems.Triangle.system ~rows:(triangle_rows (int_arg n)) ()
  | "y", [ n ] -> Systems.Y_system.system ~rows:(triangle_rows (int_arg n)) ()
  | "paths", [ d ] -> Systems.Paths.system ~d:(int_arg d) ()
  | "diamond", [ n ] ->
      let n = int_arg n in
      let rec find m = if m * m - 1 >= n then m else find (m + 1) in
      let m = find 2 in
      if m * m - 1 <> n then
        invalid_arg "Registry: diamond size must be m^2 - 1";
      Systems.Diamond.system ~half_rows:m ()
  | "wall", [ widths ] ->
      Systems.Wall.system (Array.of_list (ints_dash widths))
  | "grid-read", [ d ] ->
      let rows, cols = dims_arg d in
      Systems.Grid.system ~rows ~cols Systems.Grid.Read
  | "grid-write", [ d ] ->
      let rows, cols = dims_arg d in
      Systems.Grid.system ~rows ~cols Systems.Grid.Write
  | "grid-rw", [ d ] ->
      let rows, cols = dims_arg d in
      Systems.Grid.system ~rows ~cols Systems.Grid.Read_write
  | "tgrid", [ d ] ->
      let rows, cols = dims_arg d in
      Systems.Grid.t_grid ~rows ~cols ()
  | "hgrid", [ d ] ->
      let rows, cols = dims_arg d in
      Hgrid.rw_system (Hgrid.auto_2x2 ~rows ~cols ())
  | "hgrid-read", [ d ] ->
      let rows, cols = dims_arg d in
      Hgrid.read_system (Hgrid.auto_2x2 ~rows ~cols ())
  | "hgrid-write", [ d ] ->
      let rows, cols = dims_arg d in
      Hgrid.write_system (Hgrid.auto_2x2 ~rows ~cols ())
  | "htgrid", [ d ] ->
      let rows, cols = dims_arg d in
      Htgrid.system (Hgrid.auto_2x2 ~rows ~cols ())
  | "htriang", [ n ] ->
      Htriang.system (Htriang.standard ~rows:(triangle_rows (int_arg n)) ())
  | _ ->
      invalid_arg
        (Printf.sprintf "Registry: unknown system spec %s(%s)" name
           (String.concat "," args))

let build spec =
  match parse_spec spec with
  | Ok (name, args) -> (
      try Ok (build_parsed name args) with
      | Invalid_argument msg | Failure msg -> Error msg)
  | Error _ as e -> e

let build_exn spec =
  match build spec with
  | Ok s -> s
  | Error msg -> invalid_arg msg

let known () =
  [
    ("majority", "majority(15)");
    ("majority-plain", "majority-plain(28)");
    ("singleton", "singleton(5)");
    ("voting", "voting(1-1-2)");
    ("hqs", "hqs(5-3) or hqs(15)");
    ("cwlog", "cwlog(14)");
    ("tree", "tree(15)");
    ("fpp", "fpp(13)");
    ("triangle", "triangle(15)");
    ("y", "y(15)");
    ("paths", "paths(3)  [n = 2d(d+1)]");
    ("diamond", "diamond(8)");
    ("wall", "wall(1-2-2-3)");
    ("grid-read/write/rw", "grid-rw(4x4)");
    ("tgrid", "tgrid(4x4)");
    ("hgrid[-read|-write]", "hgrid(6x4)");
    ("htgrid", "htgrid(4x4)");
    ("htriang", "htriang(15)");
  ]

let paper_lineup_15 () =
  List.map build_exn
    [
      "majority(15)";
      "hqs(5-3)";
      "cwlog(14)";
      "htgrid(4x4)";
      "paths(2)";
      "y(15)";
      "htriang(15)";
    ]

let paper_lineup_28 () =
  List.map build_exn
    [
      "majority(28)";
      "hqs(3-3-3)";
      "cwlog(29)";
      "htgrid(5x5)";
      "paths(3)";
      "y(28)";
      "htriang(28)";
    ]
