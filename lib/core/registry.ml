let parse_spec spec =
  match String.index_opt spec '(' with
  | None -> Ok (String.trim spec, [])
  | Some i ->
      if String.length spec = 0 || spec.[String.length spec - 1] <> ')' then
        Error "Registry: expected name(args)"
      else
        let name = String.sub spec 0 i in
        let args = String.sub spec (i + 1) (String.length spec - i - 2) in
        Ok
          ( String.trim name,
            if String.trim args = "" then []
            else String.split_on_char ',' args |> List.map String.trim )

let int_arg = int_of_string

(* "4x6" -> rows 4, cols 6; a bare int k -> k x k. *)
let dims_arg s =
  match String.split_on_char 'x' s with
  | [ r; c ] -> (int_of_string r, int_of_string c)
  | [ k ] ->
      let k = int_of_string k in
      (k, k)
  | _ -> invalid_arg "Registry: expected RxC"

let ints_dash s = String.split_on_char '-' s |> List.map int_of_string

let triangle_rows n =
  let d = Systems.Triangle.rows_for n in
  if d * (d + 1) / 2 <> n then
    invalid_arg
      (Printf.sprintf "Registry: %d is not a triangular number" n);
  d

let one_int f = function
  | [ n ] -> f (int_arg n)
  | _ -> invalid_arg "Registry: expected one integer argument"

let one_dims f = function
  | [ d ] ->
      let rows, cols = dims_arg d in
      f ~rows ~cols
  | _ -> invalid_arg "Registry: expected RxC dimensions"

(* ------------------------------------------------------------------ *)
(* The catalogue: one entry per spec name, the single source of truth  *)
(* for the CLI help, bench spec validation and the registry tests.     *)
(* ------------------------------------------------------------------ *)

type kind = Coterie | Read_half of string | Write_half of string

type entry = {
  family : string;
  arity : string;
  example : string;
  doc : string;
  kind : kind;
  builder : string list -> Quorum.System.t;
  specs_for : int -> string list;
}

(* --- programmatic instantiation proposals -------------------------- *)

(* specs_for proposes candidate specs for a universe of exactly [n]
   processes; [instantiations] validates every proposal by actually
   building it, so a proposal function may be naive (e.g. propose
   tree(n) for every n and let the builder reject non 2^h - 1 sizes). *)

let self family n = [ Printf.sprintf "%s(%d)" family n ]

(* Every factor pair r x c = n with r, c >= 2, both orientations. *)
let dim_specs family n =
  let rec collect r acc =
    if r > n / 2 then List.rev acc
    else if n mod r = 0 && n / r >= 2 then
      collect (r + 1) (Printf.sprintf "%s(%dx%d)" family r (n / r) :: acc)
    else collect (r + 1) acc
  in
  collect 2 []

(* Ordered factorizations of n into >= 2 factors, each >= 3 — the HQS
   trees over exactly n leaves. *)
let hqs_specs n =
  (* All ordered lists [f1; ...; fk] with each fi >= 3 and product n. *)
  let rec factorizations n =
    if n < 3 then []
    else
      let rec with_first f acc =
        if f > n then List.rev acc
        else if n mod f = 0 then
          let rest = n / f in
          if rest = 1 then with_first (f + 1) ([ f ] :: acc)
          else
            with_first (f + 1)
              (List.rev_append
                 (List.map (fun t -> f :: t) (factorizations rest))
                 acc)
        else with_first (f + 1) acc
      in
      with_first 3 []
  in
  factorizations n
  |> List.filter (fun fs -> List.length fs >= 2)
  |> List.map (fun fs ->
         Printf.sprintf "hqs(%s)"
           (String.concat "-" (List.map string_of_int fs)))

let triangular_rows n =
  let d = Systems.Triangle.rows_for n in
  if d * (d + 1) / 2 = n then Some d else None

let paths_specs n =
  (* n = 2d(d+1) *)
  let rec find d = if 2 * d * (d + 1) >= n then d else find (d + 1) in
  let d = find 1 in
  if 2 * d * (d + 1) = n then [ Printf.sprintf "paths(%d)" d ] else []

let voting_specs n =
  if n < 1 then []
  else
    [
      Printf.sprintf "voting(%s)"
        (String.concat "-" (List.init n (fun _ -> "1")));
    ]

let wall_specs n =
  match triangular_rows n with
  | Some d when d >= 2 ->
      [
        Printf.sprintf "wall(%s)"
          (String.concat "-" (List.init d (fun i -> string_of_int (i + 1))));
      ]
  | _ -> []

let entry ?(kind = Coterie) ?(specs_for = fun _ -> []) family arity example
    doc builder =
  { family; arity; example; doc; kind; builder; specs_for }

let catalogue =
  [
    entry ~specs_for:(self "majority") "majority" "n" "majority(15)"
      "simple majority voting; one process gets 2 votes on even n"
      (one_int Systems.Majority.make);
    entry ~specs_for:(self "majority-plain") "majority-plain" "n"
      "majority-plain(28)" "majority of n with no tie-breaking weights"
      (one_int Systems.Majority.make_plain);
    entry ~specs_for:(self "singleton") "singleton" "n" "singleton(5)"
      "one distinguished process is the only quorum"
      (one_int Systems.Singleton.make);
    entry ~specs_for:voting_specs "voting" "v1-v2-..." "voting(1-1-2)"
      "weighted voting with the given per-process votes"
      (function
        | [ votes ] ->
            Systems.Weighted_voting.system
              ~votes:(Array.of_list (ints_dash votes))
              ()
        | _ -> invalid_arg "Registry: expected votes v1-v2-...");
    entry ~specs_for:hqs_specs "hqs" "b1-b2-... | n" "hqs(5-3)"
      "hierarchical quorum system; a bare size is factored as the paper does"
      (function
        | [ branching ] ->
            let branching =
              match ints_dash branching with
              | [ n ] ->
                  (* a bare size: factor as the paper does (5x3, 3x3x3) *)
                  (match n with
                  | 15 -> [ 5; 3 ]
                  | 27 -> [ 3; 3; 3 ]
                  | 9 -> [ 3; 3 ]
                  | n -> [ n ])
              | l -> l
            in
            Systems.Hqs.system ~branching ()
        | branching when branching <> [] ->
            Systems.Hqs.system ~branching:(List.map int_arg branching) ()
        | _ -> invalid_arg "Registry: expected hqs branching");
    entry ~specs_for:(self "cwlog") "cwlog" "n" "cwlog(14)"
      "crumbling-wall CWlog with log-profile row widths"
      (one_int (fun n -> Systems.Cwlog.system ~n ()));
    entry ~specs_for:(self "tree") "tree" "n = 2^h - 1" "tree(15)"
      "Agrawal-El Abbadi tree quorums on a complete binary tree"
      (one_int (fun n ->
           let rec height_of k acc =
             if k <= 1 then acc else height_of (k / 2) (acc + 1)
           in
           let h = height_of (n + 1) 0 in
           if (1 lsl h) - 1 <> n then
             invalid_arg "Registry: tree size must be 2^h - 1";
           Systems.Tree_quorum.system ~height:h ()));
    entry ~specs_for:(self "fpp") "fpp" "n = q^2+q+1" "fpp(13)"
      "finite projective plane of order q; quorums are the lines"
      (one_int (fun n ->
           let rec find q = if (q * q) + q + 1 >= n then q else find (q + 1) in
           let q = find 1 in
           if (q * q) + q + 1 <> n then
             invalid_arg "Registry: fpp size must be q^2+q+1";
           Systems.Fpp.system ~order:q ()));
    entry ~specs_for:(self "triangle") "triangle" "n (triangular)"
      "triangle(15)" "Lovasz triangle: one full row or one element per row"
      (one_int (fun n -> Systems.Triangle.system ~rows:(triangle_rows n) ()));
    entry ~specs_for:(self "y") "y" "n (triangular)" "y(15)"
      "Y systems: connected left-right-bottom triangle crossings"
      (one_int (fun n -> Systems.Y_system.system ~rows:(triangle_rows n) ()));
    entry ~specs_for:paths_specs "paths" "d  [n = 2d(d+1)]" "paths(3)"
      "Naor-Wool paths: crossing paths in a d x (d+1) grid pair"
      (one_int (fun d -> Systems.Paths.system ~d ()));
    entry ~specs_for:(self "diamond") "diamond" "n = m^2 - 1" "diamond(8)"
      "Kumar-Cheung diamond hierarchy of half rows"
      (one_int (fun n ->
           let rec find m = if (m * m) - 1 >= n then m else find (m + 1) in
           let m = find 2 in
           if (m * m) - 1 <> n then
             invalid_arg "Registry: diamond size must be m^2 - 1";
           Systems.Diamond.system ~half_rows:m ()));
    entry ~specs_for:wall_specs "wall" "w1-w2-..." "wall(1-2-2-3)"
      "wall with the given row widths: a full row plus one per lower row"
      (function
        | [ widths ] -> Systems.Wall.system (Array.of_list (ints_dash widths))
        | _ -> invalid_arg "Registry: expected wall widths w1-w2-...");
    entry ~kind:(Read_half "grid-write") ~specs_for:(dim_specs "grid-read")
      "grid-read" "RxC | k" "grid-read(4x4)"
      "flat grid, read quorums (one element per row)"
      (one_dims (fun ~rows ~cols ->
           Systems.Grid.system ~rows ~cols Systems.Grid.Read));
    entry ~kind:(Write_half "grid-read") ~specs_for:(dim_specs "grid-write")
      "grid-write" "RxC | k" "grid-write(4x4)"
      "flat grid, write quorums (one full row + row cover)"
      (one_dims (fun ~rows ~cols ->
           Systems.Grid.system ~rows ~cols Systems.Grid.Write));
    entry ~specs_for:(dim_specs "grid-rw") "grid-rw" "RxC | k" "grid-rw(4x4)"
      "flat grid, symmetric read/write quorums"
      (one_dims (fun ~rows ~cols ->
           Systems.Grid.system ~rows ~cols Systems.Grid.Read_write));
    entry ~specs_for:(dim_specs "tgrid") "tgrid" "RxC | k" "tgrid(4x4)"
      "flat T-grid: full line plus the row cover below it"
      (one_dims (fun ~rows ~cols -> Systems.Grid.t_grid ~rows ~cols ()));
    entry ~specs_for:(dim_specs "hgrid") "hgrid" "RxC | k" "hgrid(6x4)"
      "hierarchical grid (sect. 4.1), 2x2 logical blocks, read/write"
      (one_dims (fun ~rows ~cols ->
           Hgrid.rw_system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry ~kind:(Read_half "hgrid-write") ~specs_for:(dim_specs "hgrid-read")
      "hgrid-read" "RxC | k" "hgrid-read(6x4)"
      "hierarchical grid, read quorums"
      (one_dims (fun ~rows ~cols ->
           Hgrid.read_system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry ~kind:(Write_half "hgrid-read") ~specs_for:(dim_specs "hgrid-write")
      "hgrid-write" "RxC | k" "hgrid-write(6x4)"
      "hierarchical grid, write quorums"
      (one_dims (fun ~rows ~cols ->
           Hgrid.write_system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry ~specs_for:(dim_specs "htgrid") "htgrid" "RxC | k" "htgrid(4x4)"
      "hierarchical T-grid (sect. 4.2), the paper's first construction"
      (one_dims (fun ~rows ~cols ->
           Htgrid.system (Hgrid.auto_2x2 ~rows ~cols ())));
    entry ~specs_for:(self "htriang") "htriang" "n (triangular)" "htriang(15)"
      "hierarchical triangle (sect. 5), the paper's second construction"
      (one_int (fun n ->
           Htriang.system (Htriang.standard ~rows:(triangle_rows n) ())));
    entry "thresh" "n-r" "thresh(15-8)"
      "r-of-n threshold; r <= n/2 halves are paired by the optimizer"
      (function
        | [ arg ] -> (
            match ints_dash arg with
            | [ n; r ] -> Systems.Thresh.system ~n ~r ()
            | _ -> invalid_arg "Registry: expected thresh(n-r)")
        | _ -> invalid_arg "Registry: expected thresh(n-r)");
  ]

let find name = List.find_opt (fun e -> e.family = name) catalogue

let build spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok (name, args) -> (
      match find name with
      | None ->
          Error
            (Printf.sprintf
               "Registry: unknown system family %s (known: %s)" name
               (String.concat ", " (List.map (fun e -> e.family) catalogue)))
      | Some e -> (
          try Ok (e.builder args) with
          | Invalid_argument msg | Failure msg -> Error msg))

let build_exn spec =
  match build spec with
  | Ok s -> s
  | Error msg -> invalid_arg msg

(* Proposals are validated by actually building them: a spec survives
   only if its builder succeeds AND yields a system over exactly [n]
   processes, so each family's size constraints live in one place (the
   builder), not here. *)
let instantiations ~n =
  List.filter_map
    (fun e ->
      let ok =
        List.filter
          (fun spec ->
            match build spec with Ok s -> s.Quorum.System.n = n | Error _ -> false)
          (e.specs_for n)
      in
      if ok = [] then None else Some (e, ok))
    catalogue

let paper_lineup_15 () =
  List.map build_exn
    [
      "majority(15)";
      "hqs(5-3)";
      "cwlog(14)";
      "htgrid(4x4)";
      "paths(2)";
      "y(15)";
      "htriang(15)";
    ]

let paper_lineup_28 () =
  List.map build_exn
    [
      "majority(28)";
      "hqs(3-3-3)";
      "cwlog(29)";
      "htgrid(5x5)";
      "paths(3)";
      "y(28)";
      "htriang(28)";
    ]
