module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng
module Combinat = Quorum.Combinat

type node =
  | Elem of int
  | Split of { t1 : node; grid : int array array; t2 : node }

type t = { root : node; n : int; rows : int }

(* Build from explicit rows of ids; the recursive split of section 5.
   [t1_rows j] gives the number of top rows forming sub-triangle 1
   (the paper uses floor(j/2)). *)
let rec build ~t1_rows rows =
  let build = build ~t1_rows in
  match Array.length rows with
  | 0 -> invalid_arg "Htriang.build: empty"
  | 1 ->
      (match rows.(0) with
      | [| e |] -> Elem e
      | _ -> invalid_arg "Htriang.build: malformed triangle")
  | j ->
      let half = t1_rows j in
      if half < 1 || half >= j then invalid_arg "Htriang.build: bad split";
      let t1 = build (Array.sub rows 0 half) in
      let lower = Array.sub rows half (j - half) in
      let grid = Array.map (fun row -> Array.sub row 0 half) lower in
      let t2 =
        build
          (Array.map
             (fun row -> Array.sub row half (Array.length row - half))
             lower)
      in
      Split { t1; grid; t2 }

let standard ?(split = `Floor) ~rows () =
  if rows < 1 then invalid_arg "Htriang.standard: rows >= 1 required";
  let t1_rows j = match split with `Floor -> j / 2 | `Ceil -> (j + 1) / 2 in
  let ids =
    Array.init rows (fun r ->
        Array.init (r + 1) (fun c -> (r * (r + 1) / 2) + c))
  in
  { root = build ~t1_rows ids; n = rows * (rows + 1) / 2; rows }

(* --- Availability ------------------------------------------------ *)

let grid_cover_ok mem grid =
  Array.for_all (fun row -> Array.exists mem row) grid

let grid_line_ok mem grid = Array.exists (fun row -> Array.for_all mem row) grid

let rec avail_node mem = function
  | Elem e -> mem e
  | Split { t1; grid; t2 } ->
      let a = avail_node mem t1 in
      let b = avail_node mem t2 in
      (a && b)
      || (a && grid_cover_ok mem grid)
      || (b && grid_line_ok mem grid)

let avail t mem = avail_node mem t.root

(* --- Quorum enumeration ------------------------------------------ *)

let grid_covers grid =
  Array.to_list grid
  |> List.map Array.to_list
  |> Combinat.product

let grid_lines grid = Array.to_list grid |> List.map Array.to_list

let rec node_quorums = function
  | Elem e -> [ [ e ] ]
  | Split { t1; grid; t2 } ->
      let q1 = node_quorums t1 and q2 = node_quorums t2 in
      let pairs a b = List.concat_map (fun x -> List.map (fun y -> x @ y) b) a in
      pairs q1 q2 @ pairs q1 (grid_covers grid) @ pairs q2 (grid_lines grid)

let quorums t = List.map (Bitset.of_list t.n) (node_quorums t.root)

(* --- Exact failure probability ----------------------------------- *)

let rec avail_prob p_of = function
  | Elem e -> 1.0 -. p_of e
  | Split { t1; grid; t2 } ->
      let a = avail_prob p_of t1 and b = avail_prob p_of t2 in
      (* Row-cover: every grid row has a survivor; full-line: some row
         fully survives.  Rows are disjoint, hence independent. *)
      let r = ref 1.0 and no_full = ref 1.0 in
      Array.iter
        (fun row ->
          let all_dead = ref 1.0 and all_live = ref 1.0 in
          Array.iter
            (fun e ->
              let pe = p_of e in
              all_dead := !all_dead *. pe;
              all_live := !all_live *. (1.0 -. pe))
            row;
          r := !r *. (1.0 -. !all_dead);
          no_full := !no_full *. (1.0 -. !all_live))
        grid;
      let r = !r and f = 1.0 -. !no_full in
      (a *. b) +. (a *. r) +. (b *. f) -. (a *. b *. r) -. (a *. b *. f)

let failure_probability_hetero t ~p_of = 1.0 -. avail_prob p_of t.root
let failure_probability t ~p = failure_probability_hetero t ~p_of:(fun _ -> p)

(* --- Strategy ----------------------------------------------------- *)

type weights = { w1 : float; w2 : float; w3 : float; k : float }

let split_weights ~c1 ~c2 ~c3 ~q1 ~q2 ~q3l ~q3r =
  let alpha = float_of_int c1 /. float_of_int q1 in
  let beta = float_of_int c2 /. float_of_int q2 in
  let q3l = float_of_int q3l and q3r = float_of_int q3r in
  let k =
    (q3r +. q3l) /. (float_of_int c3 +. (q3r *. beta) +. (q3l *. alpha))
  in
  {
    w1 = ((alpha +. beta) *. k) -. 1.0;
    w2 = 1.0 -. (beta *. k);
    w3 = 1.0 -. (alpha *. k);
    k;
  }

let rec node_size = function
  | Elem _ -> 1
  | Split { t1; grid; t2 } ->
      node_size t1 + node_size t2
      + Array.fold_left (fun acc row -> acc + Array.length row) 0 grid

(* Quorum cardinality along the method-2 shape (quorum of T1 plus a
   grid row-cover).  On standard triangles every method gives the same
   size, so this is exact there; after growth it is the proxy used for
   strategy weights. *)
let rec quorum_size = function
  | Elem _ -> 1
  | Split { t1; grid; _ } -> quorum_size t1 + Array.length grid

let weights_of_split t1 grid t2 =
  let c1 = node_size t1 and c2 = node_size t2 in
  let c3 = Array.fold_left (fun acc row -> acc + Array.length row) 0 grid in
  split_weights ~c1 ~c2 ~c3 ~q1:(quorum_size t1) ~q2:(quorum_size t2)
    ~q3l:(Array.length grid.(0))
    ~q3r:(Array.length grid)

let strategy_loads t =
  let loads = Array.make t.n 0.0 in
  let rec add node w =
    match node with
    | Elem e -> loads.(e) <- loads.(e) +. w
    | Split { t1; grid; t2 } ->
        let { w1; w2; w3; k = _ } = weights_of_split t1 grid t2 in
        add t1 (w *. (w1 +. w2));
        add t2 (w *. (w1 +. w3));
        let rows = float_of_int (Array.length grid) in
        let cols = float_of_int (Array.length grid.(0)) in
        Array.iter
          (fun row ->
            Array.iter
              (fun e ->
                loads.(e) <-
                  loads.(e) +. (w *. ((w2 /. cols) +. (w3 /. rows))))
              row)
          grid
  in
  add t.root 1.0;
  loads

let system_load t =
  match t.root with
  | Elem _ -> 1.0
  | Split { t1; grid; t2 } -> (weights_of_split t1 grid t2).k

(* --- Live-aware selection ---------------------------------------- *)

let select_grid_cover rng mem grid =
  let pick_row row =
    let live = Array.of_list (List.filter mem (Array.to_list row)) in
    if Array.length live = 0 then None else Some (Rng.pick rng live)
  in
  let rec go i acc =
    if i = Array.length grid then Some acc
    else
      match pick_row grid.(i) with
      | None -> None
      | Some e -> go (i + 1) (e :: acc)
  in
  go 0 []

let select_grid_line rng mem grid =
  let full =
    Array.to_list grid |> List.filter (fun row -> Array.for_all mem row)
  in
  match full with
  | [] -> None
  | _ -> Some (Array.to_list (Rng.pick rng (Array.of_list full)))

let rec select_node rng mem = function
  | Elem e -> if mem e then Some [ e ] else None
  | Split { t1; grid; t2 } ->
      let a = avail_node mem t1 and b = avail_node mem t2 in
      let rc = grid_cover_ok mem grid and fl = grid_line_ok mem grid in
      let { w1; w2; w3; k = _ } = weights_of_split t1 grid t2 in
      let methods =
        List.filter
          (fun (w, feasible, _) -> feasible && w > 0.0)
          [
            ((w1 : float), a && b, `M1);
            (w2, a && rc, `M2);
            (w3, b && fl, `M3);
          ]
      in
      if methods = [] then None
      else begin
        let weights = Array.of_list (List.map (fun (w, _, _) -> w) methods) in
        let _, _, m =
          List.nth methods (Rng.pick_weighted rng ~weights)
        in
        let join x y =
          match (x, y) with Some x, Some y -> Some (x @ y) | _ -> None
        in
        match m with
        | `M1 -> join (select_node rng mem t1) (select_node rng mem t2)
        | `M2 -> join (select_node rng mem t1) (select_grid_cover rng mem grid)
        | `M3 -> join (select_node rng mem t2) (select_grid_line rng mem grid)
      end

let select t rng ~live =
  Option.map (Bitset.of_list t.n)
    (select_node rng (Bitset.mem live) t.root)

let system ?name t =
  let name =
    match name with Some s -> s | None -> Printf.sprintf "h-triang(%d)" t.n
  in
  let avail_mask =
    if t.n <= Bitset.bits_per_word then
      Some (fun mask -> avail_node (fun i -> mask land (1 lsl i) <> 0) t.root)
    else None
  in
  System.make ~name ~n:t.n
    ~avail:(fun live -> avail_node (Bitset.mem live) t.root)
    ?avail_mask
    ~min_quorums:(lazy (quorums t))
    ~select:(select t) ()

(* --- Growth rules ------------------------------------------------- *)

let grow t rewrite =
  let next = ref t.n in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let replaced = ref false in
  let rec go node =
    if !replaced then node
    else
      match rewrite fresh node with
      | Some node' ->
          replaced := true;
          node'
      | None ->
          (match node with
          | Elem _ -> node
          | Split s ->
              let t1 = go s.t1 in
              let t2 = if !replaced then s.t2 else go s.t2 in
              Split { s with t1; t2 })
  in
  let root = go t.root in
  if !replaced then Some { root; n = !next; rows = t.rows } else None

let grow_unit_triangle t =
  grow t (fun fresh node ->
      match node with
      | Elem e ->
          Some
            (Split
               { t1 = Elem e; grid = [| [| fresh () |] |]; t2 = Elem (fresh ()) })
      | Split _ -> None)

let grow_unit_grid t =
  grow t (fun fresh node ->
      match node with
      | Split ({ grid = [| [| e |] |]; _ } as s) ->
          Some (Split { s with grid = [| [| e; fresh () |] |] })
      | Elem _ | Split _ -> None)

let grow_square_grid t =
  grow t (fun fresh node ->
      match node with
      | Split ({ grid; _ } as s)
        when Array.length grid = Array.length grid.(0) ->
          let m = Array.length grid in
          let grid' =
            Array.init (m + 1) (fun r ->
                Array.init (m + 1) (fun c ->
                    if r < m && c < m then grid.(r).(c) else fresh ()))
          in
          Some (Split { s with grid = grid' })
      | Elem _ | Split _ -> None)

(* --- Shrink rules (structural inverses of growth) ------------------ *)

let rec collect_ids acc = function
  | Elem e -> e :: acc
  | Split { t1; grid; t2 } ->
      let acc = collect_ids acc t1 in
      let acc =
        Array.fold_left
          (fun acc row -> Array.fold_left (fun a e -> e :: a) acc row)
          acc grid
      in
      collect_ids acc t2

let rec map_ids f = function
  | Elem e -> Elem (f e)
  | Split { t1; grid; t2 } ->
      Split
        {
          t1 = map_ids f t1;
          grid = Array.map (Array.map f) grid;
          t2 = map_ids f t2;
        }

(* Mirror of [grow]: rewrite the first (DFS) matching site, then
   compact the surviving ids order-preservingly so the result is again
   a system over a contiguous prefix [0, n).  Compaction is safe for
   online use because Reconfig carries state across epochs by
   seal / install, never by per-node identity. *)
let shrink t rewrite =
  let replaced = ref false in
  let rec go node =
    if !replaced then node
    else
      match rewrite node with
      | Some node' ->
          replaced := true;
          node'
      | None ->
          (match node with
          | Elem _ -> node
          | Split s ->
              let t1 = go s.t1 in
              let t2 = if !replaced then s.t2 else go s.t2 in
              Split { s with t1; t2 })
  in
  let root = go t.root in
  if not !replaced then None
  else begin
    let ids = List.sort_uniq compare (collect_ids [] root) in
    let remap = Hashtbl.create (List.length ids) in
    List.iteri (fun i e -> Hashtbl.add remap e i) ids;
    Some
      {
        root = map_ids (Hashtbl.find remap) root;
        n = List.length ids;
        rows = t.rows;
      }
  end

let shrink_unit_triangle t =
  shrink t (function
    | Split { t1 = Elem e; grid = [| [| _ |] |]; t2 = Elem _ } ->
        Some (Elem e)
    | Elem _ | Split _ -> None)

let shrink_unit_grid t =
  shrink t (function
    | Split ({ grid = [| [| a; _ |] |]; _ } as s) ->
        Some (Split { s with grid = [| [| a |] |] })
    | Elem _ | Split _ -> None)

let shrink_square_grid t =
  shrink t (function
    | Split ({ grid; _ } as s)
      when Array.length grid >= 2 && Array.length grid = Array.length grid.(0)
      ->
        let m = Array.length grid in
        Some
          (Split
             { s with grid = Array.init (m - 1) (fun r -> Array.sub grid.(r) 0 (m - 1)) })
    | Elem _ | Split _ -> None)

(* --- Rendering (Figure 2) ----------------------------------------- *)

let render t =
  let in_t1, in_grid =
    match t.root with
    | Elem _ -> ((fun _ -> false), fun _ -> false)
    | Split { t1; grid; _ } ->
        let s1 = collect_ids [] t1 in
        let sg =
          Array.fold_left
            (fun acc row -> Array.fold_left (fun a e -> e :: a) acc row)
            [] grid
        in
        ((fun e -> List.mem e s1), fun e -> List.mem e sg)
  in
  let buf = Buffer.create 256 in
  (* Only standard layouts know their coordinates; render by the
     row-major id formula, which holds for standard triangles. *)
  for r = 0 to t.rows - 1 do
    Buffer.add_string buf (String.make (2 * (t.rows - 1 - r)) ' ');
    for c = 0 to r do
      let e = (r * (r + 1) / 2) + c in
      let cell =
        if in_t1 e then Printf.sprintf " %2d " e
        else if in_grid e then Printf.sprintf "[%2d]" e
        else Printf.sprintf "(%2d)" e
      in
      Buffer.add_string buf cell
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
