(** The hierarchical grid of Kumar & Cheung (1991), section 4.1 of the
    paper.

    Processes are the level-0 objects; a logical object at level [i] is
    a grid of [m_i x n_i] objects of level [i-1].  Quorums are obtained
    recursively from the top object:

    - a {e row-cover} takes a row-cover in at least one object of every
      row (level 0: the object itself) — the {e read} quorum;
    - a {e full-line} takes a full-line in all objects of some row —
      the {e write} quorum;
    - a {e read-write} quorum is the union of a row-cover and a
      full-line.

    The module also exposes the structural queries the hierarchical
    T-grid of section 4.2 needs: global positions (Definition 4.1), the
    highest base row of a live full-line, and threshold-restricted
    row-covers (partial row-covers). *)

type shape = private
  | Leaf of { id : int; row : int; col : int }
      (** A process with its global position. *)
  | Grid of { cells : shape array array; row0 : int; row1 : int }
      (** [cells.(i).(j)]; the node spans global rows
          [row0 <= r < row1]. *)

type t = private {
  shape : shape;
  n : int;
  global_rows : int;
  global_cols : int;
  dims : (int * int) list;
}

val of_dims : (int * int) list -> t
(** [of_dims \[ (m1, n1); ...; (mk, nk) \]] builds the uniform
    hierarchy whose top object is an [m1 x n1] grid of objects that are
    themselves [m2 x n2] grids, and so on; level-0 objects sit at the
    end.  Element ids are row-major in the flattened
    [(m1*...*mk) x (n1*...*nk)] global grid. *)

val flat : rows:int -> cols:int -> t
(** Single-level grid, [of_dims \[ (rows, cols) \]]. *)

val preferred_2x2 : rows:int -> cols:int -> t
(** Factor the global grid into as many nested uniform 2x2 levels as
    divisibility allows, e.g. 4x4 becomes [\[(2,2); (2,2)\]]. *)

val of_blocks : row_parts:int list -> col_parts:int list -> t
(** Two-level hierarchy with non-uniform blocks: the top object is a
    [length row_parts x length col_parts] grid whose cell [(i, j)] is a
    flat [row_parts(i) x col_parts(j)] grid of processes.  E.g.
    [~row_parts:\[1;2;2\] ~col_parts:\[1;2;2\]] is a 5x5 global grid of
    (mostly) 2x2 logical blocks. *)

val auto_2x2 : ?ceil_first:bool -> rows:int -> cols:int -> unit -> t
(** The paper's Table 1 convention: "logical grids have size 2x2
    whenever it is possible", including odd dimensions — every logical
    object is a (at most) 2x2 grid of sub-objects of near-halved,
    possibly different sizes, recursively down to single processes.
    [ceil_first] (default false, which is what Table 1 matches) puts
    the larger half in the first row/column of each split. *)

(** {1 Structural predicates}

    All take the membership function of the live set. *)

val row_cover_ok : (int -> bool) -> shape -> bool
val full_line_ok : (int -> bool) -> shape -> bool

val full_line_max_base : (int -> bool) -> shape -> int option
(** Greatest [r] such that some live full-line uses only elements of
    global rows [>= r] — i.e. the topmost row of the lowest-sitting
    live full-line.  [None] when no full-line is live. *)

val row_cover_ok_at : (int -> bool) -> int -> shape -> bool
(** [row_cover_ok_at mem r shape]: some hierarchical row-cover has all
    its elements of global rows [>= r] live (elements above the
    threshold are exempt — the partial row-cover of section 4.2). *)

(** {1 Quorum enumeration} *)

val row_cover_quorums : shape -> int list list
val full_line_quorums : shape -> int list list

val full_lines_with_base : shape -> (int * int list) list
(** Every hierarchical full-line paired with its topmost (minimum)
    global row. *)

val partial_cover_quorums : shape -> int -> int list list
(** Row-covers restricted to global rows [>= r] (deduplicated). *)

(** {1 Selection} *)

val select_row_cover : Quorum.Rng.t -> (int -> bool) -> shape -> int list option
val select_full_line : Quorum.Rng.t -> (int -> bool) -> shape -> int list option

(** {1 Quorum systems} *)

val read_system : ?name:string -> t -> Quorum.System.t
val write_system : ?name:string -> t -> Quorum.System.t

val rw_system : ?name:string -> t -> Quorum.System.t
(** The h-grid mutual-exclusion system the paper's Table 1 calls
    "h-grid": quorums are unions of a full-line and a row-cover. *)

(** {1 Exact analysis} *)

type mode = Read | Write | Read_write

val failure_probability : t -> mode -> p:float -> float
(** Exact, via the per-level joint law of (row-cover available,
    full-line available) — sub-objects are disjoint, hence
    independent. *)

val failure_probability_hetero : t -> mode -> p_of:(int -> float) -> float
(** Same recursion with per-process crash probabilities. *)

val render : ?quorum:Quorum.Bitset.t -> t -> string
(** ASCII rendering of the global grid with hierarchy separators
    (Figure 1); elements of [quorum] are starred. *)
