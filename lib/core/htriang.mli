(** The hierarchical triangle quorum system (section 5) — the paper's
    second contribution.

    Processes fill a triangle with [d] rows (row [i] has [i] elements,
    [n = d(d+1)/2]).  A triangle with [j > 1] rows splits into

    - sub-triangle T1: the top [floor(j/2)] rows;
    - sub-grid G: the first [floor(j/2)] elements of each remaining
      row ([ceil(j/2)] rows x [floor(j/2)] columns);
    - sub-triangle T2: the rest (a triangle with [ceil(j/2)] rows);

    and a quorum of the triangle is one of

    + a quorum of T1 and a quorum of T2;
    + a quorum of T1 and a row-cover of G;
    + a quorum of T2 and a full-line of G.

    Every quorum has exactly [d] elements ([~ sqrt(2n)]), all three
    components are disjoint so availability has an exact product-form
    recursion, and the [w1/w2/w3] strategy solving the section-5
    equation system induces a perfectly uniform load of [2/(d+1)]
    ([~ sqrt 2 / sqrt n]). *)

type node = private
  | Elem of int
  | Split of { t1 : node; grid : int array array; t2 : node }
      (** [grid] is an array of rows, each an array of element ids. *)

type t = private { root : node; n : int; rows : int }
(** [rows] is the quorum size: every quorum of a standard triangle has
    exactly this many elements (after growth it is the size of T1-side
    chains and may no longer be uniform). *)

val standard : ?split:[ `Floor | `Ceil ] -> rows:int -> unit -> t
(** The canonical triangle, ids row-major: element [(r, c)]
    ([0 <= c <= r < rows]) has id [r(r+1)/2 + c].  [split] chooses how
    many rows go to sub-triangle 1 at each division: the paper's
    definition is [`Floor] (the default), [`Ceil] is the mirrored
    variant used for calibration. *)

val avail : t -> (int -> bool) -> bool

val quorums : t -> Quorum.Bitset.t list
(** All minimal quorums (they form an antichain by construction; for a
    standard triangle all have size [rows]). *)

val system : ?name:string -> t -> Quorum.System.t

val failure_probability : t -> p:float -> float
(** Exact: with [a, b] the sub-triangle availabilities and [r, f] the
    sub-grid row-cover / full-line probabilities,
    [A = ab + ar + bf - abr - abf] (the joint RC-and-FL term cancels in
    the inclusion-exclusion). *)

val failure_probability_hetero : t -> p_of:(int -> float) -> float
(** Same recursion with per-process crash probabilities. *)

(** {1 The load-balancing strategy (section 5)} *)

type weights = { w1 : float; w2 : float; w3 : float; k : float }
(** Method probabilities at one split, and the per-request element load
    [k] they induce. *)

val split_weights :
  c1:int -> c2:int -> c3:int -> q1:int -> q2:int -> q3l:int -> q3r:int ->
  weights
(** Solve the section-5 equation system
    {v w1+w2+w3 = 1,  w1+w2 = (c1/q1) k,  w1+w3 = (c2/q2) k,
       (q3r w2 + q3l w3)/c3 = k v} *)

val strategy_loads : t -> float array
(** Exact per-element load induced by the recursive [w1/w2/w3]
    strategy (uniform and equal to [2/(rows+1)] on a standard
    triangle). *)

val select :
  t -> Quorum.Rng.t -> live:Quorum.Bitset.t -> Quorum.Bitset.t option
(** Live-aware selection following the strategy weights, renormalized
    over the methods that are available under [live]. *)

val system_load : t -> float
(** The uniform load [k] of the strategy at the root. *)

(** {1 Growth rules (section 5, "Introducing new elements")} *)

val grow_unit_triangle : t -> t option
(** Replace the first single-element sub-triangle (DFS order) by a
    2-row triangle, adding 2 processes.  [None] if there is none
    (i.e. the triangle is a lone element). *)

val grow_unit_grid : t -> t option
(** Replace the first 1x1 sub-grid by a 1x2 sub-grid, adding 1
    process. *)

val grow_square_grid : t -> t option
(** Replace the first [m x m] sub-grid ([m >= 1]) by an
    [(m+1) x (m+1)] one, adding [2m + 1] processes. *)

(** {1 Shrink rules (inverses of the growth rules)}

    Each rule undoes the matching growth rule at the first (DFS)
    applicable site and then renumbers the surviving elements
    order-preservingly onto the contiguous prefix [0, n'), so the
    result is again a valid triangle over its own universe.  The
    renumbering is safe for online reconfiguration because epoch
    transitions carry state by seal / install onto a quorum of the new
    system, never by per-element identity (see [Protocols.Reconfig]).
    All three preserve quorum intersection and coterie-ness (tested as
    qcheck properties over random growth/shrink sequences). *)

val shrink_unit_triangle : t -> t option
(** Collapse the first 2-row sub-triangle (an [Elem]/1x1-grid/[Elem]
    split) back to its T1 element, removing 2 processes.  [None] when
    no such site exists. *)

val shrink_unit_grid : t -> t option
(** Replace the first 1x2 sub-grid by a 1x1 sub-grid, removing 1
    process. *)

val shrink_square_grid : t -> t option
(** Replace the first [m x m] sub-grid ([m >= 2]) by an
    [(m-1) x (m-1)] one, removing [2m - 1] processes. *)

val render : t -> string
(** ASCII rendering of the triangle with the first-level split marked
    (Figure 2): T1 rows plain, sub-grid elements bracketed, T2 elements
    parenthesized. *)
