(** Named constructors for every quorum system in the repository —
    the single catalogue used by the CLI, the benchmarks and the
    cross-construction tests.

    Spec syntax: [name(arg1,arg2)], e.g. ["majority(15)"],
    ["hgrid(4x4)"], ["htgrid(6x4)"], ["htriang(28)"], ["hqs(5-3)"],
    ["cwlog(14)"], ["paths(3)"], ["y(15)"], ["triangle(15)"],
    ["tree(15)"], ["fpp(13)"], ["grid-rw(4x4)"], ["tgrid(4x4)"],
    ["wall(1-2-2-3)"], ["diamond(8)"], ["singleton(5)"],
    ["voting(1-1-2)"].

    The {!catalogue} is the single source of truth: the CLI help, the
    bench spec validation and the registry tests are all generated from
    it, so adding a construction means adding exactly one {!entry}. *)

val parse_spec : string -> (string * string list, string) result
(** Split ["name(a,b)"] into [Ok ("name", ["a"; "b"])]; [Error]
    carries a message on malformed specs (e.g. an unclosed paren).
    Never raises. *)

type kind =
  | Coterie  (** quorums pairwise intersect; usable for reads and writes *)
  | Read_half of string
      (** read side of a read/write pair; the payload names the
          write-side family (e.g. [grid-read] names [grid-write]) *)
  | Write_half of string  (** write side; payload names the read family *)

type entry = {
  family : string;  (** spec name, e.g. ["htriang"] *)
  arity : string;  (** human description of the argument shape *)
  example : string;  (** a spec that builds, e.g. ["htriang(15)"] *)
  doc : string;  (** one-line description for help output *)
  kind : kind;  (** how the optimizer may use the family *)
  builder : string list -> Quorum.System.t;
      (** raises [Invalid_argument]/[Failure] on bad arguments — call
          through {!build} for the result-typed path *)
  specs_for : int -> string list;
      (** proposed specs over a universe of exactly [n] processes; may
          be over-approximate — {!instantiations} validates each
          proposal by building it.  Empty for families that only make
          sense through another entry point (e.g. [thresh], which the
          optimizer pairs itself). *)
}

val catalogue : entry list
(** One entry per spec family, in help-output order.  Every
    [example] is a valid spec (the test suite builds them all). *)

val find : string -> entry option
(** Look up a family by its spec name. *)

val build : string -> (Quorum.System.t, string) result
(** Parse a spec, look the family up in {!catalogue} and build the
    system; [Error] carries a message (including the list of known
    families when the name is unknown).  Never raises — this is the
    entry point for library and bench code. *)

val build_exn : string -> Quorum.System.t
(** [build] or [Invalid_argument].  CLI/test convenience only —
    library code should use {!build} and render the error. *)

val instantiations : n:int -> (entry * string list) list
(** Every catalogue entry that admits at least one instantiation over
    exactly [n] processes, with the validated specs: each returned spec
    is guaranteed to {!build} successfully into a system with
    [s.n = n].  This is how the optimizer enumerates the catalogue
    programmatically instead of hard-coding per-family size rules. *)

val paper_lineup_15 : unit -> Quorum.System.t list
(** The Table 2 lineup: Majority(15), HQS(15), CWlog(14),
    h-T-grid(16), Paths(~13), Y(15), h-triang(15). *)

val paper_lineup_28 : unit -> Quorum.System.t list
(** The Table 3 lineup: Majority(28), HQS(27), CWlog(29),
    h-T-grid(25), Paths(~25), Y(28), h-triang(28). *)
