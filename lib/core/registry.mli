(** Named constructors for every quorum system in the repository —
    the single catalogue used by the CLI, the benchmarks and the
    cross-construction tests.

    Spec syntax: [name(arg1,arg2)], e.g. ["majority(15)"],
    ["hgrid(4x4)"], ["htgrid(6x4)"], ["htriang(28)"], ["hqs(5x3)"],
    ["cwlog(14)"], ["paths(3)"], ["y(15)"], ["triangle(15)"],
    ["tree(15)"], ["fpp(13)"], ["grid-rw(4x4)"], ["tgrid(4x4)"],
    ["wall(1-2-2-3)"], ["diamond(9)"], ["singleton(5)"],
    ["voting(1-1-2)"]. *)

val parse_spec : string -> (string * string list, string) result
(** Split ["name(a,b)"] into [Ok ("name", ["a"; "b"])]; [Error]
    carries a message on malformed specs (e.g. an unclosed paren).
    Never raises. *)

val build : string -> (Quorum.System.t, string) result
(** Parse a spec and build the system; [Error] carries a message. *)

val build_exn : string -> Quorum.System.t

val known : unit -> (string * string) list
(** [(family, example spec)] pairs for help output. *)

val paper_lineup_15 : unit -> Quorum.System.t list
(** The Table 2 lineup: Majority(15), HQS(15), CWlog(14),
    h-T-grid(16), Paths(~13), Y(15), h-triang(15). *)

val paper_lineup_28 : unit -> Quorum.System.t list
(** The Table 3 lineup: Majority(28), HQS(27), CWlog(29),
    h-T-grid(25), Paths(~25), Y(28), h-triang(28). *)
