module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng
module Strategy = Quorum.Strategy

let mem_of_live live i = Bitset.mem live i
let mem_of_mask mask i = mask land (1 lsl i) <> 0

(* Availability: the best (lowest-sitting) live full-line determines
   the largest usable threshold r*; by monotonicity of partial covers
   in the threshold, a T-grid quorum exists iff the threshold-r*
   partial cover is live. *)
let avail_fn (t : Hgrid.t) mem =
  match Hgrid.full_line_max_base mem t.shape with
  | None -> false
  | Some r -> Hgrid.row_cover_ok_at mem r t.shape

let quorums (t : Hgrid.t) =
  Hgrid.full_lines_with_base t.shape
  |> List.concat_map (fun (base, line) ->
         Hgrid.partial_cover_quorums t.shape base
         |> List.map (fun cover -> Bitset.of_list t.n (line @ cover)))
  |> Quorum.Coterie.minimize

let select_partial_cover rng mem r shape =
  let rec go = function
    | Hgrid.Leaf l ->
        if l.row < r then Some []
        else if mem l.id then Some [ l.id ]
        else None
    | Hgrid.Grid g ->
        if g.row1 <= r then Some []
        else begin
          let pick_in_row row =
            let order = Array.copy row in
            Rng.shuffle_in_place rng order;
            let rec try_cells i =
              if i = Array.length order then None
              else
                match go order.(i) with
                | Some q -> Some q
                | None -> try_cells (i + 1)
            in
            try_cells 0
          in
          let rec all_rows i acc =
            if i = Array.length g.cells then Some acc
            else
              match pick_in_row g.cells.(i) with
              | None -> None
              | Some q -> all_rows (i + 1) (q @ acc)
          in
          all_rows 0 []
        end
  in
  go shape

let select (t : Hgrid.t) rng ~live =
  let mem = mem_of_live live in
  match Hgrid.select_full_line rng mem t.shape with
  | None -> None
  | Some line ->
      let base = List.fold_left (fun acc id -> min acc (id / t.global_cols)) max_int line in
      (match select_partial_cover rng mem base t.shape with
      | None ->
          (* The chosen line's threshold has no live partial cover; the
             guaranteed fallback is the full cover (threshold 0). *)
          (match
             ( Hgrid.full_line_max_base mem t.shape,
               Hgrid.select_row_cover rng mem t.shape )
           with
          | Some _, Some cover -> Some (Bitset.of_list t.n (line @ cover))
          | _ -> None)
      | Some cover -> Some (Bitset.of_list t.n (line @ cover)))

let system ?name (t : Hgrid.t) =
  let name =
    match name with
    | Some s -> s
    | None ->
        Printf.sprintf "h-T-grid(%s)"
          (String.concat ","
             (List.map (fun (m, n) -> Printf.sprintf "%dx%d" m n) t.dims))
  in
  let avail live = avail_fn t (mem_of_live live) in
  let avail_mask =
    if t.n <= Bitset.bits_per_word then
      Some (fun mask -> avail_fn t (mem_of_mask mask))
    else None
  in
  System.make ~name ~n:t.n ~avail ?avail_mask
    ~min_quorums:(lazy (quorums t))
    ~select:(select t) ()

(* Row weights of the section 4.3 strategy: load on a row-r element is
   w_r (its row is the base) plus (sum of higher-row weights) / cols
   (it serves as a cover pick); equalizing gives w_r = k - S_(r-1)/C
   with k fixed by normalization. *)
let row_weights ~rows ~cols =
  let u = Array.make rows 0.0 in
  let s = ref 0.0 in
  for r = 0 to rows - 1 do
    u.(r) <- 1.0 -. (!s /. float_of_int cols);
    s := !s +. u.(r)
  done;
  let k = 1.0 /. !s in
  (Array.map (fun x -> x *. k) u, k)

let flat_row_strategy (t : Hgrid.t) =
  let rows = t.global_rows and cols = t.global_cols in
  let weights, _ = row_weights ~rows ~cols in
  let full_row r = List.init cols (fun c -> (r * cols) + c) in
  let entries =
    List.concat
      (List.init rows (fun r ->
           let covers = Hgrid.partial_cover_quorums t.shape r in
           let p = weights.(r) /. float_of_int (List.length covers) in
           List.map
             (fun cover -> (Bitset.of_list t.n (full_row r @ cover), p))
             covers))
  in
  Strategy.make
    (Array.of_list (List.map fst entries))
    (Array.of_list (List.map snd entries))

(* The all-quorums variant: walk the hierarchy toward an intended base
   row, letting every full-line fragment slip to a lower local row with
   probability epsilon. *)
let select_lower_line ~epsilon (t : Hgrid.t) rng ~live =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Htgrid.select_lower_line: epsilon out of [0,1]";
  let mem = mem_of_live live in
  let weights, _ = row_weights ~rows:t.global_rows ~cols:t.global_cols in
  let target = Rng.pick_weighted rng ~weights in
  let rec line_frag node target =
    match node with
    | Hgrid.Leaf l -> if mem l.id then Some [ l.id ] else None
    | Hgrid.Grid g ->
        let m = Array.length g.cells in
        let span = (g.row1 - g.row0) / m in
        let intended = min (m - 1) (max 0 ((target - g.row0) / span)) in
        let band =
          if intended < m - 1 && Rng.bernoulli rng epsilon then
            intended + 1 + Rng.int rng (m - 1 - intended)
          else intended
        in
        let row = g.cells.(band) in
        let sub_target =
          if band = intended then target
          else g.row0 + (band * span)
        in
        let rec all j acc =
          if j = Array.length row then Some acc
          else
            match line_frag row.(j) sub_target with
            | None -> None
            | Some q -> all (j + 1) (q @ acc)
        in
        all 0 []
  in
  match line_frag t.shape target with
  | None -> None
  | Some line ->
      let base =
        List.fold_left (fun acc id -> min acc (id / t.global_cols)) max_int line
      in
      (match select_partial_cover rng mem base t.shape with
      | None -> None
      | Some cover -> Some (Bitset.of_list t.n (line @ cover)))
