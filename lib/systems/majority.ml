let votes n =
  if n <= 0 then invalid_arg "Majority.make: n must be positive";
  Array.init n (fun i -> if i = 0 && n mod 2 = 0 then 2 else 1)

let make n =
  Quorum.System.rename
    (Weighted_voting.system ~votes:(votes n) ())
    (Printf.sprintf "majority(%d)" n)

let make_plain n =
  Quorum.System.rename
    (Weighted_voting.system ~votes:(Array.make n 1) ())
    (Printf.sprintf "majority-plain(%d)" n)

let quorum_size n = if n mod 2 = 0 then n / 2 else (n + 1) / 2

let failure_probability ~n ~p =
  Weighted_voting.failure_probability ~votes:(votes n) ~p
