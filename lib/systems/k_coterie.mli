(** k-coteries: quorum systems for k-mutual exclusion (Fujita et al.;
    Kuo & Huang's reference [10] constructs both coteries and
    k-coteries geometrically).

    A k-coterie lets up to [k] users hold quorums simultaneously:

    - {e k-safety}: no [k+1] quorums are pairwise disjoint (so at most
      [k] users can hold full quorums at once);
    - {e k-availability}: some [k] pairwise-disjoint quorums exist (so
      [k] users can actually proceed in parallel).

    Constructions provided:

    - {!k_majority}: quorums are the subsets of size
      [floor(n / (k+1)) + 1] — [k+1] of them cannot fit in [n]
      processes, [k] of them can;
    - {!copies}: the universe splits into [k] groups, each running any
      base coterie (e.g. the paper's h-triang); a quorum is a base
      quorum of {e one} group.  Pigeonhole gives k-safety, one quorum
      per group gives k-availability.  This is the dual of the
      Byzantine [boost] (OR across copies instead of AND). *)

val degree : Quorum.Bitset.t list -> int
(** Size of the largest pairwise-disjoint family among the quorums
    (backtracking; intended for enumerable systems). *)

val is_k_coterie : k:int -> Quorum.Bitset.t list -> bool
(** [degree = k] exactly. *)

val k_majority : n:int -> k:int -> Quorum.System.t
(** Threshold [floor(n / (k+1)) + 1].  Requires
    [k * (floor(n / (k+1)) + 1) <= n] (k-availability), which holds
    whenever [k+1] divides [n] and in most other cases. *)

val copies : k:int -> Quorum.System.t -> Quorum.System.t
(** [k] groups of [base.n] processes each; availability = some group's
    slice contains a base quorum; selection picks a random available
    group (spreading parallel users across groups). *)
