module Bitset = Quorum.Bitset
module Rng = Quorum.Rng

let quorum_count ~n ~r = Quorum.Combinat.choose_count n r

let enumeration_cap = 200_000

let min_quorums ~n ~r =
  lazy
    (if n > 62 then
       invalid_arg "Thresh: universe too large to enumerate quorums"
     else if quorum_count ~n ~r > enumeration_cap then
       invalid_arg
         (Printf.sprintf "Thresh: C(%d,%d) quorums exceed the enumeration cap"
            n r)
     else begin
       let acc = ref [] in
       Quorum.Combinat.iter_ksubset_masks ~n ~k:r (fun mask ->
           acc := Bitset.of_mask ~n mask :: !acc);
       List.rev !acc
     end)

(* Uniform random r-subset of the live set: a partial Fisher-Yates over
   the live elements.  Structural — never forces the enumeration. *)
let select ~r rng ~live =
  let members = Array.of_list (Bitset.to_list live) in
  let len = Array.length members in
  if len < r then None
  else begin
    let q = Bitset.create (Bitset.capacity live) in
    for i = 0 to r - 1 do
      let j = i + Rng.int rng (len - i) in
      let tmp = members.(i) in
      members.(i) <- members.(j);
      members.(j) <- tmp;
      Bitset.add q members.(i)
    done;
    Some q
  end

let system ?name ~n ~r () =
  if n <= 0 || r < 1 || r > n then
    invalid_arg "Thresh.system: need 1 <= r <= n";
  let name =
    match name with Some s -> s | None -> Printf.sprintf "thresh(%d-%d)" n r
  in
  let avail live = Bitset.cardinal live >= r in
  if n <= 62 then
    Quorum.System.make ~name ~n ~avail
      ~avail_mask:(fun mask -> Bitset.popcount mask >= r)
      ~min_quorums:(min_quorums ~n ~r) ~select:(select ~r) ()
  else Quorum.System.make ~name ~n ~avail ~select:(select ~r) ()

let failure_probability_hetero ~n ~r ~p_of =
  (* dp.(k) = P(exactly k of the processes seen so far are live). *)
  let dp = Array.make (n + 1) 0.0 in
  dp.(0) <- 1.0;
  for i = 0 to n - 1 do
    let p = p_of i in
    for k = min i (r - 1) downto 0 do
      dp.(k + 1) <- dp.(k + 1) +. (dp.(k) *. (1.0 -. p));
      dp.(k) <- dp.(k) *. p
    done
  done;
  (* Everything still in dp.(0..r-1) has fewer than r live processes
     (mass that reached r is parked in dp.(r) and never moved). *)
  let fail = ref 0.0 in
  for k = 0 to r - 1 do
    fail := !fail +. dp.(k)
  done;
  !fail
