let log2_ceil x =
  if x < 1 then invalid_arg "Cwlog.log2_ceil";
  let rec find k pow = if pow >= x then k else find (k + 1) (2 * pow) in
  find 0 1

let widths_for n =
  if n < 1 then invalid_arg "Cwlog.widths_for: n >= 1 required";
  (* [build] accumulates widths bottom-row-first. *)
  let rec build i total acc =
    if total = n then acc
    else begin
      let w = min (log2_ceil (i + 1)) (n - total) in
      build (i + 1) (total + w) (w :: acc)
    end
  in
  let bottom_first =
    match build 1 0 [] with
    (* A truncated width-1 bottom row would dominate the whole coterie
       (its lone element is a quorum by itself); widen the row above
       instead. *)
    | 1 :: above :: rest when above >= 1 -> (above + 1) :: rest
    | l -> l
  in
  Array.of_list (List.rev bottom_first)

let system ?name ~n () =
  let name =
    match name with Some s -> s | None -> Printf.sprintf "cwlog(%d)" n
  in
  Wall.system ~name (widths_for n)

let failure_probability ~n ~p =
  Wall.failure_probability ~widths:(widths_for n) ~p

let tradeoff_strategy ~n =
  let widths = widths_for n in
  let wall = Wall.layout widths in
  let d = Array.length widths in
  let k = min d widths.(d - 1) in
  (* Quorums based on row [base]: the full row and every one-per-row
     choice below, sharing the base's probability mass equally. *)
  let quorums_of base =
    let full_row =
      List.init widths.(base) (fun idx -> Wall.element wall ~row:base ~idx)
    in
    List.init (d - base - 1) (fun i ->
        let row = base + 1 + i in
        List.init widths.(row) (fun idx -> Wall.element wall ~row ~idx))
    |> Quorum.Combinat.product
    |> List.map (fun picks -> Quorum.Bitset.of_list wall.Wall.n (full_row @ picks))
  in
  let entries =
    List.concat_map
      (fun base ->
        let qs = quorums_of base in
        let w = 1.0 /. float_of_int k /. float_of_int (List.length qs) in
        List.map (fun q -> (q, w)) qs)
      (List.init k (fun i -> d - k + i))
  in
  Quorum.Strategy.make
    (Array.of_list (List.map fst entries))
    (Array.of_list (List.map snd entries))
