let widths rows = Array.init rows (fun i -> i + 1)

let rows_for n =
  if n < 1 then invalid_arg "Triangle.rows_for";
  let rec find d = if d * (d + 1) / 2 >= n then d else find (d + 1) in
  find 1

let system ?name ~rows () =
  if rows < 1 then invalid_arg "Triangle.system: rows >= 1 required";
  let n = rows * (rows + 1) / 2 in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "triangle(%d)" n
  in
  Wall.system ~name (widths rows)

let failure_probability ~rows ~p =
  Wall.failure_probability ~widths:(widths rows) ~p
