(** Flat triangle quorum systems (Luk & Wong 1997; Peleg & Wool 1995).

    The wall with widths 1, 2, ..., d: a quorum is a full row plus one
    element from every row below it.  Minimum quorum size is [d]
    (the bottom row alone), i.e. about [sqrt(2n)].  This is the
    non-hierarchical ancestor of the paper's h-triang construction. *)

val rows_for : int -> int
(** [rows_for n] is the smallest [d] with [d(d+1)/2 >= n]. *)

val system : ?name:string -> rows:int -> unit -> Quorum.System.t
(** Triangle with [rows] rows, [n = rows (rows+1) / 2]. *)

val failure_probability : rows:int -> p:float -> float
