module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng

type mode = Read | Write | Read_write

let element ~cols ~row ~col = (row * cols) + col

let check ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid: non-positive dimensions"

let mode_string = function
  | Read -> "read"
  | Write -> "write"
  | Read_write -> "rw"

let row_elements ~cols row = List.init cols (fun col -> element ~cols ~row ~col)

let row_cover_quorums ~rows ~cols =
  List.init rows (fun row -> row_elements ~cols row)
  |> Quorum.Combinat.product
  |> List.map (Bitset.of_list (rows * cols))

let full_line_quorums ~rows ~cols =
  List.init rows (fun row -> Bitset.of_list (rows * cols) (row_elements ~cols row))

(* Minimal read-write quorums: full row [i] plus one element from every
   other row (a cover element inside row [i] would be redundant). *)
let read_write_quorums ~rows ~cols =
  let n = rows * cols in
  let quorums_of_base base =
    List.init rows (fun row -> row)
    |> List.filter (fun row -> row <> base)
    |> List.map (fun row -> row_elements ~cols row)
    |> Quorum.Combinat.product
    |> List.map (fun picks ->
           Bitset.of_list n (row_elements ~cols base @ picks))
  in
  List.concat_map quorums_of_base (List.init rows (fun i -> i))

let make_preds ~rows ~cols =
  let n = rows * cols in
  let row_mask row =
    let rec build col acc =
      if col = cols then acc
      else build (col + 1) (acc lor (1 lsl element ~cols ~row ~col))
    in
    build 0 0
  in
  let masks = Array.init rows row_mask in
  let cover_mask live =
    Array.for_all (fun m -> live land m <> 0) masks
  in
  let line_mask live = Array.exists (fun m -> live land m = m) masks in
  let cover live =
    let row_nonempty row =
      let rec check col =
        col < cols
        && (Bitset.mem live (element ~cols ~row ~col) || check (col + 1))
      in
      check 0
    in
    let rec all row = row = rows || (row_nonempty row && all (row + 1)) in
    all 0
  in
  let line live =
    let row_full row =
      let rec check col =
        col = cols
        || (Bitset.mem live (element ~cols ~row ~col) && check (col + 1))
      in
      check 0
    in
    let rec any row = row < rows && (row_full row || any (row + 1)) in
    any 0
  in
  (n, cover, line, cover_mask, line_mask)

let system ?name ~rows ~cols mode =
  check ~rows ~cols;
  let n, cover, line, cover_mask, line_mask = make_preds ~rows ~cols in
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "grid-%s(%dx%d)" (mode_string mode) rows cols
  in
  let avail, avail_mask, min_quorums =
    match mode with
    | Read ->
        (cover, cover_mask, lazy (row_cover_quorums ~rows ~cols))
    | Write -> (line, line_mask, lazy (full_line_quorums ~rows ~cols))
    | Read_write ->
        ( (fun live -> cover live && line live),
          (fun live -> cover_mask live && line_mask live),
          lazy (read_write_quorums ~rows ~cols) )
  in
  let avail_mask = if n <= Bitset.bits_per_word then Some avail_mask else None in
  let select rng ~live =
    let live_in_row row =
      List.filter (Bitset.mem live) (row_elements ~cols row)
    in
    let pick_cover () =
      let rec collect row acc =
        if row = rows then Some acc
        else
          match live_in_row row with
          | [] -> None
          | picks -> collect (row + 1) (Rng.pick rng (Array.of_list picks) :: acc)
      in
      collect 0 []
    in
    let pick_line () =
      let full_rows =
        List.filter
          (fun row -> List.length (live_in_row row) = cols)
          (List.init rows (fun i -> i))
      in
      match full_rows with
      | [] -> None
      | _ ->
          Some (row_elements ~cols (Rng.pick rng (Array.of_list full_rows)))
    in
    match mode with
    | Read -> Option.map (Bitset.of_list n) (pick_cover ())
    | Write -> Option.map (Bitset.of_list n) (pick_line ())
    | Read_write ->
        (match (pick_line (), pick_cover ()) with
        | Some l, Some c -> Some (Bitset.of_list n (l @ c))
        | _ -> None)
  in
  System.make ~name ~n ~avail ?avail_mask ~min_quorums ~select ()

let t_grid ?name ~rows ~cols () =
  check ~rows ~cols;
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "t-grid(%dx%d)" rows cols
  in
  Wall.system ~name (Array.make rows cols)

let failure_probability_hetero ~rows ~cols mode ~p_of =
  check ~rows ~cols;
  (* Per row: probability it is non-empty / fully live. *)
  let row_stats row =
    let dead = ref 1.0 and live = ref 1.0 in
    for col = 0 to cols - 1 do
      let pe = p_of (element ~cols ~row ~col) in
      dead := !dead *. pe;
      live := !live *. (1.0 -. pe)
    done;
    (1.0 -. !dead, !live)
  in
  let cover = ref 1.0 and no_line = ref 1.0 and joint = ref 1.0 in
  for row = 0 to rows - 1 do
    let nonempty, full = row_stats row in
    cover := !cover *. nonempty;
    no_line := !no_line *. (1.0 -. full);
    joint := !joint *. (nonempty -. full)
  done;
  match mode with
  | Read -> 1.0 -. !cover
  | Write -> !no_line
  | Read_write -> 1.0 -. (!cover -. !joint)

let failure_probability ~rows ~cols mode ~p =
  failure_probability_hetero ~rows ~cols mode ~p_of:(fun _ -> p)
