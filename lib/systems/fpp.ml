module Bitset = Quorum.Bitset

let is_prime q =
  q >= 2
  &&
  let rec check d = d * d > q || (q mod d <> 0 && check (d + 1)) in
  check 2

let exists_for_order = is_prime
let universe_size ~order = (order * order) + order + 1

(* Canonical projective points over GF(q): first non-zero coordinate
   normalized to 1, enumerated as (1,a,b), (0,1,a), (0,0,1). *)
let points q =
  let all = ref [] in
  for a = q - 1 downto 0 do
    for b = q - 1 downto 0 do
      all := (1, a, b) :: !all
    done
  done;
  let tail = List.init q (fun a -> (0, 1, a)) @ [ (0, 0, 1) ] in
  Array.of_list (!all @ tail)

let system ?name ~order () =
  let q = order in
  if not (is_prime q) then
    invalid_arg "Fpp.system: only prime orders are supported";
  let pts = points q in
  let n = Array.length pts in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "fpp(%d)" n
  in
  let incident (x1, y1, z1) (x2, y2, z2) =
    ((x1 * x2) + (y1 * y2) + (z1 * z2)) mod q = 0
  in
  (* Lines are indexed by the same coordinates; line L contains point P
     iff their dot product vanishes. *)
  let lines =
    Array.to_list pts
    |> List.map (fun line ->
           let members =
             List.filter
               (fun i -> incident line pts.(i))
               (List.init n (fun i -> i))
           in
           Bitset.of_list n members)
  in
  List.iter
    (fun l ->
      if Bitset.cardinal l <> q + 1 then
        invalid_arg "Fpp.system: internal construction error")
    lines;
  Quorum.System.of_quorums ~name ~n lines
