(** The Paths quorum system (Naor & Wool 1998), percolation-based.

    Elements are the [2d(d+1)] edges of a [(d+1) x (d+1)] vertex grid.
    A quorum is the union of (the edges of) a left-to-right crossing
    path in the grid and (the primal edges crossed by) a top-to-bottom
    crossing path in the planar dual.  Any left-right path meets any
    top-bottom dual cut, which gives the intersection property; the
    failure probability is governed by bond percolation, which is what
    makes the construction's availability non-trivial at p near 1/2.

    The paper reports Paths at 13 and 25 elements; the closest
    instances of this construction have 12 ([d = 2]) and 24 ([d = 3])
    — the reconstruction delta is documented in EXPERIMENTS.md. *)

val universe_size : d:int -> int
(** [2 d (d+1)]. *)

val horizontal : d:int -> row:int -> col:int -> int
(** Edge between vertices [(row, col)] and [(row, col+1)];
    [0 <= row <= d], [0 <= col < d]. *)

val vertical : d:int -> row:int -> col:int -> int
(** Edge between vertices [(row, col)] and [(row+1, col)];
    [0 <= row < d], [0 <= col <= d]. *)

val system : ?name:string -> d:int -> unit -> Quorum.System.t
(** Availability = (live edges contain a left-right crossing) and
    (live edges contain a top-bottom dual crossing).  No explicit
    quorum enumeration; selection shrinks the live set to a minimal
    quorum. *)
