module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng

let degree quorums =
  if quorums = [] then invalid_arg "K_coterie.degree: empty";
  (* Largest pairwise-disjoint family: depth-first packing. *)
  let arr = Array.of_list quorums in
  let m = Array.length arr in
  let best = ref 0 in
  let rec pack i chosen count =
    if count + (m - i) <= !best then ()
    else if i = m then best := max !best count
    else begin
      let q = arr.(i) in
      if List.for_all (fun c -> not (Bitset.intersects q c)) chosen then
        pack (i + 1) (q :: chosen) (count + 1);
      pack (i + 1) chosen count
    end
  in
  pack 0 [] 0;
  !best

let is_k_coterie ~k quorums = degree quorums = k

let k_majority ~n ~k =
  if k < 1 then invalid_arg "K_coterie.k_majority: k >= 1 required";
  let threshold = (n / (k + 1)) + 1 in
  if k * threshold > n then
    invalid_arg "K_coterie.k_majority: k quorums do not fit (k-availability)";
  let avail live = Bitset.cardinal live >= threshold in
  let avail_mask =
    if n <= Bitset.bits_per_word then
      Some (fun live -> Bitset.popcount live >= threshold)
    else None
  in
  let min_quorums =
    if n <= 22 && Quorum.Combinat.choose_count n threshold <= 500_000 then
      Some
        (lazy
          (let acc = ref [] in
           Quorum.Combinat.iter_ksubset_masks ~n ~k:threshold (fun m ->
               acc := Bitset.of_mask ~n m :: !acc);
           List.rev !acc))
    else None
  in
  let select rng ~live =
    let members = Array.of_list (Bitset.to_list live) in
    if Array.length members < threshold then None
    else begin
      Rng.shuffle_in_place rng members;
      let quorum = Bitset.create n in
      for i = 0 to threshold - 1 do
        Bitset.add quorum members.(i)
      done;
      Some quorum
    end
  in
  System.make
    ~name:(Printf.sprintf "k-majority(%d,k=%d)" n k)
    ~n ~avail ?avail_mask ?min_quorums ~select ()

let copies ~k (base : System.t) =
  if k < 1 then invalid_arg "K_coterie.copies: k >= 1 required";
  let bn = base.System.n in
  let n = k * bn in
  let slice live i =
    let s = Bitset.create bn in
    for e = 0 to bn - 1 do
      if Bitset.mem live ((i * bn) + e) then Bitset.add s e
    done;
    s
  in
  let avail live =
    let rec any i = i < k && (base.System.avail (slice live i) || any (i + 1)) in
    any 0
  in
  let avail_mask =
    if n <= Bitset.bits_per_word && bn <= Bitset.bits_per_word then begin
      let base_mask = System.avail_mask_exn base in
      let slice_mask = (1 lsl bn) - 1 in
      Some
        (fun live ->
          let rec any i =
            i < k
            && (base_mask ((live lsr (i * bn)) land slice_mask) || any (i + 1))
          in
          any 0)
    end
    else None
  in
  let min_quorums =
    match base.System.min_quorums with
    | Some lazy_base ->
        Some
          (lazy
            (let base_quorums = Lazy.force lazy_base in
             List.concat
               (List.init k (fun i ->
                    List.map
                      (fun q ->
                        Bitset.of_list n
                          (List.map (fun e -> (i * bn) + e) (Bitset.to_list q)))
                      base_quorums))))
    | None -> None
  in
  let select rng ~live =
    (* Pick a random available group, so parallel users land on
       different groups with high probability. *)
    let order = Array.init k (fun i -> i) in
    Rng.shuffle_in_place rng order;
    let rec try_groups idx =
      if idx = k then None
      else begin
        let g = order.(idx) in
        match base.System.select rng ~live:(slice live g) with
        | Some q ->
            Some
              (Bitset.of_list n
                 (List.map (fun e -> (g * bn) + e) (Bitset.to_list q)))
        | None -> try_groups (idx + 1)
      end
    in
    try_groups 0
  in
  System.make
    ~name:(Printf.sprintf "copies(%d,%s)" k base.name)
    ~n ~avail ?avail_mask ?min_quorums ~select ()
