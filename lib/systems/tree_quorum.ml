module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng

let size_of_height height =
  if height < 1 then invalid_arg "Tree_quorum: height must be >= 1";
  (1 lsl height) - 1

let system ?name ~height () =
  let n = size_of_height height in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "tree(%d)" n
  in
  let is_leaf v = (2 * v) + 1 >= n in
  let rec ok mem v =
    let root = mem v in
    if is_leaf v then root
    else begin
      let l = ok mem ((2 * v) + 1) and r = ok mem ((2 * v) + 2) in
      (root && (l || r)) || (l && r)
    end
  in
  let avail live = ok (Bitset.mem live) 0 in
  let avail_mask =
    if n <= Bitset.bits_per_word then
      Some (fun live -> ok (fun i -> live land (1 lsl i) <> 0) 0)
    else None
  in
  let rec quorums v =
    if is_leaf v then [ [ v ] ]
    else begin
      let l = quorums ((2 * v) + 1) and r = quorums ((2 * v) + 2) in
      List.map (fun q -> v :: q) (l @ r)
      @ List.concat_map (fun ql -> List.map (fun qr -> ql @ qr) r) l
    end
  in
  let min_quorums =
    lazy
      (Quorum.Coterie.minimize (List.map (Bitset.of_list n) (quorums 0)))
  in
  (* Prefer the cheap root-path quorums, falling back to both-children
     recursion when a node is dead. *)
  let rec select_at rng live v =
    if is_leaf v then if Bitset.mem live v then Some [ v ] else None
    else begin
      let l = (2 * v) + 1 and r = (2 * v) + 2 in
      let first, second = if Rng.bool rng then (l, r) else (r, l) in
      if Bitset.mem live v then
        match select_at rng live first with
        | Some q -> Some (v :: q)
        | None ->
            (match select_at rng live second with
            | Some q -> Some (v :: q)
            | None -> both rng live l r)
      else both rng live l r
    end
  and both rng live l r =
    match (select_at rng live l, select_at rng live r) with
    | Some ql, Some qr -> Some (ql @ qr)
    | _ -> None
  in
  let select rng ~live =
    Option.map (Bitset.of_list n) (select_at rng live 0)
  in
  System.make ~name ~n ~avail ?avail_mask ~min_quorums ~select ()

let failure_probability_hetero ~height ~p_of =
  let n = size_of_height height in
  let rec ok_prob v =
    let q = 1.0 -. p_of v in
    if (2 * v) + 1 >= n then q
    else begin
      let l = ok_prob ((2 * v) + 1) and r = ok_prob ((2 * v) + 2) in
      let either = l +. r -. (l *. r) in
      (q *. either) +. ((1.0 -. q) *. l *. r)
    end
  in
  1.0 -. ok_prob 0

let failure_probability ~height ~p =
  failure_probability_hetero ~height ~p_of:(fun _ -> p)
