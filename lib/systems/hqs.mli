(** Hierarchical Quorum Consensus (Kumar 1991).

    The universe forms the leaves of a tree whose level [i] nodes each
    have [b_i] children; a node's quorum is obtained by taking quorums
    in a strict majority of its children, recursively (a leaf's quorum
    is itself).  Quorum size is [prod ceil((b_i+1)/2)], i.e. [n^0.63]
    for ternary trees.

    The paper's HQS(15) is the [\[3; 5\]] tree (quorum size 6) and
    HQS(27) the [\[3; 3; 3\]] tree (quorum size 8). *)

val system : ?name:string -> branching:int list -> unit -> Quorum.System.t
(** [system ~branching:\[b1; ...; bk\] ()] over [n = b1 * ... * bk]
    leaves.  All [b_i >= 1]. *)

val quorum_size : branching:int list -> int

val failure_probability : branching:int list -> p:float -> float
(** Exact: recursive majority-of-children survival recursion. *)

val failure_probability_hetero :
  branching:int list -> p_of:(int -> float) -> float
(** Same with per-leaf crash probabilities (leaf ids are depth-first,
    0-based). *)
