(** Weighted voting (Gifford 1979).

    Each process holds a number of votes; a quorum is any set holding a
    strict majority of the total votes.  The failure probability has an
    exact O(n * total_votes) dynamic program over the vote-generating
    polynomial ({!failure_probability}). *)

val system : ?name:string -> votes:int array -> unit -> Quorum.System.t
(** Quorums = sets with [2 * votes(S) > total].  Minimal quorums are
    enumerated lazily (guarded to universes of at most 22 processes);
    availability itself works at any size. *)

val failure_probability : votes:int array -> p:float -> float
(** Exact: P(live votes fail to reach a strict majority). *)

val failure_probability_hetero :
  votes:int array -> p_of:(int -> float) -> float
(** Same with per-process crash probabilities. *)
