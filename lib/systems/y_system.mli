(** The Y quorum system (Kuo & Huang 1997), geometric coteries.

    Processes fill a triangular board with [d] rows (row [r], 0-based,
    has [r + 1] cells; [n = d(d+1)/2]) with hexagonal-board adjacency —
    the board of the game of Y.  A quorum is a connected set of live
    processes touching all three sides (left edge, right edge, bottom
    row); minimal such sets are the Y-shapes of the game.  The game's
    no-draw theorem makes the coterie non-dominated: exactly one of a
    set and its complement contains a Y, so F_(1/2) = 1/2 exactly,
    matching the paper's Tables 2 and 3. *)

val universe_size : rows:int -> int
val element : row:int -> col:int -> int
(** Row-major ids: [element ~row ~col = row (row+1)/2 + col],
    [0 <= col <= row]. *)

val system : ?name:string -> rows:int -> unit -> Quorum.System.t
(** Selection shrinks the live set to a minimal Y. *)
