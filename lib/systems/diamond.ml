let widths m =
  if m < 2 then invalid_arg "Diamond: half_rows >= 2 required";
  (* Rows 1, 2, ..., m, ..., 3, 2: the bottom apex is dropped so the
     wall coterie is not dominated by the single apex quorum. *)
  Array.init ((2 * m) - 2) (fun i -> if i < m then i + 1 else (2 * m) - 1 - i)

let system ?name ~half_rows () =
  let w = widths half_rows in
  let n = Array.fold_left ( + ) 0 w in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "diamond(%d)" n
  in
  Wall.system ~name w

let failure_probability ~half_rows ~p =
  Wall.failure_probability ~widths:(widths half_rows) ~p
