module Bitset = Quorum.Bitset
module System = Quorum.System

let universe_size ~rows = rows * (rows + 1) / 2
let element ~row ~col = (row * (row + 1) / 2) + col

let check_rows rows = if rows < 1 then invalid_arg "Y_system: rows >= 1"

(* Hexagonal adjacency on the triangular board: same-row neighbours,
   the two cells above, the two cells below. *)
let neighbours rows row col =
  let candidates =
    [
      (row, col - 1);
      (row, col + 1);
      (row - 1, col - 1);
      (row - 1, col);
      (row + 1, col);
      (row + 1, col + 1);
    ]
  in
  List.filter (fun (r, c) -> r >= 0 && r < rows && c >= 0 && c <= r) candidates
  |> List.map (fun (r, c) -> element ~row:r ~col:c)

let coords rows =
  List.concat
    (List.init rows (fun r -> List.init (r + 1) (fun c -> (r, c))))

let side_sets rows =
  let left = List.map (fun r -> element ~row:r ~col:0) (List.init rows Fun.id)
  and right = List.map (fun r -> element ~row:r ~col:r) (List.init rows Fun.id)
  and bottom =
    List.map (fun c -> element ~row:(rows - 1) ~col:c) (List.init rows Fun.id)
  in
  (left, right, bottom)

(* Mask-based availability: grow components from live left-side seeds
   by repeated dilation and test the three-side condition. *)
let make_avail_mask rows =
  let n = universe_size ~rows in
  let nbr = Array.make n 0 in
  List.iter
    (fun (r, c) ->
      let e = element ~row:r ~col:c in
      List.iter
        (fun e' -> nbr.(e) <- nbr.(e) lor (1 lsl e'))
        (neighbours rows r c))
    (coords rows);
  let mask_of = List.fold_left (fun acc e -> acc lor (1 lsl e)) 0 in
  let left, right, bottom = side_sets rows in
  let left_m = mask_of left
  and right_m = mask_of right
  and bottom_m = mask_of bottom in
  fun live ->
    live land left_m <> 0
    && live land right_m <> 0
    && live land bottom_m <> 0
    &&
    let rec try_seeds seeds visited =
      if seeds = 0 then false
      else begin
        let seed = seeds land -seeds in
        (* Dilate the seed's component to its fixpoint within [live]. *)
        let rec grow comp frontier =
          if frontier = 0 then comp
          else begin
            let rec gather f acc =
              if f = 0 then acc
              else begin
                let bit = f land -f in
                let i = Bitset.popcount (bit - 1) in
                gather (f lxor bit) (acc lor nbr.(i))
              end
            in
            let next = gather frontier 0 land live land lnot comp in
            grow (comp lor next) next
          end
        in
        let comp = grow seed seed in
        if comp land right_m <> 0 && comp land bottom_m <> 0 then true
        else begin
          let visited = visited lor comp in
          try_seeds (seeds land lnot visited) visited
        end
      end
    in
    try_seeds (live land left_m) 0

let make_avail rows =
  let n = universe_size ~rows in
  let adj = Array.make n [||] in
  List.iter
    (fun (r, c) ->
      adj.(element ~row:r ~col:c) <-
        Array.of_list (neighbours rows r c))
    (coords rows);
  let left, right, bottom = side_sets rows in
  let on_right = Array.make n false and on_bottom = Array.make n false in
  List.iter (fun e -> on_right.(e) <- true) right;
  List.iter (fun e -> on_bottom.(e) <- true) bottom;
  fun live ->
    let visited = Array.make n false in
    let component seed =
      (* DFS collecting side contacts. *)
      let stack = ref [ seed ] in
      visited.(seed) <- true;
      let touches_right = ref on_right.(seed)
      and touches_bottom = ref on_bottom.(seed) in
      let rec walk () =
        match !stack with
        | [] -> !touches_right && !touches_bottom
        | v :: rest ->
            stack := rest;
            Array.iter
              (fun w ->
                if (not visited.(w)) && Bitset.mem live w then begin
                  visited.(w) <- true;
                  if on_right.(w) then touches_right := true;
                  if on_bottom.(w) then touches_bottom := true;
                  stack := w :: !stack
                end)
              adj.(v);
            walk ()
      in
      walk ()
    in
    List.exists
      (fun seed ->
        Bitset.mem live seed && (not visited.(seed)) && component seed)
      left

let system ?name ~rows () =
  check_rows rows;
  let n = universe_size ~rows in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "y(%d)" n
  in
  let avail = make_avail rows in
  let avail_mask =
    if n <= Bitset.bits_per_word then Some (make_avail_mask rows) else None
  in
  let select rng ~live = System.shrink_select avail rng ~live in
  let min_quorums =
    if n <= 22 then
      Some
        (lazy
          (Quorum.Coterie.minimal_of_avail ~n
             (match avail_mask with Some f -> f | None -> assert false)))
    else None
  in
  System.make ~name ~n ~avail ?avail_mask ?min_quorums ~select ()
