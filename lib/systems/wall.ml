module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng

type t = { widths : int array; offsets : int array; n : int }

let layout widths =
  if Array.length widths = 0 then invalid_arg "Wall.layout: no rows";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Wall.layout: non-positive width")
    widths;
  let d = Array.length widths in
  let offsets = Array.make d 0 in
  let total = ref 0 in
  for i = 0 to d - 1 do
    offsets.(i) <- !total;
    total := !total + widths.(i)
  done;
  { widths; offsets; n = !total }

let element t ~row ~idx =
  if row < 0 || row >= Array.length t.widths then
    invalid_arg "Wall.element: bad row";
  if idx < 0 || idx >= t.widths.(row) then invalid_arg "Wall.element: bad idx";
  t.offsets.(row) + idx

let row_of_element t e =
  if e < 0 || e >= t.n then invalid_arg "Wall.row_of_element";
  let rec find i = if e < t.offsets.(i) + t.widths.(i) then i else find (i + 1) in
  find 0

(* A base row is minimal-quorum-producing unless some strictly lower
   row has width 1: the single pick there would itself be a full row,
   so the quorum would contain (hence dominate over) a lower-based
   one. *)
let minimal_bases widths =
  let d = Array.length widths in
  let rec collect i unit_below acc =
    if i < 0 then acc
    else
      let acc = if unit_below then acc else i :: acc in
      collect (i - 1) (unit_below || widths.(i) = 1) acc
  in
  collect (d - 1) false []

let quorum_count widths =
  let d = Array.length widths in
  let rec below i = if i >= d then 1 else widths.(i) * below (i + 1) in
  List.fold_left (fun acc base -> acc + below (base + 1)) 0
    (minimal_bases widths)

(* All minimal quorums: for each usable base row, the full row joined
   with every choice of one element per lower row. *)
let enumerate_quorums t =
  let d = Array.length t.widths in
  let rows_below base =
    let rec collect i =
      if i = d then []
      else
        List.init t.widths.(i) (fun idx -> element t ~row:i ~idx)
        :: collect (i + 1)
    in
    collect (base + 1)
  in
  let quorums_of_base base =
    let full_row =
      List.init t.widths.(base) (fun idx -> element t ~row:base ~idx)
    in
    Quorum.Combinat.product (rows_below base)
    |> List.map (fun picks -> Bitset.of_list t.n (full_row @ picks))
  in
  List.concat_map quorums_of_base (minimal_bases t.widths)

let row_mask t row =
  let rec build idx acc =
    if idx = t.widths.(row) then acc
    else build (idx + 1) (acc lor (1 lsl element t ~row ~idx))
  in
  build 0 0

let make_avail_mask t =
  let d = Array.length t.widths in
  let masks = Array.init d (fun row -> row_mask t row) in
  fun live ->
    (* Bottom-up: track whether all rows strictly below are non-empty. *)
    let rec scan i below_ok =
      if i < 0 then false
      else if below_ok && live land masks.(i) = masks.(i) then true
      else scan (i - 1) (below_ok && live land masks.(i) <> 0)
    in
    scan (d - 1) true

let make_avail t =
  let d = Array.length t.widths in
  let row_full live row =
    let rec check idx =
      idx = t.widths.(row)
      || (Bitset.mem live (element t ~row ~idx) && check (idx + 1))
    in
    check 0
  in
  let row_nonempty live row =
    let rec check idx =
      idx < t.widths.(row)
      && (Bitset.mem live (element t ~row ~idx) || check (idx + 1))
    in
    check 0
  in
  fun live ->
    let rec scan i below_ok =
      if i < 0 then false
      else if below_ok && row_full live i then true
      else scan (i - 1) (below_ok && row_nonempty live i)
    in
    scan (d - 1) true

let make_select t =
  let d = Array.length t.widths in
  fun rng ~live ->
    let live_in_row row =
      List.filter (Bitset.mem live)
        (List.init t.widths.(row) (fun idx -> element t ~row ~idx))
    in
    let row_full row = List.length (live_in_row row) = t.widths.(row) in
    (* Usable base rows: fully live with live elements in every lower
       row; collected in one bottom-up pass. *)
    let rec bases i below_ok acc =
      if i < 0 then acc
      else
        let acc = if below_ok && row_full i then i :: acc else acc in
        bases (i - 1) (below_ok && live_in_row i <> []) acc
    in
    match bases (d - 1) true [] with
    | [] -> None
    | candidates ->
        let base = Rng.pick rng (Array.of_list candidates) in
        let quorum = Bitset.create t.n in
        for idx = 0 to t.widths.(base) - 1 do
          Bitset.add quorum (element t ~row:base ~idx)
        done;
        let rec fill row =
          if row < d then begin
            Bitset.add quorum
              (Rng.pick rng (Array.of_list (live_in_row row)));
            fill (row + 1)
          end
        in
        fill (base + 1);
        Some quorum

let system ?name widths =
  let t = layout widths in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "wall(%d)" t.n
  in
  let avail_mask =
    if t.n <= Bitset.bits_per_word then Some (make_avail_mask t) else None
  in
  System.make ~name ~n:t.n ~avail:(make_avail t) ?avail_mask
    ~min_quorums:(lazy (enumerate_quorums t))
    ~select:(make_select t) ()

let failure_probability_hetero ~widths ~p_of =
  let t = layout widths in
  let d = Array.length t.widths in
  (* Joint law over the row suffix i..d-1 of
     (S = suffix contains a quorum, N = every suffix row non-empty).
     States: sn = P(S and N), s = P(S and not N), xn = P(not S and N),
     x = P(neither).  Below the bottom row: no quorum, vacuously all
     non-empty. *)
  let rec scan i (sn, s, xn, x) =
    if i < 0 then sn +. s
    else begin
      let full = ref 1.0 and all_dead = ref 1.0 in
      for idx = 0 to t.widths.(i) - 1 do
        let pe = p_of (element t ~row:i ~idx) in
        full := !full *. (1.0 -. pe);
        all_dead := !all_dead *. pe
      done;
      let full = !full in
      let nonempty = 1.0 -. !all_dead in
      let partial = nonempty -. full in
      let empty = 1.0 -. nonempty in
      (* A full row i on top of an all-non-empty suffix creates a
         quorum; otherwise S persists from below. *)
      let sn' = (full *. (sn +. xn)) +. (partial *. sn) in
      let s' = (empty *. (sn +. s)) +. (partial *. s) +. (full *. s) in
      let xn' = partial *. xn in
      let x' = (empty *. (xn +. x)) +. (partial *. x) +. (full *. x) in
      scan (i - 1) (sn', s', xn', x')
    end
  in
  1.0 -. scan (d - 1) (0.0, 0.0, 1.0, 0.0)

let failure_probability ~widths ~p =
  failure_probability_hetero ~widths ~p_of:(fun _ -> p)
