(** Threshold systems: every [r]-subset of the [n] processes is a
    quorum.

    With [2r > n] this is the (plain) majority family — a genuine
    coterie.  With [r <= n/2] the quorums do {e not} pairwise
    intersect, so the system is only meaningful as one {e side} of a
    read/write pair: an [r]-of-[n] read threshold matched with a
    [(n+1-r)]-of-[n] write threshold intersects by counting
    ([r + w = n + 1]), which is exactly the strategy-space knob the
    workload optimizer sweeps (Whittaker et al., {e Read-Write Quorum
    Systems Made Practical}).

    By symmetry the uniform strategy is load-optimal: every element
    carries load [r/n], and the expected quorum size is exactly [r]. *)

val system : ?name:string -> n:int -> r:int -> unit -> Quorum.System.t
(** [system ~n ~r ()] — requires [1 <= r <= n].  [min_quorums]
    enumerates the [C(n, r)] subsets lazily (forcing refuses beyond
    200_000 quorums — {!Quorum.System.quorums} turns that into an
    [Error]); selection picks a uniform random [r]-subset of the live
    set without forcing the enumeration. *)

val quorum_count : n:int -> r:int -> int
(** [C(n, r)]. *)

val failure_probability_hetero : n:int -> r:int -> p_of:(int -> float) -> float
(** Exact Poisson-binomial tail: the probability that fewer than [r]
    processes are live, in [O(n^2)] — no enumeration, any [n]. *)
