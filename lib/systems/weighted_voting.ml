module Bitset = Quorum.Bitset
module System = Quorum.System

let check votes =
  if Array.length votes = 0 then invalid_arg "Weighted_voting: no processes";
  Array.iter
    (fun v -> if v < 0 then invalid_arg "Weighted_voting: negative votes")
    votes;
  let total = Array.fold_left ( + ) 0 votes in
  if total = 0 then invalid_arg "Weighted_voting: zero total votes";
  total

let system ?name ~votes () =
  let total = check votes in
  let n = Array.length votes in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "voting(%d)" n
  in
  let enough sum = 2 * sum > total in
  let avail live =
    enough (Bitset.fold (fun i acc -> acc + votes.(i)) live 0)
  in
  let avail_mask =
    if n <= Bitset.bits_per_word then
      Some
        (fun live ->
          let rec sum i acc =
            if i = n then acc
            else if live land (1 lsl i) <> 0 then sum (i + 1) (acc + votes.(i))
            else sum (i + 1) acc
          in
          enough (sum 0 0))
    else None
  in
  let min_quorums =
    lazy
      (if n > 22 then
         invalid_arg "Weighted_voting: quorum enumeration capped at n=22"
       else
         Quorum.Coterie.minimal_of_avail ~n (Option.get avail_mask))
  in
  (* Greedy selection: highest-vote live processes first, then trimmed
     to a minimal quorum. *)
  let select rng ~live =
    let members = Bitset.to_list live in
    let arr = Array.of_list members in
    Quorum.Rng.shuffle_in_place rng arr;
    let by_votes = Array.copy arr in
    Array.sort (fun a b -> compare votes.(b) votes.(a)) by_votes;
    let quorum = Bitset.create n in
    let rec take i sum =
      if enough sum then true
      else if i = Array.length by_votes then false
      else begin
        Bitset.add quorum by_votes.(i);
        take (i + 1) (sum + votes.(by_votes.(i)))
      end
    in
    if not (take 0 0) then None
    else begin
      (* Drop members that are not needed, in random order, to reach a
         minimal quorum. *)
      let sum = ref (Bitset.fold (fun i acc -> acc + votes.(i)) quorum 0) in
      Array.iter
        (fun i ->
          if Bitset.mem quorum i && enough (!sum - votes.(i)) then begin
            Bitset.remove quorum i;
            sum := !sum - votes.(i)
          end)
        arr;
      Some quorum
    end
  in
  System.make ~name ~n ~avail ?avail_mask ~min_quorums ~select ()

let failure_probability_hetero ~votes ~p_of =
  let total = check votes in
  (* dist.(v) = P(live votes = v); one convolution step per process. *)
  let dist = Array.make (total + 1) 0.0 in
  dist.(0) <- 1.0;
  let top = ref 0 in
  Array.iteri
    (fun i v ->
      let p = p_of i in
      let q = 1.0 -. p in
      for s = !top downto 0 do
        let mass = dist.(s) in
        if mass > 0.0 then begin
          dist.(s) <- mass *. p;
          dist.(s + v) <- dist.(s + v) +. (mass *. q)
        end
      done;
      top := !top + v)
    votes;
  let acc = ref 0.0 in
  for s = 0 to total do
    if 2 * s <= total then acc := !acc +. dist.(s)
  done;
  !acc

let failure_probability ~votes ~p =
  failure_probability_hetero ~votes ~p_of:(fun _ -> p)
