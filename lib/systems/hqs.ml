module Bitset = Quorum.Bitset
module System = Quorum.System
module Rng = Quorum.Rng

let check branching =
  if branching = [] then invalid_arg "Hqs: empty branching";
  List.iter (fun b -> if b < 1 then invalid_arg "Hqs: branching < 1") branching

let universe_size branching = List.fold_left ( * ) 1 branching
let majority b = (b / 2) + 1

let quorum_size ~branching =
  check branching;
  List.fold_left (fun acc b -> acc * majority b) 1 branching

(* Subtrees at the same level span contiguous leaf ranges; [offset] is
   the first leaf of the current subtree. *)
let rec avail_range branching mem offset =
  match branching with
  | [] -> mem offset
  | b :: rest ->
      let child_span = universe_size rest in
      let rec count i ok =
        if i = b then ok
        else
          count (i + 1)
            (if avail_range rest mem (offset + (i * child_span)) then ok + 1
             else ok)
      in
      count 0 0 >= majority b

let rec quorums_range branching n offset =
  match branching with
  | [] -> [ [ offset ] ]
  | b :: rest ->
      let child_span = universe_size rest in
      let child_quorums i = quorums_range rest n (offset + (i * child_span)) in
      Quorum.Combinat.ksubsets (List.init b (fun i -> i)) (majority b)
      |> List.concat_map (fun chosen ->
             List.map List.concat
               (Quorum.Combinat.product (List.map child_quorums chosen)))

let rec select_range branching rng live offset =
  match branching with
  | [] -> if Bitset.mem live offset then Some [ offset ] else None
  | b :: rest ->
      let child_span = universe_size rest in
      let children = Array.init b (fun i -> i) in
      Rng.shuffle_in_place rng children;
      let need = majority b in
      let rec gather i taken acc =
        if taken = need then Some acc
        else if i = Array.length children then None
        else
          match
            select_range rest rng live (offset + (children.(i) * child_span))
          with
          | Some q -> gather (i + 1) (taken + 1) (q @ acc)
          | None -> gather (i + 1) taken acc
      in
      gather 0 0 []

let system ?name ~branching () =
  check branching;
  let n = universe_size branching in
  let name =
    match name with
    | Some s -> s
    | None ->
        Printf.sprintf "hqs(%s)"
          (String.concat "x" (List.map string_of_int branching))
  in
  let avail live = avail_range branching (Bitset.mem live) 0 in
  let avail_mask =
    if n <= Bitset.bits_per_word then
      Some (fun live -> avail_range branching (fun i -> live land (1 lsl i) <> 0) 0)
    else None
  in
  let min_quorums =
    lazy (List.map (Bitset.of_list n) (quorums_range branching n 0))
  in
  let select rng ~live =
    Option.map (Bitset.of_list n) (select_range branching rng live 0)
  in
  System.make ~name ~n ~avail ?avail_mask ~min_quorums ~select ()

let failure_probability_hetero ~branching ~p_of =
  check branching;
  (* P(at least [need] of the independent child events occur): DP over
     the children's individual probabilities. *)
  let at_least need probs =
    let dist = Array.make (List.length probs + 1) 0.0 in
    dist.(0) <- 1.0;
    List.iteri
      (fun i pr ->
        for k = i + 1 downto 1 do
          dist.(k) <- (dist.(k) *. (1.0 -. pr)) +. (dist.(k - 1) *. pr)
        done;
        dist.(0) <- dist.(0) *. (1.0 -. pr))
      probs;
    let acc = ref 0.0 in
    for k = need to Array.length dist - 1 do
      acc := !acc +. dist.(k)
    done;
    !acc
  in
  let rec survive branching offset =
    match branching with
    | [] -> 1.0 -. p_of offset
    | b :: rest ->
        let span = universe_size rest in
        let children =
          List.init b (fun i -> survive rest (offset + (i * span)))
        in
        at_least (majority b) children
  in
  1.0 -. survive branching 0

let failure_probability ~branching ~p =
  failure_probability_hetero ~branching ~p_of:(fun _ -> p)
