(** The tree quorum protocol (Agrawal & El Abbadi 1991).

    Processes form a complete binary tree.  A quorum of a subtree is
    its root together with a quorum of either child, or — when the root
    is inaccessible — quorums of {e both} children.  Quorum sizes thus
    range from [log2 (n+1)] (a root-to-leaf path) to [(n+1)/2] (all
    leaves); the paper cites this as the tree-based alternative to HQS
    with variable quorum sizes. *)

val system : ?name:string -> height:int -> unit -> Quorum.System.t
(** [system ~height ()] over [n = 2^height - 1] processes, ids in
    level order (root 0, children of [i] at [2i+1], [2i+2]). *)

val failure_probability : height:int -> p:float -> float
(** Exact: [P(ok v) = q * P(ok_l or ok_r) + (1-q) * P(ok_l) P(ok_r)]
    with independent subtrees (leaves: [q]). *)

val failure_probability_hetero :
  height:int -> p_of:(int -> float) -> float
(** Same with per-node crash probabilities (level-order ids). *)
