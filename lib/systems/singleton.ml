let make n =
  if n <= 0 then invalid_arg "Singleton.make: n must be positive";
  Quorum.System.of_quorums
    ~name:(Printf.sprintf "singleton(%d)" n)
    ~n
    [ Quorum.Bitset.of_list n [ 0 ] ]
