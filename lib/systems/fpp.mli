(** Maekawa's sqrt(n) quorums from finite projective planes (1985).

    For a prime [q], the projective plane PG(2, q) has
    [n = q^2 + q + 1] points and as many lines; every line carries
    [q + 1] points, every point lies on [q + 1] lines, and any two
    lines meet in exactly one point.  Taking quorums = lines yields
    equal-size, equal-responsibility quorums of size about [sqrt n] —
    the optimal-load construction the paper's summary contrasts with
    h-triang ("optimal load but poor asymptotic availability").

    Only prime orders are constructed (prime powers would need a field
    implementation; the paper never uses one). *)

val exists_for_order : int -> bool
(** True when the order is a prime this module can build. *)

val system : ?name:string -> order:int -> unit -> Quorum.System.t
(** [system ~order:q ()] over [n = q^2 + q + 1] points.  Raises if [q]
    is not prime. *)

val universe_size : order:int -> int
