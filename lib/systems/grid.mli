(** The flat grid protocol (Cheung, Ammar & Ahamad 1990).

    Processes sit in a [rows x cols] grid.  The protocol defines

    - {e read} quorums: a {e row-cover} — one process from every row;
    - {e write} quorums: a {e full-line} — all processes of one row;
    - {e read-write} quorums: a full-line together with a row-cover
      (mutual exclusion; any two intersect in at least two processes).

    Section 4.2 of the paper refines the read-write quorum into the
    flat T-grid — a full-line plus one element per row {e below} it —
    which is exactly {!Wall.system} with equal widths; see {!t_grid}.

    All three modes admit closed-form failure probabilities because the
    rows are independent ({!failure_probability}). *)

type mode = Read | Write | Read_write

val element : cols:int -> row:int -> col:int -> int
(** Row-major element ids. *)

val system : ?name:string -> rows:int -> cols:int -> mode -> Quorum.System.t

val t_grid : ?name:string -> rows:int -> cols:int -> unit -> Quorum.System.t
(** The flat T-grid refinement (a wall with [rows] rows of width
    [cols]). *)

val failure_probability : rows:int -> cols:int -> mode -> p:float -> float
(** Exact.  [Read_write] uses
    [1 - ((1-p^c)^r - (1-p^c-q^c)^r)]: the probability that some row is
    fully live {e and} every row is non-empty. *)

val failure_probability_hetero :
  rows:int -> cols:int -> mode -> p_of:(int -> float) -> float
(** Same with per-process crash probabilities. *)
