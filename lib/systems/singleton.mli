(** The singleton coterie: one quorum, one process.

    Optimal for individual crash probabilities above 1/2
    (Proposition 3.2); included as the degenerate baseline. *)

val make : int -> Quorum.System.t
(** [make n] has the single quorum [{0}] over a universe of [n]
    processes. *)
