(** Generic wall quorum systems (Peleg & Wool, "Crumbling walls").

    A wall organizes the universe into [d] rows of widths [w_1 .. w_d]
    (top to bottom); a quorum is one {e full row} [i] together with one
    element from every row {e below} [i].  Walls unify several classic
    constructions used by the paper:

    - CWlog {!Cwlog} is the wall with [w_i = ceil(log2 (i+1))];
    - the triangle systems of Luk-Wong / Peleg-Wool {!Triangle} are the
      wall with [w_i = i];
    - the {e flat} T-grid of section 4.2 is the wall with equal widths;
    - diamonds {!Diamond} use widths [1 .. m .. 1].

    Because rows are disjoint, the failure probability admits an exact
    four-state dynamic program over rows ({!failure_probability}), used
    to cross-check the generic enumeration. *)

type t = private {
  widths : int array;  (** Row widths, top to bottom; all positive. *)
  offsets : int array;  (** [offsets.(i)] = id of first element of row i. *)
  n : int;
}

val layout : int array -> t
(** Validate widths and lay out element ids row-major, top to bottom. *)

val element : t -> row:int -> idx:int -> int
(** Id of the [idx]-th element of [row] (both 0-based). *)

val row_of_element : t -> int -> int

val system : ?name:string -> int array -> Quorum.System.t
(** [system widths] builds the wall quorum system.  Quorums are
    enumerated explicitly (their number is [sum_i prod_(j>i) w_j]);
    selection picks a usable base row uniformly and live elements below
    uniformly. *)

val quorum_count : int array -> int
(** Number of minimal quorums of the wall. *)

val failure_probability : widths:int array -> p:float -> float
(** Exact failure probability by the row DP: scan rows bottom-up
    tracking the joint law of (suffix contains a quorum, suffix rows all
    non-empty). *)

val failure_probability_hetero :
  widths:int array -> p_of:(int -> float) -> float
(** Same DP with a per-process crash probability ([p_of] is indexed by
    element id). *)
