module Bitset = Quorum.Bitset
module System = Quorum.System

let universe_size ~d = 2 * d * (d + 1)

let check_d d = if d < 1 then invalid_arg "Paths: d >= 1 required"

let horizontal ~d ~row ~col =
  if row < 0 || row > d || col < 0 || col >= d then
    invalid_arg "Paths.horizontal";
  (row * d) + col

let vertical ~d ~row ~col =
  if row < 0 || row >= d || col < 0 || col > d then
    invalid_arg "Paths.vertical";
  ((d + 1) * d) + (row * (d + 1)) + col

(* Primal graph: vertices (r, c) with 0 <= r, c <= d, indexed
   r * (d+1) + c.  Each adjacency entry is (edge id, neighbour). *)
let primal_adjacency d =
  let vid r c = (r * (d + 1)) + c in
  let adj = Array.make ((d + 1) * (d + 1)) [] in
  let link v e w =
    adj.(v) <- (e, w) :: adj.(v);
    adj.(w) <- (e, v) :: adj.(w)
  in
  for r = 0 to d do
    for c = 0 to d - 1 do
      link (vid r c) (horizontal ~d ~row:r ~col:c) (vid r (c + 1))
    done
  done;
  for r = 0 to d - 1 do
    for c = 0 to d do
      link (vid r c) (vertical ~d ~row:r ~col:c) (vid (r + 1) c)
    done
  done;
  Array.map Array.of_list adj

(* Dual graph for top-bottom crossings: faces TOP (0), BOTTOM (1) and
   the d*d cells; each dual edge is labelled with the primal edge it
   crosses. *)
let dual_adjacency d =
  let fid r c = 2 + (r * d) + c in
  let adj = Array.make (2 + (d * d)) [] in
  let link v e w =
    adj.(v) <- (e, w) :: adj.(v);
    adj.(w) <- (e, v) :: adj.(w)
  in
  for c = 0 to d - 1 do
    link 0 (horizontal ~d ~row:0 ~col:c) (fid 0 c);
    link (fid (d - 1) c) (horizontal ~d ~row:d ~col:c) 1
  done;
  for r = 0 to d - 2 do
    for c = 0 to d - 1 do
      link (fid r c) (horizontal ~d ~row:(r + 1) ~col:c) (fid (r + 1) c)
    done
  done;
  for r = 0 to d - 1 do
    for c = 0 to d - 2 do
      link (fid r c) (vertical ~d ~row:r ~col:(c + 1)) (fid r (c + 1))
    done
  done;
  Array.map Array.of_list adj

(* Reachability from [sources] to a vertex satisfying [is_target],
   walking only edges whose label is live.  Scratch arrays are owned by
   the caller so the enumeration hot loop does not allocate. *)
let reaches adj ~visited ~stack ~edge_live ~sources ~is_target =
  Array.fill visited 0 (Array.length visited) false;
  let top = ref 0 in
  let push v =
    if not visited.(v) then begin
      visited.(v) <- true;
      stack.(!top) <- v;
      incr top
    end
  in
  List.iter push sources;
  let rec loop () =
    if !top = 0 then false
    else begin
      decr top;
      let v = stack.(!top) in
      if is_target v then true
      else begin
        Array.iter
          (fun (e, w) -> if edge_live e then push w)
          adj.(v);
        loop ()
      end
    end
  in
  loop ()

let system ?name ~d () =
  check_d d;
  let n = universe_size ~d in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "paths(%d)" n
  in
  let primal = primal_adjacency d in
  let dual = dual_adjacency d in
  let nv = Array.length primal and nf = Array.length dual in
  let left = List.init (d + 1) (fun r -> r * (d + 1)) in
  let is_right v = v mod (d + 1) = d in
  let make_avail () =
    (* Fresh DFS scratch per domain (not per system): these closures are
       handed to the analysis layer, which may call them from several
       pool domains at once.  Domain-local buffers keep the predicates
       re-entrant without allocating on every call. *)
    let scratch =
      Domain.DLS.new_key (fun () ->
          ( Array.make nv false,
            Array.make nv 0,
            Array.make nf false,
            Array.make nf 0 ))
    in
    fun edge_live ->
      let visited_v, stack_v, visited_f, stack_f = Domain.DLS.get scratch in
      reaches primal ~visited:visited_v ~stack:stack_v ~edge_live
        ~sources:left ~is_target:is_right
      && reaches dual ~visited:visited_f ~stack:stack_f ~edge_live
           ~sources:[ 0 ] ~is_target:(fun v -> v = 1)
  in
  let avail =
    let check = make_avail () in
    fun live -> check (Bitset.mem live)
  in
  let avail_mask =
    let check = make_avail () in
    Some (fun live -> check (fun e -> live land (1 lsl e) <> 0))
  in
  let shrink_avail =
    let check = make_avail () in
    fun live -> check (Bitset.mem live)
  in
  let select rng ~live = System.shrink_select shrink_avail rng ~live in
  let min_quorums =
    if n <= 22 then
      Some
        (lazy
          (Quorum.Coterie.minimal_of_avail ~n
             (match avail_mask with Some f -> f | None -> assert false)))
    else None
  in
  System.make ~name ~n ~avail ?avail_mask ?min_quorums ~select ()
