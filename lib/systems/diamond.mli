(** Diamond quorums (Fu, Wong & Wong 2000).

    The wall whose widths grow 1, 2, ..., m and shrink back m-1, ...,
    2 ([n = m^2 - 1] processes in a truncated diamond silhouette; the
    bottom apex is omitted because a width-1 bottom row would collapse
    the coterie onto the single-apex quorum).  Cited by the paper's
    related work as a triangle-like construction whose failure
    probability does not vanish with system size. *)

val system : ?name:string -> half_rows:int -> unit -> Quorum.System.t
(** [system ~half_rows:m ()] over [n = m * m - 1] processes
    ([m >= 2]). *)

val failure_probability : half_rows:int -> p:float -> float
