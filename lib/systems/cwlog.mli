(** The CWlog crumbling wall (Peleg & Wool 1997).

    The wall whose row [i] (1-based) has width [ceil(log2 (i+1))]:
    widths 1, 2, 2, 3, 3, 3, 3, 4, ...  The paper's CWlog(14) is the
    first 6 rows and CWlog(29) the first 10.  Smallest quorums have
    size [O(log n)] (bottom row plus nothing below), largest
    [1 + (d-1)] from the top row. *)

val widths_for : int -> int array
(** [widths_for n] — CWlog row widths totalling exactly [n]; the last
    row is truncated when [n] falls inside it.  [n >= 1]. *)

val system : ?name:string -> n:int -> unit -> Quorum.System.t

val failure_probability : n:int -> p:float -> float
(** Exact, via {!Wall.failure_probability}. *)

val tradeoff_strategy : n:int -> Quorum.Strategy.t
(** The quorum-size / load tradeoff strategy of Peleg & Wool: pick the
    base row uniformly among the bottom [w_d] rows (the bottom row's
    width) and the elements below uniformly.  Reproduces the paper's
    section 6 numbers: average quorum size 4 and load 55.5% at n = 14,
    5.25 and 43.7% at n = 29. *)
