(** The majority quorum system (Gifford / Thomas).

    For odd [n] a quorum is any [(n+1)/2] processes.  For even [n] a
    plain strict majority ([n/2 + 1]) is not non-dominated (its failure
    probability at p = 1/2 exceeds 1/2); the classical fix, which the
    paper's tables assume (Majority(28) has F_0.5 = 0.5 and quorums of
    ~14), gives one distinguished process a second vote, making the
    vote total odd.  [make] applies that fix; [make_plain] builds the
    unadjusted strict majority for comparison. *)

val make : int -> Quorum.System.t
(** Tie-broken majority over [n] processes (process 0 holds 2 votes
    when [n] is even). *)

val make_plain : int -> Quorum.System.t
(** Strict majority, no tie-breaking. *)

val quorum_size : int -> int
(** Minimum quorum cardinality of [make n]. *)

val failure_probability : n:int -> p:float -> float
(** Exact failure probability of [make n]. *)
