(** Byzantine-fault-tolerant replicated register over a masking quorum
    system (Malkhi & Reiter's protocol shape, the adaptation the
    paper's related work anticipates).

    Up to [f] replicas are Byzantine: they return fabricated
    (version, value) pairs on reads and discard writes.  A write
    installs (version, value) on a full quorum; a read collects a
    quorum of replies and accepts the highest version {e vouched for by
    at least f + 1 replicas}.  Over an [f]-masking system ([|Q inter
    Q'| >= 2f+1]) this is safe: the reader's quorum shares at least
    [2f+1] replicas with the last write's quorum, of which at least
    [f+1] are correct, so the genuine value is always vouched; a
    fabricated pair can gather at most [f] vouchers, so it is never
    accepted.

    Over a merely crash-tolerant system (e.g. plain majority, where
    intersections can be a single replica) the same protocol loses
    writes: the read statistics expose this ({!stale_reads} grows),
    which is the experimental content of the [byzantine] test suite and
    ablation. *)

type t
type msg

val create :
  system:Quorum.System.t ->
  f:int ->
  byzantine:int list ->
  timeout:float ->
  t
(** [byzantine] lists the compromised replica ids (their behaviour is
    simulated inside the protocol handlers); [f] is the protocol's
    vouching threshold parameter.  [List.length byzantine] may exceed
    [f] to study over-budget attacks. *)

val handlers : t -> msg Sim.Engine.handlers
val bind : t -> msg Sim.Engine.t -> unit

val write : t -> client:int -> value:int -> unit
(** Clients must be correct replicas (not in [byzantine]). *)

val read : t -> client:int -> unit

val reads_ok : t -> int
val writes_ok : t -> int
val timeouts : t -> int
val unavailable : t -> int

val fabricated_reads : t -> int
(** Reads that returned a value never written by any client — must be
    0 whenever the protocol's vouching threshold is respected
    ([f >= 1]), even over weak quorum systems. *)

val stale_reads : t -> int
(** Reads that missed a write completed before they started — must be
    0 over an [f]-masking system with at most [f] Byzantine replicas. *)

val inconclusive_reads : t -> int
(** Reads where no (version, value) pair reached [f + 1] vouchers (the
    reader falls back to the initial value). *)
