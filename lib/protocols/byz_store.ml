module Engine = Sim.Engine
module Bitset = Quorum.Bitset

type msg =
  | Read_req of { op : int }
  | Read_rep of { op : int; version : int; value : int }
  | Write_req of { op : int; version : int; value : int }
  | Write_ack of { op : int }

type kind = Read_op | Write_op of int

type op = {
  id : int;
  client : int;
  kind : kind;
  started : float;
  waiting_for : Bitset.t;
  mutable replies : (int * int * int) list;  (** replica, version, value *)
  mutable write_version : int;
  mutable phase : [ `Version | `Install ];
}

type t = {
  system : Quorum.System.t;
  f : int;
  byzantine : bool array;
  timeout : float;
  mutable engine : msg Engine.t option;
  ops : (int, op) Hashtbl.t;
  mutable next_op : int;
  replicas : (int * int) array;  (** per replica (version, value) *)
  mutable reads_ok : int;
  mutable writes_ok : int;
  mutable timeouts : int;
  mutable unavailable : int;
  mutable fabricated_reads : int;
  mutable stale_reads : int;
  mutable inconclusive_reads : int;
  (* Monitors: every value ever written, and the committed history. *)
  mutable legitimate_values : int list;
  mutable committed : (float * int) list;  (** (commit time, version) *)
}

let create ~system ~f ~byzantine ~timeout =
  let n = system.Quorum.System.n in
  if f < 0 then invalid_arg "Byz_store.create: f < 0";
  let byz = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Byz_store.create: bad replica id";
      byz.(i) <- true)
    byzantine;
  {
    system;
    f;
    byzantine = byz;
    timeout;
    engine = None;
    ops = Hashtbl.create 32;
    next_op = 0;
    replicas = Array.make n (0, 0);
    reads_ok = 0;
    writes_ok = 0;
    timeouts = 0;
    unavailable = 0;
    fabricated_reads = 0;
    stale_reads = 0;
    inconclusive_reads = 0;
    legitimate_values = [ 0 ];
    committed = [];
  }

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Byz_store: bind the engine first"

let bind t engine =
  if Engine.nodes engine <> t.system.Quorum.System.n then
    invalid_arg "Byz_store.bind: engine size mismatch";
  t.engine <- Some engine

let reads_ok t = t.reads_ok
let writes_ok t = t.writes_ok
let timeouts t = t.timeouts
let unavailable t = t.unavailable
let fabricated_reads t = t.fabricated_reads
let stale_reads t = t.stale_reads
let inconclusive_reads t = t.inconclusive_reads

let committed_before t time =
  List.fold_left
    (fun acc (commit_time, version) ->
      if commit_time <= time then max acc version else acc)
    0 t.committed

let start t ~client kind =
  let engine = engine_exn t in
  if t.byzantine.(client) then
    invalid_arg "Byz_store: clients must be correct replicas";
  if not (Engine.is_live engine client) then
    t.unavailable <- t.unavailable + 1
  else begin
    let live = Engine.live_set engine in
    match t.system.Quorum.System.select (Engine.rng engine) ~live with
    | None -> t.unavailable <- t.unavailable + 1
    | Some quorum ->
        let id = t.next_op in
        t.next_op <- t.next_op + 1;
        let op =
          {
            id;
            client;
            kind;
            started = Engine.now engine;
            waiting_for = Bitset.copy quorum;
            replies = [];
            write_version = 0;
            phase = `Version;
          }
        in
        Hashtbl.add t.ops id op;
        Bitset.iter
          (fun j -> Engine.send engine ~src:client ~dst:j (Read_req { op = id }))
          quorum;
        Engine.set_timer engine ~node:client ~delay:t.timeout ~tag:id
  end

let write t ~client ~value =
  t.legitimate_values <- value :: t.legitimate_values;
  start t ~client (Write_op value)

let read t ~client = start t ~client Read_op

(* Highest version vouched by at least f+1 identical (version, value)
   replies; the protocol's masking core. *)
let vouched_result t op =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, version, value) ->
      let key = (version, value) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    op.replies;
  Hashtbl.fold
    (fun (version, value) count best ->
      if count >= t.f + 1 then
        match best with
        | Some (bv, _) when bv >= version -> best
        | _ -> Some (version, value)
      else best)
    counts None

let finish_read t op =
  Hashtbl.remove t.ops op.id;
  t.reads_ok <- t.reads_ok + 1;
  let version, value =
    match vouched_result t op with
    | Some vv -> vv
    | None ->
        t.inconclusive_reads <- t.inconclusive_reads + 1;
        (0, 0)
  in
  if not (List.mem value t.legitimate_values) then
    t.fabricated_reads <- t.fabricated_reads + 1;
  if version < committed_before t op.started then
    t.stale_reads <- t.stale_reads + 1

let begin_install t engine op value =
  let version =
    match vouched_result t op with
    | Some (v, _) -> v + 1
    | None -> 1 + committed_before t (Engine.now engine)
  in
  let live = Engine.live_set engine in
  match t.system.Quorum.System.select (Engine.rng engine) ~live with
  | None ->
      Hashtbl.remove t.ops op.id;
      t.unavailable <- t.unavailable + 1
  | Some wq ->
      op.phase <- `Install;
      op.write_version <- version;
      op.replies <- [];
      Bitset.clear op.waiting_for;
      Bitset.union_into ~dst:op.waiting_for wq;
      Bitset.iter
        (fun j ->
          Engine.send engine ~src:op.client ~dst:j
            (Write_req { op = op.id; version; value }))
        wq

let handlers t : msg Engine.handlers =
  {
    on_message =
      (fun engine ~node ~src msg ->
        match msg with
        | Read_req { op } ->
            let version, value =
              if t.byzantine.(node) then
                (* Adaptive coordinated attack: all Byzantine replicas
                   fabricate the same ever-growing version (keyed on
                   the operation counter so colluders agree without
                   extra messages) with a bogus value. *)
                ((max_int / 2) + t.next_op, 0xBAD)
              else t.replicas.(node)
            in
            Engine.send engine ~src:node ~dst:src
              (Read_rep { op; version; value })
        | Read_rep { op = op_id; version; value } ->
            (match Hashtbl.find_opt t.ops op_id with
            | None -> ()
            | Some op when op.phase = `Version ->
                if Bitset.mem op.waiting_for src then begin
                  Bitset.remove op.waiting_for src;
                  op.replies <- (src, version, value) :: op.replies;
                  if Bitset.is_empty op.waiting_for then
                    match op.kind with
                    | Read_op -> finish_read t op
                    | Write_op v -> begin_install t engine op v
                end
            | Some _ -> ())
        | Write_req { op; version; value } ->
            if not t.byzantine.(node) then begin
              let current, _ = t.replicas.(node) in
              if version > current then t.replicas.(node) <- (version, value)
            end;
            Engine.send engine ~src:node ~dst:src (Write_ack { op })
        | Write_ack { op = op_id } ->
            (match Hashtbl.find_opt t.ops op_id with
            | None -> ()
            | Some op when op.phase = `Install ->
                if Bitset.mem op.waiting_for src then begin
                  Bitset.remove op.waiting_for src;
                  if Bitset.is_empty op.waiting_for then begin
                    Hashtbl.remove t.ops op.id;
                    t.writes_ok <- t.writes_ok + 1;
                    t.committed <-
                      (Engine.now engine, op.write_version) :: t.committed
                  end
                end
            | Some _ -> ()));
    on_timer =
      (fun _engine ~node:_ ~tag ->
        match Hashtbl.find_opt t.ops tag with
        | Some op ->
            Hashtbl.remove t.ops op.id;
            t.timeouts <- t.timeouts + 1
        | None -> ());
    on_crash =
      (fun _ ~node ->
        let doomed =
          Hashtbl.fold
            (fun _ op acc -> if op.client = node then op :: acc else acc)
            t.ops []
        in
        List.iter
          (fun op ->
            Hashtbl.remove t.ops op.id;
            t.timeouts <- t.timeouts + 1)
          doomed);
    on_recover = (fun _ ~node:_ ~amnesia:_ -> ());
  }
