(** Quorum-based distributed mutual exclusion (Maekawa 1985 style),
    parameterized by any quorum system.

    This is the protocol the paper's introduction sketches: to enter
    the critical section a node obtains permission from every member of
    a quorum; the intersection property makes two simultaneous critical
    sections impossible.  The naive sketch deadlocks, so the full
    arbiter protocol is implemented: REQUEST / GRANT / RELEASE plus the
    INQUIRE / YIELD / FAILED deadlock-avoidance handshake with a total
    priority order on requests.

    Every node is simultaneously a {e client} (it may request the
    critical section) and an {e arbiter} (it grants its permission to
    one client at a time).

    {2 Resilience}

    All protocol traffic rides {!Sim.Rpc} (ack + bounded retransmission
    with backoff), so the protocol runs correctly over lossy networks —
    no zero-loss assumption.  Quorums are selected from the node's
    {!Sim.Failure_detector} view (suspected-live nodes), not the
    engine's omniscient live-set; while an acquisition is outstanding a
    watchdog re-selects an alternate quorum when an ungranted member
    becomes suspect ({!reselections}) and abandons the attempt outright
    after [acquire_timeout] ({!abandoned}).

    Safety never depends on the failure detector being right: arbiters
    ignore suspicion entirely and release a grant only on RELEASE,
    YIELD, or an [Alive] recovery announcement from the grantee itself
    (clients lose their volatile state on crash; arbiter grant state is
    stable).  A false suspicion can therefore cost liveness (an extra
    re-selection) but never a safety violation.

    Liveness survives dead-lettered releases too: a RELEASE whose
    sender was unreachable long enough for the rpc layer to give up
    would otherwise leave the arbiter granted to an abandoned request
    forever.  Each arbiter runs a background {e stale-grant probe}: a
    grant still held after two consecutive probe ticks draws an
    INQUIRE, and a client inquired about a request that is no longer
    its active one answers RELEASE (it can never use that grant), so
    stuck grants are reclaimed once connectivity returns.

    Safety (at most [capacity] nodes in the critical section) is
    asserted at runtime and surfaced through {!violations}.

    {2 Durability and amnesia}

    The grant register is the one piece of arbiter state mutual
    exclusion depends on: it is held in a {!Sim.Durable} cell and a
    GRANT leaves the arbiter only once the decision has fsynced
    (write-ahead), so even an {e amnesiac} recovery (see
    {!Sim.Engine.recover_at}) restores it faithfully.  Release
    tombstones ride the durable log.  Everything else an arbiter keeps
    (queue, inquire flag, probe state, alive floors) is liveness-only
    and is rebuilt after amnesia by the stale-grant probe, client
    watchdogs and fresh [Alive] announcements — at worst costing extra
    re-selections, never a violation.

    Usage:
    {[
      let mx = Mutex.create ~system ~cs_duration:1.0 () in
      let engine = Engine.create ~seed ~nodes:system.n (Mutex.handlers mx) in
      Mutex.bind mx engine;
      Engine.schedule engine ~time:3.0 (fun () -> Mutex.request mx ~node:2);
      Engine.run engine
    ]} *)

type t
type msg

val of_config :
  ?config:Client_config.t ->
  ?capacity:int ->
  system:Quorum.System.t ->
  cs_duration:float ->
  unit ->
  t
(** The primary constructor: client tunables live in the
    {!Client_config.t} record.  Honoured fields: [rpc] (the
    reliable-delivery layer, see {!Sim.Rpc.create}), [fd] (the
    failure detector, see {!Sim.Failure_detector.create}),
    [durability] (the arbiters' durable store — a non-zero fsync
    latency delays GRANTs, torn-tail mode corrupts the last in-flight
    tombstone on crash), and [timeout], read as the {e acquire}
    timeout: how long a node keeps retrying an acquisition (across
    quorum re-selections) before abandoning it.  [retries] is ignored
    — requests queue at the arbiters instead of retrying.

    [routing.hedge] is the mutex's safe embodiment of hedged requests:
    grants are stateful, so instead of duplicating a request to a
    parallel quorum, the waiting watchdog fires early (each beat
    period, floored by [hedge_floor]) and reselects around any
    ungranted member whose {e graded} suspicion level (see
    {!Sim.Failure_detector.suspicion}) has reached [hedge_quantile] —
    before the detector fully suspects it.  Off (the default) keeps
    the historical watchdog exactly.

    [capacity] (default 1) is the number of simultaneous critical
    sections the system is supposed to allow: 1 for a coterie, [k]
    for a k-coterie (see [Systems.K_coterie]). *)

val create :
  ?capacity:int ->
  ?acquire_timeout:float ->
  ?rpc_timeout:float ->
  ?rpc_backoff:float ->
  ?rpc_attempts:int ->
  ?fd_period:float ->
  ?fd_timeout:float ->
  ?durability:Sim.Durable.config ->
  system:Quorum.System.t ->
  cs_duration:float ->
  unit ->
  t
(** Compatibility shim over {!of_config}: packs the historical
    keyword arguments (defaults unchanged — [acquire_timeout]
    defaults to 1000., not the record's 25.) into a
    {!Client_config.t}.  New code should build the record instead. *)

val handlers : t -> msg Sim.Engine.handlers

val bind : t -> msg Sim.Engine.t -> unit
(** Must be called once, before the first request; the engine's node
    count must equal [system.n].  Starts the heartbeat traffic. *)

val request : t -> node:int -> unit
(** Ask [node] to acquire the critical section now (queued if it is
    already waiting or inside; no-op if it is dead). *)

val entries : t -> int
(** Completed critical-section entries. *)

val violations : t -> int
(** Safety violations observed — moments with more than [capacity]
    holders (must be 0). *)

val max_concurrency : t -> int
(** Peak number of simultaneous critical-section holders; for a
    k-coterie under contention this should reach [k]. *)

val unavailable : t -> int
(** Requests dropped because the node's live-view contained no quorum
    at selection time. *)

val reselections : t -> int
(** Attempts re-issued on an alternate quorum after a member was
    suspected or a send was dead-lettered. *)

val abandoned : t -> int
(** Acquisitions given up after [acquire_timeout]. *)

val dead_letters : t -> int
(** Protocol messages the rpc layer gave up on. *)

val retransmissions : t -> int
(** Rpc retransmissions spent on protocol messages. *)

val acquire_latency : t -> Obs.Metrics.histogram
(** Request-to-entry latency samples ([mutex.acquire_latency] in the
    engine's metrics registry).  Raises [Invalid_argument] before
    {!bind}: instruments live in the engine's {!Obs.t}. *)

val debug_dump : t -> string
(** Human-readable dump of client and arbiter states (diagnostics). *)
