(** Quorum-based distributed mutual exclusion (Maekawa 1985 style),
    parameterized by any quorum system.

    This is the protocol the paper's introduction sketches: to enter
    the critical section a node obtains permission from every member of
    a quorum; the intersection property makes two simultaneous critical
    sections impossible.  The naive sketch deadlocks, so the full
    arbiter protocol is implemented: REQUEST / GRANT / RELEASE plus the
    INQUIRE / YIELD / FAILED deadlock-avoidance handshake with a total
    priority order on requests.

    Every node is simultaneously a {e client} (it may request the
    critical section) and an {e arbiter} (it grants its permission to
    one client at a time).  Quorums are chosen by the system's
    selection strategy against the currently live nodes.

    Safety (at most [capacity] nodes in the critical section) is
    asserted at runtime and surfaced through {!violations}.  The
    protocol assumes reliable delivery between live nodes (no
    retransmission layer): run it over a {!Sim.Network.t} with zero
    loss; crashes are tolerated by live-aware quorum selection.

    Usage:
    {[
      let mx = Mutex.create ~system ~cs_duration:1.0 in
      let engine = Engine.create ~seed ~nodes:system.n (Mutex.handlers mx) in
      Mutex.bind mx engine;
      Engine.schedule engine ~time:3.0 (fun () -> Mutex.request mx ~node:2);
      Engine.run engine
    ]} *)

type t
type msg

val create :
  ?capacity:int -> system:Quorum.System.t -> cs_duration:float -> unit -> t
(** [capacity] (default 1) is the number of simultaneous critical
    sections the system is supposed to allow: 1 for a coterie, [k] for
    a k-coterie (see [Systems.K_coterie]). *)

val handlers : t -> msg Sim.Engine.handlers

val bind : t -> msg Sim.Engine.t -> unit
(** Must be called once, before the first request; the engine's node
    count must equal [system.n]. *)

val request : t -> node:int -> unit
(** Ask [node] to acquire the critical section now (no-op if it is
    already waiting, inside, or dead). *)

val entries : t -> int
(** Completed critical-section entries. *)

val violations : t -> int
(** Safety violations observed — moments with more than [capacity]
    holders (must be 0). *)

val max_concurrency : t -> int
(** Peak number of simultaneous critical-section holders; for a
    k-coterie under contention this should reach [k]. *)

val unavailable : t -> int
(** Requests abandoned because no quorum was live at selection time. *)

val wait_stats : t -> Sim.Stats.t
(** Request-to-entry latency samples. *)

val debug_dump : t -> string
(** Human-readable dump of client and arbiter states (diagnostics). *)
