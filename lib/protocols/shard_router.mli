(** Multi-key sharding: map keys onto sub-triangles / sub-grids of the
    hierarchy so disjoint keys hit disjoint subquorums — the Section-4
    load balancing made operational.

    The universe is cut into contiguous near-equal blocks, one shard
    per block, and each shard gets its own quorum system built over
    its block through the same placement machinery as
    {!Membership} ({!Quorum.System.embed}): a tie-broken majority, the
    largest standard h-triang fitting the block, or a near-square
    auto-2x2 h-grid (asymmetric read/write halves).  Block members
    beyond a construction's footprint are idle spares.

    Keys route by [key mod shards]; {!Replicated_store.of_config}
    accepts a router and then selects every per-key read/write quorum
    from the key's shard, so operations on different shards touch
    disjoint replicas and scale throughput with the shard count. *)

type family = Majority | Htriang | Hgrid

type t

val create :
  ?family:family -> universe:int -> shards:int -> unit -> (t, string) result
(** Cut [universe] processes into [shards] blocks and build one
    [family] (default [Hgrid]) quorum system per block.  [Error] when
    [shards < 1] or [shards > universe]. *)

val universe : t -> int
val family : t -> family
val family_label : family -> string
val shard_count : t -> int

val shard_of_key : t -> key:int -> int
(** [key mod shards].  Raises [Invalid_argument] on a negative key. *)

val read_system : t -> key:int -> Quorum.System.t
val write_system : t -> key:int -> Quorum.System.t
(** The key's shard systems, expressed over the full universe (so any
    engine-sized live set / RNG works unchanged). *)

val shard_read_system : t -> shard:int -> Quorum.System.t
val shard_write_system : t -> shard:int -> Quorum.System.t

val members : t -> shard:int -> int array
(** The shard's block (including idle spares), ascending. *)

val shard_of_node : t -> node:int -> int option
(** The shard whose quorums can include [node]; [None] for spares —
    a recovering spare has no shard state to re-sync. *)

val describe : t -> string
(** Multi-line human-readable layout dump. *)
