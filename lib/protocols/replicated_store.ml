module Engine = Sim.Engine
module Rpc = Sim.Rpc
module Failure_detector = Sim.Failure_detector
module Durable = Sim.Durable
module Batcher = Sim.Batcher
module Bitset = Quorum.Bitset
module Metrics = Obs.Metrics
module Span = Obs.Span

type app =
  | Version_req of { op : int; key : int }
  | Version_rep of { op : int; version : int; value : int }
  | Write_req of { op : int; key : int; version : int; value : int }
  | Write_ack of { op : int }
  | Recovering of { op : int }
      (** nack: the replica is an amnesiac recoverer that has not
          finished its re-join sync and refuses to serve *)
  | Sync_req of { sync : int }
  | Sync_rep of { sync : int; entries : (int * int * int) list }
      (** (key, version, value) dump of the helper's replica table *)
  | Batch_req of { reqs : app list }
      (** k version/write requests amortized over one rpc exchange and
          one durable flush *)
  | Batch_rep of { reps : app list }  (** their replies, also batched *)

type msg = Beat | App of app Rpc.msg

type phase =
  | Reading of {
      waiting_for : Bitset.t;
      targets : Bitset.t;
          (** everyone this attempt was sent to: the selected quorum
              plus any hedge backups added later *)
      acked : Bitset.t;  (** targets that replied (dedup by op id) *)
      mutable best : int * int;
    }
      (** Collecting (version, value) replies from a read quorum. *)
  | Writing of { waiting_for : Bitset.t; targets : Bitset.t; acked : Bitset.t }

type kind = Read_op | Write_op of int  (** payload for the write phase *)

type outcome =
  | Read_done of { version : int; value : int }
  | Write_done of { version : int }
  | Timed_out
  | Unavailable

type request = Get of { key : int } | Put of { key : int; value : int }

type pending = {
  p_key : int;
  p_kind : kind;
  p_notify : (outcome -> unit) option;
}

type session = {
  ses_id : int;
  ses_client : int;
  window : int;
  max_queue : int;
  batcher : app Batcher.t option;  (** [None]: unbatched, send directly *)
  mutable backlog : pending list;  (** submission order, oldest first *)
  mutable backlog_len : int;
  keys_busy : (int, int) Hashtbl.t;
      (** keys with an in-flight op: per-key FIFO — a later op on the
          same key never overtakes an earlier one, so a window-w run
          commits each key's writes in submission order *)
  mutable in_flight : int;
  mutable submitted : int;
  mutable completed : int;
  mutable shed : int;
  mutable peak_backlog : int;
}

type op = {
  id : int;
  client : int;
  key : int;
  kind : kind;
  started : float;
  mutable phase : phase;
  mutable write_version : int;
  mutable retries_left : int;
  mutable deadline : float;
      (** current attempt's timeout instant; earlier timer fires are
          stale leftovers from a superseded attempt *)
  mutable done_ : bool;
  mutable span : int;  (** root span of the whole client operation *)
  mutable attempt_span : int;  (** span of the current quorum attempt *)
  mutable last_send : float;
      (** when this op last fanned requests out — the base of the
          per-peer latency samples its replies contribute *)
  mutable hedge_armed : float;
      (** the [deadline] of the attempt whose hedge timer is pending;
          a fire against a superseded attempt is ignored *)
  sess : session;
  notify : (outcome -> unit) option;
}

type instruments = {
  st_reads_ok : Metrics.counter;
  st_writes_ok : Metrics.counter;
  st_unavailable : Metrics.counter;
  st_timeouts : Metrics.counter;
  st_retries : Metrics.counter;
  st_stale : Metrics.counter;
  st_rejoins : Metrics.counter;
  st_refusals : Metrics.counter;
  st_latency : Metrics.histogram;
  st_sessions : Metrics.counter;
  st_submitted : Metrics.counter;
  st_shed : Metrics.counter;
  st_batches : Metrics.counter;
  st_batched : Metrics.counter;
  st_backlog_peak : Metrics.gauge;
  st_hedges : Metrics.counter;
  st_degraded_writes : Metrics.counter;
  st_degraded : Metrics.gauge;
}

type sync = {
  sync_id : int;
  sync_waiting : Bitset.t;
  sync_acc : (int, int * int) Hashtbl.t;  (** key -> best (version, value) *)
}

type service = { per_req : float; per_batch : float }

let no_service = { per_req = 0.0; per_batch = 0.0 }

let service ?(per_req = 0.0) ?(per_batch = 0.0) () =
  if per_req < 0.0 || per_batch < 0.0 then
    invalid_arg "Replicated_store.service";
  { per_req; per_batch }

type t = {
  read_system : Quorum.System.t;
  write_system : Quorum.System.t;
  router : Shard_router.t option;
      (** when present, per-key quorum selection goes through the
          router's subquorum systems instead of the globals *)
  serv : service;
  timeout : float;
  retries : int;
  routing : Client_config.routing;
  durability : Durable.config;
  rpc : (app, msg) Rpc.t;
  fd : msg Failure_detector.t;
  mutable engine : msg Engine.t option;
  mutable dur : (int * int * int) Durable.t option;
      (** write-ahead log of installed (key, version, value) records *)
  ops : (int, op) Hashtbl.t;
  mutable next_op : int;
  mutable next_session : int;
  replicas : (int, int * int) Hashtbl.t array;  (** key -> (version, value) *)
  rejoining : bool array;
      (** amnesiac recoverers that have not completed their sync yet *)
  incarnation : int array;
      (** bumped on crash: retires acks scheduled behind an fsync *)
  busy_until : float array;
      (** replica service model: instant each node's processor frees up *)
  syncs : sync option array;
  mutable next_sync : int;
  mutable reads_ok : int;
  mutable writes_ok : int;
  mutable unavailable : int;
  mutable timeouts : int;
  mutable retried : int;
  mutable stale_reads : int;
  mutable rejoins : int;
  mutable refusals : int;
  mutable batches : int;
  mutable batched_ops : int;
  mutable shed : int;
  mutable hedges : int;  (** hedge requests sent to backup replicas *)
  mutable degraded_writes : int;
      (** writes refused fast by the degraded read-only mode *)
  mutable degraded : bool;  (** currently in degraded read-only mode *)
  (* Per-peer completed-request latency samples (bounded ring), the
     adaptive base of the hedge delay.  Pure bookkeeping: no RNG, no
     events. *)
  lat_ring : float array array;
  lat_len : int array;
  lat_pos : int array;
  (* Consistency monitor: per key, the (commit time, version) history
     of completed writes, newest first. *)
  committed : (int, (float * int) list) Hashtbl.t;
  mutable history : Obs.Trace_analysis.hop list;
      (** completed client ops, newest first — auditor input *)
  mutable ins : instruments option;
}

let of_config ?(config = Client_config.default) ?router
    ?(service = no_service) ~read_system ~write_system () =
  let n = read_system.Quorum.System.n in
  if write_system.Quorum.System.n <> n then
    invalid_arg "Replicated_store.of_config: universe mismatch";
  (match router with
  | Some r when Shard_router.universe r <> n ->
      invalid_arg "Replicated_store.of_config: router universe mismatch"
  | Some _ | None -> ());
  {
    read_system;
    write_system;
    router;
    serv = service;
    timeout = config.Client_config.timeout;
    retries = config.Client_config.retries;
    routing = config.Client_config.routing;
    durability = config.Client_config.durability;
    rpc =
      Rpc.create ~timeout:config.Client_config.rpc.Client_config.timeout
        ~backoff:config.Client_config.rpc.Client_config.backoff
        ~max_attempts:config.Client_config.rpc.Client_config.attempts
        ~wrap:(fun m -> App m)
        ();
    fd =
      Failure_detector.create
        ~period:config.Client_config.fd.Client_config.period
        ~timeout:config.Client_config.fd.Client_config.timeout
        ~mode:(Client_config.fd_mode config) ~nodes:n ~beat:Beat ();
    engine = None;
    dur = None;
    ops = Hashtbl.create 64;
    next_op = 0;
    next_session = 0;
    replicas = Array.init n (fun _ -> Hashtbl.create 16);
    rejoining = Array.make n false;
    incarnation = Array.make n 0;
    busy_until = Array.make n 0.0;
    syncs = Array.make n None;
    next_sync = 0;
    reads_ok = 0;
    writes_ok = 0;
    unavailable = 0;
    timeouts = 0;
    retried = 0;
    stale_reads = 0;
    rejoins = 0;
    refusals = 0;
    batches = 0;
    batched_ops = 0;
    shed = 0;
    hedges = 0;
    degraded_writes = 0;
    degraded = false;
    lat_ring = Array.init n (fun _ -> Array.make 32 0.0);
    lat_len = Array.make n 0;
    lat_pos = Array.make n 0;
    committed = Hashtbl.create 16;
    history = [];
    ins = None;
  }

(* The historical keyword entry, now a shim over the record. *)
let create ?(retries = 2) ?(rpc_timeout = 4.0) ?(rpc_backoff = 1.6)
    ?(rpc_attempts = 6) ?(fd_period = 1.0) ?(fd_timeout = 5.0)
    ?(durability = Durable.instant) ~read_system ~write_system ~timeout () =
  let config =
    {
      Client_config.rpc =
        {
          Client_config.timeout = rpc_timeout;
          backoff = rpc_backoff;
          attempts = rpc_attempts;
        };
      fd =
        { Client_config.period = fd_period; timeout = fd_timeout;
          accrual = None };
      routing = Client_config.default.Client_config.routing;
      durability;
      timeout;
      retries;
    }
  in
  of_config ~config ~read_system ~write_system ()

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Replicated_store: bind the engine first"

let ins_exn t =
  match t.ins with
  | Some i -> i
  | None -> invalid_arg "Replicated_store: bind the engine first"

let dur_exn t =
  match t.dur with
  | Some d -> d
  | None -> invalid_arg "Replicated_store: bind the engine first"

let reads_ok t = t.reads_ok
let writes_ok t = t.writes_ok
let unavailable t = t.unavailable
let timeouts t = t.timeouts
let retried t = t.retried
let stale_reads t = t.stale_reads
let rejoins t = t.rejoins
let rejoin_refusals t = t.refusals
let rejoining t ~node = t.rejoining.(node)
let batches t = t.batches
let batched_ops t = t.batched_ops
let shed t = t.shed
let hedges t = t.hedges
let degraded_writes t = t.degraded_writes
let degraded t = t.degraded
let fd_stats t ~node = Failure_detector.stats t.fd ~node
let fd_suspicion t ~node j = Failure_detector.suspicion t.fd ~node j

let replica_value t ~node ~key = Hashtbl.find_opt t.replicas.(node) key

let log_length t ~node = Durable.log_length (dur_exn t) ~node
let dead_letters t = Rpc.dead_letters t.rpc
let retransmissions t = Rpc.retransmissions t.rpc
let op_latency t = (ins_exn t).st_latency
let history t = List.rev t.history
let spans_exn t = Obs.spans (Engine.obs (engine_exn t))

(* Per-key quorum systems: the router's subquorums when sharded, the
   globals otherwise. *)
let read_system_for t key =
  match t.router with
  | None -> t.read_system
  | Some r -> Shard_router.read_system r ~key

let write_system_for t key =
  match t.router with
  | None -> t.write_system
  | Some r -> Shard_router.write_system r ~key

let universe t = t.read_system.Quorum.System.n

let mark_unavailable t =
  t.unavailable <- t.unavailable + 1;
  Metrics.incr (ins_exn t).st_unavailable

let rsend t ~src ~dst m = Rpc.send t.rpc ~src ~dst m

(* Route a quorum request through the op's session batcher when one is
   configured; unbatched sessions send exactly the bare messages the
   pre-session store sent. *)
let emit t (op : op) ~dst payload =
  match op.sess.batcher with
  | Some b -> Batcher.add b ~dst payload
  | None -> rsend t ~src:op.client ~dst payload

(* --- Suspicion-aware routing: hedging + degraded mode --------------- *)

(* Hedge timers live in their own tag space above the op-id tags. *)
let hedge_offset = 0x1000_0000

let record_latency t ~peer sample =
  let ring = t.lat_ring.(peer) in
  let cap = Array.length ring in
  ring.(t.lat_pos.(peer)) <- sample;
  t.lat_pos.(peer) <- (t.lat_pos.(peer) + 1) mod cap;
  if t.lat_len.(peer) < cap then t.lat_len.(peer) <- t.lat_len.(peer) + 1

(* The hedge delay for an attempt: the worst per-peer latency quantile
   across the members we are waiting on, floored by the cold-start
   guard.  Nearest-rank on the peer's recent samples. *)
let hedge_delay t waiting =
  let q = t.routing.hedge_quantile in
  let worst = ref 0.0 in
  Bitset.iter
    (fun j ->
      let len = t.lat_len.(j) in
      if len > 0 then begin
        let a = Array.sub t.lat_ring.(j) 0 len in
        Array.sort compare a;
        let idx = min (len - 1) (int_of_float (ceil (q *. float_of_int len)) - 1) in
        let idx = max 0 idx in
        if a.(idx) > !worst then worst := a.(idx)
      end)
    waiting;
  Float.max t.routing.hedge_floor !worst

(* Degraded read-only mode: latched while the client's view holds no
   write quorum, cleared the first time a write finds one again. *)
let set_degraded t flag =
  if flag <> t.degraded then begin
    t.degraded <- flag;
    Metrics.set (ins_exn t).st_degraded (if flag then 1.0 else 0.0)
  end

(* Arm one hedge check for the op's current attempt.  Only on the
   unbatched path: a hedged Batch_req would duplicate every rider.
   With [routing.hedge] off this is never called, so no timer is
   scheduled and runs stay bit-identical to the pre-hedging store. *)
let arm_hedge t (op : op) waiting =
  if t.routing.hedge && op.sess.batcher = None && not (Bitset.is_empty waiting)
  then begin
    let engine = engine_exn t in
    op.hedge_armed <- op.deadline;
    Engine.set_timer engine ~node:op.client ~delay:(hedge_delay t waiting)
      ~tag:(hedge_offset + op.id)
  end

(* Highest version whose write completed no later than [time]: a read
   that starts afterwards must not return anything older (writes still
   in flight when the read started may or may not be visible). *)
let committed_version_before t key time =
  match Hashtbl.find_opt t.committed key with
  | None -> 0
  | Some history ->
      List.fold_left
        (fun acc (commit_time, version) ->
          if commit_time <= time then max acc version else acc)
        0 history

(* Select a fresh read quorum — from the client's failure-detector
   view, not the omniscient live-set — and (re)enter the version
   phase. *)
let rec launch_attempt t (op : op) =
  let engine = engine_exn t in
  let sp = spans_exn t in
  let now = Engine.now engine in
  (* A relaunch supersedes the previous attempt's span. *)
  if op.attempt_span >= 0 then
    Span.finish sp ~time:now ~status:(Span.Error "retry") op.attempt_span;
  let live = Failure_detector.view t.fd ~node:op.client in
  (* Degraded read-only mode: a write that sees no unsuspected write
     quorum is refused immediately instead of burning the attempt
     timeout on a doomed read phase; reads keep flowing. *)
  let degraded_refusal =
    t.routing.degraded_reads
    &&
    match op.kind with
    | Read_op -> false
    | Write_op _ ->
        let ok = (write_system_for t op.key).Quorum.System.avail live in
        set_degraded t (not ok);
        not ok
  in
  if degraded_refusal then begin
    t.degraded_writes <- t.degraded_writes + 1;
    Metrics.incr (ins_exn t).st_degraded_writes;
    Hashtbl.remove t.ops op.id;
    Span.finish sp ~time:now ~status:(Span.Error "degraded") op.span;
    mark_unavailable t;
    session_completed t op Unavailable
  end
  else
    match
      (read_system_for t op.key).Quorum.System.select (Engine.rng engine) ~live
    with
    | None ->
        Hashtbl.remove t.ops op.id;
        Span.finish sp ~time:now ~status:(Span.Error "unavailable") op.span;
        mark_unavailable t;
        session_completed t op Unavailable
    | Some quorum ->
        op.phase <-
          Reading
            {
              waiting_for = Bitset.copy quorum;
              targets = Bitset.copy quorum;
              acked = Bitset.create (universe t);
              best = (0, 0);
            };
        op.deadline <- now +. t.timeout;
        op.last_send <- now;
        op.attempt_span <-
          Span.start sp ~time:now ~node:op.client ~parent:op.span
            "store.attempt";
        Engine.with_span_ctx engine op.attempt_span (fun () ->
            Bitset.iter
              (fun j ->
                emit t op ~dst:j (Version_req { op = op.id; key = op.key }))
              quorum;
            Engine.set_timer engine ~node:op.client ~delay:t.timeout
              ~tag:op.id;
            arm_hedge t op quorum)

(* One client operation through a session: identical to the historical
   per-op path, plus session bookkeeping on completion. *)
and start_session_op t s ?notify ~key kind =
  let engine = engine_exn t in
  let client = s.ses_client in
  if not (Engine.is_live engine client) then begin
    (* A dead client cannot submit: counted with the refused ops. *)
    mark_unavailable t;
    s.in_flight <- s.in_flight - 1;
    release_key s key;
    s.completed <- s.completed + 1;
    (match notify with Some f -> f Unavailable | None -> ());
    session_pump t s
  end
  else begin
    let id = t.next_op in
    t.next_op <- t.next_op + 1;
    let op =
      {
        id;
        client;
        key;
        kind;
        started = Engine.now engine;
        phase =
          Reading
            {
              waiting_for = Bitset.create 0;
              targets = Bitset.create 0;
              acked = Bitset.create 0;
              best = (0, 0);
            };
        write_version = 0;
        retries_left = t.retries;
        deadline = 0.0;
        done_ = false;
        span = -1;
        attempt_span = -1;
        last_send = 0.0;
        hedge_armed = neg_infinity;
        sess = s;
        notify;
      }
    in
    op.span <-
      Span.start (spans_exn t) ~time:op.started ~node:client
        (match kind with
        | Read_op -> "store.read"
        | Write_op _ -> "store.write");
    Hashtbl.add t.ops id op;
    launch_attempt t op
  end

and release_key s key =
  match Hashtbl.find_opt s.keys_busy key with
  | Some c when c <= 1 -> Hashtbl.remove s.keys_busy key
  | Some c -> Hashtbl.replace s.keys_busy key (c - 1)
  | None -> ()

(* An op left the session's window (done, failed or refused): account
   for it, notify the submitter, refill the pipeline. *)
and session_completed t (op : op) outcome =
  let s = op.sess in
  s.in_flight <- s.in_flight - 1;
  release_key s op.key;
  s.completed <- s.completed + 1;
  (match op.notify with Some f -> f outcome | None -> ());
  session_pump t s

(* Launch backlogged ops while the window has room, preserving per-key
   order: the first backlog entry whose key has no in-flight op wins. *)
and session_pump t s =
  if s.in_flight < s.window && s.backlog_len > 0 then begin
    let rec take acc = function
      | [] -> None
      | p :: rest ->
          if Hashtbl.mem s.keys_busy p.p_key then take (p :: acc) rest
          else Some (p, List.rev_append acc rest)
    in
    match take [] s.backlog with
    | None -> ()
    | Some (p, rest) ->
        s.backlog <- rest;
        s.backlog_len <- s.backlog_len - 1;
        s.in_flight <- s.in_flight + 1;
        Hashtbl.replace s.keys_busy p.p_key
          (1
          +
          match Hashtbl.find_opt s.keys_busy p.p_key with
          | Some c -> c
          | None -> 0);
        start_session_op t s ?notify:p.p_notify ~key:p.p_key p.p_kind;
        session_pump t s
  end

and finish t op outcome =
  op.done_ <- true;
  Hashtbl.remove t.ops op.id;
  let engine = engine_exn t in
  let ins = ins_exn t in
  let now = Engine.now engine in
  let sp = spans_exn t in
  let close status =
    if op.attempt_span >= 0 then
      Span.finish sp ~time:now ~status op.attempt_span;
    Span.finish sp ~time:now ~status op.span
  in
  let record_hop ~is_write version =
    t.history <-
      {
        Obs.Trace_analysis.client = op.client;
        key = op.key;
        is_write;
        version;
        started = op.started;
        finished = now;
        span = op.span;
      }
      :: t.history
  in
  match outcome with
  | `Read_done (version, value) ->
      t.reads_ok <- t.reads_ok + 1;
      Metrics.incr ins.st_reads_ok;
      Metrics.observe ins.st_latency
        ~labels:[ ("op", "read") ]
        (now -. op.started);
      close Span.Ok;
      record_hop ~is_write:false version;
      if version < committed_version_before t op.key op.started then begin
        t.stale_reads <- t.stale_reads + 1;
        Metrics.incr ins.st_stale
      end;
      session_completed t op (Read_done { version; value })
  | `Write_done version ->
      t.writes_ok <- t.writes_ok + 1;
      Metrics.incr ins.st_writes_ok;
      Metrics.observe ins.st_latency
        ~labels:[ ("op", "write") ]
        (now -. op.started);
      close Span.Ok;
      record_hop ~is_write:true version;
      let history =
        match Hashtbl.find_opt t.committed op.key with
        | Some h -> h
        | None -> []
      in
      Hashtbl.replace t.committed op.key ((now, version) :: history);
      session_completed t op (Write_done { version })
  | `Timeout ->
      t.timeouts <- t.timeouts + 1;
      Metrics.incr ins.st_timeouts;
      close (Span.Error "timeout");
      session_completed t op Timed_out

(* The current attempt cannot complete (timeout or a dead-lettered
   request): retry on a fresh quorum or give up. *)
and attempt_failed t (op : op) =
  let engine = engine_exn t in
  if op.retries_left > 0 && Engine.is_live engine op.client then begin
    op.retries_left <- op.retries_left - 1;
    t.retried <- t.retried + 1;
    Metrics.incr (ins_exn t).st_retries;
    launch_attempt t op
  end
  else finish t op `Timeout

(* --- Sessions ------------------------------------------------------- *)

module Session = struct
  type store = t
  type nonrec t = session

  let create (t : store) ~client ?(window = 1) ?(batch_size = 1)
      ?(batch_delay = 0.0) ?(max_queue = max_int) () =
    let engine = engine_exn t in
    let n = Engine.nodes engine in
    if client < 0 || client >= n then
      invalid_arg "Session.create: client out of range";
    if window < 1 then invalid_arg "Session.create: window";
    if batch_size < 1 then invalid_arg "Session.create: batch_size";
    if batch_delay < 0.0 then invalid_arg "Session.create: batch_delay";
    if max_queue < 0 then invalid_arg "Session.create: max_queue";
    let id = t.next_session in
    t.next_session <- id + 1;
    let ins = ins_exn t in
    Metrics.incr ins.st_sessions;
    let batcher =
      if batch_size <= 1 then None
      else
        Some
          (Batcher.create ~max_size:batch_size ~max_delay:batch_delay
             ~nodes:n
             ~schedule:(fun ~delay k ->
               Engine.schedule engine ~time:(Engine.now engine +. delay) k)
             ~flush:(fun ~dst reqs ->
               t.batches <- t.batches + 1;
               t.batched_ops <- t.batched_ops + List.length reqs;
               Metrics.incr ins.st_batches;
               Metrics.incr ins.st_batched ~by:(List.length reqs);
               rsend t ~src:client ~dst (Batch_req { reqs }))
             ())
    in
    {
      ses_id = id;
      ses_client = client;
      window;
      max_queue;
      batcher;
      backlog = [];
      backlog_len = 0;
      keys_busy = Hashtbl.create 8;
      in_flight = 0;
      submitted = 0;
      completed = 0;
      shed = 0;
      peak_backlog = 0;
    }

  let submit (t : store) (s : t) ?on_complete req =
    let key, kind =
      match req with
      | Get { key } -> (key, Read_op)
      | Put { key; value } -> (key, Write_op value)
    in
    if key < 0 then invalid_arg "Session.submit: key";
    let ins = ins_exn t in
    s.submitted <- s.submitted + 1;
    Metrics.incr ins.st_submitted
      ~labels:[ ("client", string_of_int s.ses_client) ];
    if s.in_flight < s.window && not (Hashtbl.mem s.keys_busy key) then begin
      s.in_flight <- s.in_flight + 1;
      Hashtbl.replace s.keys_busy key 1;
      start_session_op t s ?notify:on_complete ~key kind;
      true
    end
    else if s.backlog_len >= s.max_queue then begin
      (* Open-loop overload: the bounded queue sheds instead of
         growing without limit. *)
      s.shed <- s.shed + 1;
      t.shed <- t.shed + 1;
      Metrics.incr ins.st_shed
        ~labels:[ ("client", string_of_int s.ses_client) ];
      false
    end
    else begin
      s.backlog <-
        s.backlog @ [ { p_key = key; p_kind = kind; p_notify = on_complete } ];
      s.backlog_len <- s.backlog_len + 1;
      if s.backlog_len > s.peak_backlog then begin
        s.peak_backlog <- s.backlog_len;
        Metrics.set_max ins.st_backlog_peak
          ~labels:[ ("client", string_of_int s.ses_client) ]
          (float_of_int s.backlog_len)
      end;
      true
    end

  let drain (_ : store) (s : t) =
    match s.batcher with Some b -> Batcher.flush_all b | None -> ()

  let id (s : t) = s.ses_id
  let client (s : t) = s.ses_client
  let window (s : t) = s.window
  let in_flight (s : t) = s.in_flight
  let queued (s : t) = s.backlog_len
  let submitted (s : t) = s.submitted
  let completed (s : t) = s.completed
  let shed (s : t) = s.shed
  let peak_queue (s : t) = s.peak_backlog
end

(* The historical one-op-at-a-time entries: one-deep shims over a
   fresh window-1, unbatched session — the same code path, op ids, RNG
   draws and events as before sessions existed. *)
let read t ~client ~key =
  let s = Session.create t ~client () in
  ignore (Session.submit t s (Get { key }) : bool)

let write t ~client ~key ~value =
  let s = Session.create t ~client () in
  ignore (Session.submit t s (Put { key; value }) : bool)

let on_version_rep t engine ~node op_id ~version ~value =
  match Hashtbl.find_opt t.ops op_id with
  | None -> ()
  | Some op ->
      (match op.phase with
      | Reading r ->
          (* Accept one reply per targeted replica: the originally
             selected quorum plus any hedge backups.  With hedging off
             [targets]/[acked] track [waiting_for] exactly, so the
             guard below is the historical membership test. *)
          if Bitset.mem r.targets node && not (Bitset.mem r.acked node)
          then begin
            record_latency t ~peer:node (Engine.now engine -. op.last_send);
            Bitset.add r.acked node;
            if Bitset.mem r.waiting_for node then
              Bitset.remove r.waiting_for node;
            if version > fst r.best then r.best <- (version, value);
            let complete =
              if t.routing.hedge then
                (read_system_for t op.key).Quorum.System.avail r.acked
              else Bitset.is_empty r.waiting_for
            in
            if complete then begin
              match op.kind with
              | Read_op -> finish t op (`Read_done r.best)
              | Write_op v ->
                  (* Version phase done; install on a write quorum. *)
                  let live = Failure_detector.view t.fd ~node:op.client in
                  (match
                     (write_system_for t op.key).Quorum.System.select
                       (Engine.rng engine) ~live
                   with
                  | None ->
                      Hashtbl.remove t.ops op.id;
                      let sp = spans_exn t in
                      let now = Engine.now engine in
                      if op.attempt_span >= 0 then
                        Span.finish sp ~time:now
                          ~status:(Span.Error "unavailable") op.attempt_span;
                      Span.finish sp ~time:now
                        ~status:(Span.Error "unavailable") op.span;
                      mark_unavailable t;
                      session_completed t op Unavailable
                  | Some wq ->
                      let version = fst r.best + 1 in
                      op.write_version <- version;
                      op.phase <-
                        Writing
                          {
                            waiting_for = Bitset.copy wq;
                            targets = Bitset.copy wq;
                            acked = Bitset.create (universe t);
                          };
                      op.last_send <- Engine.now engine;
                      Bitset.iter
                        (fun j ->
                          emit t op ~dst:j
                            (Write_req
                               { op = op.id; key = op.key; version; value = v }))
                        wq;
                      arm_hedge t op wq)
            end
          end
      | Writing _ -> ())

let on_write_ack t op_id ~node =
  match Hashtbl.find_opt t.ops op_id with
  | None -> ()
  | Some op ->
      (match op.phase with
      | Writing w ->
          if Bitset.mem w.targets node && not (Bitset.mem w.acked node)
          then begin
            record_latency t ~peer:node
              (Engine.now (engine_exn t) -. op.last_send);
            Bitset.add w.acked node;
            if Bitset.mem w.waiting_for node then
              Bitset.remove w.waiting_for node;
            let complete =
              if t.routing.hedge then
                (write_system_for t op.key).Quorum.System.avail w.acked
              else Bitset.is_empty w.waiting_for
            in
            if complete then finish t op (`Write_done op.write_version)
          end
      | Reading _ -> ())

(* The hedge timer fired for an attempt that is still the current one:
   every member still unheard-from gets its request duplicated to a
   distinct backup replica drawn from the client's unsuspected view.
   Replicas are idempotent (max-version merge, acked-set dedup at the
   client), so duplicates cost messages, never safety. *)
let on_hedge t op_id =
  match Hashtbl.find_opt t.ops op_id with
  | Some op when (not op.done_) && op.hedge_armed = op.deadline ->
      let waiting, targets =
        match op.phase with
        | Reading r -> (r.waiting_for, r.targets)
        | Writing w -> (w.waiting_for, w.targets)
      in
      if not (Bitset.is_empty waiting) then begin
        let view = Failure_detector.view t.fd ~node:op.client in
        let n = universe t in
        let payload () =
          match (op.phase, op.kind) with
          | Reading _, _ -> Version_req { op = op.id; key = op.key }
          | Writing _, Write_op v ->
              Write_req
                {
                  op = op.id;
                  key = op.key;
                  version = op.write_version;
                  value = v;
                }
          | Writing _, Read_op -> assert false
        in
        let from = ref 0 in
        Bitset.iter
          (fun _straggler ->
            let rec find j =
              if j >= n then None
              else if Bitset.mem view j && not (Bitset.mem targets j) then
                Some j
              else find (j + 1)
            in
            match find !from with
            | None -> ()
            | Some b ->
                from := b + 1;
                Bitset.add targets b;
                t.hedges <- t.hedges + 1;
                Metrics.incr (ins_exn t).st_hedges;
                rsend t ~src:op.client ~dst:b (payload ()))
          waiting
      end
  | Some _ | None -> ()

(* --- Re-join protocol ---------------------------------------------- *)

(* Merge a (key, version, value) record into a replica table, newest
   version wins. *)
let merge_record table (key, version, value) =
  match Hashtbl.find_opt table key with
  | Some (v0, _) when v0 >= version -> ()
  | Some _ | None -> Hashtbl.replace table key (version, value)

(* The quorum system a recoverer syncs against: its own shard's read
   system when sharded ([None] for a spare outside every shard — no
   quorum ever includes it, so there is nothing to re-establish). *)
let rejoin_read_system t ~node =
  match t.router with
  | None -> Some t.read_system
  | Some r -> (
      match Shard_router.shard_of_node r ~node with
      | Some shard -> Some (Shard_router.shard_read_system r ~shard)
      | None -> None)

(* An amnesiac recoverer refuses to serve until it has pulled the
   state of a full read quorum: its replayed durable log already
   covers everything it ever acknowledged (write-ahead), but the sync
   is what re-establishes freshness before the replica can again count
   toward quorum intersection. *)
let rec start_rejoin t ~node =
  let engine = engine_exn t in
  t.rejoining.(node) <- true;
  match rejoin_read_system t ~node with
  | None ->
      (* A spare under sharding: no quorum contains it, nothing to
         sync. *)
      t.rejoining.(node) <- false
  | Some sys -> (
      let live = Failure_detector.view t.fd ~node in
      match sys.Quorum.System.select (Engine.rng engine) ~live with
      | None ->
          (* No sync quorum in view: retry once the detector settles.
             Background, so a hopeless rejoin never keeps a run alive. *)
          Engine.schedule engine ~background:true
            ~time:(Engine.now engine +. Failure_detector.timeout t.fd)
            (fun () ->
              if Engine.is_live engine node && t.rejoining.(node) then
                start_rejoin t ~node)
      | Some q ->
          let sync_id = t.next_sync in
          t.next_sync <- sync_id + 1;
          t.syncs.(node) <-
            Some
              {
                sync_id;
                sync_waiting = Bitset.copy q;
                sync_acc = Hashtbl.create 16;
              };
          Bitset.iter
            (fun j -> rsend t ~src:node ~dst:j (Sync_req { sync = sync_id }))
            q)

let on_sync_rep t ~node ~src ~sync entries =
  match t.syncs.(node) with
  | Some s when s.sync_id = sync && Bitset.mem s.sync_waiting src ->
      Bitset.remove s.sync_waiting src;
      List.iter (merge_record s.sync_acc) entries;
      if Bitset.is_empty s.sync_waiting then begin
        Hashtbl.iter
          (fun key (version, value) ->
            merge_record t.replicas.(node) (key, version, value))
          s.sync_acc;
        t.syncs.(node) <- None;
        t.rejoining.(node) <- false;
        t.rejoins <- t.rejoins + 1;
        Metrics.incr (ins_exn t).st_rejoins;
        Obs.Trace.record
          (Obs.trace (Engine.obs (engine_exn t)))
          ~time:(Engine.now (engine_exn t))
          ~node ~label:"store.rejoin" Obs.Trace.Note
      end
  | Some _ | None -> ()

(* A rejoining replica nacked the request: fail the attempt over to a
   fresh quorum, but only after a beat (the rejoin usually completes
   within a round trip) and only if no other fail-over superseded the
   attempt meanwhile (the deadline identifies the attempt). *)
let on_recovering t ~node ~src op_id =
  match Hashtbl.find_opt t.ops op_id with
  | Some op when not op.done_ ->
      let relevant =
        match op.phase with
        | Reading r -> Bitset.mem r.waiting_for src
        | Writing w -> Bitset.mem w.waiting_for src
      in
      ignore node;
      if relevant then begin
        let engine = engine_exn t in
        let attempt = op.deadline in
        Engine.schedule engine
          ~time:(Engine.now engine +. 1.0)
          (fun () ->
            match Hashtbl.find_opt t.ops op_id with
            | Some op when (not op.done_) && op.deadline = attempt ->
                attempt_failed t op
            | Some _ | None -> ())
      end
  | Some _ | None -> ()

(* The rpc layer gave up reaching a quorum member: the attempt can
   never complete, so fail it over right away instead of waiting for
   the attempt timeout — but only if that member is still part of the
   current attempt (dead letters for superseded attempts are noise). *)
let rec on_dead_letter t ~src ~dst payload =
  let relevant op =
    match (payload, op.phase) with
    | Version_req _, Reading r -> Bitset.mem r.waiting_for dst
    | Write_req _, Writing w -> Bitset.mem w.waiting_for dst
    | _ -> false
  in
  match payload with
  | Version_req { op = op_id; _ } | Write_req { op = op_id; _ } -> (
      match Hashtbl.find_opt t.ops op_id with
      | Some op when (not op.done_) && relevant op -> attempt_failed t op
      | Some _ | None -> ())
  | Batch_req { reqs } ->
      (* The whole batch missed the member: every contained request
         fails over on its own. *)
      List.iter (fun r -> on_dead_letter t ~src ~dst r) reqs
  | Sync_req { sync } -> (
      (* A sync-quorum member is unreachable: the rejoin cannot
         complete on this quorum — reselect. *)
      match t.syncs.(src) with
      | Some s when s.sync_id = sync && Bitset.mem s.sync_waiting dst ->
          t.syncs.(src) <- None;
          if Engine.is_live (engine_exn t) src then start_rejoin t ~node:src
      | Some _ | None -> ())
  | Version_rep _ | Write_ack _ | Recovering _ | Sync_rep _ | Batch_rep _ ->
      (* A reply we could not push back: the client's own timeout and
         retry machinery covers it (and a lost sync reply stalls the
         rejoin until its own dead letter fires). *)
      ()

let bind t engine =
  if Engine.nodes engine <> t.read_system.Quorum.System.n then
    invalid_arg "Replicated_store.bind: engine size mismatch";
  t.engine <- Some engine;
  let m = Obs.metrics (Engine.obs engine) in
  t.ins <-
    Some
      {
        st_reads_ok = Metrics.counter m ~help:"completed reads" "store.reads_ok";
        st_writes_ok =
          Metrics.counter m ~help:"completed writes" "store.writes_ok";
        st_unavailable =
          Metrics.counter m ~help:"operations refused for lack of a quorum"
            "store.unavailable";
        st_timeouts =
          Metrics.counter m ~help:"operations failed after all retries"
            "store.timeouts";
        st_retries =
          Metrics.counter m ~help:"attempts re-launched on a fresh quorum"
            "store.retries";
        st_stale =
          Metrics.counter m ~help:"reads older than a prior committed write"
            "store.stale_reads";
        st_rejoins =
          Metrics.counter m ~help:"completed amnesiac re-join syncs"
            "store.rejoins";
        st_refusals =
          Metrics.counter m
            ~help:"requests nacked by a replica still re-joining"
            "store.rejoin_refusals";
        st_latency =
          Metrics.histogram m
            ~help:"operation latency (simulated time), by op=read|write"
            "store.op_latency";
        st_sessions =
          Metrics.counter m ~help:"client sessions opened" "store.sessions";
        st_submitted =
          Metrics.counter m ~help:"ops submitted through sessions, by client"
            "store.session_submitted";
        st_shed =
          Metrics.counter m
            ~help:"submissions shed by a full session backlog, by client"
            "store.session_shed";
        st_batches =
          Metrics.counter m ~help:"Batch_req envelopes sent"
            "store.batches";
        st_batched =
          Metrics.counter m ~help:"requests carried inside Batch_req"
            "store.batched_ops";
        st_backlog_peak =
          Metrics.gauge m
            ~help:"high-water session backlog depth, by client"
            "store.session_backlog_peak";
        st_hedges =
          Metrics.counter m ~help:"hedge requests sent to backup replicas"
            "store.hedges";
        st_degraded_writes =
          Metrics.counter m
            ~help:"writes refused fast by the degraded read-only mode"
            "store.degraded_writes";
        st_degraded =
          Metrics.gauge m ~help:"1 while in degraded read-only mode"
            "store.degraded";
      };
  t.dur <-
    Some
      (Durable.create ~obs:(Engine.obs engine)
         ~nodes:t.read_system.Quorum.System.n t.durability);
  Rpc.bind t.rpc engine;
  Rpc.set_dead_letter_handler t.rpc (fun ~src ~dst payload ->
      on_dead_letter t ~src ~dst payload);
  Failure_detector.bind t.fd engine;
  Failure_detector.start t.fd

let refuse t ~node ~src op =
  t.refusals <- t.refusals + 1;
  Metrics.incr (ins_exn t).st_refusals;
  rsend t ~src:node ~dst:src (Recovering { op })

(* Replica service-time model: each request (or batch) occupies the
   node's processor for a configured cost, serialized behind whatever
   it is already chewing on.  With the default zero-cost model the
   dispatch is synchronous — exactly the historical behaviour, no
   extra events.  This is what turns quorum-size differences into
   observable throughput: a node in every quorum saturates first. *)
let with_service t engine ~node ~k process =
  let cost =
    t.serv.per_batch +. (float_of_int k *. t.serv.per_req)
  in
  let now = Engine.now engine in
  if cost = 0.0 && t.busy_until.(node) <= now then process ~now
  else begin
    let start = Float.max now t.busy_until.(node) in
    let finish = start +. cost in
    t.busy_until.(node) <- finish;
    let inc = t.incarnation.(node) in
    Engine.schedule engine ~time:finish (fun () ->
        if t.incarnation.(node) = inc && Engine.is_live engine node then
          process ~now:finish)
  end

(* Serve one version request against the replica table (the caller has
   already cleared the rejoining gate). *)
let version_rep t ~node (op : int) key =
  let version, value =
    match Hashtbl.find_opt t.replicas.(node) key with
    | Some vv -> vv
    | None -> (0, 0)
  in
  Version_rep { op; version; value }

(* Process a replica-side batch: version requests answer immediately,
   writes merge into the table and share one durable flush — one
   [append_batch], one fsync wait, one batched ack. *)
let process_batch t engine ~node ~src ~now reqs =
  if t.rejoining.(node) then begin
    let reps =
      List.filter_map
        (function
          | Version_req { op; _ } | Write_req { op; _ } ->
              t.refusals <- t.refusals + 1;
              Metrics.incr (ins_exn t).st_refusals;
              Some (Recovering { op })
          | _ -> None)
        reqs
    in
    if reps <> [] then rsend t ~src:node ~dst:src (Batch_rep { reps })
  end
  else begin
    let instant = ref [] and acks = ref [] and records = ref [] in
    List.iter
      (function
        | Version_req { op; key } ->
            instant := version_rep t ~node op key :: !instant
        | Write_req { op; key; version; value } ->
            merge_record t.replicas.(node) (key, version, value);
            records := (key, version, value) :: !records;
            acks := Write_ack { op } :: !acks
        | _ -> ())
      reqs;
    (match List.rev !records with
    | [] -> ()
    | records ->
        let durable_at =
          Durable.append_batch (dur_exn t) ~node ~now records
        in
        if durable_at <= now then instant := !acks @ !instant
        else begin
          let parent = Engine.span_ctx engine in
          let fspan =
            if parent >= 0 then
              Span.start (spans_exn t) ~time:now ~node ~parent "store.fsync"
            else -1
          in
          let inc = t.incarnation.(node) in
          let reps = List.rev !acks in
          Engine.schedule engine ~time:durable_at (fun () ->
              let alive =
                t.incarnation.(node) = inc && Engine.is_live engine node
              in
              if fspan >= 0 then
                Span.finish (spans_exn t) ~time:durable_at
                  ~status:(if alive then Span.Ok else Span.Error "crash")
                  fspan;
              if alive then rsend t ~src:node ~dst:src (Batch_rep { reps }))
        end);
    match List.rev !instant with
    | [] -> ()
    | reps -> rsend t ~src:node ~dst:src (Batch_rep { reps })
  end

let rec dispatch_app t engine ~node ~src = function
  | Version_req { op; key } ->
      with_service t engine ~node ~k:1 (fun ~now:_ ->
          if t.rejoining.(node) then refuse t ~node ~src op
          else rsend t ~src:node ~dst:src (version_rep t ~node op key))
  | Version_rep { op; version; value } ->
      on_version_rep t engine ~node:src op ~version ~value
  | Write_req { op; key; version; value } ->
      with_service t engine ~node ~k:1 (fun ~now ->
          if t.rejoining.(node) then refuse t ~node ~src op
          else begin
            merge_record t.replicas.(node) (key, version, value);
            (* Write-ahead: the record is logged unconditionally and the
               ack leaves only once its fsync completes, so an acked write
               can never be lost to a crash.  With zero fsync latency the
               ack is synchronous, exactly the old stable-storage model. *)
            let durable_at =
              Durable.append (dur_exn t) ~node ~now (key, version, value)
            in
            if durable_at <= now then
              rsend t ~src:node ~dst:src (Write_ack { op })
            else begin
              (* The wait for the fsync is a span of its own, child of the
                 ambient attempt context, so the latency breakdown can
                 attribute the ack delay to durability rather than
                 queueing. *)
              let parent = Engine.span_ctx engine in
              let fspan =
                if parent >= 0 then
                  Span.start (spans_exn t) ~time:now ~node ~parent
                    "store.fsync"
                else -1
              in
              let inc = t.incarnation.(node) in
              Engine.schedule engine ~time:durable_at (fun () ->
                  let alive =
                    t.incarnation.(node) = inc && Engine.is_live engine node
                  in
                  if fspan >= 0 then
                    Span.finish (spans_exn t) ~time:durable_at
                      ~status:(if alive then Span.Ok else Span.Error "crash")
                      fspan;
                  if alive then rsend t ~src:node ~dst:src (Write_ack { op }))
            end
          end)
  | Write_ack { op } -> on_write_ack t op ~node:src
  | Recovering { op } -> on_recovering t ~node ~src op
  | Sync_req { sync } ->
      (* Answered even while rejoining, from the replayed durable
         state: write-ahead acking means the log already covers
         everything this replica ever acknowledged, so this cannot
         launder stale state — and refusing would deadlock a majority
         amnesia restart (no sync quorum could ever assemble). *)
      let entries =
        Hashtbl.fold
          (fun key (version, value) acc -> (key, version, value) :: acc)
          t.replicas.(node) []
      in
      rsend t ~src:node ~dst:src (Sync_rep { sync; entries })
  | Sync_rep { sync; entries } -> on_sync_rep t ~node ~src ~sync entries
  | Batch_req { reqs } ->
      with_service t engine ~node ~k:(List.length reqs) (fun ~now ->
          process_batch t engine ~node ~src ~now reqs)
  | Batch_rep { reps } ->
      (* Unpack at the client: each inner reply dispatches exactly as
         if it had arrived bare. *)
      List.iter (fun rep -> dispatch_app t engine ~node ~src rep) reps

let handlers t : msg Engine.handlers =
  {
    on_message =
      (fun engine ~node ~src msg ->
        match msg with
        | Beat -> Failure_detector.heard t.fd ~node ~from:src
        | App envelope ->
            Rpc.on_message t.rpc ~node ~src envelope
              ~deliver:(fun ~src payload ->
                dispatch_app t engine ~node ~src payload));
    on_timer =
      (fun engine ~node ~tag ->
        if Failure_detector.on_timer t.fd ~node ~tag then ()
        else if Rpc.on_timer t.rpc ~node ~tag then ()
        else if tag >= hedge_offset then on_hedge t (tag - hedge_offset)
        else
          match Hashtbl.find_opt t.ops tag with
          | Some op when not op.done_ ->
              (* A dead-letter fail-over re-arms the attempt with a
                 later deadline; the original timer still fires and
                 must be ignored. *)
              if Engine.now engine +. 1e-9 >= op.deadline then
                attempt_failed t op
          | Some _ | None -> ());
    on_crash =
      (fun engine ~node ->
        Rpc.on_crash t.rpc ~node;
        t.incarnation.(node) <- t.incarnation.(node) + 1;
        t.busy_until.(node) <- 0.0;
        Durable.crash (dur_exn t) ~node ~now:(Engine.now engine);
        t.syncs.(node) <- None;
        (* A crashed client's timers are dropped by the engine, so its
           in-flight operations would leak: abort them here. *)
        let doomed =
          Hashtbl.fold
            (fun _ op acc -> if op.client = node then op :: acc else acc)
            t.ops []
        in
        List.iter (fun op -> finish t op `Timeout) doomed);
    on_recover =
      (fun engine ~node ~amnesia ->
        Failure_detector.on_recover t.fd ~node;
        if amnesia then begin
          (* The in-memory table is gone: rebuild the durable prefix
             from the log, then refuse to serve until a read-quorum
             sync re-establishes freshness. *)
          Hashtbl.reset t.replicas.(node);
          List.iter
            (merge_record t.replicas.(node))
            (Durable.replay (dur_exn t) ~node ~now:(Engine.now engine));
          start_rejoin t ~node
        end
        else if t.rejoining.(node) then
          (* Crashed mid-rejoin with memory intact: the crash canceled
             the sync round, start a fresh one. *)
          start_rejoin t ~node);
  }
