(** Client workload generators for the simulated protocols. *)

val poisson_ops :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  (client:int -> unit) ->
  int
(** Schedule operations as a Poisson process of [rate] ops per time
    unit over [\[0, horizon)]; each op is issued by a uniformly random
    client node.  Returns the number of scheduled ops. *)

val staggered_requests :
  'msg Sim.Engine.t ->
  every:float ->
  count:int ->
  (client:int -> unit) ->
  unit
(** [count] operations at fixed spacing [every], clients round-robin —
    a deterministic contention pattern for mutual-exclusion demos. *)

val read_write_mix :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  read_fraction:float ->
  keys:int ->
  read:(client:int -> key:int -> unit) ->
  write:(client:int -> key:int -> value:int -> unit) ->
  int
(** Poisson arrivals of reads/writes over a small key space. *)
