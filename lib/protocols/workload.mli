(** Client workload generators for the simulated protocols. *)

val poisson_ops :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  (client:int -> unit) ->
  int
(** Schedule operations as a Poisson process of [rate] ops per time
    unit over [\[0, horizon)]; each op is issued by a uniformly random
    client node.  Returns the number of scheduled ops. *)

val arrival_times :
  Quorum.Rng.t -> rate:float -> horizon:float -> float list
(** The raw Poisson arrival instants behind {!poisson_ops} /
    {!open_loop}, ascending — for callers that schedule the work
    themselves.  Raises [Invalid_argument] on a non-positive rate or
    horizon. *)

val open_loop :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  (unit -> unit) ->
  int
(** Open-loop offered load: schedule [issue] at Poisson arrivals of
    [rate] per time unit over [\[0, horizon)], regardless of how the
    service keeps up — arrivals beyond capacity pile into whatever
    queue the callee maintains.  Unlike {!poisson_ops} the callee
    draws its own station/key (at event time, keeping the RNG in
    event order).  Returns the number of arrivals. *)

val closed_loop :
  'msg Sim.Engine.t ->
  stations:int ->
  per_station:int ->
  horizon:float ->
  ?retry_delay:float ->
  (station:int -> complete:(ok:bool -> unit) -> unit) ->
  unit
(** Closed-loop load: each of [stations] keeps [per_station]
    operations permanently in flight until [horizon] — [issue] must
    start one operation and call [complete] exactly once when it
    finishes.  [~ok:true] immediately issues the successor;
    [~ok:false] backs off by [retry_delay] (default 1.0) first, so a
    persistent outage cannot spin the simulation at one instant.
    This measures {e capacity}: completions per time unit at full
    pipeline occupancy.  Raises [Invalid_argument] on non-positive
    parameters. *)

val staggered_requests :
  'msg Sim.Engine.t ->
  every:float ->
  count:int ->
  (client:int -> unit) ->
  unit
(** [count] operations at fixed spacing [every], clients round-robin —
    a deterministic contention pattern for mutual-exclusion demos. *)

val read_write_mix :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  read_fraction:float ->
  keys:int ->
  read:(client:int -> key:int -> unit) ->
  write:(client:int -> key:int -> value:int -> unit) ->
  int
(** Poisson arrivals of reads/writes over a small key space.
    Compatibility shim over {!read_write_mix_w} for callers with a bare
    read fraction; raises [Invalid_argument] on bad parameters — new
    code should pass an [Analysis.Workload.t] instead. *)

val read_write_mix_w :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  workload:Analysis.Workload.t ->
  keys:int ->
  read:(client:int -> key:int -> unit) ->
  write:(client:int -> key:int -> value:int -> unit) ->
  (int, string) result
(** {!read_write_mix} driven by the unified workload spec: the mix uses
    [workload.read_fraction], and the workload is validated against the
    engine's node count first.  [Error] instead of raising. *)
