(** Client workload generators for the simulated protocols. *)

val poisson_ops :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  (client:int -> unit) ->
  int
(** Schedule operations as a Poisson process of [rate] ops per time
    unit over [\[0, horizon)]; each op is issued by a uniformly random
    client node.  Returns the number of scheduled ops. *)

val staggered_requests :
  'msg Sim.Engine.t ->
  every:float ->
  count:int ->
  (client:int -> unit) ->
  unit
(** [count] operations at fixed spacing [every], clients round-robin —
    a deterministic contention pattern for mutual-exclusion demos. *)

val read_write_mix :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  read_fraction:float ->
  keys:int ->
  read:(client:int -> key:int -> unit) ->
  write:(client:int -> key:int -> value:int -> unit) ->
  int
(** Poisson arrivals of reads/writes over a small key space.
    Compatibility shim over {!read_write_mix_w} for callers with a bare
    read fraction; raises [Invalid_argument] on bad parameters — new
    code should pass an [Analysis.Workload.t] instead. *)

val read_write_mix_w :
  'msg Sim.Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  horizon:float ->
  workload:Analysis.Workload.t ->
  keys:int ->
  read:(client:int -> key:int -> unit) ->
  write:(client:int -> key:int -> value:int -> unit) ->
  (int, string) result
(** {!read_write_mix} driven by the unified workload spec: the mix uses
    [workload.read_fraction], and the workload is validated against the
    engine's node count first.  [Error] instead of raising. *)
