(** The one client-facing configuration record shared by every quorum
    protocol ({!Replicated_store}, {!Mutex}, {!Reconfig}).

    Historically each protocol's [create] grew its own sprawl of nine
    optional keyword arguments (rpc timeout/backoff/attempts, failure
    detector period/timeout, durability, operation timeout, retries);
    this record is now the primary entry — build one with {!default}
    and the [with_*] builders, hand it to the protocol's [of_config],
    and reserve the old keyword [create]s (kept as one-deep shims) for
    existing call sites.

    {[
      let cfg =
        Client_config.(
          default
          |> with_rpc ~timeout:2.0
          |> with_durability (Sim.Durable.config ~fsync_latency:0.5 ())
          |> with_timeout 10.0)
      in
      let store = Replicated_store.of_config ~config:cfg ~read_system ~write_system ()
    ]}

    Not every field is meaningful to every protocol: {!Mutex} reads
    [timeout] as its acquire timeout and ignores [retries] (requests
    queue at the arbiters instead of retrying); {!Reconfig} has no rpc
    or failure-detector layer of its own and uses only [durability]
    and [timeout].  Each protocol's [.mli] states which fields it
    honours. *)

type rpc = { timeout : float; backoff : float; attempts : int }
(** Reliable-rpc retransmission: initial retransmit [timeout],
    exponential [backoff] factor, dead-letter after [attempts]. *)

type fd = { period : float; timeout : float }
(** Heartbeat failure detection: beat [period], suspicion [timeout]. *)

type t = {
  rpc : rpc;
  fd : fd;
  durability : Sim.Durable.config;  (** write-ahead fsync model *)
  timeout : float;  (** per-operation (or acquire) timeout *)
  retries : int;  (** quorum re-selection attempts after a timeout *)
}

val default : t
(** The values the protocols have always defaulted to: rpc
    [{timeout = 4.0; backoff = 1.6; attempts = 6}], fd
    [{period = 1.0; timeout = 5.0}], instant durability,
    [timeout = 25.0], [retries = 2]. *)

val with_rpc : ?timeout:float -> ?backoff:float -> ?attempts:int -> t -> t
val with_fd : ?period:float -> ?timeout:float -> t -> t
val with_durability : Sim.Durable.config -> t -> t
val with_timeout : float -> t -> t
val with_retries : int -> t -> t

val validate : t -> (unit, string) result
(** Range-check every field ([Error] with the first offending one);
    the [of_config] entries call the underlying constructors directly,
    which raise — validate first when the record comes from user
    input. *)
