(** The one client-facing configuration record shared by every quorum
    protocol ({!Replicated_store}, {!Mutex}, {!Reconfig}).

    Historically each protocol's [create] grew its own sprawl of nine
    optional keyword arguments (rpc timeout/backoff/attempts, failure
    detector period/timeout, durability, operation timeout, retries);
    this record is now the primary entry — build one with {!default}
    and the [with_*] builders, hand it to the protocol's [of_config],
    and reserve the old keyword [create]s (kept as one-deep shims) for
    existing call sites.

    {[
      let cfg =
        Client_config.(
          default
          |> with_rpc ~timeout:2.0
          |> with_durability (Sim.Durable.config ~fsync_latency:0.5 ())
          |> with_timeout 10.0)
      in
      let store = Replicated_store.of_config ~config:cfg ~read_system ~write_system ()
    ]}

    Not every field is meaningful to every protocol: {!Mutex} reads
    [timeout] as its acquire timeout and ignores [retries] (requests
    queue at the arbiters instead of retrying); {!Reconfig} has no rpc
    or failure-detector layer of its own and uses only [durability]
    and [timeout].  Each protocol's [.mli] states which fields it
    honours. *)

type rpc = { timeout : float; backoff : float; attempts : int }
(** Reliable-rpc retransmission: initial retransmit [timeout],
    exponential [backoff] factor, dead-letter after [attempts]. *)

type fd = { period : float; timeout : float; accrual : float option }
(** Heartbeat failure detection: beat [period], suspicion [timeout].
    [accrual = Some phi] switches the detector to accrual mode with
    threshold [phi] (window 20, min 5 samples — see
    {!Sim.Failure_detector.mode}); [None] (the default) keeps the
    historical fixed-timeout detector. *)

type routing = {
  hedge : bool;
      (** hedge straggling quorum requests to a backup replica; off by
          default — hedging changes the event schedule, so the default
          keeps runs bit-identical to the pre-hedging protocols *)
  hedge_quantile : float;
      (** per-peer latency quantile after which a request is hedged
          (default 0.9); also the graded-suspicion level at which the
          mutex watchdog reselects early *)
  hedge_floor : float;
      (** never hedge before this many time units (default 2.0) — the
          cold-start guard while latency samples accumulate *)
  degraded_reads : bool;
      (** when no unsuspected write quorum exists, refuse writes
          immediately (degraded read-only mode) instead of burning the
          attempt timeout; reads keep flowing.  Off by default. *)
}
(** Suspicion-aware routing and hedged requests.  With every field at
    its default the protocols are bit-identical to their pre-routing
    behaviour: no hedge timers are scheduled, no extra sends happen,
    and completion remains "every originally-selected member acked". *)

type t = {
  rpc : rpc;
  fd : fd;
  routing : routing;  (** hedging + degraded-mode knobs *)
  durability : Sim.Durable.config;  (** write-ahead fsync model *)
  timeout : float;  (** per-operation (or acquire) timeout *)
  retries : int;  (** quorum re-selection attempts after a timeout *)
}

val default : t
(** The values the protocols have always defaulted to: rpc
    [{timeout = 4.0; backoff = 1.6; attempts = 6}], fd
    [{period = 1.0; timeout = 5.0; accrual = None}], routing all off
    ([{hedge = false; hedge_quantile = 0.9; hedge_floor = 2.0;
    degraded_reads = false}]), instant durability, [timeout = 25.0],
    [retries = 2]. *)

val with_rpc : ?timeout:float -> ?backoff:float -> ?attempts:int -> t -> t
val with_fd : ?period:float -> ?timeout:float -> ?accrual:float -> t -> t

val with_routing :
  ?hedge:bool ->
  ?hedge_quantile:float ->
  ?hedge_floor:float ->
  ?degraded_reads:bool ->
  t ->
  t

val with_durability : Sim.Durable.config -> t -> t
val with_timeout : float -> t -> t
val with_retries : int -> t -> t

val fd_mode : t -> Sim.Failure_detector.mode
(** The {!Sim.Failure_detector.mode} this config implies:
    [Fixed_timeout fd.timeout] when [fd.accrual] is [None], else
    [Accrual] with the configured threshold. *)

val validate : t -> (unit, string) result
(** Range-check every field ([Error] with the first offending one);
    the [of_config] entries call the underlying constructors directly,
    which raise — validate first when the record comes from user
    input. *)
