module Engine = Sim.Engine
module Network = Sim.Network
module Injector = Sim.Failure_injector
module Durable = Sim.Durable
module Rng = Quorum.Rng
module Bitset = Quorum.Bitset

type plan = {
  loss : float;
  bursts : (float * float * float) list;
  gray : (int * float * float * float) list;
  links : (float * float * int * int * float) list;
  partitions : (float * float * int list) list;
  churn : (float * float) option;
  churn_sustained : (float * float) option;
  restarts : (float * float * int list) list;
  amnesia : bool;
  fsync : float;
}

let calm =
  {
    loss = 0.0;
    bursts = [];
    gray = [];
    links = [];
    partitions = [];
    churn = None;
    churn_sustained = None;
    restarts = [];
    amnesia = false;
    fsync = 0.0;
  }

let durability_of_plan p = Durable.config ~fsync_latency:p.fsync ()

type scenario = { label : string; horizon : float; plan : plan }

(* A minority group to cut off: small enough that the majority side
   keeps quorums, so the interesting question is how fast the
   protocols route around the cut. *)
let minority n = List.init (max 1 (n / 4)) (fun i -> i)

let standard ~n ~horizon =
  let h = horizon in
  [
    { label = "baseline"; horizon = h; plan = calm };
    {
      label = "loss+burst";
      horizon = h;
      plan =
        { calm with loss = 0.05; bursts = [ (0.3 *. h, 0.1 *. h, 0.30) ] };
    };
    {
      label = "partition";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.05;
          partitions = [ (0.25 *. h, 0.2 *. h, minority n) ];
        };
    };
    {
      label = "churn-iid";
      horizon = h;
      plan = { calm with loss = 0.02; churn = Some (0.10, 0.05 *. h) };
    };
    {
      label = "gray";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          gray =
            [ (0, 0.2 *. h, 0.25 *. h, 25.0); (1, 0.55 *. h, 0.2 *. h, 25.0) ];
        };
    };
  ]

(* Crash-restart and amnesia scenarios.  Every plan uses a non-zero
   fsync latency, so the write-ahead gating in the protocols is
   actually exercised: acks are delayed past the state they cover, and
   a crash inside that window loses exactly the unacknowledged tail. *)
let recovery ~n ~horizon =
  let h = horizon in
  let majority = List.init ((n / 2) + 1) (fun i -> i) in
  [
    {
      (* Restarts (memory intact) landing while writes are in flight. *)
      label = "restart";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          fsync = 0.5;
          restarts =
            [
              (0.30 *. h, 0.10 *. h, minority n);
              (0.60 *. h, 0.10 *. h, minority n);
            ];
        };
    };
    {
      (* Amnesiac minority restart: recovered nodes must replay their
         durable log and re-join before serving. *)
      label = "amnesia";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          fsync = 0.5;
          amnesia = true;
          restarts = [ (0.35 *. h, 0.08 *. h, minority n) ];
        };
    };
    {
      (* The hard one: a majority loses its memory at once, so any
         state that only lived in volatile memory is gone from every
         quorum. *)
      label = "amnesia-maj";
      horizon = h;
      plan =
        {
          calm with
          fsync = 0.5;
          amnesia = true;
          restarts = [ (0.40 *. h, 0.10 *. h, majority) ];
        };
    };
  ]

(* Sustained-churn scenarios: Poisson join/leave over the whole run
   (not iid up/down per node) — the regime the dynamic-membership
   controller is built for.  The rate is population- and
   horizon-relative so the expected number of simultaneously-down
   processes is ~10% of n throughout. *)
let churn ~n ~horizon =
  let h = horizon in
  let rate = 2.0 *. float_of_int n /. h in
  let down = 0.05 *. h in
  [
    {
      label = "churn";
      horizon = h;
      plan = { calm with loss = 0.02; churn_sustained = Some (rate, down) };
    };
    {
      (* Leavers come back amnesiac: admission must re-sync them. *)
      label = "churn-amnesia";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          fsync = 0.5;
          amnesia = true;
          churn_sustained = Some (rate, down);
        };
    };
    {
      (* Churn with a minority cut landing mid-run on top of it. *)
      label = "churn-partition";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          churn_sustained = Some (rate, down);
          partitions = [ (0.40 *. h, 0.15 *. h, minority n) ];
        };
    };
  ]

(* Failure-detection stress: scenarios built to make a detector wrong
   in each of the ways a detector can be wrong.  No crashes in
   [asym-link] / [suspect-burst] — every suspicion there is false by
   construction, so the oracle counters isolate the accuracy cost. *)
let fd_family ~n ~horizon =
  let h = horizon in
  ignore n;
  [
    {
      (* A node flapping in and out of gray failure: four short
         slow-windows, each long enough to miss heartbeats but short
         enough that a naive detector flaps with it. *)
      label = "gray-flap";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          gray =
            [
              (0, 0.15 *. h, 0.06 *. h, 30.0);
              (0, 0.30 *. h, 0.06 *. h, 30.0);
              (0, 0.50 *. h, 0.06 *. h, 30.0);
              (1, 0.40 *. h, 0.08 *. h, 30.0);
            ];
        };
    };
    {
      (* Asymmetric links: node 0 hears nobody for a while (its
         outbound links stay clean), then the reverse direction for
         node 1 — observers disagree about who is dead. *)
      label = "asym-link";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          links =
            List.concat
              [
                List.init (min 8 (n - 1)) (fun i ->
                    (0.2 *. h, 0.15 *. h, i + 1, 0, 0.95));
                List.init (min 8 (n - 1)) (fun i ->
                    (0.55 *. h, 0.15 *. h, 1, (i + 2) mod n, 0.95));
              ];
        };
    };
    {
      (* False-suspicion bursts: everyone stays up, but three heavy
         loss bursts swallow whole heartbeat rounds. *)
      label = "suspect-burst";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          bursts =
            [
              (0.20 *. h, 0.04 *. h, 0.85);
              (0.45 *. h, 0.04 *. h, 0.85);
              (0.70 *. h, 0.04 *. h, 0.85);
            ];
        };
    };
  ]

let all_scenarios ~n ~horizon =
  standard ~n ~horizon @ recovery ~n ~horizon @ churn ~n ~horizon
  @ fd_family ~n ~horizon

let scenario_of_label ~n ~horizon label =
  match
    List.find_opt (fun s -> s.label = label) (all_scenarios ~n ~horizon)
  with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Chaos: unknown scenario %S (have: %s)" label
           (String.concat ", "
              (List.map (fun s -> s.label) (all_scenarios ~n ~horizon))))

let apply engine ~rng scenario =
  let p = scenario.plan in
  List.iter
    (fun (at, duration, loss) -> Injector.loss_burst engine ~at ~duration ~loss)
    p.bursts;
  List.iter
    (fun (node, at, duration, slowdown) ->
      Injector.gray_failure engine ~node ~at ~duration ~slowdown)
    p.gray;
  Injector.link_windows engine p.links;
  Injector.partition_schedule engine p.partitions;
  Injector.restarts ~amnesia:p.amnesia engine p.restarts;
  (match p.churn with
  | Some (p_down, mean_downtime) ->
      Injector.iid_faults ~amnesia:p.amnesia engine ~rng ~p:p_down
        ~mean_downtime ~horizon:scenario.horizon
  | None -> ());
  match p.churn_sustained with
  | Some (rate, mean_downtime) ->
      Injector.poisson_churn ~amnesia:p.amnesia engine ~rng ~rate
        ~mean_downtime ~horizon:scenario.horizon
  | None -> ()

(* --- Mutual exclusion under chaos ---------------------------------- *)

type mutex_report = {
  label : string;
  system : string;
  seed : int;
  issued : int;
  entries : int;
  violations : int;
  unavailable : int;
  reselections : int;
  abandoned : int;
  dead_letters : int;
  retransmissions : int;
  mean_wait : float;
  msgs_per_entry : float;
  budget_hit : bool;
}

let run_mutex_h ?(seed = 7) ?(rate = 0.4) ?(cs_duration = 1.0)
    ?(acquire_timeout = 80.0) ?obs ~system scenario =
  let n = system.Quorum.System.n in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.plan.loss () in
  let config =
    Client_config.(
      default
      |> with_timeout acquire_timeout
      |> with_durability (durability_of_plan scenario.plan))
  in
  let mx = Mutex.of_config ~config ~system ~cs_duration () in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:n ~network ?obs (Mutex.handlers mx)
  in
  Mutex.bind mx engine;
  apply engine ~rng scenario;
  let issued =
    Workload.poisson_ops engine ~rng ~rate ~horizon:scenario.horizon
      (fun ~client -> Mutex.request mx ~node:client)
  in
  let outcome = Engine.run_status engine in
  let entries = Mutex.entries mx in
  let wait = Mutex.acquire_latency mx in
  ( {
      label = scenario.label;
      system = system.Quorum.System.name;
      seed;
      issued;
      entries;
      violations = Mutex.violations mx;
      unavailable = Mutex.unavailable mx;
      reselections = Mutex.reselections mx;
      abandoned = Mutex.abandoned mx;
      dead_letters = Mutex.dead_letters mx;
      retransmissions = Mutex.retransmissions mx;
      mean_wait = Obs.Metrics.mean wait;
      msgs_per_entry =
        (if entries = 0 then 0.0
         else
           float_of_int (Engine.messages_sent engine) /. float_of_int entries);
      budget_hit = outcome = Engine.Budget_exhausted;
    },
    mx )

let run_mutex ?seed ?rate ?cs_duration ?acquire_timeout ?obs ~system scenario =
  fst (run_mutex_h ?seed ?rate ?cs_duration ?acquire_timeout ?obs ~system scenario)

(* --- Replicated store under chaos ---------------------------------- *)

type store_report = {
  label : string;
  system : string;
  seed : int;
  issued : int;
  reads_ok : int;
  writes_ok : int;
  unavailable : int;
  timeouts : int;
  retried : int;
  stale_reads : int;
  rejoins : int;
  rejoin_refusals : int;
  dead_letters : int;
  retransmissions : int;
  mean_latency : float;
  budget_hit : bool;
}

let run_store_h ?(seed = 7) ?(rate = 2.0) ?read_fraction ?workload ?(keys = 4)
    ?(op_timeout = 25.0) ?(retries = 2) ?obs ~read_system ~write_system ~name
    scenario =
  (* ?workload is the unified spec; ?read_fraction remains as the
     compatibility shim (ignored when both are given). *)
  let read_fraction =
    match (workload, read_fraction) with
    | Some (w : Analysis.Workload.t), _ -> w.Analysis.Workload.read_fraction
    | None, Some fr -> fr
    | None, None -> 0.7
  in
  let n = read_system.Quorum.System.n in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.plan.loss () in
  let config =
    Client_config.(
      default
      |> with_timeout op_timeout
      |> with_retries retries
      |> with_durability (durability_of_plan scenario.plan))
  in
  let store = Replicated_store.of_config ~config ~read_system ~write_system () in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:n ~network ?obs
      (Replicated_store.handlers store)
  in
  Replicated_store.bind store engine;
  apply engine ~rng scenario;
  let issued =
    Workload.read_write_mix engine ~rng ~rate ~horizon:scenario.horizon
      ~read_fraction ~keys
      ~read:(fun ~client ~key -> Replicated_store.read store ~client ~key)
      ~write:(fun ~client ~key ~value ->
        Replicated_store.write store ~client ~key ~value)
  in
  let outcome = Engine.run_status engine in
  (* Both op=read and op=write cells of store.op_latency, combined. *)
  let lat = Replicated_store.op_latency store in
  let mean_latency =
    let cells = [ [ ("op", "read") ]; [ ("op", "write") ] ] in
    let n =
      List.fold_left (fun a l -> a + Obs.Metrics.count ~labels:l lat) 0 cells
    in
    let s =
      List.fold_left (fun a l -> a +. Obs.Metrics.sum ~labels:l lat) 0.0 cells
    in
    if n = 0 then 0.0 else s /. float_of_int n
  in
  ( {
      label = scenario.label;
      system = name;
      seed;
      issued;
      reads_ok = Replicated_store.reads_ok store;
      writes_ok = Replicated_store.writes_ok store;
      unavailable = Replicated_store.unavailable store;
      timeouts = Replicated_store.timeouts store;
      retried = Replicated_store.retried store;
      stale_reads = Replicated_store.stale_reads store;
      rejoins = Replicated_store.rejoins store;
      rejoin_refusals = Replicated_store.rejoin_refusals store;
      dead_letters = Replicated_store.dead_letters store;
      retransmissions = Replicated_store.retransmissions store;
      mean_latency;
      budget_hit = outcome = Engine.Budget_exhausted;
    },
    store )

let run_store ?seed ?rate ?read_fraction ?workload ?keys ?op_timeout ?retries
    ?obs ~read_system ~write_system ~name scenario =
  fst
    (run_store_h ?seed ?rate ?read_fraction ?workload ?keys ?op_timeout
       ?retries ?obs ~read_system ~write_system ~name scenario)

(* --- Failure detection under chaos ----------------------------------- *)

type fd_report = {
  label : string;
  detector : string;
  seed : int;
  issued : int;
  ok : int;
  stale_reads : int;
  unavailable : int;
  hedges : int;
  degraded_writes : int;
  detections : int;
  mean_detect : float;
  max_detect : float;
  false_positives : int;
  missed : int;
  transitions : int;
  p99_latency : float;
  budget_hit : bool;
}

(* A replicated store (whose clients route by failure-detector view)
   under the scenario, with the detector itself as the unit under
   test: the report aggregates every observer's oracle-measured
   accuracy — detection latency, false-positive onsets, missed
   detections, suspicion flips — plus the routing-layer effects
   (hedges, degraded-mode refusals, tail latency). *)
let run_fd_h ?(seed = 7) ?(rate = 2.0) ?(keys = 4) ?(op_timeout = 25.0)
    ?(fd_period = 1.0) ?(fd_timeout = 5.0) ?accrual ?(hedge = false)
    ?(degraded_reads = false) ?obs ~read_system ~write_system ~name scenario =
  ignore name;
  let n = read_system.Quorum.System.n in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.plan.loss () in
  let config =
    Client_config.(
      default
      |> with_timeout op_timeout
      |> with_fd ~period:fd_period ~timeout:fd_timeout ?accrual
      |> with_routing ~hedge ~degraded_reads
      |> with_durability (durability_of_plan scenario.plan))
  in
  let store =
    Replicated_store.of_config ~config ~read_system ~write_system ()
  in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:n ~network ?obs
      (Replicated_store.handlers store)
  in
  Replicated_store.bind store engine;
  apply engine ~rng scenario;
  let issued =
    Workload.read_write_mix engine ~rng ~rate ~horizon:scenario.horizon
      ~read_fraction:0.7 ~keys
      ~read:(fun ~client ~key -> Replicated_store.read store ~client ~key)
      ~write:(fun ~client ~key ~value ->
        Replicated_store.write store ~client ~key ~value)
  in
  let outcome = Engine.run_status engine in
  let detections = ref 0
  and fp = ref 0
  and missed = ref 0
  and trans = ref 0
  and dsum = ref 0.0
  and dmax = ref 0.0 in
  for node = 0 to n - 1 do
    let s = Replicated_store.fd_stats store ~node in
    detections := !detections + s.Sim.Failure_detector.detections;
    fp := !fp + s.Sim.Failure_detector.false_positives;
    missed := !missed + s.Sim.Failure_detector.missed;
    trans := !trans + s.Sim.Failure_detector.transitions;
    dsum :=
      !dsum
      +. s.Sim.Failure_detector.mean_detect
         *. float_of_int s.Sim.Failure_detector.detections;
    if s.Sim.Failure_detector.max_detect > !dmax then
      dmax := s.Sim.Failure_detector.max_detect
  done;
  let lat = Replicated_store.op_latency store in
  let p99_latency =
    Float.max
      (Obs.Metrics.percentile_or ~labels:[ ("op", "read") ] ~default:0.0 lat
         0.99)
      (Obs.Metrics.percentile_or ~labels:[ ("op", "write") ] ~default:0.0 lat
         0.99)
  in
  let detector =
    (match accrual with
    | Some phi -> Printf.sprintf "accrual(%g)" phi
    | None -> Printf.sprintf "fixed(%g)" fd_timeout)
    ^ if hedge then "+hedge" else ""
  in
  ( {
      label = scenario.label;
      detector;
      seed;
      issued;
      ok = Replicated_store.reads_ok store + Replicated_store.writes_ok store;
      stale_reads = Replicated_store.stale_reads store;
      unavailable = Replicated_store.unavailable store;
      hedges = Replicated_store.hedges store;
      degraded_writes = Replicated_store.degraded_writes store;
      detections = !detections;
      mean_detect =
        (if !detections = 0 then 0.0
         else !dsum /. float_of_int !detections);
      max_detect = !dmax;
      false_positives = !fp;
      missed = !missed;
      transitions = !trans;
      p99_latency;
      budget_hit = outcome = Engine.Budget_exhausted;
    },
    store )

let run_fd ?seed ?rate ?keys ?op_timeout ?fd_period ?fd_timeout ?accrual
    ?hedge ?degraded_reads ?obs ~read_system ~write_system ~name scenario =
  fst
    (run_fd_h ?seed ?rate ?keys ?op_timeout ?fd_period ?fd_timeout ?accrual
       ?hedge ?degraded_reads ?obs ~read_system ~write_system ~name scenario)

(* --- Reconfiguration under chaos ------------------------------------ *)

type reconfig_report = {
  label : string;
  system : string;
  seed : int;
  issued : int;
  reads_ok : int;
  writes_ok : int;
  retries : int;
  failed : int;
  stale_reads : int;
  epoch_switches : int;
  final_epoch : int;
  budget_hit : bool;
}

(* A register being reconfigured back and forth between two systems
   while the scenario's faults land — with restart windows, restarts
   hit {e during} the seal / install sequence. *)
let run_reconfig_h ?(seed = 7) ?(rate = 1.0) ?(op_timeout = 25.0) ?obs
    ~initial ~next ~name scenario =
  let universe = max initial.Quorum.System.n next.Quorum.System.n in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.plan.loss () in
  let config =
    Client_config.(
      default
      |> with_timeout op_timeout
      |> with_durability (durability_of_plan scenario.plan))
  in
  let rc = Reconfig.of_config ~config ~initial ~universe () in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:universe ~network ?obs
      (Reconfig.handlers rc)
  in
  Reconfig.bind rc engine;
  apply engine ~rng scenario;
  (* Two switches, timed to overlap the scenario's fault windows. *)
  let switch_at frac target =
    Engine.schedule engine ~time:(frac *. scenario.horizon) (fun () ->
        match Bitset.to_list (Engine.live_set engine) with
        | [] -> ()
        | c :: _ -> Reconfig.reconfigure rc ~coordinator:c target)
  in
  switch_at 0.35 next;
  switch_at 0.70 initial;
  let k = ref 0 in
  let issued =
    Workload.poisson_ops engine ~rng ~rate ~horizon:scenario.horizon
      (fun ~client ->
        incr k;
        if !k mod 3 = 0 then Reconfig.write rc ~client ~value:!k
        else Reconfig.read rc ~client)
  in
  let outcome = Engine.run_status engine in
  ( {
      label = scenario.label;
      system = name;
      seed;
      issued;
      reads_ok = Reconfig.reads_ok rc;
      writes_ok = Reconfig.writes_ok rc;
      retries = Reconfig.retries rc;
      failed = Reconfig.failed rc;
      stale_reads = Reconfig.stale_reads rc;
      epoch_switches = Reconfig.epoch_switches rc;
      final_epoch = Reconfig.current_epoch rc;
      budget_hit = outcome = Engine.Budget_exhausted;
    },
    rc )

let run_reconfig ?seed ?rate ?op_timeout ?obs ~initial ~next ~name scenario =
  fst (run_reconfig_h ?seed ?rate ?op_timeout ?obs ~initial ~next ~name scenario)

(* --- Availability under sustained churn ------------------------------ *)

type churn_mode = Static | Resize | Timed | Fd

let churn_mode_name = function
  | Static -> "static"
  | Resize -> "resize"
  | Timed -> "timed"
  | Fd -> "fd"

type churn_report = {
  label : string;
  mode : string;
  seed : int;
  issued : int;
  ok : int;
  failed : int;
  crash_kills : int;
      (* ops whose client died mid-flight — excluded from availability *)
  availability : float;
  retries : int;
  stale_reads : int;
  epoch_switches : int;
  proposals : int;
  grows : int;
  shrinks : int;
  replacements : int;
  lease_refusals : int;
  false_evictions : int;
  switch_downtime : float;
  final_members : int;
  budget_hit : bool;
}

(* A membership-managed register under the scenario.  [Static] never
   starts the controller (the triangle placed at t=0 is all there is),
   [Resize] runs the replace/grow/shrink policy, [Timed] additionally
   runs the register in timed-quorum mode so switches drain leases
   instead of sealing a structural old-system quorum.  [Fd] is
   [Resize] with the controller blinded: its liveness opinion comes
   from the members' failure-detector views (quorum-merged, with flap
   hysteresis) instead of the engine's oracle — the availability gap
   between [resize] and [fd] is the measured price of realistic
   failure detection.

   Clients are drawn from the {e live} set at issue time — a client
   that is down submits nothing, so availability measures the
   service's ability to answer, not the workload generator's luck. *)
let run_churn_h ?(seed = 7) ?(rate = 2.0) ?(op_timeout = 30.0) ?(rows = 5)
    ?(period = 8.0) ?(lease = 8.0) ?(margin = 6) ?obs ~mode ~universe scenario
    =
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.plan.loss () in
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let ms =
    Membership.create
      ~durability:(durability_of_plan scenario.plan)
      ?lease:
        (match mode with
        | Timed -> Some lease
        | Static | Resize | Fd -> None)
      ~view:
        (match mode with
        | Fd -> Membership.Fd { merged = true }
        | Static | Resize | Timed -> Membership.Omniscient)
      ~switch_retry:3.0 ~margin ~rows ~universe ~timeout:op_timeout ()
  in
  let rc = Membership.reconfig ms in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:universe ~network ~obs
      (Membership.handlers ms)
  in
  Membership.bind ms engine;
  apply engine ~rng scenario;
  (match mode with
  | Static -> ()
  | Resize | Timed | Fd ->
      Membership.start ms engine ~period ~horizon:scenario.horizon);
  let issued = ref 0 in
  let rec arm time =
    let next = time +. Rng.exponential rng ~mean:(1.0 /. rate) in
    if next < scenario.horizon then (
      Engine.schedule engine ~time:next (fun () ->
          match Bitset.to_list (Engine.live_set engine) with
          | [] -> ()
          | live ->
              incr issued;
              let client = Rng.pick rng (Array.of_list live) in
              if !issued mod 3 = 0 then
                Reconfig.write rc ~client ~value:!issued
              else Reconfig.read rc ~client);
      arm next)
  in
  arm 0.0;
  let outcome = Engine.run_status engine in
  let ok = Reconfig.reads_ok rc + Reconfig.writes_ok rc in
  ( {
      label = scenario.label;
      mode = churn_mode_name mode;
      seed;
      issued = !issued;
      ok;
      failed = Reconfig.failed rc;
      crash_kills = Reconfig.client_crash_kills rc;
      availability =
        (* Service availability: a client dying mid-operation is not a
           refusal by the service, so those ops leave the denominator. *)
        (let asked = !issued - Reconfig.client_crash_kills rc in
         if asked <= 0 then 1.0 else float_of_int ok /. float_of_int asked);
      retries = Reconfig.retries rc;
      stale_reads = Reconfig.stale_reads rc;
      epoch_switches = Reconfig.epoch_switches rc;
      proposals = Membership.proposals ms;
      grows = Membership.grows ms;
      shrinks = Membership.shrinks ms;
      replacements = Membership.replacements ms;
      lease_refusals = Reconfig.lease_refusals rc;
      false_evictions = Membership.false_evictions ms;
      switch_downtime =
        Obs.Trace_analysis.span_window_total ~spans:(Obs.spans obs)
          ~name:"reconfig.switch";
      final_members = Array.length (Membership.members ms);
      budget_hit = outcome = Engine.Budget_exhausted;
    },
    ms )

let run_churn ?seed ?rate ?op_timeout ?rows ?period ?lease ?margin ?obs
    ~mode ~universe scenario =
  fst
    (run_churn_h ?seed ?rate ?op_timeout ?rows ?period ?lease ?margin ?obs
       ~mode ~universe scenario)

(* --- Rendering ------------------------------------------------------ *)

let mutex_header () =
  Printf.sprintf "%-11s %-14s %6s %6s %4s %6s %6s %5s %5s %6s %8s %9s" "scenario"
    "system" "issued" "entry" "viol" "unavl" "resel" "aband" "dead" "rexmt"
    "wait" "msgs/ent"

let mutex_row (r : mutex_report) =
  Printf.sprintf "%-11s %-14s %6d %6d %4d %6d %6d %5d %5d %6d %8.2f %9.1f%s"
    r.label r.system r.issued r.entries r.violations r.unavailable
    r.reselections r.abandoned r.dead_letters r.retransmissions r.mean_wait
    r.msgs_per_entry
    (if r.budget_hit then "  [budget!]" else "")

let store_header () =
  Printf.sprintf "%-11s %-14s %6s %6s %6s %6s %5s %5s %5s %6s %5s %6s %8s"
    "scenario" "system" "issued" "reads" "writes" "unavl" "tmout" "retry"
    "stale" "rejoin" "dead" "rexmt" "latency"

let store_row (r : store_report) =
  Printf.sprintf "%-11s %-14s %6d %6d %6d %6d %5d %5d %5d %6d %5d %6d %8.2f%s"
    r.label r.system r.issued r.reads_ok r.writes_ok r.unavailable r.timeouts
    r.retried r.stale_reads r.rejoins r.dead_letters r.retransmissions
    r.mean_latency
    (if r.budget_hit then "  [budget!]" else "")

let churn_header () =
  Printf.sprintf
    "%-15s %-7s %6s %6s %6s %5s %6s %5s %6s %5s %5s %5s %6s %6s %9s %4s"
    "scenario" "mode" "issued" "ok" "failed" "ckill" "avail" "stale" "switch"
    "grow" "shrnk" "repl" "lease" "fevict" "downtime" "memb"

let churn_row (r : churn_report) =
  Printf.sprintf
    "%-15s %-7s %6d %6d %6d %5d %6.3f %5d %6d %5d %5d %5d %6d %6d %9.1f %4d%s"
    r.label r.mode r.issued r.ok r.failed r.crash_kills r.availability
    r.stale_reads r.epoch_switches r.grows r.shrinks r.replacements
    r.lease_refusals r.false_evictions r.switch_downtime r.final_members
    (if r.budget_hit then "  [budget!]" else "")

let fd_header () =
  Printf.sprintf
    "%-13s %-14s %6s %6s %5s %6s %5s %6s %7s %7s %5s %6s %5s %8s" "scenario"
    "detector" "issued" "ok" "stale" "hedges" "degrd" "detect" "meanlat"
    "maxlat" "fpos" "missed" "flips" "p99"

let fd_row (r : fd_report) =
  Printf.sprintf
    "%-13s %-14s %6d %6d %5d %6d %5d %6d %7.2f %7.2f %5d %6d %5d %8.2f%s"
    r.label r.detector r.issued r.ok r.stale_reads r.hedges
    r.degraded_writes r.detections r.mean_detect r.max_detect
    r.false_positives r.missed r.transitions r.p99_latency
    (if r.budget_hit then "  [budget!]" else "")

let reconfig_header () =
  Printf.sprintf "%-11s %-14s %6s %6s %6s %5s %6s %5s %6s %5s" "scenario"
    "system" "issued" "reads" "writes" "retry" "failed" "stale" "switch"
    "epoch"

let reconfig_row (r : reconfig_report) =
  Printf.sprintf "%-11s %-14s %6d %6d %6d %5d %6d %5d %6d %5d%s" r.label
    r.system r.issued r.reads_ok r.writes_ok r.retries r.failed r.stale_reads
    r.epoch_switches r.final_epoch
    (if r.budget_hit then "  [budget!]" else "")
