module Engine = Sim.Engine
module Network = Sim.Network
module Injector = Sim.Failure_injector
module Rng = Quorum.Rng

type plan = {
  loss : float;
  bursts : (float * float * float) list;
  gray : (int * float * float * float) list;
  partitions : (float * float * int list) list;
  churn : (float * float) option;
}

let calm = { loss = 0.0; bursts = []; gray = []; partitions = []; churn = None }

type scenario = { label : string; horizon : float; plan : plan }

(* A minority group to cut off: small enough that the majority side
   keeps quorums, so the interesting question is how fast the
   protocols route around the cut. *)
let minority n = List.init (max 1 (n / 4)) (fun i -> i)

let standard ~n ~horizon =
  let h = horizon in
  [
    { label = "baseline"; horizon = h; plan = calm };
    {
      label = "loss+burst";
      horizon = h;
      plan =
        { calm with loss = 0.05; bursts = [ (0.3 *. h, 0.1 *. h, 0.30) ] };
    };
    {
      label = "partition";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.05;
          partitions = [ (0.25 *. h, 0.2 *. h, minority n) ];
        };
    };
    {
      label = "churn";
      horizon = h;
      plan = { calm with loss = 0.02; churn = Some (0.10, 0.05 *. h) };
    };
    {
      label = "gray";
      horizon = h;
      plan =
        {
          calm with
          loss = 0.02;
          gray =
            [ (0, 0.2 *. h, 0.25 *. h, 25.0); (1, 0.55 *. h, 0.2 *. h, 25.0) ];
        };
    };
  ]

let scenario_of_label ~n ~horizon label =
  match
    List.find_opt (fun s -> s.label = label) (standard ~n ~horizon)
  with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Chaos: unknown scenario %S (have: %s)" label
           (String.concat ", "
              (List.map (fun s -> s.label) (standard ~n ~horizon))))

let apply engine ~rng scenario =
  let p = scenario.plan in
  List.iter
    (fun (at, duration, loss) -> Injector.loss_burst engine ~at ~duration ~loss)
    p.bursts;
  List.iter
    (fun (node, at, duration, slowdown) ->
      Injector.gray_failure engine ~node ~at ~duration ~slowdown)
    p.gray;
  Injector.partition_schedule engine p.partitions;
  match p.churn with
  | Some (p_down, mean_downtime) ->
      Injector.iid_faults engine ~rng ~p:p_down ~mean_downtime
        ~horizon:scenario.horizon
  | None -> ()

(* --- Mutual exclusion under chaos ---------------------------------- *)

type mutex_report = {
  label : string;
  system : string;
  issued : int;
  entries : int;
  violations : int;
  unavailable : int;
  reselections : int;
  abandoned : int;
  dead_letters : int;
  retransmissions : int;
  mean_wait : float;
  msgs_per_entry : float;
  budget_hit : bool;
}

let run_mutex ?(seed = 7) ?(rate = 0.4) ?(cs_duration = 1.0)
    ?(acquire_timeout = 80.0) ?obs ~system scenario =
  let n = system.Quorum.System.n in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.plan.loss () in
  let mx = Mutex.create ~system ~cs_duration ~acquire_timeout () in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:n ~network ?obs (Mutex.handlers mx)
  in
  Mutex.bind mx engine;
  apply engine ~rng scenario;
  let issued =
    Workload.poisson_ops engine ~rng ~rate ~horizon:scenario.horizon
      (fun ~client -> Mutex.request mx ~node:client)
  in
  let outcome = Engine.run_status engine in
  let entries = Mutex.entries mx in
  let wait = Mutex.acquire_latency mx in
  {
    label = scenario.label;
    system = system.Quorum.System.name;
    issued;
    entries;
    violations = Mutex.violations mx;
    unavailable = Mutex.unavailable mx;
    reselections = Mutex.reselections mx;
    abandoned = Mutex.abandoned mx;
    dead_letters = Mutex.dead_letters mx;
    retransmissions = Mutex.retransmissions mx;
    mean_wait = Obs.Metrics.mean wait;
    msgs_per_entry =
      (if entries = 0 then 0.0
       else float_of_int (Engine.messages_sent engine) /. float_of_int entries);
    budget_hit = outcome = Engine.Budget_exhausted;
  }

(* --- Replicated store under chaos ---------------------------------- *)

type store_report = {
  label : string;
  system : string;
  issued : int;
  reads_ok : int;
  writes_ok : int;
  unavailable : int;
  timeouts : int;
  retried : int;
  stale_reads : int;
  dead_letters : int;
  retransmissions : int;
  mean_latency : float;
  budget_hit : bool;
}

let run_store ?(seed = 7) ?(rate = 2.0) ?(read_fraction = 0.7) ?(keys = 4)
    ?(op_timeout = 25.0) ?(retries = 2) ?obs ~read_system ~write_system ~name
    scenario =
  let n = read_system.Quorum.System.n in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.plan.loss () in
  let store =
    Replicated_store.create ~retries ~read_system ~write_system
      ~timeout:op_timeout ()
  in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:n ~network ?obs
      (Replicated_store.handlers store)
  in
  Replicated_store.bind store engine;
  apply engine ~rng scenario;
  let issued =
    Workload.read_write_mix engine ~rng ~rate ~horizon:scenario.horizon
      ~read_fraction ~keys
      ~read:(fun ~client ~key -> Replicated_store.read store ~client ~key)
      ~write:(fun ~client ~key ~value ->
        Replicated_store.write store ~client ~key ~value)
  in
  let outcome = Engine.run_status engine in
  (* Both op=read and op=write cells of store.op_latency, combined. *)
  let lat = Replicated_store.op_latency store in
  let mean_latency =
    let cells = [ [ ("op", "read") ]; [ ("op", "write") ] ] in
    let n =
      List.fold_left (fun a l -> a + Obs.Metrics.count ~labels:l lat) 0 cells
    in
    let s =
      List.fold_left (fun a l -> a +. Obs.Metrics.sum ~labels:l lat) 0.0 cells
    in
    if n = 0 then 0.0 else s /. float_of_int n
  in
  {
    label = scenario.label;
    system = name;
    issued;
    reads_ok = Replicated_store.reads_ok store;
    writes_ok = Replicated_store.writes_ok store;
    unavailable = Replicated_store.unavailable store;
    timeouts = Replicated_store.timeouts store;
    retried = Replicated_store.retried store;
    stale_reads = Replicated_store.stale_reads store;
    dead_letters = Replicated_store.dead_letters store;
    retransmissions = Replicated_store.retransmissions store;
    mean_latency;
    budget_hit = outcome = Engine.Budget_exhausted;
  }

(* --- Rendering ------------------------------------------------------ *)

let mutex_header () =
  Printf.sprintf "%-11s %-14s %6s %6s %4s %6s %6s %5s %5s %6s %8s %9s" "scenario"
    "system" "issued" "entry" "viol" "unavl" "resel" "aband" "dead" "rexmt"
    "wait" "msgs/ent"

let mutex_row (r : mutex_report) =
  Printf.sprintf "%-11s %-14s %6d %6d %4d %6d %6d %5d %5d %6d %8.2f %9.1f%s"
    r.label r.system r.issued r.entries r.violations r.unavailable
    r.reselections r.abandoned r.dead_letters r.retransmissions r.mean_wait
    r.msgs_per_entry
    (if r.budget_hit then "  [budget!]" else "")

let store_header () =
  Printf.sprintf "%-11s %-14s %6s %6s %6s %6s %5s %5s %5s %5s %6s %8s" "scenario"
    "system" "issued" "reads" "writes" "unavl" "tmout" "retry" "stale" "dead"
    "rexmt" "latency"

let store_row (r : store_report) =
  Printf.sprintf "%-11s %-14s %6d %6d %6d %6d %5d %5d %5d %5d %6d %8.2f%s"
    r.label r.system r.issued r.reads_ok r.writes_ok r.unavailable r.timeouts
    r.retried r.stale_reads r.dead_letters r.retransmissions r.mean_latency
    (if r.budget_hit then "  [budget!]" else "")
