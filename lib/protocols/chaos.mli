(** Chaos harness: run the quorum protocols through reproducible fault
    scenarios and report protocol health.

    A {!scenario} bundles a simulation horizon with a {!plan} — base
    iid loss, loss bursts, gray failures (latency inflation), scheduled
    partitions and crash/recovery churn.  {!standard} builds the
    canonical scenario set used by [bench chaos], [quorumctl chaos] and
    the chaos-smoke tests; everything is parameterized by the seed, so
    a reported run is replayed exactly by re-running with the same seed
    and scenario.

    Safety counters ({!mutex_report.violations},
    {!store_report.stale_reads}) must stay 0 in every scenario — the
    fault plans may cost throughput and latency, never correctness. *)

type plan = {
  loss : float;  (** base iid message-drop probability *)
  bursts : (float * float * float) list;
      (** (at, duration, extra_loss) transient loss bursts *)
  gray : (int * float * float * float) list;
      (** (node, at, duration, slowdown) gray-failure windows *)
  links : (float * float * int * int * float) list;
      (** (at, duration, src, dst, extra_loss) asymmetric directed-link
          degradation windows, see
          {!Sim.Failure_injector.link_windows} *)
  partitions : (float * float * int list) list;
      (** (at, duration, group_a) network cuts, healed independently *)
  churn : (float * float) option;
      (** (p, mean_downtime) iid crash/recovery churn, see
          {!Sim.Failure_injector.iid_faults} *)
  churn_sustained : (float * float) option;
      (** (rate, mean_downtime) sustained Poisson join/leave churn, see
          {!Sim.Failure_injector.poisson_churn} *)
  restarts : (float * float * int list) list;
      (** (at, down_for, nodes) scripted crash-restart windows, see
          {!Sim.Failure_injector.restarts} *)
  amnesia : bool;
      (** make every recovery in this plan (restarts {e and} churn)
          amnesiac: recovered nodes keep only what they persisted *)
  fsync : float;
      (** modeled fsync latency of the protocols' durable stores;
          0 restores the classic free-stable-storage model *)
}

val calm : plan
(** No faults at all; the baseline. *)

type scenario = { label : string; horizon : float; plan : plan }

val standard : n:int -> horizon:float -> scenario list
(** The canonical five: [baseline], [loss+burst] (5% iid + a 30%
    burst), [partition] (5% iid + a transient minority cut),
    [churn-iid] (nodes down 10% of the time), [gray] (two slow-node
    windows). *)

val recovery : n:int -> horizon:float -> scenario list
(** The crash-recovery family, all with a non-zero fsync latency so
    write-ahead ack gating is actually exercised: [restart] (two
    minority crash-restart windows landing mid-traffic), [amnesia] (a
    minority restarts having lost volatile state and must replay +
    re-join), [amnesia-maj] (a majority loses its memory at once — any
    state not persisted is gone from every quorum). *)

val churn : n:int -> horizon:float -> scenario list
(** The sustained-churn family: [churn] (Poisson join/leave keeping
    ~10% of the population down on average), [churn-amnesia] (leavers
    come back amnesiac and must be re-synced on admission) and
    [churn-partition] (churn with a minority cut on top).  These are
    the scenarios the dynamic-membership controller (see
    {!Membership}) is built for; {!run_churn} runs them. *)

val fd_family : n:int -> horizon:float -> scenario list
(** The failure-detection stress family — each scenario makes a
    detector wrong in one specific way: [gray-flap] (a node flapping
    in and out of gray failure — slow enough to miss heartbeats, alive
    enough that suspecting it is wrong half the time), [asym-link]
    (directed link loss so observers {e disagree} about who is dead;
    no crashes — every suspicion is false), [suspect-burst] (heavy
    loss bursts swallowing whole heartbeat rounds; again no crashes).
    {!run_fd} runs them with the detector as the unit under test. *)

val scenario_of_label : n:int -> horizon:float -> string -> scenario
(** Look a scenario up by label across {!standard}, {!recovery},
    {!churn} and {!fd_family}; raises [Invalid_argument] listing the
    valid labels on a miss. *)

val durability_of_plan : plan -> Sim.Durable.config
(** The durable-store configuration a plan implies (its [fsync]
    latency), as passed to the protocols by the runners below. *)

val apply : 'msg Sim.Engine.t -> rng:Quorum.Rng.t -> scenario -> unit
(** Install the scenario's fault plan on a freshly built engine (base
    [loss] is {e not} applied — pass it to [Network.create]). *)

type mutex_report = {
  label : string;
  system : string;
  seed : int;  (** the run is replayed exactly by reusing this seed *)
  issued : int;
  entries : int;
  violations : int;  (** must be 0 *)
  unavailable : int;
  reselections : int;
  abandoned : int;
  dead_letters : int;
  retransmissions : int;
  mean_wait : float;
  msgs_per_entry : float;  (** foreground messages only *)
  budget_hit : bool;  (** event budget exhausted — run truncated *)
}

val run_mutex :
  ?seed:int ->
  ?rate:float ->
  ?cs_duration:float ->
  ?acquire_timeout:float ->
  ?obs:Obs.t ->
  system:Quorum.System.t ->
  scenario ->
  mutex_report
(** One seeded mutex run under the scenario: Poisson acquisition
    requests at [rate] per time unit over the horizon, then drain.
    Pass [?obs] to keep the run's metrics registry, trace and spans
    for inspection or dumping; omitted, the run still records into a
    private one. *)

val run_mutex_h :
  ?seed:int ->
  ?rate:float ->
  ?cs_duration:float ->
  ?acquire_timeout:float ->
  ?obs:Obs.t ->
  system:Quorum.System.t ->
  scenario ->
  mutex_report * Mutex.t
(** {!run_mutex}, additionally handing back the protocol instance so
    post-run state (e.g. for {!Obs.Trace_analysis}) stays reachable. *)

type store_report = {
  label : string;
  system : string;
  seed : int;  (** the run is replayed exactly by reusing this seed *)
  issued : int;
  reads_ok : int;
  writes_ok : int;
  unavailable : int;
  timeouts : int;
  retried : int;
  stale_reads : int;  (** must be 0 *)
  rejoins : int;  (** amnesiac re-join syncs completed *)
  rejoin_refusals : int;
      (** requests nacked by replicas still re-joining *)
  dead_letters : int;
  retransmissions : int;
  mean_latency : float;
  budget_hit : bool;
}

val run_store :
  ?seed:int ->
  ?rate:float ->
  ?read_fraction:float ->
  ?workload:Analysis.Workload.t ->
  ?keys:int ->
  ?op_timeout:float ->
  ?retries:int ->
  ?obs:Obs.t ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  name:string ->
  scenario ->
  store_report
(** One seeded replicated-store run: a read/write mix at [rate] ops
    per time unit; [name] labels the (read, write) system pair in the
    report.  The mix's read fraction comes from [?workload] (the
    unified [Analysis.Workload.t] spec) when given; [?read_fraction]
    is the bare-float compatibility shim (default 0.7, ignored when
    both are passed). *)

val run_store_h :
  ?seed:int ->
  ?rate:float ->
  ?read_fraction:float ->
  ?workload:Analysis.Workload.t ->
  ?keys:int ->
  ?op_timeout:float ->
  ?retries:int ->
  ?obs:Obs.t ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  name:string ->
  scenario ->
  store_report * Replicated_store.t
(** {!run_store}, additionally handing back the store so its
    {!Replicated_store.history} can feed
    {!Obs.Trace_analysis.audit_history}. *)

type fd_report = {
  label : string;
  detector : string;
      (** ["fixed(tau)"] or ["accrual(phi)"], ["+hedge"] when hedging *)
  seed : int;  (** the run is replayed exactly by reusing this seed *)
  issued : int;
  ok : int;
  stale_reads : int;  (** must be 0 *)
  unavailable : int;
  hedges : int;  (** hedge requests sent to backup replicas *)
  degraded_writes : int;  (** writes refused by degraded read-only mode *)
  detections : int;  (** dead-peer suspicion onsets, all observers *)
  mean_detect : float;  (** mean crash-to-suspicion latency *)
  max_detect : float;
  false_positives : int;  (** suspicion onsets against live peers *)
  missed : int;  (** samples with an overdue undetected death *)
  transitions : int;  (** suspicion flips, either direction *)
  p99_latency : float;  (** worse of the read / write p99 *)
  budget_hit : bool;
}

val run_fd :
  ?seed:int ->
  ?rate:float ->
  ?keys:int ->
  ?op_timeout:float ->
  ?fd_period:float ->
  ?fd_timeout:float ->
  ?accrual:float ->
  ?hedge:bool ->
  ?degraded_reads:bool ->
  ?obs:Obs.t ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  name:string ->
  scenario ->
  fd_report
(** One seeded failure-detection run: a replicated store (clients
    route by detector view) under the scenario, with the detector
    configuration as the independent variable — [fd_timeout] alone
    gives the fixed-timeout detector, [accrual] switches to the
    phi-accrual detector at that threshold, [hedge] /
    [degraded_reads] enable the suspicion-aware routing knobs (see
    {!Client_config.routing}).  The report aggregates every node's
    oracle-measured accuracy counters; sweeping [fd_timeout] or
    [accrual] maps the detection-time vs false-positive tradeoff. *)

val run_fd_h :
  ?seed:int ->
  ?rate:float ->
  ?keys:int ->
  ?op_timeout:float ->
  ?fd_period:float ->
  ?fd_timeout:float ->
  ?accrual:float ->
  ?hedge:bool ->
  ?degraded_reads:bool ->
  ?obs:Obs.t ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  name:string ->
  scenario ->
  fd_report * Replicated_store.t
(** {!run_fd}, additionally handing back the store so per-node
    {!Replicated_store.fd_stats} stay reachable (the [quorumctl fd]
    table). *)

type reconfig_report = {
  label : string;
  system : string;
  seed : int;  (** the run is replayed exactly by reusing this seed *)
  issued : int;
  reads_ok : int;
  writes_ok : int;
  retries : int;
  failed : int;
  stale_reads : int;  (** must be 0 *)
  epoch_switches : int;
  final_epoch : int;
  budget_hit : bool;
}

val run_reconfig :
  ?seed:int ->
  ?rate:float ->
  ?op_timeout:float ->
  ?obs:Obs.t ->
  initial:Quorum.System.t ->
  next:Quorum.System.t ->
  name:string ->
  scenario ->
  reconfig_report
(** One seeded reconfiguration run: a read/write mix on the register
    while the configuration is switched [initial → next → initial] at
    0.35 and 0.70 of the horizon — under a recovery scenario the
    restart windows land {e during} the seal / install sequence. *)

val run_reconfig_h :
  ?seed:int ->
  ?rate:float ->
  ?op_timeout:float ->
  ?obs:Obs.t ->
  initial:Quorum.System.t ->
  next:Quorum.System.t ->
  name:string ->
  scenario ->
  reconfig_report * Reconfig.t
(** {!run_reconfig}, additionally handing back the protocol instance
    so its {!Reconfig.history} can feed
    {!Obs.Trace_analysis.audit_history}. *)

type churn_mode =
  | Static  (** the t=0 configuration is never changed *)
  | Resize  (** the {!Membership} controller replaces / grows / shrinks *)
  | Timed  (** [Resize] plus timed-quorum leases (see {!Reconfig}) *)
  | Fd
      (** [Resize] with the controller blinded: liveness comes from the
          members' quorum-merged failure-detector views (with flap
          hysteresis) instead of the engine oracle — the availability
          gap to [Resize] is the price of realistic detection *)

type churn_report = {
  label : string;
  mode : string;  (** "static" / "resize" / "timed" / "fd" *)
  seed : int;  (** the run is replayed exactly by reusing this seed *)
  issued : int;  (** ops issued by {e live} clients *)
  ok : int;  (** reads + writes completed *)
  failed : int;
  crash_kills : int;
      (** ops whose client died mid-flight (a subset of [failed]) *)
  availability : float;
      (** ok / (issued - crash_kills): a client dying mid-operation is
          not a refusal by the service *)
  retries : int;
  stale_reads : int;  (** must be 0 *)
  epoch_switches : int;
  proposals : int;  (** controller proposals (incl. abandoned) *)
  grows : int;
  shrinks : int;
  replacements : int;
  lease_refusals : int;  (** timed mode: expired-lease NACKs *)
  false_evictions : int;
      (** [Fd] mode: proposals that evicted an oracle-live member (see
          {!Membership.false_evictions}); 0 otherwise *)
  switch_downtime : float;
      (** total time some switch was in flight — merged
          ["reconfig.switch"] span windows, see
          {!Obs.Trace_analysis.span_windows} *)
  final_members : int;  (** triangle size at the end of the run *)
  budget_hit : bool;
}

val run_churn :
  ?seed:int ->
  ?rate:float ->
  ?op_timeout:float ->
  ?rows:int ->
  ?period:float ->
  ?lease:float ->
  ?margin:int ->
  ?obs:Obs.t ->
  mode:churn_mode ->
  universe:int ->
  scenario ->
  churn_report
(** One seeded availability-under-churn run: a membership-managed
    h-triang register (initially [rows] rows, identity-placed on a
    [universe]-process engine) serving a Poisson read/write mix while
    the scenario's faults land.  Clients are drawn from the live set
    at issue time, so [availability] measures the service, not the
    workload generator.  [period] is the controller tick interval
    (ignored for [Static]); [lease] the validity window for [Timed];
    [margin] (default 6) the controller's spare-headroom hysteresis
    (see {!Membership.create}). *)

val run_churn_h :
  ?seed:int ->
  ?rate:float ->
  ?op_timeout:float ->
  ?rows:int ->
  ?period:float ->
  ?lease:float ->
  ?margin:int ->
  ?obs:Obs.t ->
  mode:churn_mode ->
  universe:int ->
  scenario ->
  churn_report * Membership.t
(** {!run_churn}, additionally handing back the membership controller
    (and through it the register) for post-run inspection. *)

val mutex_header : unit -> string
val mutex_row : mutex_report -> string
val store_header : unit -> string
val store_row : store_report -> string
val reconfig_header : unit -> string
val reconfig_row : reconfig_report -> string
val churn_header : unit -> string
val churn_row : churn_report -> string
val fd_header : unit -> string
val fd_row : fd_report -> string
(** Fixed-width table rendering shared by the bench target and the
    [quorumctl chaos] / [quorumctl fd] subcommands. *)
