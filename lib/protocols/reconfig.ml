module Engine = Sim.Engine
module Durable = Sim.Durable
module Span = Obs.Span
module Bitset = Quorum.Bitset
module System = Quorum.System

type msg =
  | Op_req of { op : int; epoch : int; write : (int * int) option }
      (** [write = Some (version, value)] installs; [None] reads. *)
  | Op_rep of { op : int; version : int; value : int }
  | Op_nack of { op : int; epoch : int }
  | Seal_req of { epoch : int }
  | Seal_ack of { epoch : int; version : int; value : int }
  | Install_req of { epoch : int; version : int; value : int }
  | Install_ack of { epoch : int }
  | Announce of { epoch : int }
  | Epoch_req  (** an amnesiac replica asking peers for their epoch *)
  | Epoch_rep of { epoch : int }

(* Timer tags: op ids are >= 0; the coordinator's switch-retry tick and
   the replicas' unseal self-heal tick use reserved negatives. *)
let switch_tag = -2
let unseal_tag = -3

type kind = Read_op | Write_op of int

type phase = Version_phase | Install_phase

type op = {
  id : int;
  client : int;
  kind : kind;
  started : float;
  mutable epoch : int;
  mutable waiting_for : Bitset.t;
  mutable best : int * int;
  mutable write_version : int;
  mutable phase : phase;
  mutable retries_left : int;
  mutable nacked : bool;
  mutable span : int;  (** root span of the whole client operation *)
}

type replica = {
  mutable r_epoch : int;
  mutable sealed : bool;
  mutable state : int * int;  (** version, value *)
}

type switch = {
  coordinator : int;
  next_epoch : int;
  next_system : System.t;
  seal_waiting : Bitset.t;
  mutable seal_best : int * int;
  install_waiting : Bitset.t;
  mutable installing : bool;
  mutable sw_retries : int;
      (** idempotent re-sends left before the switch is abandoned *)
}

type t = {
  universe : int;
  timeout : float;
  durability : Durable.config;
  mutable dur : unit Durable.t option;
  mutable cell : (int * bool * (int * int)) Durable.cell option;
      (** per replica: (r_epoch, sealed, state) *)
  incarnation : int array;
  mutable engine : msg Engine.t option;
  mutable configs : System.t list;  (** index = epoch *)
  mutable epoch : int;  (** latest announced epoch (global knowledge) *)
  replicas : replica array;
  ops : (int, op) Hashtbl.t;
  mutable next_op : int;
  mutable switch : switch option;
  mutable epoch_switches : int;
  mutable refused_switches : int;
  mutable reads_ok : int;
  mutable writes_ok : int;
  mutable retries : int;
  mutable failed : int;
  mutable stale_reads : int;
  mutable committed : (float * int) list;
  mutable history : Obs.Trace_analysis.hop list;  (** newest first *)
}

let create ?(durability = Durable.instant) ~initial ~universe ~timeout () =
  if initial.System.n > universe then
    invalid_arg "Reconfig.create: configuration exceeds universe";
  {
    universe;
    timeout;
    durability;
    dur = None;
    cell = None;
    incarnation = Array.make universe 0;
    engine = None;
    configs = [ initial ];
    epoch = 0;
    replicas =
      Array.init universe (fun _ ->
          { r_epoch = 0; sealed = false; state = (0, 0) });
    ops = Hashtbl.create 32;
    next_op = 0;
    switch = None;
    epoch_switches = 0;
    refused_switches = 0;
    reads_ok = 0;
    writes_ok = 0;
    retries = 0;
    failed = 0;
    stale_reads = 0;
    committed = [];
    history = [];
  }

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Reconfig: bind the engine first"

let bind t engine =
  if Engine.nodes engine <> t.universe then
    invalid_arg "Reconfig.bind: engine size mismatch";
  t.engine <- Some engine;
  let dur =
    Durable.create ~obs:(Engine.obs engine) ~nodes:t.universe t.durability
  in
  t.dur <- Some dur;
  t.cell <- Some (Durable.cell dur ~name:"reconfig.replica")

let dur_exn t =
  match t.dur with
  | Some d -> d
  | None -> invalid_arg "Reconfig: bind the engine first"

let cell_exn t =
  match t.cell with
  | Some c -> c
  | None -> invalid_arg "Reconfig: bind the engine first"

let spans_exn t = Obs.spans (Engine.obs (engine_exn t))
let history t = List.rev t.history

(* Persist a replica's whole durable image: epoch, seal flag, state. *)
let persist t ~node =
  let r = t.replicas.(node) in
  Durable.set (cell_exn t) ~node
    ~now:(Engine.now (engine_exn t))
    (r.r_epoch, r.sealed, r.state)

(* Write-ahead reply: the durable image is fsynced before the message
   that makes it observable (write ack, seal ack, install ack) leaves,
   so no acknowledged transition is ever lost to an amnesiac crash. *)
let reply_after_fsync t engine ~node ~dst msg =
  let durable_at = persist t ~node in
  let now = Engine.now engine in
  if durable_at <= now then Engine.send engine ~src:node ~dst msg
  else begin
    let inc = t.incarnation.(node) in
    (* The wait for the fsync is a span of its own, child of whatever
       operation the triggering message belonged to. *)
    let parent = Engine.span_ctx engine in
    let fspan =
      if parent >= 0 then
        Span.start (spans_exn t) ~time:now ~node ~parent "reconfig.fsync"
      else -1
    in
    Engine.schedule engine ~time:durable_at (fun () ->
        let ok = t.incarnation.(node) = inc && Engine.is_live engine node in
        if fspan >= 0 then
          Span.finish (spans_exn t) ~time:durable_at
            ~status:(if ok then Span.Ok else Span.Error "crash")
            fspan;
        if ok then Engine.send engine ~src:node ~dst msg)
  end

let current_epoch t = t.epoch
let epoch_switches t = t.epoch_switches
let reads_ok t = t.reads_ok
let writes_ok t = t.writes_ok
let retries t = t.retries
let failed t = t.failed
let stale_reads t = t.stale_reads

let config_of_epoch t epoch =
  (* configs is newest-first. *)
  let from_newest = List.length t.configs - 1 - epoch in
  List.nth t.configs from_newest

let committed_before t time =
  List.fold_left
    (fun acc (ct, v) -> if ct <= time then max acc v else acc)
    0 t.committed

(* --- Client side ---------------------------------------------------- *)

(* Select a quorum in the configuration of the client's current view
   and start (or restart) the version phase of [op]. *)
let launch t (op : op) =
  let engine = engine_exn t in
  op.epoch <- t.epoch;
  let system = config_of_epoch t op.epoch in
  (* Only the configuration's members serve quorums; spares idle. *)
  let live = Engine.live_set engine in
  let members = Bitset.create system.System.n in
  for i = 0 to system.System.n - 1 do
    if Bitset.mem live i then Bitset.add members i
  done;
  match system.System.select (Engine.rng engine) ~live:members with
  | None ->
      Hashtbl.remove t.ops op.id;
      t.failed <- t.failed + 1;
      Span.finish (spans_exn t) ~time:(Engine.now engine)
        ~status:(Span.Error "unavailable") op.span
  | Some quorum ->
      op.phase <- Version_phase;
      op.best <- (0, 0);
      op.nacked <- false;
      op.waiting_for <- Bitset.copy quorum;
      Engine.with_span_ctx engine op.span (fun () ->
          Bitset.iter
            (fun j ->
              Engine.send engine ~src:op.client ~dst:j
                (Op_req { op = op.id; epoch = op.epoch; write = None }))
            quorum)

let start t ~client kind =
  let engine = engine_exn t in
  if not (Engine.is_live engine client) then t.failed <- t.failed + 1
  else begin
    let id = t.next_op in
    t.next_op <- t.next_op + 1;
    let op =
      {
        id;
        client;
        kind;
        started = Engine.now engine;
        epoch = t.epoch;
        waiting_for = Bitset.create t.universe;
        best = (0, 0);
        write_version = 0;
        phase = Version_phase;
        retries_left = 12;
        nacked = false;
        span = -1;
      }
    in
    op.span <-
      Span.start (spans_exn t) ~time:op.started ~node:client
        (match kind with
        | Read_op -> "reconfig.read"
        | Write_op _ -> "reconfig.write");
    Hashtbl.add t.ops id op;
    launch t op;
    if Hashtbl.mem t.ops id then
      Engine.with_span_ctx engine op.span (fun () ->
          Engine.set_timer engine ~node:client ~delay:t.timeout ~tag:id)
  end

let read t ~client = start t ~client Read_op
let write t ~client ~value = start t ~client (Write_op value)

(* The register has a single logical cell; hops use key 0 and the
   version as the value observed/installed. *)
let record_hop t (op : op) ~now ~is_write version =
  t.history <-
    {
      Obs.Trace_analysis.client = op.client;
      key = 0;
      is_write;
      version;
      started = op.started;
      finished = now;
      span = op.span;
    }
    :: t.history

let finish_read t (op : op) =
  Hashtbl.remove t.ops op.id;
  t.reads_ok <- t.reads_ok + 1;
  let now = Engine.now (engine_exn t) in
  Span.finish (spans_exn t) ~time:now op.span;
  record_hop t op ~now ~is_write:false (fst op.best);
  if fst op.best < committed_before t op.started then
    t.stale_reads <- t.stale_reads + 1

let retry_later t (op : op) =
  (* NACKed (sealed replica or stale epoch): back off and relaunch
     under the then-current configuration. *)
  if op.retries_left = 0 then begin
    Hashtbl.remove t.ops op.id;
    t.failed <- t.failed + 1;
    Span.finish (spans_exn t)
      ~time:(Engine.now (engine_exn t))
      ~status:(Span.Error "exhausted") op.span
  end
  else begin
    op.retries_left <- op.retries_left - 1;
    t.retries <- t.retries + 1;
    let engine = engine_exn t in
    Engine.schedule engine
      ~time:(Engine.now engine +. 3.0)
      (fun () -> if Hashtbl.mem t.ops op.id then launch t op)
  end

let begin_install t (op : op) =
  let engine = engine_exn t in
  match op.kind with
  | Read_op -> finish_read t op
  | Write_op value ->
      let system = config_of_epoch t op.epoch in
      let live = Engine.live_set engine in
      let members = Bitset.create system.System.n in
      for i = 0 to system.System.n - 1 do
        if Bitset.mem live i then Bitset.add members i
      done;
      (match system.System.select (Engine.rng engine) ~live:members with
      | None ->
          Hashtbl.remove t.ops op.id;
          t.failed <- t.failed + 1;
          Span.finish (spans_exn t) ~time:(Engine.now engine)
            ~status:(Span.Error "unavailable") op.span
      | Some wq ->
          let version = fst op.best + 1 in
          op.write_version <- version;
          op.phase <- Install_phase;
          op.waiting_for <- Bitset.copy wq;
          Engine.with_span_ctx engine op.span (fun () ->
              Bitset.iter
                (fun j ->
                  Engine.send engine ~src:op.client ~dst:j
                    (Op_req
                       {
                         op = op.id;
                         epoch = op.epoch;
                         write = Some (version, value);
                       }))
                wq))

(* --- Reconfiguration -------------------------------------------------- *)

let arm_switch_timer t engine ~coordinator =
  Engine.set_timer engine ~background:true ~node:coordinator ~delay:t.timeout
    ~tag:switch_tag

let arm_unseal_timer t engine ~node =
  Engine.set_timer engine ~background:true ~node ~delay:(2.0 *. t.timeout)
    ~tag:unseal_tag

let abandon_switch t engine ~coordinator =
  (* Give up: drop the switch and re-announce the old epoch so sealed
     replicas reopen for service. *)
  t.switch <- None;
  t.refused_switches <- t.refused_switches + 1;
  for j = 0 to t.universe - 1 do
    Engine.send engine ~src:coordinator ~dst:j (Announce { epoch = t.epoch })
  done

(* The coordinator's retry tick: seal and install handlers are
   idempotent (re-sealing re-acks, re-installing always acks), so
   members that were down or cut off when the first round went out are
   simply asked again once they return; a bounded number of rounds
   keeps a switch from outliving a permanently lost member. *)
let switch_tick t ~node =
  match t.switch with
  | Some sw when sw.coordinator = node ->
      let engine = engine_exn t in
      if sw.sw_retries = 0 then abandon_switch t engine ~coordinator:node
      else begin
        sw.sw_retries <- sw.sw_retries - 1;
        (if sw.installing then
           let version, value = sw.seal_best in
           Bitset.iter
             (fun j ->
               Engine.send engine ~src:node ~dst:j
                 (Install_req { epoch = sw.next_epoch; version; value }))
             sw.install_waiting
         else
           Bitset.iter
             (fun j ->
               Engine.send engine ~src:node ~dst:j
                 (Seal_req { epoch = t.epoch }))
             sw.seal_waiting);
        arm_switch_timer t engine ~coordinator:node
      end
  | Some _ | None -> ()

(* A sealed replica's self-heal tick.  Sealing must not outlive the
   switch that asked for it (a dead coordinator would otherwise leave
   the replica refusing service forever) — but unsealing while that
   switch is still in flight could let an old-epoch write slip past
   the seal quorum and be lost by the install.  The tick therefore
   re-arms while the sealing switch is alive (global knowledge
   standing in for a coordinator lease, like [t.epoch]) and unseals
   only once it is gone. *)
let unseal_tick t ~node =
  let r = t.replicas.(node) in
  if r.sealed then
    match t.switch with
    | Some sw when sw.next_epoch = r.r_epoch + 1 ->
        arm_unseal_timer t (engine_exn t) ~node
    | Some _ | None ->
        r.sealed <- false;
        ignore (persist t ~node)

let reconfigure t ~coordinator next_system =
  let engine = engine_exn t in
  if next_system.System.n > t.universe then
    invalid_arg "Reconfig.reconfigure: configuration exceeds universe";
  match t.switch with
  | Some _ -> t.refused_switches <- t.refused_switches + 1
  | None ->
      let old_system = config_of_epoch t t.epoch in
      let live = Engine.live_set engine in
      let members = Bitset.create old_system.System.n in
      for i = 0 to old_system.System.n - 1 do
        if Bitset.mem live i then Bitset.add members i
      done;
      (match old_system.System.select (Engine.rng engine) ~live:members with
      | None -> t.refused_switches <- t.refused_switches + 1
      | Some seal_quorum ->
          let sw =
            {
              coordinator;
              next_epoch = t.epoch + 1;
              next_system;
              seal_waiting = Bitset.copy seal_quorum;
              seal_best = (0, 0);
              install_waiting = Bitset.create t.universe;
              installing = false;
              sw_retries = 8;
            }
          in
          t.switch <- Some sw;
          Bitset.iter
            (fun j ->
              Engine.send engine ~src:coordinator ~dst:j
                (Seal_req { epoch = t.epoch }))
            seal_quorum;
          arm_switch_timer t engine ~coordinator)

let on_seal_ack t sw ~src ~version ~value =
  let engine = engine_exn t in
  if (not sw.installing) && Bitset.mem sw.seal_waiting src then begin
    Bitset.remove sw.seal_waiting src;
    if version > fst sw.seal_best then sw.seal_best <- (version, value);
    if Bitset.is_empty sw.seal_waiting then begin
      sw.installing <- true;
      (* Install the sealed state on a quorum of the new system. *)
      let live = Engine.live_set engine in
      let members = Bitset.create sw.next_system.System.n in
      for i = 0 to sw.next_system.System.n - 1 do
        if Bitset.mem live i then Bitset.add members i
      done;
      match sw.next_system.System.select (Engine.rng engine) ~live:members with
      | None ->
          (* Cannot complete; drop the switch (sealed replicas unseal on
             the next announce — here we re-announce the old epoch). *)
          t.switch <- None;
          t.refused_switches <- t.refused_switches + 1;
          for j = 0 to t.universe - 1 do
            Engine.send engine ~src:sw.coordinator ~dst:j
              (Announce { epoch = t.epoch })
          done
      | Some wq ->
          (* install_waiting lives in the engine universe; the new
             configuration's ids are a prefix of it. *)
          Bitset.iter (fun e -> Bitset.add sw.install_waiting e) wq;
          let version, value = sw.seal_best in
          Bitset.iter
            (fun j ->
              Engine.send engine ~src:sw.coordinator ~dst:j
                (Install_req { epoch = sw.next_epoch; version; value }))
            wq
    end
  end

let on_install_ack t sw ~src =
  let engine = engine_exn t in
  if sw.installing && Bitset.mem sw.install_waiting src then begin
    Bitset.remove sw.install_waiting src;
    if Bitset.is_empty sw.install_waiting then begin
      (* Commit the switch and tell everyone. *)
      t.configs <- sw.next_system :: t.configs;
      t.epoch <- sw.next_epoch;
      t.epoch_switches <- t.epoch_switches + 1;
      t.switch <- None;
      for j = 0 to t.universe - 1 do
        Engine.send engine ~src:sw.coordinator ~dst:j
          (Announce { epoch = sw.next_epoch })
      done
    end
  end

(* --- Handlers --------------------------------------------------------- *)

let handlers t : msg Engine.handlers =
  {
    on_message =
      (fun engine ~node ~src msg ->
        match msg with
        | Op_req { op; epoch; write } ->
            let r = t.replicas.(node) in
            if epoch <> r.r_epoch || r.sealed then
              Engine.send engine ~src:node ~dst:src
                (Op_nack { op; epoch = r.r_epoch })
            else begin
              match write with
              | Some (version, value) ->
                  if version > fst r.state then r.state <- (version, value);
                  let version, value = r.state in
                  reply_after_fsync t engine ~node ~dst:src
                    (Op_rep { op; version; value })
              | None ->
                  let version, value = r.state in
                  Engine.send engine ~src:node ~dst:src
                    (Op_rep { op; version; value })
            end
        | Op_rep { op = op_id; version; value } ->
            (match Hashtbl.find_opt t.ops op_id with
            | None -> ()
            | Some op ->
                if Bitset.mem op.waiting_for src then begin
                  Bitset.remove op.waiting_for src;
                  if version > fst op.best then op.best <- (version, value);
                  if Bitset.is_empty op.waiting_for && not op.nacked then
                    match op.phase with
                    | Version_phase -> begin_install t op
                    | Install_phase ->
                        Hashtbl.remove t.ops op.id;
                        t.writes_ok <- t.writes_ok + 1;
                        let now = Engine.now engine in
                        Span.finish (spans_exn t) ~time:now op.span;
                        record_hop t op ~now ~is_write:true op.write_version;
                        t.committed <- (now, op.write_version) :: t.committed
                end)
        | Op_nack { op = op_id; epoch = _ } ->
            (match Hashtbl.find_opt t.ops op_id with
            | None -> ()
            | Some op ->
                if not op.nacked then begin
                  op.nacked <- true;
                  retry_later t op
                end)
        | Seal_req { epoch } ->
            let r = t.replicas.(node) in
            if epoch = r.r_epoch then begin
              r.sealed <- true;
              let version, value = r.state in
              reply_after_fsync t engine ~node ~dst:src
                (Seal_ack { epoch; version; value });
              arm_unseal_timer t engine ~node
            end
        | Seal_ack { epoch; version; value } ->
            (match t.switch with
            | Some sw when sw.next_epoch = epoch + 1 ->
                on_seal_ack t sw ~src ~version ~value
            | Some _ | None -> ())
        | Install_req { epoch; version; value } ->
            let r = t.replicas.(node) in
            if epoch > r.r_epoch then begin
              r.r_epoch <- epoch;
              r.sealed <- false;
              if version > fst r.state then r.state <- (version, value)
            end;
            reply_after_fsync t engine ~node ~dst:src (Install_ack { epoch })
        | Install_ack { epoch } ->
            (match t.switch with
            | Some sw when sw.next_epoch = epoch -> on_install_ack t sw ~src
            | Some _ | None -> ())
        | Announce { epoch } ->
            let r = t.replicas.(node) in
            if epoch >= r.r_epoch then begin
              r.r_epoch <- epoch;
              r.sealed <- false;
              (* Fire-and-forget: nothing observes this transition
                 before it settles, so losing it only means re-learning
                 the epoch on the next announce or Epoch_rep. *)
              ignore (persist t ~node)
            end
        | Epoch_req ->
            Engine.send engine ~src:node ~dst:src
              (Epoch_rep { epoch = t.replicas.(node).r_epoch })
        | Epoch_rep { epoch } ->
            (* Adopt strictly newer epochs only: an equal-epoch reply
               must not unseal a replica whose seal may be counted by
               an in-flight switch. *)
            let r = t.replicas.(node) in
            if epoch > r.r_epoch then begin
              r.r_epoch <- epoch;
              r.sealed <- false;
              ignore (persist t ~node)
            end);
    on_timer =
      (fun engine ~node ~tag ->
        if tag = switch_tag then switch_tick t ~node
        else if tag = unseal_tag then unseal_tick t ~node
        else
          match Hashtbl.find_opt t.ops tag with
          | Some op ->
              Hashtbl.remove t.ops op.id;
              t.failed <- t.failed + 1;
              Span.finish (spans_exn t) ~time:(Engine.now engine)
                ~status:(Span.Error "timeout") op.span
          | None -> ());
    on_crash =
      (fun engine ~node ->
        t.incarnation.(node) <- t.incarnation.(node) + 1;
        Durable.crash (dur_exn t) ~node ~now:(Engine.now engine);
        (* A crashed coordinator takes its switch down with it; sealed
           replicas self-heal through their unseal tick. *)
        (match t.switch with
        | Some sw when sw.coordinator = node ->
            t.switch <- None;
            t.refused_switches <- t.refused_switches + 1
        | Some _ | None -> ());
        let doomed =
          Hashtbl.fold
            (fun _ op acc -> if op.client = node then op :: acc else acc)
            t.ops []
        in
        List.iter
          (fun op ->
            Hashtbl.remove t.ops op.id;
            t.failed <- t.failed + 1;
            Span.finish (spans_exn t)
              ~time:(Engine.now engine)
              ~status:(Span.Error "crash") op.span)
          doomed);
    on_recover =
      (fun engine ~node ~amnesia ->
        if amnesia then begin
          (* Restore the durable image and re-learn the current epoch
             from peers over the announce path. *)
          let r = t.replicas.(node) in
          let now = Engine.now engine in
          (match Durable.durable_value (cell_exn t) ~node ~now with
          | Some (epoch, sealed, state) ->
              r.r_epoch <- epoch;
              r.sealed <- sealed;
              r.state <- state
          | None ->
              r.r_epoch <- 0;
              r.sealed <- false;
              r.state <- (0, 0));
          for j = 0 to t.universe - 1 do
            if j <> node then Engine.send engine ~src:node ~dst:j Epoch_req
          done
        end;
        (* Timers died with the crash: a still-sealed replica needs its
           self-heal tick back. *)
        if t.replicas.(node).sealed then arm_unseal_timer t engine ~node);
  }
