module Engine = Sim.Engine
module Durable = Sim.Durable
module Failure_detector = Sim.Failure_detector
module Span = Obs.Span
module Bitset = Quorum.Bitset
module System = Quorum.System

type msg =
  | Op_req of { op : int; epoch : int; write : (int * int) option }
      (** [write = Some (version, value)] installs; [None] reads. *)
  | Op_rep of { op : int; version : int; value : int }
  | Op_nack of { op : int; epoch : int }
  | Seal_req of { gen : int; epoch : int }
  | Seal_ack of { gen : int; epoch : int; version : int; value : int }
  | Install_req of { gen : int; epoch : int; version : int; value : int }
  | Install_ack of { gen : int }
  | Announce of { epoch : int }
  | Epoch_req  (** an amnesiac replica asking peers for their epoch *)
  | Epoch_rep of { epoch : int }
  | Beat  (** failure-detector heartbeat (only with [with_fd]) *)

(* Timer tags: op ids are >= 0; tag -1 is the failure detector's; the
   coordinator's switch-retry tick, the replicas' unseal self-heal tick
   and the timed-mode lease-renewal tick use reserved negatives. *)
let switch_tag = -2
let unseal_tag = -3
let renew_tag = -4

type kind = Read_op | Write_op of int

type phase = Version_phase | Install_phase

type op = {
  id : int;
  client : int;
  kind : kind;
  started : float;
  mutable epoch : int;
  mutable waiting_for : Bitset.t;
  mutable targets : Bitset.t;  (** everyone ever asked this phase *)
  mutable acked : Bitset.t;  (** everyone who replied this phase *)
  mutable last_send : float;
  mutable best : int * int;
  mutable write_version : int;
  mutable phase : phase;
  mutable retries_left : int;
  mutable nacked : bool;
  mutable attempt : int;
      (** bumped on every (re)send round — the progress check only
          fires for the attempt it was armed for *)
  mutable span : int;  (** root span of the whole client operation *)
}

type replica = {
  mutable r_epoch : int;
  mutable sealed : bool;
  mutable state : int * int;  (** version, value *)
  mutable lease_until : float;
      (** timed mode: serve only while [now <= lease_until] *)
}

type switch = {
  gen : int;
      (** unique per launched switch: two successive switches target
          the same next epoch, so acks must name the round that asked
          for them or a dead switch's stragglers would be miscounted *)
  coordinator : int;
  next_epoch : int;
  next_system : System.t;
  timed : bool;  (** lease-drain switch (no structural seal quorum) *)
  seal_acked : Bitset.t;
      (** every member that ever acked a seal — the phase completes as
          soon as the acked set contains a full old-system quorum *)
  mutable seal_acks : int;
  mutable seal_best : int * int;
  install_acked : Bitset.t;
  mutable installing : bool;
  mutable draining : bool;
      (** timed mode: leases still draining — no seals out yet *)
  mutable sw_retries : int;
      (** idempotent re-sends left in the current phase before the
          switch is abandoned (each phase gets a fresh budget) *)
  sw_span : int;  (** the ["reconfig.switch"] root span *)
}

type t = {
  universe : int;
  timeout : float;
  switch_retry : float;
      (** coordinator retry-tick interval (default [timeout]) *)
  lease : float option;
      (** timed-quorum mode: replicas serve only under an unexpired
          lease; switches drain leases instead of sealing a quorum *)
  skew : float;  (** clock-skew budget added to every lease drain *)
  durability : Durable.config;
  mutable dur : unit Durable.t option;
  mutable cell : (int * bool * (int * int)) Durable.cell option;
      (** per replica: (r_epoch, sealed, state) *)
  incarnation : int array;
  mutable engine : msg Engine.t option;
  fd : msg Failure_detector.t option;
      (** per-node suspected-live views; [None] keeps the historical
          omniscient [Engine.live_set] selection *)
  routing : Client_config.routing;
  lat_ring : float array array;  (** per-peer reply-latency samples *)
  lat_len : int array;
  lat_pos : int array;
  mutable hedges : int;
  mutable configs : System.t list;  (** index = epoch *)
  mutable epoch : int;  (** latest announced epoch (global knowledge) *)
  replicas : replica array;
  ops : (int, op) Hashtbl.t;
  mutable next_op : int;
  mutable switch : switch option;
  mutable switch_gen : int;  (** generation of the next launched switch *)
  mutable epoch_switches : int;
  mutable refused_switches : int;
  mutable lease_refusals : int;
  mutable reads_ok : int;
  mutable writes_ok : int;
  mutable retries : int;
  mutable failed : int;
  mutable crash_kills : int;
  mutable stale_reads : int;
  mutable committed : (float * int) list;
  mutable history : Obs.Trace_analysis.hop list;  (** newest first *)
}

let of_config ?(config = Client_config.default) ?(with_fd = false) ?lease
    ?(skew = 0.5) ?switch_retry ~initial ~universe () =
  (* [durability] and [timeout] of the record always apply; [fd] and
     [routing] only when [with_fd] opts into the failure-detector
     layer (off by default: no Beat traffic, omniscient selection —
     bit-identical to the historical register). *)
  let durability = config.Client_config.durability in
  let timeout = config.Client_config.timeout in
  if initial.System.n > universe then
    invalid_arg "Reconfig.create: configuration exceeds universe";
  let switch_retry = Option.value switch_retry ~default:timeout in
  if switch_retry <= 0.0 then invalid_arg "Reconfig.create: switch_retry";
  (match lease with
  | Some d when d <= 0.0 -> invalid_arg "Reconfig.create: lease"
  | _ -> ());
  if skew < 0.0 then invalid_arg "Reconfig.create: skew";
  let fd =
    if with_fd then
      Some
        (Failure_detector.create
           ~period:config.Client_config.fd.Client_config.period
           ~timeout:config.Client_config.fd.Client_config.timeout
           ~mode:(Client_config.fd_mode config) ~nodes:universe ~beat:Beat ())
    else None
  in
  {
    universe;
    timeout;
    switch_retry;
    lease;
    skew;
    durability;
    dur = None;
    cell = None;
    incarnation = Array.make universe 0;
    engine = None;
    fd;
    routing = config.Client_config.routing;
    lat_ring = Array.init universe (fun _ -> Array.make 32 0.0);
    lat_len = Array.make universe 0;
    lat_pos = Array.make universe 0;
    hedges = 0;
    configs = [ initial ];
    epoch = 0;
    replicas =
      Array.init universe (fun _ ->
          {
            r_epoch = 0;
            sealed = false;
            state = (0, 0);
            (* The first lease window opens at t = 0. *)
            lease_until = (match lease with Some d -> d | None -> infinity);
          });
    ops = Hashtbl.create 32;
    next_op = 0;
    switch = None;
    switch_gen = 0;
    epoch_switches = 0;
    refused_switches = 0;
    lease_refusals = 0;
    reads_ok = 0;
    writes_ok = 0;
    retries = 0;
    failed = 0;
    crash_kills = 0;
    stale_reads = 0;
    committed = [];
    history = [];
  }

let create ?durability ?lease ?skew ?switch_retry ~initial ~universe ~timeout
    () =
  let config = Client_config.(default |> with_timeout timeout) in
  let config =
    match durability with
    | Some d -> Client_config.with_durability d config
    | None -> config
  in
  of_config ~config ?lease ?skew ?switch_retry ~initial ~universe ()

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Reconfig: bind the engine first"

let bind t engine =
  if Engine.nodes engine <> t.universe then
    invalid_arg "Reconfig.bind: engine size mismatch";
  t.engine <- Some engine;
  let dur =
    Durable.create ~obs:(Engine.obs engine) ~nodes:t.universe t.durability
  in
  t.dur <- Some dur;
  t.cell <- Some (Durable.cell dur ~name:"reconfig.replica");
  (match t.fd with
  | Some fd ->
      Failure_detector.bind fd engine;
      Failure_detector.start fd
  | None -> ());
  (* Timed mode: every replica renews its own lease on a background
     tick, well before expiry. *)
  match t.lease with
  | Some d ->
      for node = 0 to t.universe - 1 do
        Engine.set_timer engine ~background:true ~node ~delay:(d /. 3.0)
          ~tag:renew_tag
      done
  | None -> ()

let dur_exn t =
  match t.dur with
  | Some d -> d
  | None -> invalid_arg "Reconfig: bind the engine first"

let cell_exn t =
  match t.cell with
  | Some c -> c
  | None -> invalid_arg "Reconfig: bind the engine first"

let spans_exn t = Obs.spans (Engine.obs (engine_exn t))
let history t = List.rev t.history

(* Persist a replica's whole durable image: epoch, seal flag, state. *)
let persist t ~node =
  let r = t.replicas.(node) in
  Durable.set (cell_exn t) ~node
    ~now:(Engine.now (engine_exn t))
    (r.r_epoch, r.sealed, r.state)

(* Write-ahead reply: the durable image is fsynced before the message
   that makes it observable (write ack, seal ack, install ack) leaves,
   so no acknowledged transition is ever lost to an amnesiac crash. *)
let reply_after_fsync t engine ~node ~dst msg =
  let durable_at = persist t ~node in
  let now = Engine.now engine in
  if durable_at <= now then Engine.send engine ~src:node ~dst msg
  else begin
    let inc = t.incarnation.(node) in
    (* The wait for the fsync is a span of its own, child of whatever
       operation the triggering message belonged to. *)
    let parent = Engine.span_ctx engine in
    let fspan =
      if parent >= 0 then
        Span.start (spans_exn t) ~time:now ~node ~parent "reconfig.fsync"
      else -1
    in
    Engine.schedule engine ~time:durable_at (fun () ->
        let ok = t.incarnation.(node) = inc && Engine.is_live engine node in
        if fspan >= 0 then
          Span.finish (spans_exn t) ~time:durable_at
            ~status:(if ok then Span.Ok else Span.Error "crash")
            fspan;
        if ok then Engine.send engine ~src:node ~dst msg)
  end

let current_epoch t = t.epoch
let epoch_switches t = t.epoch_switches
let switch_in_flight t =
  match t.switch with Some _ -> true | None -> false
let lease_refusals t = t.lease_refusals
let refused_switches t = t.refused_switches
let reads_ok t = t.reads_ok
let writes_ok t = t.writes_ok
let retries t = t.retries
let failed t = t.failed
let client_crash_kills t = t.crash_kills
let stale_reads t = t.stale_reads
let hedges t = t.hedges
let has_fd t = Option.is_some t.fd

let fd_view t ~node =
  Option.map (fun fd -> Failure_detector.view fd ~node) t.fd

let fd_stats t ~node =
  Option.map (fun fd -> Failure_detector.stats fd ~node) t.fd

let fd_suspicion t ~node j =
  match t.fd with
  | Some fd -> Failure_detector.suspicion fd ~node j
  | None -> 0.0

let config_of_epoch t epoch =
  (* configs is newest-first. *)
  let from_newest = List.length t.configs - 1 - epoch in
  List.nth t.configs from_newest

let committed_before t time =
  List.fold_left
    (fun acc (ct, v) -> if ct <= time then max acc v else acc)
    0 t.committed

(* The set of nodes [node] believes live: its failure-detector view
   when the register carries one, the engine's omniscient live-set
   otherwise (the historical behaviour). *)
let live_view t engine ~node =
  match t.fd with
  | Some fd -> Failure_detector.view fd ~node
  | None -> Engine.live_set engine

(* Select a quorum of [system] among the members [node] believes live
   (spares beyond [system.n] idle). *)
let select_live_quorum t engine ~node (system : System.t) =
  let live = live_view t engine ~node in
  let members = Bitset.create system.System.n in
  for i = 0 to system.System.n - 1 do
    if Bitset.mem live i then Bitset.add members i
  done;
  system.System.select (Engine.rng engine) ~live:members

(* --- Client side ---------------------------------------------------- *)

(* Per-peer reply-latency ring (32 samples), only maintained when
   hedging is on: the hedge fires at the worst [hedge_quantile] of the
   quorum's members, floored by [hedge_floor]. *)
let record_latency t ~peer sample =
  if t.routing.Client_config.hedge then begin
    t.lat_ring.(peer).(t.lat_pos.(peer)) <- sample;
    t.lat_pos.(peer) <- (t.lat_pos.(peer) + 1) mod 32;
    if t.lat_len.(peer) < 32 then t.lat_len.(peer) <- t.lat_len.(peer) + 1
  end

let hedge_delay t waiting =
  let q = t.routing.Client_config.hedge_quantile in
  let worst = ref 0.0 in
  Bitset.iter
    (fun j ->
      let len = t.lat_len.(j) in
      if len > 0 then begin
        let samples = Array.sub t.lat_ring.(j) 0 len in
        Array.sort compare samples;
        let idx =
          max 0
            (min (len - 1) (int_of_float (ceil (q *. float_of_int len)) - 1))
        in
        if samples.(idx) > !worst then worst := samples.(idx)
      end)
    waiting;
  Float.max t.routing.Client_config.hedge_floor !worst

(* Select a quorum in the configuration of the client's current view
   and start (or restart) the version phase of [op].  Transient
   unavailability (no live quorum right now — e.g. churn ahead of the
   membership controller's next repair) is retried on the same backoff
   as a NACK; the per-op timer bounds the total wait. *)
let rec launch t (op : op) =
  let engine = engine_exn t in
  op.epoch <- t.epoch;
  let system = config_of_epoch t op.epoch in
  match select_live_quorum t engine ~node:op.client system with
  | None -> retry_later t op
  | Some quorum ->
      op.phase <- Version_phase;
      op.best <- (0, 0);
      op.nacked <- false;
      op.waiting_for <- Bitset.copy quorum;
      op.targets <- Bitset.copy quorum;
      op.acked <- Bitset.create system.System.n;
      op.last_send <- Engine.now engine;
      Engine.with_span_ctx engine op.span (fun () ->
          Bitset.iter
            (fun j ->
              Engine.send engine ~src:op.client ~dst:j
                (Op_req { op = op.id; epoch = op.epoch; write = None }))
            quorum);
      arm_progress_check t op;
      arm_hedge t op

(* A round of requests can be silently swallowed (message loss, a
   replica dying before replying): if the attempt armed here is still
   the current one — no reply completed the phase, no NACK scheduled a
   relaunch — give up on it and retry.  The delay clears a healthy
   round trip, so the check only fires for genuinely stuck rounds. *)
and arm_progress_check t (op : op) =
  op.attempt <- op.attempt + 1;
  let attempt = op.attempt in
  let engine = engine_exn t in
  Engine.schedule engine
    ~time:(Engine.now engine +. 4.0)
    (fun () ->
      match Hashtbl.find_opt t.ops op.id with
      | Some op' when op' == op && op.attempt = attempt && not op.nacked ->
          retry_later t op
      | Some _ | None -> ())

and retry_later t (op : op) =
  (* NACKed (sealed replica, expired lease, stale epoch) or no live
     quorum: back off and relaunch under the then-current
     configuration. *)
  if op.retries_left = 0 then begin
    Hashtbl.remove t.ops op.id;
    t.failed <- t.failed + 1;
    Span.finish (spans_exn t)
      ~time:(Engine.now (engine_exn t))
      ~status:(Span.Error "exhausted") op.span
  end
  else begin
    op.retries_left <- op.retries_left - 1;
    t.retries <- t.retries + 1;
    let engine = engine_exn t in
    Engine.schedule engine
      ~time:(Engine.now engine +. 3.0)
      (fun () -> if Hashtbl.mem t.ops op.id then launch t op)
  end

(* Hedged requests: one timer per phase attempt, armed at the worst
   per-peer latency quantile of the selected quorum.  When it fires,
   every member still unheard-from has its request duplicated to a
   distinct backup member from the client's live view; replicas are
   idempotent (reads are pure, installs take the max version) and the
   client dedups by the [acked] set, so duplicates cost messages,
   never safety.  Off by default — with [routing.hedge = false] no
   timer is ever scheduled and the schedule is bit-identical. *)
and arm_hedge t (op : op) =
  if t.routing.Client_config.hedge then begin
    let engine = engine_exn t in
    let attempt = op.attempt in
    let phase = op.phase in
    let delay = hedge_delay t op.waiting_for in
    Engine.schedule engine
      ~time:(Engine.now engine +. delay)
      (fun () ->
        match Hashtbl.find_opt t.ops op.id with
        | Some op'
          when op' == op && op.attempt = attempt && op.phase = phase
               && (not op.nacked)
               && not (Bitset.is_empty op.waiting_for) ->
            hedge_round t op
        | Some _ | None -> ())
  end

and hedge_round t (op : op) =
  let engine = engine_exn t in
  let system = config_of_epoch t op.epoch in
  let view = live_view t engine ~node:op.client in
  let payload =
    match (op.phase, op.kind) with
    | Install_phase, Write_op value -> Some (op.write_version, value)
    | _ -> None
  in
  let cursor = ref 0 in
  Bitset.iter
    (fun _straggler ->
      let found = ref false in
      while (not !found) && !cursor < system.System.n do
        let j = !cursor in
        incr cursor;
        if Bitset.mem view j && not (Bitset.mem op.targets j) then begin
          found := true;
          Bitset.add op.targets j;
          t.hedges <- t.hedges + 1;
          Engine.with_span_ctx engine op.span (fun () ->
              Engine.send engine ~src:op.client ~dst:j
                (Op_req { op = op.id; epoch = op.epoch; write = payload }))
        end
      done)
    op.waiting_for

let start t ~client kind =
  let engine = engine_exn t in
  if not (Engine.is_live engine client) then t.failed <- t.failed + 1
  else begin
    let id = t.next_op in
    t.next_op <- t.next_op + 1;
    let op =
      {
        id;
        client;
        kind;
        started = Engine.now engine;
        epoch = t.epoch;
        waiting_for = Bitset.create t.universe;
        targets = Bitset.create t.universe;
        acked = Bitset.create t.universe;
        last_send = 0.0;
        best = (0, 0);
        write_version = 0;
        phase = Version_phase;
        retries_left = 12;
        nacked = false;
        attempt = 0;
        span = -1;
      }
    in
    op.span <-
      Span.start (spans_exn t) ~time:op.started ~node:client
        (match kind with
        | Read_op -> "reconfig.read"
        | Write_op _ -> "reconfig.write");
    Hashtbl.add t.ops id op;
    launch t op;
    if Hashtbl.mem t.ops id then
      Engine.with_span_ctx engine op.span (fun () ->
          Engine.set_timer engine ~node:client ~delay:t.timeout ~tag:id)
  end

let read t ~client = start t ~client Read_op
let write t ~client ~value = start t ~client (Write_op value)

(* The register has a single logical cell; hops use key 0 and the
   version as the value observed/installed. *)
let record_hop t (op : op) ~now ~is_write version =
  t.history <-
    {
      Obs.Trace_analysis.client = op.client;
      key = 0;
      is_write;
      version;
      started = op.started;
      finished = now;
      span = op.span;
    }
    :: t.history

let finish_read t (op : op) =
  Hashtbl.remove t.ops op.id;
  t.reads_ok <- t.reads_ok + 1;
  let now = Engine.now (engine_exn t) in
  Span.finish (spans_exn t) ~time:now op.span;
  record_hop t op ~now ~is_write:false (fst op.best);
  if fst op.best < committed_before t op.started then
    t.stale_reads <- t.stale_reads + 1

let begin_install t (op : op) =
  let engine = engine_exn t in
  match op.kind with
  | Read_op -> finish_read t op
  | Write_op value ->
      let system = config_of_epoch t op.epoch in
      (match select_live_quorum t engine ~node:op.client system with
      | None -> retry_later t op
      | Some wq ->
          let version = fst op.best + 1 in
          op.write_version <- version;
          op.phase <- Install_phase;
          op.waiting_for <- Bitset.copy wq;
          op.targets <- Bitset.copy wq;
          op.acked <- Bitset.create system.System.n;
          op.last_send <- Engine.now engine;
          Engine.with_span_ctx engine op.span (fun () ->
              Bitset.iter
                (fun j ->
                  Engine.send engine ~src:op.client ~dst:j
                    (Op_req
                       {
                         op = op.id;
                         epoch = op.epoch;
                         write = Some (version, value);
                       }))
                wq);
          arm_progress_check t op;
          arm_hedge t op)

(* --- Reconfiguration -------------------------------------------------- *)

let arm_switch_timer t engine ~coordinator =
  Engine.set_timer engine ~background:true ~node:coordinator
    ~delay:t.switch_retry ~tag:switch_tag

let arm_unseal_timer t engine ~node =
  (* Cadence only — the unseal tick re-arms while the sealing switch
     is alive, so safety never depends on this delay.  Tracking the
     coordinator's retry tick keeps orphaned seals (a crashed
     coordinator cannot re-announce) from refusing service long after
     their switch died. *)
  Engine.set_timer engine ~background:true ~node
    ~delay:(2.0 *. t.switch_retry) ~tag:unseal_tag

let abandon_switch ?(reason = "abandoned") t engine sw =
  (* Give up: drop the switch and re-announce the old epoch so sealed
     replicas reopen for service. *)
  t.switch <- None;
  t.refused_switches <- t.refused_switches + 1;
  Span.finish (spans_exn t) ~time:(Engine.now engine)
    ~status:(Span.Error reason) sw.sw_span;
  for j = 0 to t.universe - 1 do
    Engine.send engine ~src:sw.coordinator ~dst:j
      (Announce { epoch = t.epoch })
  done

let commit_switch t sw =
  let engine = engine_exn t in
  t.configs <- sw.next_system :: t.configs;
  t.epoch <- sw.next_epoch;
  t.epoch_switches <- t.epoch_switches + 1;
  t.switch <- None;
  Span.finish (spans_exn t) ~time:(Engine.now engine) sw.sw_span;
  for j = 0 to t.universe - 1 do
    Engine.send engine ~src:sw.coordinator ~dst:j
      (Announce { epoch = sw.next_epoch })
  done

(* Per-phase retry budget: [phase_retries] idempotent re-send rounds,
   [switch_retry] apart, before the switch is abandoned. *)
let phase_retries = 5

(* Seal round done (a structural quorum of the old system reported, or
   the timed drain expired with at least one report): install the
   freshest sealed state on the new system.  The install is broadcast
   to every new member and commits as soon as the acked set contains a
   full new-system quorum, so individual stragglers never stall it. *)
let begin_switch_install t sw =
  let engine = engine_exn t in
  sw.installing <- true;
  sw.sw_retries <- phase_retries;
  let version, value = sw.seal_best in
  for j = 0 to sw.next_system.System.n - 1 do
    Engine.send engine ~src:sw.coordinator ~dst:j
      (Install_req { gen = sw.gen; epoch = sw.next_epoch; version; value })
  done

let resend_unacked t engine sw =
  if sw.installing then begin
    let version, value = sw.seal_best in
    for j = 0 to sw.next_system.System.n - 1 do
      if not (Bitset.mem sw.install_acked j) then
        Engine.send engine ~src:sw.coordinator ~dst:j
          (Install_req
             { gen = sw.gen; epoch = sw.next_epoch; version; value })
    done
  end
  else
    let old_system = config_of_epoch t t.epoch in
    for j = 0 to old_system.System.n - 1 do
      if not (Bitset.mem sw.seal_acked j) then
        Engine.send engine ~src:sw.coordinator ~dst:j
          (Seal_req { gen = sw.gen; epoch = t.epoch })
    done

(* Even if every currently-live old member acked on top of the acks
   already gathered, would the seal still lack a structural quorum?
   If so, waiting the budget out cannot help (only a recovery could),
   and a timed switch may fall back to temporal overlap right away. *)
let quorum_unreachable t engine sw =
  let old_system = config_of_epoch t t.epoch in
  let live = live_view t engine ~node:sw.coordinator in
  let reachable = Bitset.copy sw.seal_acked in
  for j = 0 to old_system.System.n - 1 do
    if Bitset.mem live j then Bitset.add reachable j
  done;
  not (old_system.System.avail reachable)

(* The coordinator's retry tick: seal and install handlers are
   idempotent (re-sealing re-acks, re-installing always acks), so
   members that were down or cut off when the first round went out are
   simply asked again once they return — each phase completes on {e
   any} quorum's worth of acks, so the tick only has to reach the
   stragglers.  A bounded number of rounds per phase keeps a switch
   from outliving a permanently lost configuration; a timed switch
   whose seal budget runs out with at least one report installs
   best-effort (temporal overlap standing in for the structural
   quorum — see the interface caveat). *)
let switch_tick t ~node =
  match t.switch with
  | Some sw when sw.coordinator = node ->
      let engine = engine_exn t in
      if sw.timed && sw.draining then
        (* The drain deadline drives the next step; stay armed. *)
        arm_switch_timer t engine ~coordinator:node
      else if
        sw.sw_retries = 0
        || (sw.timed && (not sw.installing) && quorum_unreachable t engine sw)
      then
        if sw.timed && (not sw.installing) && sw.seal_acks > 0 then begin
          begin_switch_install t sw;
          arm_switch_timer t engine ~coordinator:node
        end
        else if sw.sw_retries = 0 then abandon_switch t engine sw
        else begin
          (* Timed, no reports yet, old quorums unreachable: keep
             re-asking — a recovery may still bring a reporter back. *)
          sw.sw_retries <- sw.sw_retries - 1;
          resend_unacked t engine sw;
          arm_switch_timer t engine ~coordinator:node
        end
      else begin
        sw.sw_retries <- sw.sw_retries - 1;
        resend_unacked t engine sw;
        arm_switch_timer t engine ~coordinator:node
      end
  | Some _ | None -> ()

(* A sealed replica's self-heal tick.  Sealing must not outlive the
   switch that asked for it (a dead coordinator would otherwise leave
   the replica refusing service forever) — but unsealing while that
   switch is still in flight could let an old-epoch write slip past
   the seal quorum and be lost by the install.  The tick therefore
   re-arms while the sealing switch is alive (global knowledge
   standing in for a coordinator lease, like [t.epoch]) and unseals
   only once it is gone. *)
(* Timed mode: a replica's lease-renewal tick.  Renewal is withheld
   while a switch is in flight (global knowledge standing in for the
   coordinator's renewal grant, like [t.epoch]), so the leases of every
   replica the seal round cannot reach drain before the timed install
   — renew-before-expiry in calm times, conservative refusal during a
   switch. *)
let renew_tick t ~node =
  match t.lease with
  | None -> ()
  | Some d ->
      let engine = engine_exn t in
      let r = t.replicas.(node) in
      (match t.switch with
      | Some _ -> ()  (* withheld: let the lease drain *)
      | None -> r.lease_until <- Engine.now engine +. d);
      Engine.set_timer engine ~background:true ~node ~delay:(d /. 3.0)
        ~tag:renew_tag

let unseal_tick t ~node =
  let r = t.replicas.(node) in
  if r.sealed then
    match t.switch with
    | Some sw when sw.next_epoch = r.r_epoch + 1 ->
        arm_unseal_timer t (engine_exn t) ~node
    | Some _ | None ->
        r.sealed <- false;
        ignore (persist t ~node)

let seal_all t engine sw =
  let old_system = config_of_epoch t t.epoch in
  for j = 0 to old_system.System.n - 1 do
    Engine.send engine ~src:sw.coordinator ~dst:j
      (Seal_req { gen = sw.gen; epoch = t.epoch })
  done

(* The timed drain deadline: every lease granted before the switch
   started has expired (plus the skew budget) and renewals were
   withheld throughout, so no old-epoch quorum can still commit — the
   old members served right up to their individual expiries and now
   refuse.  Only at this point are they asked to seal and report:
   every report reflects the member's final old-epoch state, including
   writes committed during the drain.  The install fires as soon as a
   structural quorum of reports is in (then freshness is guaranteed by
   intersection), or best-effort on budget exhaustion — refusing
   conservatively when {e nobody} reported (a blind install could lose
   every committed write; that abandon is the "drain-empty" status). *)
let drain_deadline t sw =
  match t.switch with
  | Some sw' when sw' == sw && not sw.installing ->
      sw.draining <- false;
      sw.sw_retries <- phase_retries;
      seal_all t (engine_exn t) sw
  | Some _ | None -> ()

let launch_switch t ~coordinator ~next_system ~timed =
  let engine = engine_exn t in
  let now = Engine.now engine in
  t.switch_gen <- t.switch_gen + 1;
  let sw =
    {
      gen = t.switch_gen;
      coordinator;
      next_epoch = t.epoch + 1;
      next_system;
      timed;
      seal_acked = Bitset.create t.universe;
      seal_acks = 0;
      seal_best = (0, 0);
      install_acked = Bitset.create t.universe;
      installing = false;
      draining = timed;
      sw_retries = phase_retries;
      sw_span =
        Span.start (spans_exn t) ~time:now ~node:coordinator
          "reconfig.switch";
    }
  in
  t.switch <- Some sw;
  if timed then (
    (* No seals yet: members keep serving the old epoch until their
       leases expire (renewals are withheld from now on). *)
    match t.lease with
    | Some d ->
        Engine.schedule engine ~time:(now +. d +. t.skew) (fun () ->
            drain_deadline t sw)
    | None -> assert false)
  else seal_all t engine sw;
  arm_switch_timer t engine ~coordinator

let reconfigure t ~coordinator next_system =
  if next_system.System.n > t.universe then
    invalid_arg "Reconfig.reconfigure: configuration exceeds universe";
  match t.switch with
  | Some _ -> t.refused_switches <- t.refused_switches + 1
  | None ->
      launch_switch t ~coordinator ~next_system
        ~timed:(Option.is_some t.lease)

(* Any old-system quorum's worth of seal reports suffices: committed
   old-epoch writes live on full quorums, and every quorum intersects
   the reported one, so the max over reported versions is fresh.
   (Sealing everyone costs no extra availability — a sealed quorum
   already intersects, and thereby blocks, every other quorum.) *)
let on_seal_ack t sw ~src ~version ~value =
  if (not sw.installing) && not (Bitset.mem sw.seal_acked src) then begin
    Bitset.add sw.seal_acked src;
    sw.seal_acks <- sw.seal_acks + 1;
    if version > fst sw.seal_best then sw.seal_best <- (version, value);
    if (config_of_epoch t t.epoch).System.avail sw.seal_acked then
      begin_switch_install t sw
  end

let on_install_ack t sw ~src =
  if sw.installing && not (Bitset.mem sw.install_acked src) then begin
    Bitset.add sw.install_acked src;
    if sw.next_system.System.avail sw.install_acked then commit_switch t sw
  end

(* --- Handlers --------------------------------------------------------- *)

let handlers t : msg Engine.handlers =
  {
    on_message =
      (fun engine ~node ~src msg ->
        match msg with
        | Op_req { op; epoch; write } ->
            let r = t.replicas.(node) in
            (* A client's epoch is always a committed one (clients tag
               ops with the announced epoch), so a replica behind it
               simply missed the announce: adopt and serve.  Unsealing
               is safe for the same reason — a newer committed epoch
               means the switch that sealed this replica already
               finished.  Per-member catch-up staleness is covered by
               intersection: reads take the max over a full quorum,
               which meets the install quorum. *)
            if epoch > r.r_epoch then begin
              r.r_epoch <- epoch;
              r.sealed <- false
            end;
            let lease_expired =
              match t.lease with
              | None -> false
              | Some _ -> Engine.now engine > r.lease_until
            in
            if epoch <> r.r_epoch || r.sealed || lease_expired then begin
              if lease_expired && epoch = r.r_epoch && not r.sealed then
                t.lease_refusals <- t.lease_refusals + 1;
              Engine.send engine ~src:node ~dst:src
                (Op_nack { op; epoch = r.r_epoch })
            end
            else begin
              match write with
              | Some (version, value) ->
                  if version > fst r.state then r.state <- (version, value);
                  let version, value = r.state in
                  reply_after_fsync t engine ~node ~dst:src
                    (Op_rep { op; version; value })
              | None ->
                  let version, value = r.state in
                  Engine.send engine ~src:node ~dst:src
                    (Op_rep { op; version; value })
            end
        | Op_rep { op = op_id; version; value } ->
            (match Hashtbl.find_opt t.ops op_id with
            | None -> ()
            | Some op ->
                if Bitset.mem op.targets src && not (Bitset.mem op.acked src)
                then begin
                  record_latency t ~peer:src
                    (Engine.now engine -. op.last_send);
                  Bitset.add op.acked src;
                  if Bitset.mem op.waiting_for src then
                    Bitset.remove op.waiting_for src;
                  if version > fst op.best then op.best <- (version, value);
                  (* With hedging the phase completes on {e any} full
                     quorum's worth of acks (quorum intersection makes
                     the acked set as good as the selected one); off,
                     completion is exactly "every selected member
                     acked" — the historical rule. *)
                  let complete =
                    if t.routing.Client_config.hedge then
                      (config_of_epoch t op.epoch).System.avail op.acked
                    else Bitset.is_empty op.waiting_for
                  in
                  if complete && not op.nacked then
                    match op.phase with
                    | Version_phase -> begin_install t op
                    | Install_phase ->
                        Hashtbl.remove t.ops op.id;
                        t.writes_ok <- t.writes_ok + 1;
                        let now = Engine.now engine in
                        Span.finish (spans_exn t) ~time:now op.span;
                        record_hop t op ~now ~is_write:true op.write_version;
                        t.committed <- (now, op.write_version) :: t.committed
                end)
        | Op_nack { op = op_id; epoch = _ } ->
            (match Hashtbl.find_opt t.ops op_id with
            | None -> ()
            | Some op ->
                if not op.nacked then begin
                  op.nacked <- true;
                  retry_later t op
                end)
        | Seal_req { gen; epoch } ->
            (* A seal for a {e newer} epoch means this replica missed
               announces while down: the coordinator only seals at the
               committed global epoch, so adopting it is processing
               the missed Announce.  Safe to count: the seal quorum
               still intersects every old-epoch write quorum in a
               member that served the freshest write, and the max over
               the quorum's reported versions includes it.  Seals for
               {e older} epochs (a stale coordinator) stay ignored. *)
            let r = t.replicas.(node) in
            if epoch >= r.r_epoch then begin
              r.r_epoch <- epoch;
              r.sealed <- true;
              let version, value = r.state in
              reply_after_fsync t engine ~node ~dst:src
                (Seal_ack { gen; epoch; version; value });
              arm_unseal_timer t engine ~node
            end
        | Seal_ack { gen; epoch = _; version; value } ->
            (* Acks name the round that asked for them: a dead
               switch's straggler reports the state it had {e then},
               which its same-epoch successor must not count. *)
            (match t.switch with
            | Some sw when sw.gen = gen -> on_seal_ack t sw ~src ~version ~value
            | Some _ | None -> ())
        | Install_req { gen; epoch = _; version; value } ->
            (* State transfer only: the new epoch is adopted at the
               Announce, never here.  An install that bumped epochs
               and then had its switch die would wedge the register —
               replicas ahead of the committed epoch refuse every
               later seal, and no switch can ever gather reports
               again. *)
            let r = t.replicas.(node) in
            if version > fst r.state then r.state <- (version, value);
            reply_after_fsync t engine ~node ~dst:src (Install_ack { gen })
        | Install_ack { gen } ->
            (match t.switch with
            | Some sw when sw.gen = gen -> on_install_ack t sw ~src
            | Some _ | None -> ())
        | Announce { epoch } ->
            let r = t.replicas.(node) in
            if epoch >= r.r_epoch then begin
              r.r_epoch <- epoch;
              r.sealed <- false;
              (* Fire-and-forget: nothing observes this transition
                 before it settles, so losing it only means re-learning
                 the epoch on the next announce or Epoch_rep. *)
              ignore (persist t ~node)
            end
        | Epoch_req ->
            Engine.send engine ~src:node ~dst:src
              (Epoch_rep { epoch = t.replicas.(node).r_epoch })
        | Epoch_rep { epoch } ->
            (* Adopt strictly newer epochs only: an equal-epoch reply
               must not unseal a replica whose seal may be counted by
               an in-flight switch. *)
            let r = t.replicas.(node) in
            if epoch > r.r_epoch then begin
              r.r_epoch <- epoch;
              r.sealed <- false;
              ignore (persist t ~node)
            end
        | Beat -> (
            match t.fd with
            | Some fd -> Failure_detector.heard fd ~node ~from:src
            | None -> ()));
    on_timer =
      (fun engine ~node ~tag ->
        if
          match t.fd with
          | Some fd -> Failure_detector.on_timer fd ~node ~tag
          | None -> false
        then ()
        else if tag = switch_tag then switch_tick t ~node
        else if tag = unseal_tag then unseal_tick t ~node
        else if tag = renew_tag then renew_tick t ~node
        else
          match Hashtbl.find_opt t.ops tag with
          | Some op ->
              Hashtbl.remove t.ops op.id;
              t.failed <- t.failed + 1;
              Span.finish (spans_exn t) ~time:(Engine.now engine)
                ~status:(Span.Error "timeout") op.span
          | None -> ());
    on_crash =
      (fun engine ~node ->
        t.incarnation.(node) <- t.incarnation.(node) + 1;
        Durable.crash (dur_exn t) ~node ~now:(Engine.now engine);
        (* A crashed coordinator takes its switch down with it; sealed
           replicas self-heal through their unseal tick. *)
        (match t.switch with
        | Some sw when sw.coordinator = node ->
            t.switch <- None;
            t.refused_switches <- t.refused_switches + 1;
            Span.finish (spans_exn t)
              ~time:(Engine.now engine)
              ~status:(Span.Error "crash") sw.sw_span
        | Some _ | None -> ());
        let doomed =
          Hashtbl.fold
            (fun _ op acc -> if op.client = node then op :: acc else acc)
            t.ops []
        in
        List.iter
          (fun op ->
            Hashtbl.remove t.ops op.id;
            t.failed <- t.failed + 1;
            t.crash_kills <- t.crash_kills + 1;
            Span.finish (spans_exn t)
              ~time:(Engine.now engine)
              ~status:(Span.Error "crash") op.span)
          doomed);
    on_recover =
      (fun engine ~node ~amnesia ->
        (match t.fd with
        | Some fd -> Failure_detector.on_recover fd ~node
        | None -> ());
        if amnesia then begin
          (* Restore the durable image and re-learn the current epoch
             from peers over the announce path. *)
          let r = t.replicas.(node) in
          let now = Engine.now engine in
          (match Durable.durable_value (cell_exn t) ~node ~now with
          | Some (epoch, sealed, state) ->
              r.r_epoch <- epoch;
              r.sealed <- sealed;
              r.state <- state
          | None ->
              r.r_epoch <- 0;
              r.sealed <- false;
              r.state <- (0, 0));
          for j = 0 to t.universe - 1 do
            if j <> node then Engine.send engine ~src:node ~dst:j Epoch_req
          done
        end
        else
          (* Memory intact, but announces broadcast while the node was
             down are gone: ask peers for the current epoch, or every
             op served here NACKs on epoch mismatch until the next
             switch happens to announce. *)
          for j = 0 to t.universe - 1 do
            if j <> node then
              Engine.send ~background:true engine ~src:node ~dst:j Epoch_req
          done;
        (* Timers died with the crash: a still-sealed replica needs its
           self-heal tick back, and a timed replica its renewal tick.
           The recovered node's lease restarts expired — it refuses
           service until the next renewal grant, which is withheld
           while any switch is in flight. *)
        if t.replicas.(node).sealed then arm_unseal_timer t engine ~node;
        match t.lease with
        | Some d ->
            t.replicas.(node).lease_until <- Engine.now engine;
            Engine.set_timer engine ~background:true ~node ~delay:(d /. 3.0)
              ~tag:renew_tag
        | None -> ());
  }
