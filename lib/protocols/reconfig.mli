(** Online reconfiguration of the quorum system — the paper's section 5
    "introducing new elements" turned into a protocol.

    The h-triang growth rules produce a {e new} quorum system over a
    superset of the old universe (fresh processes get fresh ids); this
    module switches a replicated register from one configuration to the
    next without losing committed writes:

    + the coordinator {e seals} the old epoch on a full old-system
      quorum — sealed replicas stop serving the old epoch (clients get
      a NACK and retry) and report their (version, value);
    + the freshest state (the seal quorum intersects every old write
      quorum, so it contains the latest committed version) is
      {e installed} on a new-system quorum;
    + the new epoch is {e announced} to everyone; replicas adopt it and
      resume service.

    Clients tag operations with their epoch; replicas NACK mismatched
    epochs and clients retry under the announced configuration.  The
    consistency monitor checks that no read — before, during or after
    any number of reconfigurations — misses a write completed before it
    started.

    {2 Crash recovery}

    Each replica's (epoch, seal flag, state) image lives in a
    {!Sim.Durable} cell, fsynced {e before} the reply that makes a
    transition observable (write reply, seal ack, install ack) leaves
    — so an amnesiac recovery (see {!Sim.Engine.recover_at}) restores
    everything any peer could have counted on, and then re-learns the
    current epoch by asking peers over the announce path.

    A switch survives restarts of its participants: the coordinator
    re-sends seal / install requests (both handlers are idempotent) on
    a retry tick, bounded before the switch is abandoned with a
    re-announce of the old epoch.  A coordinator crash drops its
    switch; replicas it sealed reopen through a self-heal tick that
    fires only once no switch referencing their seal is in flight, so
    an early unseal can never leak an old-epoch write past a counted
    seal. *)

type t
type msg

val create :
  ?durability:Sim.Durable.config ->
  initial:Quorum.System.t ->
  universe:int ->
  timeout:float ->
  unit ->
  t
(** [universe] is the engine size and must accommodate every future
    configuration ([initial.n <= universe]); processes beyond the
    current configuration's [n] are spares.  [durability] (default
    {!Sim.Durable.instant}) configures the replicas' durable store;
    a non-zero fsync latency delays write / seal / install acks. *)

val handlers : t -> msg Sim.Engine.handlers
val bind : t -> msg Sim.Engine.t -> unit

val read : t -> client:int -> unit
val write : t -> client:int -> value:int -> unit

val reconfigure : t -> coordinator:int -> Quorum.System.t -> unit
(** Start the seal / install / announce sequence from [coordinator],
    switching to the given system ([n <= universe]).  Concurrent
    reconfigurations are refused (counted). *)

val current_epoch : t -> int
val epoch_switches : t -> int
val reads_ok : t -> int
val writes_ok : t -> int
val retries : t -> int
(** Operations NACKed (sealed or stale epoch) and reissued. *)

val failed : t -> int
(** Operations abandoned after exhausting retries or timing out. *)

val stale_reads : t -> int
(** Must be 0: reads never miss writes committed before they started,
    across reconfigurations. *)

val history : t -> Obs.Trace_analysis.hop list
(** Completed client operations in completion order, ready for
    {!Obs.Trace_analysis.audit_history}.  The register is a single
    logical cell, so every hop uses key [0]; reads carry the version
    they observed, writes the version they installed, and each hop
    names the operation's root span (["reconfig.read"] /
    ["reconfig.write"], with ["reconfig.fsync"] children for
    write-ahead waits — see {!Obs.Span}). *)
