(** Online reconfiguration of the quorum system — the paper's section 5
    "introducing new elements" turned into a protocol.

    The h-triang growth rules produce a {e new} quorum system over a
    superset of the old universe (fresh processes get fresh ids); this
    module switches a replicated register from one configuration to the
    next without losing committed writes:

    + the coordinator {e seals} the old epoch: every old member is
      asked to stop serving it (clients get a NACK and retry) and
      report its (version, value).  The phase completes as soon as the
      reports cover {e any} full old-system quorum — that quorum
      intersects every old write quorum, so the freshest report is the
      latest committed version.  (Sealing everyone instead of one
      selected quorum costs no availability — a sealed quorum already
      intersects, and thereby blocks, every other quorum — and lets
      the switch route around stragglers instead of waiting on them.)
    + the freshest reported state is {e installed} on every new
      member, committing once the acks cover a new-system quorum;
    + the new epoch is {e announced} to everyone; replicas adopt it and
      resume service.

    Clients tag operations with their epoch; replicas NACK mismatched
    epochs and clients retry under the announced configuration.  The
    consistency monitor checks that no read — before, during or after
    any number of reconfigurations — misses a write completed before it
    started.

    {2 Crash recovery}

    Each replica's (epoch, seal flag, state) image lives in a
    {!Sim.Durable} cell, fsynced {e before} the reply that makes a
    transition observable (write reply, seal ack, install ack) leaves
    — so an amnesiac recovery (see {!Sim.Engine.recover_at}) restores
    everything any peer could have counted on, and then re-learns the
    current epoch by asking peers over the announce path.

    A switch survives restarts of its participants: the coordinator
    re-sends seal / install requests (both handlers are idempotent) on
    a retry tick, bounded before the switch is abandoned with a
    re-announce of the old epoch.  A coordinator crash drops its
    switch; replicas it sealed reopen through a self-heal tick that
    fires only once no switch referencing their seal is in flight, so
    an early unseal can never leak an old-epoch write past a counted
    seal.

    {2 Timed-quorum mode}

    With [?lease] set, the register runs as a {e timed} quorum system
    (after Gramoli–Raynal's timed quorums for large-scale dynamic
    environments): every replica serves only under an unexpired
    validity window of [lease] time units, renewed well before expiry
    by a background tick.  A reconfiguration then needs {e no}
    structural quorum of the old system: renewal grants are withheld
    from the moment the switch launches, while members keep serving
    the old epoch until their individual leases expire — the switch
    drains the old configuration instead of sealing it.  After
    [lease + skew] every lease granted before the switch started has
    expired — no old-epoch quorum can still commit — and only then
    are the old members asked to seal and report, so each report
    reflects its member's final state including writes committed
    during the drain.  The install fires once a structural quorum of
    reports is in (freshness then guaranteed by intersection), or
    best-effort when the retry budget runs out with at least one
    report; a drain that gathered {e no} reports aborts instead of
    installing blind (conservative refusal on clock-budget
    exhaustion).

    {b Safety caveat}: timed overlap is {e temporal}, not structural.
    A committed write survives the switch provided some member of its
    write quorum reports during the drain window — guaranteed when
    per-node downtime stays below the drain length, but {e not} by
    quorum intersection alone.  The chaos/bench churn runs pin seeds
    and verify 0 stale reads under this assumption; see
    EXPERIMENTS.md.

    {2 Observability}

    Every attempted switch is covered by a ["reconfig.switch"] root
    span on the coordinator (status [Ok] on commit, [Error] on
    abandon / crash), so reconfiguration downtime is recoverable from
    the span collector via {!Obs.Trace_analysis.span_windows}. *)

type t
type msg

val of_config :
  ?config:Client_config.t ->
  ?with_fd:bool ->
  ?lease:float ->
  ?skew:float ->
  ?switch_retry:float ->
  initial:Quorum.System.t ->
  universe:int ->
  unit ->
  t
(** The primary constructor.  Of the {!Client_config.t} record
    [durability] and [timeout] always apply; [fd] and [routing] only
    with [with_fd] (below) — the register has no rpc layer of its own.

    [with_fd] (default [false]) attaches a {!Sim.Failure_detector}:
    heartbeats ride the register's wire type as background [Beat]
    traffic, quorum selection and the coordinator's reachability check
    use the {e selecting node's} suspected-live view instead of the
    engine's omniscient live-set, and [config.routing.hedge] enables
    hedged client requests (stragglers duplicated to a distinct backup
    member after an adaptive per-peer latency quantile, deduped by op
    id; completion then needs any full quorum's worth of acks — safe
    by intersection).  Off, no Beat traffic exists and the register is
    bit-identical to the historical omniscient one.

    [universe] is the engine size and must accommodate every future
    configuration ([initial.n <= universe]); processes beyond the
    current configuration's [n] are spares.  [durability] (default
    {!Sim.Durable.instant}) configures the replicas' durable store;
    a non-zero fsync latency delays write / seal / install acks.

    [lease] switches the register into timed-quorum mode (see above):
    replicas serve only under a validity window of [lease] time units
    and reconfigurations drain leases instead of sealing a structural
    quorum.  [skew] (default 0.5) is the clock-uncertainty margin
    added to the drain; both must be positive.

    [switch_retry] (default [timeout]) is the coordinator's retry-tick
    interval: each tick re-sends the current phase's request to the
    members that have not acked yet (a bounded number of rounds per
    phase), so a participant dying mid-switch is routed around instead
    of stalling the switch.  Smaller values make switches converge
    faster under churn at the cost of extra maintenance traffic. *)

val create :
  ?durability:Sim.Durable.config ->
  ?lease:float ->
  ?skew:float ->
  ?switch_retry:float ->
  initial:Quorum.System.t ->
  universe:int ->
  timeout:float ->
  unit ->
  t
(** Compatibility shim over {!of_config}: packs [durability] and
    [timeout] into a {!Client_config.t}.  New code should build the
    record instead. *)

val handlers : t -> msg Sim.Engine.handlers
val bind : t -> msg Sim.Engine.t -> unit

val read : t -> client:int -> unit
val write : t -> client:int -> value:int -> unit

val reconfigure : t -> coordinator:int -> Quorum.System.t -> unit
(** Start the seal / install / announce sequence from [coordinator],
    switching to the given system ([n <= universe]).  Concurrent
    reconfigurations are refused (counted). *)

val current_epoch : t -> int
val epoch_switches : t -> int

val switch_in_flight : t -> bool
(** A reconfiguration is currently sealing / draining / installing. *)

val refused_switches : t -> int
(** Reconfigurations refused because one was already in flight. *)

val lease_refusals : t -> int
(** Timed mode only: operations NACKed solely because the replica's
    validity window had expired (conservative refusal on clock-budget
    exhaustion); 0 in structural mode. *)

val reads_ok : t -> int
val writes_ok : t -> int
val retries : t -> int
(** Operations NACKed (sealed or stale epoch) and reissued. *)

val failed : t -> int
(** Operations abandoned after exhausting retries or timing out,
    including operations killed by their own client crashing. *)

val client_crash_kills : t -> int
(** The subset of [failed] whose client crashed mid-operation — a
    client-side death, not a service refusal; availability accounting
    typically excludes these from the denominator. *)

val stale_reads : t -> int
(** Must be 0: reads never miss writes committed before they started,
    across reconfigurations. *)

val hedges : t -> int
(** Hedge requests sent to backup members ([with_fd] +
    [routing.hedge] only; otherwise 0). *)

val has_fd : t -> bool
(** Whether the register carries a failure detector ([with_fd]). *)

val fd_view : t -> node:int -> Quorum.Bitset.t option
(** [node]'s suspected-live view, [None] without [with_fd].  This is
    the view {!Membership} consumes in failure-detector-driven mode. *)

val fd_stats : t -> node:int -> Sim.Failure_detector.stats option
(** [node]'s detection-accuracy totals against the engine's oracle
    (see {!Sim.Failure_detector.stats}), [None] without [with_fd]. *)

val fd_suspicion : t -> node:int -> int -> float
(** Graded suspicion of [j] as seen by [node]; [0.0] without
    [with_fd]. *)

val history : t -> Obs.Trace_analysis.hop list
(** Completed client operations in completion order, ready for
    {!Obs.Trace_analysis.audit_history}.  The register is a single
    logical cell, so every hop uses key [0]; reads carry the version
    they observed, writes the version they installed, and each hop
    names the operation's root span (["reconfig.read"] /
    ["reconfig.write"], with ["reconfig.fsync"] children for
    write-ahead waits — see {!Obs.Span}). *)
