module System = Quorum.System

type family = Majority | Htriang | Hgrid

type shard = {
  members : int array;
  read_sys : System.t;
  write_sys : System.t;
}

type t = {
  universe : int;
  family : family;
  shards : shard array;
  node_shard : int array;  (** node -> shard index, -1 for spares *)
}

let family_label = function
  | Majority -> "majority"
  | Htriang -> "h-triang"
  | Hgrid -> "h-grid"

(* Largest triangle row count fitting m processes: r(r+1)/2 <= m. *)
let tri_rows m =
  let rec go r = if (r + 1) * (r + 2) / 2 <= m then go (r + 1) else r in
  go 1

(* Near-square grid dimensions using at most m processes. *)
let grid_dims m =
  let rows = max 1 (int_of_float (sqrt (float_of_int m))) in
  let cols = max 1 (m / rows) in
  (rows, cols)

(* Build one shard's quorum systems over its block of the universe.
   Spare block members beyond the construction's footprint idle — they
   appear in no quorum, exactly like Membership's placement spares. *)
let build_shard family ~universe ~index (block : int array) =
  let m = Array.length block in
  let embed ?name used sys =
    let place = Array.sub block 0 used in
    let name =
      match name with
      | Some n -> Printf.sprintf "shard%d:%s" index n
      | None -> Printf.sprintf "shard%d:%s" index sys.System.name
    in
    System.embed ~name ~universe ~place sys
  in
  match family with
  | Majority ->
      let sys = embed m (Systems.Majority.make m) in
      ({ members = block; read_sys = sys; write_sys = sys }, m)
  | Htriang ->
      let rows = tri_rows m in
      let tri = Core.Htriang.standard ~rows () in
      let used = tri.Core.Htriang.n in
      let sys = embed used (Core.Htriang.system tri) in
      ({ members = block; read_sys = sys; write_sys = sys }, used)
  | Hgrid ->
      let rows, cols = grid_dims m in
      let grid = Core.Hgrid.auto_2x2 ~rows ~cols () in
      let used = grid.Core.Hgrid.n in
      ( {
          members = block;
          read_sys = embed used (Core.Hgrid.read_system grid);
          write_sys = embed used (Core.Hgrid.write_system grid);
        },
        used )

let create ?(family = Hgrid) ~universe ~shards () =
  if universe < 1 then Error "Shard_router.create: universe must be >= 1"
  else if shards < 1 then Error "Shard_router.create: shards must be >= 1"
  else if shards > universe then
    Error
      (Printf.sprintf
         "Shard_router.create: %d shards need at least %d processes (have %d)"
         shards shards universe)
  else begin
    (* Contiguous near-equal blocks: the first [universe mod shards]
       blocks get one extra process. *)
    let base = universe / shards and extra = universe mod shards in
    let node_shard = Array.make universe (-1) in
    let next = ref 0 in
    let blocks =
      Array.init shards (fun i ->
          let size = base + if i < extra then 1 else 0 in
          let block = Array.init size (fun j -> !next + j) in
          next := !next + size;
          block)
    in
    let built =
      Array.mapi
        (fun i block ->
          let shard, used = build_shard family ~universe ~index:i block in
          (* Spares (block members beyond the construction's footprint)
             stay at -1 so rejoin knows they hold no shard state. *)
          Array.iteri (fun j p -> if j < used then node_shard.(p) <- i) block;
          shard)
        blocks
    in
    Ok { universe; family; shards = built; node_shard }
  end

let universe t = t.universe
let family t = t.family
let shard_count t = Array.length t.shards

let shard_of_key t ~key =
  if key < 0 then invalid_arg "Shard_router.shard_of_key: key";
  key mod Array.length t.shards

let read_system t ~key = t.shards.(shard_of_key t ~key).read_sys
let write_system t ~key = t.shards.(shard_of_key t ~key).write_sys

let shard_read_system t ~shard = t.shards.(shard).read_sys
let shard_write_system t ~shard = t.shards.(shard).write_sys
let members t ~shard = Array.copy t.shards.(shard).members

let shard_of_node t ~node =
  if node < 0 || node >= t.universe then
    invalid_arg "Shard_router.shard_of_node: node";
  if t.node_shard.(node) < 0 then None else Some t.node_shard.(node)

let describe t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%d-way %s sharding over %d processes\n"
       (Array.length t.shards) (family_label t.family) t.universe);
  Array.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf "  shard %d: nodes [%s]  read %s  write %s\n" i
           (String.concat ","
              (List.map string_of_int (Array.to_list s.members)))
           s.read_sys.System.name s.write_sys.System.name))
    t.shards;
  Buffer.contents b
