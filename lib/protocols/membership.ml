open Quorum
module Htriang = Core.Htriang

type t = {
  reconfig : Reconfig.t;
  universe : int;
  margin : int;
  mutable tri : Htriang.t;
  mutable place : int array;
  mutable proposed : (int * Htriang.t * int array) option;
      (* (epoch expected once committed, triangle, placement) *)
  mutable proposals : int;
  mutable grows : int;
  mutable shrinks : int;
  mutable replacements : int;
  mutable skipped : int;
}

(* The adopted (triangle, placement) as a system over the whole
   universe: logical element [l] lives on process [place.(l)], so
   availability / selection translate the physical live set into a
   logical one, run the triangle's structural strategy, and map the
   chosen quorum back. *)
(* Placement is the generic [System.embed]; only the h-triang naming
   convention is ours. *)
let remap_system ~universe (tri : Htriang.t) (place : int array) =
  let name = Printf.sprintf "h-triang(%d)/%d" tri.Htriang.n universe in
  System.embed ~name ~universe ~place (Htriang.system tri)

let create ?durability ?lease ?skew ?switch_retry ?(margin = 2) ~rows
    ~universe ~timeout () =
  if margin < 0 then invalid_arg "Membership.create: margin < 0";
  let tri = Htriang.standard ~rows () in
  if tri.Htriang.n > universe then
    invalid_arg "Membership.create: universe smaller than the triangle";
  let place = Array.init tri.Htriang.n Fun.id in
  let reconfig =
    Reconfig.create ?durability ?lease ?skew ?switch_retry
      ~initial:(remap_system ~universe tri place)
      ~universe ~timeout ()
  in
  {
    reconfig;
    universe;
    margin;
    tri;
    place;
    proposed = None;
    proposals = 0;
    grows = 0;
    shrinks = 0;
    replacements = 0;
    skipped = 0;
  }

let reconfig t = t.reconfig
let handlers t = Reconfig.handlers t.reconfig
let bind t engine = Reconfig.bind t.reconfig engine

(* Adopt a committed proposal; drop one whose switch died without
   advancing the epoch. *)
let refresh t =
  match t.proposed with
  | None -> ()
  | Some (epoch, tri, place) ->
      if Reconfig.current_epoch t.reconfig >= epoch then (
        t.tri <- tri;
        t.place <- place;
        t.proposed <- None)
      else if not (Reconfig.switch_in_flight t.reconfig) then
        t.proposed <- None

let current_triangle t =
  refresh t;
  t.tri

let members t =
  refresh t;
  Array.copy t.place

let current_system t =
  refresh t;
  remap_system ~universe:t.universe t.tri t.place

let proposals t = t.proposals
let grows t = t.grows
let shrinks t = t.shrinks
let replacements t = t.replacements
let skipped_ticks t = t.skipped

(* Fill [n'] logical slots with distinct processes, preferring live
   current members (keeping their slots stable), then live spares, then
   dead current members, then anything left — all in deterministic
   order.  [n' <= universe] guarantees enough candidates. *)
let next_placement ~universe ~live ~old_place n' =
  let used = Array.make universe false in
  let out = ref [] in
  let count = ref 0 in
  let push p =
    if !count < n' && not used.(p) then (
      used.(p) <- true;
      out := p :: !out;
      incr count)
  in
  Array.iter (fun p -> if Bitset.mem live p then push p) old_place;
  for p = 0 to universe - 1 do
    if Bitset.mem live p then push p
  done;
  Array.iter push old_place;
  for p = 0 to universe - 1 do
    push p
  done;
  Array.of_list (List.rev !out)

let first_of (fs : (Htriang.t -> Htriang.t option) list) tri =
  List.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> f tri)
    None fs

let tick t engine =
  refresh t;
  if Reconfig.switch_in_flight t.reconfig then t.skipped <- t.skipped + 1
  else
    let live = Sim.Engine.live_set engine in
    let live_count = Bitset.cardinal live in
    let n = t.tri.Htriang.n in
    (* One structural step per tick, with hysteresis around the margin:
       grow only when the live population clears the *grown* size plus
       the full margin (so the triangle always keeps [margin] live
       spares on adoption), shrink only when the live population can
       barely fill the current triangle (one spare left).  The wide gap
       between the two thresholds keeps live-count jitter from turning
       into grow/shrink oscillation — every structural step is a sealed
       switch, so oscillation is pure downtime. *)
    let tri' =
      if live_count < n + 1 && live_count > 0 then
        match
          first_of
            [
              Htriang.shrink_unit_grid;
              Htriang.shrink_unit_triangle;
              Htriang.shrink_square_grid;
            ]
            t.tri
        with
        | Some s -> s
        | None -> t.tri
      else
        let fits g =
          g.Htriang.n <= t.universe && live_count >= g.Htriang.n + t.margin
        in
        let candidates =
          List.filter_map
            (fun f -> f t.tri)
            [ Htriang.grow_unit_triangle; Htriang.grow_unit_grid ]
        in
        match List.find_opt fits candidates with
        | Some g -> g
        | None -> t.tri
    in
    let structural = tri' != t.tri in
    (* Lazy repair: every switch seals the register for a couple of
       round trips, and an h-triang tolerates scattered dead members by
       construction — so a single dead member is not worth a switch.
       Replace only when the repair debt reaches two dead members, or
       urgently when the dead ones leave no live quorum at all. *)
    let dead =
      Array.fold_left
        (fun acc p -> if Bitset.mem live p then acc else acc + 1)
        0 t.place
    in
    let urgent () =
      not (Htriang.avail t.tri (fun l -> Bitset.mem live t.place.(l)))
    in
    if (not structural) && (dead < 2 && not (dead = 1 && urgent ())) then ()
    else
      let place' =
        next_placement ~universe:t.universe ~live ~old_place:t.place
          tri'.Htriang.n
      in
      if (not structural) && place' = t.place then ()
      else
      (* The old configuration runs the seal, so the coordinator must
         be a live member of it; with none, wait for the next tick. *)
      match Array.to_list t.place |> List.find_opt (Bitset.mem live) with
      | None -> t.skipped <- t.skipped + 1
      | Some coordinator ->
          let sys = remap_system ~universe:t.universe tri' place' in
          Reconfig.reconfigure t.reconfig ~coordinator sys;
          t.proposed <-
            Some (Reconfig.current_epoch t.reconfig + 1, tri', place');
          t.proposals <- t.proposals + 1;
          if structural then
            if tri'.Htriang.n > t.tri.Htriang.n then t.grows <- t.grows + 1
            else t.shrinks <- t.shrinks + 1
          else t.replacements <- t.replacements + 1

let start t engine ~period ~horizon =
  if period <= 0.0 then invalid_arg "Membership.start: period <= 0";
  let rec arm time =
    if time < horizon then (
      Sim.Engine.schedule ~background:true engine ~time (fun () ->
          tick t engine);
      arm (time +. period))
  in
  arm period
