open Quorum
module Htriang = Core.Htriang

type view = Omniscient | Fd of { merged : bool }

type t = {
  reconfig : Reconfig.t;
  universe : int;
  margin : int;
  view : view;
  down_streak : int;
  up_streak : int;
  eff_live : bool array;
      (* the controller's hysteresis-filtered liveness opinion *)
  streak : int array;  (* consecutive ticks disagreeing with eff_live *)
  mutable tri : Htriang.t;
  mutable place : int array;
  mutable proposed : (int * Htriang.t * int array) option;
      (* (epoch expected once committed, triangle, placement) *)
  mutable proposals : int;
  mutable grows : int;
  mutable shrinks : int;
  mutable replacements : int;
  mutable skipped : int;
  mutable false_evictions : int;
      (* proposals that dropped a node the engine oracle knew was live *)
}

(* The adopted (triangle, placement) as a system over the whole
   universe: logical element [l] lives on process [place.(l)], so
   availability / selection translate the physical live set into a
   logical one, run the triangle's structural strategy, and map the
   chosen quorum back. *)
(* Placement is the generic [System.embed]; only the h-triang naming
   convention is ours. *)
let remap_system ~universe (tri : Htriang.t) (place : int array) =
  let name = Printf.sprintf "h-triang(%d)/%d" tri.Htriang.n universe in
  System.embed ~name ~universe ~place (Htriang.system tri)

let create ?durability ?lease ?skew ?switch_retry ?(margin = 2)
    ?(view = Omniscient) ?fd ?(down_streak = 2) ?(up_streak = 1) ~rows
    ~universe ~timeout () =
  if margin < 0 then invalid_arg "Membership.create: margin < 0";
  if down_streak < 1 then invalid_arg "Membership.create: down_streak < 1";
  if up_streak < 1 then invalid_arg "Membership.create: up_streak < 1";
  let tri = Htriang.standard ~rows () in
  if tri.Htriang.n > universe then
    invalid_arg "Membership.create: universe smaller than the triangle";
  let place = Array.init tri.Htriang.n Fun.id in
  let initial = remap_system ~universe tri place in
  let reconfig =
    match view with
    | Omniscient ->
        Reconfig.create ?durability ?lease ?skew ?switch_retry ~initial
          ~universe ~timeout ()
    | Fd _ ->
        let config = Client_config.(default |> with_timeout timeout) in
        let config =
          match durability with
          | Some d -> Client_config.with_durability d config
          | None -> config
        in
        let config =
          match fd with
          | Some f -> { config with Client_config.fd = f }
          | None -> config
        in
        Reconfig.of_config ~config ~with_fd:true ?lease ?skew ?switch_retry
          ~initial ~universe ()
  in
  {
    reconfig;
    universe;
    margin;
    view;
    down_streak;
    up_streak;
    (* Presume everyone live until the detector says otherwise — the
       failure detector's own starting opinion. *)
    eff_live = Array.make universe true;
    streak = Array.make universe 0;
    tri;
    place;
    proposed = None;
    proposals = 0;
    grows = 0;
    shrinks = 0;
    replacements = 0;
    skipped = 0;
    false_evictions = 0;
  }

let reconfig t = t.reconfig
let handlers t = Reconfig.handlers t.reconfig
let bind t engine = Reconfig.bind t.reconfig engine

(* Adopt a committed proposal; drop one whose switch died without
   advancing the epoch. *)
let refresh t =
  match t.proposed with
  | None -> ()
  | Some (epoch, tri, place) ->
      if Reconfig.current_epoch t.reconfig >= epoch then (
        t.tri <- tri;
        t.place <- place;
        t.proposed <- None)
      else if not (Reconfig.switch_in_flight t.reconfig) then
        t.proposed <- None

let current_triangle t =
  refresh t;
  t.tri

let members t =
  refresh t;
  Array.copy t.place

let current_system t =
  refresh t;
  remap_system ~universe:t.universe t.tri t.place

let proposals t = t.proposals
let grows t = t.grows
let shrinks t = t.shrinks
let replacements t = t.replacements
let skipped_ticks t = t.skipped
let false_evictions t = t.false_evictions
let view_mode t = t.view

(* The liveness opinion a tick acts on.  [Omniscient] is the engine's
   oracle (the historical controller, bit-identical).  [Fd] reads the
   failure detector through the register's member views: either the
   lowest-indexed live member's own view, or — [merged] — a majority
   vote over every live member's view (a falsely-suspected node must
   fool half the observers to be evicted).  The raw opinion then runs
   through flap hysteresis: a node's effective state only flips after
   [down_streak] (resp. [up_streak]) consecutive ticks of
   disagreement, so a single missed heartbeat burst cannot trigger an
   eviction switch. *)
let controller_view t engine =
  match t.view with
  | Omniscient -> Sim.Engine.live_set engine
  | Fd { merged } ->
      let observers =
        Array.to_list t.place
        |> List.filter (Sim.Engine.is_live engine)
        |> List.sort_uniq compare
      in
      let raw_live p =
        match observers with
        | [] ->
            (* No live member to consult: hold every opinion. *)
            t.eff_live.(p)
        | first :: _ ->
            if merged then begin
              let yes = ref 0 in
              List.iter
                (fun o ->
                  match Reconfig.fd_view t.reconfig ~node:o with
                  | Some v when Bitset.mem v p -> incr yes
                  | Some _ | None -> ())
                observers;
              2 * !yes > List.length observers
            end
            else
              (match Reconfig.fd_view t.reconfig ~node:first with
              | Some v -> Bitset.mem v p
              | None -> t.eff_live.(p))
      in
      let out = Bitset.create t.universe in
      for p = 0 to t.universe - 1 do
        let raw = raw_live p in
        if raw = t.eff_live.(p) then t.streak.(p) <- 0
        else begin
          t.streak.(p) <- t.streak.(p) + 1;
          let needed = if t.eff_live.(p) then t.down_streak else t.up_streak in
          if t.streak.(p) >= needed then begin
            t.eff_live.(p) <- raw;
            t.streak.(p) <- 0
          end
        end;
        if t.eff_live.(p) then Bitset.add out p
      done;
      out

(* Fill [n'] logical slots with distinct processes, preferring live
   current members (keeping their slots stable), then live spares, then
   dead current members, then anything left — all in deterministic
   order.  [n' <= universe] guarantees enough candidates. *)
let next_placement ~universe ~live ~old_place n' =
  let used = Array.make universe false in
  let out = ref [] in
  let count = ref 0 in
  let push p =
    if !count < n' && not used.(p) then (
      used.(p) <- true;
      out := p :: !out;
      incr count)
  in
  Array.iter (fun p -> if Bitset.mem live p then push p) old_place;
  for p = 0 to universe - 1 do
    if Bitset.mem live p then push p
  done;
  Array.iter push old_place;
  for p = 0 to universe - 1 do
    push p
  done;
  Array.of_list (List.rev !out)

let first_of (fs : (Htriang.t -> Htriang.t option) list) tri =
  List.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> f tri)
    None fs

let tick t engine =
  refresh t;
  if Reconfig.switch_in_flight t.reconfig then t.skipped <- t.skipped + 1
  else
    let live = controller_view t engine in
    let live_count = Bitset.cardinal live in
    let n = t.tri.Htriang.n in
    (* One structural step per tick, with hysteresis around the margin:
       grow only when the live population clears the *grown* size plus
       the full margin (so the triangle always keeps [margin] live
       spares on adoption), shrink only when the live population can
       barely fill the current triangle (one spare left).  The wide gap
       between the two thresholds keeps live-count jitter from turning
       into grow/shrink oscillation — every structural step is a sealed
       switch, so oscillation is pure downtime. *)
    let tri' =
      if live_count < n + 1 && live_count > 0 then
        match
          first_of
            [
              Htriang.shrink_unit_grid;
              Htriang.shrink_unit_triangle;
              Htriang.shrink_square_grid;
            ]
            t.tri
        with
        | Some s -> s
        | None -> t.tri
      else
        let fits g =
          g.Htriang.n <= t.universe && live_count >= g.Htriang.n + t.margin
        in
        let candidates =
          List.filter_map
            (fun f -> f t.tri)
            [ Htriang.grow_unit_triangle; Htriang.grow_unit_grid ]
        in
        match List.find_opt fits candidates with
        | Some g -> g
        | None -> t.tri
    in
    let structural = tri' != t.tri in
    (* Lazy repair: every switch seals the register for a couple of
       round trips, and an h-triang tolerates scattered dead members by
       construction — so a single dead member is not worth a switch.
       Replace only when the repair debt reaches two dead members, or
       urgently when the dead ones leave no live quorum at all. *)
    let dead =
      Array.fold_left
        (fun acc p -> if Bitset.mem live p then acc else acc + 1)
        0 t.place
    in
    let urgent () =
      not (Htriang.avail t.tri (fun l -> Bitset.mem live t.place.(l)))
    in
    if (not structural) && (dead < 2 && not (dead = 1 && urgent ())) then ()
    else
      let place' =
        next_placement ~universe:t.universe ~live ~old_place:t.place
          tri'.Htriang.n
      in
      if (not structural) && place' = t.place then ()
      else
      (* The old configuration runs the seal, so the coordinator must
         be a live member of it; with none, wait for the next tick. *)
      match Array.to_list t.place |> List.find_opt (Bitset.mem live) with
      | None -> t.skipped <- t.skipped + 1
      | Some coordinator ->
          (* Oracle check (measurement only, never steering): an
             evicted member the engine knows is live is a false
             eviction — the cost of trusting a wrong suspicion.
             Epoch fencing keeps it safe (the evicted node NACKs
             stale-epoch ops and rejoins via a later placement);
             this counts how often availability paid for it. *)
          Array.iter
            (fun p ->
              if
                (not (Array.exists (Int.equal p) place'))
                && Sim.Engine.is_live engine p
                && not (Bitset.mem live p)
              then t.false_evictions <- t.false_evictions + 1)
            t.place;
          let sys = remap_system ~universe:t.universe tri' place' in
          Reconfig.reconfigure t.reconfig ~coordinator sys;
          t.proposed <-
            Some (Reconfig.current_epoch t.reconfig + 1, tri', place');
          t.proposals <- t.proposals + 1;
          if structural then
            if tri'.Htriang.n > t.tri.Htriang.n then t.grows <- t.grows + 1
            else t.shrinks <- t.shrinks + 1
          else t.replacements <- t.replacements + 1

let start t engine ~period ~horizon =
  if period <= 0.0 then invalid_arg "Membership.start: period <= 0";
  let rec arm time =
    if time < horizon then (
      Sim.Engine.schedule ~background:true engine ~time (fun () ->
          tick t engine);
      arm (time +. period))
  in
  arm period
