(** Store throughput measurement: sessioned, pipelined, batched
    clients driving {!Replicated_store} under a {!Chaos} scenario,
    closed- or open-loop.

    The point of the exercise is the flat-vs-hierarchical capacity
    story.  With a non-zero {!Replicated_store.service} cost, every
    node serves at most [1 / per_req] requests per time unit; a flat
    majority puts ~n/2 nodes in {e every} quorum, so aggregate
    capacity stays flat as n grows, while an h-triang quorum touches
    only ~sqrt(2n) nodes and a sharded layout splits disjoint keys
    onto disjoint subquorums — capacity grows with n.  The closed-loop
    sweep in [bench throughput] shows the crossover; the open-loop
    mode shows queue growth and shedding once the offered rate exceeds
    capacity.

    Every run is deterministic in [seed]: repeated runs produce
    bit-identical reports. *)

(** {2 Arms} *)

type arm = {
  arm_label : string;
  read_sys : Quorum.System.t;
  write_sys : Quorum.System.t;
  router : Shard_router.t option;
}
(** One competitor in a sweep: the systems handed to the store, plus
    the optional shard router that overrides per-key selection. *)

val flat_arm : n:int -> arm
(** Tie-broken majority over all n — the flat baseline. *)

val htriang_arm : n:int -> arm
(** The largest standard h-triang fitting n (spares idle), embedded
    over the n-process universe. *)

val sharded_arm : ?shards:int -> n:int -> unit -> (arm, string) result
(** [shards] (default [max 1 (n / 4)]) h-grid subquorums over
    contiguous blocks via {!Shard_router}. *)

val arms : ?shards:int -> n:int -> unit -> (arm list, string) result
(** [[flat; h-triang; sharded h-grid]] for one n. *)

(** {2 Running} *)

type mode =
  | Closed  (** every session keeps [window] ops in flight *)
  | Open of float  (** Poisson arrivals at the given rate, regardless
                       of service capacity *)

val mode_label : mode -> string

type report = {
  label : string;  (** scenario label *)
  system : string;
  seed : int;
  mode : string;
  offered : float;  (** open-loop arrival rate; 0 for closed loop *)
  n : int;
  shards : int;  (** 1 when unsharded *)
  sessions : int;
  window : int;
  batch : int;
  issued : int;
  completed : int;
  failed : int;  (** timeouts + unavailable *)
  shed : int;  (** submissions dropped by full session backlogs *)
  ops_per_sec : float;  (** completed / horizon — the headline number *)
  mean_latency : float;
  p95_latency : float;
  peak_backlog : int;  (** worst per-session backlog ever observed *)
  final_backlog : int;  (** ops still queued when the run ended *)
  batches : int;
  batched_ops : int;
  retransmissions : int;
  stale_reads : int;  (** must be 0 *)
  breakdown : Obs.Trace_analysis.breakdown;
      (** critical-path component sums across completed ops; all-zero
          unless [?obs] was passed *)
  budget_hit : bool;
}

val run_h :
  ?seed:int ->
  ?config:Client_config.t ->
  ?mode:mode ->
  ?window:int ->
  ?batch_size:int ->
  ?batch_delay:float ->
  ?max_queue:int ->
  ?read_fraction:float ->
  ?keys:int ->
  ?service:Replicated_store.service ->
  ?router:Shard_router.t ->
  ?obs:Obs.t ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  name:string ->
  Chaos.scenario ->
  report * Replicated_store.t
(** One store, one session per node ([window] in-flight ops each,
    batches of [batch_size] flushed after [batch_delay]), the
    scenario's faults applied, load driven to the scenario horizon
    and drained.  Defaults: seed 7, closed loop, window 4, batch 4,
    delay 0.25, [max_queue] 64, 50/50 read mix over [2n] keys, the
    standard service cost (per_req 0.3, per_batch 0.1 — pass
    {!Replicated_store.no_service} for the historical zero-cost
    model), durability from the scenario plan. *)

val run :
  ?seed:int ->
  ?config:Client_config.t ->
  ?mode:mode ->
  ?window:int ->
  ?batch_size:int ->
  ?batch_delay:float ->
  ?max_queue:int ->
  ?read_fraction:float ->
  ?keys:int ->
  ?service:Replicated_store.service ->
  ?router:Shard_router.t ->
  ?obs:Obs.t ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  name:string ->
  Chaos.scenario ->
  report
(** {!run_h} without the store handle. *)

val run_arm :
  ?seed:int ->
  ?config:Client_config.t ->
  ?mode:mode ->
  ?window:int ->
  ?batch_size:int ->
  ?batch_delay:float ->
  ?max_queue:int ->
  ?read_fraction:float ->
  ?keys:int ->
  ?service:Replicated_store.service ->
  ?obs:Obs.t ->
  arm ->
  Chaos.scenario ->
  report
(** {!run} with systems and router taken from the arm. *)

(** {2 Rendering} *)

val header : unit -> string
val row : report -> string
