module Engine = Sim.Engine
module Ta = Obs.Trace_analysis

type protocol = Mutex | Store | Reconfig | Throughput

let protocol_name = function
  | Mutex -> "mutex"
  | Store -> "store"
  | Reconfig -> "reconfig"
  | Throughput -> "throughput"

(* The pinned chaos seeds (bench chaos writes them into
   BENCH_chaos.json, bench throughput into BENCH_throughput.json);
   reports made with the defaults are replayed exactly by any other
   tool using the same seed. *)
let default_seed = function
  | Mutex -> 41
  | Store -> 42
  | Reconfig -> 43
  | Throughput -> 46

type t = {
  protocol : protocol;
  system : string;
  scenario : string;
  seed : int;
  horizon : float;
  summary : string;  (** chaos header + row, fixed width *)
  profiles : Ta.op_profile list;
  audit : Ta.audit option;  (** [None] for the mutex (no data history) *)
  obs : Obs.t;
}

let run ?seed ?(horizon = 400.0) ?(trace_capacity = 1 lsl 19) ?(profile = true)
    ?span_keep_1_in ?next ~protocol ~system ~scenario () =
  let seed = match seed with Some s -> s | None -> default_seed protocol in
  let next = Option.value next ~default:system in
  let n =
    match protocol with
    | Mutex | Store | Throughput -> system.Quorum.System.n
    | Reconfig -> max system.Quorum.System.n next.Quorum.System.n
  in
  let s = Chaos.scenario_of_label ~n ~horizon scenario in
  let obs = Obs.create ~trace_capacity ~profile ?span_keep_1_in () in
  let summary, audit, name =
    match protocol with
    | Mutex ->
        let r, _mx = Chaos.run_mutex_h ~seed ~obs ~system s in
        ( Chaos.mutex_header () ^ "\n" ^ Chaos.mutex_row r,
          None,
          system.Quorum.System.name )
    | Store ->
        let r, store =
          Chaos.run_store_h ~seed ~obs ~read_system:system
            ~write_system:system ~name:system.Quorum.System.name s
        in
        ( Chaos.store_header () ^ "\n" ^ Chaos.store_row r,
          Some
            (Ta.audit_history ~trace:(Obs.trace obs) ~spans:(Obs.spans obs)
               (Replicated_store.history store)),
          system.Quorum.System.name )
    | Throughput ->
        let r, store =
          Throughput.run_h ~seed ~obs ~read_system:system ~write_system:system
            ~name:system.Quorum.System.name s
        in
        ( Throughput.header () ^ "\n" ^ Throughput.row r,
          Some
            (Ta.audit_history ~trace:(Obs.trace obs) ~spans:(Obs.spans obs)
               (Replicated_store.history store)),
          system.Quorum.System.name )
    | Reconfig ->
        let name =
          system.Quorum.System.name ^ "->" ^ next.Quorum.System.name
        in
        let r, rc =
          Chaos.run_reconfig_h ~seed ~obs ~initial:system ~next ~name s
        in
        ( Chaos.reconfig_header () ^ "\n" ^ Chaos.reconfig_row r,
          Some
            (Ta.audit_history ~trace:(Obs.trace obs) ~spans:(Obs.spans obs)
               (Reconfig.history rc)),
          name )
  in
  let profiles =
    Ta.profile_ops ~trace:(Obs.trace obs) ~spans:(Obs.spans obs) ()
  in
  {
    protocol;
    system = name;
    scenario = s.Chaos.label;
    seed;
    horizon;
    summary;
    profiles;
    audit;
    obs;
  }

(* --- Markdown rendering --------------------------------------------- *)

let pct part total = if total <= 0.0 then 0.0 else 100.0 *. part /. total

let latency_section buf profiles =
  Buffer.add_string buf "## Operation latency (critical-path breakdown)\n\n";
  if profiles = [] then
    Buffer.add_string buf
      "No finished operations were profiled (empty trace or no spans).\n\n"
  else begin
    Buffer.add_string buf
      "| op | count | complete | mean | p50 | p90 | p99 | max | network | \
       fsync | queueing | retransmit |\n";
    Buffer.add_string buf
      "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
    List.iter
      (fun (name, ps) ->
        let a = Ta.aggregate ps in
        let t = Ta.breakdown_total a.Ta.total in
        Printf.bprintf buf
          "| %s | %d | %d | %.2f | %.2f | %.2f | %.2f | %.2f | %.1f%% | \
           %.1f%% | %.1f%% | %.1f%% |\n"
          name a.Ta.count a.Ta.complete a.Ta.mean a.Ta.p50 a.Ta.p90 a.Ta.p99
          a.Ta.max_v
          (pct a.Ta.total.Ta.network t)
          (pct a.Ta.total.Ta.fsync t)
          (pct a.Ta.total.Ta.queueing t)
          (pct a.Ta.total.Ta.retransmit t))
      (Ta.by_name profiles);
    Buffer.add_string buf
      "\nBreakdown components partition each operation's end-to-end \
       latency; percentages are of total time in that op class.\n\n"
  end

let audit_section buf = function
  | None ->
      Buffer.add_string buf
        "## Consistency audit\n\n\
         Not applicable: the mutex records no read/write history (safety \
         is the violations counter above).\n\n"
  | Some (a : Ta.audit) ->
      Printf.bprintf buf
        "## Consistency audit\n\n\
         Checked %d reads against %d writes (stale-read, read-your-writes, \
         monotonic-reads): **%s**\n\n"
        a.Ta.reads a.Ta.writes (Ta.verdict a);
      List.iter
        (fun (v : Ta.violation) ->
          Printf.bprintf buf "- `%s`: %s (%d witnessing trace events)\n"
            v.Ta.check v.Ta.detail (List.length v.Ta.witness))
        a.Ta.violations;
      if a.Ta.violations <> [] then Buffer.add_char buf '\n'

(* The failure detector's oracle-measured health, when the run carried
   one (the mutex and store always do; the bare register only with
   [with_fd]).  [fd.beats_sent] doubles as the presence probe: a
   detector that never beat never ran. *)
let fd_section buf obs =
  let m = Obs.metrics obs in
  let c name = Obs.Metrics.(counter_value (counter m name)) in
  if c "fd.beats_sent" > 0 then begin
    let detect = Obs.Metrics.histogram m "fd.detection_latency" in
    Buffer.add_string buf "## Failure-detector health\n\n";
    Buffer.add_string buf "| metric | value |\n|---|---|\n";
    Printf.bprintf buf "| suspicion transitions | %d |\n" (c "fd.transitions");
    Printf.bprintf buf "| false-positive onsets | %d |\n"
      (c "fd.false_positives");
    Printf.bprintf buf "| false-suspicion samples | %d |\n"
      (c "fd.false_suspicions");
    Printf.bprintf buf "| missed-detection samples | %d |\n"
      (c "fd.missed_suspicions");
    Printf.bprintf buf "| crash detections | %d |\n"
      (Obs.Metrics.count detect);
    Printf.bprintf buf "| detection latency | %s |\n"
      (Obs.Metrics.summary detect);
    let hedges = c "store.hedges" in
    let degraded = c "store.degraded_writes" in
    if hedges > 0 then Printf.bprintf buf "| hedged requests | %d |\n" hedges;
    if degraded > 0 then
      Printf.bprintf buf "| degraded-mode write refusals | %d |\n" degraded;
    Buffer.add_string buf
      "\nOnsets count suspicion flips against the engine oracle; sample \
       counts accumulate once per beat period per (observer, peer).\n\n"
  end

let trace_section buf obs =
  let tr = Obs.trace obs in
  let dropped = Obs.Trace.dropped tr in
  let metered =
    Obs.Metrics.(
      counter_value (counter (Obs.metrics obs) "obs.trace.dropped"))
  in
  Printf.bprintf buf
    "## Trace health\n\n\
     %d events recorded, %d buffered, %d evicted by the ring \
     (`obs.trace.dropped` metered %d).\n"
    (Obs.Trace.recorded tr) (Obs.Trace.length tr) dropped metered;
  (let sp = Obs.spans obs in
   let k = Obs.Span.sampler_keep_1_in sp in
   if k <> 1 then
     Printf.bprintf buf
       "Span sampling: 1 in %d — kept %d of %d root spans; descendants \
        follow their root, so surviving trees are complete.\n"
       k (Obs.Span.roots_kept sp) (Obs.Span.roots_seen sp)
   else if Obs.Span.roots_seen sp > 0 then
     Printf.bprintf buf "Span sampling: off — all %d root spans kept.\n"
       (Obs.Span.roots_seen sp));
  if dropped > 0 then
    Buffer.add_string buf
      "**Warning:** the ring overwrote events; causal chains may be \
       broken (profiles above marked incomplete) and the causality check \
       below is advisory only.\n";
  (match Obs.Trace.causality_violations tr with
  | [] ->
      Buffer.add_string buf
        "Causality: ok — every surviving deliver links to a recorded \
         send.\n\n"
  | vs ->
      Printf.bprintf buf
        "Causality: %d deliver(s) without a matching send%s.\n\n"
        (List.length vs)
        (if dropped > 0 then " (expected: their sends were evicted)"
         else ""))

(* The simulator's own cost, when the run was profiled.  Everything
   else in the report is simulated (deterministic, seed-replayable);
   these are real wall-clock and allocation measurements of the engine
   and vary run to run — the per-category *shares* are the signal. *)
let profile_section buf obs =
  let p = Obs.prof obs in
  if Obs.Prof.enabled p then begin
    let r = Obs.Prof.report p in
    if r.Obs.Prof.rows <> [] then begin
      Buffer.add_string buf "## Engine profile\n\n";
      Buffer.add_string buf
        "Simulator self-measurement (real wall time and minor-heap \
         allocation, not simulated time).  Absolute numbers vary run to \
         run; the per-category shares are the signal and sum to 100% of \
         the probed total.\n\n";
      Buffer.add_string buf (Obs.Prof.render_markdown p);
      if r.Obs.Prof.truncated > 0 || r.Obs.Prof.unbalanced > 0 then
        Printf.bprintf buf
          "\n**Warning:** probe stack anomalies (%d truncated, %d \
           unbalanced) — attribution is approximate.\n"
          r.Obs.Prof.truncated r.Obs.Prof.unbalanced;
      Buffer.add_char buf '\n'
    end
  end

let to_markdown t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# Chaos run report: %s / %s / %s\n\n"
    (protocol_name t.protocol) t.system t.scenario;
  Printf.bprintf buf
    "Seed %d, horizon %g simulated time units.  The run is deterministic: \
     the same protocol, system, scenario and seed replay it exactly.\n\n"
    t.seed t.horizon;
  Buffer.add_string buf "## Run summary\n\n```\n";
  Buffer.add_string buf t.summary;
  Buffer.add_string buf "\n```\n\n";
  latency_section buf t.profiles;
  audit_section buf t.audit;
  fd_section buf t.obs;
  trace_section buf t.obs;
  profile_section buf t.obs;
  Buffer.add_string buf "## Metrics registry\n\n```\n";
  Buffer.add_string buf (Obs.Metrics.render (Obs.metrics t.obs));
  Buffer.add_string buf "```\n";
  Buffer.contents buf
