module Durable = Sim.Durable

type rpc = { timeout : float; backoff : float; attempts : int }
type fd = { period : float; timeout : float; accrual : float option }

type routing = {
  hedge : bool;
  hedge_quantile : float;
  hedge_floor : float;
  degraded_reads : bool;
}

type t = {
  rpc : rpc;
  fd : fd;
  routing : routing;
  durability : Durable.config;
  timeout : float;
  retries : int;
}

let default =
  {
    rpc = { timeout = 4.0; backoff = 1.6; attempts = 6 };
    fd = { period = 1.0; timeout = 5.0; accrual = None };
    routing =
      {
        hedge = false;
        hedge_quantile = 0.9;
        hedge_floor = 2.0;
        degraded_reads = false;
      };
    durability = Durable.instant;
    timeout = 25.0;
    retries = 2;
  }

let with_rpc ?timeout ?backoff ?attempts t =
  {
    t with
    rpc =
      {
        timeout = Option.value timeout ~default:t.rpc.timeout;
        backoff = Option.value backoff ~default:t.rpc.backoff;
        attempts = Option.value attempts ~default:t.rpc.attempts;
      };
  }

let with_fd ?period ?timeout ?accrual t =
  {
    t with
    fd =
      {
        period = Option.value period ~default:t.fd.period;
        timeout = Option.value timeout ~default:t.fd.timeout;
        accrual =
          (match accrual with Some _ as a -> a | None -> t.fd.accrual);
      };
  }

let with_routing ?hedge ?hedge_quantile ?hedge_floor ?degraded_reads t =
  {
    t with
    routing =
      {
        hedge = Option.value hedge ~default:t.routing.hedge;
        hedge_quantile =
          Option.value hedge_quantile ~default:t.routing.hedge_quantile;
        hedge_floor = Option.value hedge_floor ~default:t.routing.hedge_floor;
        degraded_reads =
          Option.value degraded_reads ~default:t.routing.degraded_reads;
      };
  }

let with_durability durability t = { t with durability }
let with_timeout timeout t = { t with timeout }
let with_retries retries t = { t with retries }

let fd_mode t =
  match t.fd.accrual with
  | None -> Sim.Failure_detector.Fixed_timeout t.fd.timeout
  | Some threshold ->
      Sim.Failure_detector.Accrual { threshold; window = 20; min_samples = 5 }

let validate t =
  if t.rpc.timeout <= 0.0 then Error "Client_config: rpc timeout must be > 0"
  else if t.rpc.backoff < 1.0 then
    Error "Client_config: rpc backoff must be >= 1"
  else if t.rpc.attempts < 1 then
    Error "Client_config: rpc attempts must be >= 1"
  else if t.fd.period <= 0.0 then
    Error "Client_config: fd period must be > 0"
  else if t.fd.timeout <= t.fd.period then
    Error "Client_config: fd timeout must exceed its period"
  else if (match t.fd.accrual with Some x -> x <= 0.0 | None -> false) then
    Error "Client_config: fd accrual threshold must be > 0"
  else if
    t.routing.hedge_quantile <= 0.0 || t.routing.hedge_quantile >= 1.0
  then Error "Client_config: hedge quantile must lie in (0, 1)"
  else if t.routing.hedge_floor < 0.0 then
    Error "Client_config: hedge floor must be >= 0"
  else if t.timeout <= 0.0 then
    Error "Client_config: operation timeout must be > 0"
  else if t.retries < 0 then Error "Client_config: retries must be >= 0"
  else Ok ()
