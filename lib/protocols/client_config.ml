module Durable = Sim.Durable

type rpc = { timeout : float; backoff : float; attempts : int }
type fd = { period : float; timeout : float }

type t = {
  rpc : rpc;
  fd : fd;
  durability : Durable.config;
  timeout : float;
  retries : int;
}

let default =
  {
    rpc = { timeout = 4.0; backoff = 1.6; attempts = 6 };
    fd = { period = 1.0; timeout = 5.0 };
    durability = Durable.instant;
    timeout = 25.0;
    retries = 2;
  }

let with_rpc ?timeout ?backoff ?attempts t =
  {
    t with
    rpc =
      {
        timeout = Option.value timeout ~default:t.rpc.timeout;
        backoff = Option.value backoff ~default:t.rpc.backoff;
        attempts = Option.value attempts ~default:t.rpc.attempts;
      };
  }

let with_fd ?period ?timeout t =
  {
    t with
    fd =
      {
        period = Option.value period ~default:t.fd.period;
        timeout = Option.value timeout ~default:t.fd.timeout;
      };
  }

let with_durability durability t = { t with durability }
let with_timeout timeout t = { t with timeout }
let with_retries retries t = { t with retries }

let validate t =
  if t.rpc.timeout <= 0.0 then Error "Client_config: rpc timeout must be > 0"
  else if t.rpc.backoff < 1.0 then
    Error "Client_config: rpc backoff must be >= 1"
  else if t.rpc.attempts < 1 then
    Error "Client_config: rpc attempts must be >= 1"
  else if t.fd.period <= 0.0 then
    Error "Client_config: fd period must be > 0"
  else if t.fd.timeout <= t.fd.period then
    Error "Client_config: fd timeout must exceed its period"
  else if t.timeout <= 0.0 then
    Error "Client_config: operation timeout must be > 0"
  else if t.retries < 0 then Error "Client_config: retries must be >= 0"
  else Ok ()
