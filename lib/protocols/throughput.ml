module Engine = Sim.Engine
module Network = Sim.Network
module Rng = Quorum.Rng
module System = Quorum.System
module Store = Replicated_store
module Metrics = Obs.Metrics

(* --- Arms: the three system shapes the sweep compares --------------- *)

type arm = {
  arm_label : string;
  read_sys : System.t;
  write_sys : System.t;
  router : Shard_router.t option;
}

(* Largest triangle row count fitting n processes: r(r+1)/2 <= n. *)
let tri_rows n =
  let rec go r = if (r + 1) * (r + 2) / 2 <= n then go (r + 1) else r in
  go 1

let flat_arm ~n =
  let sys = Systems.Majority.make n in
  {
    arm_label = "flat-majority";
    read_sys = sys;
    write_sys = sys;
    router = None;
  }

let htriang_arm ~n =
  let tri = Core.Htriang.standard ~rows:(tri_rows n) () in
  let used = tri.Core.Htriang.n in
  let sys = Core.Htriang.system tri in
  let sys =
    (* Processes beyond the triangle's footprint idle as spares, like
       Membership placements. *)
    if used = n then sys
    else System.embed ~universe:n ~place:(Array.init used Fun.id) sys
  in
  { arm_label = "h-triang"; read_sys = sys; write_sys = sys; router = None }

let sharded_arm ?shards ~n () =
  let shards = match shards with Some s -> s | None -> max 1 (n / 4) in
  match Shard_router.create ~family:Shard_router.Hgrid ~universe:n ~shards () with
  | Error _ as e -> e
  | Ok router ->
      (* The global systems are nominal: with a router bound, every
         per-key selection goes through the key's shard instead. *)
      let global = Systems.Majority.make n in
      Ok
        {
          arm_label = Printf.sprintf "shard-hgrid/%d" shards;
          read_sys = global;
          write_sys = global;
          router = Some router;
        }

let arms ?shards ~n () =
  match sharded_arm ?shards ~n () with
  | Error _ as e -> e
  | Ok sharded -> Ok [ flat_arm ~n; htriang_arm ~n; sharded ]

(* --- One run --------------------------------------------------------- *)

type mode = Closed | Open of float

let mode_label = function Closed -> "closed" | Open _ -> "open"

type report = {
  label : string;
  system : string;
  seed : int;
  mode : string;
  offered : float;  (** open-loop arrival rate; 0 for closed loop *)
  n : int;
  shards : int;
  sessions : int;
  window : int;
  batch : int;
  issued : int;
  completed : int;
  failed : int;
  shed : int;
  ops_per_sec : float;
  mean_latency : float;
  p95_latency : float;
  peak_backlog : int;
  final_backlog : int;
  batches : int;
  batched_ops : int;
  retransmissions : int;
  stale_reads : int;
  breakdown : Obs.Trace_analysis.breakdown;
  budget_hit : bool;
}

(* Per-request cost 0.3 makes quorum size visible as capacity: a node
   serves at most ~3.3 requests per time unit, and a node that sits in
   every quorum caps the whole system there.  per_batch below per_req
   is what batching amortizes. *)
let default_service = Store.service ~per_req:0.3 ~per_batch:0.1 ()

let run_h ?(seed = 7) ?config ?(mode = Closed) ?(window = 4) ?(batch_size = 4)
    ?(batch_delay = 0.25) ?(max_queue = 64) ?(read_fraction = 0.5) ?keys
    ?(service = default_service) ?router ?obs ~read_system ~write_system
    ~name scenario =
  let n = read_system.System.n in
  let keys = match keys with Some k -> k | None -> 2 * n in
  let horizon = scenario.Chaos.horizon in
  let rng = Rng.create seed in
  let network = Network.create ~loss:scenario.Chaos.plan.Chaos.loss () in
  let config =
    match config with
    | Some c -> c
    | None ->
        Client_config.(
          default
          |> with_durability (Chaos.durability_of_plan scenario.Chaos.plan))
  in
  let store =
    Store.of_config ~config ?router ~service ~read_system ~write_system ()
  in
  let engine =
    Engine.create ~seed:(seed + 1) ~nodes:n ~network ?obs
      (Store.handlers store)
  in
  Store.bind store engine;
  Chaos.apply engine ~rng scenario;
  let sessions =
    Array.init n (fun client ->
        Store.Session.create store ~client ~window ~batch_size ~batch_delay
          ~max_queue ())
  in
  let issued = ref 0 in
  let next_value = ref 0 in
  let request () =
    incr issued;
    let key = Rng.int rng keys in
    if Rng.bernoulli rng read_fraction then Store.Get { key }
    else begin
      incr next_value;
      Store.Put { key; value = !next_value }
    end
  in
  let offered =
    match mode with
    | Closed ->
        Workload.closed_loop engine ~stations:n ~per_station:window ~horizon
          (fun ~station ~complete ->
            let accepted =
              Store.Session.submit store sessions.(station)
                ~on_complete:(fun outcome ->
                  let ok =
                    match outcome with
                    | Store.Read_done _ | Store.Write_done _ -> true
                    | Store.Timed_out | Store.Unavailable -> false
                  in
                  complete ~ok)
                (request ())
            in
            if not accepted then complete ~ok:false);
        0.0
    | Open rate ->
        ignore
          (Workload.open_loop engine ~rng ~rate ~horizon (fun () ->
               let station = Rng.int rng n in
               let (_ : bool) =
                 Store.Session.submit store sessions.(station) (request ())
               in
               ()));
        rate
  in
  (* Flush partial batches left at the end of the load window; their
     completions still need engine time, which run_status drains. *)
  Engine.schedule engine ~time:horizon (fun () ->
      Array.iter (fun s -> Store.Session.drain store s) sessions);
  let outcome = Engine.run_status engine in
  let completed = Store.reads_ok store + Store.writes_ok store in
  let lat = Store.op_latency store in
  let cells = [ [ ("op", "read") ]; [ ("op", "write") ] ] in
  let lat_count =
    List.fold_left (fun a l -> a + Metrics.count ~labels:l lat) 0 cells
  in
  let lat_sum =
    List.fold_left (fun a l -> a +. Metrics.sum ~labels:l lat) 0.0 cells
  in
  let p95 =
    List.fold_left
      (fun a l -> Float.max a (Metrics.percentile_or ~labels:l ~default:0.0 lat 0.95))
      0.0 cells
  in
  let breakdown =
    match obs with
    | None -> Obs.Trace_analysis.zero_breakdown
    | Some o -> (
        match
          Obs.Trace_analysis.profile_ops ~trace:(Obs.trace o)
            ~spans:(Obs.spans o) ()
        with
        | [] -> Obs.Trace_analysis.zero_breakdown
        | profiles -> (Obs.Trace_analysis.aggregate profiles).Obs.Trace_analysis.total)
  in
  ( {
      label = scenario.Chaos.label;
      system = name;
      seed;
      mode = mode_label mode;
      offered;
      n;
      shards = (match router with Some r -> Shard_router.shard_count r | None -> 1);
      sessions = n;
      window;
      batch = batch_size;
      issued = !issued;
      completed;
      failed = Store.timeouts store + Store.unavailable store;
      shed = Store.shed store;
      ops_per_sec =
        (if horizon <= 0.0 then 0.0 else float_of_int completed /. horizon);
      mean_latency =
        (if lat_count = 0 then 0.0 else lat_sum /. float_of_int lat_count);
      p95_latency = p95;
      peak_backlog =
        Array.fold_left
          (fun a s -> max a (Store.Session.peak_queue s))
          0 sessions;
      final_backlog =
        Array.fold_left (fun a s -> a + Store.Session.queued s) 0 sessions;
      batches = Store.batches store;
      batched_ops = Store.batched_ops store;
      retransmissions = Store.retransmissions store;
      stale_reads = Store.stale_reads store;
      breakdown;
      budget_hit = outcome = Engine.Budget_exhausted;
    },
    store )

let run ?seed ?config ?mode ?window ?batch_size ?batch_delay ?max_queue
    ?read_fraction ?keys ?service ?router ?obs ~read_system ~write_system
    ~name scenario =
  fst
    (run_h ?seed ?config ?mode ?window ?batch_size ?batch_delay ?max_queue
       ?read_fraction ?keys ?service ?router ?obs ~read_system ~write_system
       ~name scenario)

let run_arm ?seed ?config ?mode ?window ?batch_size ?batch_delay ?max_queue
    ?read_fraction ?keys ?service ?obs arm scenario =
  run ?seed ?config ?mode ?window ?batch_size ?batch_delay ?max_queue
    ?read_fraction ?keys ?service ?obs ?router:arm.router
    ~read_system:arm.read_sys ~write_system:arm.write_sys ~name:arm.arm_label
    scenario

(* --- Rendering ------------------------------------------------------- *)

let header () =
  Printf.sprintf
    "%-10s %-15s %-6s %3s %3s %3s %3s %6s %6s %5s %5s %7s %7s %7s %5s %6s %5s"
    "scenario" "system" "mode" "n" "sh" "w" "b" "issued" "done" "fail" "shed"
    "ops/s" "lat" "p95" "queue" "batch" "stale"

let row (r : report) =
  Printf.sprintf
    "%-10s %-15s %-6s %3d %3d %3d %3d %6d %6d %5d %5d %7.2f %7.2f %7.2f %5d %6d %5d%s"
    r.label r.system r.mode r.n r.shards r.window r.batch r.issued r.completed
    r.failed r.shed r.ops_per_sec r.mean_latency r.p95_latency r.peak_backlog
    r.batches r.stale_reads
    (if r.budget_hit then "  [budget!]" else "")
