module Engine = Sim.Engine
module Bitset = Quorum.Bitset

(* Requests are totally ordered by (timestamp, client); smaller wins. *)
type req = { ts : int; client : int }

let priority a b = compare (a.ts, a.client) (b.ts, b.client)

type msg =
  | Request of req
  | Grant
  | Inquire
  | Yield of req
  | Failed
  | Release of req

type waiting = {
  req : req;
  quorum : int list;
  grants : Bitset.t;
  mutable got_failed : bool;
  mutable pending_inquires : int list;
  started : float;
}

type client_phase =
  | Idle
  | Waiting of waiting
  | In_cs of { req : req; quorum : int list }

type arbiter = {
  mutable granted_to : req option;
  mutable inquired : bool;  (** an INQUIRE to the current grantee is in flight *)
  mutable queue : req list;  (** pending requests, sorted by priority *)
}

type t = {
  system : Quorum.System.t;
  capacity : int;
  cs_duration : float;
  mutable engine : msg Engine.t option;
  mutable clock : int;  (** request timestamp source *)
  clients : client_phase array;
  pending : int array;  (** requests queued while the node was busy *)
  arbiters : arbiter array;
  mutable in_cs_count : int;
  mutable max_concurrency : int;
  mutable entries : int;
  mutable violations : int;
  mutable unavailable : int;
  wait_stats : Sim.Stats.t;
}

let create ?(capacity = 1) ~system ~cs_duration () =
  if capacity < 1 then invalid_arg "Mutex.create: capacity >= 1";
  let n = system.Quorum.System.n in
  {
    system;
    capacity;
    cs_duration;
    engine = None;
    clock = 0;
    clients = Array.make n Idle;
    pending = Array.make n 0;
    arbiters =
      Array.init n (fun _ ->
          { granted_to = None; inquired = false; queue = [] });
    in_cs_count = 0;
    max_concurrency = 0;
    entries = 0;
    violations = 0;
    unavailable = 0;
    wait_stats = Sim.Stats.create ();
  }

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Mutex: bind the engine first"

let bind t engine =
  if Engine.nodes engine <> t.system.Quorum.System.n then
    invalid_arg "Mutex.bind: engine size mismatch";
  t.engine <- Some engine

let entries t = t.entries
let violations t = t.violations
let max_concurrency t = t.max_concurrency
let unavailable t = t.unavailable
let wait_stats t = t.wait_stats

let insert_sorted req queue =
  let rec go = function
    | [] -> [ req ]
    | r :: rest as all ->
        if priority req r < 0 then req :: all else r :: go rest
  in
  go queue

(* --- Arbiter side ------------------------------------------------- *)

let arbiter_grant engine ~arbiter_id a req =
  a.granted_to <- Some req;
  a.inquired <- false;
  Engine.send engine ~src:arbiter_id ~dst:req.client Grant

let arbiter_on_request t engine ~node:j req =
  let a = t.arbiters.(j) in
  match a.granted_to with
  | None -> arbiter_grant engine ~arbiter_id:j a req
  | Some current ->
      a.queue <- insert_sorted req a.queue;
      if priority req current < 0 then begin
        (* The newcomer outranks the grant: ask the grantee to yield
           (at most one outstanding inquire). *)
        if not a.inquired then begin
          a.inquired <- true;
          Engine.send engine ~src:j ~dst:current.client Inquire
        end
      end
      else Engine.send engine ~src:j ~dst:req.client Failed

let arbiter_next engine ~node:j a =
  match a.queue with
  | [] -> a.granted_to <- None
  | best :: rest ->
      a.queue <- rest;
      arbiter_grant engine ~arbiter_id:j a best;
      (* Everyone left behind is now outranked by the new grantee and
         must learn it cannot currently win, or a waiting client that
         was never FAILED would sit on an INQUIRE forever (deadlock). *)
      List.iter
        (fun r -> Engine.send engine ~src:j ~dst:r.client Failed)
        rest

let arbiter_on_release t engine ~node:j req =
  let a = t.arbiters.(j) in
  (match a.granted_to with
  | Some current when priority current req = 0 ->
      a.inquired <- false;
      arbiter_next engine ~node:j a
  | Some _ | None ->
      (* Stale release (e.g. re-delivery after yield): drop the request
         from the queue if it is still there. *)
      a.queue <- List.filter (fun r -> priority r req <> 0) a.queue)

let arbiter_on_yield t engine ~node:j req =
  let a = t.arbiters.(j) in
  match a.granted_to with
  | Some current when priority current req = 0 ->
      a.inquired <- false;
      a.queue <- insert_sorted req a.queue;
      arbiter_next engine ~node:j a
  | Some _ | None -> ()

(* --- Client side -------------------------------------------------- *)

let enter_cs t engine ~node w_req w_quorum started =
  t.clients.(node) <- In_cs { req = w_req; quorum = w_quorum };
  t.in_cs_count <- t.in_cs_count + 1;
  if t.in_cs_count > t.max_concurrency then
    t.max_concurrency <- t.in_cs_count;
  if t.in_cs_count > t.capacity then t.violations <- t.violations + 1;
  t.entries <- t.entries + 1;
  Sim.Stats.add t.wait_stats (Engine.now engine -. started);
  (* Leave after cs_duration: encoded as a timer tagged by ts. *)
  Engine.set_timer engine ~node ~delay:t.cs_duration ~tag:w_req.ts

let client_answer_inquires engine ~node w =
  (* Only yield when this request cannot currently win.  An INQUIRE can
     overtake the GRANT it refers to; such inquires stay pending until
     the grant lands. *)
  if w.got_failed then begin
    let still_pending =
      List.filter
        (fun j ->
          if Bitset.mem w.grants j then begin
            Bitset.remove w.grants j;
            Engine.send engine ~src:node ~dst:j (Yield w.req);
            false
          end
          else true)
        w.pending_inquires
    in
    w.pending_inquires <- still_pending
  end

let client_on_grant t engine ~node ~src =
  match t.clients.(node) with
  | Waiting w ->
      Bitset.add w.grants src;
      let all =
        List.for_all (fun j -> Bitset.mem w.grants j) w.quorum
      in
      if all then enter_cs t engine ~node w.req w.quorum w.started
      else
        (* A pending inquire may have been waiting for this grant. *)
        client_answer_inquires engine ~node w
  | Idle | In_cs _ -> ()

let client_on_inquire t engine ~node ~src =
  match t.clients.(node) with
  | Waiting w ->
      if not (List.mem src w.pending_inquires) then
        w.pending_inquires <- src :: w.pending_inquires;
      client_answer_inquires engine ~node w
  | In_cs _ | Idle ->
      (* Already inside (the release will free the arbiter) or stale. *)
      ()

let client_on_failed t engine ~node =
  match t.clients.(node) with
  | Waiting w ->
      w.got_failed <- true;
      client_answer_inquires engine ~node w
  | Idle | In_cs _ -> ()

let exit_cs t engine ~node req quorum =
  t.clients.(node) <- Idle;
  t.in_cs_count <- t.in_cs_count - 1;
  List.iter
    (fun j -> Engine.send engine ~src:node ~dst:j (Release req))
    quorum

(* --- Wiring ------------------------------------------------------- *)

let request t ~node =
  let engine = engine_exn t in
  if Engine.is_live engine node then
    match t.clients.(node) with
    | Waiting _ | In_cs _ ->
        (* One outstanding request per node: queue and reissue after
           the current critical section completes. *)
        t.pending.(node) <- t.pending.(node) + 1
    | Idle ->
        let live = Engine.live_set engine in
        (match t.system.Quorum.System.select (Engine.rng engine) ~live with
        | None -> t.unavailable <- t.unavailable + 1
        | Some quorum_set ->
            t.clock <- t.clock + 1;
            let req = { ts = t.clock; client = node } in
            let quorum = Bitset.to_list quorum_set in
            t.clients.(node) <-
              Waiting
                {
                  req;
                  quorum;
                  grants = Bitset.create (Array.length t.clients);
                  got_failed = false;
                  pending_inquires = [];
                  started = Engine.now engine;
                };
            List.iter
              (fun j -> Engine.send engine ~src:node ~dst:j (Request req))
              quorum)

let debug_dump t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i phase ->
      let desc =
        match phase with
        | Idle -> "idle"
        | In_cs { req; _ } -> Printf.sprintf "IN-CS(ts=%d)" req.ts
        | Waiting w ->
            Printf.sprintf "waiting(ts=%d grants=%s failed=%b inq=[%s] q=[%s])"
              w.req.ts
              (String.concat "," (List.map string_of_int (Bitset.to_list w.grants)))
              w.got_failed
              (String.concat "," (List.map string_of_int w.pending_inquires))
              (String.concat "," (List.map string_of_int w.quorum))
      in
      Buffer.add_string buf (Printf.sprintf "client %d: %s pend=%d\n" i desc t.pending.(i)))
    t.clients;
  Array.iteri
    (fun j a ->
      Buffer.add_string buf
        (Printf.sprintf "arbiter %d: granted=%s inq=%b queue=[%s]\n" j
           (match a.granted_to with
            | None -> "-"
            | Some r -> Printf.sprintf "ts%d/c%d" r.ts r.client)
           a.inquired
           (String.concat ";"
              (List.map (fun r -> Printf.sprintf "ts%d/c%d" r.ts r.client) a.queue))))
    t.arbiters;
  Buffer.contents buf

let handlers t : msg Engine.handlers =
  {
    on_message =
      (fun engine ~node ~src msg ->
        match msg with
        | Request req -> arbiter_on_request t engine ~node req
        | Grant -> client_on_grant t engine ~node ~src
        | Inquire -> client_on_inquire t engine ~node ~src
        | Yield req -> arbiter_on_yield t engine ~node req
        | Failed -> client_on_failed t engine ~node
        | Release req -> arbiter_on_release t engine ~node req);
    on_timer =
      (fun engine ~node ~tag ->
        match t.clients.(node) with
        | In_cs { req; quorum } when req.ts = tag ->
            exit_cs t engine ~node req quorum;
            if t.pending.(node) > 0 then begin
              t.pending.(node) <- t.pending.(node) - 1;
              request t ~node
            end
        | In_cs _ | Waiting _ | Idle -> ());
    on_crash = (fun _ ~node:_ -> ());
    on_recover = (fun _ ~node:_ -> ());
  }
