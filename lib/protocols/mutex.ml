module Engine = Sim.Engine
module Rpc = Sim.Rpc
module Failure_detector = Sim.Failure_detector
module Durable = Sim.Durable
module Bitset = Quorum.Bitset
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Span = Obs.Span

(* Requests are totally ordered by (timestamp, client); smaller wins. *)
type req = { ts : int; client : int }

let priority a b = compare (a.ts, a.client) (b.ts, b.client)

(* Grant / Inquire / Failed carry the request they refer to: with
   retransmissions and quorum re-selection in play, a client may have
   moved on to a newer request by the time a message for an old one
   lands, and must be able to tell them apart. *)
type app =
  | Request of req
  | Grant of req
  | Inquire of req  (** the currently granted request, asked to yield *)
  | Yield of req
  | Failed of req
  | Release of req
  | Alive of { ts : int }
      (** recovery announcement: the sender lost its volatile client
          state; grants and queue entries for its requests with
          timestamps [<= ts] are void. *)

type msg = Beat | App of app Rpc.msg

(* Timer tags: [-1] heartbeats, [<= -2] rpc retransmissions,
   [ts] critical-section exit, [ts + wd_offset] the waiting watchdog,
   [probe_tag] the arbiter's stale-grant probe. *)
let wd_offset = 0x2000_0000
let probe_tag = 0x4000_0000

type waiting = {
  req : req;
  quorum : int list;
  grants : Bitset.t;
  mutable got_failed : bool;
  mutable pending_inquires : int list;
  started : float;
  span : int;  (** root span of this acquisition attempt *)
}

type client_phase =
  | Idle
  | Waiting of waiting
  | In_cs of { req : req; quorum : int list }

type arbiter = {
  mutable granted_to : req option;
  mutable inquired : bool;  (** an INQUIRE to the current grantee is in flight *)
  mutable probe_req : req option;
      (** grant seen at the last probe tick: the same grant two ticks
          in a row draws a probing INQUIRE (stale-grant recovery) *)
  mutable queue : req list;  (** pending requests, sorted by priority *)
  tombstones : (int * int, unit) Hashtbl.t;
      (** (ts, client) of releases that overtook their request *)
  alive_floor : int array;
      (** per client: highest Alive watermark seen; requests at or
          below it are from a previous incarnation and are dropped *)
}

type instruments = {
  mx_entries : Metrics.counter;
  mx_violations : Metrics.counter;
  mx_unavailable : Metrics.counter;
  mx_reselections : Metrics.counter;
  mx_abandoned : Metrics.counter;
  mx_latency : Metrics.histogram;
}

type t = {
  system : Quorum.System.t;
  capacity : int;
  cs_duration : float;
  acquire_timeout : float;
  routing : Client_config.routing;
  rpc : (app, msg) Rpc.t;
  fd : msg Failure_detector.t;
  durability : Durable.config;
  mutable dur : (int * int) Durable.t option;
      (** durable log of tombstones [(ts, client)] per arbiter *)
  mutable granted : req option Durable.cell option;
      (** durable register of each arbiter's current grant *)
  incarnation : int array;
      (** bumped on crash to retire fsync-gated scheduled sends *)
  mutable engine : msg Engine.t option;
  mutable clock : int;  (** request timestamp source *)
  clients : client_phase array;
  pending : int array;  (** requests queued while the node was busy *)
  arbiters : arbiter array;
  probe_due : float array;
      (** fire time of each node's one legitimate probe chain (stale
          chains left over from crash/recovery races are dropped) *)
  mutable in_cs_count : int;
  mutable max_concurrency : int;
  mutable entries : int;
  mutable violations : int;
  mutable unavailable : int;
  mutable reselections : int;
  mutable abandoned : int;
  mutable ins : instruments option;
}

let of_config ?(config = Client_config.default) ?(capacity = 1) ~system
    ~cs_duration () =
  if capacity < 1 then invalid_arg "Mutex.create: capacity >= 1";
  if config.Client_config.timeout <= 0.0 then
    invalid_arg "Mutex.create: acquire_timeout";
  let n = system.Quorum.System.n in
  {
    system;
    capacity;
    cs_duration;
    acquire_timeout = config.Client_config.timeout;
    routing = config.Client_config.routing;
    rpc =
      Rpc.create ~timeout:config.Client_config.rpc.timeout
        ~backoff:config.Client_config.rpc.backoff
        ~max_attempts:config.Client_config.rpc.attempts
        ~wrap:(fun m -> App m)
        ();
    fd =
      Failure_detector.create ~period:config.Client_config.fd.period
        ~timeout:config.Client_config.fd.timeout
        ~mode:(Client_config.fd_mode config) ~nodes:n ~beat:Beat ();
    durability = config.Client_config.durability;
    dur = None;
    granted = None;
    incarnation = Array.make n 0;
    engine = None;
    clock = 0;
    clients = Array.make n Idle;
    pending = Array.make n 0;
    arbiters =
      Array.init n (fun _ ->
          {
            granted_to = None;
            inquired = false;
            probe_req = None;
            queue = [];
            tombstones = Hashtbl.create 8;
            alive_floor = Array.make n 0;
          });
    probe_due = Array.make n infinity;
    in_cs_count = 0;
    max_concurrency = 0;
    entries = 0;
    violations = 0;
    unavailable = 0;
    reselections = 0;
    abandoned = 0;
    ins = None;
  }

let create ?capacity ?(acquire_timeout = 1000.0) ?rpc_timeout ?rpc_backoff
    ?rpc_attempts ?fd_period ?fd_timeout ?durability ~system ~cs_duration () =
  let config =
    Client_config.(
      default
      |> with_rpc ?timeout:rpc_timeout ?backoff:rpc_backoff
           ?attempts:rpc_attempts
      |> with_fd ?period:fd_period ?timeout:fd_timeout
      |> with_timeout acquire_timeout)
  in
  let config =
    match durability with
    | Some d -> Client_config.with_durability d config
    | None -> config
  in
  of_config ~config ?capacity ~system ~cs_duration ()

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Mutex: bind the engine first"

let spans_exn t = Obs.spans (Engine.obs (engine_exn t))

let ins_exn t =
  match t.ins with
  | Some i -> i
  | None -> invalid_arg "Mutex: bind the engine first"

let dur_exn t =
  match t.dur with
  | Some d -> d
  | None -> invalid_arg "Mutex: bind the engine first"

let granted_cell_exn t =
  match t.granted with
  | Some c -> c
  | None -> invalid_arg "Mutex: bind the engine first"

let entries t = t.entries
let violations t = t.violations
let max_concurrency t = t.max_concurrency
let unavailable t = t.unavailable
let reselections t = t.reselections
let abandoned t = t.abandoned
let acquire_latency t = (ins_exn t).mx_latency
let dead_letters t = Rpc.dead_letters t.rpc
let retransmissions t = Rpc.retransmissions t.rpc

let rsend t ~src ~dst m = Rpc.send t.rpc ~src ~dst m

let insert_sorted req queue =
  let rec go = function
    | [] -> [ req ]
    | r :: rest as all ->
        if priority req r < 0 then req :: all else r :: go rest
  in
  go queue

(* --- Arbiter side ------------------------------------------------- *)

(* Grants are the mutex's only safety-critical state: an arbiter that
   forgets who it granted to can grant again, and two simultaneous
   grants from an intersecting-quorum member break mutual exclusion.
   So the decision is persisted write-ahead — the Grant message leaves
   only once the durable register holds it.  Everything else an
   arbiter keeps (queue, inquire flag, probe state, alive floors,
   tombstones) is liveness-only: the probe chain and client watchdogs
   reconstruct progress after any loss. *)
let arbiter_grant t ~arbiter_id a req =
  a.granted_to <- Some req;
  a.inquired <- false;
  let engine = engine_exn t in
  let now = Engine.now engine in
  let durable_at =
    Durable.set (granted_cell_exn t) ~node:arbiter_id ~now (Some req)
  in
  if durable_at <= now then rsend t ~src:arbiter_id ~dst:req.client (Grant req)
  else begin
    let parent = Engine.span_ctx engine in
    let fspan =
      if parent >= 0 then
        Span.start (spans_exn t) ~time:now ~node:arbiter_id ~parent
          "mutex.fsync"
      else -1
    in
    let inc = t.incarnation.(arbiter_id) in
    Engine.schedule engine ~time:durable_at (fun () ->
        let still_current =
          match a.granted_to with
          | Some r -> priority r req = 0
          | None -> false
        in
        let send =
          t.incarnation.(arbiter_id) = inc
          && Engine.is_live engine arbiter_id
          && still_current
        in
        if fspan >= 0 then
          Span.finish (spans_exn t) ~time:durable_at
            ~status:(if send then Span.Ok else Span.Error "superseded")
            fspan;
        if send then rsend t ~src:arbiter_id ~dst:req.client (Grant req))
  end

let arbiter_clear_grant t ~arbiter_id a =
  a.granted_to <- None;
  ignore
    (Durable.set (granted_cell_exn t) ~node:arbiter_id
       ~now:(Engine.now (engine_exn t))
       None)

let arbiter_on_request t ~node:j req =
  let a = t.arbiters.(j) in
  if req.ts <= a.alive_floor.(req.client) then
    (* A pre-crash request from a client that has since announced
       recovery: its grants would never be used. *)
    ()
  else if Hashtbl.mem a.tombstones (req.ts, req.client) then
    (* Its Release overtook it (no delivery-order guarantee). *)
    Hashtbl.remove a.tombstones (req.ts, req.client)
  else
    match a.granted_to with
    | None -> arbiter_grant t ~arbiter_id:j a req
    | Some current ->
        a.queue <- insert_sorted req a.queue;
        if priority req current < 0 then begin
          (* The newcomer outranks the grant: ask the grantee to yield
             (at most one outstanding inquire). *)
          if not a.inquired then begin
            a.inquired <- true;
            rsend t ~src:j ~dst:current.client (Inquire current)
          end
        end
        else rsend t ~src:j ~dst:req.client (Failed req)

let arbiter_next t ~node:j a =
  match a.queue with
  | [] -> arbiter_clear_grant t ~arbiter_id:j a
  | best :: rest ->
      a.queue <- rest;
      arbiter_grant t ~arbiter_id:j a best;
      (* Everyone left behind is now outranked by the new grantee and
         must learn it cannot currently win, or a waiting client that
         was never FAILED would sit on an INQUIRE forever (deadlock). *)
      List.iter (fun r -> rsend t ~src:j ~dst:r.client (Failed r)) rest

let arbiter_on_release t ~node:j req =
  let a = t.arbiters.(j) in
  match a.granted_to with
  | Some current when priority current req = 0 ->
      a.inquired <- false;
      arbiter_next t ~node:j a
  | Some _ | None ->
      (* Stale release (e.g. after yield, or an aborted attempt): drop
         the request from the queue if it is still there; if it has not
         even arrived yet, tombstone it. *)
      let len = List.length a.queue in
      a.queue <- List.filter (fun r -> priority r req <> 0) a.queue;
      if List.length a.queue = len then begin
        Hashtbl.replace a.tombstones (req.ts, req.client) ();
        (* Persisted fire-and-forget: losing a tombstone to a crash
           only risks a stuck grant, which the probe chain reclaims. *)
        ignore
          (Durable.append (dur_exn t) ~node:j
             ~now:(Engine.now (engine_exn t))
             (req.ts, req.client))
      end

let arbiter_on_yield t ~node:j req =
  let a = t.arbiters.(j) in
  match a.granted_to with
  | Some current when priority current req = 0 ->
      a.inquired <- false;
      a.queue <- insert_sorted req a.queue;
      arbiter_next t ~node:j a
  | Some _ | None -> ()

(* The stale-grant probe.  A Release can be dead-lettered (its sender
   unreachable long enough for the rpc layer to give up), leaving the
   arbiter granted to a request its client has abandoned — and every
   later request queued behind it, forever.  Each arbiter therefore
   runs a background probe chain: a grant still held after two
   consecutive ticks draws an INQUIRE.  A legitimately slow grantee
   answers as usual (yield only if it cannot currently win); a client
   that has moved past the request answers RELEASE, unsticking the
   arbiter.  Background, so probes never keep an otherwise-drained
   simulation alive. *)
let schedule_probe t engine ~node =
  let delay = Failure_detector.timeout t.fd in
  t.probe_due.(node) <- Engine.now engine +. delay;
  Engine.set_timer engine ~background:true ~node ~delay ~tag:probe_tag

let arbiter_probe t ~node =
  let engine = engine_exn t in
  (* Only the chain matching [probe_due] survives; duplicates left over
     from crash/recovery races die here. *)
  if Float.abs (Engine.now engine -. t.probe_due.(node)) <= 1e-6 then begin
    let a = t.arbiters.(node) in
    (match (a.granted_to, a.probe_req) with
    | Some r, Some p when priority r p = 0 ->
        rsend t ~src:node ~dst:r.client (Inquire r)
    | _ -> ());
    a.probe_req <- a.granted_to;
    schedule_probe t engine ~node
  end

let arbiter_on_alive t ~node:j ~client ~ts =
  let a = t.arbiters.(j) in
  if ts > a.alive_floor.(client) then a.alive_floor.(client) <- ts;
  a.queue <-
    List.filter (fun r -> not (r.client = client && r.ts <= ts)) a.queue;
  match a.granted_to with
  | Some r when r.client = client && r.ts <= ts ->
      (* The grantee lost its state: the grant is void. *)
      a.inquired <- false;
      arbiter_next t ~node:j a
  | Some _ | None -> ()

(* --- Client side -------------------------------------------------- *)

let enter_cs t engine ~node (w : waiting) =
  t.clients.(node) <- In_cs { req = w.req; quorum = w.quorum };
  t.in_cs_count <- t.in_cs_count + 1;
  if t.in_cs_count > t.max_concurrency then
    t.max_concurrency <- t.in_cs_count;
  let ins = ins_exn t in
  if t.in_cs_count > t.capacity then begin
    t.violations <- t.violations + 1;
    Metrics.incr ins.mx_violations
  end;
  t.entries <- t.entries + 1;
  Metrics.incr ins.mx_entries;
  Metrics.observe ins.mx_latency (Engine.now engine -. w.started);
  Span.finish (spans_exn t) ~time:(Engine.now engine) w.span;
  Trace.record
    (Obs.trace (Engine.obs engine))
    ~time:(Engine.now engine) ~node ~span:w.span ~label:"mutex.enter"
    Trace.Note;
  (* Leave after cs_duration: encoded as a timer tagged by ts. *)
  Engine.set_timer engine ~node ~delay:t.cs_duration ~tag:w.req.ts

let client_answer_inquires t ~node w =
  (* Only yield when this request cannot currently win.  An INQUIRE can
     overtake the GRANT it refers to; such inquires stay pending until
     the grant lands. *)
  if w.got_failed then begin
    let still_pending =
      List.filter
        (fun j ->
          if Bitset.mem w.grants j then begin
            Bitset.remove w.grants j;
            rsend t ~src:node ~dst:j (Yield w.req);
            false
          end
          else true)
        w.pending_inquires
    in
    w.pending_inquires <- still_pending
  end

let client_on_grant t ~node ~src req =
  match t.clients.(node) with
  | Waiting w when priority w.req req = 0 ->
      Bitset.add w.grants src;
      let all = List.for_all (fun j -> Bitset.mem w.grants j) w.quorum in
      if all then enter_cs t (engine_exn t) ~node w
      else
        (* A pending inquire may have been waiting for this grant. *)
        client_answer_inquires t ~node w
  | Waiting _ | Idle | In_cs _ ->
      (* A grant for an attempt we already abandoned; the Release we
         sent when abandoning it frees the arbiter. *)
      ()

let client_on_inquire t ~node ~src req =
  match t.clients.(node) with
  | Waiting w when priority w.req req = 0 ->
      if not (List.mem src w.pending_inquires) then
        w.pending_inquires <- src :: w.pending_inquires;
      client_answer_inquires t ~node w
  | In_cs { req = r; _ } when priority r req = 0 ->
      (* Inside on this very request: the release comes at exit. *)
      ()
  | Waiting _ | In_cs _ | Idle ->
      (* An inquire about a request that is no longer active here
         (abandoned, yielded long ago, or pre-crash).  We will never
         use a grant for it, so the safe answer is RELEASE — this is
         what lets an arbiter's probe reclaim a stuck grant whose
         original release was dead-lettered. *)
      rsend t ~src:node ~dst:src (Release req)

let client_on_failed t ~node req =
  match t.clients.(node) with
  | Waiting w when priority w.req req = 0 ->
      w.got_failed <- true;
      client_answer_inquires t ~node w
  | Waiting _ | Idle | In_cs _ -> ()

let release_quorum t ~node req quorum =
  List.iter (fun j -> rsend t ~src:node ~dst:j (Release req)) quorum

(* The mutex's safe embodiment of hedging: grants are stateful, so a
   request is never duplicated to a second quorum in parallel — that
   would double the grant traffic and deadlock odds.  Instead, with
   [routing.hedge] on the waiting watchdog fires early (each beat
   period, floored by [hedge_floor] instead of the full suspicion
   timeout) and treats a quorum member whose {e graded} suspicion
   level has reached [hedge_quantile] as blocked, reselecting around
   it before the detector fully suspects it.  With hedging off both
   knobs collapse to the historical watchdog. *)
let wd_delay t =
  if t.routing.hedge then
    Float.max t.routing.hedge_floor (Failure_detector.period t.fd)
  else Failure_detector.timeout t.fd

let member_blocked t ~node j =
  if t.routing.hedge then
    Failure_detector.suspicion t.fd ~node j >= t.routing.hedge_quantile
  else Failure_detector.suspects t.fd ~node j

(* Issue a fresh request from [node], choosing the quorum among the
   nodes its failure detector currently trusts. *)
let rec issue_request t ~node =
  let engine = engine_exn t in
  let view = Failure_detector.view t.fd ~node in
  match t.system.Quorum.System.select (Engine.rng engine) ~live:view with
  | None ->
      t.unavailable <- t.unavailable + 1;
      Metrics.incr (ins_exn t).mx_unavailable;
      t.clients.(node) <- Idle
  | Some quorum_set ->
      t.clock <- t.clock + 1;
      let req = { ts = t.clock; client = node } in
      let quorum = Bitset.to_list quorum_set in
      let span =
        Span.start (spans_exn t) ~time:(Engine.now engine) ~node
          "mutex.acquire"
      in
      t.clients.(node) <-
        Waiting
          {
            req;
            quorum;
            grants = Bitset.create (Array.length t.clients);
            got_failed = false;
            pending_inquires = [];
            started = Engine.now engine;
            span;
          };
      Engine.with_span_ctx engine span (fun () ->
          List.iter (fun j -> rsend t ~src:node ~dst:j (Request req)) quorum;
          Engine.set_timer engine ~node ~delay:(wd_delay t)
            ~tag:(req.ts + wd_offset))

(* Abandon the current attempt (releasing any grants collected and any
   queue positions held) and, if [retry], immediately re-select an
   alternate quorum that avoids the nodes now suspected. *)
and abort_attempt t ~node w ~retry =
  release_quorum t ~node w.req w.quorum;
  t.clients.(node) <- Idle;
  Span.finish (spans_exn t)
    ~time:(Engine.now (engine_exn t))
    ~status:(Span.Error (if retry then "reselect" else "abandoned"))
    w.span;
  if retry then begin
    t.reselections <- t.reselections + 1;
    Metrics.incr (ins_exn t).mx_reselections
      ~labels:[ ("node", string_of_int node) ];
    issue_request t ~node
  end

let request t ~node =
  let engine = engine_exn t in
  if Engine.is_live engine node then
    match t.clients.(node) with
    | Waiting _ | In_cs _ ->
        (* One outstanding request per node: queue and reissue after
           the current critical section completes. *)
        t.pending.(node) <- t.pending.(node) + 1
    | Idle -> issue_request t ~node

let drain_pending t ~node =
  if t.pending.(node) > 0 then begin
    t.pending.(node) <- t.pending.(node) - 1;
    request t ~node
  end

(* The waiting watchdog: fires every failure-detector timeout while a
   request is outstanding.  If a quorum member that has not granted yet
   has become suspect, the attempt cannot complete — re-select around
   it.  Attempts older than [acquire_timeout] are abandoned outright. *)
let client_watchdog t ~node ~ts =
  match t.clients.(node) with
  | Waiting w when w.req.ts = ts ->
      let engine = engine_exn t in
      if Engine.now engine -. w.started >= t.acquire_timeout then begin
        t.abandoned <- t.abandoned + 1;
        Metrics.incr (ins_exn t).mx_abandoned;
        abort_attempt t ~node w ~retry:false;
        drain_pending t ~node
      end
      else begin
        let blocked =
          List.exists
            (fun j ->
              (not (Bitset.mem w.grants j)) && member_blocked t ~node j)
            w.quorum
        in
        if blocked then abort_attempt t ~node w ~retry:true
        else
          Engine.set_timer engine ~node ~delay:(wd_delay t)
            ~tag:(ts + wd_offset)
      end
  | Waiting _ | Idle | In_cs _ -> ()

let exit_cs t ~node req quorum =
  t.clients.(node) <- Idle;
  t.in_cs_count <- t.in_cs_count - 1;
  release_quorum t ~node req quorum

let on_dead_letter t ~src ~dst payload =
  (* The rpc layer gave up on [dst].  Only an unanswered Request can
     strand the sender: abandon that attempt and re-select around the
     unreachable member.  Grants and releases to unreachable peers are
     left to recovery announcements / acquire timeouts. *)
  match payload with
  | Request req -> (
      match t.clients.(src) with
      | Waiting w
        when priority w.req req = 0 && (not (Bitset.mem w.grants dst)) ->
          abort_attempt t ~node:src w ~retry:true
      | Waiting _ | Idle | In_cs _ -> ())
  | Grant _ | Inquire _ | Yield _ | Failed _ | Release _ | Alive _ -> ()

(* --- Wiring ------------------------------------------------------- *)

let bind t engine =
  if Engine.nodes engine <> t.system.Quorum.System.n then
    invalid_arg "Mutex.bind: engine size mismatch";
  t.engine <- Some engine;
  let m = Obs.metrics (Engine.obs engine) in
  t.ins <-
    Some
      {
        mx_entries =
          Metrics.counter m ~help:"critical-section entries" "mutex.entries";
        mx_violations =
          Metrics.counter m ~help:"concurrent entries beyond capacity"
            "mutex.violations";
        mx_unavailable =
          Metrics.counter m
            ~help:"requests with no live quorum to select"
            "mutex.unavailable";
        mx_reselections =
          Metrics.counter m
            ~help:"attempts re-issued around suspected members, by node"
            "mutex.reselections";
        mx_abandoned =
          Metrics.counter m ~help:"attempts given up at acquire_timeout"
            "mutex.abandoned";
        mx_latency =
          Metrics.histogram m
            ~help:"request-to-entry latency (simulated time)"
            "mutex.acquire_latency";
      };
  let dur =
    Durable.create ~obs:(Engine.obs engine) ~nodes:t.system.Quorum.System.n
      t.durability
  in
  t.dur <- Some dur;
  t.granted <- Some (Durable.cell dur ~name:"mutex.granted");
  Rpc.bind t.rpc engine;
  Rpc.set_dead_letter_handler t.rpc (fun ~src ~dst payload ->
      on_dead_letter t ~src ~dst payload);
  Failure_detector.bind t.fd engine;
  Failure_detector.start t.fd;
  for node = 0 to t.system.Quorum.System.n - 1 do
    schedule_probe t engine ~node
  done

let debug_dump t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i phase ->
      let desc =
        match phase with
        | Idle -> "idle"
        | In_cs { req; _ } -> Printf.sprintf "IN-CS(ts=%d)" req.ts
        | Waiting w ->
            Printf.sprintf "waiting(ts=%d grants=%s failed=%b inq=[%s] q=[%s])"
              w.req.ts
              (String.concat "," (List.map string_of_int (Bitset.to_list w.grants)))
              w.got_failed
              (String.concat "," (List.map string_of_int w.pending_inquires))
              (String.concat "," (List.map string_of_int w.quorum))
      in
      Buffer.add_string buf (Printf.sprintf "client %d: %s pend=%d\n" i desc t.pending.(i)))
    t.clients;
  Array.iteri
    (fun j a ->
      Buffer.add_string buf
        (Printf.sprintf "arbiter %d: granted=%s inq=%b queue=[%s]\n" j
           (match a.granted_to with
            | None -> "-"
            | Some r -> Printf.sprintf "ts%d/c%d" r.ts r.client)
           a.inquired
           (String.concat ";"
              (List.map (fun r -> Printf.sprintf "ts%d/c%d" r.ts r.client) a.queue))))
    t.arbiters;
  Buffer.contents buf

let dispatch_app t ~node ~src = function
  | Request req -> arbiter_on_request t ~node req
  | Grant req -> client_on_grant t ~node ~src req
  | Inquire req -> client_on_inquire t ~node ~src req
  | Yield req -> arbiter_on_yield t ~node req
  | Failed req -> client_on_failed t ~node req
  | Release req -> arbiter_on_release t ~node req
  | Alive { ts } -> arbiter_on_alive t ~node ~client:src ~ts

let handlers t : msg Engine.handlers =
  {
    on_message =
      (fun _engine ~node ~src msg ->
        match msg with
        | Beat -> Failure_detector.heard t.fd ~node ~from:src
        | App envelope ->
            Rpc.on_message t.rpc ~node ~src envelope
              ~deliver:(fun ~src payload -> dispatch_app t ~node ~src payload));
    on_timer =
      (fun _engine ~node ~tag ->
        if Failure_detector.on_timer t.fd ~node ~tag then ()
        else if Rpc.on_timer t.rpc ~node ~tag then ()
        else if tag = probe_tag then arbiter_probe t ~node
        else if tag >= wd_offset then
          client_watchdog t ~node ~ts:(tag - wd_offset)
        else
          match t.clients.(node) with
          | In_cs { req; quorum } when req.ts = tag ->
              exit_cs t ~node req quorum;
              drain_pending t ~node
          | In_cs _ | Waiting _ | Idle -> ());
    on_crash =
      (fun engine ~node ->
        (* Volatile client state is lost; the arbiter's grant register
           and tombstone log live in the durable store (whether the
           in-memory arbiter state survives depends on how the node
           recovers — see [on_recover]).  The node's unacked sends die
           with it. *)
        Rpc.on_crash t.rpc ~node;
        t.incarnation.(node) <- t.incarnation.(node) + 1;
        Durable.crash (dur_exn t) ~node ~now:(Engine.now engine);
        (match t.clients.(node) with
        | In_cs _ -> t.in_cs_count <- t.in_cs_count - 1
        | Waiting w ->
            Span.finish (spans_exn t) ~time:(Engine.now engine)
              ~status:(Span.Error "crash") w.span
        | Idle -> ());
        t.clients.(node) <- Idle;
        t.pending.(node) <- 0);
    on_recover =
      (fun engine ~node ~amnesia ->
        Failure_detector.on_recover t.fd ~node;
        if amnesia then begin
          (* The arbiter's memory is gone: restore the safety-critical
             grant register from its durable value and the tombstones
             from the log; everything else (queue, inquire flag, probe
             state, alive floors) resets and is rebuilt by the probe
             chain, client watchdogs and fresh Alive floors. *)
          let a = t.arbiters.(node) in
          let now = Engine.now engine in
          a.granted_to <-
            (match Durable.durable_value (granted_cell_exn t) ~node ~now with
            | Some g -> g
            | None -> None);
          a.inquired <- false;
          a.probe_req <- None;
          a.queue <- [];
          Array.fill a.alive_floor 0 (Array.length a.alive_floor) 0;
          Hashtbl.reset a.tombstones;
          List.iter
            (fun tc -> Hashtbl.replace a.tombstones tc ())
            (Durable.replay (dur_exn t) ~node ~now)
        end;
        (* Crash dropped the node's timers: restart its probe chain
           (the due-time check retires any duplicate survivors). *)
        schedule_probe t engine ~node;
        (* Announce the recovery: any grant or queued request of ours
           with an older timestamp is void (we lost the state that
           could have used it).  Reliable, to every arbiter. *)
        t.clock <- t.clock + 1;
        let ts = t.clock in
        for j = 0 to Array.length t.clients - 1 do
          if j = node then arbiter_on_alive t ~node:j ~client:node ~ts
          else rsend t ~src:node ~dst:j (Alive { ts })
        done);
  }
