module Engine = Sim.Engine
module Rng = Quorum.Rng

let poisson_times rng ~rate ~horizon =
  let rec go t acc =
    let t = t +. Rng.exponential rng ~mean:(1.0 /. rate) in
    if t >= horizon then List.rev acc else go t (t :: acc)
  in
  go 0.0 []

let poisson_ops engine ~rng ~rate ~horizon issue =
  if rate <= 0.0 || horizon <= 0.0 then invalid_arg "Workload.poisson_ops";
  let times = poisson_times rng ~rate ~horizon in
  List.iter
    (fun time ->
      let client = Rng.int rng (Engine.nodes engine) in
      Engine.schedule engine ~time (fun () -> issue ~client))
    times;
  List.length times

let arrival_times rng ~rate ~horizon =
  if rate <= 0.0 || horizon <= 0.0 then invalid_arg "Workload.arrival_times";
  poisson_times rng ~rate ~horizon

let open_loop engine ~rng ~rate ~horizon issue =
  if rate <= 0.0 || horizon <= 0.0 then invalid_arg "Workload.open_loop";
  let times = poisson_times rng ~rate ~horizon in
  List.iter (fun time -> Engine.schedule engine ~time issue) times;
  List.length times

let closed_loop engine ~stations ~per_station ~horizon ?(retry_delay = 1.0)
    issue =
  if stations <= 0 || per_station <= 0 then
    invalid_arg "Workload.closed_loop: stations/per_station";
  if horizon <= 0.0 || retry_delay <= 0.0 then
    invalid_arg "Workload.closed_loop: horizon/retry_delay";
  (* Each station keeps [per_station] ops in flight: a completed op
     immediately spawns its successor, a failed one backs off by
     [retry_delay] (breaking the synchronous resubmit loop a
     persistent quorum outage would otherwise spin on). *)
  let rec pump ~station =
    if Engine.now engine < horizon then
      issue ~station ~complete:(fun ~ok ->
          if ok then pump ~station
          else
            Engine.schedule engine
              ~time:(Engine.now engine +. retry_delay)
              (fun () -> pump ~station))
  in
  for s = 0 to stations - 1 do
    Engine.schedule engine ~time:0.0 (fun () ->
        for _ = 1 to per_station do
          pump ~station:s
        done)
  done

let staggered_requests engine ~every ~count issue =
  if every <= 0.0 || count < 0 then
    invalid_arg "Workload.staggered_requests";
  let n = Engine.nodes engine in
  for i = 0 to count - 1 do
    let client = i mod n in
    Engine.schedule engine
      ~time:(float_of_int i *. every)
      (fun () -> issue ~client)
  done

let read_write_mix engine ~rng ~rate ~horizon ~read_fraction ~keys ~read
    ~write =
  if read_fraction < 0.0 || read_fraction > 1.0 then
    invalid_arg "Workload.read_write_mix: read_fraction";
  if keys <= 0 then invalid_arg "Workload.read_write_mix: keys";
  let times = poisson_times rng ~rate ~horizon in
  let counter = ref 0 in
  List.iter
    (fun time ->
      let client = Rng.int rng (Engine.nodes engine) in
      let key = Rng.int rng keys in
      let is_read = Rng.bernoulli rng read_fraction in
      incr counter;
      let value = !counter in
      Engine.schedule engine ~time (fun () ->
          if is_read then read ~client ~key else write ~client ~key ~value))
    times;
  List.length times

let read_write_mix_w engine ~rng ~rate ~horizon ~workload ~keys ~read ~write =
  match Analysis.Workload.validate workload ~n:(Engine.nodes engine) with
  | Error _ as e -> e
  | Ok () ->
      if keys <= 0 then Error "Workload.read_write_mix_w: keys must be positive"
      else if rate <= 0.0 || horizon <= 0.0 then
        Error "Workload.read_write_mix_w: rate and horizon must be positive"
      else
        Ok
          (read_write_mix engine ~rng ~rate ~horizon
             ~read_fraction:workload.Analysis.Workload.read_fraction ~keys
             ~read ~write)
