module Engine = Sim.Engine
module Rng = Quorum.Rng

let poisson_times rng ~rate ~horizon =
  let rec go t acc =
    let t = t +. Rng.exponential rng ~mean:(1.0 /. rate) in
    if t >= horizon then List.rev acc else go t (t :: acc)
  in
  go 0.0 []

let poisson_ops engine ~rng ~rate ~horizon issue =
  if rate <= 0.0 || horizon <= 0.0 then invalid_arg "Workload.poisson_ops";
  let times = poisson_times rng ~rate ~horizon in
  List.iter
    (fun time ->
      let client = Rng.int rng (Engine.nodes engine) in
      Engine.schedule engine ~time (fun () -> issue ~client))
    times;
  List.length times

let staggered_requests engine ~every ~count issue =
  if every <= 0.0 || count < 0 then
    invalid_arg "Workload.staggered_requests";
  let n = Engine.nodes engine in
  for i = 0 to count - 1 do
    let client = i mod n in
    Engine.schedule engine
      ~time:(float_of_int i *. every)
      (fun () -> issue ~client)
  done

let read_write_mix engine ~rng ~rate ~horizon ~read_fraction ~keys ~read
    ~write =
  if read_fraction < 0.0 || read_fraction > 1.0 then
    invalid_arg "Workload.read_write_mix: read_fraction";
  if keys <= 0 then invalid_arg "Workload.read_write_mix: keys";
  let times = poisson_times rng ~rate ~horizon in
  let counter = ref 0 in
  List.iter
    (fun time ->
      let client = Rng.int rng (Engine.nodes engine) in
      let key = Rng.int rng keys in
      let is_read = Rng.bernoulli rng read_fraction in
      incr counter;
      let value = !counter in
      Engine.schedule engine ~time (fun () ->
          if is_read then read ~client ~key else write ~client ~key ~value))
    times;
  List.length times

let read_write_mix_w engine ~rng ~rate ~horizon ~workload ~keys ~read ~write =
  match Analysis.Workload.validate workload ~n:(Engine.nodes engine) with
  | Error _ as e -> e
  | Ok () ->
      if keys <= 0 then Error "Workload.read_write_mix_w: keys must be positive"
      else if rate <= 0.0 || horizon <= 0.0 then
        Error "Workload.read_write_mix_w: rate and horizon must be positive"
      else
        Ok
          (read_write_mix engine ~rng ~rate ~horizon
             ~read_fraction:workload.Analysis.Workload.read_fraction ~keys
             ~read ~write)
