(** Quorum-replicated versioned register / KV store (Gifford 1979
    style), the data-management protocol the h-grid of section 4.1 was
    designed for.

    Every node holds a replica: a map from key to (version, value).
    A {e write} first reads versions from a read quorum, then installs
    (max version + 1, value) on a write quorum; a {e read} collects a
    read quorum and returns the value with the highest version.  Any
    pair of (read system, write system) with intersecting quorums
    works: use [Hgrid.read_system] / [Hgrid.write_system] for the
    paper's replicated-data setting, or one symmetric system (e.g.
    h-triang) for both.

    All requests and replies ride {!Sim.Rpc} (ack, retransmission,
    duplicate suppression), so the store tolerates message loss, loss
    bursts and transient partitions; duplicate-write installs are
    impossible.  Quorums are selected from the client's
    {!Sim.Failure_detector} view; when the rpc layer dead-letters a
    request (an unreachable quorum member) the attempt fails over to a
    freshly selected quorum immediately instead of waiting out the
    attempt timeout.

    Consistency is monitored: each completed read must return a version
    at least as high as any write completed before it started
    (regular-register semantics under the intersection property);
    violations are surfaced through {!stale_reads}.

    {2 Sessions, pipelining and batching}

    {!Session} is the primary client entry: a session pipelines up to
    [window] operations concurrently (per-key FIFO — a later op on a
    key never overtakes an earlier one, so each key's writes commit in
    submission order), queues the overflow in a bounded backlog (the
    bound sheds under open-loop overload), and optionally coalesces
    outgoing quorum requests into [Batch_req] envelopes of up to
    [batch_size] requests per destination, flushed on size or after
    [batch_delay].  A replica serves a batch in one rpc exchange and
    persists all its writes through {e one}
    {!Sim.Durable.append_batch} flush — k writes, one fsync, one
    batched ack.  {!read} and {!write} remain as one-deep shims over a
    fresh window-1 unbatched session and reproduce the historical
    per-op code path exactly (same op ids, RNG draws and events).

    {2 Sharding}

    Passing a {!Shard_router} to {!of_config} routes every per-key
    quorum selection to the key's sub-triangle / sub-grid, so disjoint
    keys hit disjoint subquorums and aggregate throughput scales with
    the shard count; amnesiac recoverers then re-sync against their
    own shard's read system (spares outside every shard have nothing
    to re-establish).

    {2 Durability and crash recovery}

    Replicas persist through a {!Sim.Durable} store with write-ahead
    acknowledgement: an incoming write is appended to the replica's
    durable log and the [Write_ack] leaves only once the append has
    fsynced, so an acknowledged write can never be lost to a crash.
    With the default {!Sim.Durable.instant} configuration the fsync is
    free and the protocol behaves exactly like the classic
    stable-storage model.

    Recovery distinguishes the two models of
    {!Sim.Engine.handlers.on_recover}.  A plain recovery resumes with
    memory intact.  An {e amnesiac} recovery wipes the in-memory table,
    replays the durable log prefix, and then runs an explicit re-join
    protocol: the replica refuses [Version_req]/[Write_req] (clients
    see a [Recovering] nack and fail over to another quorum) until it
    has synchronized state from a full read quorum, which restores
    regular-register freshness before it serves again.  Rejoining
    replicas still answer sync requests from their replayed state —
    write-ahead acking makes that safe, and it keeps a majority-amnesia
    restart from deadlocking. *)

type t
type msg

type service = { per_req : float; per_batch : float }
(** Replica service-time model: handling a request (or batch) occupies
    the node's processor for [per_batch + k * per_req] simulated time,
    serialized per node.  The default zero-cost model dispatches
    synchronously — the historical behaviour.  A non-zero cost is what
    makes quorum {e size} observable as throughput: nodes sitting in
    every quorum saturate first, so smaller/disjoint quorums win. *)

val no_service : service
val service : ?per_req:float -> ?per_batch:float -> unit -> service
(** Raises [Invalid_argument] on negative costs. *)

val of_config :
  ?config:Client_config.t ->
  ?router:Shard_router.t ->
  ?service:service ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  unit ->
  t
(** The primary constructor: all client-side tunables live in the
    {!Client_config.t} record (default {!Client_config.default}; every
    field is honoured — [timeout] is the per-attempt lifetime,
    [retries] the quorum re-selections after a timeout).  Both systems
    must span the same universe; a [router]'s universe must match
    (its shard systems then drive every per-key quorum selection).

    [config.retries] interacts with the rpc backoff: a single attempt
    already survives transient loss via retransmission (up to
    [rpc.attempts] sends spaced by [rpc.timeout] growing with
    [rpc.backoff] — see {!Sim.Rpc.create}), so attempt-level retries
    only matter when a quorum {e member} is down or cut off and a
    different quorum must be chosen.  Keep [config.timeout]
    comfortably above [config.rpc.timeout] so the rpc layer gets a
    chance to push a message through before the whole attempt is
    abandoned. *)

val create :
  ?retries:int ->
  ?rpc_timeout:float ->
  ?rpc_backoff:float ->
  ?rpc_attempts:int ->
  ?fd_period:float ->
  ?fd_timeout:float ->
  ?durability:Sim.Durable.config ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  timeout:float ->
  unit ->
  t
(** Compatibility shim over {!of_config}: packs the historical
    keyword arguments into a {!Client_config.t}.  New code should
    build the record instead. *)

val retried : t -> int
(** Attempts that failed (timeout or dead-letter) and were retried. *)

val handlers : t -> msg Sim.Engine.handlers

val bind : t -> msg Sim.Engine.t -> unit
(** Must be called once, before the first operation.  Starts the
    heartbeat traffic. *)

(** {2 Sessions} *)

type outcome =
  | Read_done of { version : int; value : int }
  | Write_done of { version : int }
  | Timed_out  (** all attempt retries exhausted (or the client died) *)
  | Unavailable  (** no quorum in the client's failure-detector view *)

type request = Get of { key : int } | Put of { key : int; value : int }

(** The sessioned client API: create once per client conversation,
    [submit] freely, read the counters when the run drains. *)
module Session : sig
  type store := t
  type t

  val create :
    store ->
    client:int ->
    ?window:int ->
    ?batch_size:int ->
    ?batch_delay:float ->
    ?max_queue:int ->
    unit ->
    t
  (** A session for [client].  [window] (default 1) in-flight ops;
      [batch_size] (default 1 — unbatched, bare wire messages exactly
      as before sessions) requests per [Batch_req] envelope;
      [batch_delay] (default 0, meaning "end of the current simulated
      instant") bounds how long a partial batch may wait; [max_queue]
      (default unbounded) bounds the backlog beyond the window —
      submissions past the bound are shed.  Requires a bound engine.
      Raises [Invalid_argument] on out-of-range parameters. *)

  val submit :
    store -> t -> ?on_complete:(outcome -> unit) -> request -> bool
  (** Launch (window permitting, per-key FIFO), or enqueue, or shed —
      [false] means shed.  [on_complete] fires exactly once, when the
      op finishes in any way. *)

  val drain : store -> t -> unit
  (** Flush partially filled batches now (e.g. at the end of a
      closed-loop run).  Completion of in-flight ops still needs
      engine time. *)

  val id : t -> int
  val client : t -> int
  val window : t -> int
  val in_flight : t -> int
  val queued : t -> int
  val submitted : t -> int
  val completed : t -> int
  val shed : t -> int
  val peak_queue : t -> int
end

val read : t -> client:int -> key:int -> unit
val write : t -> client:int -> key:int -> value:int -> unit
(** Fire-and-record one-deep shims over a fresh window-1 unbatched
    {!Session}: results land in the statistics below. *)

val reads_ok : t -> int
val writes_ok : t -> int
val unavailable : t -> int
(** Operations refused because the client's live-view contained no
    quorum (at submission or between phases). *)

val timeouts : t -> int
val stale_reads : t -> int
(** Completed reads that returned a version older than a write that
    finished before the read began — must be 0. *)

val batches : t -> int
(** [Batch_req] envelopes sent across all sessions. *)

val batched_ops : t -> int
(** Requests carried inside those envelopes. *)

val shed : t -> int
(** Submissions dropped by full session backlogs across all sessions. *)

(** {2 Suspicion-aware routing}

    With [config.routing.hedge] on (see {!Client_config.routing}), an
    unbatched attempt arms one hedge timer at the worst per-peer
    latency quantile of its quorum (floored by [hedge_floor]); when it
    fires, every member still unheard-from has its request duplicated
    to a distinct backup replica from the client's unsuspected view,
    and the attempt completes as soon as the {e acked} set contains a
    full quorum of the phase's system — replicas are idempotent and
    the client dedups replies by op id, so duplicates cost messages,
    never safety.  With [config.routing.degraded_reads] on, a write
    whose client view holds no write quorum is refused immediately
    (degraded read-only mode) instead of burning the attempt timeout;
    reads keep flowing.  Both knobs default off, and off means {e
    bit-identical} to the pre-routing store: no hedge timers, no extra
    sends, completion exactly when every originally-selected member
    acked. *)

val hedges : t -> int
(** Hedge requests sent to backup replicas ([store.hedges] metric). *)

val degraded_writes : t -> int
(** Writes refused fast by the degraded read-only mode
    ([store.degraded_writes] metric). *)

val degraded : t -> bool
(** Whether the store is currently latched in degraded read-only mode
    (no unsuspected write quorum at the last write attempt). *)

val fd_stats : t -> node:int -> Sim.Failure_detector.stats
(** [node]'s failure-detection accuracy totals against the engine's
    oracle (see {!Sim.Failure_detector.stats}). *)

val fd_suspicion : t -> node:int -> int -> float
(** Graded suspicion of [j] as seen by [node] (see
    {!Sim.Failure_detector.suspicion}). *)

val dead_letters : t -> int
(** Messages the rpc layer gave up on. *)

val retransmissions : t -> int
(** Rpc retransmissions spent on store traffic. *)

val op_latency : t -> Obs.Metrics.histogram
(** Completed-operation latency samples ([store.op_latency] in the
    engine's metrics registry, split by the [op=read|write] label).
    Raises [Invalid_argument] before [bind]. *)

val history : t -> Obs.Trace_analysis.hop list
(** Completed client operations in completion order, ready for
    {!Obs.Trace_analysis.audit_history}: reads carry the version they
    observed, writes the version they installed, and each hop names
    the operation's root span (every op opens a ["store.read"] /
    ["store.write"] root span with per-attempt and per-fsync child
    spans — see {!Obs.Span}). *)

(** {2 Crash-recovery introspection} *)

val rejoins : t -> int
(** Amnesiac re-join syncs completed ([store.rejoins] metric). *)

val rejoin_refusals : t -> int
(** Requests nacked by a replica that was still re-joining
    ([store.rejoin_refusals] metric). *)

val rejoining : t -> node:int -> bool
(** Whether [node] is currently refusing service pending a re-join
    sync. *)

val replica_value : t -> node:int -> key:int -> (int * int) option
(** The replica's in-memory [(version, value)] for [key] — test
    visibility into what a recovery replayed or a sync installed. *)

val log_length : t -> node:int -> int
(** Durable log records currently held for [node] (see
    {!Sim.Durable.log_length}).  Raises [Invalid_argument] before
    [bind]. *)
