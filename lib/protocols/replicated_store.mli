(** Quorum-replicated versioned register / KV store (Gifford 1979
    style), the data-management protocol the h-grid of section 4.1 was
    designed for.

    Every node holds a replica: a map from key to (version, value).
    A {e write} first reads versions from a read quorum, then installs
    (max version + 1, value) on a write quorum; a {e read} collects a
    read quorum and returns the value with the highest version.  Any
    pair of (read system, write system) with intersecting quorums
    works: use [Hgrid.read_system] / [Hgrid.write_system] for the
    paper's replicated-data setting, or one symmetric system (e.g.
    h-triang) for both.

    All requests and replies ride {!Sim.Rpc} (ack, retransmission,
    duplicate suppression), so the store tolerates message loss, loss
    bursts and transient partitions; duplicate-write installs are
    impossible.  Quorums are selected from the client's
    {!Sim.Failure_detector} view; when the rpc layer dead-letters a
    request (an unreachable quorum member) the attempt fails over to a
    freshly selected quorum immediately instead of waiting out the
    attempt timeout.

    Consistency is monitored: each completed read must return a version
    at least as high as any write completed before it started
    (regular-register semantics under the intersection property);
    violations are surfaced through {!stale_reads}.

    {2 Durability and crash recovery}

    Replicas persist through a {!Sim.Durable} store with write-ahead
    acknowledgement: an incoming write is appended to the replica's
    durable log and the [Write_ack] leaves only once the append has
    fsynced, so an acknowledged write can never be lost to a crash.
    With the default {!Sim.Durable.instant} configuration the fsync is
    free and the protocol behaves exactly like the classic
    stable-storage model.

    Recovery distinguishes the two models of
    {!Sim.Engine.handlers.on_recover}.  A plain recovery resumes with
    memory intact.  An {e amnesiac} recovery wipes the in-memory table,
    replays the durable log prefix, and then runs an explicit re-join
    protocol: the replica refuses [Version_req]/[Write_req] (clients
    see a [Recovering] nack and fail over to another quorum) until it
    has synchronized state from a full read quorum, which restores
    regular-register freshness before it serves again.  Rejoining
    replicas still answer sync requests from their replayed state —
    write-ahead acking makes that safe, and it keeps a majority-amnesia
    restart from deadlocking. *)

type t
type msg

val create :
  ?retries:int ->
  ?rpc_timeout:float ->
  ?rpc_backoff:float ->
  ?rpc_attempts:int ->
  ?fd_period:float ->
  ?fd_timeout:float ->
  ?durability:Sim.Durable.config ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  timeout:float ->
  unit ->
  t
(** Both systems must span the same universe.  [durability] (default
    {!Sim.Durable.instant}) configures the per-replica durable store:
    a non-zero fsync latency delays write acks, and torn-tail mode
    makes crashes corrupt the last in-flight log record.  [timeout] bounds each
    attempt's lifetime in simulated time; on expiry (or an early
    dead-letter fail-over) the operation is retried with a freshly
    selected quorum up to [retries] times (default 2) before counting
    as a timeout.

    [retries] interacts with the rpc backoff: a single attempt already
    survives transient loss via retransmission (up to [rpc_attempts]
    sends spaced by [rpc_timeout] growing with [rpc_backoff] — see
    {!Sim.Rpc.create}; [rpc_timeout] defaults to 4.0 here, above the
    default network round-trip), so attempt-level retries only matter when a
    quorum {e member} is down or cut off and a different quorum must be
    chosen.  Keep [timeout] comfortably above [rpc_timeout] so the rpc
    layer gets a chance to push a message through before the whole
    attempt is abandoned.  The default of 2 retries rides out a
    crash-and-reselect and a concurrent partition without inflating
    latency on the happy path. *)

val retried : t -> int
(** Attempts that failed (timeout or dead-letter) and were retried. *)

val handlers : t -> msg Sim.Engine.handlers

val bind : t -> msg Sim.Engine.t -> unit
(** Must be called once, before the first operation.  Starts the
    heartbeat traffic. *)

val read : t -> client:int -> key:int -> unit
val write : t -> client:int -> key:int -> value:int -> unit
(** Fire-and-record: results land in the statistics below. *)

val reads_ok : t -> int
val writes_ok : t -> int
val unavailable : t -> int
(** Operations refused because the client's live-view contained no
    quorum (at submission or between phases). *)

val timeouts : t -> int
val stale_reads : t -> int
(** Completed reads that returned a version older than a write that
    finished before the read began — must be 0. *)

val dead_letters : t -> int
(** Messages the rpc layer gave up on. *)

val retransmissions : t -> int
(** Rpc retransmissions spent on store traffic. *)

val op_latency : t -> Obs.Metrics.histogram
(** Completed-operation latency samples ([store.op_latency] in the
    engine's metrics registry, split by the [op=read|write] label).
    Raises [Invalid_argument] before [bind]. *)

val history : t -> Obs.Trace_analysis.hop list
(** Completed client operations in completion order, ready for
    {!Obs.Trace_analysis.audit_history}: reads carry the version they
    observed, writes the version they installed, and each hop names
    the operation's root span (every op opens a ["store.read"] /
    ["store.write"] root span with per-attempt and per-fsync child
    spans — see {!Obs.Span}). *)

(** {2 Crash-recovery introspection} *)

val rejoins : t -> int
(** Amnesiac re-join syncs completed ([store.rejoins] metric). *)

val rejoin_refusals : t -> int
(** Requests nacked by a replica that was still re-joining
    ([store.rejoin_refusals] metric). *)

val rejoining : t -> node:int -> bool
(** Whether [node] is currently refusing service pending a re-join
    sync. *)

val replica_value : t -> node:int -> key:int -> (int * int) option
(** The replica's in-memory [(version, value)] for [key] — test
    visibility into what a recovery replayed or a sync installed. *)

val log_length : t -> node:int -> int
(** Durable log records currently held for [node] (see
    {!Sim.Durable.log_length}).  Raises [Invalid_argument] before
    [bind]. *)
