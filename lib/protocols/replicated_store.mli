(** Quorum-replicated versioned register / KV store (Gifford 1979
    style), the data-management protocol the h-grid of section 4.1 was
    designed for.

    Every node holds a replica: a map from key to (version, value).
    A {e write} first reads versions from a read quorum, then installs
    (max version + 1, value) on a write quorum; a {e read} collects a
    read quorum and returns the value with the highest version.  Any
    pair of (read system, write system) with intersecting quorums
    works: use [Hgrid.read_system] / [Hgrid.write_system] for the
    paper's replicated-data setting, or one symmetric system (e.g.
    h-triang) for both.

    Operations pick quorums among currently-live nodes; an operation
    fails immediately ("unavailable") when no quorum is live, and
    aborts on a timeout if quorum members crash mid-flight.
    Consistency is monitored: each completed read must return a version
    at least as high as any write completed before it started
    (regular-register semantics under the intersection property). *)

type t
type msg

val create :
  ?retries:int ->
  read_system:Quorum.System.t ->
  write_system:Quorum.System.t ->
  timeout:float ->
  unit ->
  t
(** Both systems must span the same universe.  [timeout] bounds each
    attempt's lifetime in simulated time; on expiry the operation is
    retried with a freshly selected quorum up to [retries] times
    (default 0) before counting as a timeout.  Retries recover the
    operations that lose a quorum member mid-flight (client crashes
    still abort).  *)

val retried : t -> int
(** Attempts that timed out and were retried. *)

val handlers : t -> msg Sim.Engine.handlers
val bind : t -> msg Sim.Engine.t -> unit

val read : t -> client:int -> key:int -> unit
val write : t -> client:int -> key:int -> value:int -> unit
(** Fire-and-record: results land in the statistics below. *)

val reads_ok : t -> int
val writes_ok : t -> int
val unavailable : t -> int
(** Operations refused at submission (no live quorum). *)

val timeouts : t -> int
val stale_reads : t -> int
(** Completed reads that returned a version older than a write that
    finished before the read began — must be 0. *)

val latency : t -> Sim.Stats.t
