(** Dynamic membership: a controller that keeps a live h-triang
    register sized to the population that is actually up.

    The paper's growth rules (and their shrink inverses — see
    {!Core.Htriang}) transform one triangle into the next, but they
    speak about {e logical} elements [0, n).  This module adds the
    missing piece for an online system: a {e placement} mapping logical
    elements to physical processes of a fixed universe, so the quorum
    system handed to {!Reconfig} is always a system over the whole
    universe in which exactly the placed processes matter.  Membership
    changes then come in three flavours, all realized as ordinary epoch
    switches:

    - {e replace}: a dead member's logical slot is re-placed onto a
      live spare (same triangle, new placement);
    - {e grow}: when enough spare live processes exist, one growth rule
      is applied and the new slots are placed on live spares;
    - {e shrink}: when the live population cannot fill the current
      triangle, one shrink rule is applied and the placement contracts.

    A background controller tick runs the policy: at most one proposal
    is in flight at a time (ticks during a switch are counted and
    skipped), and a proposed (triangle, placement) is {e adopted} only
    once the epoch has actually advanced — an abandoned switch leaves
    the adopted configuration untouched.  New members are admitted by
    the switch itself: the install step writes the freshest sealed
    state onto a quorum of the new system before the epoch is
    announced, and un-synced nodes refuse service by epoch mismatch
    (see {!Reconfig}).

    The controller is deterministic: ticks are pre-scheduled at fixed
    simulated times and every choice (victim placement, coordinator)
    is a deterministic function of its liveness view.

    {2 Failure-detector-driven views}

    The historical controller reads the engine's omniscient live-set.
    With [view = Fd _] it instead consults the register's
    {!Sim.Failure_detector} (enabled through {!Reconfig.of_config}'s
    [with_fd]): the raw opinion is either the lowest-indexed live
    member's suspected-live view, or — [Fd {merged = true}] — a
    majority vote over every live member's view.  Flap hysteresis then
    gates every transition: a node is only treated as newly-dead after
    [down_streak] consecutive agreeing ticks (resp. [up_streak] for
    revival), so heartbeat-loss bursts do not immediately cost an
    eviction switch.  A {e false} eviction (the oracle knew the victim
    was live) is safe — epoch fencing makes the evicted node NACK
    stale-epoch operations, and it rejoins through a later placement
    once suspicion clears — but it costs a switch, so it is counted
    ({!false_evictions}) for the detector-accuracy benches. *)

type t

type view = Omniscient | Fd of { merged : bool }
(** Where the controller's liveness opinion comes from: the engine
    oracle (historical, default), one member's failure-detector view,
    or the quorum-merged majority of member views. *)

val create :
  ?durability:Sim.Durable.config ->
  ?lease:float ->
  ?skew:float ->
  ?switch_retry:float ->
  ?margin:int ->
  ?view:view ->
  ?fd:Client_config.fd ->
  ?down_streak:int ->
  ?up_streak:int ->
  rows:int ->
  universe:int ->
  timeout:float ->
  unit ->
  t
(** A register over a standard [rows]-row triangle (n = rows(rows+1)/2)
    placed identically on processes [0, n) of [universe] processes.
    [margin] (default 2) is the spare-headroom hysteresis: grow only
    when the live population exceeds the {e grown} size by at least
    [margin] (so the adopted triangle always keeps [margin] live
    spares), and shrink as soon as live headroom over the current size
    falls below [margin/2].  The gap between the two thresholds
    prevents grow/shrink oscillation; under churn a generous margin
    keeps the replacement-switch duty cycle low.
    [lease]/[skew]/[switch_retry]/[durability] are passed through to
    {!Reconfig.create} ([lease] turns the register timed).

    [view] (default [Omniscient]) selects the controller's liveness
    source (see above); with [Fd _] the register is built with a
    failure detector and [fd] (default {!Client_config.default}'s)
    tunes its period / timeout / accrual threshold.  [down_streak]
    (default 2) and [up_streak] (default 1) are the flap-hysteresis
    tick counts; both are ignored in [Omniscient] mode. *)

val reconfig : t -> Reconfig.t
(** The underlying register — reads, writes and all {!Reconfig}
    counters go through it. *)

val handlers : t -> Reconfig.msg Sim.Engine.handlers
val bind : t -> Reconfig.msg Sim.Engine.t -> unit

val start :
  t -> Reconfig.msg Sim.Engine.t -> period:float -> horizon:float -> unit
(** Pre-schedule controller ticks at [period, 2*period, ...) up to
    [horizon] (background events — they never keep the run alive).
    Not calling [start] leaves the membership static. *)

val tick : t -> Reconfig.msg Sim.Engine.t -> unit
(** One controller step (exposed for targeted tests): adopt any
    committed proposal, then — unless a switch is in flight — compare
    the adopted configuration against the live set and propose at most
    one replace / grow / shrink switch. *)

val current_triangle : t -> Core.Htriang.t
val members : t -> int array
(** The adopted placement: physical process of each logical element. *)

val current_system : t -> Quorum.System.t
(** The adopted configuration as a system over the universe. *)

val proposals : t -> int
(** Switches proposed by the controller. *)

val grows : t -> int
val shrinks : t -> int
val replacements : t -> int
(** Proposals by kind ([replacements] = same triangle, new placement). *)

val skipped_ticks : t -> int
(** Ticks that found a switch already in flight, or no live member able
    to coordinate. *)

val false_evictions : t -> int
(** Proposals that dropped a member the engine oracle knew was live
    while the controller's view believed it dead — the availability
    cost of wrong suspicions ([Fd] views only; always 0 under
    [Omniscient]). *)

val view_mode : t -> view
