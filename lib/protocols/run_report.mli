(** One-stop chaos-run dashboard: run a protocol through one fault
    scenario with full observability (metrics + trace + spans), analyze
    the recording with {!Obs.Trace_analysis}, and render everything as
    a markdown report.

    The report bundles the chaos summary row, per-operation latency
    percentiles with the critical-path breakdown (network / fsync /
    queueing / retransmit shares), the consistency-audit verdict with
    witnessing evidence, trace-ring health (including a loud warning
    when events were evicted) and the full metrics registry.  Backs
    [quorumctl report] and the [bench latency] target. *)

type protocol = Mutex | Store | Reconfig | Throughput

val protocol_name : protocol -> string
val default_seed : protocol -> int
(** The pinned chaos seeds (mutex 41, store 42, reconfig 43,
    throughput 46), shared with [bench chaos] / [bench throughput] so
    reports and bench rows describe the same runs. *)

type t = {
  protocol : protocol;
  system : string;
  scenario : string;
  seed : int;
  horizon : float;
  summary : string;  (** chaos header + row, fixed width *)
  profiles : Obs.Trace_analysis.op_profile list;
  audit : Obs.Trace_analysis.audit option;
      (** [None] for the mutex (it records no read/write history) *)
  obs : Obs.t;  (** the run's full recording, for further digging *)
}

val run :
  ?seed:int ->
  ?horizon:float ->
  ?trace_capacity:int ->
  ?profile:bool ->
  ?span_keep_1_in:int ->
  ?next:Quorum.System.t ->
  protocol:protocol ->
  system:Quorum.System.t ->
  scenario:string ->
  unit ->
  t
(** Run one seeded chaos scenario (label as in
    {!Chaos.scenario_of_label}; raises [Invalid_argument] on a
    miss) and analyze it.  [seed] defaults to the protocol's pinned
    seed, [horizon] to 400, [trace_capacity] to [2^19] events (big
    enough that standard runs evict nothing), [next] (reconfig only)
    to [system].  [profile] (default true) turns on the {!Obs.Prof}
    engine self-profile, rendered as the report's "Engine profile"
    section — profiling is behaviorally inert, so the simulated
    results are unchanged by it.  [span_keep_1_in] installs the
    deterministic span sampler (see {!Obs.create}); the trace-health
    section then reports the sampling rate.  For [Store] and
    [Throughput] the spec is used as both read and write system;
    [Throughput] drives it closed-loop through sessions with the
    default window, batch size and service cost (see
    {!Throughput.run_h}) and its summary row is the throughput row. *)

val to_markdown : t -> string
