type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

(* The tableau holds the constraint rows in equality form
   [rows.(r) . x_all = rhs.(r)] over the extended variable vector
   (structural variables, then slacks, then artificials), plus a basis
   map [basis.(r)] giving the variable currently basic in row [r].
   Pivoting keeps rhs >= 0 (primal feasibility). *)
type tableau = {
  rows : float array array;
  rhs : float array;
  basis : int array;
  ncols : int;
}

let pivot t ~row ~col =
  let prow = t.rows.(row) in
  let d = prow.(col) in
  for j = 0 to t.ncols - 1 do
    prow.(j) <- prow.(j) /. d
  done;
  t.rhs.(row) <- t.rhs.(row) /. d;
  Array.iteri
    (fun r other ->
      if r <> row then begin
        let f = other.(col) in
        if f <> 0.0 then begin
          for j = 0 to t.ncols - 1 do
            other.(j) <- other.(j) -. (f *. prow.(j))
          done;
          t.rhs.(r) <- t.rhs.(r) -. (f *. t.rhs.(row))
        end
      end)
    t.rows;
  t.basis.(row) <- col

(* Reduced costs for objective vector [obj] (length ncols) given the
   current basis: z_j = obj_j - sum_r obj_basis(r) * rows(r)(j).  We keep
   the objective row explicitly instead, updating it by pivoting, which
   is what [run_phase] does via [cost] / [cost_rhs]. *)

let run_phase ?(eps = 1e-9) t cost cost_rhs ~restrict =
  (* [restrict j] = variable j may enter the basis. *)
  let m = Array.length t.rows in
  let rec iterate guard =
    if guard = 0 then failwith "Simplex: iteration limit exceeded";
    (* Bland's rule: entering variable = smallest index with negative
       reduced cost. *)
    let entering =
      let rec find j =
        if j = t.ncols then None
        else if restrict j && cost.(j) < -.eps then Some j
        else find (j + 1)
      in
      find 0
    in
    match entering with
    | None -> `Optimal
    | Some col ->
        (* Ratio test; Bland tie-break on the leaving basis index. *)
        let leaving = ref (-1) in
        let best = ref infinity in
        for r = 0 to m - 1 do
          let a = t.rows.(r).(col) in
          if a > eps then begin
            let ratio = t.rhs.(r) /. a in
            if
              ratio < !best -. eps
              || (ratio < !best +. eps
                 && !leaving >= 0
                 && t.basis.(r) < t.basis.(!leaving))
            then begin
              best := ratio;
              leaving := r
            end
          end
        done;
        if !leaving < 0 then `Unbounded
        else begin
          let row = !leaving in
          pivot t ~row ~col;
          (* Update the objective row. *)
          let f = cost.(col) in
          if f <> 0.0 then begin
            for j = 0 to t.ncols - 1 do
              cost.(j) <- cost.(j) -. (f *. t.rows.(row).(j))
            done;
            cost_rhs := !cost_rhs -. (f *. t.rhs.(row))
          end;
          iterate (guard - 1)
        end
  in
  iterate 100_000

let solve ?(eps = 1e-9) ~c ?(a_ub = [||]) ?(b_ub = [||]) ?(a_eq = [||])
    ?(b_eq = [||]) () =
  let nvars = Array.length c in
  let n_ub = Array.length a_ub and n_eq = Array.length a_eq in
  if Array.length b_ub <> n_ub || Array.length b_eq <> n_eq then
    invalid_arg "Simplex.solve: constraint size mismatch";
  let check_row a =
    if Array.length a <> nvars then
      invalid_arg "Simplex.solve: row width mismatch"
  in
  Array.iter check_row a_ub;
  Array.iter check_row a_eq;
  let m = n_ub + n_eq in
  (* Columns: structural | slacks (one per <= row) | artificials (one
     per row; unused ones get a zero column). *)
  let nslack = n_ub in
  let ncols = nvars + nslack + m in
  let rows = Array.make_matrix m ncols 0.0 in
  let rhs = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let art_needed = Array.make m false in
  for r = 0 to n_ub - 1 do
    Array.blit a_ub.(r) 0 rows.(r) 0 nvars;
    rows.(r).(nvars + r) <- 1.0;
    rhs.(r) <- b_ub.(r);
    if rhs.(r) < 0.0 then begin
      (* Negate to keep rhs >= 0; the slack becomes a surplus so an
         artificial is required. *)
      for j = 0 to ncols - 1 do
        rows.(r).(j) <- -.rows.(r).(j)
      done;
      rhs.(r) <- -.rhs.(r);
      art_needed.(r) <- true
    end
    else basis.(r) <- nvars + r
  done;
  for k = 0 to n_eq - 1 do
    let r = n_ub + k in
    Array.blit a_eq.(k) 0 rows.(r) 0 nvars;
    rhs.(r) <- b_eq.(k);
    if rhs.(r) < 0.0 then begin
      for j = 0 to ncols - 1 do
        rows.(r).(j) <- -.rows.(r).(j)
      done;
      rhs.(r) <- -.rhs.(r)
    end;
    art_needed.(r) <- true
  done;
  for r = 0 to m - 1 do
    if art_needed.(r) then begin
      rows.(r).(nvars + nslack + r) <- 1.0;
      basis.(r) <- nvars + nslack + r
    end
  done;
  let t = { rows; rhs; basis; ncols } in
  let is_artificial j = j >= nvars + nslack in
  (* Phase 1: minimize the sum of artificials.  Build its reduced-cost
     row by subtracting each artificial-basic row. *)
  let cost1 = Array.make ncols 0.0 in
  let cost1_rhs = ref 0.0 in
  for j = nvars + nslack to ncols - 1 do
    cost1.(j) <- 1.0
  done;
  for r = 0 to m - 1 do
    if art_needed.(r) then begin
      for j = 0 to ncols - 1 do
        cost1.(j) <- cost1.(j) -. rows.(r).(j)
      done;
      cost1_rhs := !cost1_rhs -. rhs.(r)
    end
  done;
  let phase1_feasible =
    if Array.exists (fun b -> b) art_needed then begin
      match run_phase ~eps t cost1 cost1_rhs ~restrict:(fun _ -> true) with
      | `Unbounded -> false (* cannot happen: phase-1 objective >= 0 *)
      | `Optimal ->
          (* Feasible iff the artificial sum reached zero. *)
          let value = -. !cost1_rhs in
          if value > 1e-7 then false
          else begin
            (* Drive any artificial still basic (at zero) out of the
               basis where possible. *)
            for r = 0 to m - 1 do
              if is_artificial t.basis.(r) then begin
                let rec find j =
                  if j = nvars + nslack then None
                  else if abs_float t.rows.(r).(j) > eps then Some j
                  else find (j + 1)
                in
                match find 0 with
                | Some col -> pivot t ~row:r ~col
                | None -> () (* redundant row; harmless *)
              end
            done;
            true
          end
    end
    else true
  in
  if not phase1_feasible then Infeasible
  else begin
    (* Phase 2: objective row for c, reduced against the basis. *)
    let cost2 = Array.make ncols 0.0 in
    let cost2_rhs = ref 0.0 in
    Array.blit c 0 cost2 0 nvars;
    for r = 0 to m - 1 do
      let b = t.basis.(r) in
      if b >= 0 && b < ncols then begin
        let f = cost2.(b) in
        if f <> 0.0 then begin
          for j = 0 to ncols - 1 do
            cost2.(j) <- cost2.(j) -. (f *. t.rows.(r).(j))
          done;
          cost2_rhs := !cost2_rhs -. (f *. t.rhs.(r))
        end
      end
    done;
    let restrict j = not (is_artificial j) in
    match run_phase ~eps t cost2 cost2_rhs ~restrict with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make nvars 0.0 in
        for r = 0 to m - 1 do
          let b = t.basis.(r) in
          if b >= 0 && b < nvars then solution.(b) <- t.rhs.(r)
        done;
        let objective =
          Array.fold_left ( +. ) 0.0 (Array.map2 ( *. ) c solution)
        in
        Optimal { objective; solution }
  end

let maximize ?eps ~c ?a_ub ?b_ub ?a_eq ?b_eq () =
  let neg = Array.map (fun x -> -.x) c in
  match solve ?eps ~c:neg ?a_ub ?b_ub ?a_eq ?b_eq () with
  | Optimal { objective; solution } ->
      Optimal { objective = -.objective; solution }
  | (Infeasible | Unbounded) as other -> other
