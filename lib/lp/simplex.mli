(** Dense two-phase primal simplex.

    Solves {v minimize c.x  subject to  A_ub x <= b_ub,
                                        A_eq x  = b_eq,  x >= 0 v}

    Built for the system-load linear program of Definition 3.4 (minimize
    the maximum element load over strategies): tens of rows, up to a few
    thousand columns, always feasible and bounded there.  The solver is
    nevertheless a complete general-purpose implementation: Bland's
    anti-cycling rule, explicit infeasible / unbounded outcomes, and a
    certified basic solution. *)

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val solve :
  ?eps:float ->
  c:float array ->
  ?a_ub:float array array ->
  ?b_ub:float array ->
  ?a_eq:float array array ->
  ?b_eq:float array ->
  unit ->
  outcome
(** [solve ~c ?a_ub ?b_ub ?a_eq ?b_eq ()] minimizes [c.x] for [x >= 0].
    Omitted constraint blocks default to empty.  [eps] is the pivot /
    feasibility tolerance (default 1e-9). *)

val maximize :
  ?eps:float ->
  c:float array ->
  ?a_ub:float array array ->
  ?b_ub:float array ->
  ?a_eq:float array array ->
  ?b_eq:float array ->
  unit ->
  outcome
(** Same, maximizing; the reported objective is the maximum. *)
