(** Small combinatorial enumeration helpers used by the quorum
    constructions (explicit quorum lists are products of per-row
    choices, k-subsets, etc.). *)

val iter_ksubset_masks : n:int -> k:int -> (int -> unit) -> unit
(** Iterate over all k-element subsets of [{0..n-1}] as raw masks, in
    increasing numeric order (Gosper's hack).  Requires [n <= 62]. *)

val ksubsets : 'a list -> int -> 'a list list
(** All k-element sublists, preserving order. *)

val product : 'a list list -> 'a list list
(** Cartesian product: one element from each inner list, in order.
    [product [] = [[]]]. *)

val choose_count : int -> int -> int
(** Exact C(n, k) as an int; raises on overflow-prone inputs
    (n > 62). *)
