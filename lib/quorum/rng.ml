type t = { mutable state : int64 }

(* splitmix64 constants. *)
let gamma = 0x9E3779B97F4A7C15L
let mix_mul1 = 0xBF58476D1CE4E5B9L
let mix_mul2 = 0x94D049BB133111EBL

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix_mul1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix_mul2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

(* Top 62 bits as a non-negative OCaml int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec loop () =
    let r = bits t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then loop () else v
  in
  loop ()

let float t =
  (* 53 random bits scaled to [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. 0x1.0p-53

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t < p

let exponential t ~mean =
  (* Inverse CDF; 1 - float is in (0,1] so log is finite. *)
  -.mean *. log (1.0 -. float t)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: weights sum to zero";
  let target = float t *. total in
  let n = Array.length weights in
  let rec loop i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
