let bits_per_word = 62

type t = { n : int; words : int array }

(* 16-bit popcount table: four lookups cover a 62-bit word.  The exact
   enumeration in [Analysis.Failure] calls this in its innermost loop. *)
let pop16 =
  let table = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
    Bytes.unsafe_set table i (Char.chr (count i 0))
  done;
  table

let popcount x =
  Char.code (Bytes.unsafe_get pop16 (x land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 (x lsr 48))

let nwords n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { n; words = Array.make (max 1 (nwords n)) 0 }

(* Mask selecting the valid bits of the last word. *)
let last_mask n =
  let r = n mod bits_per_word in
  if r = 0 then (1 lsl bits_per_word) - 1 else (1 lsl r) - 1

let universe n =
  let t = create n in
  let w = Array.length t.words in
  if n > 0 then begin
    Array.fill t.words 0 w ((1 lsl bits_per_word) - 1);
    t.words.(w - 1) <- last_mask n
  end;
  t

let capacity t = t.n
let copy t = { n = t.n; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check_index t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check_index t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check_index t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  if t.n > 0 then begin
    let w = Array.length t.words in
    Array.fill t.words 0 w ((1 lsl bits_per_word) - 1);
    t.words.(w - 1) <- last_mask t.n
  end

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe size mismatch"

let equal a b =
  same_universe a b;
  Array.for_all2 ( = ) a.words b.words

let compare a b =
  same_universe a b;
  let rec loop i =
    if i < 0 then 0
    else
      let c = Stdlib.compare a.words.(i) b.words.(i) in
      if c <> 0 then c else loop (i - 1)
  in
  loop (Array.length a.words - 1)

let subset a b =
  same_universe a b;
  let rec loop i =
    if i = Array.length a.words then true
    else if a.words.(i) land lnot b.words.(i) <> 0 then false
    else loop (i + 1)
  in
  loop 0

let intersects a b =
  same_universe a b;
  let rec loop i =
    if i = Array.length a.words then false
    else if a.words.(i) land b.words.(i) <> 0 then true
    else loop (i + 1)
  in
  loop 0

let map2 f a b =
  same_universe a b;
  { n = a.n; words = Array.map2 f a.words b.words }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement t =
  let u = universe t.n in
  diff u t

let union_into ~dst src =
  same_universe dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

exception Early_exit

let for_all p t =
  try
    iter (fun i -> if not (p i) then raise Early_exit) t;
    true
  with Early_exit -> false

let exists p t = not (for_all (fun i -> not (p i)) t)

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n elts =
  let t = create n in
  List.iter (add t) elts;
  t

let choose t =
  let rec loop w =
    if w = Array.length t.words then None
    else if t.words.(w) = 0 then loop (w + 1)
    else
      let word = t.words.(w) in
      let rec bit b = if word land (1 lsl b) <> 0 then b else bit (b + 1) in
      Some ((w * bits_per_word) + bit 0)
  in
  loop 0

let random_subset rng ~n ~p =
  let t = create n in
  for i = 0 to n - 1 do
    if Rng.bernoulli rng p then add t i
  done;
  t

let check_mask_capacity t =
  if t.n > bits_per_word then
    invalid_arg "Bitset: universe too large for a raw int mask"

let to_mask t =
  check_mask_capacity t;
  t.words.(0)

let of_mask ~n mask =
  let t = create n in
  check_mask_capacity t;
  t.words.(0) <- mask land last_mask n;
  t

let blit_mask t mask =
  check_mask_capacity t;
  t.words.(0) <- mask land last_mask t.n

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (to_list t)
