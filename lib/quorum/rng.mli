(** Deterministic splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that
    every experiment, test and simulation is reproducible from a seed.
    The generator is splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit state advanced by a Weyl sequence and finalized with a strong
    mixer.  It is not cryptographic; it is fast, has period 2^64 and
    passes BigCrush, which is ample for Monte-Carlo estimation and
    discrete-event simulation. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator duplicating [t]'s current
    state; advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of the remainder of [t]'s stream, advancing [t] once.
    Use it to give sub-components their own reproducible streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution;
    used for latency models in the simulator. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_weighted : t -> weights:float array -> int
(** [pick_weighted t ~weights] returns index [i] with probability
    proportional to [weights.(i)].  Weights must be non-negative and
    not all zero. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)
