(** Operations on explicit quorum collections.

    Definition 3.1: a quorum system is a collection of subsets with
    pairwise non-empty intersection; a coterie additionally is an
    antichain.  This module provides the checks used throughout the test
    suite (every construction must pass [all_intersect]) and the
    classical structural notions: minimization, domination and
    transversals (Proposition 3.1). *)

val all_intersect : Bitset.t list -> bool
(** Pairwise intersection property over the list. *)

val is_antichain : Bitset.t list -> bool
(** No quorum strictly contains another (and no duplicates). *)

val is_coterie : Bitset.t list -> bool
(** [all_intersect && is_antichain] and non-empty. *)

val minimize : Bitset.t list -> Bitset.t list
(** Drop dominated quorums and duplicates, keeping first occurrences. *)

val dominates : Bitset.t list -> Bitset.t list -> bool
(** [dominates c d]: coterie [c] dominates [d] (Garcia-Molina &
    Barbara): every quorum of [d] contains some quorum of [c], and
    [c <> d] as quorum sets. *)

val minimal_of_avail : n:int -> (int -> bool) -> Bitset.t list
(** [minimal_of_avail ~n avail_mask] enumerates the minimal quorums of
    a monotone availability predicate by scanning all 2^n subsets.
    Guarded to [n <= 22]; larger constructions must enumerate
    structurally. *)

val is_transversal : Bitset.t list -> Bitset.t -> bool
(** [is_transversal quorums t]: [t] hits every quorum. *)

val is_non_dominated : n:int -> (int -> bool) -> bool
(** [is_non_dominated ~n avail_mask]: no coterie strictly dominates
    this one.  Garcia-Molina & Barbara: a coterie is dominated iff some
    set hits every quorum yet contains none; equivalently, it is
    non-dominated iff {e every} bipartition of the universe leaves at
    least one side available — which is also why non-dominated systems
    have failure probability exactly 1/2 at p = 1/2.  Exact 2^(n-1)
    scan; guarded to [n <= 30]. *)

val transversal_counts : n:int -> (int -> bool) -> float array
(** [transversal_counts ~n avail_mask] is the [a_i] vector of
    Proposition 3.1: [a.(i)] counts size-[i] dead-sets whose removal
    kills every quorum.  Exact 2^n scan; guarded to [n <= 30]. *)
