type t = {
  name : string;
  n : int;
  avail : Bitset.t -> bool;
  avail_mask : (int -> bool) option;
  min_quorums : Bitset.t list Lazy.t option;
  select : Rng.t -> live:Bitset.t -> Bitset.t option;
}

let default_select min_quorums name rng ~live =
  match min_quorums with
  | None ->
      invalid_arg
        (Printf.sprintf
           "System %s: no selection strategy and no quorum list" name)
  | Some quorums ->
      let candidates =
        List.filter (fun q -> Bitset.subset q live) (Lazy.force quorums)
      in
      (match candidates with
      | [] -> None
      | _ -> Some (Bitset.copy (Rng.pick rng (Array.of_list candidates))))

let make ~name ~n ~avail ?avail_mask ?min_quorums ?select () =
  let select =
    match select with
    | Some f -> f
    | None -> default_select min_quorums name
  in
  { name; n; avail; avail_mask; min_quorums; select }

(* Drop quorums that contain another quorum, yielding a coterie. *)
let minimize quorums =
  let keep q =
    not
      (List.exists
         (fun q' -> (not (Bitset.equal q q')) && Bitset.subset q' q)
         quorums)
  in
  List.filter keep quorums

let of_quorums ~name ~n quorums =
  List.iter
    (fun q ->
      if Bitset.capacity q <> n then
        invalid_arg "System.of_quorums: quorum universe mismatch")
    quorums;
  let minimal = minimize quorums in
  let avail live = List.exists (fun q -> Bitset.subset q live) minimal in
  let avail_mask =
    if n <= Bitset.bits_per_word then begin
      let masks = Array.of_list (List.map Bitset.to_mask minimal) in
      Some
        (fun live ->
          let rec loop i =
            if i = Array.length masks then false
            else if masks.(i) land live = masks.(i) then true
            else loop (i + 1)
          in
          loop 0)
    end
    else None
  in
  make ~name ~n ~avail ?avail_mask ~min_quorums:(lazy minimal) ()

let avail_mask_exn t =
  match t.avail_mask with
  | Some f -> f
  | None ->
      if t.n > Bitset.bits_per_word then
        invalid_arg "System.avail_mask_exn: universe too large";
      (* Domain-local scratch: the derived closure is re-entrant across
         domains, so one closure can serve a whole parallel scan. *)
      let scratch = Domain.DLS.new_key (fun () -> Bitset.create t.n) in
      fun mask ->
        let scratch = Domain.DLS.get scratch in
        Bitset.blit_mask scratch mask;
        t.avail scratch

let quorums t =
  match t.min_quorums with
  | Some q -> (
      (* Forcing can itself refuse (e.g. enumeration caps on large
         universes); that is an [Error], not a crash. *)
      match Lazy.force q with
      | q -> Ok q
      | exception (Invalid_argument msg | Failure msg) -> Error msg)
  | None ->
      Error (Printf.sprintf "system %s does not enumerate its quorums" t.name)

let quorums_exn t =
  match quorums t with
  | Ok q -> q
  | Error msg -> invalid_arg ("System.quorums_exn: " ^ msg)

let prepare t =
  match t.min_quorums with
  | Some q -> ignore (Lazy.force q : Bitset.t list)
  | None -> ()

let rename t name = { t with name }

(* Re-express a small system over a larger universe through a placement
   array: logical element [l] of [base] lives at physical process
   [place.(l)].  Everything — availability, selection, the quorum list —
   is the base system's behaviour translated through [place]; processes
   outside the image are permanent spares. *)
let embed ?name ~universe ~place base =
  let k = Array.length place in
  if k <> base.n then invalid_arg "System.embed: placement size mismatch";
  Array.iter
    (fun p ->
      if p < 0 || p >= universe then invalid_arg "System.embed: placement")
    place;
  let seen = Hashtbl.create k in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then
        invalid_arg "System.embed: duplicate placement"
      else Hashtbl.add seen p ())
    place;
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "%s/%d" base.name universe
  in
  let logical_live live =
    let llive = Bitset.create base.n in
    Array.iteri (fun l p -> if Bitset.mem live p then Bitset.add llive l) place;
    llive
  in
  let physical q =
    let phys = Bitset.create universe in
    Bitset.iter (fun l -> Bitset.add phys place.(l)) q;
    phys
  in
  let avail live = base.avail (logical_live live) in
  let select rng ~live =
    Option.map physical (base.select rng ~live:(logical_live live))
  in
  let min_quorums =
    Option.map
      (fun q -> lazy (List.map physical (Lazy.force q)))
      base.min_quorums
  in
  make ~name ~n:universe ~avail ?min_quorums ~select ()

let quorum_of_live t live =
  match t.min_quorums with
  | Some quorums ->
      List.find_opt (fun q -> Bitset.subset q live) (Lazy.force quorums)
  | None ->
      (* Fall back on the strategy with a fixed seed: deterministic. *)
      t.select (Rng.create 0) ~live

let shrink_select avail rng ~live =
  if not (avail live) then None
  else begin
    let quorum = Bitset.copy live in
    let order = Array.of_list (Bitset.to_list live) in
    Rng.shuffle_in_place rng order;
    Array.iter
      (fun i ->
        Bitset.remove quorum i;
        if not (avail quorum) then Bitset.add quorum i)
      order;
    Some quorum
  end

let pp ppf t = Format.fprintf ppf "%s (n=%d)" t.name t.n
