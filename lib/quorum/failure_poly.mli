(** Failure-probability polynomials.

    Proposition 3.1 of the paper expresses the failure probability of a
    quorum system over [n] elements as a polynomial in the individual
    crash probability [p]:

    {v F_p(S) = sum_i a_i p^i q^(n-i)    with q = 1 - p v}

    where [a_i] counts the size-[i] transversals (dead-sets that hit
    every quorum).  We store the equivalent live-set form: [c_k] is the
    number of live-sets of cardinality [k] under which no quorum is
    fully alive, so [F_p = sum_k c_k q^k p^(n-k)].  The two views are
    related by [a_i = c_(n-i)]. *)

type t

val of_fail_counts : n:int -> float array -> t
(** [of_fail_counts ~n counts] where [counts.(k)] is the number of
    failing live-sets of cardinality [k]; [Array.length counts = n+1].
    Counts are floats because they reach C(n, n/2) which is exact in a
    float for every [n] we enumerate (n <= 30 << 2^53). *)

val n : t -> int

val fail_count : t -> int -> float
(** [fail_count t k] is [c_k]. *)

val transversal_count : t -> int -> float
(** [transversal_count t i] is [a_i] of Proposition 3.1. *)

val eval : t -> p:float -> float
(** Failure probability at crash probability [p]. *)

val availability : t -> p:float -> float
(** [1 - eval t ~p]. *)

val always_fails : n:int -> t
(** The polynomial of an unusable system ([F_p = 1]). *)

val complement_is_valid : t -> bool
(** Sanity check: monotonicity of the counts against the binomial
    bound, i.e. [0 <= c_k <= C(n, k)] for every [k]. *)

val binomial : int -> int -> float
(** [binomial n k] is C(n, k) as a float ([0.] outside range). *)

val pp : Format.formatter -> t -> unit
