(** Fixed-width bitsets over a universe [{0, ..., n-1}].

    Quorums, live-sets and transversals are all subsets of a small
    universe of processes, so a packed bitset is the working currency of
    the whole repository.  The representation packs 62 bits per OCaml
    [int] word; universes of any size are supported.

    For the exact failure-probability enumeration (2^n live-sets) the
    analysis code works on raw [int] masks instead; {!of_mask} /
    {!to_mask} / {!blit_mask} bridge the two representations when
    [n <= 62]. *)

type t
(** A mutable subset of [{0, ..., n-1}].  Operations never resize. *)

val bits_per_word : int

val create : int -> t
(** [create n] is the empty subset of a universe of size [n]. *)

val universe : int -> t
(** [universe n] is the full subset [{0, ..., n-1}]. *)

val capacity : t -> int
(** Universe size [n] this set was created with. *)

val copy : t -> t

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit
val fill : t -> unit

val cardinal : t -> int
(** Population count. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)

val intersects : t -> t -> bool
(** [intersects a b] is true when [a] and [b] share an element. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
(** Complement within the universe. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst]. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

val to_list : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n elts] builds a subset of a size-[n] universe. *)

val choose : t -> int option
(** Smallest element, if any. *)

val random_subset : Rng.t -> n:int -> p:float -> t
(** [random_subset rng ~n ~p] includes each element independently with
    probability [p] (the paper's iid survival model). *)

val to_mask : t -> int
(** Raw mask; requires [capacity t <= 62]. *)

val of_mask : n:int -> int -> t
(** [of_mask ~n mask] for [n <= 62]. *)

val blit_mask : t -> int -> unit
(** [blit_mask t mask] overwrites [t] (with [capacity t <= 62]) from a
    raw mask without allocating. *)

val popcount : int -> int
(** Population count of a raw non-negative mask (up to 62 bits). *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 7}]. *)
