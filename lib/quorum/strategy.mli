(** Strategies over quorum systems (Definitions 3.3 and 3.4).

    A strategy is a probability distribution over quorums; it induces a
    load on each element (the probability the element participates in a
    randomly picked quorum), and the system load is the maximum element
    load under the best strategy.  This module evaluates explicit
    strategies exactly and structural selection procedures empirically;
    the LP that finds the optimal strategy lives in
    [Analysis.Load]. *)

type t = private { quorums : Bitset.t array; probs : float array }
(** Invariant: same lengths, probabilities non-negative and summing to
    1 (up to rounding). *)

val make : Bitset.t array -> float array -> t
(** Validates and normalizes the weights. *)

val uniform : Bitset.t list -> t
(** Equal probability on every quorum. *)

val element_loads : t -> float array
(** [element_loads s] has length [n]; entry [i] is the load induced on
    element [i] (Definition 3.4). *)

val system_load : t -> float
(** Maximum element load under this strategy. *)

val average_quorum_size : t -> float
(** Expected cardinality of the picked quorum. *)

val sample : t -> Rng.t -> Bitset.t
(** Draw a quorum according to the distribution. *)

type empirical = {
  loads : float array;  (** Per-element access frequency. *)
  max_load : float;
  avg_size : float;
  misses : int;  (** Selections that returned [None]. *)
  trials : int;
}

val empirical_of_select :
  ?pool:Exec.Pool.t ->
  ?live:Bitset.t ->
  n:int ->
  trials:int ->
  Rng.t ->
  (Rng.t -> live:Bitset.t -> Bitset.t option) ->
  empirical
(** Evaluate a structural selection procedure by sampling it [trials]
    times against [live] (default: the fully-live universe, the
    paper's setting; pass a partial [live] to measure strategy load
    under failures — selections returning [None] count as [misses]).

    With [~pool] the trials are sharded over the pool's domains in 64
    fixed chunks, each with its own RNG stream split off [rng] by
    chunk index — the result is bit-identical whatever the pool's
    domain count.  The parallel path invokes [select] concurrently, so
    the closure must be safe for concurrent use (structural selectors
    are; a selector that forces a shared lazy quorum list needs
    [System.prepare] first). *)
