let check_quorums n quorums =
  List.iter
    (fun q ->
      if Bitset.capacity q <> n then
        invalid_arg "Compose: quorum universe mismatch")
    quorums

let join ~at ~n1 outer ~n2 inner =
  if at < 0 || at >= n1 then invalid_arg "Compose.join: bad element";
  check_quorums n1 outer;
  check_quorums n2 inner;
  let n = n1 - 1 + n2 in
  (* Outer element ids: below [at] unchanged, above shifted down. *)
  let outer_id e = if e < at then e else e - 1 in
  let inner_id e = n1 - 1 + e in
  let translate q =
    let without_x =
      Bitset.fold
        (fun e acc -> if e = at then acc else outer_id e :: acc)
        q []
    in
    (without_x, Bitset.mem q at)
  in
  let quorums =
    List.concat_map
      (fun q ->
        let kept, through_x = translate q in
        if not through_x then [ Bitset.of_list n kept ]
        else
          List.map
            (fun iq ->
              Bitset.of_list n
                (kept @ List.map inner_id (Bitset.to_list iq)))
            inner)
      outer
  in
  (n, quorums)

let compose ~n1 outer inner_of =
  check_quorums n1 outer;
  let inners = Array.init n1 inner_of in
  Array.iter (fun (n2, qs) -> check_quorums n2 qs) inners;
  let offsets = Array.make n1 0 in
  let total = ref 0 in
  Array.iteri
    (fun e (n2, _) ->
      offsets.(e) <- !total;
      total := !total + n2)
    inners;
  let n = !total in
  let inner_quorums_of e =
    let _, qs = inners.(e) in
    List.map
      (fun q -> List.map (fun i -> offsets.(e) + i) (Bitset.to_list q))
      qs
  in
  let quorums =
    List.concat_map
      (fun q ->
        Bitset.to_list q
        |> List.map inner_quorums_of
        |> Combinat.product
        |> List.map (fun parts -> Bitset.of_list n (List.concat parts)))
      outer
  in
  (n, quorums)

let compose_uniform ~n1 outer ~n2 inner =
  compose ~n1 outer (fun _ -> (n2, inner))
