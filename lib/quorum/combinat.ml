let iter_ksubset_masks ~n ~k f =
  if n > 62 then invalid_arg "Combinat.iter_ksubset_masks: n > 62";
  if k < 0 || k > n then invalid_arg "Combinat.iter_ksubset_masks: bad k";
  if k = 0 then f 0
  else begin
    let limit = 1 lsl n in
    (* Gosper's hack: next mask with the same popcount. *)
    let rec loop mask =
      if mask < limit then begin
        f mask;
        let c = mask land -mask in
        let r = mask + c in
        let next = (((r lxor mask) lsr 2) / c) lor r in
        if next > mask then loop next
      end
    in
    loop ((1 lsl k) - 1)
  end

let rec ksubsets l k =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (ksubsets rest (k - 1)) @ ksubsets rest k

let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let choose_count n k =
  if n > 62 then invalid_arg "Combinat.choose_count: n > 62";
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec loop i acc =
      if i > k then acc else loop (i + 1) (acc * (n - k + i) / i)
    in
    loop 1 1
  end
