let all_intersect quorums =
  let rec loop = function
    | [] -> true
    | q :: rest ->
        List.for_all (fun r -> Bitset.intersects q r) rest && loop rest
  in
  loop quorums

let is_antichain quorums =
  let rec loop = function
    | [] -> true
    | q :: rest ->
        List.for_all
          (fun r ->
            (not (Bitset.subset q r)) && not (Bitset.subset r q))
          rest
        && loop rest
  in
  loop quorums

let is_coterie quorums =
  quorums <> [] && all_intersect quorums && is_antichain quorums

let minimize quorums =
  (* Keep a quorum unless some *other* occurrence is a (possibly equal,
     earlier) subset of it. *)
  let rec loop kept = function
    | [] -> List.rev kept
    | q :: rest ->
        let dominated_by r = Bitset.subset r q in
        if List.exists dominated_by kept || List.exists dominated_by rest
        then loop kept rest
        else loop (q :: kept) rest
  in
  (* A duplicate pair would drop both arms above; dedupe first. *)
  let dedup =
    List.fold_left
      (fun acc q ->
        if List.exists (Bitset.equal q) acc then acc else q :: acc)
      [] quorums
    |> List.rev
  in
  loop [] dedup

let dominates c d =
  let c = minimize c and d = minimize d in
  let covered q = List.exists (fun r -> Bitset.subset r q) c in
  List.for_all covered d
  && not
       (List.length c = List.length d
       && List.for_all (fun q -> List.exists (Bitset.equal q) d) c)

let minimal_of_avail ~n avail_mask =
  if n > 22 then
    invalid_arg "Coterie.minimal_of_avail: universe too large (n > 22)";
  let result = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    if avail_mask mask then begin
      (* Minimal iff removing any single member breaks availability. *)
      let rec minimal b =
        if b = n then true
        else if mask land (1 lsl b) <> 0 && avail_mask (mask lxor (1 lsl b))
        then false
        else minimal (b + 1)
      in
      if minimal 0 then result := Bitset.of_mask ~n mask :: !result
    end
  done;
  List.rev !result

let is_transversal quorums t =
  List.for_all (fun q -> Bitset.intersects t q) quorums

let is_non_dominated ~n avail_mask =
  if n > 30 then
    invalid_arg "Coterie.is_non_dominated: universe too large (n > 30)";
  let universe = (1 lsl n) - 1 in
  (* Check each bipartition once: masks with bit 0 clear cover every
     unordered pair {S, complement}. *)
  let rec scan mask =
    if mask > universe then true
    else if
      mask land 1 = 0
      && (not (avail_mask mask))
      && not (avail_mask (universe lxor mask))
    then false
    else scan (mask + 1)
  in
  scan 0

let transversal_counts ~n avail_mask =
  if n > 30 then
    invalid_arg "Coterie.transversal_counts: universe too large (n > 30)";
  let counts = Array.make (n + 1) 0.0 in
  (* A dead-set D is a transversal iff the live-set U \ D is
     unavailable; scan live-sets and bucket by dead cardinality. *)
  for live = 0 to (1 lsl n) - 1 do
    if not (avail_mask live) then begin
      let dead = n - Bitset.popcount live in
      counts.(dead) <- counts.(dead) +. 1.0
    end
  done;
  counts
