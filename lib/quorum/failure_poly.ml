type t = { n : int; counts : float array }

let of_fail_counts ~n counts =
  if Array.length counts <> n + 1 then
    invalid_arg "Failure_poly.of_fail_counts: need n+1 coefficients";
  { n; counts = Array.copy counts }

let n t = t.n
let fail_count t k = t.counts.(k)
let transversal_count t i = t.counts.(t.n - i)

let eval t ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Failure_poly.eval: p out of [0,1]";
  let q = 1.0 -. p in
  (* Horner-free evaluation: powers built incrementally, one pass. *)
  let qk = Array.make (t.n + 1) 1.0 in
  let pk = Array.make (t.n + 1) 1.0 in
  for i = 1 to t.n do
    qk.(i) <- qk.(i - 1) *. q;
    pk.(i) <- pk.(i - 1) *. p
  done;
  let acc = ref 0.0 in
  for k = 0 to t.n do
    acc := !acc +. (t.counts.(k) *. qk.(k) *. pk.(t.n - k))
  done;
  !acc

let availability t ~p = 1.0 -. eval t ~p

let binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let always_fails ~n =
  { n; counts = Array.init (n + 1) (fun k -> binomial n k) }

let complement_is_valid t =
  let ok = ref true in
  for k = 0 to t.n do
    let bound = binomial t.n k in
    if t.counts.(k) < -1e-9 || t.counts.(k) > bound +. 1e-9 then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>F_p over n=%d:" t.n;
  for k = 0 to t.n do
    if t.counts.(k) <> 0.0 then
      Format.fprintf ppf "@ c_%d=%.0f" k t.counts.(k)
  done;
  Format.fprintf ppf "@]"
