type t = { quorums : Bitset.t array; probs : float array }

let make quorums probs =
  if Array.length quorums <> Array.length probs then
    invalid_arg "Strategy.make: length mismatch";
  if Array.length quorums = 0 then invalid_arg "Strategy.make: empty";
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Strategy.make: negative weight")
    probs;
  let total = Array.fold_left ( +. ) 0.0 probs in
  if total <= 0.0 then invalid_arg "Strategy.make: weights sum to zero";
  { quorums; probs = Array.map (fun p -> p /. total) probs }

let uniform quorums =
  let quorums = Array.of_list quorums in
  let k = Array.length quorums in
  if k = 0 then invalid_arg "Strategy.uniform: empty";
  { quorums; probs = Array.make k (1.0 /. float_of_int k) }

let universe_size t = Bitset.capacity t.quorums.(0)

let element_loads t =
  let loads = Array.make (universe_size t) 0.0 in
  Array.iteri
    (fun j q ->
      Bitset.iter (fun i -> loads.(i) <- loads.(i) +. t.probs.(j)) q)
    t.quorums;
  loads

let system_load t = Array.fold_left max 0.0 (element_loads t)

let average_quorum_size t =
  let acc = ref 0.0 in
  Array.iteri
    (fun j q ->
      acc := !acc +. (t.probs.(j) *. float_of_int (Bitset.cardinal q)))
    t.quorums;
  !acc

let sample t rng =
  let j = Rng.pick_weighted rng ~weights:t.probs in
  t.quorums.(j)

type empirical = {
  loads : float array;
  max_load : float;
  avg_size : float;
  misses : int;
  trials : int;
}

let empirical_of_select ~n ~trials rng select =
  if trials <= 0 then invalid_arg "Strategy.empirical_of_select: trials";
  let live = Bitset.universe n in
  let hits = Array.make n 0 in
  let size_sum = ref 0 in
  let misses = ref 0 in
  let successes = ref 0 in
  for _ = 1 to trials do
    match select rng ~live with
    | None -> incr misses
    | Some q ->
        incr successes;
        size_sum := !size_sum + Bitset.cardinal q;
        Bitset.iter (fun i -> hits.(i) <- hits.(i) + 1) q
  done;
  let denom = float_of_int (max 1 !successes) in
  let loads = Array.map (fun h -> float_of_int h /. denom) hits in
  {
    loads;
    max_load = Array.fold_left max 0.0 loads;
    avg_size = float_of_int !size_sum /. denom;
    misses = !misses;
    trials;
  }
