type t = { quorums : Bitset.t array; probs : float array }

let make quorums probs =
  if Array.length quorums <> Array.length probs then
    invalid_arg "Strategy.make: length mismatch";
  if Array.length quorums = 0 then invalid_arg "Strategy.make: empty";
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Strategy.make: negative weight")
    probs;
  let total = Array.fold_left ( +. ) 0.0 probs in
  if total <= 0.0 then invalid_arg "Strategy.make: weights sum to zero";
  { quorums; probs = Array.map (fun p -> p /. total) probs }

let uniform quorums =
  let quorums = Array.of_list quorums in
  let k = Array.length quorums in
  if k = 0 then invalid_arg "Strategy.uniform: empty";
  { quorums; probs = Array.make k (1.0 /. float_of_int k) }

let universe_size t = Bitset.capacity t.quorums.(0)

let element_loads t =
  let loads = Array.make (universe_size t) 0.0 in
  Array.iteri
    (fun j q ->
      Bitset.iter (fun i -> loads.(i) <- loads.(i) +. t.probs.(j)) q)
    t.quorums;
  loads

let system_load t = Array.fold_left max 0.0 (element_loads t)

let average_quorum_size t =
  let acc = ref 0.0 in
  Array.iteri
    (fun j q ->
      acc := !acc +. (t.probs.(j) *. float_of_int (Bitset.cardinal q)))
    t.quorums;
  !acc

let sample t rng =
  let j = Rng.pick_weighted rng ~weights:t.probs in
  t.quorums.(j)

type empirical = {
  loads : float array;
  max_load : float;
  avg_size : float;
  misses : int;
  trials : int;
}

(* One chunk of the empirical estimate: all counters are integers, so
   merging chunk results in index order is exact regardless of how the
   chunks were scheduled. *)
type chunk_counts = {
  hits : int array;
  size_sum : int;
  miss_count : int;
  success_count : int;
}

let empirical_chunk ~n ~trials rng live select =
  let hits = Array.make n 0 in
  let size_sum = ref 0 in
  let misses = ref 0 in
  let successes = ref 0 in
  for _ = 1 to trials do
    match select rng ~live with
    | None -> incr misses
    | Some q ->
        incr successes;
        size_sum := !size_sum + Bitset.cardinal q;
        Bitset.iter (fun i -> hits.(i) <- hits.(i) + 1) q
  done;
  {
    hits;
    size_sum = !size_sum;
    miss_count = !misses;
    success_count = !successes;
  }

(* Fixed chunk count for the parallel path: it must depend only on the
   problem, never on the pool's domain count, so the split-off RNG
   streams (and hence the result) are identical for any [jobs]. *)
let empirical_chunks = 64

let empirical_of_select ?pool ?live ~n ~trials rng select =
  if trials <= 0 then invalid_arg "Strategy.empirical_of_select: trials";
  let live =
    match live with
    | None -> Bitset.universe n
    | Some l ->
        if Bitset.capacity l <> n then
          invalid_arg "Strategy.empirical_of_select: live universe mismatch";
        l
  in
  let totals =
    match pool with
    | None -> empirical_chunk ~n ~trials rng live select
    | Some pool ->
        (* Split one RNG stream per chunk up front, in chunk order, so
           the streams do not depend on execution interleaving. *)
        let rngs = Array.init empirical_chunks (fun _ -> Rng.split rng) in
        let share c =
          (trials / empirical_chunks)
          + (if c < trials mod empirical_chunks then 1 else 0)
        in
        let parts =
          Exec.Pool.map_chunks pool ~chunks:empirical_chunks (fun c ->
              empirical_chunk ~n ~trials:(share c) rngs.(c) live select)
        in
        Array.fold_left
          (fun acc part ->
            Array.iteri (fun i h -> acc.hits.(i) <- acc.hits.(i) + h) part.hits;
            {
              acc with
              size_sum = acc.size_sum + part.size_sum;
              miss_count = acc.miss_count + part.miss_count;
              success_count = acc.success_count + part.success_count;
            })
          {
            hits = Array.make n 0;
            size_sum = 0;
            miss_count = 0;
            success_count = 0;
          }
          parts
  in
  let denom = float_of_int (max 1 totals.success_count) in
  let loads = Array.map (fun h -> float_of_int h /. denom) totals.hits in
  {
    loads;
    max_load = Array.fold_left max 0.0 loads;
    avg_size = float_of_int totals.size_sum /. denom;
    misses = totals.miss_count;
    trials;
  }
