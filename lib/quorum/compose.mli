(** Coterie composition (Neilsen & Mizuno's join and its iterated
    form).

    The hierarchical constructions of the paper are compositions: HQS
    is majority-of-majorities, the hierarchical grid replaces each grid
    cell by a sub-grid, the hierarchical triangle splices sub-triangles
    into a triangle.  This module provides the underlying algebra on
    explicit coteries:

    - {!join}: replace one element [x] of an outer coterie by an entire
      inner coterie — quorums avoiding [x] survive unchanged, quorums
      through [x] take any inner quorum in its place.  Joins preserve
      both the intersection property and non-domination.
    - {!compose}: replace {e every} element by its own inner coterie —
      one level of hierarchical construction.

    Universe layout: for {!join}, the outer elements keep their ids
    except [x], whose slot is deleted, and the inner universe is
    appended ([outer ids below x] @ [outer ids above x, shifted down]
    @ [inner ids at offset n1 - 1]).  For {!compose}, inner universes
    are laid out in outer-element order. *)

val join : at:int -> n1:int -> Bitset.t list -> n2:int -> Bitset.t list ->
  int * Bitset.t list
(** [join ~at ~n1 outer ~n2 inner] returns [(n, quorums)] with
    [n = n1 - 1 + n2]. *)

val compose :
  n1:int -> Bitset.t list -> (int -> int * Bitset.t list) ->
  int * Bitset.t list
(** [compose ~n1 outer inner_of] replaces outer element [e] by the
    coterie [inner_of e]; returns the composed universe size and
    quorums (each outer quorum contributes the product of its members'
    inner quorums). *)

val compose_uniform :
  n1:int -> Bitset.t list -> n2:int -> Bitset.t list -> int * Bitset.t list
(** [compose] with the same inner coterie everywhere. *)
