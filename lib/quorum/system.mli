(** The quorum-system abstraction.

    A quorum system over a universe of [n] processes (Definition 3.1) is
    represented behaviourally: the one operation every analysis needs is
    the monotone availability predicate "does this live-set contain a
    quorum?" (Definition 3.2 reads failure as the complement of this
    event).  Constructions additionally expose, when feasible, an
    explicit list of minimal quorums (for load LPs and intersection
    tests) and a quorum-selection strategy (for protocols and
    strategy-induced load, Definitions 3.3/3.4). *)

type t = {
  name : string;  (** Human-readable identifier, e.g. ["h-triang(15)"]. *)
  n : int;  (** Universe size. *)
  avail : Bitset.t -> bool;
      (** [avail live] is true when [live] contains some quorum. *)
  avail_mask : (int -> bool) option;
      (** Allocation-free fast path over raw masks ([n <= 62]); used by
          the exact 2^n enumeration. *)
  min_quorums : Bitset.t list Lazy.t option;
      (** Minimal quorums (the coterie), when enumerable. *)
  select : Rng.t -> live:Bitset.t -> Bitset.t option;
      (** Pick a quorum of live processes, or [None] if unavailable.
          Implements the construction's load-balancing strategy. *)
}

val make :
  name:string ->
  n:int ->
  avail:(Bitset.t -> bool) ->
  ?avail_mask:(int -> bool) ->
  ?min_quorums:Bitset.t list Lazy.t ->
  ?select:(Rng.t -> live:Bitset.t -> Bitset.t option) ->
  unit ->
  t
(** Build a system.  When [select] is omitted it defaults to a uniform
    choice among the live minimal quorums (requires [min_quorums]);
    when that is also missing, selection raises. *)

val of_quorums : name:string -> n:int -> Bitset.t list -> t
(** An explicit system from its quorum list.  The list is minimized
    (dominated quorums dropped); availability tests subset-containment
    against precomputed masks when [n <= 62]. *)

val avail_mask_exn : t -> int -> bool
(** The mask fast-path, derived from [avail] through a reused scratch
    bitset when the construction did not provide one.  Requires
    [n <= 62].  The scratch is domain-local, so the derived closure is
    safe to share across the domains of a parallel scan (each domain
    gets its own scratch; see [Exec.Pool]). *)

val quorums : t -> (Bitset.t list, string) result
(** Force [min_quorums]; [Error] when the construction does not
    enumerate its quorums.  Never raises. *)

val quorums_exn : t -> Bitset.t list
(** CLI/test convenience over {!quorums}; raises [Invalid_argument]
    when the construction does not enumerate.  Library, bench and
    example code should match on {!quorums} instead. *)

val prepare : t -> unit
(** Force the lazy quorum list (a no-op when absent) so the system can
    be shared across domains: concurrently forcing a [lazy] from two
    domains raises [CamlinternalLazy.Undefined], so call [prepare]
    before handing [select] or [quorum_of_live] to a parallel driver.
    Beware: for large constructions the quorum list may be huge —
    only prepare systems whose quorums you could afford to enumerate
    anyway (structural [select]s, e.g. h-triang's, never force it). *)

val rename : t -> string -> t

val embed : ?name:string -> universe:int -> place:int array -> t -> t
(** [embed ~universe ~place base] re-expresses [base] over a larger
    universe: logical element [l] lives at physical process
    [place.(l)] (all distinct, [< universe]); processes outside the
    image are permanent spares that never appear in a quorum.
    Availability, selection (including its RNG draws) and the minimal
    quorums are the base system's behaviour translated through the
    placement — this is the placement machinery behind
    {!Protocols.Membership} and {!Protocols.Shard_router}.  The
    default name is ["<base>/<universe>"].  Raises [Invalid_argument]
    on a malformed placement. *)

val quorum_of_live : t -> Bitset.t -> Bitset.t option
(** Deterministically find a quorum within [live] using the quorum
    list; [None] when unavailable. *)

val shrink_select :
  (Bitset.t -> bool) -> Rng.t -> live:Bitset.t -> Bitset.t option
(** Generic selection for constructions with no cheap structural
    strategy (Paths, Y): start from the live set and discard elements
    in random order while availability is preserved, yielding a
    uniform-ish random {e minimal} quorum contained in [live]. *)

val pp : Format.formatter -> t -> unit
