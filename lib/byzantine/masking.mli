(** Byzantine quorum systems (Malkhi & Reiter 1998; Malkhi, Reiter &
    Wool 2000 — reference [12] of the paper).

    The paper's related work closes with: "we believe that the ideas
    proposed in this paper can also be adapted and used in Byzantine
    quorum systems."  This module provides that adaptation layer:

    - property checks: an [f]-{e dissemination} system needs any two
      quorums to share at least [f+1] processes (a correct one survives
      in the intersection); an [f]-{e masking} system needs [2f+1]
      (correct processes outnumber Byzantine ones in the intersection),
      plus availability under [f] crashes;
    - {!majority_masking}: the threshold construction (quorums of
      [ceil((n + 2f + 1) / 2)] processes, needs [n >= 4f + 1]);
    - {!boost}: the generic lift of {e any} crash-tolerant coterie —
      in particular the paper's h-triang and h-T-grid — to intersection
      level [k] by the replicated-groups construction: the universe is
      [k] disjoint copies of the base universe and a quorum takes one
      base quorum {e in every copy}.  Two quorums then intersect inside
      each copy, i.e. in at least [k] processes; with [k = 2f + 1] this
      masks [f] Byzantine processes while inheriting the base
      construction's size/load scaling (quorums of [k * q] out of
      [k * n]). *)

val min_pairwise_intersection : Quorum.Bitset.t list -> int
(** Smallest [|Q1 inter Q2|] over distinct quorum pairs (and over a
    quorum with itself when the list is a singleton). *)

val is_dissemination : f:int -> Quorum.Bitset.t list -> bool
(** Pairwise intersections of at least [f + 1]. *)

val is_masking : f:int -> Quorum.Bitset.t list -> bool
(** Pairwise intersections of at least [2f + 1]. *)

val tolerable_f : Quorum.Bitset.t list -> int
(** Largest [f] for which the system is [f]-masking (possibly 0,
    meaning it only handles crash faults). *)

val crash_available : f:int -> Quorum.System.t -> bool
(** Availability side: every crash pattern of [f] processes leaves some
    quorum fully live.  Exhaustive over the C(n, f) patterns; intended
    for the small universes of the paper's tables. *)

val majority_masking : n:int -> f:int -> Quorum.System.t
(** Threshold quorums of size [ceil((n + 2f + 1) / 2)].  Raises if
    [n < 4f + 1]. *)

val boost : k:int -> Quorum.System.t -> Quorum.System.t
(** The replicated-groups system over [k * n] processes (copy [i]
    occupies ids [i*n .. (i+1)*n - 1]): available when every copy's
    slice of the live set is available for the base system; selection
    unions one base selection per copy.  Minimal quorums are
    enumerated lazily when the product of the base's quorum count to
    the k-th power stays small. *)
