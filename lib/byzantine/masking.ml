module Bitset = Quorum.Bitset
module System = Quorum.System

let min_pairwise_intersection quorums =
  match quorums with
  | [] -> invalid_arg "Masking: empty quorum list"
  | [ q ] -> Bitset.cardinal q
  | _ ->
      let rec scan best = function
        | [] -> best
        | q :: rest ->
            let best =
              List.fold_left
                (fun acc r ->
                  min acc (Bitset.cardinal (Bitset.inter q r)))
                best rest
            in
            scan best rest
      in
      scan max_int quorums

let is_dissemination ~f quorums =
  min_pairwise_intersection quorums >= f + 1

let is_masking ~f quorums =
  min_pairwise_intersection quorums >= (2 * f) + 1

let tolerable_f quorums = (min_pairwise_intersection quorums - 1) / 2

let crash_available ~f (s : System.t) =
  if f < 0 then invalid_arg "Masking.crash_available: f < 0";
  if f > s.n then false
  else begin
    let avail = System.avail_mask_exn s in
    let universe = (1 lsl s.n) - 1 in
    let ok = ref true in
    Quorum.Combinat.iter_ksubset_masks ~n:s.n ~k:f (fun dead ->
        if !ok && not (avail (universe lxor dead)) then ok := false);
    !ok
  end

let majority_masking ~n ~f =
  if f < 0 then invalid_arg "Masking.majority_masking: f < 0";
  if n < (4 * f) + 1 then
    invalid_arg "Masking.majority_masking: needs n >= 4f + 1";
  let threshold = (n + (2 * f) + 1 + 1) / 2 in
  let avail live = Bitset.cardinal live >= threshold in
  let avail_mask =
    if n <= Bitset.bits_per_word then
      Some (fun live -> Bitset.popcount live >= threshold)
    else None
  in
  let min_quorums =
    if n <= 22 && Quorum.Combinat.choose_count n threshold <= 500_000 then
      Some
        (lazy
          (let acc = ref [] in
           Quorum.Combinat.iter_ksubset_masks ~n ~k:threshold (fun m ->
               acc := Bitset.of_mask ~n m :: !acc);
           List.rev !acc))
    else None
  in
  (* Selection: a random minimal-size subset of the live processes. *)
  let select rng ~live =
    let members = Array.of_list (Bitset.to_list live) in
    if Array.length members < threshold then None
    else begin
      Quorum.Rng.shuffle_in_place rng members;
      let quorum = Bitset.create n in
      for i = 0 to threshold - 1 do
        Bitset.add quorum members.(i)
      done;
      Some quorum
    end
  in
  System.make
    ~name:(Printf.sprintf "masking(%d,f=%d)" n f)
    ~n ~avail ?avail_mask ?min_quorums ~select ()

let boost ~k (base : System.t) =
  if k <= 0 then invalid_arg "Masking.boost: k <= 0";
  let bn = base.System.n in
  let n = k * bn in
  (* Copy [i]''s slice of a live set, as a base-universe bitset. *)
  let slice live i =
    let s = Bitset.create bn in
    for e = 0 to bn - 1 do
      if Bitset.mem live ((i * bn) + e) then Bitset.add s e
    done;
    s
  in
  let avail live =
    let rec all i = i = k || (base.System.avail (slice live i) && all (i + 1)) in
    all 0
  in
  let avail_mask =
    if n <= Bitset.bits_per_word && bn <= Bitset.bits_per_word then begin
      let base_mask = System.avail_mask_exn base in
      let slice_mask = (1 lsl bn) - 1 in
      Some
        (fun live ->
          let rec all i =
            i = k || (base_mask ((live lsr (i * bn)) land slice_mask) && all (i + 1))
          in
          all 0)
    end
    else None
  in
  let min_quorums =
    match base.System.min_quorums with
    | Some lazy_base ->
        Some
          (lazy
            (let base_quorums = Lazy.force lazy_base in
             let count = List.length base_quorums in
             let rec power acc i = if i = 0 then acc else power (acc * count) (i - 1) in
             if power 1 k > 200_000 then
               invalid_arg "Masking.boost: quorum product too large to list"
             else begin
               let copies =
                 List.init k (fun i ->
                     List.map
                       (fun q ->
                         List.map (fun e -> (i * bn) + e) (Bitset.to_list q))
                       base_quorums)
               in
               Quorum.Combinat.product copies
               |> List.map (fun parts -> Bitset.of_list n (List.concat parts))
             end))
    | None -> None
  in
  let select rng ~live =
    let rec gather i acc =
      if i = k then Some acc
      else
        match base.System.select rng ~live:(slice live i) with
        | None -> None
        | Some q ->
            gather (i + 1)
              (Bitset.fold (fun e l -> ((i * bn) + e) :: l) q acc)
    in
    match gather 0 [] with
    | None -> None
    | Some elements -> Some (Bitset.of_list n elements)
  in
  System.make
    ~name:(Printf.sprintf "boost(%d,%s)" k base.name)
    ~n ~avail ?avail_mask ?min_quorums ~select ()
