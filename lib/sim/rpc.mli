(** Ack-based reliable delivery on top of {!Engine} / {!Network}.

    [Engine.send] is fire-and-forget: messages die to loss, bursts and
    partitions.  [Rpc.send] gives at-most-once delivery with bounded
    retransmission: each payload gets a sequence number, the receiver
    acks and suppresses duplicates, and the sender retransmits on a
    timeout with capped {e decorrelated-jitter} backoff until acked or
    [max_attempts] transmissions have been spent — at which point the
    message is {e dead-lettered} and the (optional) dead-letter handler
    fires, letting the protocol treat the peer as unreachable and
    degrade gracefully (e.g. pick a different quorum).

    The module is polymorphic in both the protocol payload ['a] and the
    engine wire type ['wire]: protocols embed [Rpc.msg] into their wire
    variant and pass the injection as [wrap].  Timer tags [<= -2] are
    reserved for rpc retransmissions ([-1] belongs to
    {!Failure_detector}; protocol tags must be [>= 0]): route
    [on_timer] through {!on_timer} first and fall through to protocol
    timers only when it returns [false].

    Crash semantics: a crashed sender forgets its unacked sends (call
    {!on_crash} from the engine's crash handler); receiver-side dedup
    state survives crashes, modelling sequence numbers on stable
    storage — so a message is never handed to [deliver] twice, even
    across crash/recovery cycles. *)

type 'a msg = Data of { seq : int; payload : 'a } | Ack of { seq : int }

type ('a, 'wire) t

val create :
  ?timeout:float ->
  ?backoff:float ->
  ?jitter:float ->
  ?cap:float ->
  ?max_attempts:int ->
  wrap:('a msg -> 'wire) ->
  unit ->
  ('a, 'wire) t
(** [timeout] (default 2.0) is the initial retransmission timeout.
    Retry delays use decorrelated jitter: each is drawn uniformly from
    [\[timeout, 3 * previous\]] and clamped to [cap] (default
    [32 * timeout]), so retrying senders de-synchronize instead of
    producing lockstep retransmit storms.  All draws come from the
    engine's seeded RNG — fixed-seed runs stay deterministic.  With
    [jitter = 0] (default 0.3) delays fall back to plain capped
    exponential backoff ([previous * backoff], [backoff] default 1.6,
    must be >= 1) with no randomness at all.  [max_attempts] (default
    6) counts total transmissions including the first. *)

val next_backoff : ('a, 'wire) t -> Quorum.Rng.t -> prev:float -> float
(** The backoff schedule, exposed for property tests: the delay that
    follows a retry whose delay was [prev] — a decorrelated-jitter draw
    in [\[timeout, min cap (3 * prev)\]], or [min cap (prev * backoff)]
    when [jitter = 0]. *)

val bind : ('a, 'wire) t -> 'wire Engine.t -> unit

val send : ('a, 'wire) t -> src:int -> dst:int -> 'a -> unit
(** Reliable send; retransmits until acked, dead-letters after
    [max_attempts]. *)

val on_message :
  ('a, 'wire) t ->
  node:int ->
  src:int ->
  'a msg ->
  deliver:(src:int -> 'a -> unit) ->
  unit
(** Feed a received rpc envelope in; [deliver] is invoked exactly once
    per distinct payload (duplicates are suppressed and re-acked). *)

val on_timer : ('a, 'wire) t -> node:int -> tag:int -> bool
(** Handle a retransmission timer.  Returns [false] when [tag] is not
    an rpc tag (the protocol should then handle it itself). *)

val on_crash : ('a, 'wire) t -> node:int -> unit
(** Drop the crashed node's unacked sends (volatile sender state). *)

val set_dead_letter_handler :
  ('a, 'wire) t -> (src:int -> dst:int -> 'a -> unit) -> unit

val retransmissions : ('a, 'wire) t -> int
val duplicates_suppressed : ('a, 'wire) t -> int
val dead_letters : ('a, 'wire) t -> int
val inflight_count : ('a, 'wire) t -> int
