module Bitset = Quorum.Bitset
module Metrics = Obs.Metrics

let fd_tag = -1
let eps = 1e-9

type instruments = {
  f_beats : Metrics.counter;
  f_suspected : Metrics.gauge;
  f_false : Metrics.counter;
}

type 'wire t = {
  period : float;
  timeout : float;
  n : int;
  beat : 'wire;
  mutable engine : 'wire Engine.t option;
  mutable ins : instruments option;
  last_heard : float array array;
      (** [last_heard.(i).(j)]: when [i] last heard from [j]. *)
  next_due : float array;
      (** the one legitimate heartbeat chain per node; stale chains
          (pre-crash timers still in the queue) are dropped by
          comparing fire time against this. *)
}

let create ?(period = 1.0) ?(timeout = 5.0) ~nodes ~beat () =
  if period <= 0.0 then invalid_arg "Failure_detector.create: period";
  if timeout <= period then
    invalid_arg "Failure_detector.create: timeout must exceed period";
  if nodes <= 0 then invalid_arg "Failure_detector.create: nodes";
  {
    period;
    timeout;
    n = nodes;
    beat;
    engine = None;
    ins = None;
    last_heard = Array.make_matrix nodes nodes 0.0;
    next_due = Array.make nodes infinity;
  }

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Failure_detector: bind the engine first"

let bind t engine =
  if Engine.nodes engine <> t.n then
    invalid_arg "Failure_detector.bind: engine size mismatch";
  t.engine <- Some engine;
  let m = Obs.metrics (Engine.obs engine) in
  t.ins <-
    Some
      {
        f_beats = Metrics.counter m ~help:"heartbeats sent" "fd.beats_sent";
        f_suspected =
          Metrics.gauge m
            ~help:"peers currently suspected, sampled each beat period"
            "fd.suspected";
        f_false =
          Metrics.counter m
            ~help:"suspicion samples where the suspect was actually live"
            "fd.false_suspicions";
      }

let period t = t.period
let timeout t = t.timeout

let schedule_beat t ~node ~delay =
  let engine = engine_exn t in
  t.next_due.(node) <- Engine.now engine +. delay;
  Engine.set_timer engine ~background:true ~node ~delay ~tag:fd_tag

let start t =
  let engine = engine_exn t in
  let now = Engine.now engine in
  for i = 0 to t.n - 1 do
    (* Everyone starts presumed live. *)
    for j = 0 to t.n - 1 do
      t.last_heard.(i).(j) <- now
    done;
    (* Stagger first beats so the whole system does not pulse at once. *)
    schedule_beat t ~node:i
      ~delay:(t.period *. (0.25 +. (0.75 *. float_of_int i /. float_of_int t.n)))
  done

let suspects t ~node j =
  if j = node then false
  else begin
    let engine = engine_exn t in
    Engine.now engine -. t.last_heard.(node).(j) > t.timeout
  end

(* Detector accuracy, sampled once per beat period at the observing
   node: how many peers it suspects, and how many of those are in fact
   live (a false suspicion from the simulation's omniscient view). *)
let sample_accuracy t ~node engine =
  match t.ins with
  | None -> ()
  | Some ins ->
      let suspected = ref 0 in
      for j = 0 to t.n - 1 do
        if suspects t ~node j then begin
          incr suspected;
          if Engine.is_live engine j then Metrics.incr ins.f_false
        end
      done;
      Metrics.set ins.f_suspected
        ~labels:[ ("node", string_of_int node) ]
        (float_of_int !suspected)

let on_timer t ~node ~tag =
  if tag <> fd_tag then false
  else begin
    let engine = engine_exn t in
    let now = Engine.now engine in
    (* Drop duplicate chains left over from crash/recovery races. *)
    if abs_float (now -. t.next_due.(node)) <= eps then begin
      for dst = 0 to t.n - 1 do
        if dst <> node then begin
          (match t.ins with
          | Some ins -> Metrics.incr ins.f_beats
          | None -> ());
          Engine.send ~background:true engine ~src:node ~dst t.beat
        end
      done;
      sample_accuracy t ~node engine;
      schedule_beat t ~node ~delay:t.period
    end;
    true
  end

let heard t ~node ~from =
  let engine = engine_exn t in
  t.last_heard.(node).(from) <- Engine.now engine

let on_recover t ~node =
  let engine = engine_exn t in
  let now = Engine.now engine in
  (* Fresh start: the recovered node presumes everyone live again and
     resumes its own heartbeat chain. *)
  for j = 0 to t.n - 1 do
    t.last_heard.(node).(j) <- now
  done;
  schedule_beat t ~node ~delay:(t.period *. 0.5)

let view t ~node =
  let s = Bitset.create t.n in
  for j = 0 to t.n - 1 do
    if not (suspects t ~node j) then Bitset.add s j
  done;
  s

let suspected_count t ~node =
  let c = ref 0 in
  for j = 0 to t.n - 1 do
    if suspects t ~node j then incr c
  done;
  !c
