module Bitset = Quorum.Bitset
module Metrics = Obs.Metrics

let fd_tag = -1
let eps = 1e-9

(* log10 e: the accrual suspicion level of an exponential inter-arrival
   model, phi = -log10 P(next beat still pending) = log10(e) * elapsed
   / mean_interarrival. *)
let log10_e = 0.4342944819032518

type mode =
  | Fixed_timeout of float
  | Accrual of { threshold : float; window : int; min_samples : int }

type instruments = {
  f_beats : Metrics.counter;
  f_suspected : Metrics.gauge;
  f_false : Metrics.counter;
  f_fp : Metrics.counter;
  f_missed : Metrics.counter;
  f_trans : Metrics.counter;
  f_detect : Metrics.histogram;
}

type stats = {
  detections : int;
  mean_detect : float;
  max_detect : float;
  false_positives : int;
  missed : int;
  transitions : int;
}

type 'wire t = {
  period : float;
  timeout : float;
  mode : mode;
  n : int;
  beat : 'wire;
  mutable engine : 'wire Engine.t option;
  mutable ins : instruments option;
  last_heard : float array array;
      (** [last_heard.(i).(j)]: when [i] last heard from [j]. *)
  next_due : float array;
      (** the one legitimate heartbeat chain per node; stale chains
          (pre-crash timers still in the queue) are dropped by
          comparing fire time against this. *)
  (* Accrual state: per (observer, peer) ring of recent inter-arrival
     times with a running sum, so the mean is O(1) per suspicion
     query.  Allocated only in [Accrual] mode. *)
  ring : float array array array;
  ring_len : int array array;
  ring_pos : int array array;
  ring_sum : float array array;
  (* Oracle-side accuracy bookkeeping, sampled at beat granularity in
     [sample_accuracy]; pure observation — touches no RNG, schedules
     no events. *)
  was_live : bool array;
  down_since : float array;
  prev_suspected : bool array array;
  s_detections : int array;
  s_detect_sum : float array;
  s_detect_max : float array;
  s_fp : int array;
  s_missed : int array;
  s_trans : int array;
}

let create ?(period = 1.0) ?(timeout = 5.0) ?mode ~nodes ~beat () =
  if period <= 0.0 then invalid_arg "Failure_detector.create: period";
  if nodes <= 0 then invalid_arg "Failure_detector.create: nodes";
  let mode = Option.value mode ~default:(Fixed_timeout timeout) in
  let timeout =
    match mode with Fixed_timeout x -> x | Accrual _ -> timeout
  in
  if timeout <= period then
    invalid_arg "Failure_detector.create: timeout must exceed period";
  let window =
    match mode with
    | Fixed_timeout _ -> 0
    | Accrual { threshold; window; min_samples } ->
        if threshold <= 0.0 then
          invalid_arg "Failure_detector.create: accrual threshold";
        if window < 2 then invalid_arg "Failure_detector.create: accrual window";
        if min_samples < 1 || min_samples > window then
          invalid_arg "Failure_detector.create: accrual min_samples";
        window
  in
  {
    period;
    timeout;
    mode;
    n = nodes;
    beat;
    engine = None;
    ins = None;
    last_heard = Array.make_matrix nodes nodes 0.0;
    next_due = Array.make nodes infinity;
    ring =
      (if window = 0 then [||]
       else Array.init nodes (fun _ -> Array.make_matrix nodes window 0.0));
    ring_len = Array.make_matrix nodes nodes 0;
    ring_pos = Array.make_matrix nodes nodes 0;
    ring_sum = Array.make_matrix nodes nodes 0.0;
    was_live = Array.make nodes true;
    down_since = Array.make nodes nan;
    prev_suspected = Array.make_matrix nodes nodes false;
    s_detections = Array.make nodes 0;
    s_detect_sum = Array.make nodes 0.0;
    s_detect_max = Array.make nodes 0.0;
    s_fp = Array.make nodes 0;
    s_missed = Array.make nodes 0;
    s_trans = Array.make nodes 0;
  }

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Failure_detector: bind the engine first"

let bind t engine =
  if Engine.nodes engine <> t.n then
    invalid_arg "Failure_detector.bind: engine size mismatch";
  t.engine <- Some engine;
  let m = Obs.metrics (Engine.obs engine) in
  t.ins <-
    Some
      {
        f_beats = Metrics.counter m ~help:"heartbeats sent" "fd.beats_sent";
        f_suspected =
          Metrics.gauge m
            ~help:"peers currently suspected, sampled each beat period"
            "fd.suspected";
        f_false =
          Metrics.counter m
            ~help:"suspicion samples where the suspect was actually live"
            "fd.false_suspicions";
        f_fp =
          Metrics.counter m
            ~help:"suspicion onsets whose target was actually live"
            "fd.false_positives";
        f_missed =
          Metrics.counter m
            ~help:
              "beat samples where a peer dead beyond timeout+period was \
               still unsuspected"
            "fd.missed_suspicions";
        f_trans =
          Metrics.counter m ~help:"suspicion state changes (either way)"
            "fd.transitions";
        f_detect =
          Metrics.histogram m
            ~help:"crash to first suspicion, per (observer, peer)"
            "fd.detection_latency";
      }

let period t = t.period
let timeout t = t.timeout
let mode t = t.mode

let schedule_beat t ~node ~delay =
  let engine = engine_exn t in
  t.next_due.(node) <- Engine.now engine +. delay;
  Engine.set_timer engine ~background:true ~node ~delay ~tag:fd_tag

let start t =
  let engine = engine_exn t in
  let now = Engine.now engine in
  for i = 0 to t.n - 1 do
    (* Everyone starts presumed live. *)
    for j = 0 to t.n - 1 do
      t.last_heard.(i).(j) <- now
    done;
    (* Stagger first beats so the whole system does not pulse at once. *)
    schedule_beat t ~node:i
      ~delay:(t.period *. (0.25 +. (0.75 *. float_of_int i /. float_of_int t.n)))
  done

let mean_interarrival t ~node j =
  let len = t.ring_len.(node).(j) in
  if len = 0 then 0.0 else t.ring_sum.(node).(j) /. float_of_int len

let suspicion t ~node j =
  if j = node then 0.0
  else begin
    let engine = engine_exn t in
    let elapsed = Engine.now engine -. t.last_heard.(node).(j) in
    match t.mode with
    | Fixed_timeout timeout -> elapsed /. timeout
    | Accrual { threshold; min_samples; _ } ->
        if t.ring_len.(node).(j) < min_samples then elapsed /. t.timeout
        else
          let mean = mean_interarrival t ~node j in
          if mean <= 0.0 then elapsed /. t.timeout
          else log10_e *. elapsed /. mean /. threshold
  end

let suspects t ~node j =
  if j = node then false
  else begin
    let engine = engine_exn t in
    let elapsed = Engine.now engine -. t.last_heard.(node).(j) in
    match t.mode with
    | Fixed_timeout timeout -> elapsed > timeout
    | Accrual { threshold; min_samples; _ } ->
        if t.ring_len.(node).(j) < min_samples then elapsed > t.timeout
        else
          let mean = mean_interarrival t ~node j in
          if mean <= 0.0 then elapsed > t.timeout
          else log10_e *. elapsed /. mean >= threshold
  end

(* Detector accuracy, sampled once per beat period at the observing
   node, against the simulation's omniscient oracle: suspected-peer
   gauge, per-sample false suspicions (historical), plus
   transition-based false positives, detection latency (crash -> first
   suspicion) and missed-detection samples.  The oracle's crash clock
   [down_since] is itself advanced at beat granularity — the first
   sampler after a crash stamps it — so latencies are accurate to
   within one beat period; good enough for the detection-time vs
   accuracy tradeoffs the bench sweeps. *)
let sample_accuracy t ~node engine =
  let now = Engine.now engine in
  (* Advance the oracle's global liveness clock. *)
  for j = 0 to t.n - 1 do
    let live = Engine.is_live engine j in
    if live && not t.was_live.(j) then begin
      t.was_live.(j) <- true;
      t.down_since.(j) <- nan
    end
    else if (not live) && t.was_live.(j) then begin
      t.was_live.(j) <- false;
      t.down_since.(j) <- now
    end
  done;
  let suspected = ref 0 in
  for j = 0 to t.n - 1 do
    if j <> node then begin
      let live = Engine.is_live engine j in
      let sus = suspects t ~node j in
      if sus then begin
        incr suspected;
        if live then
          match t.ins with
          | Some ins -> Metrics.incr ins.f_false
          | None -> ()
      end;
      if sus <> t.prev_suspected.(node).(j) then begin
        t.prev_suspected.(node).(j) <- sus;
        t.s_trans.(node) <- t.s_trans.(node) + 1;
        (match t.ins with
        | Some ins -> Metrics.incr ins.f_trans
        | None -> ());
        if sus then
          if live then begin
            t.s_fp.(node) <- t.s_fp.(node) + 1;
            match t.ins with
            | Some ins -> Metrics.incr ins.f_fp
            | None -> ()
          end
          else begin
            let since = t.down_since.(j) in
            if Float.is_nan since then ()
            else begin
              let lat = now -. since in
              t.s_detections.(node) <- t.s_detections.(node) + 1;
              t.s_detect_sum.(node) <- t.s_detect_sum.(node) +. lat;
              if lat > t.s_detect_max.(node) then
                t.s_detect_max.(node) <- lat;
              match t.ins with
              | Some ins -> Metrics.observe ins.f_detect lat
              | None -> ()
            end
          end
      end;
      (* Missed detection: the peer has been dead for longer than the
         detector's own completeness bound yet is still trusted. *)
      if
        (not sus) && (not live)
        && (not (Float.is_nan t.down_since.(j)))
        && now -. t.down_since.(j) > t.timeout +. t.period
      then begin
        t.s_missed.(node) <- t.s_missed.(node) + 1;
        match t.ins with
        | Some ins -> Metrics.incr ins.f_missed
        | None -> ()
      end
    end
  done;
  match t.ins with
  | None -> ()
  | Some ins ->
      Metrics.set ins.f_suspected
        ~labels:[ ("node", string_of_int node) ]
        (float_of_int !suspected)

let on_timer t ~node ~tag =
  if tag <> fd_tag then false
  else begin
    let engine = engine_exn t in
    let now = Engine.now engine in
    (* Drop duplicate chains left over from crash/recovery races. *)
    if abs_float (now -. t.next_due.(node)) <= eps then begin
      for dst = 0 to t.n - 1 do
        if dst <> node then begin
          (match t.ins with
          | Some ins -> Metrics.incr ins.f_beats
          | None -> ());
          Engine.send ~background:true engine ~src:node ~dst t.beat
        end
      done;
      sample_accuracy t ~node engine;
      schedule_beat t ~node ~delay:t.period
    end;
    true
  end

let heard t ~node ~from =
  let engine = engine_exn t in
  let now = Engine.now engine in
  (match t.mode with
  | Fixed_timeout _ -> ()
  | Accrual { window; _ } ->
      let interval = now -. t.last_heard.(node).(from) in
      (* Record the inter-arrival, skipping silences past the fallback
         timeout: those are failures (crash, cut, long gray window),
         not latency variation, and folding them into the mean would
         blunt detection of the *next* failure. *)
      if interval > 0.0 && interval <= t.timeout then begin
        let ring = t.ring.(node).(from) in
        let len = t.ring_len.(node).(from) in
        let pos = t.ring_pos.(node).(from) in
        if len < window then t.ring_len.(node).(from) <- len + 1
        else t.ring_sum.(node).(from) <- t.ring_sum.(node).(from) -. ring.(pos);
        ring.(pos) <- interval;
        t.ring_sum.(node).(from) <- t.ring_sum.(node).(from) +. interval;
        t.ring_pos.(node).(from) <- (pos + 1) mod window
      end);
  t.last_heard.(node).(from) <- now

let on_recover t ~node =
  let engine = engine_exn t in
  let now = Engine.now engine in
  (* Fresh start: the recovered node presumes everyone live again and
     resumes its own heartbeat chain. *)
  for j = 0 to t.n - 1 do
    t.last_heard.(node).(j) <- now;
    t.prev_suspected.(node).(j) <- false
  done;
  schedule_beat t ~node ~delay:(t.period *. 0.5)

let view t ~node =
  let s = Bitset.create t.n in
  for j = 0 to t.n - 1 do
    if not (suspects t ~node j) then Bitset.add s j
  done;
  s

let suspected_count t ~node =
  let c = ref 0 in
  for j = 0 to t.n - 1 do
    if suspects t ~node j then incr c
  done;
  !c

let stats t ~node =
  let d = t.s_detections.(node) in
  {
    detections = d;
    mean_detect =
      (if d = 0 then 0.0 else t.s_detect_sum.(node) /. float_of_int d);
    max_detect = t.s_detect_max.(node);
    false_positives = t.s_fp.(node);
    missed = t.s_missed.(node);
    transitions = t.s_trans.(node);
  }
