(** Per-process durable storage for the simulated protocols: typed
    key/value cells plus an append-only log, with modeled fsync latency
    and crash fault injection.

    A write (cell {!set} or log {!append}) initiated at simulated time
    [now] becomes {e durable} at [now + fsync_latency]; both return
    that instant so a protocol can defer its acknowledgement until the
    state is actually on disk (write-ahead: never ack what a crash can
    still lose).  With the default [fsync_latency = 0.0] every write is
    durable synchronously and the returned instant equals [now] — the
    classic kind stable-storage model, bit-identical to acking inline.

    {!crash} models the disk at the instant of a process crash: every
    write still inside its fsync window is lost, and — when the
    [torn_tail] fault is enabled and at least one write was in flight —
    the last {e surviving} log record is torn off too (a partially
    flushed tail block).  {!replay} then returns exactly the durable
    prefix, which is what an {e amnesiac} recovery (see
    {!Engine.handlers.on_recover}) has to rebuild from.

    Instruments (in the [Obs.t] given at creation):
    [durable.appends], [durable.cell_writes{cell=..}],
    [durable.lost_writes{kind=tail|torn|cell}],
    [durable.replayed_entries]. *)

type config = { fsync_latency : float; torn_tail : bool }

val config : ?fsync_latency:float -> ?torn_tail:bool -> unit -> config
(** Defaults: [fsync_latency = 0.0] (synchronous durability),
    [torn_tail = false].  Raises [Invalid_argument] on a negative
    latency. *)

val instant : config
(** [config ()] — zero-latency, no torn tails. *)

type 'e t
(** One durable store per protocol instance, holding an append-only
    log of ['e] entries (and any number of cells) for each of the
    [nodes] processes. *)

val create : obs:Obs.t -> nodes:int -> config -> 'e t
val nodes : 'e t -> int
val fsync_latency : 'e t -> float

(** {1 Append-only log} *)

val append : 'e t -> node:int -> now:float -> 'e -> float
(** Append an entry to [node]'s log; returns the absolute time at
    which it is durable ([now + fsync_latency]). *)

val append_batch : 'e t -> node:int -> now:float -> 'e list -> float
(** Append [k] entries as {e one} flush group: they share a single
    fsync window and become durable together at the returned instant
    ([now + fsync_latency]; [now] itself for the empty batch, which
    appends nothing).  Crash damage is all-or-nothing per group — an
    in-flight batch is dropped whole, and a torn tail destroys the
    whole newest surviving group, never part of one.  This is the
    amortization behind {!Replicated_store}'s [Batch_req]: k writes,
    one fsync, one ack. *)

val log_length : 'e t -> node:int -> int
(** Entries currently in the log, durable or still inside their fsync
    window. *)

val replay : 'e t -> node:int -> now:float -> 'e list
(** The durable log prefix in append order (entries whose fsync
    completed by [now]).  Counted in [durable.replayed_entries]. *)

val crash : 'e t -> node:int -> now:float -> unit
(** Apply crash semantics to [node]'s disk at time [now]: drop every
    log record and cell write still inside its fsync window, and tear
    off the last surviving flush group (a single {!append}'s record,
    or a whole {!append_batch}) when [torn_tail] is set and a record
    was in flight. *)

(** {1 Typed cells} *)

type 'a cell
(** A named single-value register per node, living in the parent
    store (its writes obey the same fsync window and crash rules; torn
    tails apply only to the log). *)

val cell : 'e t -> name:string -> 'a cell

val set : 'a cell -> node:int -> now:float -> 'a -> float
(** Write [node]'s value; returns the time at which it is durable. *)

val get : 'a cell -> node:int -> 'a option
(** The in-memory view: the newest write, durable or not. *)

val durable_value : 'a cell -> node:int -> now:float -> 'a option
(** The newest write whose fsync completed by [now] — what an
    amnesiac recovery at [now] finds on disk. *)
